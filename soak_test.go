// Source equivalence for the gen→analyze load harness: a schedule
// streamed through gen.StreamSource must report byte-identically to
// writing the same schedule to a pcap and replaying it — at every
// worker-grid point, batch and windowed — and must do so in bounded
// memory however long the schedule runs. These are the guarantees that
// make soak-mode results (`entanalyze -gen`) interchangeable with
// trace-file results.
package enttrace_test

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"enttrace/internal/core"
	"enttrace/internal/enterprise"
	"enttrace/internal/gen"
)

// scheduledPcap materializes one scheduled trace and serializes it the
// way entgen would — the reference path the streamed source must match.
func scheduledPcap(tb testing.TB, cfg enterprise.Config, sched gen.Schedule) []byte {
	tb.Helper()
	subnet := cfg.Monitored[0]
	pkts := gen.GenerateScheduledTrace(enterprise.NewNetwork(cfg), subnet, 0, sched)
	var buf bytes.Buffer
	tr := gen.Trace{Subnet: subnet, Packets: pkts, Prefix: enterprise.SubnetPrefix(subnet)}
	if err := gen.WriteTrace(&buf, cfg, tr); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// runJSON renders a full run (window reports plus cumulative report) to
// its canonical JSON bytes — the strictest equality we can ask of two
// analysis runs.
func runJSON(tb testing.TB, a *core.Analyzer) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if err := core.WriteRunJSON(&buf, a.WindowReports(), a.Report()); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func soakAnalyzer(cfg enterprise.Config, workers int, window time.Duration) *core.Analyzer {
	return core.NewAnalyzer(core.Options{
		Dataset:         cfg.Name,
		KnownScanners:   enterprise.KnownScanners(),
		PayloadAnalysis: cfg.Snaplen >= 1500,
		Workers:         workers,
		ReplayWorkers:   workers,
		Window:          window,
	})
}

// TestStreamedReportMatchesPcapReplay pins the harness's central claim
// on the {1,4,8}-worker grid, batch and minute-windowed: the streamed
// schedule and its pcap round-trip produce byte-identical run JSON.
func TestStreamedReportMatchesPcapReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end analysis in -short mode")
	}
	cfg := enterprise.D3()
	sched := gen.DefaultSchedule()
	raw := scheduledPcap(t, cfg, sched)
	subnet := cfg.Monitored[0]
	prefix := enterprise.SubnetPrefix(subnet)
	name := "sched"

	for _, workers := range []int{1, 4, 8} {
		for _, window := range []time.Duration{0, 60 * time.Second} {
			t.Run(fmt.Sprintf("workers=%d/window=%s", workers, window), func(t *testing.T) {
				ref := soakAnalyzer(cfg, workers, window)
				if err := ref.AddTraceReader(name, prefix, bytes.NewReader(raw)); err != nil {
					t.Fatal(err)
				}
				want := runJSON(t, ref)

				streamed := soakAnalyzer(cfg, workers, window)
				src := gen.NewStreamSource(gen.StreamConfig{
					Network:  enterprise.NewNetwork(cfg),
					Subnet:   subnet,
					Schedule: sched,
					Snaplen:  cfg.Snaplen,
				})
				if err := streamed.AddTraceSource(name, prefix, src); err != nil {
					t.Fatal(err)
				}
				got := runJSON(t, streamed)

				if !bytes.Equal(got, want) {
					t.Errorf("streamed run JSON differs from pcap replay (%d vs %d bytes)", len(got), len(want))
				}
			})
		}
	}
}

// TestSoakScaleEquivalenceAndBoundedMemory is the acceptance-scale run:
// the default shape tiled to 90 minutes (18 tiles, >10× one D3 trace's
// frames even under the heavy-tailed per-session sizes) streamed with
// no intermediate pcap, byte-identical to the replayed file, with the
// source's pooled-frame footprint pinned to the single-tile level — the
// reorder buffer and the in-flight count must not grow with duration.
func TestSoakScaleEquivalenceAndBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("soak-scale analysis in -short mode")
	}
	cfg := enterprise.D3()
	shape := gen.DefaultSchedule()
	long := shape.Repeat(90 * time.Minute)
	subnet := cfg.Monitored[0]
	prefix := enterprise.SubnetPrefix(subnet)

	drain := func(sched gen.Schedule) (*gen.StreamSource, []byte) {
		a := soakAnalyzer(cfg, 4, 60*time.Second)
		src := gen.NewStreamSource(gen.StreamConfig{
			Network:  enterprise.NewNetwork(cfg),
			Subnet:   subnet,
			Schedule: sched,
			Snaplen:  cfg.Snaplen,
		})
		if err := a.AddTraceSource("soak", prefix, src); err != nil {
			t.Fatal(err)
		}
		return src, runJSON(t, a)
	}

	shortSrc, _ := drain(shape)
	longSrc, got := drain(long)

	shortStats, longStats := shortSrc.Stats(), longSrc.Stats()
	if longStats.Frames < 10*shortStats.Frames {
		t.Fatalf("soak run streamed %d frames, want >= 10x the single tile's %d",
			longStats.Frames, shortStats.Frames)
	}
	// Bounded memory: the reorder buffer holds at most the sessions
	// overlapping one instant plus the largest single session's frames —
	// a quantity set by the schedule's rate and the size distributions,
	// not its length. A longer run may sample a larger largest-session
	// (the sizes are heavy-tailed), so the bound is a hard ceiling plus a
	// vanishing fraction of the stream, not strict equality with the
	// single tile.
	if longStats.PeakBuffered > 4096 {
		t.Errorf("reorder buffer peak %d frames exceeds the soak ceiling", longStats.PeakBuffered)
	}
	if int64(longStats.PeakBuffered)*20 > longStats.Frames {
		t.Errorf("reorder buffer peak %d is not small against the %d-frame stream",
			longStats.PeakBuffered, longStats.Frames)
	}
	if longStats.PeakInFlight > 4*shortStats.PeakInFlight+4096 {
		t.Errorf("in-flight frames grew with duration: single tile %d, soak %d",
			shortStats.PeakInFlight, longStats.PeakInFlight)
	}

	ref := soakAnalyzer(cfg, 4, 60*time.Second)
	if err := ref.AddTraceReader("soak", prefix, bytes.NewReader(scheduledPcap(t, cfg, long))); err != nil {
		t.Fatal(err)
	}
	if want := runJSON(t, ref); !bytes.Equal(got, want) {
		t.Errorf("soak-scale streamed run JSON differs from pcap replay (%d vs %d bytes)", len(got), len(want))
	}
}
