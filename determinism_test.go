// Determinism and throughput guarantees of the sharded streaming
// pipeline: the parallel path must produce a Report deeply equal to the
// sequential path's for every worker count, and the benchmark pair below
// measures the packets/sec gain of sharding (EXPERIMENTS.md records the
// numbers).
package enttrace_test

import (
	"reflect"
	"testing"

	"enttrace/internal/bench"
	"enttrace/internal/core"
	"enttrace/internal/enterprise"
	"enttrace/internal/gen"
)

// analyzeWorkers runs a dataset through the pipeline with the given
// pipeline worker count (replay workers follow the default).
func analyzeWorkers(tb testing.TB, ds *gen.Dataset, workers int) *core.Report {
	return analyzeGrid(tb, ds, workers, 0)
}

// analyzeGrid runs a dataset at an explicit (pipeline workers, replay
// workers) point.
func analyzeGrid(tb testing.TB, ds *gen.Dataset, workers, replayWorkers int) *core.Report {
	tb.Helper()
	a := core.NewAnalyzer(core.Options{
		Dataset:         ds.Config.Name,
		KnownScanners:   enterprise.KnownScanners(),
		PayloadAnalysis: ds.Config.Snaplen >= 1500,
		Workers:         workers,
		ReplayWorkers:   replayWorkers,
	})
	for _, tr := range ds.Traces {
		if err := a.AddTrace(core.TraceInput{
			Name:      tr.Prefix.String(),
			Monitored: tr.Prefix,
			Packets:   tr.Packets,
		}); err != nil {
			tb.Fatal(err)
		}
	}
	return a.Report()
}

func determinismDataset(tb testing.TB, name string, scale float64) *gen.Dataset {
	tb.Helper()
	var cfg enterprise.Config
	for _, c := range enterprise.AllDatasets() {
		if c.Name == name {
			cfg = c
		}
	}
	if cfg.Name == "" {
		tb.Fatalf("unknown dataset %s", name)
	}
	cfg.Scale = scale
	// Keep the vantage subnets (tail holds DNS/print for D3-D4) plus a
	// few client subnets, like the benchmark harness does.
	if len(cfg.Monitored) > 4 {
		head := cfg.Monitored[:2]
		tail := cfg.Monitored[len(cfg.Monitored)-2:]
		cfg.Monitored = append(append([]int{}, head...), tail...)
	}
	cfg.PerTap = 1
	return gen.GenerateDataset(cfg)
}

// TestParallelReportIdentical is the pipeline's core guarantee, now over
// both parallel axes: every (pipeline workers × replay workers) point of
// the {1,4,8}×{1,4,8} grid produces a report deeply equal to the fully
// serial (1,1) run. D3 and D4 exercise payload parsing (including the
// PASV/EPM dynamic registrations and the two-phase replay's aggregate
// merge); D1 covers the header-only path.
func TestParallelReportIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end analysis in -short mode")
	}
	counts := []int{1, 4, 8}
	for _, dsName := range []string{"D3", "D4", "D1"} {
		ds := determinismDataset(t, dsName, 0.15)
		base := analyzeGrid(t, ds, 1, 1)
		for _, workers := range counts {
			for _, replayWorkers := range counts {
				if workers == 1 && replayWorkers == 1 {
					continue
				}
				got := analyzeGrid(t, ds, workers, replayWorkers)
				if !reflect.DeepEqual(base, got) {
					t.Errorf("%s: report with %d pipeline / %d replay workers differs from serial report",
						dsName, workers, replayWorkers)
					diffReports(t, base, got)
				}
			}
		}
	}
}

// diffReports narrows a report mismatch down to the top-level section,
// so a determinism regression names the subsystem that broke.
func diffReports(t *testing.T, a, b *core.Report) {
	t.Helper()
	va, vb := reflect.ValueOf(*a), reflect.ValueOf(*b)
	for i := 0; i < va.NumField(); i++ {
		if !reflect.DeepEqual(va.Field(i).Interface(), vb.Field(i).Interface()) {
			t.Errorf("  section %s differs", va.Type().Field(i).Name)
		}
	}
}

// benchWorkers times the full analysis at a given worker count and
// reports throughput in packets/sec.
func benchWorkers(b *testing.B, dsName string, workers int) {
	ds := determinismDataset(b, dsName, 0.15)
	var pkts int64
	for _, tr := range ds.Traces {
		pkts += int64(len(tr.Packets))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		analyzeWorkers(b, ds, workers)
	}
	b.StopTimer()
	if elapsed := b.Elapsed().Seconds(); elapsed > 0 {
		b.ReportMetric(float64(pkts)*float64(b.N)/elapsed, "pkts/sec")
	}
}

func BenchmarkPipelineD3Workers1(b *testing.B) { benchWorkers(b, "D3", 1) }
func BenchmarkPipelineD3Workers2(b *testing.B) { benchWorkers(b, "D3", 2) }
func BenchmarkPipelineD3Workers4(b *testing.B) { benchWorkers(b, "D3", 4) }
func BenchmarkPipelineD4Workers1(b *testing.B) { benchWorkers(b, "D4", 1) }
func BenchmarkPipelineD4Workers4(b *testing.B) { benchWorkers(b, "D4", 4) }

// benchStreamWorkers times the streaming entry point — pcap bytes through
// AddTraceReader — which is where per-packet read allocations live (the
// in-memory benchmarks above hand the pipeline pre-built packets). The
// workload definition lives in bench.StreamBenchmark, shared with the
// entbench CI telemetry suite so the two cannot drift; here it runs over
// the determinism harness's dataset.
func benchStreamWorkers(b *testing.B, dsName string, workers int) {
	bench.StreamBenchmark(b, determinismDataset(b, dsName, 0.15), workers)
}

func BenchmarkPipelineStreamD3Workers1(b *testing.B) { benchStreamWorkers(b, "D3", 1) }
func BenchmarkPipelineStreamD3Workers4(b *testing.B) { benchStreamWorkers(b, "D3", 4) }
func BenchmarkPipelineStreamD3Workers8(b *testing.B) { benchStreamWorkers(b, "D3", 8) }
