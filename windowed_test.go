// Windowed determinism: enabling epoch rotation must not change the
// cumulative report — at any point of the (pipeline workers × replay
// workers) grid — and the per-window reports themselves must be
// identical across the grid. Together these pin the epoch-snapshot
// contract: window deltas partition the run exactly, and their banked
// merge reproduces the batch aggregate byte for byte.
package enttrace_test

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"enttrace/internal/core"
	"enttrace/internal/enterprise"
	"enttrace/internal/gen"
)

// analyzeWindowed runs a dataset at an explicit grid point with epoch
// rotation enabled, returning the cumulative report and every window.
func analyzeWindowed(tb testing.TB, ds *gen.Dataset, workers, replayWorkers int, window time.Duration) (*core.Report, []*core.WindowReport) {
	tb.Helper()
	a := core.NewAnalyzer(core.Options{
		Dataset:         ds.Config.Name,
		KnownScanners:   enterprise.KnownScanners(),
		PayloadAnalysis: ds.Config.Snaplen >= 1500,
		Workers:         workers,
		ReplayWorkers:   replayWorkers,
		Window:          window,
	})
	for _, tr := range ds.Traces {
		if err := a.AddTrace(core.TraceInput{
			Name:      tr.Prefix.String(),
			Monitored: tr.Prefix,
			Packets:   tr.Packets,
		}); err != nil {
			tb.Fatal(err)
		}
	}
	return a.Report(), a.WindowReports()
}

// renderWindows renders every window to one byte stream (text and JSON),
// the "byte-identical" comparison unit across grid points.
func renderWindows(tb testing.TB, wins []*core.WindowReport) []byte {
	tb.Helper()
	var buf bytes.Buffer
	for _, wr := range wins {
		buf.WriteString(core.RenderText(wr.Report))
		if err := core.WriteReportJSON(&buf, wr.Report); err != nil {
			tb.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestWindowedMatchesBatchGrid is the windowed acceptance gate: for D3
// and D4, at every point of the {1,4,8}×{1,4,8} worker grid, a -window
// run produces (a) a cumulative report byte-identical to the no-window
// batch run and (b) per-window reports byte-identical to the serial
// windowed run's.
func TestWindowedMatchesBatchGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end analysis in -short mode")
	}
	const window = 10 * time.Minute // several cuts per one-hour trace
	counts := []int{1, 4, 8}
	for _, dsName := range []string{"D3", "D4"} {
		ds := determinismDataset(t, dsName, 0.15)
		batch := analyzeGrid(t, ds, 1, 1)
		batchText := core.RenderText(batch)
		baseFinal, baseWins := analyzeWindowed(t, ds, 1, 1, window)
		if len(baseWins) < 2 {
			t.Fatalf("%s: expected multiple windows, got %d", dsName, len(baseWins))
		}
		baseWinBytes := renderWindows(t, baseWins)
		if !reflect.DeepEqual(batch, baseFinal) {
			t.Errorf("%s: windowed cumulative differs from batch (serial)", dsName)
			diffReports(t, batch, baseFinal)
		}
		if got := core.RenderText(baseFinal); got != batchText {
			t.Errorf("%s: windowed cumulative text differs from batch text", dsName)
		}
		for _, workers := range counts {
			for _, replayWorkers := range counts {
				if workers == 1 && replayWorkers == 1 {
					continue
				}
				final, wins := analyzeWindowed(t, ds, workers, replayWorkers, window)
				if !reflect.DeepEqual(batch, final) {
					t.Errorf("%s: windowed cumulative at %d/%d workers differs from batch",
						dsName, workers, replayWorkers)
					diffReports(t, batch, final)
				}
				if !bytes.Equal(renderWindows(t, wins), baseWinBytes) {
					t.Errorf("%s: window reports at %d/%d workers differ from serial windowed run",
						dsName, workers, replayWorkers)
				}
			}
		}
		// The partition property, directly: per-window totals sum to the
		// cumulative totals.
		var conns, payload, packets int64
		for _, wr := range baseWins {
			conns += wr.Report.Table3.TotalConns
			payload += wr.Report.Table3.TotalBytes
			packets += wr.Report.Table1.Packets
		}
		if conns != batch.Table3.TotalConns || payload != batch.Table3.TotalBytes || packets != batch.Table1.Packets {
			t.Errorf("%s: window sums (%d conns, %d bytes, %d pkts) != batch (%d, %d, %d)",
				dsName, conns, payload, packets,
				batch.Table3.TotalConns, batch.Table3.TotalBytes, batch.Table1.Packets)
		}
	}
}
