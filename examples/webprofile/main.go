// Webprofile reproduces the paper's §5.1.1 web characterization on a
// generated dataset: the impact of automated clients (Table 6), the
// internal-vs-WAN fan-out gap (Figure 3), conditional-GET usage, and
// content-type mix (Table 7). It demonstrates driving the per-application
// reports of the core API rather than the full rendered output.
package main

import (
	"fmt"
	"log"

	"enttrace/internal/core"
	"enttrace/internal/enterprise"
	"enttrace/internal/gen"
	"enttrace/internal/stats"
)

func main() {
	cfg := enterprise.D4()
	cfg.Scale = 0.3
	cfg.Monitored = []int{2, 3, 5, 11, 12, 13, 14}

	ds := gen.GenerateDataset(cfg)
	a := core.NewAnalyzer(core.Options{
		Dataset:         cfg.Name,
		KnownScanners:   enterprise.KnownScanners(),
		PayloadAnalysis: true,
	})
	for _, tr := range ds.Traces {
		if err := a.AddTrace(core.TraceInput{
			Name:      fmt.Sprintf("subnet%d", tr.Subnet),
			Monitored: tr.Prefix,
			Packets:   tr.Packets,
		}); err != nil {
			log.Fatal(err)
		}
	}
	h := a.Report().HTTP

	fmt.Printf("internal HTTP: %d requests, %s\n\n", h.InternalRequests, stats.Bytes(h.InternalBytes))
	fmt.Println("automated clients (share of internal HTTP):")
	for class, share := range h.Automated {
		fmt.Printf("  %-8s %5s of requests, %5s of bytes\n", class, stats.Pct(share.ReqFrac), stats.Pct(share.ByteFrac))
	}

	fmt.Println("\nfan-out (distinct servers per client, excluding automated):")
	fmt.Printf("  enterprise: N=%d clients, median %.0f\n", h.NEntClients, medianOf(h.FanOutEnt))
	fmt.Printf("  wan:        N=%d clients, median %.0f\n", h.NWanClients, medianOf(h.FanOutWan))

	fmt.Println("\nconditional GETs (the paper's puzzle — heavier *inside*):")
	fmt.Printf("  enterprise: %s of requests, %s of data bytes\n", stats.Pct(h.CondEnt), stats.Pct(h.CondBytesEnt))
	fmt.Printf("  wan:        %s of requests, %s of data bytes\n", stats.Pct(h.CondWan), stats.Pct(h.CondBytesWan))

	fmt.Println("\ncontent classes (requests / bytes, enterprise):")
	for _, cls := range []string{"text", "image", "application", "other"} {
		fmt.Printf("  %-12s %5s / %5s\n", cls, stats.Pct(h.ContentReqEnt[cls]), stats.Pct(h.ContentByteEnt[cls]))
	}
	fmt.Printf("\nconnection success by host pair: ent %s (n=%d), wan %s (n=%d)\n",
		stats.Pct(h.SuccessEnt), h.PairsEnt, stats.Pct(h.SuccessWan), h.PairsWan)
	fmt.Printf("busiest HTTPS host pair: %d connections in one hour\n", h.MaxHTTPSConnsPerPair)
}

func medianOf(pts []stats.CDFPoint) float64 {
	for _, p := range pts {
		if p.F >= 0.5 {
			return p.X
		}
	}
	if n := len(pts); n > 0 {
		return pts[n-1].X
	}
	return 0
}
