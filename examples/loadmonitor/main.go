// Loadmonitor reproduces the paper's §6 load assessment (Figures 9–10) on
// generated traces: per-trace utilization at several averaging timescales
// — showing how apparent "saturation" vanishes as the window grows — and
// TCP retransmission rates split internal vs WAN, with keep-alive probes
// excluded the way the paper excludes NCP/SSH keep-alives.
package main

import (
	"fmt"
	"log"

	"enttrace/internal/core"
	"enttrace/internal/enterprise"
	"enttrace/internal/gen"
	"enttrace/internal/stats"
)

func main() {
	cfg := enterprise.D4()
	cfg.Scale = 0.5
	cfg.Monitored = []int{5, 6, 8, 9, 16, 17} // file + backup heavy subnets, incl. the lossy Veritas trace
	ds := gen.GenerateDataset(cfg)

	a := core.NewAnalyzer(core.Options{
		Dataset:         cfg.Name,
		KnownScanners:   enterprise.KnownScanners(),
		PayloadAnalysis: true,
	})
	for _, tr := range ds.Traces {
		if err := a.AddTrace(core.TraceInput{
			Name:      fmt.Sprintf("subnet%02d", tr.Subnet),
			Monitored: tr.Prefix,
			Packets:   tr.Packets,
		}); err != nil {
			log.Fatal(err)
		}
	}
	load := a.Report().Load

	fmt.Println("per-trace utilization (Mbps) and retransmission:")
	fmt.Printf("%-10s %9s %9s %9s %9s %11s %11s\n",
		"trace", "peak 1s", "peak 10s", "peak 60s", "median", "retrans ent", "retrans wan")
	for _, t := range load.Traces {
		fmt.Printf("%-10s %9.2f %9.2f %9.2f %9.3f %10.2f%% %10.2f%%\n",
			t.Name, t.Peak1s, t.Peak10s, t.Peak60s, t.Median,
			t.RetransEnt*100, t.RetransWan*100)
	}
	fmt.Printf("\ntraces above 1%% internal retransmission: %s (max %.1f%%)\n",
		stats.Pct(load.EntOver1Pct), load.MaxRetransEnt*100)
	fmt.Println("note the trace carrying the lossy Veritas backup connection,")
	fmt.Println("the reproduction of the paper's one ~5% outlier.")
}
