// Vantage reproduces the paper's central methodological observation: what
// you measure depends on which subnet you tap. It analyzes the same
// enterprise under the D0-style vantage (mail + authentication subnets
// monitored) and the D3-style vantage (DNS + print-server subnets) and
// contrasts Table 11's DCE/RPC function mix and Table 8's email volumes —
// the two places the paper calls the effect out explicitly.
package main

import (
	"fmt"
	"log"

	"enttrace/internal/core"
	"enttrace/internal/enterprise"
	"enttrace/internal/gen"
	"enttrace/internal/stats"
)

func analyze(cfg enterprise.Config) *core.Report {
	ds := gen.GenerateDataset(cfg)
	a := core.NewAnalyzer(core.Options{
		Dataset:         cfg.Name,
		KnownScanners:   enterprise.KnownScanners(),
		PayloadAnalysis: true,
	})
	for _, tr := range ds.Traces {
		if err := a.AddTrace(core.TraceInput{
			Name:      fmt.Sprintf("subnet%d", tr.Subnet),
			Monitored: tr.Prefix,
			Packets:   tr.Packets,
		}); err != nil {
			log.Fatal(err)
		}
	}
	return a.Report()
}

func main() {
	authSide := enterprise.D0()
	authSide.Scale = 0.4
	authSide.Monitored = []int{enterprise.SubnetMail, enterprise.SubnetAuth, 2, 3}

	printSide := enterprise.D3()
	printSide.Scale = 0.4
	printSide.Monitored = []int{enterprise.SubnetDNS, enterprise.SubnetPrint, 2, 3}

	fmt.Println("same enterprise, two tap placements:")
	for _, r := range []*core.Report{analyze(authSide), analyze(printSide)} {
		fmt.Printf("\n--- %s vantage ---\n", r.Dataset)
		fmt.Println("DCE/RPC function mix (Table 11):")
		for _, fn := range []string{"NetLogon", "LsaRPC", "Spoolss/WritePrinter", "Spoolss/other"} {
			fmt.Printf("  %-22s %5s of requests\n", fn, stats.Pct(r.Windows.RPCRequests[fn]))
		}
		fmt.Println("email volume (Table 8):")
		for _, proto := range []string{"SMTP", "SIMAP", "IMAP4"} {
			fmt.Printf("  %-6s %s\n", proto, stats.Bytes(r.Email.Bytes[proto]))
		}
		fmt.Printf("WAN DNS median latency: %.1f ms (zero means: not visible from here)\n",
			r.Names.DNSMedianLatencyWanMs)
	}
	fmt.Println("\nthe paper's point: neither view is \"the\" enterprise —")
	fmt.Println("multiple vantage points are required (§5.2.1).")
}
