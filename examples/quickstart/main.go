// Quickstart: generate a small synthetic enterprise dataset, run the
// paper's analysis pipeline over it, and print the headline breakdowns —
// the minimal end-to-end use of the library's public surface
// (enterprise → gen → core).
package main

import (
	"fmt"
	"log"

	"enttrace/internal/core"
	"enttrace/internal/enterprise"
	"enttrace/internal/gen"
	"enttrace/internal/stats"
)

func main() {
	// A scaled-down D3: four client subnets plus the DNS and print-server
	// subnets, at a quarter of the default workload volume.
	cfg := enterprise.D3()
	cfg.Scale = 0.25
	cfg.Monitored = []int{2, 3, 4, 5, enterprise.SubnetDNS, enterprise.SubnetPrint}

	fmt.Printf("generating dataset %s (%d subnets, %s traces)...\n",
		cfg.Name, len(cfg.Monitored), cfg.Duration)
	ds := gen.GenerateDataset(cfg)
	fmt.Printf("  %d traces, %d packets\n\n", len(ds.Traces), ds.TotalPackets())

	// Workers 0 shards the streaming pipeline across GOMAXPROCS; the
	// report is bit-identical for any worker count.
	a := core.NewAnalyzer(core.Options{
		Dataset:         cfg.Name,
		KnownScanners:   enterprise.KnownScanners(),
		PayloadAnalysis: true,
		Workers:         0,
	})
	for _, tr := range ds.Traces {
		if err := a.AddTrace(core.TraceInput{
			Name:      fmt.Sprintf("subnet%d", tr.Subnet),
			Monitored: tr.Prefix,
			Packets:   tr.Packets,
		}); err != nil {
			log.Fatal(err)
		}
	}
	r := a.Report()

	fmt.Printf("network layer: IP %s, ARP %s, IPX %s\n",
		stats.Pct(r.Table2["IP"]), stats.Pct(r.Table2["ARP"]), stats.Pct(r.Table2["IPX"]))
	fmt.Printf("transport:     TCP carries %s of bytes but only %s of connections\n",
		stats.Pct(r.Table3.BytesFrac["TCP"]), stats.Pct(r.Table3.ConnsFrac["TCP"]))
	fmt.Printf("scanners:      removed %s of connections (%d sources)\n\n",
		stats.Pct(r.Scan.RemovedFraction), r.Scan.Scanners)

	fmt.Println("top application categories:")
	for _, row := range r.Figure1 {
		if row.ConnsTotal() > 0.02 || row.BytesTotal() > 0.05 {
			fmt.Printf("  %-12s %5s of bytes, %5s of connections\n",
				row.Category, stats.Pct(row.BytesTotal()), stats.Pct(row.ConnsTotal()))
		}
	}
	fmt.Println("\nfindings:")
	for _, f := range r.Findings {
		fmt.Println("  -", f)
	}
}
