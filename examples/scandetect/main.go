// Scandetect demonstrates the §3 scanner-removal machinery in isolation:
// it generates one trace, runs connection tracking, applies the paper's
// heuristic (>50 distinct hosts, ≥45 contacted in address order), and
// shows what was caught — including the threshold-sensitivity sweep that
// DESIGN.md calls out as an ablation.
package main

import (
	"fmt"
	"log"
	"sort"

	"enttrace/internal/enterprise"
	"enttrace/internal/flows"
	"enttrace/internal/gen"
	"enttrace/internal/layers"
	"enttrace/internal/scan"
	"enttrace/internal/stats"
)

func main() {
	cfg := enterprise.D0()
	cfg.Scale = 0.5
	net := enterprise.NewNetwork(cfg)
	pkts := gen.GenerateTrace(net, 5, 0)
	fmt.Printf("trace: %d packets\n", len(pkts))

	tbl := flows.NewTable(flows.Config{})
	var p layers.Packet
	for _, pk := range pkts {
		if err := layers.Decode(pk.Data, pk.OrigLen, &p); err != nil {
			log.Fatal(err)
		}
		tbl.Packet(pk.Timestamp, &p, pk.OrigLen)
	}
	tbl.Flush()
	conns := tbl.Conns()
	// The detector keys on first-contact order, so feed connections in
	// start order (scan.Filter does this internally).
	sort.Slice(conns, func(i, j int) bool { return conns[i].Start.Before(conns[j].Start) })
	fmt.Printf("connections: %d\n\n", len(conns))

	res := scan.Filter(conns, enterprise.KnownScanners())
	fmt.Printf("paper heuristic (>%d hosts, ≥%d ordered): %d scanners, %s of connections removed\n",
		scan.DefaultHostThreshold, scan.DefaultOrderedThreshold,
		len(res.Scanners), stats.Pct(res.RemovedFraction))
	for _, s := range res.Scanners {
		fmt.Printf("  scanner: %s\n", s)
	}

	// Threshold sensitivity: how does the removal fraction respond?
	fmt.Println("\nthreshold sensitivity (hosts / ordered → removed fraction):")
	for _, hosts := range []int{20, 50, 100} {
		for _, ordered := range []int{20, 45, 80} {
			d := scan.NewDetector()
			d.HostThreshold, d.OrderedThreshold = hosts, ordered
			d.ObserveConns(conns)
			removed := 0
			for _, c := range conns {
				if d.IsScanner(c.Key.Src) {
					removed++
				}
			}
			fmt.Printf("  >%3d hosts, ≥%2d ordered: %s\n",
				hosts, ordered, stats.Pct(float64(removed)/float64(len(conns))))
		}
	}
}
