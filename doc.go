// Package enttrace is a reproduction of "A First Look at Modern
// Enterprise Traffic" (Pang, Allman, Bennett, Lee, Paxson, Tierney —
// IMC 2005): a synthetic enterprise-network traffic generator, a
// Bro-style trace-analysis pipeline, and a benchmark harness that
// regenerates every table and figure of the paper.
//
// The analysis core runs on a concurrent, flow-sharded streaming
// pipeline (internal/pipeline): traces feed in incrementally, packets
// are sharded by canonical 5-tuple across lock-free workers, and the
// report is bit-identical for any worker count. With windowing enabled
// (-window), per-epoch reports cut at fixed boundaries in packet time
// and compose exactly back to the batch report; -serve exposes the
// latest window, any window by index, and liveness over HTTP while a
// long run streams.
//
// Input comes through one seam — anything satisfying pcap.PacketSource:
// replayed capture files, multi-tap merges, the adversarial evasion
// workloads (entgen -evasion, internal/advtest), or the streamed
// generator (entanalyze -gen), which synthesizes frames on the fly from
// a load schedule for soak runs at rates and durations no trace file
// covers, in bounded memory, with reports byte-identical to replaying
// the equivalent pcap.
//
// See README.md for the layout, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-versus-measured
// results. The root package is documentation only; the library lives
// under internal/ and the executables under cmd/.
package enttrace
