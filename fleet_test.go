// Transport-level differential tests for the fleet tier: sites shipping
// real snapshot frames over real TCP through the retry/backoff shipper
// must merge to the byte-identical report of a single instance over the
// concatenated traces — clean and under injected connection drops,
// duplicated frames, reorders, and stalls (all non-lossy under the
// at-least-once protocol). Permanent loss exists only as an explicit
// queue-bound eviction, and every evicted window must surface exactly
// once in the degradation census.
package enttrace_test

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"enttrace/internal/core"
	"enttrace/internal/enterprise"
	"enttrace/internal/faults"
	"enttrace/internal/fleet"
	"enttrace/internal/gen"
)

// fleetBlocks generates two classification-self-contained trace blocks —
// one monitored subnet each, generated with its own network instance so
// every block carries its own endpoint-mapper exchanges (dynamic port
// registrations never cross sites; see DESIGN.md "Fleet aggregation").
func fleetBlocks(t *testing.T) (blocks [][]gen.Trace, origin time.Time) {
	t.Helper()
	cfg := enterprise.D3()
	cfg.Scale = 0.2
	for _, subnet := range cfg.Monitored[:2] {
		c := cfg
		c.Monitored = []int{subnet}
		ds := gen.GenerateDataset(c)
		blocks = append(blocks, ds.Traces)
		for _, tr := range ds.Traces {
			if len(tr.Packets) == 0 {
				continue
			}
			if ts := tr.Packets[0].Timestamp; origin.IsZero() || ts.Before(origin) {
				origin = ts
			}
		}
	}
	return blocks, origin
}

// fleetMember builds one windowed analyzer over the given trace blocks,
// sharing the fleet's window clock and owning the global trace ordinals
// starting at base.
func fleetMember(t *testing.T, blocks [][]gen.Trace, base int, origin time.Time) *core.Analyzer {
	t.Helper()
	a := core.NewAnalyzer(core.Options{
		Dataset:         "fleet",
		PayloadAnalysis: true,
		Workers:         2,
		ReplayWorkers:   2,
		Window:          time.Minute,
		WindowOrigin:    origin,
		TraceBase:       base,
	})
	n := base
	for _, block := range blocks {
		for _, tr := range block {
			name := fmt.Sprintf("trace-%02d", n)
			n++
			if err := a.AddTrace(core.TraceInput{Name: name, Monitored: tr.Prefix, Packets: tr.Packets}); err != nil {
				t.Fatal(err)
			}
		}
	}
	return a
}

// shipAll streams a site's full export set to the aggregator at addr
// through a real shipper, optionally under an injected network fault
// schedule, and asserts the drain completed without data loss.
func shipAll(t *testing.T, addr, site string, a *core.Analyzer, spec string, wantReconnect bool) {
	var inj *faults.NetInjector
	if spec != "" {
		sched, err := faults.ParseNetSpec(spec)
		if err != nil {
			t.Errorf("site %s: %v", site, err)
			return
		}
		inj = faults.NewNetInjector(sched)
		inj.SetSleep(func(time.Duration) {}) // replay stalls instantly
	}
	sh, err := fleet.NewShipper(fleet.ShipperConfig{
		Addr:      addr,
		Site:      site,
		Hello:     a.FleetHello(),
		Backoff:   fleet.Backoff{Base: 200 * time.Microsecond, Max: 2 * time.Millisecond},
		NetFaults: inj,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Errorf("site %s: %v", site, err)
		return
	}
	exports, err := a.ExportAll()
	if err != nil {
		t.Errorf("site %s export: %v", site, err)
		return
	}
	maxWindow := -1
	var watermark int64
	for _, we := range exports {
		sh.ShipDelta(we.Window, we.Watermark, we.Payload)
		if we.Window > maxWindow {
			maxWindow = we.Window
		}
		watermark = we.Watermark
	}
	sh.Fin(maxWindow, watermark)
	// A trailing heartbeat flushes a FIN held by a reorder event at the
	// tail of the stream (untracked, so it costs nothing when clean).
	sh.Heartbeat(watermark)
	if err := sh.Close(); err != nil {
		t.Errorf("site %s close: %v", site, err)
	}
	if lw := sh.LostWindows(); len(lw) != 0 {
		t.Errorf("site %s lost windows under non-lossy faults: %v", site, lw)
	}
	if wantReconnect {
		if st := sh.Stats(); st.Reconnects == 0 || st.Resends == 0 {
			t.Errorf("site %s: drop schedule fired but no reconnect/resend recorded: %+v", site, st)
		}
	}
}

// TestFleetTransportDifferential is the end-to-end tentpole invariant:
// two sites analyzing disjoint trace blocks and shipping over TCP must
// merge to the byte-identical cumulative and per-window reports of a
// single instance — clean, and under every non-lossy fault schedule.
func TestFleetTransportDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet transport analysis in -short mode")
	}
	blocks, origin := fleetBlocks(t)

	single := fleetMember(t, blocks, 0, origin)
	singleFinal, err := core.MarshalReport(single.Report())
	if err != nil {
		t.Fatal(err)
	}
	singleWins := single.WindowReports()

	siteA := fleetMember(t, blocks[:1], 0, origin)
	siteB := fleetMember(t, blocks[1:], len(blocks[0]), origin)

	scenarios := []struct {
		name  string
		specs [2]string // per-site injection schedules
		drops [2]bool   // whether the schedule forces reconnects
	}{
		{"clean", [2]string{"", ""}, [2]bool{false, false}},
		{"drop-dup-reorder", [2]string{"drop@1,dup@3,reorder@4,stall@2:1ms", "drop@2,drop@3,dup@5"}, [2]bool{true, true}},
		{"random-seeded", [2]string{"netrand:11:5:20", "netrand:23:5:20"}, [2]bool{false, false}},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			sink := core.NewFleet(core.FleetConfig{Dataset: "fleet", ExpectSites: []string{"site-a", "site-b"}})
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			agg := fleet.NewAggregator(ln, sink, t.Logf)
			served := make(chan struct{})
			go func() { agg.Serve(); close(served) }()
			defer func() { agg.Close(); <-served }()
			addr := ln.Addr().String()

			var wg sync.WaitGroup
			for i, a := range []*core.Analyzer{siteA, siteB} {
				i, a := i, a
				wg.Add(1)
				go func() {
					defer wg.Done()
					shipAll(t, addr, fmt.Sprintf("site-%c", 'a'+i), a, sc.specs[i], sc.drops[i])
				}()
			}
			wg.Wait()

			st := sink.Status()
			if !st.FinalReady || st.LostWindows != 0 || len(st.MissingSites) != 0 {
				t.Fatalf("fleet status after drain = %+v, want final-ready with nothing lost", st)
			}
			r := sink.Report()
			if r.Fleet != nil {
				t.Errorf("complete fleet carries a degradation census: %+v", r.Fleet)
			}
			got, err := core.MarshalReport(r)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, singleFinal) {
				t.Errorf("fleet report over TCP differs from single instance (%d vs %d bytes)", len(got), len(singleFinal))
			}
			fleetWins := sink.WindowReports()
			if len(fleetWins) != len(singleWins) {
				t.Fatalf("fleet has %d windows, single instance %d", len(fleetWins), len(singleWins))
			}
			for n := range singleWins {
				fw, err := core.MarshalReport(fleetWins[n].Report)
				if err != nil {
					t.Fatal(err)
				}
				sw, err := core.MarshalReport(singleWins[n].Report)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(fw, sw) {
					t.Errorf("window %d: fleet report differs from single instance", n)
				}
			}
		})
	}
}

// TestFleetTransportPermanentLoss drives the one genuinely lossy path —
// the shipper's bounded-queue eviction — end to end: the first
// connection goes to a server that never acknowledges, so the queue
// overflows deterministically; after reconnecting to the real
// aggregator, the surviving deltas and the LOST declarations for every
// evicted window arrive, and each lost window appears exactly once in
// the degradation census. The transport-fed fleet must match an in-core
// fold given the same deliveries and losses.
func TestFleetTransportPermanentLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet transport analysis in -short mode")
	}
	blocks, origin := fleetBlocks(t)
	a := fleetMember(t, blocks, 0, origin)
	exports, err := a.ExportAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(exports) < 4 {
		t.Fatalf("dataset spans only %d windows; the eviction walk needs 4+", len(exports))
	}
	nWin := len(exports)
	const queueLimit = 2

	sink := core.NewFleet(core.FleetConfig{Dataset: "fleet"})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	agg := fleet.NewAggregator(ln, sink, t.Logf)
	served := make(chan struct{})
	go func() { agg.Serve(); close(served) }()
	defer func() { agg.Close(); <-served }()

	// First dial lands on a black-hole server that reads frames but never
	// acks; every later dial reaches the real aggregator. With the queue
	// bounded at 2 and no acks arriving, deltas 0..nWin-3 are evicted in
	// order, each replaced by a LOST frame. The black hole hangs up after
	// the full send sequence: HELLO + nWin deltas + (nWin-2) LOSTs + FIN.
	hole, holePeer := net.Pipe()
	holeDone := make(chan struct{})
	go func() {
		defer close(holeDone)
		defer holePeer.Close()
		br := bufio.NewReader(holePeer)
		for seen := 0; seen < 2*nWin; seen++ {
			if _, err := fleet.ReadFrame(br); err != nil {
				t.Errorf("black hole read %d: %v", seen, err)
				return
			}
		}
	}()
	var dialMu sync.Mutex
	dials := 0
	dial := func() (net.Conn, error) {
		dialMu.Lock()
		defer dialMu.Unlock()
		dials++
		if dials == 1 {
			return hole, nil
		}
		return net.Dial("tcp", ln.Addr().String())
	}

	sh, err := fleet.NewShipper(fleet.ShipperConfig{
		Site:       "site-a",
		Hello:      a.FleetHello(),
		Dial:       dial,
		Backoff:    fleet.Backoff{Base: 200 * time.Microsecond, Max: 2 * time.Millisecond},
		QueueLimit: queueLimit,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, we := range exports {
		sh.ShipDelta(we.Window, we.Watermark, we.Payload)
	}
	sh.Fin(nWin-1, 0)
	<-holeDone
	if err := sh.Close(); err != nil {
		t.Fatalf("close after reconnect: %v", err)
	}

	wantLost := make([]int, 0, nWin-queueLimit)
	for w := 0; w < nWin-queueLimit; w++ {
		wantLost = append(wantLost, w)
	}
	gotLost := sh.LostWindows()
	if len(gotLost) != len(wantLost) {
		t.Fatalf("shipper lost %v, want %v", gotLost, wantLost)
	}
	for i, w := range wantLost {
		if gotLost[i] != w {
			t.Fatalf("shipper lost %v, want %v", gotLost, wantLost)
		}
	}

	st := sink.Status()
	if !st.FinalReady {
		t.Fatalf("fleet not final after fin: %+v", st)
	}
	if st.LostWindows != len(wantLost) {
		t.Errorf("status counts %d lost windows, want %d", st.LostWindows, len(wantLost))
	}
	r := sink.Report()
	if r.Fleet == nil || len(r.Fleet.Sites) != 1 {
		t.Fatalf("census = %+v, want one degraded site", r.Fleet)
	}
	site := r.Fleet.Sites[0]
	if !site.Fin || site.Windows != queueLimit {
		t.Errorf("census site = %+v, want finned with %d delivered windows", site, queueLimit)
	}
	if len(site.MissingWindows) != 0 {
		t.Errorf("census reports missing windows %v; every gap was declared lost", site.MissingWindows)
	}
	// Exactly once: the census loss list equals the shipper's, no
	// duplicates, no overlap with delivered windows.
	if len(site.LostWindows) != len(wantLost) {
		t.Fatalf("census lost %v, want %v", site.LostWindows, wantLost)
	}
	for i, w := range wantLost {
		if site.LostWindows[i] != w {
			t.Fatalf("census lost %v, want %v exactly once each", site.LostWindows, wantLost)
		}
	}

	// Differential against an in-core fold of the same partial delivery:
	// the transport path must not change what a loss merges to.
	ref := core.NewFleet(core.FleetConfig{Dataset: "fleet"})
	if err := ref.Hello("site-a", a.FleetHello()); err != nil {
		t.Fatal(err)
	}
	seq := uint64(0)
	for _, we := range exports[nWin-queueLimit:] {
		seq++
		if err := ref.Delta("site-a", we.Window, seq, we.Watermark, we.Payload); err != nil {
			t.Fatal(err)
		}
	}
	for _, w := range wantLost {
		seq++
		if err := ref.Lost("site-a", w, seq); err != nil {
			t.Fatal(err)
		}
	}
	if err := ref.Fin("site-a", nWin-1, seq+1, 0); err != nil {
		t.Fatal(err)
	}
	want, err := core.MarshalReport(ref.Report())
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.MarshalReport(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("transport-fed degraded report differs from in-core fold (%d vs %d bytes)", len(got), len(want))
	}
}
