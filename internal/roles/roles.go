// Package roles infers host roles from connection patterns — the analysis
// direction the paper cites as related work (Tan et al., "Role
// Classification of Hosts within Enterprise Networks") and leaves to
// future study. Given a trace's connection summaries it classifies each
// host as a server (high fan-in concentrated on few local ports), a
// client (fan-out dominated), a peer (balanced, many symmetric
// conversations — the SrvLoc pattern), or inactive.
//
// Epoch obligations: Partial provides the aggregate layer's
// Snapshot/Reset pair (Snapshot returns the evidence accumulated since
// the last Reset as an independent mergeable value). Role evidence is
// trace-granular in the windowed design — a whole trace's Partial banks
// into the window containing the trace's last packet rather than being
// cut mid-trace; see DESIGN.md § "Epoch snapshots and windowed reports:
// the Snapshot/Reset/watermark contract".
package roles

import (
	"net/netip"
	"sort"

	"enttrace/internal/flows"
)

// Role is an inferred host role.
type Role string

// Role values.
const (
	Server Role = "server"
	Client Role = "client"
	Peer   Role = "peer"
	Quiet  Role = "quiet"
)

// HostProfile carries the evidence behind a classification.
type HostProfile struct {
	Addr netip.Addr
	Role Role
	// FanIn/FanOut are distinct-peer counts as originator target/source.
	FanIn, FanOut int
	// ServicePorts lists the local ports that received connections from
	// at least MinClientsPerService distinct peers, most popular first.
	ServicePorts []uint16
	// ConnsIn/ConnsOut are raw connection counts.
	ConnsIn, ConnsOut int64
}

// Config tunes the classifier.
type Config struct {
	// MinClientsPerService is the distinct-peer threshold for a local
	// port to count as a service. Default 3.
	MinClientsPerService int
	// ServerFanInRatio: fan-in must exceed fan-out by this factor for a
	// server verdict. Default 2.
	ServerFanInRatio float64
	// PeerSymmetry: |fanIn-fanOut| / max ≤ this for a peer verdict when
	// both sides are substantial. Default 0.5.
	PeerSymmetry float64
	// MinPeerDegree: both fan directions must reach this for peer.
	// Default 5.
	MinPeerDegree int
}

func (c Config) withDefaults() Config {
	if c.MinClientsPerService == 0 {
		c.MinClientsPerService = 3
	}
	if c.ServerFanInRatio == 0 {
		c.ServerFanInRatio = 2
	}
	if c.PeerSymmetry == 0 {
		c.PeerSymmetry = 0.5
	}
	if c.MinPeerDegree == 0 {
		c.MinPeerDegree = 5
	}
	return c
}

// classifyEdge is one directed conversation endpoint used by Classify's
// sort-and-scan passes.
type classifyEdge struct {
	host, peer netip.Addr
	port       uint16
}

// Classify profiles every host appearing as an endpoint of conns.
// Multicast flows are ignored. It is Accumulate followed by Finalize;
// callers that shard the connection set use those directly.
func Classify(conns []*flows.Conn, cfg Config) map[netip.Addr]*HostProfile {
	return Accumulate(conns).Finalize(cfg)
}

// hostPort keys distinct-client counts for one host's local port.
type hostPort struct {
	host netip.Addr
	port uint16
}

// Partial is mergeable per-host classification evidence: distinct-peer
// fans, raw connection counts, and distinct-client counts per local
// port, with thresholds and verdicts deferred to Finalize. Partials
// built from connection subsets merge exactly when the subsets split by
// host pair — every distinct-count domain here is (host, peer) — which
// is the invariant the parallel replay's sharding provides.
type Partial struct {
	profiles map[netip.Addr]*HostProfile
	ports    map[hostPort]int
}

// Accumulate builds the evidence for one connection subset.
//
// The distinct-peer and per-port client counts are computed by sorting
// edge lists and scanning runs rather than by nested maps of sets: the
// map form allocated tens of thousands of small objects per trace, which
// made this the second-biggest allocation site on the analysis hot path.
func Accumulate(conns []*flows.Conn) *Partial {
	outE := make([]classifyEdge, 0, len(conns))
	inE := make([]classifyEdge, 0, len(conns))
	for _, c := range conns {
		if c.Multicast {
			continue
		}
		outE = append(outE, classifyEdge{host: c.Key.Src, peer: c.Key.Dst})
		inE = append(inE, classifyEdge{host: c.Key.Dst, peer: c.Key.Src, port: c.Key.DstPort})
	}
	pt := &Partial{
		profiles: make(map[netip.Addr]*HostProfile),
		ports:    make(map[hostPort]int),
	}
	get := func(h netip.Addr) *HostProfile {
		p := pt.profiles[h]
		if p == nil {
			p = &HostProfile{Addr: h}
			pt.profiles[h] = p
		}
		return p
	}

	// Fan-out and raw out-connection counts.
	sort.Slice(outE, func(i, j int) bool {
		if c := outE[i].host.Compare(outE[j].host); c != 0 {
			return c < 0
		}
		return outE[i].peer.Compare(outE[j].peer) < 0
	})
	for i := 0; i < len(outE); {
		h := outE[i].host
		fan, j := 0, i
		for ; j < len(outE) && outE[j].host == h; j++ {
			if j == i || outE[j].peer != outE[j-1].peer {
				fan++
			}
		}
		p := get(h)
		p.FanOut += fan
		p.ConnsOut += int64(j - i)
		i = j
	}

	// Fan-in and raw in-connection counts.
	sort.Slice(inE, func(i, j int) bool {
		if c := inE[i].host.Compare(inE[j].host); c != 0 {
			return c < 0
		}
		return inE[i].peer.Compare(inE[j].peer) < 0
	})
	for i := 0; i < len(inE); {
		h := inE[i].host
		fan, j := 0, i
		for ; j < len(inE) && inE[j].host == h; j++ {
			if j == i || inE[j].peer != inE[j-1].peer {
				fan++
			}
		}
		p := get(h)
		p.FanIn += fan
		p.ConnsIn += int64(j - i)
		i = j
	}

	// Distinct clients per local port. Resort the in-edges by
	// (host, port, peer) and scan (host, port) runs; the service
	// threshold is applied at Finalize, after any merging.
	sort.Slice(inE, func(i, j int) bool {
		if c := inE[i].host.Compare(inE[j].host); c != 0 {
			return c < 0
		}
		if inE[i].port != inE[j].port {
			return inE[i].port < inE[j].port
		}
		return inE[i].peer.Compare(inE[j].peer) < 0
	})
	for i := 0; i < len(inE); {
		h, port := inE[i].host, inE[i].port
		clients, j := 0, i
		for ; j < len(inE) && inE[j].host == h && inE[j].port == port; j++ {
			if j == i || inE[j].peer != inE[j-1].peer {
				clients++
			}
		}
		pt.ports[hostPort{h, port}] += clients
		i = j
	}
	return pt
}

// Merge folds other's evidence into pt. Exact when the underlying
// connection subsets were split by host pair: each (host, peer) edge
// domain then lives in exactly one source, so distinct counts add.
func (pt *Partial) Merge(other *Partial) {
	for h, op := range other.profiles {
		p := pt.profiles[h]
		if p == nil {
			p = &HostProfile{Addr: h}
			pt.profiles[h] = p
		}
		p.FanIn += op.FanIn
		p.FanOut += op.FanOut
		p.ConnsIn += op.ConnsIn
		p.ConnsOut += op.ConnsOut
	}
	for hp, n := range other.ports {
		pt.ports[hp] += n
	}
}

// Snapshot returns an independent copy of the evidence accumulated
// since the last Reset, so a long-running accumulation can cut per-epoch
// role censuses (Finalize consumes its receiver; snapshotting first
// keeps the running evidence intact).
func (pt *Partial) Snapshot() *Partial {
	s := &Partial{
		profiles: make(map[netip.Addr]*HostProfile, len(pt.profiles)),
		ports:    make(map[hostPort]int, len(pt.ports)),
	}
	for h, p := range pt.profiles {
		cp := *p
		cp.ServicePorts = append([]uint16(nil), p.ServicePorts...)
		s.profiles[h] = &cp
	}
	for hp, n := range pt.ports {
		s.ports[hp] = n
	}
	return s
}

// Reset clears the accumulated evidence in place.
func (pt *Partial) Reset() {
	clear(pt.profiles)
	clear(pt.ports)
}

// Finalize applies the service-port threshold and the role rules,
// consuming pt.
func (pt *Partial) Finalize(cfg Config) map[netip.Addr]*HostProfile {
	cfg = cfg.withDefaults()
	type svc struct {
		port uint16
		n    int
	}
	perHost := make(map[netip.Addr][]svc)
	for hp, clients := range pt.ports {
		if clients >= cfg.MinClientsPerService {
			perHost[hp.host] = append(perHost[hp.host], svc{hp.port, clients})
		}
	}
	for h, svcs := range perHost {
		sort.Slice(svcs, func(a, b int) bool {
			if svcs[a].n != svcs[b].n {
				return svcs[a].n > svcs[b].n
			}
			return svcs[a].port < svcs[b].port
		})
		p := pt.profiles[h]
		if p == nil {
			p = &HostProfile{Addr: h}
			pt.profiles[h] = p
		}
		p.ServicePorts = make([]uint16, len(svcs))
		for k, s := range svcs {
			p.ServicePorts[k] = s.port
		}
	}
	for _, p := range pt.profiles {
		p.Role = classifyOne(p, cfg)
	}
	return pt.profiles
}

func classifyOne(p *HostProfile, cfg Config) Role {
	fi, fo := float64(p.FanIn), float64(p.FanOut)
	switch {
	case p.FanIn == 0 && p.FanOut == 0:
		return Quiet
	case len(p.ServicePorts) > 0 && fi >= cfg.ServerFanInRatio*fo:
		return Server
	case p.FanIn >= cfg.MinPeerDegree && p.FanOut >= cfg.MinPeerDegree &&
		absDiff(fi, fo)/maxf(fi, fo) <= cfg.PeerSymmetry:
		return Peer
	case p.FanOut >= p.FanIn:
		return Client
	default:
		// In-dominated but no qualifying service port: likely a server
		// whose clients are few, or a probe target; call it server when a
		// port saw repeat business, client otherwise.
		if len(p.ServicePorts) > 0 {
			return Server
		}
		return Client
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Summary counts hosts by role.
func Summary(profiles map[netip.Addr]*HostProfile) map[Role]int {
	out := make(map[Role]int)
	for _, p := range profiles {
		out[p.Role]++
	}
	return out
}
