// Package roles infers host roles from connection patterns — the analysis
// direction the paper cites as related work (Tan et al., "Role
// Classification of Hosts within Enterprise Networks") and leaves to
// future study. Given a trace's connection summaries it classifies each
// host as a server (high fan-in concentrated on few local ports), a
// client (fan-out dominated), a peer (balanced, many symmetric
// conversations — the SrvLoc pattern), or inactive.
package roles

import (
	"net/netip"
	"sort"

	"enttrace/internal/flows"
)

// Role is an inferred host role.
type Role string

// Role values.
const (
	Server Role = "server"
	Client Role = "client"
	Peer   Role = "peer"
	Quiet  Role = "quiet"
)

// HostProfile carries the evidence behind a classification.
type HostProfile struct {
	Addr netip.Addr
	Role Role
	// FanIn/FanOut are distinct-peer counts as originator target/source.
	FanIn, FanOut int
	// ServicePorts lists the local ports that received connections from
	// at least MinClientsPerService distinct peers, most popular first.
	ServicePorts []uint16
	// ConnsIn/ConnsOut are raw connection counts.
	ConnsIn, ConnsOut int64
}

// Config tunes the classifier.
type Config struct {
	// MinClientsPerService is the distinct-peer threshold for a local
	// port to count as a service. Default 3.
	MinClientsPerService int
	// ServerFanInRatio: fan-in must exceed fan-out by this factor for a
	// server verdict. Default 2.
	ServerFanInRatio float64
	// PeerSymmetry: |fanIn-fanOut| / max ≤ this for a peer verdict when
	// both sides are substantial. Default 0.5.
	PeerSymmetry float64
	// MinPeerDegree: both fan directions must reach this for peer.
	// Default 5.
	MinPeerDegree int
}

func (c Config) withDefaults() Config {
	if c.MinClientsPerService == 0 {
		c.MinClientsPerService = 3
	}
	if c.ServerFanInRatio == 0 {
		c.ServerFanInRatio = 2
	}
	if c.PeerSymmetry == 0 {
		c.PeerSymmetry = 0.5
	}
	if c.MinPeerDegree == 0 {
		c.MinPeerDegree = 5
	}
	return c
}

// Classify profiles every host appearing as an endpoint of conns.
// Multicast flows are ignored.
func Classify(conns []*flows.Conn, cfg Config) map[netip.Addr]*HostProfile {
	cfg = cfg.withDefaults()
	type portClients map[uint16]map[netip.Addr]struct{}
	inPeers := make(map[netip.Addr]map[netip.Addr]struct{})
	outPeers := make(map[netip.Addr]map[netip.Addr]struct{})
	services := make(map[netip.Addr]portClients)
	connsIn := make(map[netip.Addr]int64)
	connsOut := make(map[netip.Addr]int64)

	addPeer := func(m map[netip.Addr]map[netip.Addr]struct{}, h, peer netip.Addr) {
		set := m[h]
		if set == nil {
			set = make(map[netip.Addr]struct{})
			m[h] = set
		}
		set[peer] = struct{}{}
	}
	for _, c := range conns {
		if c.Multicast {
			continue
		}
		orig, resp := c.Key.Src, c.Key.Dst
		addPeer(outPeers, orig, resp)
		addPeer(inPeers, resp, orig)
		connsOut[orig]++
		connsIn[resp]++
		pc := services[resp]
		if pc == nil {
			pc = make(portClients)
			services[resp] = pc
		}
		clients := pc[c.Key.DstPort]
		if clients == nil {
			clients = make(map[netip.Addr]struct{})
			pc[c.Key.DstPort] = clients
		}
		clients[orig] = struct{}{}
	}

	hosts := make(map[netip.Addr]struct{})
	for h := range inPeers {
		hosts[h] = struct{}{}
	}
	for h := range outPeers {
		hosts[h] = struct{}{}
	}
	out := make(map[netip.Addr]*HostProfile, len(hosts))
	for h := range hosts {
		p := &HostProfile{
			Addr:     h,
			FanIn:    len(inPeers[h]),
			FanOut:   len(outPeers[h]),
			ConnsIn:  connsIn[h],
			ConnsOut: connsOut[h],
		}
		type svc struct {
			port uint16
			n    int
		}
		var svcs []svc
		for port, clients := range services[h] {
			if len(clients) >= cfg.MinClientsPerService {
				svcs = append(svcs, svc{port, len(clients)})
			}
		}
		sort.Slice(svcs, func(i, j int) bool {
			if svcs[i].n != svcs[j].n {
				return svcs[i].n > svcs[j].n
			}
			return svcs[i].port < svcs[j].port
		})
		for _, s := range svcs {
			p.ServicePorts = append(p.ServicePorts, s.port)
		}
		p.Role = classifyOne(p, cfg)
		out[h] = p
	}
	return out
}

func classifyOne(p *HostProfile, cfg Config) Role {
	fi, fo := float64(p.FanIn), float64(p.FanOut)
	switch {
	case p.FanIn == 0 && p.FanOut == 0:
		return Quiet
	case len(p.ServicePorts) > 0 && fi >= cfg.ServerFanInRatio*fo:
		return Server
	case p.FanIn >= cfg.MinPeerDegree && p.FanOut >= cfg.MinPeerDegree &&
		absDiff(fi, fo)/maxf(fi, fo) <= cfg.PeerSymmetry:
		return Peer
	case p.FanOut >= p.FanIn:
		return Client
	default:
		// In-dominated but no qualifying service port: likely a server
		// whose clients are few, or a probe target; call it server when a
		// port saw repeat business, client otherwise.
		if len(p.ServicePorts) > 0 {
			return Server
		}
		return Client
	}
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Summary counts hosts by role.
func Summary(profiles map[netip.Addr]*HostProfile) map[Role]int {
	out := make(map[Role]int)
	for _, p := range profiles {
		out[p.Role]++
	}
	return out
}
