package roles

import (
	"net/netip"
	"testing"
	"testing/quick"

	"enttrace/internal/flows"
	"enttrace/internal/layers"
)

func addr(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})
}

func conn(src, dst netip.Addr, sport, dport uint16) *flows.Conn {
	return &flows.Conn{
		Key:   layers.FlowKey{Proto: layers.ProtoTCP, Src: src, Dst: dst, SrcPort: sport, DstPort: dport},
		Proto: layers.ProtoTCP,
	}
}

func TestServerDetection(t *testing.T) {
	srv := addr(1)
	var conns []*flows.Conn
	for i := 2; i < 12; i++ {
		conns = append(conns, conn(addr(i), srv, uint16(40000+i), 80))
	}
	profiles := Classify(conns, Config{})
	p := profiles[srv]
	if p == nil || p.Role != Server {
		t.Fatalf("server profile = %+v", p)
	}
	if len(p.ServicePorts) != 1 || p.ServicePorts[0] != 80 {
		t.Errorf("service ports = %v", p.ServicePorts)
	}
	if p.FanIn != 10 || p.FanOut != 0 {
		t.Errorf("fan = %d/%d", p.FanIn, p.FanOut)
	}
	// The contacting hosts are clients.
	if profiles[addr(3)].Role != Client {
		t.Errorf("client role = %v", profiles[addr(3)].Role)
	}
}

func TestMultiServiceServer(t *testing.T) {
	srv := addr(1)
	var conns []*flows.Conn
	for i := 2; i < 8; i++ {
		conns = append(conns, conn(addr(i), srv, uint16(40000+i), 25))
		conns = append(conns, conn(addr(i), srv, uint16(41000+i), 993))
	}
	p := Classify(conns, Config{})[srv]
	if len(p.ServicePorts) != 2 {
		t.Fatalf("service ports = %v", p.ServicePorts)
	}
}

func TestPeerDetection(t *testing.T) {
	// SrvLoc-style mesh: one host converses symmetrically with many.
	hub := addr(1)
	var conns []*flows.Conn
	for i := 2; i < 10; i++ {
		// Distinct ports so no single port crosses the service threshold.
		conns = append(conns, conn(hub, addr(i), uint16(42000+i), uint16(43000+i)))
		conns = append(conns, conn(addr(i), hub, uint16(44000+i), uint16(45000+i)))
	}
	p := Classify(conns, Config{})[hub]
	if p.Role != Peer {
		t.Fatalf("hub role = %v (%+v)", p.Role, p)
	}
}

func TestQuietAbsent(t *testing.T) {
	profiles := Classify(nil, Config{})
	if len(profiles) != 0 {
		t.Error("no conns should give no profiles")
	}
}

func TestMulticastIgnored(t *testing.T) {
	c := conn(addr(1), addr(2), 40000, 5004)
	c.Multicast = true
	if got := Classify([]*flows.Conn{c}, Config{}); len(got) != 0 {
		t.Errorf("multicast produced profiles: %v", got)
	}
}

func TestServiceThreshold(t *testing.T) {
	srv := addr(1)
	conns := []*flows.Conn{
		conn(addr(2), srv, 40001, 80),
		conn(addr(3), srv, 40002, 80),
	}
	// Two clients is below the default threshold of three.
	p := Classify(conns, Config{})[srv]
	if len(p.ServicePorts) != 0 {
		t.Errorf("ports = %v, want none below threshold", p.ServicePorts)
	}
	conns = append(conns, conn(addr(4), srv, 40003, 80))
	p = Classify(conns, Config{})[srv]
	if len(p.ServicePorts) != 1 {
		t.Errorf("ports = %v, want port 80 at threshold", p.ServicePorts)
	}
}

func TestSummary(t *testing.T) {
	srv := addr(1)
	var conns []*flows.Conn
	for i := 2; i < 8; i++ {
		conns = append(conns, conn(addr(i), srv, uint16(40000+i), 443))
	}
	sum := Summary(Classify(conns, Config{}))
	if sum[Server] != 1 || sum[Client] != 6 {
		t.Errorf("summary = %v", sum)
	}
}

// Property: every endpoint of every unicast connection gets a profile,
// and fan counts never exceed the number of distinct peers.
func TestCoverageProperty(t *testing.T) {
	f := func(pairs []uint16) bool {
		var conns []*flows.Conn
		for _, pr := range pairs {
			a, b := int(pr%50), int(pr/50%50)
			if a == b {
				continue
			}
			conns = append(conns, conn(addr(a), addr(b), 40000, uint16(1+pr%1000)))
		}
		profiles := Classify(conns, Config{})
		for _, c := range conns {
			if profiles[c.Key.Src] == nil || profiles[c.Key.Dst] == nil {
				return false
			}
		}
		for _, p := range profiles {
			if p.FanIn > len(profiles) || p.FanOut > len(profiles) {
				return false
			}
			if p.Role == Quiet {
				return false // quiet hosts can't appear via a connection
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkClassify(b *testing.B) {
	var conns []*flows.Conn
	for i := 0; i < 2000; i++ {
		conns = append(conns, conn(addr(i%100), addr(100+i%40), uint16(40000+i), uint16(1+i%500)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := Classify(conns, Config{}); len(got) == 0 {
			b.Fatal("empty")
		}
	}
}

// TestPartialSnapshotReset pins the epoch-cut contract: Snapshot
// captures the evidence accumulated so far independently (Finalize
// consumes its receiver, so a long-running accumulation snapshots
// first), and Reset clears the evidence in place.
func TestPartialSnapshotReset(t *testing.T) {
	srv := addr(1)
	conns := []*flows.Conn{
		conn(addr(2), srv, 40000, 80),
		conn(addr(3), srv, 40001, 80),
		conn(addr(4), srv, 40002, 80),
	}
	pt := Accumulate(conns)
	want := Summary(Accumulate(conns).Finalize(Config{}))
	got := Summary(pt.Snapshot().Finalize(Config{}))
	if len(got) != len(want) || got[Server] != want[Server] || got[Client] != want[Client] {
		t.Errorf("snapshot verdicts %v != direct %v", got, want)
	}
	// Finalize consumed the snapshot, not the original evidence.
	if again := Summary(pt.Snapshot().Finalize(Config{})); again[Server] != want[Server] {
		t.Error("finalizing a snapshot consumed the original evidence")
	}
	pt.Reset()
	if n := len(Summary(pt.Finalize(Config{}))); n != 0 {
		t.Errorf("reset left %d profiles", n)
	}
}
