package pipeline

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"testing"
	"time"

	"enttrace/internal/enterprise"
	"enttrace/internal/flows"
	"enttrace/internal/gen"
	"enttrace/internal/pcap"
)

// testTrace generates one small but fully featured trace.
func testTrace(t testing.TB) []*pcap.Packet {
	t.Helper()
	cfg := enterprise.D3()
	cfg.Scale = 0.05
	cfg.Monitored = cfg.Monitored[:1]
	cfg.PerTap = 1
	ds := gen.GenerateDataset(cfg)
	if len(ds.Traces) == 0 || len(ds.Traces[0].Packets) == 0 {
		t.Fatal("generator produced no packets")
	}
	return ds.Traces[0].Packets
}

// connFingerprint is a worker-count-independent connection identity.
func connFingerprint(c *flows.Conn) string {
	canon, _ := c.Key.Canonical()
	return fmt.Sprintf("%s|%d|%d|%d|%d|%d|%s|%d",
		canon, c.OrigPkts+c.RespPkts, c.OrigBytes, c.RespBytes,
		c.WireBytes, c.Retrans, c.State, c.Start.UnixNano())
}

func runWorkers(t *testing.T, pkts []*pcap.Packet, workers int) *Result {
	t.Helper()
	res, err := Run(pcap.NewSliceSource(pkts), Config{Workers: workers})
	if err != nil {
		t.Fatalf("Run(workers=%d): %v", workers, err)
	}
	return res
}

func TestShardingPreservesConnections(t *testing.T) {
	pkts := testTrace(t)
	base := runWorkers(t, pkts, 1)
	if base.Packets != int64(len(pkts)) {
		t.Fatalf("packets = %d, want %d", base.Packets, len(pkts))
	}
	want := fingerprints(base)
	for _, workers := range []int{2, 3, 4, 8} {
		res := runWorkers(t, pkts, workers)
		if res.Packets != base.Packets {
			t.Errorf("workers=%d: packets = %d, want %d", workers, res.Packets, base.Packets)
		}
		if len(res.Shards) != workers {
			t.Errorf("workers=%d: %d shards", workers, len(res.Shards))
		}
		got := fingerprints(res)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d conns, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: conn %d fingerprint mismatch\n got %s\nwant %s",
					workers, i, got[i], want[i])
			}
		}
	}
}

// fingerprints returns the sorted multiset of connection identities —
// including per-connection flow state, so a connection split across
// shards (a sharding bug) would change byte/packet totals and show up.
func fingerprints(res *Result) []string {
	var out []string
	for _, rec := range res.SortedConns() {
		out = append(out, connFingerprint(rec.Conn))
	}
	sort.Strings(out)
	return out
}

func TestSortedConnsOrderedByFirstPacket(t *testing.T) {
	pkts := testTrace(t)
	res := runWorkers(t, pkts, 4)
	recs := res.SortedConns()
	if len(recs) == 0 {
		t.Fatal("no connections")
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].FirstIdx <= recs[i-1].FirstIdx {
			t.Fatalf("FirstIdx not strictly increasing at %d: %d then %d",
				i, recs[i-1].FirstIdx, recs[i].FirstIdx)
		}
	}
	// First-packet order must agree with start-timestamp order.
	for i := 1; i < len(recs); i++ {
		if recs[i].Conn.Start.Before(recs[i-1].Conn.Start) {
			t.Fatalf("conn %d starts before its predecessor", i)
		}
	}
}

func TestPcapSourceMatchesSliceSource(t *testing.T) {
	// The classic pcap format stores microsecond timestamps, so truncate
	// the generated nanosecond stamps before comparing the two sources.
	var pkts []*pcap.Packet
	for _, p := range testTrace(t) {
		cp := *p
		cp.Timestamp = p.Timestamp.Truncate(time.Microsecond)
		pkts = append(pkts, &cp)
	}
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, 0, pcap.LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if err := w.WriteCaptured(p.Timestamp, p.Data, p.OrigLen); err != nil {
			t.Fatal(err)
		}
	}
	src, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fromFile, err := Run(src, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	fromSlice := runWorkers(t, pkts, 2)
	got, want := fingerprints(fromFile), fingerprints(fromSlice)
	if len(got) != len(want) {
		t.Fatalf("pcap source: %d conns, slice source: %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("conn %d differs between pcap and slice sources", i)
		}
	}
}

// pcapBytes serializes packets to a classic pcap stream (microsecond
// timestamps, so inputs should already be microsecond-aligned).
func pcapBytes(t testing.TB, pkts []*pcap.Packet) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := pcap.NewWriter(&buf, 0, pcap.LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkts {
		if err := w.WriteCaptured(p.Timestamp, p.Data, p.OrigLen); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestPooledSourceMatchesSliceSource runs the same trace through a
// recycled-packet source and an owning slice source at several worker
// counts: connection results must be identical, pinning that buffer
// reuse never corrupts flow state.
func TestPooledSourceMatchesSliceSource(t *testing.T) {
	var pkts []*pcap.Packet
	for _, p := range testTrace(t) {
		cp := *p
		cp.Timestamp = p.Timestamp.Truncate(time.Microsecond)
		pkts = append(pkts, &cp)
	}
	raw := pcapBytes(t, pkts)
	for _, workers := range []int{1, 4, 8} {
		rd, err := pcap.NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		pooled, err := Run(pcap.NewPooledReader(rd, nil), Config{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		slice := runWorkers(t, pkts, workers)
		got, want := fingerprints(pooled), fingerprints(slice)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: pooled %d conns, slice %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: conn %d differs between pooled and slice sources", workers, i)
			}
		}
	}
}

func TestEmptySource(t *testing.T) {
	res, err := Run(pcap.NewSliceSource(nil), Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Packets != 0 || len(res.Shards) != 0 || !res.Base.IsZero() {
		t.Fatalf("empty source result: %+v", res)
	}
}

type failingSource struct {
	pkts []*pcap.Packet
	pos  int
}

func (s *failingSource) Next() (*pcap.Packet, error) {
	if s.pos >= len(s.pkts) {
		return nil, io.ErrUnexpectedEOF
	}
	p := s.pkts[s.pos]
	s.pos++
	return p, nil
}

func TestSourceErrorPropagates(t *testing.T) {
	pkts := testTrace(t)
	if len(pkts) > 500 {
		pkts = pkts[:500]
	}
	for _, workers := range []int{1, 4} {
		_, err := Run(&failingSource{pkts: pkts}, Config{Workers: workers})
		if err != io.ErrUnexpectedEOF {
			t.Errorf("workers=%d: err = %v, want ErrUnexpectedEOF", workers, err)
		}
	}
}

// truncatedTCPFrame builds an Ethernet+IPv4 frame whose capture stops 4
// bytes into the TCP header: the port bytes are visible on the wire, but
// layers.Decode cannot parse the transport header, so the flow table
// keys the packet with zero ports.
func truncatedTCPFrame(srcLast, dstLast byte, srcPort, dstPort uint16) *pcap.Packet {
	f := make([]byte, 38)
	f[12], f[13] = 0x08, 0x00 // IPv4
	ip := f[14:]
	ip[0] = 0x45
	ip[2], ip[3] = 0, 60 // total length: full TCP header + payload existed
	ip[8] = 64           // TTL
	ip[9] = 6            // TCP
	copy(ip[12:16], []byte{10, 0, 0, srcLast})
	copy(ip[16:20], []byte{10, 0, 1, dstLast})
	ip[20] = byte(srcPort >> 8)
	ip[21] = byte(srcPort)
	ip[22] = byte(dstPort >> 8)
	ip[23] = byte(dstPort)
	return &pcap.Packet{Timestamp: time.Unix(1000, 0).UTC(), Data: f, OrigLen: 74}
}

// TestTruncatedTransportHeadersShardConsistently pins the regression
// where a snaplen cutting into the TCP header (fewer than 20 captured
// transport bytes) left the flow table keying packets with zero ports
// while the router sharded them by the visible port bytes — splitting
// one host pair's flow across shards and breaking worker-count
// determinism.
func TestTruncatedTransportHeadersShardConsistently(t *testing.T) {
	// One host pair, many distinct ephemeral port pairs: the flow table
	// sees a single zero-port connection; a port-sensitive shard hash
	// would scatter it.
	var pkts []*pcap.Packet
	for i := 0; i < 32; i++ {
		pkts = append(pkts, truncatedTCPFrame(1, 2, uint16(40000+i), 445))
	}
	one := runWorkers(t, pkts, 1)
	eight := runWorkers(t, pkts, 8)
	a, b := fingerprints(one), fingerprints(eight)
	if len(a) != 1 {
		t.Fatalf("expected one zero-port connection at 1 worker, got %d", len(a))
	}
	if len(b) != len(a) {
		t.Fatalf("truncated flow split across shards: %d conns at 1 worker, %d at 8", len(a), len(b))
	}
	if a[0] != b[0] {
		t.Fatalf("truncated flow differs between 1 and 8 workers:\n %s\n %s", a[0], b[0])
	}
}

func TestShardOfDirectionIndependent(t *testing.T) {
	pkts := testTrace(t)
	// For every packet, flipping addresses and ports must not change the
	// shard. Rather than synthesizing flips, assert the invariant the
	// sharding actually needs: packets of one connection all land on the
	// same shard. Run with many workers and check each connection's
	// packet count against the single-shard run.
	one := runWorkers(t, pkts, 1)
	many := runWorkers(t, pkts, 8)
	count := func(res *Result) map[string]int64 {
		m := make(map[string]int64)
		for _, rec := range res.SortedConns() {
			canon, _ := rec.Conn.Key.Canonical()
			m[canon.String()] += rec.Conn.Packets()
		}
		return m
	}
	a, b := count(one), count(many)
	if len(a) != len(b) {
		t.Fatalf("conn key sets differ: %d vs %d", len(a), len(b))
	}
	for k, n := range a {
		if b[k] != n {
			t.Fatalf("conn %s: %d packets on 1 worker, %d on 8", k, n, b[k])
		}
	}
}
