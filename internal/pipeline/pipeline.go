// Package pipeline is the concurrent, flow-sharded streaming engine under
// the analysis core. It reads packets incrementally from a Source (an
// in-memory slice or a pcap stream), batches them, and shards them by
// canonical 5-tuple hash across N workers. Each worker owns a private
// connection table and whatever per-shard state the caller's Sink
// maintains, so the hot path — decode, flow tracking, TCP reassembly —
// runs without locks. Because a connection's packets all hash to the same
// shard, per-connection state never crosses a worker boundary.
//
// Determinism: every packet carries a global index assigned in read
// order, and every connection records the index of its first packet.
// Result.SortedConns returns the dataset's connections in first-packet
// order regardless of worker count, which is what lets the analysis layer
// produce bit-identical reports for 1 or N workers: all cross-connection
// accumulation is replayed in that canonical order after the workers
// finish.
package pipeline

import (
	"io"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"enttrace/internal/flows"
	"enttrace/internal/kmerge"
	"enttrace/internal/layers"
	"enttrace/internal/pcap"
)

// Source is the pipeline's ingest seam: anything that yields packets in
// capture order, ending with a bare io.EOF. It is pcap's PacketSource;
// *pcap.Reader (file replay), pcap.SliceSource (in-memory traces),
// pcap.Merger (multi-tap merge), and gen.StreamSource (the synthetic
// load harness) all satisfy it directly, and the pipeline cannot tell
// them apart — a streamed generator run and a pcap replay of the same
// frames produce byte-identical results. Sources that additionally
// implement pcap.Releaser get each packet back as soon as its worker is
// done, which is what keeps pooled sources' memory bounded; see
// DESIGN.md "Packet sources".
type Source = pcap.PacketSource

// isEOF recognizes a clean end of stream. Only a bare io.EOF counts:
// pcap.Reader wraps read failures — including an io.EOF hit midway
// through a record — in descriptive errors, and those must propagate.
func isEOF(err error) bool {
	return err == io.EOF
}

// ErrorPolicy selects how Run treats source read errors.
type ErrorPolicy int

// Error policies.
const (
	// FailFast aborts the run on the first source error (the default,
	// and the historical behavior).
	FailFast ErrorPolicy = iota
	// Degrade skips poisoned records and keeps going: recoverable
	// faults (per pcap.SourceFault) lose only the affected record;
	// terminal faults end the trace early. Either way the packets
	// already routed are drained, every error is folded into
	// Result.SourceErrors, and Run returns a nil error — the degraded
	// run is an answer, not a failure.
	Degrade
)

// SourceError is one source read failure recorded by the Degrade
// policy. The fields mirror pcap.SourceFault; errors without that
// classification fall back to pcap.ClassifyReadError.
type SourceError struct {
	// Kind is the census key ("read-error", "torn-record", ...).
	Kind string
	// Index is the number of packets delivered before the error — the
	// failure's offset in the analyzed packet stream.
	Index int64
	// Lost is the captured bytes the failure dropped (0 when unknown).
	Lost int64
	// Terminal marks the error that ended the trace early.
	Terminal bool
	// Msg is the underlying error text.
	Msg string
}

// Sink receives per-packet callbacks on one shard. A Sink is owned by a
// single worker goroutine and needs no synchronization; all cross-shard
// aggregation happens after Run returns, when the caller walks
// Result.Shards in shard order.
type Sink interface {
	// Packet is called for every successfully decoded packet routed to
	// this shard, in global read order within the shard. conn is nil for
	// packets with no transport flow (ARP, IPX, fragments); p is reused
	// between calls and must not be retained. pk is the raw capture
	// record: when the source recycles packets (pcap.Releaser), pk and
	// any slice into pk.Data — including p.Payload — are valid only
	// until Packet returns, unless the sink calls pk.Retain() to keep
	// the buffer out of the pool.
	Packet(idx int64, pk *pcap.Packet, p *layers.Packet, conn *flows.Conn, dir flows.Dir)
	// Undecodable is called for packets layers.Decode rejects.
	Undecodable(idx int64)
}

// Config parameterizes a pipeline run.
type Config struct {
	// Workers is the shard count; <= 0 uses GOMAXPROCS.
	Workers int
	// BatchSize is the number of packets handed to a worker per channel
	// operation; <= 0 uses DefaultBatchSize.
	BatchSize int
	// Flows configures each shard's connection table.
	Flows flows.Config
	// NewSink builds the per-shard sink. It is called serially (shard 0
	// first) before any packet is processed; base is the first packet's
	// timestamp. May be nil for flow-tracking-only runs.
	NewSink func(shard int, base time.Time) Sink
	// OnError selects the source read-error policy; the zero value is
	// FailFast.
	OnError ErrorPolicy
	// Stopped, when non-nil, is polled between packets; once it returns
	// true the run stops reading, drains the packets already routed,
	// and returns cleanly with Result.Stopped set — the graceful-drain
	// hook for long-running sources.
	Stopped func() bool
	// ErrCounter, when non-nil, is incremented as the Degrade policy
	// folds each source error — live mid-run progress for health
	// endpoints, ahead of the end-of-trace Result.
	ErrCounter *atomic.Int64
}

// DefaultBatchSize amortizes channel overhead without hurting locality.
const DefaultBatchSize = 256

// ConnRecord pairs a finished connection with the global index of its
// first packet — the pipeline's canonical ordering key.
type ConnRecord struct {
	Conn     *flows.Conn
	FirstIdx int64
	Shard    int
}

// ShardResult is one worker's output.
type ShardResult struct {
	Shard int
	Sink  Sink
	Conns []ConnRecord
}

// Result is a full pipeline run over one trace.
type Result struct {
	Shards []ShardResult
	// Packets is the total read from the source, decodable or not.
	Packets int64
	// Base is the first packet's timestamp (zero for an empty source).
	// Per-shard sinks receive it through Config.NewSink before any
	// packet is processed.
	Base time.Time
	// SourceErrors is the Degrade policy's error census, in occurrence
	// order (nil under FailFast, or when the source never failed).
	SourceErrors []SourceError
	// Stopped reports that Config.Stopped ended the run early.
	Stopped bool
	// CapEvicted counts connections the shard tables' MaxConns backstop
	// evicted, summed over shards.
	CapEvicted int64
}

// SortedConns merges every shard's connections into first-packet order.
// The order is identical for any worker count. Each shard's list is
// already sorted (worker.finish sorts in parallel before the workers
// join), so this is a k-way merge of sorted runs — a loser tree, not
// the O(n·k) head scan this used to be: the merge runs on the serial
// path after the workers join, so its cost is Amdahl residue that used
// to grow with the worker count. FirstIdx values are unique global
// packet indices, so the merge order is total.
func (r *Result) SortedConns() []ConnRecord {
	runs := make([][]ConnRecord, 0, len(r.Shards))
	for _, s := range r.Shards {
		runs = append(runs, s.Conns)
	}
	return kmerge.MergeBy(runs, func(c ConnRecord) int64 { return c.FirstIdx })
}

// item is one routed packet.
type item struct {
	idx int64
	p   *pcap.Packet
}

// worker owns one shard: a connection table, the caller's sink, and the
// first-packet index of every connection it has seen.
type worker struct {
	shard    int
	tbl      *flows.Table
	sink     Sink
	firstIdx map[*flows.Conn]int64
	pkt      layers.Packet
	in       chan []item
	// release recycles a packet once the worker is done with it; nil
	// when the source does not pool packets.
	release func(*pcap.Packet)
	// batches takes emptied batch slices back for the router to refill.
	batches *batchPool
}

func newWorker(shard int, cfg Config, base time.Time) *worker {
	w := &worker{
		shard:    shard,
		tbl:      flows.NewTable(cfg.Flows),
		firstIdx: make(map[*flows.Conn]int64),
	}
	if cfg.NewSink != nil {
		w.sink = cfg.NewSink(shard, base)
	}
	return w
}

func (w *worker) process(it item) {
	pk := it.p
	if err := layers.Decode(pk.Data, pk.OrigLen, &w.pkt); err != nil {
		if w.sink != nil {
			w.sink.Undecodable(it.idx)
		}
		return
	}
	conn, dir := w.tbl.Packet(pk.Timestamp, &w.pkt, pk.OrigLen)
	if conn != nil {
		if _, seen := w.firstIdx[conn]; !seen {
			w.firstIdx[conn] = it.idx
		}
	}
	if w.sink != nil {
		w.sink.Packet(it.idx, pk, &w.pkt, conn, dir)
	}
}

func (w *worker) drain() {
	for batch := range w.in {
		for _, it := range batch {
			w.process(it)
			if w.release != nil {
				w.release(it.p)
			}
		}
		if w.batches != nil {
			w.batches.put(batch)
		}
	}
}

// batchPool is a fixed-size free list of routed-batch slices, recycled
// between the router (get/refill) and the workers (put after drain). A
// plain buffered channel keeps it allocation-free in steady state and
// safe across goroutines; when the list runs dry the router falls back
// to allocating, so it can never deadlock.
type batchPool struct {
	free      chan []item
	batchSize int
}

func newBatchPool(workers, batchSize int) *batchPool {
	// Capacity covers every batch that can be in flight at once: per
	// worker, the channel buffer plus one being drained plus one being
	// filled by the router.
	return &batchPool{
		free:      make(chan []item, workers*(workerQueueDepth+2)),
		batchSize: batchSize,
	}
}

func (p *batchPool) get() []item {
	select {
	case b := <-p.free:
		return b[:0]
	default:
		return make([]item, 0, p.batchSize)
	}
}

func (p *batchPool) put(b []item) {
	select {
	case p.free <- b:
	default:
	}
}

// workerQueueDepth is each worker's input channel buffer, in batches.
const workerQueueDepth = 4

func (w *worker) finish() ShardResult {
	w.tbl.Flush()
	conns := w.tbl.Conns()
	recs := make([]ConnRecord, len(conns))
	for i, c := range conns {
		recs[i] = ConnRecord{Conn: c, FirstIdx: w.firstIdx[c], Shard: w.shard}
	}
	// Sort on the worker, in parallel across shards: SortedConns then
	// only k-way merges the per-shard runs on the serial path.
	sort.Slice(recs, func(i, j int) bool { return recs[i].FirstIdx < recs[j].FirstIdx })
	return ShardResult{Shard: w.shard, Sink: w.sink, Conns: recs}
}

// sourceReader wraps a source's Next with the error policy and the
// stop check. Exactly one goroutine (the router) calls next; the policy
// state needs no synchronization.
type sourceReader struct {
	src     Source
	degrade bool
	stopped func() bool
	errs    *atomic.Int64
	res     *Result
	// err is the terminal read error under FailFast — the one Run
	// returns after draining.
	err error
}

// next returns the next packet, or false when the stream is over: clean
// EOF, a stop request, a terminal fault (Degrade), or any error at all
// (FailFast, recorded in r.err). idx is the number of packets delivered
// so far — the offset the error census records. Under Degrade,
// recoverable faults are folded and skipped here, invisibly to the
// caller.
func (r *sourceReader) next(idx int64) (*pcap.Packet, bool) {
	for {
		if r.stopped != nil && r.stopped() {
			r.res.Stopped = true
			return nil, false
		}
		p, err := r.src.Next()
		if err == nil {
			return p, true
		}
		if isEOF(err) {
			return nil, false
		}
		if !r.degrade {
			r.err = err
			return nil, false
		}
		kind, recoverable := pcap.ClassifyReadError(err)
		r.res.SourceErrors = append(r.res.SourceErrors, SourceError{
			Kind:     kind,
			Index:    idx,
			Lost:     pcap.FaultLostBytes(err),
			Terminal: !recoverable,
			Msg:      err.Error(),
		})
		if r.errs != nil {
			r.errs.Add(1)
		}
		if !recoverable {
			return nil, false
		}
	}
}

// Run streams every packet from src through the sharded pipeline and
// returns the per-shard results. On a source read error the packets
// already routed are still drained; under the default FailFast policy
// the error is returned, under Degrade it is folded into
// Result.SourceErrors and the run keeps going when the fault was
// recoverable.
func Run(src Source, cfg Config) (*Result, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	batchSize := cfg.BatchSize
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}

	res := &Result{}
	rdr := &sourceReader{
		src:     src,
		degrade: cfg.OnError == Degrade,
		stopped: cfg.Stopped,
		errs:    cfg.ErrCounter,
		res:     res,
	}
	first, ok := rdr.next(0)
	if !ok {
		if rdr.err != nil {
			return nil, rdr.err
		}
		return res, nil
	}
	base := first.Timestamp
	res.Base = base

	// Pooled sources get their packets back as soon as a worker is done
	// with them; sinks keep buffers alive across that boundary by
	// calling Retain.
	var release func(*pcap.Packet)
	if rel, ok := src.(pcap.Releaser); ok {
		release = rel.Release
	}

	if workers == 1 {
		return runSerial(rdr, first, cfg, res, release)
	}

	batches := newBatchPool(workers, batchSize)
	ws := make([]*worker, workers)
	for i := 0; i < workers; i++ {
		ws[i] = newWorker(i, cfg, base)
		ws[i].in = make(chan []item, workerQueueDepth)
		ws[i].release = release
		ws[i].batches = batches
	}
	done := make(chan int, workers)
	for _, w := range ws {
		w := w
		go func() {
			w.drain()
			done <- w.shard
		}()
	}

	pending := make([][]item, workers)
	for s := range pending {
		pending[s] = batches.get()
	}
	flush := func(s int) {
		if len(pending[s]) > 0 {
			ws[s].in <- pending[s]
			pending[s] = batches.get()
		}
	}

	pk := first
	var idx int64
	for {
		s := shardOf(pk.Data, workers)
		pending[s] = append(pending[s], item{idx: idx, p: pk})
		if len(pending[s]) >= batchSize {
			flush(s)
		}
		idx++
		var ok bool
		pk, ok = rdr.next(idx)
		if !ok {
			break
		}
	}
	res.Packets = idx
	for s := range ws {
		flush(s)
		close(ws[s].in)
	}
	for range ws {
		<-done
	}
	for _, w := range ws {
		res.Shards = append(res.Shards, w.finish())
		res.CapEvicted += w.tbl.CapEvicted()
	}
	return res, rdr.err
}

// runSerial is the single-worker fast path: no goroutines, no channels.
// It is the sequential baseline the parallel path is benchmarked against
// and must produce byte-identical results to it.
func runSerial(rdr *sourceReader, first *pcap.Packet, cfg Config, res *Result, release func(*pcap.Packet)) (*Result, error) {
	w := newWorker(0, cfg, first.Timestamp)
	pk := first
	var idx int64
	for {
		w.process(item{idx: idx, p: pk})
		if release != nil {
			release(pk)
		}
		idx++
		var ok bool
		pk, ok = rdr.next(idx)
		if !ok {
			break
		}
	}
	res.Packets = idx
	res.Shards = []ShardResult{w.finish()}
	res.CapEvicted = w.tbl.CapEvicted()
	return res, rdr.err
}
