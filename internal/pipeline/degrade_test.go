package pipeline

import (
	"bytes"
	"sync/atomic"
	"testing"

	"enttrace/internal/faults"
	"enttrace/internal/pcap"
)

// TestDegradeRecoverableFoldsCensus injects recoverable faults and pins
// the Degrade contract: the run finishes with a nil error, the poisoned
// record is the only loss, and the census matches the injector's
// manifest — at one worker and many.
func TestDegradeRecoverableFoldsCensus(t *testing.T) {
	pkts := testTrace(t)
	if len(pkts) > 400 {
		pkts = pkts[:400]
	}
	sched := faults.Schedule{Events: []faults.Event{
		{Kind: faults.ReadError, Index: 50},
		{Kind: faults.ShortRead, Index: 120, Cut: 20},
	}}
	for _, workers := range []int{1, 4} {
		var cnt atomic.Int64
		src := faults.Wrap(pcap.NewSliceSource(pkts), sched)
		res, err := Run(src, Config{Workers: workers, OnError: Degrade, ErrCounter: &cnt})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		// The read error drops one record; the short read truncates but
		// still delivers.
		if want := int64(len(pkts) - 1); res.Packets != want {
			t.Errorf("workers=%d: packets = %d, want %d", workers, res.Packets, want)
		}
		if len(res.SourceErrors) != 2 {
			t.Fatalf("workers=%d: census = %+v, want 2 entries", workers, res.SourceErrors)
		}
		exp := src.Expected()
		if got := res.SourceErrors[0]; got.Kind != "read-error" || got.Index != exp.FirstIndex || got.Terminal {
			t.Errorf("workers=%d: first census entry %+v vs manifest first index %d", workers, got, exp.FirstIndex)
		}
		if got := res.SourceErrors[1]; got.Kind != "short-read" || got.Index != exp.LastIndex || got.Terminal {
			t.Errorf("workers=%d: second census entry %+v vs manifest last index %d", workers, got, exp.LastIndex)
		}
		var lost int64
		for _, se := range res.SourceErrors {
			lost += se.Lost
		}
		if lost != exp.LostBytes {
			t.Errorf("workers=%d: census lost %d bytes, manifest %d", workers, lost, exp.LostBytes)
		}
		if cnt.Load() != 2 {
			t.Errorf("workers=%d: live error counter = %d, want 2", workers, cnt.Load())
		}
		if res.Stopped {
			t.Errorf("workers=%d: Stopped set on an unstopped run", workers)
		}
	}
}

// TestDegradeTerminalEndsTraceEarly: a torn record under Degrade ends
// the trace cleanly at the fault, with the packets before it analyzed
// and the terminal error folded, not returned.
func TestDegradeTerminalEndsTraceEarly(t *testing.T) {
	pkts := testTrace(t)
	if len(pkts) > 300 {
		pkts = pkts[:300]
	}
	sched := faults.Schedule{Events: []faults.Event{{Kind: faults.Torn, Index: 100}}}
	for _, workers := range []int{1, 4} {
		src := faults.Wrap(pcap.NewSliceSource(pkts), sched)
		res, err := Run(src, Config{Workers: workers, OnError: Degrade})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Packets != 100 {
			t.Errorf("workers=%d: packets = %d, want 100", workers, res.Packets)
		}
		if len(res.SourceErrors) != 1 || !res.SourceErrors[0].Terminal || res.SourceErrors[0].Kind != "torn-record" {
			t.Errorf("workers=%d: census = %+v, want one terminal torn-record", workers, res.SourceErrors)
		}
	}
}

// TestFailFastStillAborts pins that the default policy is untouched by
// the degrade machinery: the first injected error comes back to the
// caller and no census is built.
func TestFailFastStillAborts(t *testing.T) {
	pkts := testTrace(t)
	if len(pkts) > 300 {
		pkts = pkts[:300]
	}
	sched := faults.Schedule{Events: []faults.Event{{Kind: faults.ReadError, Index: 50}}}
	src := faults.Wrap(pcap.NewSliceSource(pkts), sched)
	res, err := Run(src, Config{Workers: 4})
	if err == nil {
		t.Fatal("FailFast returned nil error on an injected fault")
	}
	if res == nil || res.Packets != 50 {
		t.Fatalf("FailFast drained result = %+v, want 50 packets", res)
	}
	if len(res.SourceErrors) != 0 {
		t.Errorf("FailFast built a census: %+v", res.SourceErrors)
	}
}

// TestDegradeRealTornPcap drives the policy through a genuine truncated
// pcap stream — no injector — so the classifier's io.ErrUnexpectedEOF
// mapping is exercised end to end.
func TestDegradeRealTornPcap(t *testing.T) {
	var pkts []*pcap.Packet
	for _, p := range testTrace(t) {
		cp := *p
		cp.Timestamp = p.Timestamp.Truncate(1000)
		pkts = append(pkts, &cp)
	}
	raw := pcapBytes(t, pkts)
	rd, err := pcap.NewReader(bytes.NewReader(raw[:len(raw)-7]))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(rd, Config{Workers: 2, OnError: Degrade})
	if err != nil {
		t.Fatalf("Degrade returned error on torn pcap: %v", err)
	}
	if want := int64(len(pkts) - 1); res.Packets != want {
		t.Errorf("packets = %d, want %d (all but the torn final record)", res.Packets, want)
	}
	if len(res.SourceErrors) != 1 || res.SourceErrors[0].Kind != "torn-record" || !res.SourceErrors[0].Terminal {
		t.Fatalf("census = %+v, want one terminal torn-record", res.SourceErrors)
	}
	if res.SourceErrors[0].Index != int64(len(pkts)-1) {
		t.Errorf("census index = %d, want %d", res.SourceErrors[0].Index, len(pkts)-1)
	}
}

// countingSource counts delivered packets and fires a callback at the
// nth, the seam the stop test uses to request a stop at an exact point.
type countingSource struct {
	inner Source
	n     int64
	at    int64
	fire  func()
}

func (c *countingSource) Next() (*pcap.Packet, error) {
	p, err := c.inner.Next()
	if err == nil {
		c.n++
		if c.n == c.at {
			c.fire()
		}
	}
	return p, err
}

// TestStoppedDrainsCleanly: the Stopped hook ends the run after exactly
// the packets delivered so far, drains them, and marks the result.
func TestStoppedDrainsCleanly(t *testing.T) {
	pkts := testTrace(t)
	if len(pkts) > 500 {
		pkts = pkts[:500]
	}
	for _, workers := range []int{1, 4} {
		var stop atomic.Bool
		src := &countingSource{inner: pcap.NewSliceSource(pkts), at: 100, fire: func() { stop.Store(true) }}
		res, err := Run(src, Config{Workers: workers, Stopped: stop.Load})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !res.Stopped {
			t.Errorf("workers=%d: Stopped not set", workers)
		}
		// The stop flag rises as packet 100 is delivered; the router's
		// poll before the next read ends the run there.
		if res.Packets != 100 {
			t.Errorf("workers=%d: packets = %d, want 100", workers, res.Packets)
		}
		var conns int
		for _, s := range res.Shards {
			conns += len(s.Conns)
		}
		if conns == 0 {
			t.Errorf("workers=%d: no connections drained from the stopped run", workers)
		}
	}
}
