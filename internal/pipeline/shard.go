package pipeline

import "encoding/binary"

// shardOf routes a raw Ethernet frame to a shard with a header-only
// 5-tuple parse — no allocation, no full decode. The only property the
// router needs is that every packet of one connection (as built by
// layers.Decode + flows.Table) lands on the same shard:
//
//   - TCP/UDP packets hash the canonical (proto, addr pair, port pair).
//   - ICMP and non-first IP fragments hash with zero ports, a superset of
//     the flow table's keying (echo-ID refinement still stays on-shard
//     because both directions share the address pair).
//   - Non-IP frames (ARP, IPX) never form connections; they hash by
//     header bytes purely for load spreading.
//
// Full decoding happens later, on the shard worker, in parallel.
func shardOf(data []byte, workers int) int {
	if workers <= 1 {
		return 0
	}
	h := uint64(fnvOffset)
	if len(data) < 14 {
		return 0
	}
	et := binary.BigEndian.Uint16(data[12:14])
	if et != etherTypeIPv4 && et != etherTypeIPv6 {
		// Connection-less link traffic: spread by the first header bytes.
		for _, b := range data[:14] {
			h = (h ^ uint64(b)) * fnvPrime
		}
		return int(h % uint64(workers))
	}
	ip := data[14:]
	var src, dst []byte
	var proto byte
	var ports []byte
	switch et {
	case etherTypeIPv4:
		if len(ip) < 20 || ip[0]>>4 != 4 {
			// Decode either fails or finds no addresses — no connection
			// forms, so any shard is consistent.
			return 0
		}
		hlen := int(ip[0]&0x0f) * 4
		if hlen < 20 {
			return 0
		}
		proto = ip[9]
		src, dst = ip[12:16], ip[16:20]
		// Ports participate in the hash only when layers.Decode would
		// parse the transport header: not a later fragment, the header
		// captured in full (TCP 20 / UDP 8 bytes), and the IP total
		// length not cutting it short. Otherwise the flow table keys
		// the packet with zero ports, and the hash must match.
		fragOff := binary.BigEndian.Uint16(ip[6:8]) & 0x1fff
		if fragOff == 0 && (proto == protoTCP || proto == protoUDP) && len(ip) >= hlen {
			bodyLen := len(ip) - hlen
			if totalLen := int(binary.BigEndian.Uint16(ip[2:4])); totalLen >= hlen && totalLen-hlen < bodyLen {
				bodyLen = totalLen - hlen
			}
			if bodyLen >= transportHeaderLen(proto) {
				ports = ip[hlen : hlen+4]
			}
		}
	case etherTypeIPv6:
		if len(ip) < 40 || ip[0]>>4 != 6 {
			return 0
		}
		proto = ip[6]
		src, dst = ip[8:24], ip[24:40]
		if proto == protoTCP || proto == protoUDP {
			bodyLen := len(ip) - 40
			if payLen := int(binary.BigEndian.Uint16(ip[4:6])); payLen < bodyLen {
				bodyLen = payLen
			}
			if bodyLen >= transportHeaderLen(proto) {
				ports = ip[40:44]
			}
		}
	}
	// Canonicalize direction: hash the (addr, port) endpoints in sorted
	// order so both directions of a connection collide.
	var sp, dp uint16
	if ports != nil {
		sp = binary.BigEndian.Uint16(ports[0:2])
		dp = binary.BigEndian.Uint16(ports[2:4])
	}
	if swap := compareEndpoint(src, sp, dst, dp) > 0; swap {
		src, dst = dst, src
		sp, dp = dp, sp
	}
	h = (h ^ uint64(proto)) * fnvPrime
	for _, b := range src {
		h = (h ^ uint64(b)) * fnvPrime
	}
	for _, b := range dst {
		h = (h ^ uint64(b)) * fnvPrime
	}
	h = (h ^ uint64(sp)) * fnvPrime
	h = (h ^ uint64(dp)) * fnvPrime
	return int(h % uint64(workers))
}

// transportHeaderLen is the minimum captured bytes layers.Decode needs
// to parse ports out of a transport header.
func transportHeaderLen(proto byte) int {
	if proto == protoTCP {
		return 20
	}
	return 8 // UDP
}

// compareEndpoint orders (addr, port) endpoints bytewise.
func compareEndpoint(a []byte, ap uint16, b []byte, bp uint16) int {
	for i := range a {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case ap < bp:
		return -1
	case ap > bp:
		return 1
	}
	return 0
}

const (
	etherTypeIPv4 = 0x0800
	etherTypeIPv6 = 0x86DD
	protoICMP     = 1
	protoTCP      = 6
	protoUDP      = 17

	fnvOffset uint64 = 0xcbf29ce484222325
	fnvPrime  uint64 = 0x100000001b3
)
