package categories

import (
	"net/netip"
	"testing"

	"enttrace/internal/layers"
)

// Test endpoints: classification is host-scoped for dynamic entries, so
// the tests name a client, a server, and an unrelated third host.
var (
	tClient = netip.AddrFrom4([4]byte{128, 3, 2, 10})
	tServer = netip.AddrFrom4([4]byte{128, 3, 7, 5})
	tOther  = netip.AddrFrom4([4]byte{128, 3, 9, 9})
)

func TestClassifyWellKnown(t *testing.T) {
	r := NewRegistry()
	cases := []struct {
		transport         uint8
		orig, resp        uint16
		wantName, wantCat string
	}{
		{layers.ProtoTCP, 40000, 80, "HTTP", Web},
		{layers.ProtoTCP, 40000, 443, "HTTPS", Web},
		{layers.ProtoTCP, 40000, 25, "SMTP", Email},
		{layers.ProtoTCP, 40000, 993, "IMAP/S", Email},
		{layers.ProtoUDP, 5353, 53, "DNS", Name},
		{layers.ProtoTCP, 40000, 53, "DNS", Name},
		{layers.ProtoUDP, 137, 137, "Netbios-NS", Name},
		{layers.ProtoTCP, 40000, 2049, "NFS", NetFile},
		{layers.ProtoUDP, 800, 2049, "NFS", NetFile},
		{layers.ProtoTCP, 40000, 524, "NCP", NetFile},
		{layers.ProtoTCP, 40000, 445, "CIFS", Windows},
		{layers.ProtoTCP, 40000, 139, "Netbios-SSN", Windows},
		{layers.ProtoTCP, 40000, 135, "DCE/RPC-EPM", Windows},
		{layers.ProtoTCP, 40000, 497, "Dantz", Backup},
		{layers.ProtoTCP, 40000, 13724, "Veritas-Data", Backup},
		{layers.ProtoTCP, 40000, 22, "SSH", Interactive},
		{layers.ProtoUDP, 40000, 123, "NTP", NetMgnt},
		{layers.ProtoUDP, 40000, 9875, "SAP", NetMgnt},
		{layers.ProtoTCP, 40000, 515, "LPD", Misc},
		{layers.ProtoTCP, 40000, 21, "FTP", Bulk},
	}
	for _, c := range cases {
		name, cat := r.Classify(c.transport, tClient, tServer, c.orig, c.resp)
		if name != c.wantName || cat != c.wantCat {
			t.Errorf("Classify(%d, %d, %d) = (%q, %q), want (%q, %q)",
				c.transport, c.orig, c.resp, name, cat, c.wantName, c.wantCat)
		}
	}
}

func TestClassifyUnknown(t *testing.T) {
	r := NewRegistry()
	if _, cat := r.Classify(layers.ProtoTCP, tClient, tServer, 45000, 49999); cat != OtherTCP {
		t.Errorf("unknown TCP → %q", cat)
	}
	if _, cat := r.Classify(layers.ProtoUDP, tClient, tServer, 45000, 49999); cat != OtherUDP {
		t.Errorf("unknown UDP → %q", cat)
	}
	if name, cat := r.Classify(layers.ProtoICMP, tClient, tServer, 0, 0); name != "" || cat != "" {
		t.Errorf("ICMP should be unclassified, got (%q, %q)", name, cat)
	}
}

func TestClassifyOriginatorPortFallback(t *testing.T) {
	r := NewRegistry()
	// FTP active data: server port 20 originates to an ephemeral port.
	name, cat := r.Classify(layers.ProtoTCP, tServer, tClient, 20, 40001)
	if name != "FTP" || cat != Bulk {
		t.Errorf("FTP data = (%q, %q)", name, cat)
	}
}

func TestUDPOnlyProtocolNotTCP(t *testing.T) {
	r := NewRegistry()
	// Netbios-NS is UDP-only in the registry; TCP 137 is other-tcp.
	if _, cat := r.Classify(layers.ProtoTCP, tClient, tServer, 40000, 137); cat != OtherTCP {
		t.Errorf("TCP 137 → %q, want other-tcp", cat)
	}
}

func TestDynamicRegistration(t *testing.T) {
	r := NewRegistry()
	if _, cat := r.Classify(layers.ProtoTCP, tClient, tServer, 40000, 1891); cat != OtherTCP {
		t.Fatal("port should start unknown")
	}
	r.Register(tServer, layers.ProtoTCP, 1891, "Spoolss", Windows)
	name, cat := r.Classify(layers.ProtoTCP, tClient, tServer, 40000, 1891)
	if name != "Spoolss" || cat != Windows {
		t.Errorf("dynamic = (%q, %q)", name, cat)
	}
	// Host-scoped: the same port on an unrelated host stays unknown, and
	// an ephemeral originator port colliding with the registered number
	// does not reclassify a connection to a different server.
	if _, cat := r.Classify(layers.ProtoTCP, tClient, tOther, 40000, 1891); cat != OtherTCP {
		t.Errorf("registration leaked to another host: %q", cat)
	}
	if _, cat := r.Classify(layers.ProtoTCP, tClient, tOther, 1891, 49999); cat != OtherTCP {
		t.Errorf("colliding originator port reclassified: %q", cat)
	}
	// The originator fallback still honors the registered host (active
	// FTP-style: the registered server originates the connection).
	if name, _ := r.Classify(layers.ProtoTCP, tServer, tClient, 1891, 49999); name != "Spoolss" {
		t.Errorf("originator-side dynamic lookup = %q", name)
	}
}

func TestPortOf(t *testing.T) {
	if p, ok := PortOf("SMTP"); !ok || p != 25 {
		t.Errorf("PortOf(SMTP) = %d, %v", p, ok)
	}
	if _, ok := PortOf("nonexistent"); ok {
		t.Error("unknown protocol should return false")
	}
}

func TestProtosByCategory(t *testing.T) {
	email := Protos(Email)
	if len(email) != 6 {
		t.Errorf("email protocols = %v", email)
	}
	for i := 1; i < len(email); i++ {
		if email[i] < email[i-1] {
			t.Error("protos not sorted")
		}
	}
}

func TestAllCategoriesCovered(t *testing.T) {
	// Every well-known protocol's category must appear in All.
	inAll := make(map[string]bool)
	for _, c := range All {
		inAll[c] = true
	}
	for _, cat := range []string{Backup, Bulk, Email, Interactive, Name, NetFile, NetMgnt, Streaming, Web, Windows, Misc} {
		if !inAll[cat] {
			t.Errorf("category %q missing from All", cat)
		}
		if len(Protos(cat)) == 0 {
			t.Errorf("category %q has no protocols", cat)
		}
	}
}

func TestNoPortCollisions(t *testing.T) {
	// Each (transport, port) resolves deterministically; building the
	// registry twice gives identical classifications for every well-known
	// port.
	r1, r2 := NewRegistry(), NewRegistry()
	for _, p := range [...]uint16{25, 53, 80, 137, 139, 443, 445, 524, 2049} {
		n1, c1 := r1.Classify(layers.ProtoTCP, tClient, tServer, 40000, p)
		n2, c2 := r2.Classify(layers.ProtoTCP, tClient, tServer, 40000, p)
		if n1 != n2 || c1 != c2 {
			t.Errorf("port %d classification unstable", p)
		}
	}
}
