// Package categories is the paper's Table 4: the registry mapping
// application protocols to high-level categories, keyed by well-known
// transport ports. Both the traffic generator (choosing server ports) and
// the analyzer (classifying connections) use the same registry, so the
// category breakdown measured by the analyzer is an honest port-based
// classification, not generator ground truth.
//
// Ports for widely deployed protocols are their IANA assignments; ports
// for site-specific applications the paper names without numbers (HPSS,
// NAV-ping, Steltor, MetaSys, IPVideo, connected-backup) are fixed,
// documented stand-ins — the analyzer only needs generator and analyzer to
// agree, exactly as a Bro site configuration would.
//
// The registry is immutable after init — per-window category breakdowns
// come from the aggregate layer snapshotting its own counters, never from
// state here (DESIGN.md § "Epoch snapshots and windowed reports").
package categories

import (
	"net/netip"
	"sort"
	"sync"

	"enttrace/internal/layers"
)

// Category names, matching Figure 1's x axis.
const (
	Backup      = "backup"
	Bulk        = "bulk"
	Email       = "email"
	Interactive = "interactive"
	Name        = "name"
	NetFile     = "net-file"
	NetMgnt     = "net-mgnt"
	Streaming   = "streaming"
	Web         = "web"
	Windows     = "windows"
	Misc        = "misc"
	OtherTCP    = "other-tcp"
	OtherUDP    = "other-udp"
)

// All lists the categories in the paper's plotting order.
var All = []string{
	Web, Email, NetFile, Backup, Bulk, Name, Interactive,
	Windows, Streaming, NetMgnt, Misc, OtherTCP, OtherUDP,
}

// Proto identifies one application protocol.
type Proto struct {
	Name      string
	Category  string
	Transport uint8 // layers.ProtoTCP or layers.ProtoUDP; 0 = both
	Ports     []uint16
}

// wellKnown is the static Table 4 registry.
var wellKnown = []Proto{
	// backup
	{Name: "Dantz", Category: Backup, Transport: layers.ProtoTCP, Ports: []uint16{497}},
	{Name: "Veritas-Ctrl", Category: Backup, Transport: layers.ProtoTCP, Ports: []uint16{13720, 13721, 13782}},
	{Name: "Veritas-Data", Category: Backup, Transport: layers.ProtoTCP, Ports: []uint16{13724}},
	{Name: "Connected-Backup", Category: Backup, Transport: layers.ProtoTCP, Ports: []uint16{16384}},
	// bulk
	{Name: "FTP", Category: Bulk, Transport: layers.ProtoTCP, Ports: []uint16{20, 21}},
	{Name: "HPSS", Category: Bulk, Transport: layers.ProtoTCP, Ports: []uint16{1217}},
	// email
	{Name: "SMTP", Category: Email, Transport: layers.ProtoTCP, Ports: []uint16{25}},
	{Name: "IMAP4", Category: Email, Transport: layers.ProtoTCP, Ports: []uint16{143}},
	{Name: "IMAP/S", Category: Email, Transport: layers.ProtoTCP, Ports: []uint16{993}},
	{Name: "POP3", Category: Email, Transport: layers.ProtoTCP, Ports: []uint16{110}},
	{Name: "POP/S", Category: Email, Transport: layers.ProtoTCP, Ports: []uint16{995}},
	{Name: "LDAP", Category: Email, Transport: 0, Ports: []uint16{389}},
	// interactive
	{Name: "SSH", Category: Interactive, Transport: layers.ProtoTCP, Ports: []uint16{22}},
	{Name: "telnet", Category: Interactive, Transport: layers.ProtoTCP, Ports: []uint16{23}},
	{Name: "rlogin", Category: Interactive, Transport: layers.ProtoTCP, Ports: []uint16{513}},
	{Name: "X11", Category: Interactive, Transport: layers.ProtoTCP, Ports: []uint16{6000, 6001, 6002, 6003}},
	// name
	{Name: "DNS", Category: Name, Transport: 0, Ports: []uint16{53}},
	{Name: "Netbios-NS", Category: Name, Transport: layers.ProtoUDP, Ports: []uint16{137}},
	{Name: "SrvLoc", Category: Name, Transport: 0, Ports: []uint16{427}},
	// net-file
	{Name: "NFS", Category: NetFile, Transport: 0, Ports: []uint16{2049}},
	{Name: "Portmapper", Category: NetFile, Transport: 0, Ports: []uint16{111}},
	{Name: "NCP", Category: NetFile, Transport: layers.ProtoTCP, Ports: []uint16{524}},
	// net-mgnt
	{Name: "DHCP", Category: NetMgnt, Transport: layers.ProtoUDP, Ports: []uint16{67, 68}},
	{Name: "ident", Category: NetMgnt, Transport: layers.ProtoTCP, Ports: []uint16{113}},
	{Name: "NTP", Category: NetMgnt, Transport: layers.ProtoUDP, Ports: []uint16{123}},
	{Name: "SNMP", Category: NetMgnt, Transport: layers.ProtoUDP, Ports: []uint16{161, 162}},
	{Name: "NAV-ping", Category: NetMgnt, Transport: layers.ProtoUDP, Ports: []uint16{38293}},
	{Name: "SAP", Category: NetMgnt, Transport: layers.ProtoUDP, Ports: []uint16{9875}},
	{Name: "NetInfo-local", Category: NetMgnt, Transport: 0, Ports: []uint16{1033}},
	// streaming
	{Name: "RTSP", Category: Streaming, Transport: layers.ProtoTCP, Ports: []uint16{554}},
	{Name: "IPVideo", Category: Streaming, Transport: layers.ProtoUDP, Ports: []uint16{5004}},
	{Name: "RealStream", Category: Streaming, Transport: 0, Ports: []uint16{7070}},
	// web
	{Name: "HTTP", Category: Web, Transport: layers.ProtoTCP, Ports: []uint16{80, 8080}},
	{Name: "HTTPS", Category: Web, Transport: layers.ProtoTCP, Ports: []uint16{443}},
	// windows
	{Name: "CIFS", Category: Windows, Transport: layers.ProtoTCP, Ports: []uint16{445}},
	{Name: "Netbios-SSN", Category: Windows, Transport: layers.ProtoTCP, Ports: []uint16{139}},
	{Name: "Netbios-DGM", Category: Windows, Transport: layers.ProtoUDP, Ports: []uint16{138}},
	{Name: "DCE/RPC-EPM", Category: Windows, Transport: 0, Ports: []uint16{135}},
	// misc
	{Name: "Steltor", Category: Misc, Transport: layers.ProtoTCP, Ports: []uint16{5729}},
	{Name: "MetaSys", Category: Misc, Transport: layers.ProtoUDP, Ports: []uint16{11001}},
	{Name: "LPD", Category: Misc, Transport: layers.ProtoTCP, Ports: []uint16{515}},
	{Name: "IPP", Category: Misc, Transport: layers.ProtoTCP, Ports: []uint16{631}},
	{Name: "Oracle-SQL", Category: Misc, Transport: layers.ProtoTCP, Ports: []uint16{1521}},
	{Name: "MS-SQL", Category: Misc, Transport: layers.ProtoTCP, Ports: []uint16{1433}},
}

type portKey struct {
	transport uint8
	port      uint16
}

// hostPortKey scopes a dynamic registration to the host that announced
// it. Endpoint-mapped and PASV ports are meaningful only on the server
// that advertised them; a port-global mapping would misclassify
// unrelated connections whose ephemeral ports happen to collide, and
// would make classification depend on which other taps' traffic the
// same process had already analyzed (breaking the fleet differential).
// Bro's dynamic protocol expectations are host-scoped the same way.
type hostPortKey struct {
	host      netip.Addr
	transport uint8
	port      uint16
}

// Registry resolves ports to protocols. It starts with the Table 4
// well-known set; the analyzer registers DCE/RPC endpoint-mapped and FTP
// PASV ephemeral ports dynamically, scoped to the announcing server, the
// way the paper's Bro analysis did.
type Registry struct {
	mu      sync.RWMutex
	byPort  map[portKey]*Proto
	dynamic map[hostPortKey]*Proto
}

// NewRegistry returns a registry loaded with Table 4.
func NewRegistry() *Registry {
	r := &Registry{byPort: make(map[portKey]*Proto), dynamic: make(map[hostPortKey]*Proto)}
	for i := range wellKnown {
		p := &wellKnown[i]
		for _, port := range p.Ports {
			if p.Transport == 0 {
				r.byPort[portKey{layers.ProtoTCP, port}] = p
				r.byPort[portKey{layers.ProtoUDP, port}] = p
			} else {
				r.byPort[portKey{p.Transport, port}] = p
			}
		}
	}
	return r
}

// Register adds a dynamic port mapping (e.g. a DCE/RPC service port
// learned from Endpoint Mapper traffic) scoped to the host the service
// lives on.
func (r *Registry) Register(host netip.Addr, transport uint8, port uint16, name, category string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.dynamic[hostPortKey{host, transport, port}] = &Proto{Name: name, Category: category, Transport: transport, Ports: []uint16{port}}
}

// lookup finds a protocol for a single endpoint: the well-known table
// first, then dynamic registrations for that specific host.
func (r *Registry) lookup(host netip.Addr, transport uint8, port uint16) *Proto {
	if p, ok := r.byPort[portKey{transport, port}]; ok {
		return p
	}
	r.mu.RLock()
	p := r.dynamic[hostPortKey{host, transport, port}]
	r.mu.RUnlock()
	return p
}

// Classify resolves a connection to (protocol name, category). The
// responder (destination) endpoint is consulted first, then the
// originator (for cases like FTP data where the server is the
// originator). Unknown ports fall into other-tcp / other-udp;
// non-TCP/UDP transports return ("", "").
func (r *Registry) Classify(transport uint8, orig, resp netip.Addr, origPort, respPort uint16) (string, string) {
	if transport != layers.ProtoTCP && transport != layers.ProtoUDP {
		return "", ""
	}
	if p := r.lookup(resp, transport, respPort); p != nil {
		return p.Name, p.Category
	}
	if p := r.lookup(orig, transport, origPort); p != nil {
		return p.Name, p.Category
	}
	if transport == layers.ProtoTCP {
		return "", OtherTCP
	}
	return "", OtherUDP
}

// PortOf returns the first well-known port for a protocol name, for the
// generator's convenience. The second result is false for unknown names.
func PortOf(name string) (uint16, bool) {
	for i := range wellKnown {
		if wellKnown[i].Name == name {
			return wellKnown[i].Ports[0], true
		}
	}
	return 0, false
}

// Protos returns the protocol names within a category, sorted.
func Protos(category string) []string {
	var out []string
	for i := range wellKnown {
		if wellKnown[i].Category == category {
			out = append(out, wellKnown[i].Name)
		}
	}
	sort.Strings(out)
	return out
}
