package stats

import "math"

// HurstVT estimates the Hurst parameter of a time series using the
// aggregated-variance (variance-time) method: the series is averaged over
// blocks of growing size m, and the slope β of log Var(X^(m)) versus
// log m gives H = 1 + β/2. For self-similar traffic H ∈ (0.5, 1); for
// independent (Poisson-like) traffic H ≈ 0.5.
//
// This addresses the "evidence for self-similarity?" question the paper's
// introduction raises but leaves unexplored. The estimator needs a few
// hundred samples to be meaningful; ok is false otherwise.
func HurstVT(series []float64) (h float64, ok bool) {
	n := len(series)
	if n < 64 {
		return 0, false
	}
	var xs, ys []float64
	for m := 1; m <= n/8; m *= 2 {
		v := aggregatedVariance(series, m)
		if v <= 0 {
			continue
		}
		xs = append(xs, math.Log(float64(m)))
		ys = append(ys, math.Log(v))
	}
	if len(xs) < 3 {
		return 0, false
	}
	beta := slope(xs, ys)
	h = 1 + beta/2
	// Clamp to the meaningful range; estimates outside it signal too
	// little data rather than exotic traffic.
	if h < 0 {
		h = 0
	}
	if h > 1 {
		h = 1
	}
	return h, true
}

// aggregatedVariance computes the variance of the series averaged over
// non-overlapping blocks of size m.
func aggregatedVariance(series []float64, m int) float64 {
	nBlocks := len(series) / m
	if nBlocks < 2 {
		return 0
	}
	means := make([]float64, nBlocks)
	for b := 0; b < nBlocks; b++ {
		var sum float64
		for i := 0; i < m; i++ {
			sum += series[b*m+i]
		}
		means[b] = sum / float64(m)
	}
	var mean float64
	for _, v := range means {
		mean += v
	}
	mean /= float64(nBlocks)
	var vs float64
	for _, v := range means {
		d := v - mean
		vs += d * d
	}
	return vs / float64(nBlocks-1)
}

// slope is the least-squares slope of y on x.
func slope(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
