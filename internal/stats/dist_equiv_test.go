package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// naiveDist is the keep-every-sample reference implementation the compact
// Dist must match bit-for-bit on quantiles and CDFs.
type naiveDist struct {
	samples []float64
	sorted  bool
}

func (d *naiveDist) Observe(v float64) {
	d.samples = append(d.samples, v)
	d.sorted = false
}

func (d *naiveDist) ensureSorted() {
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
}

func (d *naiveDist) Quantile(q float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	if q <= 0 {
		return d.samples[0]
	}
	if q >= 1 {
		return d.samples[len(d.samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(d.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return d.samples[idx]
}

func (d *naiveDist) CDFAt(x float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	idx := sort.SearchFloat64s(d.samples, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(d.samples))
}

func (d *naiveDist) CDF(maxPoints int) []CDFPoint {
	n := len(d.samples)
	if n == 0 {
		return nil
	}
	d.ensureSorted()
	if maxPoints < 2 {
		maxPoints = 2
	}
	if maxPoints > n {
		maxPoints = n
	}
	if maxPoints == 1 {
		return []CDFPoint{{X: d.samples[n-1], F: 1}}
	}
	pts := make([]CDFPoint, 0, maxPoints)
	for i := 0; i < maxPoints; i++ {
		rank := i * (n - 1) / (maxPoints - 1)
		pts = append(pts, CDFPoint{X: d.samples[rank], F: float64(rank+1) / float64(n)})
	}
	return pts
}

// sameFloat compares bit-identically except that every NaN matches every
// other NaN (payload bits are not observable through the API) and the two
// zeros match each other (Dist canonicalizes -0 to +0; the sign the naive
// implementation surfaces is an artifact of sort order).
func sameFloat(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	if a == 0 && b == 0 {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// randomSample draws from distributions that stress the run-length
// representation: heavy duplication, negatives, zeros, and specials.
func randomSample(rng *rand.Rand) float64 {
	switch rng.Intn(10) {
	case 0:
		return 0
	case 1:
		return float64(rng.Intn(8)) // heavy duplicates
	case 2:
		return -float64(rng.Intn(8))
	case 3:
		return math.NaN()
	case 4:
		return math.Inf(1)
	case 5:
		return math.Inf(-1)
	case 6:
		return rng.NormFloat64() * 1e9
	default:
		return float64(rng.Intn(4096)) // integer-valued, paper-like
	}
}

// TestDistMatchesNaive is the equivalence property test: on random inputs
// (duplicates, NaN, ±Inf) the compact representation must produce exactly
// the quantiles and CDFs of the all-samples implementation.
func TestDistMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(2000)
		compact, naive := NewDist(), &naiveDist{}
		for i := 0; i < n; i++ {
			v := randomSample(rng)
			compact.Observe(v)
			naive.Observe(v)
		}
		if compact.N() != len(naive.samples) {
			t.Fatalf("trial %d: N = %d, want %d", trial, compact.N(), len(naive.samples))
		}
		for _, q := range []float64{-1, 0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1, 2} {
			if got, want := compact.Quantile(q), naive.Quantile(q); !sameFloat(got, want) {
				t.Fatalf("trial %d (n=%d): Quantile(%v) = %v, want %v", trial, n, q, got, want)
			}
		}
		for i := 0; i < 20; i++ {
			x := randomSample(rng)
			if got, want := compact.CDFAt(x), naive.CDFAt(x); got != want {
				t.Fatalf("trial %d: CDFAt(%v) = %v, want %v", trial, x, got, want)
			}
		}
		for _, pts := range []int{1, 2, 3, 17, 64, 5000} {
			got, want := compact.CDF(pts), naive.CDF(pts)
			if len(got) != len(want) {
				t.Fatalf("trial %d: CDF(%d) has %d points, want %d", trial, pts, len(got), len(want))
			}
			for i := range got {
				if !sameFloat(got[i].X, want[i].X) || got[i].F != want[i].F {
					t.Fatalf("trial %d: CDF(%d)[%d] = %+v, want %+v", trial, pts, i, got[i], want[i])
				}
			}
		}
		// Mean/Sum are not required to be bit-identical (the compact form
		// multiplies instead of repeatedly adding), but must agree within
		// float tolerance, and exactly on NaN-ness.
		gotSum, wantSum := compact.Sum(), sumNaive(naive.samples)
		if math.IsNaN(wantSum) != math.IsNaN(gotSum) {
			t.Fatalf("trial %d: Sum NaN-ness mismatch: %v vs %v", trial, gotSum, wantSum)
		}
		if !math.IsNaN(wantSum) && !withinRel(gotSum, wantSum, 1e-9) {
			t.Fatalf("trial %d: Sum = %v, want ≈ %v", trial, gotSum, wantSum)
		}
	}
}

func sumNaive(samples []float64) float64 {
	var s float64
	for _, v := range samples {
		s += v
	}
	return s
}

func withinRel(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m
}

// TestDistInterleavedQueries exercises the staged-merge path: queries
// interleaved with observations must see every sample observed so far.
func TestDistInterleavedQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	compact, naive := NewDist(), &naiveDist{}
	for i := 0; i < 3000; i++ {
		v := float64(rng.Intn(64))
		compact.Observe(v)
		naive.Observe(v)
		if i%97 == 0 {
			if got, want := compact.Median(), naive.Quantile(0.5); !sameFloat(got, want) {
				t.Fatalf("step %d: Median = %v, want %v", i, got, want)
			}
		}
	}
	if got, want := compact.Max(), naive.Quantile(1); !sameFloat(got, want) {
		t.Fatalf("Max = %v, want %v", got, want)
	}
}

// TestDistMergeMatchesNaive is the shard-merge property test: splitting a
// sample stream across any number of Dists and merging them in any
// grouping must be bit-identical to observing everything in one Dist —
// the guarantee the parallel replay's per-worker aggregates rely on.
func TestDistMergeMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		n := rng.Intn(3000)
		parts := 1 + rng.Intn(5)
		shards := make([]*Dist, parts)
		for i := range shards {
			shards[i] = NewDist()
		}
		naive := &naiveDist{}
		whole := NewDist()
		for i := 0; i < n; i++ {
			v := randomSample(rng)
			shards[rng.Intn(parts)].Observe(v)
			whole.Observe(v)
			naive.Observe(v)
		}
		// Interleave queries on a shard so merge also exercises the
		// compacted-with-cum state.
		shards[0].Median()
		merged := NewDist()
		for _, s := range shards {
			merged.Merge(s)
		}
		if merged.N() != whole.N() {
			t.Fatalf("trial %d: merged N = %d, want %d", trial, merged.N(), whole.N())
		}
		if merged.Distinct() != whole.Distinct() {
			t.Fatalf("trial %d: merged Distinct = %d, want %d", trial, merged.Distinct(), whole.Distinct())
		}
		for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.99, 1} {
			if got, want := merged.Quantile(q), naive.Quantile(q); !sameFloat(got, want) {
				t.Fatalf("trial %d: merged Quantile(%v) = %v, want %v", trial, q, got, want)
			}
		}
		for i := 0; i < 10; i++ {
			x := randomSample(rng)
			if got, want := merged.CDFAt(x), naive.CDFAt(x); got != want {
				t.Fatalf("trial %d: merged CDFAt(%v) = %v, want %v", trial, x, got, want)
			}
		}
	}
}

// TestDistMergeLeavesSourceUsable pins that a merged-from Dist keeps
// accumulating correctly afterwards (shards outlive report-time merges).
func TestDistMergeLeavesSourceUsable(t *testing.T) {
	src, dst := NewDist(), NewDist()
	for i := 0; i < 100; i++ {
		src.Observe(float64(i % 10))
	}
	dst.Merge(src)
	for i := 0; i < 50; i++ {
		src.Observe(float64(100 + i%5))
	}
	if src.N() != 150 {
		t.Fatalf("source N = %d, want 150", src.N())
	}
	if got := src.Max(); got != 104 {
		t.Fatalf("source Max = %v, want 104", got)
	}
	if dst.N() != 100 {
		t.Fatalf("merged N changed to %d", dst.N())
	}
	if got := dst.Max(); got != 9 {
		t.Fatalf("merged Max = %v, want 9", got)
	}
}

// TestDistCompactsDuplicates pins the representation claim: integer-valued
// observations collapse to their distinct values.
func TestDistCompactsDuplicates(t *testing.T) {
	d := NewDist()
	d.Reserve(100000)
	for i := 0; i < 100000; i++ {
		d.Observe(float64(i % 250))
	}
	if d.N() != 100000 {
		t.Fatalf("N = %d", d.N())
	}
	if got := d.Distinct(); got != 250 {
		t.Fatalf("Distinct = %d, want 250", got)
	}
	if got := d.Quantile(0.5); got != 124 {
		t.Fatalf("Median = %v, want 124", got)
	}
}
