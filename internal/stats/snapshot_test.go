package stats

import (
	"math"
	"reflect"
	"testing"
)

// TestCounterSnapshotReset pins the epoch contract: snapshots taken
// around Resets partition the observations, and merging them reproduces
// the counter that never reset.
func TestCounterSnapshotReset(t *testing.T) {
	whole := NewCounter()
	cut := NewCounter()
	var snaps []*Counter
	feed := func(c1, c2 *Counter, key string, n int64) {
		c1.Add(key, n)
		c2.Add(key, n)
	}
	feed(whole, cut, "a", 3)
	feed(whole, cut, "b", 1)
	snaps = append(snaps, cut.Snapshot())
	cut.Reset()
	if cut.Total() != 0 || cut.Len() != 0 {
		t.Fatalf("reset left %d keys, total %d", cut.Len(), cut.Total())
	}
	feed(whole, cut, "a", 2)
	feed(whole, cut, "c", 5)
	snaps = append(snaps, cut.Snapshot())

	merged := NewCounter()
	for _, s := range snaps {
		merged.Merge(s)
	}
	if !reflect.DeepEqual(merged, whole) {
		t.Errorf("merged snapshots %+v != uncut counter %+v", merged, whole)
	}
	// Snapshot independence: mutating the source must not leak.
	cut.Add("z", 100)
	if snaps[1].Get("z") != 0 {
		t.Error("snapshot aliases its source")
	}
}

// TestDistSnapshotReset: same partition property for distributions,
// including the NaN ordering and run-compression invariants.
func TestDistSnapshotReset(t *testing.T) {
	whole := NewDist()
	cut := NewDist()
	feed := func(vs ...float64) {
		for _, v := range vs {
			whole.Observe(v)
			cut.Observe(v)
		}
	}
	feed(3, 1, 4, 1, 5, math.NaN(), 9, 2.5)
	s1 := cut.Snapshot()
	cut.Reset()
	if cut.N() != 0 {
		t.Fatalf("reset left %d samples", cut.N())
	}
	feed(6, 5, 3, 5, math.Inf(1), -2)
	s2 := cut.Snapshot()

	merged := NewDist()
	merged.Merge(s1)
	merged.Merge(s2)
	if merged.N() != whole.N() {
		t.Fatalf("merged N=%d, want %d", merged.N(), whole.N())
	}
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
		got, want := merged.Quantile(q), whole.Quantile(q)
		if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Errorf("quantile %.2f: merged %v != whole %v", q, got, want)
		}
	}
	got, want := merged.CDF(32), whole.CDF(32)
	if len(got) != len(want) {
		t.Fatalf("CDF lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range got {
		sameX := got[i].X == want[i].X || (math.IsNaN(got[i].X) && math.IsNaN(want[i].X))
		if !sameX || got[i].F != want[i].F {
			t.Errorf("CDF point %d: merged %+v != whole %+v", i, got[i], want[i])
		}
	}
	// Snapshot independence.
	cut.Observe(1e9)
	if s2.Max() == 1e9 {
		t.Error("snapshot aliases its source")
	}
}
