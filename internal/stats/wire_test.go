package stats

import (
	"math"
	"testing"
)

func TestDistRunsRoundTrip(t *testing.T) {
	d := NewDist()
	for _, v := range []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, math.NaN(), math.Inf(1)} {
		d.Observe(v)
	}
	vals, counts, nan := DistRuns(d)
	got, err := DistFromRuns(vals, counts, nan)
	if err != nil {
		t.Fatalf("DistFromRuns: %v", err)
	}
	if got.N() != d.N() {
		t.Fatalf("N: got %d want %d", got.N(), d.N())
	}
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.9, 0.99, 1} {
		a, b := d.Quantile(q), got.Quantile(q)
		if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			t.Errorf("Quantile(%v): got %v want %v", q, b, a)
		}
	}
	// The rebuilt Dist must keep merging exactly.
	m := NewDist()
	m.Observe(7)
	m.Merge(got)
	if m.N() != d.N()+1 {
		t.Fatalf("merge N: got %d want %d", m.N(), d.N()+1)
	}
}

func TestDistRunsEmpty(t *testing.T) {
	vals, counts, nan := DistRuns(NewDist())
	if len(vals) != 0 || len(counts) != 0 || nan != 0 {
		t.Fatalf("empty dist exported %d/%d/%d", len(vals), len(counts), nan)
	}
	d, err := DistFromRuns(nil, nil, 0)
	if err != nil {
		t.Fatalf("DistFromRuns(empty): %v", err)
	}
	if d.N() != 0 {
		t.Fatalf("empty rebuild has %d samples", d.N())
	}
}

func TestDistFromRunsRejectsHostileInput(t *testing.T) {
	cases := []struct {
		name   string
		vals   []float64
		counts []int64
		nan    int64
	}{
		{"length mismatch", []float64{1}, []int64{1, 2}, 0},
		{"negative nan", nil, nil, -1},
		{"unsorted", []float64{2, 1}, []int64{1, 1}, 0},
		{"duplicate value", []float64{1, 1}, []int64{1, 1}, 0},
		{"zero count", []float64{1}, []int64{0}, 0},
		{"negative count", []float64{1}, []int64{-5}, 0},
		{"nan in runs", []float64{math.NaN()}, []int64{1}, 0},
		{"count overflow", []float64{1, 2}, []int64{math.MaxInt64, 1}, 0},
	}
	for _, tc := range cases {
		if _, err := DistFromRuns(tc.vals, tc.counts, tc.nan); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
