package stats

import (
	"fmt"
	"strings"
)

// Table renders aligned plain-text tables in the style of the paper's
// tables: a header row, one row per item, columns padded to width. It is
// used by cmd/entreport and the examples; the analysis API itself returns
// structured data, never strings.
type Table struct {
	title  string
	header []string
	rows   [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{title: title, header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := len(t.header)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
