package stats

import (
	"fmt"
	"math"
)

// DistRuns exports d's canonical form — the sorted distinct values and
// their multiplicities, plus the NaN count — for serialization. The
// runs are the distribution's entire semantic content (staging and
// scratch buffers are performance artifacts), so a Dist rebuilt from
// them is equivalent under every query and under Merge. The returned
// slices alias d's internal arrays: copy before mutating, and do not
// Observe into d while holding them.
func DistRuns(d *Dist) (vals []float64, counts []int64, nan int64) {
	d.compact()
	d.foldPending()
	return d.vals, d.counts, d.nan
}

// DistFromRuns rebuilds a distribution from DistRuns output, validating
// the canonical-form invariants so hostile bytes cannot construct a
// Dist whose queries would misbehave: values strictly increasing,
// NaN-free (NaNs live only in the dedicated counter), counts positive,
// and the total sample count representable.
func DistFromRuns(vals []float64, counts []int64, nan int64) (*Dist, error) {
	if len(vals) != len(counts) {
		return nil, fmt.Errorf("stats: %d values with %d counts", len(vals), len(counts))
	}
	if nan < 0 {
		return nil, fmt.Errorf("stats: negative NaN count %d", nan)
	}
	n := nan
	for i, v := range vals {
		if math.IsNaN(v) {
			return nil, fmt.Errorf("stats: NaN at run %d (belongs in the NaN counter)", i)
		}
		if i > 0 && !(vals[i-1] < v) {
			return nil, fmt.Errorf("stats: runs not strictly increasing at %d", i)
		}
		if counts[i] <= 0 {
			return nil, fmt.Errorf("stats: non-positive count %d at run %d", counts[i], i)
		}
		n += counts[i]
		if n < 0 {
			return nil, fmt.Errorf("stats: sample count overflow")
		}
	}
	d := &Dist{nan: nan, n: n}
	if len(vals) > 0 {
		d.vals = append(make([]float64, 0, len(vals)), vals...)
		d.counts = append(make([]int64, 0, len(counts)), counts...)
	}
	return d, nil
}
