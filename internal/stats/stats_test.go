package stats

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	if c.Total() != 0 || c.Len() != 0 {
		t.Fatalf("empty counter: total=%d len=%d", c.Total(), c.Len())
	}
	c.Inc("tcp")
	c.Add("udp", 3)
	c.Add("tcp", 1)
	if got := c.Get("tcp"); got != 2 {
		t.Errorf("tcp = %d, want 2", got)
	}
	if got := c.Get("udp"); got != 3 {
		t.Errorf("udp = %d, want 3", got)
	}
	if got := c.Get("icmp"); got != 0 {
		t.Errorf("absent key = %d, want 0", got)
	}
	if got := c.Total(); got != 5 {
		t.Errorf("total = %d, want 5", got)
	}
	if got := c.Fraction("udp"); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("fraction(udp) = %v, want 0.6", got)
	}
}

func TestCounterKeysOrdering(t *testing.T) {
	c := NewCounter()
	c.Add("b", 5)
	c.Add("a", 5)
	c.Add("c", 10)
	keys := c.Keys()
	want := []string{"c", "a", "b"}
	for i, k := range want {
		if keys[i] != k {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}

func TestCounterMerge(t *testing.T) {
	a, b := NewCounter(), NewCounter()
	a.Add("x", 1)
	b.Add("x", 2)
	b.Add("y", 3)
	a.Merge(b)
	if a.Get("x") != 3 || a.Get("y") != 3 || a.Total() != 6 {
		t.Errorf("after merge: x=%d y=%d total=%d", a.Get("x"), a.Get("y"), a.Total())
	}
}

func TestCounterFractionEmpty(t *testing.T) {
	if got := NewCounter().Fraction("anything"); got != 0 {
		t.Errorf("empty fraction = %v, want 0", got)
	}
}

func TestDistQuantiles(t *testing.T) {
	d := NewDist()
	for i := 1; i <= 100; i++ {
		d.Observe(float64(i))
	}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 1}, {0.25, 25}, {0.5, 50}, {0.75, 75}, {1, 100},
	}
	for _, c := range cases {
		if got := d.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if d.Median() != 50 {
		t.Errorf("median = %v", d.Median())
	}
	if d.Min() != 1 || d.Max() != 100 {
		t.Errorf("min/max = %v/%v", d.Min(), d.Max())
	}
	if got := d.Mean(); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("mean = %v, want 50.5", got)
	}
	if got := d.Sum(); got != 5050 {
		t.Errorf("sum = %v, want 5050", got)
	}
}

func TestDistEmpty(t *testing.T) {
	d := NewDist()
	if d.Quantile(0.5) != 0 || d.Mean() != 0 || d.CDFAt(10) != 0 {
		t.Error("empty dist should return zeros")
	}
	if d.CDF(10) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestDistCDFAt(t *testing.T) {
	d := NewDist()
	for _, v := range []float64{1, 2, 2, 3} {
		d.Observe(v)
	}
	cases := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, c := range cases {
		if got := d.CDFAt(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CDFAt(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestDistCDFSeries(t *testing.T) {
	d := NewDist()
	for i := 0; i < 1000; i++ {
		d.Observe(float64(i))
	}
	pts := d.CDF(11)
	if len(pts) != 11 {
		t.Fatalf("got %d points, want 11", len(pts))
	}
	if pts[0].X != 0 {
		t.Errorf("first point X = %v, want 0 (min)", pts[0].X)
	}
	if pts[len(pts)-1].X != 999 || pts[len(pts)-1].F != 1 {
		t.Errorf("last point = %+v, want X=999 F=1", pts[len(pts)-1])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X || pts[i].F < pts[i-1].F {
			t.Fatalf("CDF not monotone at %d: %+v then %+v", i, pts[i-1], pts[i])
		}
	}
}

func TestDistCDFFewSamples(t *testing.T) {
	d := NewDist()
	d.Observe(5)
	pts := d.CDF(100)
	if len(pts) != 1 && len(pts) != 2 {
		t.Fatalf("single-sample CDF has %d points", len(pts))
	}
	if pts[len(pts)-1].F != 1 {
		t.Errorf("last F = %v, want 1", pts[len(pts)-1].F)
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		d := NewDist()
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			d.Observe(v)
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := d.Quantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return d.Quantile(0) == d.Min() && d.Quantile(1) == d.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: CDFAt is a proper CDF — monotone, 0 below min, 1 at max.
func TestCDFAtProperty(t *testing.T) {
	f := func(raw []float64, probe float64) bool {
		d := NewDist()
		clean := make([]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			d.Observe(v)
			clean = append(clean, v)
		}
		if len(clean) == 0 {
			return true
		}
		sort.Float64s(clean)
		if d.CDFAt(clean[len(clean)-1]) != 1 {
			return false
		}
		if d.CDFAt(math.Nextafter(clean[0], math.Inf(-1))) != 0 {
			return false
		}
		if math.IsNaN(probe) || math.IsInf(probe, 0) {
			return true
		}
		got := d.CDFAt(probe)
		return got >= 0 && got <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(1)
	for _, v := range []float64{0.5, 1, 5, 10, 50, 100, 999} {
		h.Observe(v)
	}
	bins := h.Bins()
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	// Bins: <1 (0.5), [1,10) {1,5}, [10,100) {10,50}, [100,1000) {100,999}
	if len(bins) != 4 {
		t.Fatalf("got %d bins: %+v", len(bins), bins)
	}
	wantCounts := []int64{1, 2, 2, 2}
	for i, w := range wantCounts {
		if bins[i].Count != w {
			t.Errorf("bin %d count = %d, want %d (%+v)", i, bins[i].Count, w, bins)
		}
	}
	if bins[1].Low != 1 || bins[2].Low != 10 {
		t.Errorf("bin edges wrong: %+v", bins)
	}
}

func TestHistogramResolution(t *testing.T) {
	h := NewHistogram(5)
	h.Observe(1)
	h.Observe(1.9) // should fall in a different bin from 1 with 5 bins/decade
	if len(h.Bins()) != 2 {
		t.Errorf("5 bins/decade should separate 1 and 1.9: %+v", h.Bins())
	}
	if NewHistogram(0).binsPerDecade != 1 {
		t.Error("binsPerDecade should clamp to 1")
	}
}

// Property: histogram total always equals number of observations and bins
// are sorted.
func TestHistogramProperty(t *testing.T) {
	f := func(raw []float64) bool {
		h := NewHistogram(3)
		n := 0
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Observe(v)
			n++
		}
		if h.Total() != int64(n) {
			return false
		}
		bins := h.Bins()
		var sum int64
		for i, b := range bins {
			sum += b.Count
			if i > 0 && bins[i-1].Low >= b.Low {
				return false
			}
		}
		return sum == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPctFormatting(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0%"},
		{0.0001, "0.0%"},
		{0.009, "0.9%"},
		{0.015, "1.5%"},
		{0.45, "45%"},
		{0.999, "100%"},
	}
	for _, c := range cases {
		if got := Pct(c.in); got != c.want {
			t.Errorf("Pct(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestBytesFormatting(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{500, "500B"},
		{152_000_000, "152MB"},
		{200_000, "0.2MB"},
		{13_120_000_000, "13.12GB"},
	}
	for _, c := range cases {
		if got := Bytes(c.in); got != c.want {
			t.Errorf("Bytes(%d) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Table X", "proto", "D0", "D1")
	tab.AddRow("IP", "99%", "97%")
	tab.AddRow("ARP") // short row padded
	out := tab.String()
	if !strings.Contains(out, "Table X") || !strings.Contains(out, "IP") {
		t.Errorf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestDistInterleavedObserveQuantile(t *testing.T) {
	// Observing after a quantile query must re-sort.
	d := NewDist()
	d.Observe(10)
	_ = d.Median()
	d.Observe(1)
	if d.Min() != 1 {
		t.Errorf("min after interleaved observe = %v, want 1", d.Min())
	}
}

func BenchmarkDistQuantile(b *testing.B) {
	d := NewDist()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		d.Observe(rng.Float64())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = d.Quantile(0.95)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewCounter()
	for i := 0; i < b.N; i++ {
		c.Inc("tcp")
	}
}
