// Package stats provides the small statistical toolkit used throughout the
// enterprise-traffic reproduction: counters keyed by string, empirical
// distributions with quantiles and CDF extraction, log-spaced histograms,
// and fraction formatting that mirrors the way the paper reports numbers
// (percentages, ranges such as "45%–65%", GB/MB volumes).
//
// The paper reports almost everything as fractions and distribution shapes
// rather than absolute values, so this package is deliberately exact: it
// keeps all samples (or exact counts) rather than sketching, because the
// reproduction operates at a scale where exactness is affordable.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Counter accumulates named counts, e.g. packets per network-layer protocol.
// The zero value is not ready to use; call NewCounter.
type Counter struct {
	counts map[string]int64
	total  int64
}

// NewCounter returns an empty Counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[string]int64)}
}

// Add increments key by n (n may be negative, though callers never do that
// in practice).
func (c *Counter) Add(key string, n int64) {
	c.counts[key] += n
	c.total += n
}

// Inc increments key by one.
func (c *Counter) Inc(key string) { c.Add(key, 1) }

// Get returns the count for key (zero if absent).
func (c *Counter) Get(key string) int64 { return c.counts[key] }

// Total returns the sum over all keys.
func (c *Counter) Total() int64 { return c.total }

// Fraction returns count(key)/total, or 0 if the counter is empty.
func (c *Counter) Fraction(key string) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.counts[key]) / float64(c.total)
}

// Keys returns all keys sorted by descending count, ties broken by name, so
// table rows come out in a stable, paper-like order.
func (c *Counter) Keys() []string {
	keys := make([]string, 0, len(c.counts))
	for k := range c.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if c.counts[keys[i]] != c.counts[keys[j]] {
			return c.counts[keys[i]] > c.counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}

// Len returns the number of distinct keys.
func (c *Counter) Len() int { return len(c.counts) }

// Merge adds all counts from other into c.
func (c *Counter) Merge(other *Counter) {
	for k, v := range other.counts {
		c.Add(k, v)
	}
}

// Dist is an empirical distribution over float64 samples. It keeps every
// sample; Sort is amortized across quantile queries.
type Dist struct {
	samples []float64
	sorted  bool
}

// NewDist returns an empty distribution.
func NewDist() *Dist { return &Dist{} }

// Observe adds a sample.
func (d *Dist) Observe(v float64) {
	d.samples = append(d.samples, v)
	d.sorted = false
}

// N returns the number of samples.
func (d *Dist) N() int { return len(d.samples) }

func (d *Dist) ensureSorted() {
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
}

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank on the
// sorted samples. Returns 0 for an empty distribution.
func (d *Dist) Quantile(q float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	if q <= 0 {
		return d.samples[0]
	}
	if q >= 1 {
		return d.samples[len(d.samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(d.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return d.samples[idx]
}

// Median is Quantile(0.5).
func (d *Dist) Median() float64 { return d.Quantile(0.5) }

// Min returns the smallest sample (0 if empty).
func (d *Dist) Min() float64 { return d.Quantile(0) }

// Max returns the largest sample (0 if empty).
func (d *Dist) Max() float64 { return d.Quantile(1) }

// Mean returns the arithmetic mean (0 if empty).
func (d *Dist) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	var sum float64
	for _, v := range d.samples {
		sum += v
	}
	return sum / float64(len(d.samples))
}

// Sum returns the total of all samples.
func (d *Dist) Sum() float64 {
	var sum float64
	for _, v := range d.samples {
		sum += v
	}
	return sum
}

// CDFAt returns the empirical CDF evaluated at x: the fraction of samples
// <= x.
func (d *Dist) CDFAt(x float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.ensureSorted()
	// First index with sample > x.
	idx := sort.SearchFloat64s(d.samples, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(d.samples))
}

// CDFPoint is one (x, F(x)) point of an empirical CDF.
type CDFPoint struct {
	X float64
	F float64
}

// CDF returns up to maxPoints points of the empirical CDF, evenly spaced in
// rank, always including the minimum and maximum. It is the series behind
// every "Cumulative Fraction" figure in the paper.
func (d *Dist) CDF(maxPoints int) []CDFPoint {
	n := len(d.samples)
	if n == 0 {
		return nil
	}
	d.ensureSorted()
	if maxPoints < 2 {
		maxPoints = 2
	}
	if maxPoints > n {
		maxPoints = n
	}
	if maxPoints == 1 {
		return []CDFPoint{{X: d.samples[n-1], F: 1}}
	}
	pts := make([]CDFPoint, 0, maxPoints)
	for i := 0; i < maxPoints; i++ {
		rank := i * (n - 1) / (maxPoints - 1)
		pts = append(pts, CDFPoint{X: d.samples[rank], F: float64(rank+1) / float64(n)})
	}
	return pts
}

// Histogram counts samples into log10-spaced bins, mirroring the log-scale
// x axes used by the paper's size and duration figures.
type Histogram struct {
	// binsPerDecade controls resolution; 5 gives bins at 1, 1.58, 2.51, ...
	binsPerDecade int
	counts        map[int]int64
	total         int64
}

// NewHistogram returns a histogram with the given number of log-spaced bins
// per decade (minimum 1).
func NewHistogram(binsPerDecade int) *Histogram {
	if binsPerDecade < 1 {
		binsPerDecade = 1
	}
	return &Histogram{binsPerDecade: binsPerDecade, counts: make(map[int]int64)}
}

// Observe adds a sample; non-positive samples land in the lowest bin.
func (h *Histogram) Observe(v float64) {
	h.counts[h.binIndex(v)]++
	h.total++
}

func (h *Histogram) binIndex(v float64) int {
	if v < 1 {
		return math.MinInt32
	}
	return int(math.Floor(math.Log10(v) * float64(h.binsPerDecade)))
}

// BinLow returns the lower edge of the bin with the given index.
func (h *Histogram) BinLow(idx int) float64 {
	if idx == math.MinInt32 {
		return 0
	}
	return math.Pow(10, float64(idx)/float64(h.binsPerDecade))
}

// Bin is one histogram bin with its lower edge and count.
type Bin struct {
	Low   float64
	Count int64
}

// Bins returns non-empty bins sorted by lower edge.
func (h *Histogram) Bins() []Bin {
	idxs := make([]int, 0, len(h.counts))
	for i := range h.counts {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	bins := make([]Bin, 0, len(idxs))
	for _, i := range idxs {
		bins = append(bins, Bin{Low: h.BinLow(i), Count: h.counts[i]})
	}
	return bins
}

// Total returns the number of observed samples.
func (h *Histogram) Total() int64 { return h.total }

// Pct formats a fraction as the paper does: "0.0%" below one-in-a-thousand,
// one decimal below 2%, integers above.
func Pct(f float64) string {
	p := f * 100
	switch {
	case p == 0:
		return "0%"
	case p < 0.05:
		return "0.0%"
	case p < 2:
		return fmt.Sprintf("%.1f%%", p)
	default:
		return fmt.Sprintf("%.0f%%", p)
	}
}

// Bytes formats a byte count with the unit the paper uses in the nearest
// table (MB for email/file tables, GB for the transport table).
func Bytes(n int64) string {
	switch {
	case n >= 10*1000*1000*1000:
		return fmt.Sprintf("%.2fGB", float64(n)/1e9)
	case n >= 1000*1000:
		return fmt.Sprintf("%.0fMB", float64(n)/1e6)
	case n >= 100*1000:
		return fmt.Sprintf("%.1fMB", float64(n)/1e6)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
