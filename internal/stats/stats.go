// Package stats provides the small statistical toolkit used throughout the
// enterprise-traffic reproduction: counters keyed by string, empirical
// distributions with quantiles and CDF extraction, log-spaced histograms,
// and fraction formatting that mirrors the way the paper reports numbers
// (percentages, ranges such as "45%–65%", GB/MB volumes).
//
// The paper reports almost everything as fractions and distribution shapes
// rather than absolute values, so this package is deliberately exact: it
// keeps all samples (or exact counts) rather than sketching, because the
// reproduction operates at a scale where exactness is affordable.
//
// Epoch obligations: Counter and Dist implement the aggregate layer's
// Snapshot/Reset pair (DESIGN.md § "Epoch snapshots and windowed
// reports") — Snapshot returns the values banked since the last Reset as
// an independent aggregate that merges elsewhere, Reset clears banked
// values in O(1), and snapshot-merge across epochs reproduces the batch
// aggregate exactly.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Counter accumulates named counts, e.g. packets per network-layer protocol.
// The map is allocated on first write, so an empty counter costs one
// small struct — the epoch machinery creates (and often discards
// unused) fresh counters at every window cut.
type Counter struct {
	counts map[string]int64
	total  int64
}

// NewCounter returns an empty Counter.
func NewCounter() *Counter {
	return &Counter{}
}

// Add increments key by n (n may be negative, though callers never do that
// in practice).
func (c *Counter) Add(key string, n int64) {
	if c.counts == nil {
		c.counts = make(map[string]int64)
	}
	c.counts[key] += n
	c.total += n
}

// Inc increments key by one.
func (c *Counter) Inc(key string) { c.Add(key, 1) }

// Get returns the count for key (zero if absent).
func (c *Counter) Get(key string) int64 { return c.counts[key] }

// Total returns the sum over all keys.
func (c *Counter) Total() int64 { return c.total }

// Fraction returns count(key)/total, or 0 if the counter is empty.
func (c *Counter) Fraction(key string) float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.counts[key]) / float64(c.total)
}

// Keys returns all keys sorted by descending count, ties broken by name, so
// table rows come out in a stable, paper-like order.
func (c *Counter) Keys() []string {
	keys := make([]string, 0, len(c.counts))
	for k := range c.counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if c.counts[keys[i]] != c.counts[keys[j]] {
			return c.counts[keys[i]] > c.counts[keys[j]]
		}
		return keys[i] < keys[j]
	})
	return keys
}

// Len returns the number of distinct keys.
func (c *Counter) Len() int { return len(c.counts) }

// Merge adds all counts from other into c.
func (c *Counter) Merge(other *Counter) {
	for k, v := range other.counts {
		c.Add(k, v)
	}
}

// Snapshot returns an independent copy of the counter — the epoch cut
// primitive: Snapshot captures everything accumulated since the last
// Reset, and merging every snapshot reproduces the counter that never
// reset. The copy shares no state with c.
func (c *Counter) Snapshot() *Counter {
	s := &Counter{counts: make(map[string]int64, len(c.counts)), total: c.total}
	for k, v := range c.counts {
		s.counts[k] = v
	}
	return s
}

// Reset clears all counts in place, retaining map capacity. The
// Snapshot/Reset pair is how long-running accumulations cut per-window
// deltas without disturbing concurrent readers of earlier snapshots.
func (c *Counter) Reset() {
	clear(c.counts)
	c.total = 0
}

// Dist is an empirical distribution over float64 samples. It is exact but
// compact: duplicate values are run-length compressed (value → count), so
// integer-valued observations — sizes, request counts, millisecond-rounded
// durations — collapse to their distinct values instead of retaining every
// raw sample. Observations are staged in a small buffer and merged into
// the sorted run list by a sorted merge, amortized O(1) per sample.
// Quantiles and CDFs are bit-identical to the keep-every-sample
// implementation: a rank lands on exactly the same value either way.
//
// NaN samples are ordered before every other value (the sort.Float64s
// convention the all-samples implementation inherited); ±Inf sort
// normally.
type Dist struct {
	// vals/counts are the sorted distinct values (NaN excluded) and their
	// multiplicities.
	vals   []float64
	counts []int64
	// cum[i] is the number of non-NaN samples ≤ vals[i]; rebuilt lazily.
	cum []int64
	// staged holds observations not yet merged into vals.
	staged []float64
	// scratchVals/scratchCounts are the merge's ping-pong buffers: each
	// merge writes into the scratch arrays and swaps them with vals/counts,
	// so steady-state merging allocates nothing.
	scratchVals   []float64
	scratchCounts []int64
	// pendingVals/pendingCounts are staged merge runs: repeatedly merging
	// small distributions into a large one (the windowed analysis banks a
	// delta per time window) would re-walk the whole run list each time,
	// so incoming runs are staged and folded pairwise once their combined
	// size reaches the main list's — amortized O(log) per element instead
	// of quadratic, and exact: a fold is the same multiset union in a
	// different association. pendingN counts staged run entries.
	pendingVals   [][]float64
	pendingCounts [][]int64
	pendingN      int
	nan           int64 // NaN observations (rank before all values)
	n             int64 // total observations, NaN included
}

// NewDist returns an empty distribution.
func NewDist() *Dist { return &Dist{} }

// Reserve hints the expected sample volume so the staging buffer can be
// sized once. Callers that know flow or bin counts up front (the report
// builders) use it to avoid regrowth; it never changes results.
func (d *Dist) Reserve(n int) {
	const maxStage = 4096
	if n > maxStage {
		n = maxStage
	}
	if n > cap(d.staged)-len(d.staged) {
		staged := make([]float64, len(d.staged), len(d.staged)+n)
		copy(staged, d.staged)
		d.staged = staged
	}
}

// Observe adds a sample. Negative zero is canonicalized to positive zero:
// the two compare equal, so they share a run, and which sign the
// all-samples implementation surfaced was an artifact of sort order.
func (d *Dist) Observe(v float64) {
	if v == 0 {
		v = 0
	}
	if len(d.staged) == cap(d.staged) && len(d.staged) >= 64 && len(d.staged) >= len(d.vals)/2 {
		// The stage is full and large enough relative to the run list that
		// merging now keeps the per-sample cost amortized constant.
		d.compact()
	}
	d.staged = append(d.staged, v)
	d.n++
	d.cum = d.cum[:0]
}

// compact sorts the staged samples and merges them into the run list.
func (d *Dist) compact() {
	if len(d.staged) == 0 {
		return
	}
	sort.Float64s(d.staged)
	// NaNs sort before everything; peel them into the dedicated counter.
	s := d.staged
	for len(s) > 0 && math.IsNaN(s[0]) {
		d.nan++
		s = s[1:]
	}
	if len(s) > 0 {
		d.mergeSorted(s)
	}
	d.staged = d.staged[:0]
}

// mergeSorted folds a sorted, NaN-free batch into vals/counts.
func (d *Dist) mergeSorted(s []float64) {
	// Fast path: the whole batch extends the current maximum.
	if len(d.vals) == 0 || d.vals[len(d.vals)-1] <= s[0] {
		d.appendRuns(s)
		return
	}
	oldVals, oldCounts := d.vals, d.counts
	need := len(oldVals) + len(s)
	if cap(d.scratchVals) >= need {
		d.vals, d.counts = d.scratchVals[:0], d.scratchCounts[:0]
	} else {
		// Grow with headroom so steady-state merging ping-pongs between
		// two stable arrays instead of allocating per merge.
		d.vals = make([]float64, 0, need+need/2)
		d.counts = make([]int64, 0, need+need/2)
	}
	d.scratchVals, d.scratchCounts = oldVals[:0], oldCounts[:0]
	i := 0
	for _, v := range s {
		for i < len(oldVals) && oldVals[i] < v {
			d.vals = append(d.vals, oldVals[i])
			d.counts = append(d.counts, oldCounts[i])
			i++
		}
		if i < len(oldVals) && oldVals[i] == v {
			d.vals = append(d.vals, oldVals[i])
			d.counts = append(d.counts, oldCounts[i]+1)
			i++
			continue
		}
		if last := len(d.vals) - 1; last >= 0 && d.vals[last] == v {
			d.counts[last]++
			continue
		}
		d.vals = append(d.vals, v)
		d.counts = append(d.counts, 1)
	}
	d.vals = append(d.vals, oldVals[i:]...)
	d.counts = append(d.counts, oldCounts[i:]...)
}

// appendRuns run-length appends a sorted batch that starts at or beyond
// the current maximum value.
func (d *Dist) appendRuns(s []float64) {
	for _, v := range s {
		if last := len(d.vals) - 1; last >= 0 && d.vals[last] == v {
			d.counts[last]++
			continue
		}
		d.vals = append(d.vals, v)
		d.counts = append(d.counts, 1)
	}
}

// Merge folds other's samples into d, exactly: the result is the
// distribution that would have observed both sample multisets, so merging
// is commutative and associative and the merged quantiles/CDFs are
// bit-identical for any grouping of the sources (the property the
// parallel replay's shard merge relies on). other is left logically
// unchanged (its staged samples are compacted in place, which every read
// path does anyway).
func (d *Dist) Merge(other *Dist) {
	if other == nil || other.n == 0 {
		return
	}
	other.compact()
	other.foldPending()
	d.compact()
	d.nan += other.nan
	d.n += other.n
	d.cum = d.cum[:0]
	if len(other.vals) == 0 {
		return
	}
	if d.pendingN > 0 {
		// Runs are already staged; keep staging (the fast paths below
		// compare against the main list's maximum, which staged runs may
		// exceed).
		d.stageRuns(other)
		return
	}
	if len(d.vals) == 0 {
		d.vals = append(d.vals, other.vals...)
		d.counts = append(d.counts, other.counts...)
		return
	}
	// Fast path: other's runs extend the current maximum.
	if d.vals[len(d.vals)-1] < other.vals[0] {
		d.vals = append(d.vals, other.vals...)
		d.counts = append(d.counts, other.counts...)
		return
	}
	// A small source merging into a much larger run list stages instead:
	// re-walking the whole list per small merge is what makes per-window
	// delta banking quadratic.
	if len(other.vals)*8 < len(d.vals) {
		d.stageRuns(other)
		return
	}
	// Sorted two-way run merge, ping-ponging with the scratch arrays like
	// mergeSorted so steady-state merging allocates nothing.
	oldVals, oldCounts := d.vals, d.counts
	need := len(oldVals) + len(other.vals)
	if cap(d.scratchVals) >= need {
		d.vals, d.counts = d.scratchVals[:0], d.scratchCounts[:0]
	} else {
		d.vals = make([]float64, 0, need)
		d.counts = make([]int64, 0, need)
	}
	d.scratchVals, d.scratchCounts = oldVals[:0], oldCounts[:0]
	i, j := 0, 0
	for i < len(oldVals) && j < len(other.vals) {
		switch {
		case oldVals[i] < other.vals[j]:
			d.vals = append(d.vals, oldVals[i])
			d.counts = append(d.counts, oldCounts[i])
			i++
		case oldVals[i] > other.vals[j]:
			d.vals = append(d.vals, other.vals[j])
			d.counts = append(d.counts, other.counts[j])
			j++
		default:
			d.vals = append(d.vals, oldVals[i])
			d.counts = append(d.counts, oldCounts[i]+other.counts[j])
			i++
			j++
		}
	}
	for ; i < len(oldVals); i++ {
		d.vals = append(d.vals, oldVals[i])
		d.counts = append(d.counts, oldCounts[i])
	}
	for ; j < len(other.vals); j++ {
		d.vals = append(d.vals, other.vals[j])
		d.counts = append(d.counts, other.counts[j])
	}
}

// Snapshot returns an independent copy of the distribution holding
// exactly the samples observed since the last Reset. Merging every
// snapshot yields a distribution bit-identical to one that never reset
// (Merge is exact), which is the windowed-report invariant. d is
// compacted as a side effect (logically unchanged, like every read).
func (d *Dist) Snapshot() *Dist {
	d.compact()
	d.foldPending()
	s := &Dist{nan: d.nan, n: d.n}
	if len(d.vals) > 0 {
		s.vals = append(make([]float64, 0, len(d.vals)), d.vals...)
		s.counts = append(make([]int64, 0, len(d.counts)), d.counts...)
	}
	return s
}

// Reset drops all samples in place, retaining the run-list and staging
// capacity for the next epoch.
func (d *Dist) Reset() {
	d.vals = d.vals[:0]
	d.counts = d.counts[:0]
	d.cum = d.cum[:0]
	d.staged = d.staged[:0]
	d.pendingVals, d.pendingCounts, d.pendingN = nil, nil, 0
	d.nan = 0
	d.n = 0
}

// stageRuns copies other's run list into the pending set, folding once
// the staged volume reaches the main list's. The copy keeps the API
// aliasing-free: other can keep accumulating (its arrays may become
// merge scratch) without corrupting d.
func (d *Dist) stageRuns(other *Dist) {
	d.pendingVals = append(d.pendingVals, append([]float64(nil), other.vals...))
	d.pendingCounts = append(d.pendingCounts, append([]int64(nil), other.counts...))
	d.pendingN += len(other.vals)
	if d.pendingN >= 64 && d.pendingN >= len(d.vals) {
		d.foldPending()
	}
}

// foldPending merges every staged run and the main list pairwise into a
// single run list — O(total · log runs), exact for any association.
func (d *Dist) foldPending() {
	if len(d.pendingVals) == 0 {
		return
	}
	runsV, runsC := d.pendingVals, d.pendingCounts
	if len(d.vals) > 0 {
		runsV = append(runsV, d.vals)
		runsC = append(runsC, d.counts)
	}
	for len(runsV) > 1 {
		nv := runsV[:0:0]
		nc := runsC[:0:0]
		for i := 0; i < len(runsV); i += 2 {
			if i+1 == len(runsV) {
				nv = append(nv, runsV[i])
				nc = append(nc, runsC[i])
				break
			}
			mv, mc := mergeRuns(runsV[i], runsC[i], runsV[i+1], runsC[i+1])
			nv = append(nv, mv)
			nc = append(nc, mc)
		}
		runsV, runsC = nv, nc
	}
	d.vals, d.counts = runsV[0], runsC[0]
	d.pendingVals, d.pendingCounts, d.pendingN = nil, nil, 0
	d.cum = d.cum[:0]
}

// mergeRuns two-way merges sorted (value, count) run lists.
func mergeRuns(av []float64, ac []int64, bv []float64, bc []int64) ([]float64, []int64) {
	mv := make([]float64, 0, len(av)+len(bv))
	mc := make([]int64, 0, len(ac)+len(bc))
	i, j := 0, 0
	for i < len(av) && j < len(bv) {
		switch {
		case av[i] < bv[j]:
			mv = append(mv, av[i])
			mc = append(mc, ac[i])
			i++
		case av[i] > bv[j]:
			mv = append(mv, bv[j])
			mc = append(mc, bc[j])
			j++
		default:
			mv = append(mv, av[i])
			mc = append(mc, ac[i]+bc[j])
			i++
			j++
		}
	}
	mv = append(mv, av[i:]...)
	mc = append(mc, ac[i:]...)
	mv = append(mv, bv[j:]...)
	mc = append(mc, bc[j:]...)
	return mv, mc
}

func (d *Dist) ensureCompact() {
	d.compact()
	d.foldPending()
	if len(d.cum) == 0 && len(d.vals) > 0 {
		if cap(d.cum) < len(d.vals) {
			d.cum = make([]int64, 0, len(d.vals))
		}
		var run int64
		for _, c := range d.counts {
			run += c
			d.cum = append(d.cum, run)
		}
	}
}

// N returns the number of samples.
func (d *Dist) N() int { return int(d.n) }

// Distinct returns the number of distinct non-NaN values retained — the
// compact representation's actual memory footprint.
func (d *Dist) Distinct() int {
	d.ensureCompact()
	return len(d.vals)
}

// valueAtRank returns the rank-th smallest sample (0-based), with NaNs
// ordered first, exactly as indexing the sorted all-samples slice would.
func (d *Dist) valueAtRank(rank int64) float64 {
	if rank < d.nan {
		return math.NaN()
	}
	rank -= d.nan
	idx := sort.Search(len(d.cum), func(i int) bool { return d.cum[i] > rank })
	if idx >= len(d.vals) {
		idx = len(d.vals) - 1
	}
	return d.vals[idx]
}

// Quantile returns the q-quantile (0 <= q <= 1) using nearest-rank on the
// sorted samples. Returns 0 for an empty distribution.
func (d *Dist) Quantile(q float64) float64 {
	if d.n == 0 {
		return 0
	}
	d.ensureCompact()
	if q <= 0 {
		return d.valueAtRank(0)
	}
	if q >= 1 {
		return d.valueAtRank(d.n - 1)
	}
	idx := int64(math.Ceil(q*float64(d.n))) - 1
	if idx < 0 {
		idx = 0
	}
	return d.valueAtRank(idx)
}

// Median is Quantile(0.5).
func (d *Dist) Median() float64 { return d.Quantile(0.5) }

// Min returns the smallest sample (0 if empty).
func (d *Dist) Min() float64 { return d.Quantile(0) }

// Max returns the largest sample (0 if empty).
func (d *Dist) Max() float64 { return d.Quantile(1) }

// Mean returns the arithmetic mean (0 if empty).
func (d *Dist) Mean() float64 {
	if d.n == 0 {
		return 0
	}
	return d.Sum() / float64(d.n)
}

// Sum returns the total of all samples (NaN if any sample was NaN).
func (d *Dist) Sum() float64 {
	d.ensureCompact()
	if d.nan > 0 {
		return math.NaN()
	}
	var sum float64
	for i, v := range d.vals {
		sum += v * float64(d.counts[i])
	}
	return sum
}

// CDFAt returns the empirical CDF evaluated at x: the fraction of samples
// <= x (NaN samples order before every x, matching the sorted-samples
// implementation).
func (d *Dist) CDFAt(x float64) float64 {
	if d.n == 0 {
		return 0
	}
	d.ensureCompact()
	// First distinct value > x.
	idx := sort.SearchFloat64s(d.vals, math.Nextafter(x, math.Inf(1)))
	le := d.nan
	if idx > 0 {
		le += d.cum[idx-1]
	}
	return float64(le) / float64(d.n)
}

// CDFPoint is one (x, F(x)) point of an empirical CDF.
type CDFPoint struct {
	X float64
	F float64
}

// CDF returns up to maxPoints points of the empirical CDF, evenly spaced in
// rank, always including the minimum and maximum. It is the series behind
// every "Cumulative Fraction" figure in the paper.
func (d *Dist) CDF(maxPoints int) []CDFPoint {
	n := d.n
	if n == 0 {
		return nil
	}
	d.ensureCompact()
	if maxPoints < 2 {
		maxPoints = 2
	}
	if int64(maxPoints) > n {
		maxPoints = int(n)
	}
	if maxPoints == 1 {
		return []CDFPoint{{X: d.valueAtRank(n - 1), F: 1}}
	}
	pts := make([]CDFPoint, 0, maxPoints)
	for i := 0; i < maxPoints; i++ {
		rank := int64(i) * (n - 1) / int64(maxPoints-1)
		pts = append(pts, CDFPoint{X: d.valueAtRank(rank), F: float64(rank+1) / float64(n)})
	}
	return pts
}

// Histogram counts samples into log10-spaced bins, mirroring the log-scale
// x axes used by the paper's size and duration figures.
type Histogram struct {
	// binsPerDecade controls resolution; 5 gives bins at 1, 1.58, 2.51, ...
	binsPerDecade int
	counts        map[int]int64
	total         int64
}

// NewHistogram returns a histogram with the given number of log-spaced bins
// per decade (minimum 1).
func NewHistogram(binsPerDecade int) *Histogram {
	if binsPerDecade < 1 {
		binsPerDecade = 1
	}
	return &Histogram{binsPerDecade: binsPerDecade, counts: make(map[int]int64)}
}

// Observe adds a sample; non-positive samples land in the lowest bin.
func (h *Histogram) Observe(v float64) {
	h.counts[h.binIndex(v)]++
	h.total++
}

func (h *Histogram) binIndex(v float64) int {
	if v < 1 {
		return math.MinInt32
	}
	return int(math.Floor(math.Log10(v) * float64(h.binsPerDecade)))
}

// BinLow returns the lower edge of the bin with the given index.
func (h *Histogram) BinLow(idx int) float64 {
	if idx == math.MinInt32 {
		return 0
	}
	return math.Pow(10, float64(idx)/float64(h.binsPerDecade))
}

// Bin is one histogram bin with its lower edge and count.
type Bin struct {
	Low   float64
	Count int64
}

// Bins returns non-empty bins sorted by lower edge.
func (h *Histogram) Bins() []Bin {
	idxs := make([]int, 0, len(h.counts))
	for i := range h.counts {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	bins := make([]Bin, 0, len(idxs))
	for _, i := range idxs {
		bins = append(bins, Bin{Low: h.BinLow(i), Count: h.counts[i]})
	}
	return bins
}

// Total returns the number of observed samples.
func (h *Histogram) Total() int64 { return h.total }

// Pct formats a fraction as the paper does: "0.0%" below one-in-a-thousand,
// one decimal below 2%, integers above.
func Pct(f float64) string {
	p := f * 100
	switch {
	case p == 0:
		return "0%"
	case p < 0.05:
		return "0.0%"
	case p < 2:
		return fmt.Sprintf("%.1f%%", p)
	default:
		return fmt.Sprintf("%.0f%%", p)
	}
}

// Bytes formats a byte count with the unit the paper uses in the nearest
// table (MB for email/file tables, GB for the transport table).
func Bytes(n int64) string {
	switch {
	case n >= 10*1000*1000*1000:
		return fmt.Sprintf("%.2fGB", float64(n)/1e9)
	case n >= 1000*1000:
		return fmt.Sprintf("%.0fMB", float64(n)/1e6)
	case n >= 100*1000:
		return fmt.Sprintf("%.1fMB", float64(n)/1e6)
	default:
		return fmt.Sprintf("%dB", n)
	}
}
