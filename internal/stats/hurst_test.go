package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestHurstTooShort(t *testing.T) {
	if _, ok := HurstVT(make([]float64, 30)); ok {
		t.Error("short series should not estimate")
	}
}

func TestHurstIIDNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	series := make([]float64, 4096)
	for i := range series {
		series[i] = rng.Float64()
	}
	h, ok := HurstVT(series)
	if !ok {
		t.Fatal("estimate failed")
	}
	if h < 0.35 || h > 0.65 {
		t.Errorf("iid H = %v, want ≈0.5", h)
	}
}

func TestHurstPersistentSeriesHigh(t *testing.T) {
	// A long-memory series built by superposing on/off sources with
	// heavy-tailed on periods — the classic self-similar construction.
	rng := rand.New(rand.NewSource(11))
	n := 8192
	series := make([]float64, n)
	for src := 0; src < 60; src++ {
		pos := 0
		for pos < n {
			// Pareto(α≈1.2) burst lengths.
			burst := int(math.Pow(rng.Float64(), -1/1.2))
			if burst > n/4 {
				burst = n / 4
			}
			on := rng.Intn(2) == 0
			for i := 0; i < burst && pos < n; i++ {
				if on {
					series[pos]++
				}
				pos++
			}
		}
	}
	h, ok := HurstVT(series)
	if !ok {
		t.Fatal("estimate failed")
	}
	if h <= 0.6 {
		t.Errorf("long-memory H = %v, want > 0.6", h)
	}
}

func TestHurstConstantSeries(t *testing.T) {
	series := make([]float64, 1024)
	for i := range series {
		series[i] = 5
	}
	if _, ok := HurstVT(series); ok {
		t.Error("zero-variance series should not estimate")
	}
}

func TestAggregatedVariance(t *testing.T) {
	series := []float64{1, 3, 1, 3, 1, 3, 1, 3}
	// Block size 2 → every block mean is 2 → variance 0.
	if v := aggregatedVariance(series, 2); v != 0 {
		t.Errorf("var = %v, want 0", v)
	}
	if v := aggregatedVariance(series, 1); v == 0 {
		t.Error("raw variance should be positive")
	}
}

func TestSlope(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7}
	if got := slope(xs, ys); math.Abs(got-2) > 1e-12 {
		t.Errorf("slope = %v, want 2", got)
	}
	if got := slope([]float64{1, 1}, []float64{2, 3}); got != 0 {
		t.Errorf("degenerate slope = %v", got)
	}
}
