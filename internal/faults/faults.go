// Package faults is the deterministic fault injector for packet
// sources: it wraps any pcap.PacketSource and fires a seeded schedule
// of the failure modes a real capture path produces — mid-stream read
// errors, torn (truncated) records, short reads, latency stalls, and
// early EOF — at exact packet offsets, so the same schedule replays the
// same faults every run.
//
// The wrapper is the test and soak harness for the pipeline's
// degrade-and-continue error policy (entanalyze -inject drives it from
// the command line): every injected error implements pcap.SourceFault,
// and the wrapper records what it actually injected, so a run's
// SourceError census can be checked against the injection manifest
// exactly. Events scheduled past the end of the stream, or after a
// terminal fault, never fire and are absent from the manifest.
//
// Epoch obligations: none — the wrapper is upstream of the pipeline and
// holds no report-feeding state; the census it enables banks through
// the ordinary epoch machinery in internal/core.
package faults

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"

	"enttrace/internal/pcap"
)

// Kind names one injected failure class. The string values are census
// keys and must stay stable.
type Kind string

// Fault kinds. ReadError and ShortRead are recoverable (the stream
// continues past them); Torn and EarlyEOF are terminal; Stall surfaces
// no error at all (it only delays Next, for watermark-stall testing).
const (
	ReadError Kind = "read-error"
	ShortRead Kind = "short-read"
	Stall     Kind = "stall"
	Torn      Kind = "torn-record"
	EarlyEOF  Kind = "early-eof"
)

// Event is one scheduled fault. Index is the offset into the underlying
// stream's records at which the event fires: consuming kinds (ReadError,
// ShortRead, Torn) apply to that record; Stall and EarlyEOF fire just
// before it is read.
type Event struct {
	Kind  Kind
	Index int64
	// Cut is ShortRead's kept byte count (the record's Data is truncated
	// to at most this many bytes).
	Cut int
	// Delay is Stall's sleep duration.
	Delay time.Duration
}

// Schedule is a set of events, kept sorted by Index (ties fire in
// insertion order).
type Schedule struct {
	Events []Event
}

// sorted returns the events in firing order.
func (s Schedule) sorted() []Event {
	evs := make([]Event, len(s.Events))
	copy(evs, s.Events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Index < evs[j].Index })
	return evs
}

// ParseSpec parses an injection spec. Two forms:
//
//	kind@index[:arg][,kind@index[:arg]...]
//	rand:seed:count:span
//
// Explicit events: read@100, short@250:40 (keep 40 bytes), stall@300:50ms,
// torn@500, eof@800. The random form draws count recoverable events
// (read errors, short reads, stalls) at seeded-pseudorandom offsets in
// [0, span) — the same seed always yields the same schedule.
func ParseSpec(spec string) (Schedule, error) {
	if rest, ok := strings.CutPrefix(spec, "rand:"); ok {
		return parseRand(rest)
	}
	var s Schedule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseEvent(part)
		if err != nil {
			return Schedule{}, err
		}
		s.Events = append(s.Events, ev)
	}
	if len(s.Events) == 0 {
		return Schedule{}, fmt.Errorf("faults: empty injection spec %q", spec)
	}
	return s, nil
}

func parseEvent(part string) (Event, error) {
	kind, rest, ok := strings.Cut(part, "@")
	if !ok {
		return Event{}, fmt.Errorf("faults: event %q: want kind@index[:arg]", part)
	}
	idxStr, arg, hasArg := strings.Cut(rest, ":")
	idx, err := strconv.ParseInt(idxStr, 10, 64)
	if err != nil || idx < 0 {
		return Event{}, fmt.Errorf("faults: event %q: bad index %q", part, idxStr)
	}
	ev := Event{Index: idx}
	switch kind {
	case "read":
		ev.Kind = ReadError
	case "short":
		ev.Kind = ShortRead
		ev.Cut = 32
		if hasArg {
			cut, err := strconv.Atoi(arg)
			if err != nil || cut < 0 {
				return Event{}, fmt.Errorf("faults: event %q: bad cut %q", part, arg)
			}
			ev.Cut = cut
		}
	case "stall":
		ev.Kind = Stall
		ev.Delay = 10 * time.Millisecond
		if hasArg {
			d, err := time.ParseDuration(arg)
			if err != nil || d < 0 {
				return Event{}, fmt.Errorf("faults: event %q: bad duration %q", part, arg)
			}
			ev.Delay = d
		}
	case "torn":
		ev.Kind = Torn
	case "eof":
		ev.Kind = EarlyEOF
	default:
		return Event{}, fmt.Errorf("faults: event %q: unknown kind %q (want read, short, stall, torn, eof)", part, kind)
	}
	if hasArg && ev.Kind != ShortRead && ev.Kind != Stall {
		return Event{}, fmt.Errorf("faults: event %q: %s takes no argument", part, ev.Kind)
	}
	return ev, nil
}

// parseRand builds a seeded random schedule of recoverable events.
func parseRand(rest string) (Schedule, error) {
	fields := strings.Split(rest, ":")
	if len(fields) != 3 {
		return Schedule{}, fmt.Errorf("faults: random spec: want rand:seed:count:span")
	}
	seed, err1 := strconv.ParseUint(fields[0], 10, 64)
	count, err2 := strconv.Atoi(fields[1])
	span, err3 := strconv.ParseInt(fields[2], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil || count <= 0 || span <= 0 {
		return Schedule{}, fmt.Errorf("faults: random spec rand:%s: bad field", rest)
	}
	return RandomSchedule(seed, count, span), nil
}

// RandomSchedule draws count recoverable events (read errors, short
// reads, stalls) at pseudorandom offsets in [0, span). The same seed
// always yields the same schedule, so soak runs are reproducible.
func RandomSchedule(seed uint64, count int, span int64) Schedule {
	rng := seed | 1 // xorshift must not start at zero
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	var s Schedule
	for i := 0; i < count; i++ {
		ev := Event{Index: int64(next() % uint64(span))}
		switch next() % 3 {
		case 0:
			ev.Kind = ReadError
		case 1:
			ev.Kind = ShortRead
			ev.Cut = int(14 + next()%64)
		default:
			ev.Kind = Stall
			ev.Delay = time.Duration(1+next()%4) * time.Millisecond
		}
		s.Events = append(s.Events, ev)
	}
	return s
}

// Error is the error an injected fault surfaces through Next. It
// implements pcap.SourceFault, so the pipeline's degrade policy
// classifies it without knowing about this package.
type Error struct {
	Kind Kind
	// At is the packet offset as the consumer sees it: the number of
	// packets delivered before the error.
	At int64
	// Lost is the captured bytes dropped (the whole record for ReadError
	// and Torn, the truncated tail for ShortRead).
	Lost int64
}

// Error implements error.
func (e *Error) Error() string {
	return fmt.Sprintf("faults: injected %s at packet %d (%d bytes lost)", e.Kind, e.At, e.Lost)
}

// FaultKind implements pcap.SourceFault.
func (e *Error) FaultKind() string { return string(e.Kind) }

// LostBytes implements pcap.SourceFault.
func (e *Error) LostBytes() int64 { return e.Lost }

// Recoverable implements pcap.SourceFault.
func (e *Error) Recoverable() bool { return e.Kind == ReadError || e.Kind == ShortRead }

// Fired is one manifest entry: an event that actually fired, with the
// loss it caused and the consumer-visible packet offset it fired at.
type Fired struct {
	Kind Kind
	// At is the number of packets delivered to the consumer before the
	// event fired — the offset the pipeline's census records.
	At int64
	// Lost is the captured bytes the event dropped (0 for stalls).
	Lost int64
	// Delay is the stall duration (stalls only).
	Delay time.Duration
}

// Expected is the error census a degraded run over this source must
// report: the manifest aggregated the way the pipeline aggregates.
// Stalls are excluded — they surface no error.
type Expected struct {
	Errors     int64
	LostBytes  int64
	ByKind     map[string]int64
	FirstIndex int64 // packet offset of the first error (-1 when none)
	LastIndex  int64
	Terminal   bool // the stream ended on a terminal fault
	Stalls     int64
	StallTime  time.Duration
}

// Source wraps an inner packet source and fires a fault schedule
// against it. It implements pcap.PacketSource and pcap.Releaser
// (delegating to the inner source when it pools packets; records the
// injector consumes are released immediately).
type Source struct {
	inner pcap.PacketSource
	rel   pcap.Releaser
	evs   []Event
	si    int   // next schedule entry
	idx   int64 // next underlying record ordinal
	out   int64 // packets delivered to the consumer
	stash *pcap.Packet
	dead  error // terminal state: io.EOF after a terminal fault fired

	fired []Fired
	// sleep is the stall clock, a seam so tests can count stalls
	// without waiting them out.
	sleep func(time.Duration)
}

// Wrap returns a fault-injecting source over inner.
func Wrap(inner pcap.PacketSource, sched Schedule) *Source {
	s := &Source{inner: inner, evs: sched.sorted(), sleep: time.Sleep}
	if rel, ok := inner.(pcap.Releaser); ok {
		s.rel = rel
	}
	return s
}

// SetSleep replaces the stall clock (tests pass a recorder so schedules
// with stalls replay instantly).
func (s *Source) SetSleep(fn func(time.Duration)) { s.sleep = fn }

// Next implements pcap.PacketSource. Injected errors come from the
// schedule; between events the inner source's packets (and errors) pass
// through unchanged.
func (s *Source) Next() (*pcap.Packet, error) {
	if s.dead != nil {
		return nil, s.dead
	}
	if s.stash != nil {
		p := s.stash
		s.stash = nil
		s.out++
		return p, nil
	}
	for s.si < len(s.evs) && s.evs[s.si].Index <= s.idx {
		ev := s.evs[s.si]
		s.si++
		switch ev.Kind {
		case Stall:
			s.fired = append(s.fired, Fired{Kind: Stall, At: s.out, Delay: ev.Delay})
			s.sleep(ev.Delay)
		case EarlyEOF:
			s.fired = append(s.fired, Fired{Kind: EarlyEOF, At: s.out})
			s.dead = io.EOF
			return nil, &Error{Kind: EarlyEOF, At: s.out}
		case ReadError, ShortRead, Torn:
			// Consuming kinds: the event applies to the next underlying
			// record. If the stream ends first, the event never fires.
			p, err := s.inner.Next()
			if err != nil {
				return nil, err
			}
			s.idx++
			switch ev.Kind {
			case ReadError:
				lost := int64(len(p.Data))
				s.release(p)
				s.fired = append(s.fired, Fired{Kind: ReadError, At: s.out, Lost: lost})
				return nil, &Error{Kind: ReadError, At: s.out, Lost: lost}
			case ShortRead:
				lost := int64(len(p.Data) - ev.Cut)
				if lost <= 0 {
					// Record already at or below the cut: nothing truncated,
					// but the error still fires (a short read was observed).
					lost = 0
				} else {
					p.Data = p.Data[:ev.Cut]
				}
				s.stash = p
				s.fired = append(s.fired, Fired{Kind: ShortRead, At: s.out, Lost: lost})
				return nil, &Error{Kind: ShortRead, At: s.out, Lost: lost}
			default: // Torn
				lost := int64(len(p.Data))
				s.release(p)
				s.fired = append(s.fired, Fired{Kind: Torn, At: s.out, Lost: lost})
				s.dead = io.EOF
				return nil, &Error{Kind: Torn, At: s.out, Lost: lost}
			}
		}
	}
	p, err := s.inner.Next()
	if err != nil {
		return nil, err
	}
	s.idx++
	s.out++
	return p, nil
}

func (s *Source) release(p *pcap.Packet) {
	if s.rel != nil {
		s.rel.Release(p)
	}
}

// Release implements pcap.Releaser, delegating to the inner source.
func (s *Source) Release(p *pcap.Packet) { s.release(p) }

// Manifest returns the events that actually fired, in firing order.
func (s *Source) Manifest() []Fired { return s.fired }

// PacketsDelivered returns how many packets the consumer has read so
// far — the injector's own count of the census offset space.
func (s *Source) PacketsDelivered() int64 { return s.out }

// LimitSource delivers at most n packets from an inner source, then a
// clean EOF. The drain-determinism tests use it to replay exactly the
// prefix of a schedule a graceful stop consumed: a stopped run's report
// must be byte-identical to running the same source through Limit(n)
// to completion.
type LimitSource struct {
	inner pcap.PacketSource
	rel   pcap.Releaser
	left  int64
}

// Limit wraps inner to yield at most n packets.
func Limit(inner pcap.PacketSource, n int64) *LimitSource {
	l := &LimitSource{inner: inner, left: n}
	if rel, ok := inner.(pcap.Releaser); ok {
		l.rel = rel
	}
	return l
}

// Next implements pcap.PacketSource.
func (l *LimitSource) Next() (*pcap.Packet, error) {
	if l.left <= 0 {
		return nil, io.EOF
	}
	p, err := l.inner.Next()
	if err != nil {
		return nil, err
	}
	l.left--
	return p, nil
}

// Release implements pcap.Releaser, delegating to the inner source.
func (l *LimitSource) Release(p *pcap.Packet) {
	if l.rel != nil {
		l.rel.Release(p)
	}
}

// Expected aggregates the manifest into the census a degraded run must
// report. Call it after the run drains the source.
func (s *Source) Expected() Expected {
	exp := Expected{ByKind: make(map[string]int64), FirstIndex: -1, LastIndex: -1}
	for _, f := range s.fired {
		if f.Kind == Stall {
			exp.Stalls++
			exp.StallTime += f.Delay
			continue
		}
		exp.Errors++
		exp.LostBytes += f.Lost
		exp.ByKind[string(f.Kind)]++
		if exp.FirstIndex < 0 {
			exp.FirstIndex = f.At
		}
		exp.LastIndex = f.At
		if f.Kind == Torn || f.Kind == EarlyEOF {
			exp.Terminal = true
		}
	}
	return exp
}
