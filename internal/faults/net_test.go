package faults

import (
	"errors"
	"testing"
	"time"
)

// sendRecorder collects what actually hits the "wire".
type sendRecorder struct {
	sent [][]byte
	errs []error
}

func (r *sendRecorder) send(b []byte) error {
	if len(r.errs) > 0 {
		err := r.errs[0]
		r.errs = r.errs[1:]
		if err != nil {
			return err
		}
	}
	r.sent = append(r.sent, append([]byte(nil), b...))
	return nil
}

func frames(n int) [][]byte {
	out := make([][]byte, n)
	for i := range out {
		out[i] = []byte{byte(i)}
	}
	return out
}

func TestParseNetSpec(t *testing.T) {
	s, err := ParseNetSpec("drop@10, stall@5:50ms, dup@3, reorder@7")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Events) != 4 {
		t.Fatalf("got %d events", len(s.Events))
	}
	sorted := s.sorted()
	wantKinds := []NetKind{DupFrame, NetStall, ReorderFrame, ConnDrop}
	for i, k := range wantKinds {
		if sorted[i].Kind != k {
			t.Errorf("sorted[%d] = %s, want %s", i, sorted[i].Kind, k)
		}
	}
	if sorted[1].Delay != 50*time.Millisecond {
		t.Errorf("stall delay %v", sorted[1].Delay)
	}
	for _, bad := range []string{"", "drop", "drop@-1", "frob@1", "dup@1:x", "netrand:1:2", "netrand:a:b:c"} {
		if _, err := ParseNetSpec(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	r, err := ParseNetSpec("netrand:7:5:100")
	if err != nil || len(r.Events) != 5 {
		t.Fatalf("netrand: %v, %d events", err, len(r.Events))
	}
	r2, _ := ParseNetSpec("netrand:7:5:100")
	for i := range r.Events {
		if r.Events[i] != r2.Events[i] {
			t.Fatal("netrand not deterministic")
		}
	}
}

func TestNetInjectorDup(t *testing.T) {
	in := NewNetInjector(NetSchedule{Events: []NetEvent{{Kind: DupFrame, Index: 1}}})
	rec := &sendRecorder{}
	for _, f := range frames(3) {
		if err := in.Send(f, rec.send); err != nil {
			t.Fatal(err)
		}
	}
	want := []byte{0, 1, 1, 2}
	if len(rec.sent) != len(want) {
		t.Fatalf("sent %d frames, want %d", len(rec.sent), len(want))
	}
	for i, w := range want {
		if rec.sent[i][0] != w {
			t.Errorf("wire[%d] = %d, want %d", i, rec.sent[i][0], w)
		}
	}
}

func TestNetInjectorReorder(t *testing.T) {
	in := NewNetInjector(NetSchedule{Events: []NetEvent{{Kind: ReorderFrame, Index: 0}}})
	rec := &sendRecorder{}
	for _, f := range frames(3) {
		if err := in.Send(f, rec.send); err != nil {
			t.Fatal(err)
		}
	}
	want := []byte{1, 0, 2} // frames 0 and 1 swapped on the wire
	for i, w := range want {
		if rec.sent[i][0] != w {
			t.Fatalf("wire order %v, want %v", rec.sent, want)
		}
	}
}

func TestNetInjectorReorderAtTailFlushes(t *testing.T) {
	in := NewNetInjector(NetSchedule{Events: []NetEvent{{Kind: ReorderFrame, Index: 2}}})
	rec := &sendRecorder{}
	for _, f := range frames(3) {
		if err := in.Send(f, rec.send); err != nil {
			t.Fatal(err)
		}
	}
	if len(rec.sent) != 2 {
		t.Fatalf("held frame leaked early: %v", rec.sent)
	}
	if err := in.Flush(rec.send); err != nil {
		t.Fatal(err)
	}
	if len(rec.sent) != 3 || rec.sent[2][0] != 2 {
		t.Fatalf("flush did not release held frame: %v", rec.sent)
	}
	if err := in.Flush(rec.send); err != nil || len(rec.sent) != 3 {
		t.Fatal("second flush resent")
	}
}

func TestNetInjectorDrop(t *testing.T) {
	in := NewNetInjector(NetSchedule{Events: []NetEvent{{Kind: ConnDrop, Index: 1}}})
	rec := &sendRecorder{}
	if err := in.Send(frames(1)[0], rec.send); err != nil {
		t.Fatal(err)
	}
	err := in.Send([]byte{1}, rec.send)
	var drop *ErrInjectedDrop
	if !errors.As(err, &drop) || drop.At != 1 {
		t.Fatalf("want ErrInjectedDrop at 1, got %v", err)
	}
	if len(rec.sent) != 1 {
		t.Fatalf("dropped frame reached the wire: %v", rec.sent)
	}
	// After the "reconnect", subsequent sends pass through.
	in.ConnReset()
	if err := in.Send([]byte{1}, rec.send); err != nil {
		t.Fatal(err)
	}
	if len(rec.sent) != 2 {
		t.Fatal("post-drop send missing")
	}
}

func TestNetInjectorStallUsesClockSeam(t *testing.T) {
	in := NewNetInjector(NetSchedule{Events: []NetEvent{{Kind: NetStall, Index: 0, Delay: time.Hour}}})
	var slept time.Duration
	in.SetSleep(func(d time.Duration) { slept += d })
	rec := &sendRecorder{}
	if err := in.Send([]byte{0}, rec.send); err != nil {
		t.Fatal(err)
	}
	if slept != time.Hour {
		t.Fatalf("slept %v, want 1h through the seam", slept)
	}
	if len(rec.sent) != 1 {
		t.Fatal("stalled frame not sent")
	}
}

func TestNetInjectorManifestAndNil(t *testing.T) {
	sched, _ := ParseNetSpec("dup@0,drop@2")
	in := NewNetInjector(sched)
	rec := &sendRecorder{}
	for i := 0; i < 3; i++ {
		in.Send([]byte{byte(i)}, rec.send)
	}
	m := in.Manifest()
	if len(m) != 2 || m[0].Kind != DupFrame || m[0].At != 0 || m[1].Kind != ConnDrop || m[1].At != 2 {
		t.Fatalf("manifest %v", m)
	}
	// nil injector is a transparent pass-through.
	var nilIn *NetInjector
	if err := nilIn.Send([]byte{9}, rec.send); err != nil {
		t.Fatal(err)
	}
	if err := nilIn.Flush(rec.send); err != nil {
		t.Fatal(err)
	}
	nilIn.ConnReset()
	nilIn.SetSleep(nil)
	if nilIn.Manifest() != nil {
		t.Fatal("nil injector has a manifest")
	}
}
