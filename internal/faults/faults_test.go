package faults

import (
	"io"
	"reflect"
	"testing"
	"time"

	"enttrace/internal/pcap"
)

// mkPackets builds n packets of size data bytes each.
func mkPackets(n, size int) []*pcap.Packet {
	pkts := make([]*pcap.Packet, n)
	for i := range pkts {
		pkts[i] = &pcap.Packet{
			Timestamp: time.Unix(1000, 0).Add(time.Duration(i) * time.Millisecond),
			Data:      make([]byte, size),
			OrigLen:   size,
		}
	}
	return pkts
}

// drain consumes src to the end, returning delivered packets and the
// injected errors in arrival order. Any non-EOF, non-injected error is
// fatal.
func drain(t *testing.T, src *Source) (pkts []*pcap.Packet, errs []*Error) {
	t.Helper()
	for {
		p, err := src.Next()
		if err == nil {
			pkts = append(pkts, p)
			continue
		}
		if err == io.EOF {
			return pkts, errs
		}
		fe, ok := err.(*Error)
		if !ok {
			t.Fatalf("unexpected non-injected error: %v", err)
		}
		errs = append(errs, fe)
	}
}

func TestParseSpecExplicit(t *testing.T) {
	s, err := ParseSpec("read@100, short@250:40, stall@300:50ms, torn@500, eof@800")
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: ReadError, Index: 100},
		{Kind: ShortRead, Index: 250, Cut: 40},
		{Kind: Stall, Index: 300, Delay: 50 * time.Millisecond},
		{Kind: Torn, Index: 500},
		{Kind: EarlyEOF, Index: 800},
	}
	if !reflect.DeepEqual(s.Events, want) {
		t.Errorf("events = %+v, want %+v", s.Events, want)
	}
}

func TestParseSpecDefaults(t *testing.T) {
	s, err := ParseSpec("short@10,stall@20")
	if err != nil {
		t.Fatal(err)
	}
	if s.Events[0].Cut != 32 {
		t.Errorf("short default cut = %d, want 32", s.Events[0].Cut)
	}
	if s.Events[1].Delay != 10*time.Millisecond {
		t.Errorf("stall default delay = %v, want 10ms", s.Events[1].Delay)
	}
}

func TestParseSpecRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"",                // empty
		"read",            // no index
		"read@-1",         // negative index
		"read@x",          // non-numeric index
		"short@5:x",       // bad cut
		"stall@5:bogus",   // bad duration
		"torn@5:9",        // torn takes no argument
		"eof@5:9",         // eof takes no argument
		"bogus@1",         // unknown kind
		"rand:1:2",        // missing span
		"rand:1:0:10",     // zero count
		"rand:1:2:-5",     // negative span
		"read@1,,bogus@2", // bad event after blank
	} {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("ParseSpec(%q) accepted, want error", spec)
		}
	}
}

// TestScheduleFiresAtExactOffsets walks a mixed schedule and pins the
// manifest contract: Fired.At is the delivered-packet offset (what the
// pipeline census records), short reads truncate and then deliver, and
// a torn record kills the stream.
func TestScheduleFiresAtExactOffsets(t *testing.T) {
	sched := Schedule{Events: []Event{
		{Kind: ReadError, Index: 2},
		{Kind: ShortRead, Index: 5, Cut: 40},
		{Kind: Torn, Index: 8},
	}}
	src := Wrap(pcap.NewSliceSource(mkPackets(10, 100)), sched)
	pkts, errs := drain(t, src)

	// Records 0,1 pass; record 2 is dropped (read error); 3,4 pass;
	// record 5 is truncated and delivered after its error; 6,7 pass;
	// record 8 is torn and ends the stream. Record 9 is never read.
	if len(pkts) != 7 {
		t.Fatalf("delivered %d packets, want 7", len(pkts))
	}
	if src.PacketsDelivered() != 7 {
		t.Errorf("PacketsDelivered = %d, want 7", src.PacketsDelivered())
	}
	if got := len(pkts[4].Data); got != 40 {
		t.Errorf("short-read record kept %d bytes, want 40", got)
	}

	wantErrs := []*Error{
		{Kind: ReadError, At: 2, Lost: 100},
		{Kind: ShortRead, At: 4, Lost: 60},
		{Kind: Torn, At: 7, Lost: 100},
	}
	if !reflect.DeepEqual(errs, wantErrs) {
		t.Errorf("errors = %+v, want %+v", errs, wantErrs)
	}
	wantFired := []Fired{
		{Kind: ReadError, At: 2, Lost: 100},
		{Kind: ShortRead, At: 4, Lost: 60},
		{Kind: Torn, At: 7, Lost: 100},
	}
	if !reflect.DeepEqual(src.Manifest(), wantFired) {
		t.Errorf("manifest = %+v, want %+v", src.Manifest(), wantFired)
	}

	exp := src.Expected()
	if exp.Errors != 3 || exp.LostBytes != 260 || !exp.Terminal {
		t.Errorf("expected census = %+v", exp)
	}
	if exp.FirstIndex != 2 || exp.LastIndex != 7 {
		t.Errorf("census offsets %d..%d, want 2..7", exp.FirstIndex, exp.LastIndex)
	}
	for _, k := range []Kind{ReadError, ShortRead, Torn} {
		if exp.ByKind[string(k)] != 1 {
			t.Errorf("ByKind[%s] = %d, want 1", k, exp.ByKind[string(k)])
		}
	}

	// The stream stays dead after the terminal fault.
	if _, err := src.Next(); err != io.EOF {
		t.Errorf("post-terminal Next: %v, want io.EOF", err)
	}
}

func TestStallAndEarlyEOF(t *testing.T) {
	sched := Schedule{Events: []Event{
		{Kind: Stall, Index: 1, Delay: 5 * time.Millisecond},
		{Kind: EarlyEOF, Index: 3},
	}}
	src := Wrap(pcap.NewSliceSource(mkPackets(10, 60)), sched)
	var slept []time.Duration
	src.SetSleep(func(d time.Duration) { slept = append(slept, d) })

	pkts, errs := drain(t, src)
	if len(pkts) != 3 {
		t.Fatalf("delivered %d packets, want 3", len(pkts))
	}
	if !reflect.DeepEqual(slept, []time.Duration{5 * time.Millisecond}) {
		t.Errorf("stall slept %v", slept)
	}
	if len(errs) != 1 || errs[0].Kind != EarlyEOF || errs[0].At != 3 {
		t.Errorf("errors = %+v, want one early-eof at 3", errs)
	}
	exp := src.Expected()
	if exp.Errors != 1 || exp.Stalls != 1 || exp.StallTime != 5*time.Millisecond || !exp.Terminal {
		t.Errorf("expected census = %+v", exp)
	}
}

// TestEventsPastEndNeverFire pins the manifest-honesty contract: events
// the stream never reaches — beyond the last record, or consuming
// events whose target record does not exist — are absent from the
// manifest, so Expected() stays comparable to a real run's census.
func TestEventsPastEndNeverFire(t *testing.T) {
	sched := Schedule{Events: []Event{
		{Kind: ReadError, Index: 5}, // fires at EOF: no record to consume
		{Kind: Torn, Index: 100},    // far past the end
	}}
	src := Wrap(pcap.NewSliceSource(mkPackets(5, 60)), sched)
	pkts, errs := drain(t, src)
	if len(pkts) != 5 || len(errs) != 0 {
		t.Fatalf("delivered %d packets with %d errors, want 5 and 0", len(pkts), len(errs))
	}
	if got := src.Manifest(); len(got) != 0 {
		t.Errorf("manifest = %+v, want empty", got)
	}
	exp := src.Expected()
	if exp.Errors != 0 || exp.FirstIndex != -1 || exp.LastIndex != -1 {
		t.Errorf("expected census = %+v, want empty", exp)
	}
}

func TestShortReadAtOrBelowCutLosesNothing(t *testing.T) {
	sched := Schedule{Events: []Event{{Kind: ShortRead, Index: 0, Cut: 64}}}
	src := Wrap(pcap.NewSliceSource(mkPackets(2, 20)), sched)
	pkts, errs := drain(t, src)
	if len(pkts) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(pkts))
	}
	if len(pkts[0].Data) != 20 {
		t.Errorf("record truncated to %d bytes, want untouched 20", len(pkts[0].Data))
	}
	if len(errs) != 1 || errs[0].Lost != 0 {
		t.Errorf("errors = %+v, want one zero-loss short read", errs)
	}
}

// TestErrorClassification pins that injected errors drive the
// pipeline's classifier exactly like a native source fault.
func TestErrorClassification(t *testing.T) {
	for _, tc := range []struct {
		kind        Kind
		recoverable bool
	}{
		{ReadError, true},
		{ShortRead, true},
		{Torn, false},
		{EarlyEOF, false},
	} {
		e := &Error{Kind: tc.kind, Lost: 7}
		kind, rec := pcap.ClassifyReadError(e)
		if kind != string(tc.kind) || rec != tc.recoverable {
			t.Errorf("classify(%s) = (%s, %v), want (%s, %v)", tc.kind, kind, rec, tc.kind, tc.recoverable)
		}
		if pcap.FaultLostBytes(e) != 7 {
			t.Errorf("FaultLostBytes(%s) = %d, want 7", tc.kind, pcap.FaultLostBytes(e))
		}
	}
}

func TestRandomScheduleDeterministic(t *testing.T) {
	a := RandomSchedule(42, 10, 1000)
	b := RandomSchedule(42, 10, 1000)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different schedules")
	}
	parsed, err := ParseSpec("rand:42:10:1000")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parsed, a) {
		t.Error("rand spec differs from RandomSchedule with the same parameters")
	}
	for _, ev := range a.Events {
		if ev.Index < 0 || ev.Index >= 1000 {
			t.Errorf("event index %d outside span", ev.Index)
		}
		if ev.Kind == Torn || ev.Kind == EarlyEOF {
			t.Errorf("random schedule drew terminal kind %s", ev.Kind)
		}
	}
	// Note 42|1 == 43|1: the xorshift zero-guard ORs the low bit, so
	// adjacent even/odd seeds intentionally alias.
	if c := RandomSchedule(44, 10, 1000); reflect.DeepEqual(c, a) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestLimitDeliversExactlyN(t *testing.T) {
	src := Limit(pcap.NewSliceSource(mkPackets(10, 60)), 4)
	var n int
	for {
		_, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 4 {
		t.Errorf("delivered %d packets, want 4", n)
	}
}
