package faults

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// NetKind names one injected network failure class for the fleet wire
// layer. The string values are manifest keys and must stay stable.
type NetKind string

// Network fault kinds, all indexed by the shipper's global frame-send
// ordinal (resends count — the index space is "send operations", not
// "distinct frames"). None of them lose data under the fleet protocol:
// a dropped connection triggers backoff + resend of everything
// unacknowledged, duplicates and reorders are absorbed by per-(site,
// window) sequence dedup, and stalls only delay delivery. Permanent
// loss comes only from the shipper's bounded-queue overflow, which is a
// capacity decision, not an injected fault.
const (
	// ConnDrop severs the connection instead of sending frame N.
	ConnDrop NetKind = "conn-drop"
	// NetStall delays frame N's send.
	NetStall NetKind = "net-stall"
	// DupFrame delivers frame N twice back to back.
	DupFrame NetKind = "dup-frame"
	// ReorderFrame holds frame N and releases it after the next frame —
	// adjacent frames arrive swapped.
	ReorderFrame NetKind = "reorder-frame"
)

// NetEvent is one scheduled network fault.
type NetEvent struct {
	Kind  NetKind
	Index int64
	// Delay is NetStall's added latency.
	Delay time.Duration
}

// NetSchedule is a set of network events, fired in Index order (ties in
// insertion order).
type NetSchedule struct {
	Events []NetEvent
}

func (s NetSchedule) sorted() []NetEvent {
	evs := make([]NetEvent, len(s.Events))
	copy(evs, s.Events)
	for i := 1; i < len(evs); i++ { // insertion sort keeps ties stable
		for j := i; j > 0 && evs[j-1].Index > evs[j].Index; j-- {
			evs[j-1], evs[j] = evs[j], evs[j-1]
		}
	}
	return evs
}

// ParseNetSpec parses a network injection spec. Two forms:
//
//	kind@index[:arg][,kind@index[:arg]...]
//	netrand:seed:count:span
//
// Explicit events: drop@10, stall@5:50ms, dup@3, reorder@7. The random
// form draws count events of all four kinds at seeded-pseudorandom send
// ordinals in [0, span); the same seed always yields the same schedule.
func ParseNetSpec(spec string) (NetSchedule, error) {
	if rest, ok := strings.CutPrefix(spec, "netrand:"); ok {
		return parseNetRand(rest)
	}
	var s NetSchedule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		ev, err := parseNetEvent(part)
		if err != nil {
			return NetSchedule{}, err
		}
		s.Events = append(s.Events, ev)
	}
	if len(s.Events) == 0 {
		return NetSchedule{}, fmt.Errorf("faults: empty net injection spec %q", spec)
	}
	return s, nil
}

func parseNetEvent(part string) (NetEvent, error) {
	kind, rest, ok := strings.Cut(part, "@")
	if !ok {
		return NetEvent{}, fmt.Errorf("faults: net event %q: want kind@index[:arg]", part)
	}
	idxStr, arg, hasArg := strings.Cut(rest, ":")
	idx, err := strconv.ParseInt(idxStr, 10, 64)
	if err != nil || idx < 0 {
		return NetEvent{}, fmt.Errorf("faults: net event %q: bad index %q", part, idxStr)
	}
	ev := NetEvent{Index: idx}
	switch kind {
	case "drop":
		ev.Kind = ConnDrop
	case "stall":
		ev.Kind = NetStall
		ev.Delay = 10 * time.Millisecond
		if hasArg {
			d, err := time.ParseDuration(arg)
			if err != nil || d < 0 {
				return NetEvent{}, fmt.Errorf("faults: net event %q: bad duration %q", part, arg)
			}
			ev.Delay = d
		}
	case "dup":
		ev.Kind = DupFrame
	case "reorder":
		ev.Kind = ReorderFrame
	default:
		return NetEvent{}, fmt.Errorf("faults: net event %q: unknown kind %q (want drop, stall, dup, reorder)", part, kind)
	}
	if hasArg && ev.Kind != NetStall {
		return NetEvent{}, fmt.Errorf("faults: net event %q: %s takes no argument", part, ev.Kind)
	}
	return ev, nil
}

func parseNetRand(rest string) (NetSchedule, error) {
	fields := strings.Split(rest, ":")
	if len(fields) != 3 {
		return NetSchedule{}, fmt.Errorf("faults: net random spec: want netrand:seed:count:span")
	}
	seed, err1 := strconv.ParseUint(fields[0], 10, 64)
	count, err2 := strconv.Atoi(fields[1])
	span, err3 := strconv.ParseInt(fields[2], 10, 64)
	if err1 != nil || err2 != nil || err3 != nil || count <= 0 || span <= 0 {
		return NetSchedule{}, fmt.Errorf("faults: net random spec netrand:%s: bad field", rest)
	}
	return RandomNetSchedule(seed, count, span), nil
}

// RandomNetSchedule draws count network events at pseudorandom send
// ordinals in [0, span), deterministically from seed.
func RandomNetSchedule(seed uint64, count int, span int64) NetSchedule {
	rng := seed | 1
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	var s NetSchedule
	for i := 0; i < count; i++ {
		ev := NetEvent{Index: int64(next() % uint64(span))}
		switch next() % 4 {
		case 0:
			ev.Kind = ConnDrop
		case 1:
			ev.Kind = DupFrame
		case 2:
			ev.Kind = ReorderFrame
		default:
			ev.Kind = NetStall
			ev.Delay = time.Duration(1+next()%4) * time.Millisecond
		}
		s.Events = append(s.Events, ev)
	}
	return s
}

// ErrInjectedDrop is the write error a ConnDrop surfaces. The shipper
// treats it like any connection failure: tear down, back off,
// reconnect, resend unacknowledged frames.
type ErrInjectedDrop struct {
	At int64 // send ordinal at which the drop fired
}

func (e *ErrInjectedDrop) Error() string {
	return fmt.Sprintf("faults: injected connection drop at send %d", e.At)
}

// NetFired is one manifest entry for a network event that fired.
type NetFired struct {
	Kind NetKind
	At   int64 // send ordinal
}

// NetInjector applies a NetSchedule to a stream of outgoing frames. It
// sits between the shipper's send loop and the socket: every frame send
// passes through Send, which consults the schedule at the current
// global send ordinal. Not safe for concurrent use — the shipper's
// single send loop owns it.
type NetInjector struct {
	evs   []NetEvent
	si    int
	idx   int64 // next send ordinal
	held  []byte
	fired []NetFired
	sleep func(time.Duration)
}

// NewNetInjector returns an injector for the schedule. A nil receiver
// is valid everywhere and injects nothing, so callers can thread an
// optional injector without branching.
func NewNetInjector(s NetSchedule) *NetInjector {
	return &NetInjector{evs: s.sorted(), sleep: time.Sleep}
}

// SetSleep replaces the stall clock (tests pass a recorder so schedules
// with stalls replay instantly).
func (n *NetInjector) SetSleep(fn func(time.Duration)) {
	if n != nil {
		n.sleep = fn
	}
}

// Send transmits raw via send, applying any scheduled fault at the
// current send ordinal. It may call send zero times (drop, reorder
// hold), once (clean, stall), or multiple times (dup, reorder release).
// A ConnDrop returns *ErrInjectedDrop without calling send.
func (n *NetInjector) Send(raw []byte, send func([]byte) error) error {
	if n == nil {
		return send(raw)
	}
	at := n.idx
	n.idx++
	var ev *NetEvent
	if n.si < len(n.evs) && n.evs[n.si].Index <= at {
		ev = &n.evs[n.si]
		n.si++
	}
	if ev != nil {
		n.fired = append(n.fired, NetFired{Kind: ev.Kind, At: at})
		switch ev.Kind {
		case ConnDrop:
			return &ErrInjectedDrop{At: at}
		case NetStall:
			n.sleep(ev.Delay)
		case DupFrame:
			if err := send(raw); err != nil {
				return err
			}
		case ReorderFrame:
			// Hold this frame; the next Send (or Flush) releases it
			// after the following frame — adjacent delivery order swaps.
			n.held = append([]byte(nil), raw...)
			return nil
		}
	}
	if err := send(raw); err != nil {
		return err
	}
	if n.held != nil {
		held := n.held
		n.held = nil
		return send(held)
	}
	return nil
}

// Flush releases a frame held by a ReorderFrame event when no further
// Send follows (end of stream). The shipper calls it once its queue
// drains.
func (n *NetInjector) Flush(send func([]byte) error) error {
	if n == nil || n.held == nil {
		return nil
	}
	held := n.held
	n.held = nil
	return send(held)
}

// ConnReset discards any held frame — the connection it belonged to is
// gone, and the at-least-once resend path owns redelivery now.
func (n *NetInjector) ConnReset() {
	if n != nil {
		n.held = nil
	}
}

// Manifest returns the network events that actually fired, in order.
func (n *NetInjector) Manifest() []NetFired {
	if n == nil {
		return nil
	}
	return n.fired
}
