// Package scan implements the paper's scanner-identification heuristic
// (§3): a source is deemed a scanner when it contacts more than 50
// distinct hosts and at least 45 of the distinct addresses probed were in
// ascending or descending order. The site's known internal vulnerability
// scanners can be added explicitly. Scanner traffic is removed before all
// of the paper's breakdowns; the fraction removed (4–18% of connections in
// the paper) is reported by Filter.
//
// Epoch obligations: scanner removal is deliberately trace-granular, not
// per-window — Filter sees a whole trace's connection summaries at once,
// so a slow scan cannot escape detection by straddling window cuts, and
// the removal delta banks into the window containing the trace's last
// packet. Reset readies a Detector for the next trace, not the next
// window. See DESIGN.md § "Epoch snapshots and windowed reports: the
// Snapshot/Reset/watermark contract".
package scan

import (
	"net/netip"
	"sort"

	"enttrace/internal/flows"
)

// Defaults for the paper's heuristic.
const (
	DefaultHostThreshold    = 50
	DefaultOrderedThreshold = 45
)

// Detector accumulates per-source contact sequences.
type Detector struct {
	// HostThreshold is the minimum number of distinct destinations
	// (exclusive) for scanner consideration.
	HostThreshold int
	// OrderedThreshold is the number of addresses that must appear in
	// ascending or descending first-contact order.
	OrderedThreshold int

	known   map[netip.Addr]bool
	sources map[netip.Addr]*srcTrack
}

type srcTrack struct {
	seen map[netip.Addr]struct{}
	// last is the previous first-contact address. ascRun/descRun are the
	// current consecutive monotone run lengths (in addresses) within the
	// first-contact sequence, and maxAsc/maxDesc their maxima. A random
	// contact order produces only short runs; a sequential sweep produces
	// a run covering nearly every address, which is what the heuristic
	// keys on.
	last            netip.Addr
	hasLast         bool
	ascRun, descRun int
	maxAsc, maxDesc int
}

// NewDetector returns a Detector with the paper's thresholds.
func NewDetector() *Detector {
	return &Detector{
		HostThreshold:    DefaultHostThreshold,
		OrderedThreshold: DefaultOrderedThreshold,
		known:            make(map[netip.Addr]bool),
		sources:          make(map[netip.Addr]*srcTrack),
	}
}

// AddKnown marks a source as a known scanner (the two internal
// vulnerability scanners in the paper's traces) regardless of heuristics.
func (d *Detector) AddKnown(src netip.Addr) { d.known[src] = true }

// Reset clears the per-source contact evidence in place while keeping
// the known-scanner list — the epoch cut for a long-running detector: a
// serve-mode process rotates detection windows without forgetting the
// operator-configured scanners. Heuristic verdicts restart from scratch
// in the new epoch (contact sequences do not straddle a Reset).
func (d *Detector) Reset() {
	clear(d.sources)
}

// Observe records that src originated a conversation to dst.
func (d *Detector) Observe(src, dst netip.Addr) {
	tr := d.sources[src]
	if tr == nil {
		tr = &srcTrack{seen: make(map[netip.Addr]struct{})}
		d.sources[src] = tr
	}
	if _, dup := tr.seen[dst]; dup {
		return
	}
	tr.seen[dst] = struct{}{}
	if !tr.hasLast {
		tr.ascRun, tr.descRun = 1, 1
	} else {
		switch tr.last.Compare(dst) {
		case -1:
			tr.ascRun++
			tr.descRun = 1
		case 1:
			tr.descRun++
			tr.ascRun = 1
		}
	}
	if tr.ascRun > tr.maxAsc {
		tr.maxAsc = tr.ascRun
	}
	if tr.descRun > tr.maxDesc {
		tr.maxDesc = tr.descRun
	}
	tr.last, tr.hasLast = dst, true
}

// IsScanner reports whether src currently qualifies as a scanner.
func (d *Detector) IsScanner(src netip.Addr) bool {
	if d.known[src] {
		return true
	}
	tr := d.sources[src]
	if tr == nil || len(tr.seen) <= d.HostThreshold {
		return false
	}
	return tr.maxAsc >= d.OrderedThreshold || tr.maxDesc >= d.OrderedThreshold
}

// Scanners returns every source currently classified as a scanner.
func (d *Detector) Scanners() []netip.Addr {
	var out []netip.Addr
	for src := range d.known {
		out = append(out, src)
	}
	for src := range d.sources {
		if !d.known[src] && d.IsScanner(src) {
			out = append(out, src)
		}
	}
	return out
}

// ObserveConns feeds every connection's originator→responder pair through
// the detector, in connection start order if the caller sorted them.
func (d *Detector) ObserveConns(conns []*flows.Conn) {
	for _, c := range conns {
		if c.Multicast {
			continue
		}
		d.Observe(c.Key.Src, c.Key.Dst)
	}
}

// FilterResult reports what Filter removed.
type FilterResult struct {
	Kept            []*flows.Conn
	RemovedConns    int
	RemovedFraction float64
	Scanners        []netip.Addr
}

// Filter runs the full §3 procedure: observe all connections in start
// order (the order probes hit the wire, which is what makes a sequential
// sweep visible), classify scanners, and drop every connection originated
// by one.
func Filter(conns []*flows.Conn, known []netip.Addr) FilterResult {
	d := NewDetector()
	for _, k := range known {
		d.AddKnown(k)
	}
	ordered := make([]*flows.Conn, len(conns))
	copy(ordered, conns)
	sort.SliceStable(ordered, func(i, j int) bool {
		return ordered[i].Start.Before(ordered[j].Start)
	})
	d.ObserveConns(ordered)
	res := FilterResult{Scanners: d.Scanners()}
	scanners := make(map[netip.Addr]bool, len(res.Scanners))
	for _, s := range res.Scanners {
		scanners[s] = true
	}
	for _, c := range conns {
		if scanners[c.Key.Src] {
			res.RemovedConns++
			continue
		}
		res.Kept = append(res.Kept, c)
	}
	if len(conns) > 0 {
		res.RemovedFraction = float64(res.RemovedConns) / float64(len(conns))
	}
	return res
}
