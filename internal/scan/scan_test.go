package scan

import (
	"fmt"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"enttrace/internal/flows"
	"enttrace/internal/layers"
)

func addr(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})
}

func TestSequentialScannerDetected(t *testing.T) {
	d := NewDetector()
	src := netip.MustParseAddr("128.3.2.1")
	for i := 0; i < 60; i++ {
		d.Observe(src, addr(i))
	}
	if !d.IsScanner(src) {
		t.Error("ascending sweep of 60 hosts should be a scanner")
	}
}

func TestDescendingScannerDetected(t *testing.T) {
	d := NewDetector()
	src := netip.MustParseAddr("128.3.2.2")
	for i := 100; i > 30; i-- {
		d.Observe(src, addr(i))
	}
	if !d.IsScanner(src) {
		t.Error("descending sweep should be a scanner")
	}
}

func TestBusyServerNotScanner(t *testing.T) {
	// A mail server talks to many hosts but in arbitrary order.
	d := NewDetector()
	src := netip.MustParseAddr("10.9.9.9")
	rng := rand.New(rand.NewSource(42))
	perm := rng.Perm(200)
	for _, i := range perm {
		d.Observe(src, addr(i))
	}
	if d.IsScanner(src) {
		t.Error("random-order contacts misclassified as scanner")
	}
}

func TestFewHostsNotScanner(t *testing.T) {
	d := NewDetector()
	src := netip.MustParseAddr("10.1.1.1")
	for i := 0; i < 50; i++ { // exactly the threshold, not above it
		d.Observe(src, addr(i))
	}
	if d.IsScanner(src) {
		t.Error("50 hosts is not more than 50")
	}
	d.Observe(src, addr(50))
	if !d.IsScanner(src) {
		t.Error("51 ascending hosts should flip to scanner")
	}
}

func TestDuplicateContactsIgnored(t *testing.T) {
	d := NewDetector()
	src := netip.MustParseAddr("10.2.2.2")
	// Repeatedly contacting two hosts should never look like a scan.
	for i := 0; i < 500; i++ {
		d.Observe(src, addr(i%2))
	}
	if d.IsScanner(src) {
		t.Error("two hosts contacted repeatedly misclassified")
	}
}

func TestKnownScanner(t *testing.T) {
	d := NewDetector()
	src := netip.MustParseAddr("131.243.1.1")
	d.AddKnown(src)
	if !d.IsScanner(src) {
		t.Error("known scanner not flagged")
	}
	found := false
	for _, s := range d.Scanners() {
		if s == src {
			found = true
		}
	}
	if !found {
		t.Error("known scanner missing from Scanners()")
	}
}

func makeConn(src, dst netip.Addr, port uint16) *flows.Conn {
	return &flows.Conn{
		Key:   layers.FlowKey{Proto: layers.ProtoTCP, Src: src, Dst: dst, SrcPort: 40000, DstPort: port},
		Proto: layers.ProtoTCP,
		Start: time.Unix(0, 0),
	}
}

func TestFilterRemovesScannerConns(t *testing.T) {
	var conns []*flows.Conn
	scanner := netip.MustParseAddr("198.51.100.7")
	for i := 0; i < 80; i++ {
		conns = append(conns, makeConn(scanner, addr(i), 80))
	}
	normal := netip.MustParseAddr("10.5.5.5")
	for i := 0; i < 20; i++ {
		conns = append(conns, makeConn(normal, addr(1000+i*7%13), 25))
	}
	res := Filter(conns, nil)
	if res.RemovedConns != 80 {
		t.Errorf("removed = %d, want 80", res.RemovedConns)
	}
	if len(res.Kept) != 20 {
		t.Errorf("kept = %d, want 20", len(res.Kept))
	}
	wantFrac := 0.8
	if res.RemovedFraction != wantFrac {
		t.Errorf("fraction = %v, want %v", res.RemovedFraction, wantFrac)
	}
	if len(res.Scanners) != 1 || res.Scanners[0] != scanner {
		t.Errorf("scanners = %v", res.Scanners)
	}
}

func TestFilterEmpty(t *testing.T) {
	res := Filter(nil, nil)
	if res.RemovedFraction != 0 || len(res.Kept) != 0 {
		t.Errorf("empty filter: %+v", res)
	}
}

func TestFilterKnownInternal(t *testing.T) {
	known := netip.MustParseAddr("128.3.0.2")
	conns := []*flows.Conn{makeConn(known, addr(1), 80), makeConn(addr(5), addr(6), 80)}
	res := Filter(conns, []netip.Addr{known})
	if res.RemovedConns != 1 || len(res.Kept) != 1 {
		t.Errorf("known scanner filter: removed=%d kept=%d", res.RemovedConns, len(res.Kept))
	}
}

func TestMulticastConnsNotObserved(t *testing.T) {
	src := netip.MustParseAddr("10.3.3.3")
	var conns []*flows.Conn
	for i := 0; i < 60; i++ {
		c := makeConn(src, addr(i), 5004)
		c.Multicast = true
		conns = append(conns, c)
	}
	res := Filter(conns, nil)
	if res.RemovedConns != 0 {
		t.Error("multicast fan-out misclassified as scanning")
	}
}

// Property: a source with a strictly ascending first-contact sequence of
// length n is a scanner iff n > HostThreshold and n >= OrderedThreshold.
func TestThresholdProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw)
		d := NewDetector()
		src := netip.MustParseAddr("192.0.2.1")
		for i := 0; i < n; i++ {
			d.Observe(src, addr(i))
		}
		want := n > d.HostThreshold && n >= d.OrderedThreshold
		return d.IsScanner(src) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: observation order of *duplicate* contacts never affects the
// verdict; only the first-contact sequence matters.
func TestDuplicateInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src := netip.MustParseAddr("192.0.2.2")
		d1, d2 := NewDetector(), NewDetector()
		var firsts []netip.Addr
		for i := 0; i < 70; i++ {
			a := addr(i)
			firsts = append(firsts, a)
			d1.Observe(src, a)
			d2.Observe(src, a)
			// d2 also gets duplicate re-contacts of earlier hosts.
			if len(firsts) > 1 {
				d2.Observe(src, firsts[rng.Intn(len(firsts))])
			}
		}
		return d1.IsScanner(src) == d2.IsScanner(src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkObserve(b *testing.B) {
	d := NewDetector()
	srcs := make([]netip.Addr, 100)
	for i := range srcs {
		srcs[i] = netip.MustParseAddr(fmt.Sprintf("10.1.%d.%d", i/250, i%250))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Observe(srcs[i%100], addr(i%4096))
	}
}

// TestDetectorReset pins the epoch cut: Reset clears the heuristic
// evidence but keeps the operator-configured known scanners.
func TestDetectorReset(t *testing.T) {
	d := NewDetector()
	d.HostThreshold = 4
	d.OrderedThreshold = 4
	known := netip.MustParseAddr("10.9.9.9")
	d.AddKnown(known)
	src := netip.MustParseAddr("10.0.0.1")
	for i := 1; i <= 8; i++ {
		d.Observe(src, netip.AddrFrom4([4]byte{10, 1, 0, byte(i)}))
	}
	if !d.IsScanner(src) {
		t.Fatal("sequential sweep not detected before reset")
	}
	d.Reset()
	if d.IsScanner(src) {
		t.Error("heuristic verdict survived Reset")
	}
	if !d.IsScanner(known) {
		t.Error("known scanner forgotten by Reset")
	}
}
