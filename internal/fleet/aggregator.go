package fleet

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
)

// Sink receives the frames an Aggregator accepts. One Sink serves every
// connection; implementations must be safe for concurrent use (the
// aggregator serves each connection on its own goroutine). The
// report-level sink lives in internal/core — this package only moves
// frames.
//
// Any error returned from Hello or a frame method is fatal for that
// connection: the aggregator sends the shipper an ERR frame carrying
// the message and closes. The shipper's unacked frames survive on its
// side and arrive again on the next connection (or never, if the error
// is a schema mismatch and the shipper gives up — which is the point).
type Sink interface {
	// Hello validates a new session for site. Rejecting here (schema or
	// window-config mismatch) is the only safe failure point: nothing
	// from this connection has been applied yet.
	Hello(site string, h Hello) error
	// Delta delivers one window's encoded snapshot delta. Duplicate
	// (site, window, seq) triples MUST be idempotent — delivery is
	// at-least-once.
	Delta(site string, window int, seq uint64, watermark int64, payload []byte) error
	// Lost records that site permanently dropped window from its queue.
	Lost(site string, window int, seq uint64) error
	// Heartbeat advances site's liveness watermark (unix nanoseconds).
	Heartbeat(site string, watermark int64)
	// Fin declares site complete: every window ≤ maxWindow was shipped
	// or declared lost.
	Fin(site string, maxWindow int, seq uint64, watermark int64) error
	// Disconnect reports that site's connection ended (cleanly or not);
	// liveness tracking uses it to start the staleness clock.
	Disconnect(site string)
}

// Aggregator accepts shipper connections and feeds their frames to a
// Sink, acknowledging each processed frame by sequence number. It is
// transport only: dedup, merging, and liveness live behind the Sink.
type Aggregator struct {
	ln   net.Listener
	sink Sink
	logf func(format string, args ...any)

	mu    sync.Mutex
	conns map[net.Conn]bool
	done  bool
	wg    sync.WaitGroup
}

// NewAggregator wraps an accept loop around ln. Call Serve to run it.
func NewAggregator(ln net.Listener, sink Sink, logf func(format string, args ...any)) *Aggregator {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Aggregator{ln: ln, sink: sink, logf: logf, conns: make(map[net.Conn]bool)}
}

// Serve accepts connections until Close. It always returns a non-nil
// error; after Close the error is net.ErrClosed.
func (a *Aggregator) Serve() error {
	for {
		c, err := a.ln.Accept()
		if err != nil {
			a.mu.Lock()
			done := a.done
			a.mu.Unlock()
			if done {
				return net.ErrClosed
			}
			if errors.Is(err, net.ErrClosed) {
				return err
			}
			a.logf("fleet: accept: %v", err)
			continue
		}
		a.mu.Lock()
		if a.done {
			a.mu.Unlock()
			c.Close()
			return net.ErrClosed
		}
		a.conns[c] = true
		a.wg.Add(1)
		a.mu.Unlock()
		go func() {
			defer a.wg.Done()
			a.handle(c)
			a.mu.Lock()
			delete(a.conns, c)
			a.mu.Unlock()
		}()
	}
}

// Close stops accepting, closes every live connection, and waits for
// handlers to drain.
func (a *Aggregator) Close() error {
	a.mu.Lock()
	if a.done {
		a.mu.Unlock()
		return nil
	}
	a.done = true
	for c := range a.conns {
		c.Close()
	}
	a.mu.Unlock()
	err := a.ln.Close()
	a.wg.Wait()
	return err
}

// handle runs one shipper session: HELLO first, then data frames, each
// acknowledged after the sink accepts it.
func (a *Aggregator) handle(c net.Conn) {
	defer c.Close()
	br := bufio.NewReader(c)
	bw := bufio.NewWriter(c)
	site := ""
	defer func() {
		if site != "" {
			a.sink.Disconnect(site)
		}
	}()

	reject := func(seq uint64, msg string) {
		b, err := EncodeFrame(&Frame{Type: FrameErr, Seq: seq, Payload: []byte(msg)})
		if err == nil {
			bw.Write(b)
			bw.Flush()
		}
	}
	ack := func(seq uint64) bool {
		b, err := EncodeFrame(&Frame{Type: FrameAck, Seq: seq})
		if err != nil {
			return false
		}
		if _, err := bw.Write(b); err != nil {
			return false
		}
		return bw.Flush() == nil
	}

	first, err := ReadFrame(br)
	if err != nil {
		if !errors.Is(err, net.ErrClosed) {
			a.logf("fleet: session open: %v", err)
		}
		return
	}
	if first.Type != FrameHello {
		reject(first.Seq, fmt.Sprintf("expected HELLO, got %s", first.Type))
		return
	}
	if first.Site == "" {
		reject(first.Seq, "HELLO without a site name")
		return
	}
	var hello Hello
	if err := Unmarshal(first.Payload, &hello); err != nil {
		reject(first.Seq, fmt.Sprintf("bad HELLO payload: %v", err))
		return
	}
	if err := a.sink.Hello(first.Site, hello); err != nil {
		reject(first.Seq, err.Error())
		return
	}
	site = first.Site
	if !ack(first.Seq) {
		return
	}

	for {
		f, err := ReadFrame(br)
		if err != nil {
			// EOF or a torn frame: either way the connection is done and
			// the shipper owns redelivery of anything unacknowledged.
			return
		}
		if f.Site != site {
			reject(f.Seq, fmt.Sprintf("frame for site %q on session for %q", f.Site, site))
			return
		}
		switch f.Type {
		case FrameDelta:
			err = a.sink.Delta(site, f.Window, f.Seq, f.Watermark, f.Payload)
		case FrameLost:
			err = a.sink.Lost(site, f.Window, f.Seq)
		case FrameHeartbeat:
			a.sink.Heartbeat(site, f.Watermark)
		case FrameFin:
			err = a.sink.Fin(site, f.Window, f.Seq, f.Watermark)
		case FrameHello:
			err = fmt.Errorf("duplicate HELLO")
		default:
			err = fmt.Errorf("unexpected %s frame from shipper", f.Type)
		}
		if err != nil {
			a.logf("fleet: site %s: %v", site, err)
			reject(f.Seq, err.Error())
			return
		}
		if !ack(f.Seq) {
			return
		}
	}
}
