package fleet

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"

	"enttrace/internal/faults"
)

// ShipperConfig configures a site's delta shipper.
type ShipperConfig struct {
	// Addr is the aggregator's TCP address (used by the default dialer).
	Addr string
	// Site names this shipper in every frame; required, unique per fleet.
	Site string
	// Hello is sent on every (re)connect; the aggregator validates it
	// before accepting frames.
	Hello Hello
	// Dial overrides the connection seam (tests use net.Pipe).
	Dial func() (net.Conn, error)
	// Clock drives retry timing (tests use a fake; default RealClock).
	Clock Clock
	// Backoff is the reconnect policy template. Backoff.MaxAttempts is
	// the give-up threshold: that many consecutive failed dials without
	// an intervening success abandons the queue (0 = retry forever).
	Backoff Backoff
	// QueueLimit bounds unacknowledged DELTA frames. When a new delta
	// would exceed it, the oldest unacknowledged delta is evicted, its
	// window recorded as lost, and a LOST control frame queued in its
	// place (control frames are exempt from the bound). Default 1024.
	QueueLimit int
	// NetFaults optionally injects network faults on the send path.
	NetFaults *faults.NetInjector
	// Logf receives connection lifecycle events (nil = silent).
	Logf func(format string, args ...any)
}

// ErrGaveUp is wrapped by the error Close returns when the reconnect
// budget was exhausted with frames still undelivered.
var ErrGaveUp = errors.New("fleet: shipper gave up reconnecting")

// errPeerFatal wraps an ERR frame from the aggregator (schema or config
// mismatch) — retrying cannot help, so the shipper stops immediately.
var errPeerFatal = errors.New("fleet: aggregator rejected session")

// ShipperStats counts delivery-path events, for telemetry.
type ShipperStats struct {
	Shipped    int64 // frames handed to the shipper
	Acked      int64 // frames acknowledged
	Reconnects int64 // successful connections after the first
	Resends    int64 // frames re-sent after a reconnect
	Evicted    int64 // deltas evicted by the queue bound
}

// Shipper streams a site's per-window snapshot deltas to an aggregator
// with at-least-once delivery: every tracked frame (DELTA, LOST, FIN)
// carries a monotonic per-site sequence number and stays in an unacked
// queue until the aggregator's cumulative ACK covers it; on reconnect,
// everything unacknowledged is resent in order. Duplicates are the
// aggregator's problem (it dedups by sequence), loss is the shipper's:
// only an explicit queue-bound eviction or reconnect give-up drops
// data, and both are recorded.
//
// All sends go through one internal goroutine; the public methods are
// safe to call from one producer goroutine (the analyzer's window
// callback). Call Fin then Close when the trace is done.
type Shipper struct {
	cfg  ShipperConfig
	in   chan *Frame
	msgs chan connMsg // ack/error events from the reader goroutine

	abortCh chan struct{} // Abort: exit now, abandon queue
	doneCh  chan struct{} // run loop exited

	mu        sync.Mutex
	lost      map[int]bool // windows dropped by eviction or give-up
	dead      error        // terminal failure, if any
	stats     ShipperStats
	abortOnce sync.Once
}

type connMsg struct {
	gen int
	seq uint64
	err error
}

// NewShipper starts a shipper. It connects lazily — the first frame
// triggers the first dial.
func NewShipper(cfg ShipperConfig) (*Shipper, error) {
	if cfg.Site == "" {
		return nil, fmt.Errorf("fleet: shipper requires a site name")
	}
	if len(cfg.Site) > MaxSiteLen {
		return nil, fmt.Errorf("fleet: site name %d bytes (max %d)", len(cfg.Site), MaxSiteLen)
	}
	if cfg.Dial == nil {
		addr := cfg.Addr
		if addr == "" {
			return nil, fmt.Errorf("fleet: shipper requires an address or Dial seam")
		}
		cfg.Dial = func() (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	if cfg.Clock == nil {
		cfg.Clock = RealClock{}
	}
	if cfg.QueueLimit <= 0 {
		cfg.QueueLimit = 1024
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	s := &Shipper{
		cfg:     cfg,
		in:      make(chan *Frame, 256),
		msgs:    make(chan connMsg, 256),
		abortCh: make(chan struct{}),
		doneCh:  make(chan struct{}),
		lost:    make(map[int]bool),
	}
	go s.run()
	return s, nil
}

// ShipDelta queues one window's encoded snapshot delta. watermark is
// the site's packet-time high water in unix nanoseconds.
func (s *Shipper) ShipDelta(window int, watermark int64, payload []byte) {
	s.submit(&Frame{Type: FrameDelta, Site: s.cfg.Site, Window: window, Watermark: watermark, Payload: payload})
}

// Heartbeat advances the site's liveness watermark without data. Best
// effort: dropped when disconnected (a heartbeat that needed a retry
// queue would be stale by the time it arrived).
func (s *Shipper) Heartbeat(watermark int64) {
	s.submit(&Frame{Type: FrameHeartbeat, Site: s.cfg.Site, Watermark: watermark})
}

// Fin declares the site complete: every window ≤ maxWindow has been
// shipped or reported lost. Tracked like a delta — it is resent until
// acknowledged.
func (s *Shipper) Fin(maxWindow int, watermark int64) {
	s.submit(&Frame{Type: FrameFin, Site: s.cfg.Site, Window: maxWindow, Watermark: watermark})
}

func (s *Shipper) submit(f *Frame) {
	select {
	case <-s.doneCh:
		// Run loop already exited (gave up or aborted); a tracked frame
		// submitted now is lost.
		if tracked(f) {
			s.noteLostFrame(f)
		}
	default:
		select {
		case s.in <- f:
			s.mu.Lock()
			s.stats.Shipped++
			s.mu.Unlock()
		case <-s.doneCh:
			if tracked(f) {
				s.noteLostFrame(f)
			}
		}
	}
}

// Close drains: it blocks until every tracked frame is acknowledged, or
// the reconnect budget is exhausted, or Abort is called. It returns nil
// only on a full drain; otherwise an error wrapping ErrGaveUp (or the
// peer's fatal rejection) with the lost windows.
func (s *Shipper) Close() error {
	close(s.in)
	<-s.doneCh
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dead != nil {
		return fmt.Errorf("%w (windows lost: %v)", s.dead, s.lostLocked())
	}
	return nil
}

// Abort abandons the queue immediately; queued windows are recorded
// lost. Safe to call concurrently with Close.
func (s *Shipper) Abort() {
	s.abortOnce.Do(func() { close(s.abortCh) })
	<-s.doneCh
}

// LostWindows returns the windows this shipper dropped (eviction or
// give-up), sorted.
func (s *Shipper) LostWindows() []int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lostLocked()
}

func (s *Shipper) lostLocked() []int {
	out := make([]int, 0, len(s.lost))
	for w := range s.lost {
		out = append(out, w)
	}
	sort.Ints(out)
	return out
}

// Stats returns a snapshot of delivery counters.
func (s *Shipper) Stats() ShipperStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Shipper) noteLostFrame(f *Frame) {
	if f.Type != FrameDelta {
		return
	}
	s.mu.Lock()
	s.lost[f.Window] = true
	s.mu.Unlock()
}

func tracked(f *Frame) bool {
	return f.Type == FrameDelta || f.Type == FrameLost || f.Type == FrameFin
}

// run is the single goroutine owning connection, queue, and sequencing.
func (s *Shipper) run() {
	defer close(s.doneCh)
	var (
		conn    net.Conn
		gen     int // connection generation, tags reader messages
		queue   []*Frame
		deltas  int    // DELTA frames in queue (the bounded population)
		nextSeq uint64 = 1
		backoff        = s.cfg.Backoff
		inOpen         = true
	)
	teardown := func() {
		if conn != nil {
			conn.Close()
			conn = nil
		}
		s.cfg.NetFaults.ConnReset()
	}
	defer teardown()

	die := func(err error) {
		s.mu.Lock()
		s.dead = err
		for _, f := range queue {
			if f.Type == FrameDelta {
				s.lost[f.Window] = true
			}
		}
		s.mu.Unlock()
		queue, deltas = nil, 0
	}

	// rawSend writes bytes to the current conn (the injector's seam).
	rawSend := func(b []byte) error {
		_, err := conn.Write(b)
		return err
	}
	// sendFrame pushes one frame through the injector to the conn.
	// Returns the connection error, if any; the caller tears down.
	sendFrame := func(f *Frame) error {
		b, err := EncodeFrame(f)
		if err != nil {
			// Encoding is infallible for frames we build; treat as fatal.
			die(fmt.Errorf("fleet: encode %s frame: %w", f.Type, err))
			return nil
		}
		return s.cfg.NetFaults.Send(b, rawSend)
	}

	// attempt makes one full connection attempt: dial, HELLO, resend the
	// unacked queue. Returns the count resent on success.
	attempt := func() (int, bool) {
		c, err := s.cfg.Dial()
		if err != nil {
			s.cfg.Logf("fleet[%s]: dial: %v", s.cfg.Site, err)
			return 0, false
		}
		conn = c
		gen++
		// HELLO is untracked (seq 0): it re-arrives on every connect.
		helloPayload, err := Marshal(&s.cfg.Hello)
		if err != nil {
			die(fmt.Errorf("fleet: encode hello: %w", err))
			return 0, false
		}
		if err := sendFrame(&Frame{Type: FrameHello, Site: s.cfg.Site, Payload: helloPayload}); err != nil {
			s.cfg.Logf("fleet[%s]: hello: %v", s.cfg.Site, err)
			teardown()
			return 0, false
		}
		// Resend everything unacknowledged, oldest first.
		for i, f := range queue {
			if err := sendFrame(f); err != nil {
				s.cfg.Logf("fleet[%s]: resend seq %d: %v", s.cfg.Site, f.Seq, err)
				teardown()
				return i, false
			}
		}
		return len(queue), true
	}

	// connect retries attempt with backoff until success, give-up, or
	// abort. On success the ack reader for the new connection starts.
	connect := func() bool {
		for {
			resent, ok := attempt()
			if ok {
				backoff.Reset()
				s.mu.Lock()
				if gen > 1 {
					s.stats.Reconnects++
					s.stats.Resends += int64(resent)
				}
				s.mu.Unlock()
				go s.readAcks(conn, gen)
				return true
			}
			if s.isDead() {
				return false
			}
			d, ok := backoff.Next()
			if !ok {
				die(fmt.Errorf("%w after %d attempts", ErrGaveUp, s.cfg.Backoff.MaxAttempts))
				return false
			}
			timer := s.cfg.Clock.After(d)
		wait:
			for {
				select {
				case <-timer:
					break wait
				case <-s.abortCh:
					die(fmt.Errorf("%w: aborted", ErrGaveUp))
					return false
				case <-s.msgs:
					// Stale reader message from a dead connection; drop it
					// and keep waiting.
				}
			}
		}
	}

	enqueue := func(f *Frame) {
		if !tracked(f) {
			// Untracked (heartbeat): best-effort send, never queued.
			if conn != nil {
				if err := sendFrame(f); err != nil {
					s.cfg.Logf("fleet[%s]: heartbeat: %v", s.cfg.Site, err)
					teardown()
				}
			}
			return
		}
		if f.Type == FrameDelta && deltas >= s.cfg.QueueLimit {
			// Evict the oldest unacked delta; a LOST control frame takes
			// over its delivery obligation.
			for i, q := range queue {
				if q.Type == FrameDelta {
					s.mu.Lock()
					s.lost[q.Window] = true
					s.stats.Evicted++
					s.mu.Unlock()
					lostF := &Frame{Type: FrameLost, Site: s.cfg.Site, Window: q.Window, Seq: nextSeq}
					nextSeq++
					queue[i] = lostF
					deltas--
					if conn != nil {
						if err := sendFrame(lostF); err != nil {
							teardown()
						}
					}
					break
				}
			}
		}
		f.Seq = nextSeq
		nextSeq++
		queue = append(queue, f)
		if f.Type == FrameDelta {
			deltas++
		}
		if conn == nil {
			if !connect() {
				return
			}
			// connect already resent the whole queue, f included.
			return
		}
		if err := sendFrame(f); err != nil {
			s.cfg.Logf("fleet[%s]: send seq %d: %v", s.cfg.Site, f.Seq, err)
			teardown()
			if !connect() {
				return
			}
		}
	}

	// prune removes the exact acknowledged frame. Acks are per-frame,
	// not cumulative: after a queue eviction replaces an old slot with a
	// newer LOST frame, the queue is no longer seq-sorted, and a
	// cumulative prune could drop a frame that was never processed.
	prune := func(seq uint64) {
		for i, f := range queue {
			if f.Seq != seq {
				continue
			}
			if f.Type == FrameDelta {
				deltas--
			}
			queue = append(queue[:i], queue[i+1:]...)
			s.mu.Lock()
			s.stats.Acked++
			s.mu.Unlock()
			return
		}
	}

	for {
		if s.isDead() {
			// Terminal: swallow producers until they close the channel so
			// submit never blocks, recording tracked frames as lost.
			if !inOpen {
				return
			}
			select {
			case f, ok := <-s.in:
				if !ok {
					return
				}
				if tracked(f) {
					s.noteLostFrame(f)
				}
			case <-s.abortCh:
				return
			}
			continue
		}
		if !inOpen && len(queue) == 0 {
			// Drained: everything tracked is acknowledged.
			if conn != nil {
				if err := s.cfg.NetFaults.Flush(rawSend); err != nil {
					s.cfg.Logf("fleet[%s]: flush: %v", s.cfg.Site, err)
				}
			}
			return
		}
		if !inOpen && conn == nil {
			// Closing with residue: reconnect to flush it.
			if !connect() {
				continue
			}
		}
		select {
		case f, ok := <-s.in:
			if !ok {
				inOpen = false
				continue
			}
			enqueue(f)
		case m := <-s.msgs:
			if m.gen != gen {
				continue // stale reader from a torn-down connection
			}
			if m.err != nil {
				if errors.Is(m.err, errPeerFatal) {
					die(m.err)
					continue
				}
				s.cfg.Logf("fleet[%s]: conn: %v", s.cfg.Site, m.err)
				teardown()
				if len(queue) > 0 {
					connect()
				}
				continue
			}
			prune(m.seq)
		case <-s.abortCh:
			die(fmt.Errorf("%w: aborted", ErrGaveUp))
			if !inOpen {
				return
			}
		}
	}
}

func (s *Shipper) isDead() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dead != nil
}

// readAcks is the per-connection reader goroutine: it forwards ACK
// sequence numbers and surfaces ERR frames and read failures, tagged
// with the connection generation so the run loop can ignore stale ones.
func (s *Shipper) readAcks(conn net.Conn, gen int) {
	br := bufio.NewReader(conn)
	for {
		f, err := ReadFrame(br)
		if err != nil {
			s.msgs <- connMsg{gen: gen, err: err}
			return
		}
		switch f.Type {
		case FrameAck:
			s.msgs <- connMsg{gen: gen, seq: f.Seq}
		case FrameErr:
			s.msgs <- connMsg{gen: gen, err: fmt.Errorf("%w: %s", errPeerFatal, f.Payload)}
			return
		default:
			s.msgs <- connMsg{gen: gen, err: fmt.Errorf("fleet: unexpected %s frame from aggregator", f.Type)}
			return
		}
	}
}
