package fleet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame is one unit on the shipper↔aggregator stream. The wire layout
// (version 1) is:
//
//	magic   "EFL1"                      4 bytes
//	version 0x01                        1 byte
//	type    FrameType                   1 byte
//	site    uvarint length + bytes      ≤ MaxSiteLen
//	window  zigzag varint               window index (type-dependent)
//	seq     uvarint                     per-site sequence number
//	mark    zigzag varint               watermark, unix nanoseconds
//	payload uvarint length + bytes      ≤ MaxPayload
//	crc     CRC-32 (IEEE), LE           over every preceding byte
//
// Every frame carries the full header so each is self-describing; a
// reader can resynchronize after a corrupt frame only by dropping the
// connection, which is exactly the at-least-once design: the shipper
// resends everything unacknowledged on reconnect.
type Frame struct {
	Type      FrameType
	Site      string
	Window    int
	Seq       uint64
	Watermark int64 // unix nanoseconds; 0 = unset
	Payload   []byte
}

// FrameType discriminates stream frames.
type FrameType uint8

// Frame types. Shipper→aggregator: Hello opens a connection (payload:
// codec-encoded Hello), Delta carries one window's encoded snapshot
// delta, Heartbeat advances the site watermark with no data, Lost
// declares a window permanently dropped from the shipper's retry queue,
// Fin declares the site complete through Window. Aggregator→shipper:
// Ack acknowledges the single processed frame with this Seq (per-frame,
// not cumulative — the shipper's retry queue is not always seq-sorted),
// Err reports a fatal mismatch (payload: message) before close.
const (
	FrameHello FrameType = iota + 1
	FrameDelta
	FrameHeartbeat
	FrameLost
	FrameFin
	FrameAck
	FrameErr
)

func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "HELLO"
	case FrameDelta:
		return "DELTA"
	case FrameHeartbeat:
		return "HEARTBEAT"
	case FrameLost:
		return "LOST"
	case FrameFin:
		return "FIN"
	case FrameAck:
		return "ACK"
	case FrameErr:
		return "ERR"
	}
	return fmt.Sprintf("FrameType(%d)", uint8(t))
}

// Wire limits. A frame exceeding them is rejected before allocation, so
// a hostile or corrupt peer cannot make the reader balloon.
const (
	MaxSiteLen = 256
	MaxPayload = 1 << 30
)

// Hello is the connection-opening handshake payload (codec-encoded). A
// receiving aggregator rejects the connection unless Schema matches its
// own build's snapshot schema hash and WindowNanos/OriginNanos match
// its fleet configuration — mismatched builds or configs fail loudly at
// connect instead of mis-merging silently.
type Hello struct {
	Schema      uint64
	WindowNanos int64 // analysis window duration (0 = batch, single window)
	OriginNanos int64 // shared window origin, unix nanoseconds
}

var frameMagic = [4]byte{'E', 'F', 'L', '1'}

const frameVersion = 1

// Frame decode errors.
var (
	ErrBadMagic   = errors.New("fleet: bad frame magic")
	ErrBadVersion = errors.New("fleet: unsupported frame version")
	ErrBadType    = errors.New("fleet: unknown frame type")
	ErrTruncated  = errors.New("fleet: truncated frame")
	ErrCRC        = errors.New("fleet: frame CRC mismatch")
	ErrTooLarge   = errors.New("fleet: frame field exceeds wire limit")
)

// AppendFrame encodes f onto dst and returns the extended slice.
func AppendFrame(dst []byte, f *Frame) ([]byte, error) {
	if len(f.Site) > MaxSiteLen {
		return dst, fmt.Errorf("%w: site %d bytes", ErrTooLarge, len(f.Site))
	}
	if len(f.Payload) > MaxPayload {
		return dst, fmt.Errorf("%w: payload %d bytes", ErrTooLarge, len(f.Payload))
	}
	if f.Type < FrameHello || f.Type > FrameErr {
		return dst, fmt.Errorf("%w: %d", ErrBadType, f.Type)
	}
	start := len(dst)
	dst = append(dst, frameMagic[:]...)
	dst = append(dst, frameVersion, byte(f.Type))
	dst = binary.AppendUvarint(dst, uint64(len(f.Site)))
	dst = append(dst, f.Site...)
	dst = binary.AppendVarint(dst, int64(f.Window))
	dst = binary.AppendUvarint(dst, f.Seq)
	dst = binary.AppendVarint(dst, f.Watermark)
	dst = binary.AppendUvarint(dst, uint64(len(f.Payload)))
	dst = append(dst, f.Payload...)
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, crc), nil
}

// EncodeFrame returns f's wire bytes.
func EncodeFrame(f *Frame) ([]byte, error) {
	return AppendFrame(nil, f)
}

// DecodeFrame parses one frame from the head of b, returning the frame
// and the number of bytes consumed. The returned frame's Site and
// Payload are copies, safe to retain after b is reused.
func DecodeFrame(b []byte) (*Frame, int, error) {
	d := frameReader{buf: b}
	f, err := d.frame()
	if err != nil {
		return nil, 0, err
	}
	return f, d.off, nil
}

// ReadFrame reads one frame from a stream. Returns io.EOF only at a
// clean frame boundary; a connection cut mid-frame is ErrTruncated
// (wrapping io.ErrUnexpectedEOF).
func ReadFrame(br *bufio.Reader) (*Frame, error) {
	// Peek the fixed prologue first so EOF-at-boundary is clean.
	head, err := br.Peek(6)
	if err != nil {
		if err == io.EOF {
			if len(head) == 0 {
				return nil, io.EOF
			}
			return nil, fmt.Errorf("%w: %d-byte partial header", ErrTruncated, len(head))
		}
		return nil, err
	}
	if [4]byte(head[:4]) != frameMagic {
		return nil, ErrBadMagic
	}
	if head[4] != frameVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, head[4])
	}
	// Accumulate the whole frame into a buffer and decode it with the
	// slice parser, so stream and slice paths cannot diverge.
	buf := make([]byte, 0, 64)
	buf = append(buf, head...)
	br.Discard(6)
	readUvarint := func() (uint64, error) {
		start := len(buf)
		for {
			c, err := br.ReadByte()
			if err != nil {
				return 0, fmt.Errorf("%w: %v", ErrTruncated, err)
			}
			buf = append(buf, c)
			if c < 0x80 {
				break
			}
			if len(buf)-start >= binary.MaxVarintLen64 {
				return 0, fmt.Errorf("%w: varint overflow", ErrTruncated)
			}
		}
		x, _ := binary.Uvarint(buf[start:])
		return x, nil
	}
	readN := func(n uint64, what string, limit uint64) error {
		if n > limit {
			return fmt.Errorf("%w: %s %d bytes", ErrTooLarge, what, n)
		}
		start := len(buf)
		buf = append(buf, make([]byte, n)...)
		if _, err := io.ReadFull(br, buf[start:]); err != nil {
			return fmt.Errorf("%w: %v", ErrTruncated, err)
		}
		return nil
	}
	siteLen, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if err := readN(siteLen, "site", MaxSiteLen); err != nil {
		return nil, err
	}
	for i := 0; i < 3; i++ { // window, seq, watermark
		if _, err := readUvarint(); err != nil {
			return nil, err
		}
	}
	payLen, err := readUvarint()
	if err != nil {
		return nil, err
	}
	if err := readN(payLen, "payload", MaxPayload); err != nil {
		return nil, err
	}
	if err := readN(4, "crc", 4); err != nil {
		return nil, err
	}
	f, n, err := DecodeFrame(buf)
	if err != nil {
		return nil, err
	}
	if n != len(buf) {
		return nil, fmt.Errorf("%w: stream frame reparse consumed %d of %d", ErrTruncated, n, len(buf))
	}
	return f, nil
}

// frameReader parses a frame from a byte slice, tracking the offset for
// CRC coverage.
type frameReader struct {
	buf []byte
	off int
}

func (d *frameReader) take(n int) ([]byte, error) {
	if n < 0 || d.off+n > len(d.buf) {
		return nil, ErrTruncated
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b, nil
}

func (d *frameReader) uvarint() (uint64, error) {
	x, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.off += n
	return x, nil
}

func (d *frameReader) varint() (int64, error) {
	x, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.off += n
	return x, nil
}

func (d *frameReader) frame() (*Frame, error) {
	head, err := d.take(6)
	if err != nil {
		return nil, err
	}
	if [4]byte(head[:4]) != frameMagic {
		return nil, ErrBadMagic
	}
	if head[4] != frameVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, head[4])
	}
	f := &Frame{Type: FrameType(head[5])}
	if f.Type < FrameHello || f.Type > FrameErr {
		return nil, fmt.Errorf("%w: %d", ErrBadType, head[5])
	}
	siteLen, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if siteLen > MaxSiteLen {
		return nil, fmt.Errorf("%w: site %d bytes", ErrTooLarge, siteLen)
	}
	site, err := d.take(int(siteLen))
	if err != nil {
		return nil, err
	}
	f.Site = string(site)
	win, err := d.varint()
	if err != nil {
		return nil, err
	}
	if win < -1<<31 || win > 1<<31 {
		return nil, fmt.Errorf("%w: window %d", ErrTooLarge, win)
	}
	f.Window = int(win)
	if f.Seq, err = d.uvarint(); err != nil {
		return nil, err
	}
	if f.Watermark, err = d.varint(); err != nil {
		return nil, err
	}
	payLen, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if payLen > MaxPayload {
		return nil, fmt.Errorf("%w: payload %d bytes", ErrTooLarge, payLen)
	}
	pay, err := d.take(int(payLen))
	if err != nil {
		return nil, err
	}
	if payLen > 0 {
		f.Payload = append([]byte(nil), pay...)
	}
	body := d.buf[:d.off]
	crcBytes, err := d.take(4)
	if err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(crcBytes) != crc32.ChecksumIEEE(body) {
		return nil, ErrCRC
	}
	return f, nil
}
