// Package fleet is the two-tier aggregation wire layer: a compact,
// versioned binary encoding for per-window epoch snapshot deltas, a
// CRC-framed stream protocol with per-site sequence numbers, a shipper
// that streams window deltas over TCP with exponential backoff and
// at-least-once redelivery, and an aggregator that receives, dedups,
// and acknowledges them. The report-level merge semantics live in
// internal/core (which owns the aggregate types); this package owns
// bytes on the wire and delivery semantics only.
//
// The payload codec is a deterministic reflection walk: it serializes
// any acyclic value graph of plain data (structs — exported or not —
// maps, slices, strings, numbers, netip.Addr, time.Time), producing
// identical bytes for identical values (map entries are sorted by
// encoded key). A 64-bit schema hash derived from the walked type
// structure pins the layout: two builds agree on the hash exactly when
// they agree on every field name, order, and type in the graph, so a
// decoder can reject a frame from a mismatched build before touching
// the payload. See DESIGN.md "Fleet aggregation".
package fleet

import (
	"encoding"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"reflect"
	"sort"
	"time"
	"unsafe"

	"enttrace/internal/stats"
)

// Codec errors.
var (
	errNotPointer = fmt.Errorf("fleet: codec target must be a non-nil pointer")
)

// Marshal serializes v (which must be a pointer to the value graph)
// into deterministic bytes. Fields of func, chan, or unsafe.Pointer
// type are skipped (they carry no report state); interface-typed fields
// are rejected.
func Marshal(v any) ([]byte, error) {
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return nil, errNotPointer
	}
	var e encoder
	if err := e.encode(rv.Elem()); err != nil {
		return nil, err
	}
	return e.buf, nil
}

// Unmarshal decodes Marshal output into v, which must be a non-nil
// pointer to the same type the bytes were encoded from (enforce with
// SchemaOf before decoding). Existing contents of v are overwritten;
// maps and pointers are allocated fresh.
func Unmarshal(b []byte, v any) error {
	rv := reflect.ValueOf(v)
	if rv.Kind() != reflect.Pointer || rv.IsNil() {
		return errNotPointer
	}
	d := decoder{buf: b}
	if err := d.decode(rv.Elem()); err != nil {
		return err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("fleet: %d trailing bytes after decode", len(d.buf))
	}
	return nil
}

// SchemaOf returns the 64-bit schema hash of v's type graph. Any change
// to a field name, order, kind, or to the special-cased encodings in
// the graph changes the hash; the wire HELLO carries it so mismatched
// builds fail loudly instead of mis-decoding.
func SchemaOf(v any) uint64 {
	t := reflect.TypeOf(v)
	if t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	h := fnv.New64a()
	hashType(h, t, map[reflect.Type]bool{})
	return h.Sum64()
}

func hashType(h interface{ Write([]byte) (int, error) }, t reflect.Type, seen map[reflect.Type]bool) {
	// Special-cased types hash by name, not structure: their wire form
	// is their own MarshalBinary/runs layout, not the field walk.
	switch {
	case t == timeType:
		h.Write([]byte("time.Time"))
		return
	case t == distType:
		h.Write([]byte("stats.Dist:runs"))
		return
	case isBinaryCodec(t):
		h.Write([]byte("binary:" + t.String()))
		return
	}
	if seen[t] {
		// Recursive type: the name already contributed where it was
		// first seen; terminate the walk.
		h.Write([]byte("rec:" + t.String()))
		return
	}
	switch t.Kind() {
	case reflect.Pointer:
		h.Write([]byte("*"))
		hashType(h, t.Elem(), seen)
	case reflect.Slice:
		h.Write([]byte("[]"))
		hashType(h, t.Elem(), seen)
	case reflect.Array:
		fmt.Fprintf(h.(interface{ Write([]byte) (int, error) }), "[%d]", t.Len())
		hashType(h, t.Elem(), seen)
	case reflect.Map:
		h.Write([]byte("map["))
		hashType(h, t.Key(), seen)
		h.Write([]byte("]"))
		hashType(h, t.Elem(), seen)
	case reflect.Struct:
		seen[t] = true
		h.Write([]byte("struct " + t.String() + "{"))
		for i := 0; i < t.NumField(); i++ {
			f := t.Field(i)
			if skipKind(f.Type.Kind()) {
				continue
			}
			h.Write([]byte(f.Name + ":"))
			hashType(h, f.Type, seen)
			h.Write([]byte(";"))
		}
		h.Write([]byte("}"))
		delete(seen, t)
	default:
		h.Write([]byte(t.Kind().String()))
	}
}

var (
	timeType          = reflect.TypeOf(time.Time{})
	distType          = reflect.TypeOf(stats.Dist{})
	binaryMarshaler   = reflect.TypeOf((*encoding.BinaryMarshaler)(nil)).Elem()
	binaryUnmarshaler = reflect.TypeOf((*encoding.BinaryUnmarshaler)(nil)).Elem()
)

// isBinaryCodec reports whether t round-trips through encoding.Binary
// (Un)Marshaler — netip.Addr and friends. time.Time also qualifies but
// is matched earlier by identity for a stable schema label.
func isBinaryCodec(t reflect.Type) bool {
	return t.Implements(binaryMarshaler) && reflect.PointerTo(t).Implements(binaryUnmarshaler)
}

// skipKind marks field kinds that carry no serializable state.
func skipKind(k reflect.Kind) bool {
	return k == reflect.Func || k == reflect.Chan || k == reflect.UnsafePointer
}

// launder returns a readable+writable view of v. Values reached through
// unexported struct fields are flagged read-only by the reflect
// package; re-deriving the value from its address strips the flag. The
// codec keeps every value addressable precisely so this works.
func launder(v reflect.Value) reflect.Value {
	if !v.CanInterface() && v.CanAddr() {
		return reflect.NewAt(v.Type(), unsafe.Pointer(v.UnsafeAddr())).Elem()
	}
	return v
}

type encoder struct {
	buf []byte
}

func (e *encoder) uvarint(x uint64)  { e.buf = binary.AppendUvarint(e.buf, x) }
func (e *encoder) varint(x int64)    { e.buf = binary.AppendVarint(e.buf, x) }
func (e *encoder) bytes(b []byte)    { e.uvarint(uint64(len(b))); e.buf = append(e.buf, b...) }
func (e *encoder) fixed64(x uint64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, x) }
func (e *encoder) float64(f float64) { e.fixed64(math.Float64bits(f)) }

func (e *encoder) encode(v reflect.Value) error {
	v = launder(v)
	t := v.Type()

	// Special cases first: exact wire forms owned by the value's own
	// package.
	switch {
	case t == timeType:
		b, err := v.Interface().(time.Time).MarshalBinary()
		if err != nil {
			return err
		}
		e.bytes(b)
		return nil
	case t == distType:
		vals, counts, nan := stats.DistRuns(v.Addr().Interface().(*stats.Dist))
		e.varint(nan)
		e.uvarint(uint64(len(vals)))
		for i := range vals {
			e.float64(vals[i])
			e.varint(counts[i])
		}
		return nil
	case isBinaryCodec(t):
		b, err := v.Interface().(encoding.BinaryMarshaler).MarshalBinary()
		if err != nil {
			return err
		}
		e.bytes(b)
		return nil
	}

	switch t.Kind() {
	case reflect.Bool:
		if v.Bool() {
			e.buf = append(e.buf, 1)
		} else {
			e.buf = append(e.buf, 0)
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		e.varint(v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		e.uvarint(v.Uint())
	case reflect.Float32:
		e.buf = binary.LittleEndian.AppendUint32(e.buf, math.Float32bits(float32(v.Float())))
	case reflect.Float64:
		e.float64(v.Float())
	case reflect.String:
		e.bytes([]byte(v.String()))
	case reflect.Slice:
		if v.IsNil() {
			e.buf = append(e.buf, 0)
		} else {
			e.buf = append(e.buf, 1)
			e.uvarint(uint64(v.Len()))
			if t.Elem().Kind() == reflect.Uint8 {
				e.buf = append(e.buf, v.Bytes()...)
				return nil
			}
			for i := 0; i < v.Len(); i++ {
				if err := e.encode(v.Index(i)); err != nil {
					return err
				}
			}
		}
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			if err := e.encode(v.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Map:
		if v.IsNil() {
			e.buf = append(e.buf, 0)
			return nil
		}
		e.buf = append(e.buf, 1)
		e.uvarint(uint64(v.Len()))
		// Deterministic order: encode each (key, value) pair into a
		// scratch buffer, sort the pairs by bytes, append.
		type entry struct{ k, kv []byte }
		entries := make([]entry, 0, v.Len())
		iter := v.MapRange()
		for iter.Next() {
			var ke, ve encoder
			// Map keys/values are not addressable; copy them into
			// fresh addressable slots before the walk.
			k := reflect.New(t.Key()).Elem()
			k.Set(iter.Key())
			if err := ke.encode(k); err != nil {
				return err
			}
			val := reflect.New(t.Elem()).Elem()
			val.Set(iter.Value())
			if err := ve.encode(val); err != nil {
				return err
			}
			entries = append(entries, entry{k: ke.buf, kv: append(ke.buf, ve.buf...)})
		}
		sort.Slice(entries, func(i, j int) bool {
			return string(entries[i].k) < string(entries[j].k)
		})
		for _, en := range entries {
			e.buf = append(e.buf, en.kv...)
		}
	case reflect.Pointer:
		if v.IsNil() {
			e.buf = append(e.buf, 0)
			return nil
		}
		e.buf = append(e.buf, 1)
		return e.encode(v.Elem())
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if skipKind(t.Field(i).Type.Kind()) {
				continue
			}
			if err := e.encode(v.Field(i)); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("fleet: cannot encode kind %s (%s)", t.Kind(), t)
	}
	return nil
}

type decoder struct {
	buf []byte
}

var errShort = fmt.Errorf("fleet: payload truncated")

func (d *decoder) uvarint() (uint64, error) {
	x, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, errShort
	}
	d.buf = d.buf[n:]
	return x, nil
}

func (d *decoder) varint() (int64, error) {
	x, n := binary.Varint(d.buf)
	if n <= 0 {
		return 0, errShort
	}
	d.buf = d.buf[n:]
	return x, nil
}

func (d *decoder) take(n int) ([]byte, error) {
	if n < 0 || n > len(d.buf) {
		return nil, errShort
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b, nil
}

func (d *decoder) bytes() ([]byte, error) {
	n, err := d.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(d.buf)) {
		return nil, errShort
	}
	return d.take(int(n))
}

func (d *decoder) byteFlag() (bool, error) {
	b, err := d.take(1)
	if err != nil {
		return false, err
	}
	switch b[0] {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, fmt.Errorf("fleet: bad presence flag %d", b[0])
}

// decode fills v (addressable) from the stream.
func (d *decoder) decode(v reflect.Value) error {
	v = launder(v)
	t := v.Type()

	switch {
	case t == timeType:
		b, err := d.bytes()
		if err != nil {
			return err
		}
		var tm time.Time
		if err := tm.UnmarshalBinary(b); err != nil {
			return fmt.Errorf("fleet: time: %w", err)
		}
		v.Set(reflect.ValueOf(tm))
		return nil
	case t == distType:
		nan, err := d.varint()
		if err != nil {
			return err
		}
		n, err := d.uvarint()
		if err != nil {
			return err
		}
		if n > uint64(len(d.buf))/9 { // ≥ 9 bytes per run on the wire
			return errShort
		}
		vals := make([]float64, n)
		counts := make([]int64, n)
		for i := range vals {
			raw, err := d.take(8)
			if err != nil {
				return err
			}
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw))
			if counts[i], err = d.varint(); err != nil {
				return err
			}
		}
		dist, err := stats.DistFromRuns(vals, counts, nan)
		if err != nil {
			return fmt.Errorf("fleet: dist: %w", err)
		}
		v.Set(reflect.ValueOf(*dist))
		return nil
	case isBinaryCodec(t):
		b, err := d.bytes()
		if err != nil {
			return err
		}
		nv := reflect.New(t)
		if err := nv.Interface().(encoding.BinaryUnmarshaler).UnmarshalBinary(b); err != nil {
			return fmt.Errorf("fleet: %s: %w", t, err)
		}
		v.Set(nv.Elem())
		return nil
	}

	switch t.Kind() {
	case reflect.Bool:
		f, err := d.byteFlag()
		if err != nil {
			return err
		}
		v.SetBool(f)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		x, err := d.varint()
		if err != nil {
			return err
		}
		if v.OverflowInt(x) {
			return fmt.Errorf("fleet: %d overflows %s", x, t)
		}
		v.SetInt(x)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		x, err := d.uvarint()
		if err != nil {
			return err
		}
		if v.OverflowUint(x) {
			return fmt.Errorf("fleet: %d overflows %s", x, t)
		}
		v.SetUint(x)
	case reflect.Float32:
		raw, err := d.take(4)
		if err != nil {
			return err
		}
		v.SetFloat(float64(math.Float32frombits(binary.LittleEndian.Uint32(raw))))
	case reflect.Float64:
		raw, err := d.take(8)
		if err != nil {
			return err
		}
		v.SetFloat(math.Float64frombits(binary.LittleEndian.Uint64(raw)))
	case reflect.String:
		b, err := d.bytes()
		if err != nil {
			return err
		}
		v.SetString(string(b))
	case reflect.Slice:
		present, err := d.byteFlag()
		if err != nil {
			return err
		}
		if !present {
			v.Set(reflect.Zero(t))
			return nil
		}
		n, err := d.uvarint()
		if err != nil {
			return err
		}
		if t.Elem().Kind() == reflect.Uint8 {
			b, err := d.take(int(n))
			if err != nil {
				return err
			}
			v.SetBytes(append([]byte(nil), b...))
			return nil
		}
		// A decoded element costs ≥ 1 wire byte; bound the allocation.
		if n > uint64(len(d.buf))+1 {
			return errShort
		}
		s := reflect.MakeSlice(t, int(n), int(n))
		for i := 0; i < int(n); i++ {
			if err := d.decode(s.Index(i)); err != nil {
				return err
			}
		}
		v.Set(s)
	case reflect.Array:
		for i := 0; i < v.Len(); i++ {
			if err := d.decode(v.Index(i)); err != nil {
				return err
			}
		}
	case reflect.Map:
		present, err := d.byteFlag()
		if err != nil {
			return err
		}
		if !present {
			v.Set(reflect.Zero(t))
			return nil
		}
		n, err := d.uvarint()
		if err != nil {
			return err
		}
		if n > uint64(len(d.buf))+1 {
			return errShort
		}
		m := reflect.MakeMapWithSize(t, int(n))
		for i := 0; i < int(n); i++ {
			k := reflect.New(t.Key()).Elem()
			if err := d.decode(k); err != nil {
				return err
			}
			val := reflect.New(t.Elem()).Elem()
			if err := d.decode(val); err != nil {
				return err
			}
			m.SetMapIndex(k, val)
		}
		v.Set(m)
	case reflect.Pointer:
		present, err := d.byteFlag()
		if err != nil {
			return err
		}
		if !present {
			v.Set(reflect.Zero(t))
			return nil
		}
		nv := reflect.New(t.Elem())
		if err := d.decode(nv.Elem()); err != nil {
			return err
		}
		v.Set(nv)
	case reflect.Struct:
		for i := 0; i < t.NumField(); i++ {
			if skipKind(t.Field(i).Type.Kind()) {
				continue
			}
			if err := d.decode(v.Field(i)); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("fleet: cannot decode kind %s (%s)", t.Kind(), t)
	}
	return nil
}
