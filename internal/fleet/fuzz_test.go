package fleet

import (
	"bufio"
	"bytes"
	"testing"
)

// FuzzDecodeFrame hammers the frame parser with arbitrary bytes. The
// invariants: no panic, no over-allocation (enforced by wire limits),
// and any accepted frame re-encodes to exactly the bytes consumed —
// i.e. the parser accepts only the canonical encoding.
func FuzzDecodeFrame(f *testing.F) {
	seed := func(fr *Frame) {
		b, err := EncodeFrame(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	seed(testFrame())
	seed(&Frame{Type: FrameHello, Site: "site-b", Payload: bytes.Repeat([]byte{7}, 100)})
	seed(&Frame{Type: FrameAck, Seq: 1 << 62})
	seed(&Frame{Type: FrameHeartbeat, Site: "s", Watermark: -1})
	seed(&Frame{Type: FrameFin, Site: "tail", Window: 41})
	f.Add([]byte("EFL1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrame(b)
		if err != nil {
			if fr != nil {
				t.Fatal("frame returned alongside error")
			}
		} else {
			if n <= 0 || n > len(b) {
				t.Fatalf("consumed %d of %d", n, len(b))
			}
			re, err := EncodeFrame(fr)
			if err != nil {
				t.Fatalf("accepted frame does not re-encode: %v", err)
			}
			if !bytes.Equal(re, b[:n]) {
				t.Fatalf("non-canonical accept:\n in  %x\n out %x", b[:n], re)
			}
		}
		// The stream path must agree with the slice path on accept.
		sf, serr := ReadFrame(bufio.NewReader(bytes.NewReader(b)))
		if (err == nil) != (serr == nil) && err == nil {
			t.Fatalf("slice accepted but stream rejected: %v", serr)
		}
		if serr == nil && sf.Seq != fr.Seq {
			t.Fatal("stream/slice disagree on accepted frame")
		}
	})
}

// FuzzCodecUnmarshal feeds arbitrary bytes to the payload codec against
// the fixture type: must never panic, and errors must be returned, not
// thrown.
func FuzzCodecUnmarshal(f *testing.F) {
	b, err := Marshal(mkFixture())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(b)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, b []byte) {
		var out wireFixture
		_ = Unmarshal(b, &out) // must not panic
	})
}
