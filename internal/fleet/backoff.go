package fleet

import (
	"math/rand"
	"time"
)

// Clock is the time seam for retry scheduling. The shipper only ever
// reads time and waits through this interface, so backoff behavior —
// including jitter — is unit-testable without sleeping.
type Clock interface {
	Now() time.Time
	// After fires once after d elapses, like time.After.
	After(d time.Duration) <-chan time.Time
}

// RealClock is the production Clock.
type RealClock struct{}

func (RealClock) Now() time.Time                         { return time.Now() }
func (RealClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Backoff computes exponential retry delays with bounded jitter. Zero
// value is usable (defaults below); not safe for concurrent use — each
// connection loop owns one.
type Backoff struct {
	Base        time.Duration  // first delay (default 100ms)
	Max         time.Duration  // delay cap (default 30s)
	Factor      float64        // growth per consecutive failure (default 2)
	Jitter      float64        // fraction of the delay randomized away, [0,1) (default 0.2)
	MaxAttempts int            // consecutive failures before give-up (0 = retry forever)
	Rand        func() float64 // randomness seam in [0,1); default math/rand.Float64

	attempt int
}

// Defaults applied by Next for zero fields.
const (
	DefaultBackoffBase   = 100 * time.Millisecond
	DefaultBackoffMax    = 30 * time.Second
	DefaultBackoffFactor = 2.0
	DefaultBackoffJitter = 0.2
)

// Next returns the delay before the next retry and whether to retry at
// all; (0, false) means give up — MaxAttempts consecutive failures
// without a Reset. Jitter subtracts up to Jitter×delay, so the returned
// delay is always within (delay×(1−Jitter), delay] and never exceeds
// the cap.
func (b *Backoff) Next() (time.Duration, bool) {
	if b.MaxAttempts > 0 && b.attempt >= b.MaxAttempts {
		return 0, false
	}
	base, max, factor, jitter := b.Base, b.Max, b.Factor, b.Jitter
	if base <= 0 {
		base = DefaultBackoffBase
	}
	if max <= 0 {
		max = DefaultBackoffMax
	}
	if factor < 1 {
		factor = DefaultBackoffFactor
	}
	if jitter == 0 {
		jitter = DefaultBackoffJitter
	}
	if jitter < 0 || jitter >= 1 {
		jitter = 0
	}
	d := float64(base)
	for i := 0; i < b.attempt && d < float64(max); i++ {
		d *= factor
	}
	if d > float64(max) {
		d = float64(max)
	}
	if jitter > 0 {
		r := b.Rand
		if r == nil {
			r = rand.Float64
		}
		d -= d * jitter * r()
	}
	b.attempt++
	if d < 1 {
		d = 1
	}
	return time.Duration(d), true
}

// Reset clears the consecutive-failure count — call after a successful
// connection so the next failure starts from Base again.
func (b *Backoff) Reset() { b.attempt = 0 }

// Attempt returns the number of consecutive failures since the last
// Reset.
func (b *Backoff) Attempt() int { return b.attempt }
