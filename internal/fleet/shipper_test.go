package fleet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"enttrace/internal/faults"
)

// recordingSink captures every sink call, deduplicating deltas by
// (site, window, seq) the way the real fleet merger does.
type recordingSink struct {
	mu         sync.Mutex
	helloErr   error
	deltaErr   func(window int) error
	hellos     []Hello
	deltas     map[string]map[int][]byte // site → window → last payload
	seqs       map[string]map[uint64]int // site → seq → deliveries
	lost       map[string]map[int]bool
	fins       map[string]int
	marks      map[string]int64
	disc       int
	deliveries int64
}

func newRecordingSink() *recordingSink {
	return &recordingSink{
		deltas: map[string]map[int][]byte{},
		seqs:   map[string]map[uint64]int{},
		lost:   map[string]map[int]bool{},
		fins:   map[string]int{},
		marks:  map[string]int64{},
	}
}

func (r *recordingSink) Hello(site string, h Hello) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.helloErr != nil {
		return r.helloErr
	}
	r.hellos = append(r.hellos, h)
	return nil
}

func (r *recordingSink) Delta(site string, window int, seq uint64, mark int64, payload []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.deltaErr != nil {
		if err := r.deltaErr(window); err != nil {
			return err
		}
	}
	r.deliveries++
	if r.seqs[site] == nil {
		r.seqs[site] = map[uint64]int{}
		r.deltas[site] = map[int][]byte{}
	}
	r.seqs[site][seq]++
	if r.seqs[site][seq] == 1 { // idempotent apply
		r.deltas[site][window] = append([]byte(nil), payload...)
	}
	r.marks[site] = mark
	return nil
}

func (r *recordingSink) Lost(site string, window int, seq uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lost[site] == nil {
		r.lost[site] = map[int]bool{}
	}
	r.lost[site][window] = true
	return nil
}

func (r *recordingSink) Heartbeat(site string, mark int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.marks[site] = mark
}

func (r *recordingSink) Fin(site string, maxWindow int, seq uint64, mark int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fins[site] = maxWindow
	return nil
}

func (r *recordingSink) Disconnect(site string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.disc++
}

func (r *recordingSink) windows(site string) map[int][]byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := map[int][]byte{}
	for w, p := range r.deltas[site] {
		out[w] = p
	}
	return out
}

// startAggregator serves a recording sink on a loopback listener.
func startAggregator(t *testing.T, sink Sink) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	agg := NewAggregator(ln, sink, t.Logf)
	done := make(chan struct{})
	go func() { agg.Serve(); close(done) }()
	return ln.Addr().String(), func() { agg.Close(); <-done }
}

// fastBackoff keeps shipper tests quick without a fake clock: the run
// loop's waits are microseconds.
func fastBackoff(maxAttempts int) Backoff {
	return Backoff{Base: 100 * time.Microsecond, Max: time.Millisecond, MaxAttempts: maxAttempts, Jitter: -1, Rand: func() float64 { return 0 }}
}

func TestShipperCleanDelivery(t *testing.T) {
	sink := newRecordingSink()
	addr, stop := startAggregator(t, sink)
	defer stop()
	sh, err := NewShipper(ShipperConfig{
		Addr: addr, Site: "a",
		Hello:   Hello{Schema: 42, WindowNanos: int64(time.Minute), OriginNanos: 7},
		Backoff: fastBackoff(0),
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 5; w++ {
		sh.ShipDelta(w, int64(w)*100, []byte{byte(w), byte(w)})
	}
	sh.Heartbeat(999)
	sh.Fin(4, 1000)
	if err := sh.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got := sink.windows("a")
	if len(got) != 5 {
		t.Fatalf("aggregator has %d windows, want 5: %v", len(got), got)
	}
	for w := 0; w < 5; w++ {
		if len(got[w]) != 2 || got[w][0] != byte(w) {
			t.Errorf("window %d payload %v", w, got[w])
		}
	}
	if sink.fins["a"] != 4 {
		t.Errorf("fin maxWindow %d, want 4", sink.fins["a"])
	}
	if len(sink.hellos) != 1 || sink.hellos[0].Schema != 42 {
		t.Errorf("hellos %v", sink.hellos)
	}
	if lw := sh.LostWindows(); len(lw) != 0 {
		t.Errorf("lost windows on clean run: %v", lw)
	}
}

// TestShipperRedeliversAfterDrops pins at-least-once delivery: injected
// connection drops must never lose a window — the shipper reconnects
// and resends everything unacknowledged.
func TestShipperRedeliversAfterDrops(t *testing.T) {
	sink := newRecordingSink()
	addr, stop := startAggregator(t, sink)
	defer stop()
	// Drop the connection at several send ordinals, including back to
	// back (the resend itself gets dropped once).
	inj := faults.NewNetInjector(faults.NetSchedule{Events: []faults.NetEvent{
		{Kind: faults.ConnDrop, Index: 2},
		{Kind: faults.ConnDrop, Index: 3},
		{Kind: faults.ConnDrop, Index: 9},
	}})
	sh, err := NewShipper(ShipperConfig{
		Addr: addr, Site: "a",
		Backoff:   fastBackoff(0),
		NetFaults: inj,
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 6; w++ {
		sh.ShipDelta(w, int64(w), []byte{byte(w)})
	}
	sh.Fin(5, 6)
	if err := sh.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got := sink.windows("a")
	for w := 0; w < 6; w++ {
		if len(got[w]) != 1 || got[w][0] != byte(w) {
			t.Fatalf("window %d missing or wrong after drops: %v", w, got)
		}
	}
	if sink.fins["a"] != 5 {
		t.Fatalf("fin lost: %v", sink.fins)
	}
	if st := sh.Stats(); st.Reconnects == 0 || st.Resends == 0 {
		t.Errorf("drops fired but no reconnects recorded: %+v", st)
	}
	if len(inj.Manifest()) != 3 {
		t.Errorf("injector fired %d events, want 3", len(inj.Manifest()))
	}
}

// TestShipperDupAndReorder pins that duplicated and reordered frames on
// the wire do not change what the sink ends up with.
func TestShipperDupAndReorder(t *testing.T) {
	sink := newRecordingSink()
	addr, stop := startAggregator(t, sink)
	defer stop()
	inj := faults.NewNetInjector(faults.NetSchedule{Events: []faults.NetEvent{
		{Kind: faults.DupFrame, Index: 1},
		{Kind: faults.ReorderFrame, Index: 3},
	}})
	sh, err := NewShipper(ShipperConfig{
		Addr: addr, Site: "a", Backoff: fastBackoff(0), NetFaults: inj, Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 4; w++ {
		sh.ShipDelta(w, int64(w), []byte{byte(w)})
	}
	sh.Fin(3, 4)
	if err := sh.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got := sink.windows("a")
	for w := 0; w < 4; w++ {
		if len(got[w]) != 1 || got[w][0] != byte(w) {
			t.Fatalf("window %d wrong under dup/reorder: %v", w, got)
		}
	}
	sink.mu.Lock()
	deliveries := sink.deliveries
	sink.mu.Unlock()
	if deliveries < 5 { // 4 windows + at least one duplicate
		t.Errorf("duplicate never reached the sink (%d deliveries)", deliveries)
	}
}

func TestShipperGivesUpAndRecordsLoss(t *testing.T) {
	sh, err := NewShipper(ShipperConfig{
		Site:    "a",
		Dial:    func() (net.Conn, error) { return nil, errors.New("refused") },
		Backoff: fastBackoff(3),
		Logf:    t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	sh.ShipDelta(0, 1, []byte{0})
	sh.ShipDelta(1, 2, []byte{1})
	err = sh.Close()
	if !errors.Is(err, ErrGaveUp) {
		t.Fatalf("Close = %v, want ErrGaveUp", err)
	}
	lw := sh.LostWindows()
	if len(lw) != 2 || lw[0] != 0 || lw[1] != 1 {
		t.Fatalf("lost windows %v, want [0 1]", lw)
	}
}

// TestShipperQueueBoundEvicts pins the bounded-queue contract: when the
// aggregator stops acking, old deltas are evicted (recorded lost, LOST
// frame queued) instead of growing without bound.
func TestShipperQueueBoundEvicts(t *testing.T) {
	// A listener that accepts and reads nothing: frames pile up unacked.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
	sh, err := NewShipper(ShipperConfig{
		Addr: ln.Addr().String(), Site: "a",
		Backoff:    fastBackoff(0),
		QueueLimit: 2,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < 5; w++ {
		sh.ShipDelta(w, int64(w), []byte{byte(w)})
	}
	// 5 deltas through a 2-slot queue: windows 0, 1, 2 must be evicted.
	deadline := time.After(5 * time.Second)
	for {
		if st := sh.Stats(); st.Evicted == 3 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("evictions %d, want 3 (stats %+v)", sh.Stats().Evicted, sh.Stats())
		case <-time.After(time.Millisecond):
		}
	}
	lw := sh.LostWindows()
	if len(lw) != 3 || lw[0] != 0 || lw[2] != 2 {
		t.Fatalf("lost windows %v, want [0 1 2]", lw)
	}
	sh.Abort()
}

func TestShipperStopsOnSchemaReject(t *testing.T) {
	sink := newRecordingSink()
	sink.helloErr = fmt.Errorf("schema mismatch: want 1, got 2")
	addr, stop := startAggregator(t, sink)
	defer stop()
	sh, err := NewShipper(ShipperConfig{
		Addr: addr, Site: "a", Backoff: fastBackoff(0), Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	sh.ShipDelta(0, 1, []byte{0})
	err = sh.Close()
	if err == nil {
		t.Fatal("Close succeeded despite peer rejection")
	}
	if !errors.Is(err, errPeerFatal) {
		t.Fatalf("Close = %v, want peer-fatal", err)
	}
	if got := sink.windows("a"); len(got) != 0 {
		t.Fatalf("rejected session delivered data: %v", got)
	}
}

// TestShipperSurvivesAggregatorRestart kills the aggregator mid-stream
// and brings a new one up on the same address: the shipper must
// reconnect and redeliver everything unacknowledged.
func TestShipperSurvivesAggregatorRestart(t *testing.T) {
	sink := newRecordingSink()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	agg := NewAggregator(ln, sink, t.Logf)
	go agg.Serve()

	sh, err := NewShipper(ShipperConfig{
		Addr: addr, Site: "a", Backoff: fastBackoff(0), Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	sh.ShipDelta(0, 1, []byte{0})
	// Wait until window 0 landed, then restart the aggregator.
	for i := 0; len(sink.windows("a")) == 0; i++ {
		if i > 5000 {
			t.Fatal("window 0 never arrived")
		}
		time.Sleep(time.Millisecond)
	}
	agg.Close()
	sh.ShipDelta(1, 2, []byte{1}) // lands while the aggregator is down

	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("relisten: %v", err)
	}
	agg2 := NewAggregator(ln2, sink, t.Logf)
	go agg2.Serve()
	defer agg2.Close()

	sh.ShipDelta(2, 3, []byte{2})
	sh.Fin(2, 4)
	if err := sh.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got := sink.windows("a")
	for w := 0; w < 3; w++ {
		if len(got[w]) != 1 || got[w][0] != byte(w) {
			t.Fatalf("window %d lost across restart: %v", w, got)
		}
	}
	if sink.fins["a"] != 2 {
		t.Fatalf("fin not redelivered: %v", sink.fins)
	}
}
