package fleet

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"errors"
	"io"
	"testing"
)

func testFrame() *Frame {
	return &Frame{
		Type:      FrameDelta,
		Site:      "site-a",
		Window:    3,
		Seq:       7,
		Watermark: 1_000_000_000,
		Payload:   []byte{0xDE, 0xAD, 0xBE, 0xEF},
	}
}

// TestFrameGoldenBytes pins the version-1 wire layout byte for byte. If
// this test fails, the frame format changed: bump frameVersion and
// regenerate — do NOT update the golden in place, or deployed shippers
// and aggregators from different builds will mis-parse each other.
func TestFrameGoldenBytes(t *testing.T) {
	const golden = "45464c31010206736974652d61060780a8d6b90704deadbeefb7cd873c"
	b, err := EncodeFrame(testFrame())
	if err != nil {
		t.Fatal(err)
	}
	if got := hex.EncodeToString(b); got != golden {
		t.Fatalf("frame bytes changed:\n got  %s\n want %s\nbump frameVersion if intentional", got, golden)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	cases := []*Frame{
		testFrame(),
		{Type: FrameHello, Site: "x", Payload: []byte("hello")},
		{Type: FrameAck, Seq: 1 << 40},
		{Type: FrameHeartbeat, Site: "s", Watermark: -5}, // negative mark survives zigzag
		{Type: FrameFin, Site: "s", Window: 0},
		{Type: FrameLost, Site: "s", Window: 1<<31 - 1},
		{Type: FrameErr, Payload: []byte("schema mismatch")},
	}
	for _, f := range cases {
		b, err := EncodeFrame(f)
		if err != nil {
			t.Fatalf("%v: encode: %v", f.Type, err)
		}
		got, n, err := DecodeFrame(b)
		if err != nil {
			t.Fatalf("%v: decode: %v", f.Type, err)
		}
		if n != len(b) {
			t.Fatalf("%v: consumed %d of %d", f.Type, n, len(b))
		}
		if got.Type != f.Type || got.Site != f.Site || got.Window != f.Window ||
			got.Seq != f.Seq || got.Watermark != f.Watermark || !bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("%v: round-trip mismatch: %+v vs %+v", f.Type, got, f)
		}
		// Stream path must agree with the slice path, including across
		// back-to-back frames.
		br := bufio.NewReader(bytes.NewReader(append(append([]byte(nil), b...), b...)))
		for i := 0; i < 2; i++ {
			sf, err := ReadFrame(br)
			if err != nil {
				t.Fatalf("%v: stream read %d: %v", f.Type, i, err)
			}
			if sf.Seq != f.Seq || sf.Site != f.Site {
				t.Fatalf("%v: stream frame %d mismatch", f.Type, i)
			}
		}
		if _, err := ReadFrame(br); err != io.EOF {
			t.Fatalf("%v: want clean EOF at boundary, got %v", f.Type, err)
		}
	}
}

// TestFrameRejectsCorruption drives the full rejection table: every
// class of damage a hostile or flaky network can inflict must map to a
// typed error, never a mis-parsed frame.
func TestFrameRejectsCorruption(t *testing.T) {
	good, err := EncodeFrame(testFrame())
	if err != nil {
		t.Fatal(err)
	}
	mut := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), good...))
	}
	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"bad magic", mut(func(b []byte) []byte { b[0] = 'X'; return b }), ErrBadMagic},
		{"bad version", mut(func(b []byte) []byte { b[4] = 99; return b }), ErrBadVersion},
		{"bad type zero", mut(func(b []byte) []byte { b[5] = 0; return b }), ErrBadType},
		{"bad type high", mut(func(b []byte) []byte { b[5] = 200; return b }), ErrBadType},
		{"flipped payload bit", mut(func(b []byte) []byte { b[len(b)-6] ^= 1; return b }), ErrCRC},
		{"flipped crc bit", mut(func(b []byte) []byte { b[len(b)-1] ^= 1; return b }), ErrCRC},
		{"oversized site", mut(func(b []byte) []byte {
			b[6] = 0xFF // site length uvarint → multi-byte, huge
			b[7] = 0x7F
			return b
		}), ErrTooLarge},
		{"truncated mid-payload", good[:len(good)-7], ErrTruncated},
		{"truncated mid-header", good[:8], ErrTruncated},
	}
	for _, tc := range cases {
		if _, _, err := DecodeFrame(tc.b); !errors.Is(err, tc.want) {
			t.Errorf("%s: DecodeFrame err = %v, want %v", tc.name, err, tc.want)
		}
		// Truncations at a frame boundary read as EOF on the stream
		// path (empty case); everything else must error there too.
		if len(tc.b) == 0 {
			continue
		}
		if _, err := ReadFrame(bufio.NewReader(bytes.NewReader(tc.b))); err == nil {
			t.Errorf("%s: ReadFrame accepted corrupt frame", tc.name)
		}
	}
	// Every possible truncation of a valid frame is rejected.
	for cut := 1; cut < len(good); cut++ {
		if _, _, err := DecodeFrame(good[:cut]); err == nil {
			t.Errorf("DecodeFrame accepted truncation at %d", cut)
		}
	}
}

func TestFrameEncodeLimits(t *testing.T) {
	if _, err := EncodeFrame(&Frame{Type: FrameDelta, Site: string(make([]byte, MaxSiteLen+1))}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized site encoded: %v", err)
	}
	if _, err := EncodeFrame(&Frame{Type: 0}); !errors.Is(err, ErrBadType) {
		t.Errorf("zero type encoded: %v", err)
	}
}
