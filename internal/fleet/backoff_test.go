package fleet

import (
	"testing"
	"time"
)

// noJitter pins the random seam to zero so delays are exact.
func noJitter() float64 { return 0 }

func TestBackoffGrowthAndCap(t *testing.T) {
	b := &Backoff{Base: 100 * time.Millisecond, Max: 1 * time.Second, Factor: 2, Jitter: -1, Rand: noJitter}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1 * time.Second, // capped
		1 * time.Second, // stays capped
	}
	for i, w := range want {
		d, ok := b.Next()
		if !ok {
			t.Fatalf("attempt %d: gave up with MaxAttempts=0", i)
		}
		if d != w {
			t.Errorf("attempt %d: delay %v, want %v", i, d, w)
		}
	}
}

func TestBackoffResetOnSuccess(t *testing.T) {
	b := &Backoff{Base: 10 * time.Millisecond, Max: time.Second, Factor: 2, Jitter: -1, Rand: noJitter}
	for i := 0; i < 4; i++ {
		b.Next()
	}
	if b.Attempt() != 4 {
		t.Fatalf("attempt count %d, want 4", b.Attempt())
	}
	b.Reset()
	if b.Attempt() != 0 {
		t.Fatalf("attempt count after reset %d, want 0", b.Attempt())
	}
	d, ok := b.Next()
	if !ok || d != 10*time.Millisecond {
		t.Fatalf("post-reset delay %v ok=%v, want base again", d, ok)
	}
}

func TestBackoffGiveUp(t *testing.T) {
	b := &Backoff{Base: time.Millisecond, MaxAttempts: 3, Jitter: -1, Rand: noJitter}
	for i := 0; i < 3; i++ {
		if _, ok := b.Next(); !ok {
			t.Fatalf("gave up early at attempt %d", i)
		}
	}
	if _, ok := b.Next(); ok {
		t.Fatal("did not give up after MaxAttempts")
	}
	// Reset re-arms the budget — a successful reconnect buys a fresh
	// retry allowance.
	b.Reset()
	if _, ok := b.Next(); !ok {
		t.Fatal("still given up after Reset")
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	cases := []struct {
		name string
		r    float64
		want time.Duration
	}{
		{"rand 0 keeps full delay", 0, 100 * time.Millisecond},
		{"rand 1 removes full jitter fraction", 1, 50 * time.Millisecond},
		{"rand 0.5 removes half", 0.5, 75 * time.Millisecond},
	}
	for _, tc := range cases {
		b := &Backoff{Base: 100 * time.Millisecond, Jitter: 0.5, Rand: func() float64 { return tc.r }}
		d, ok := b.Next()
		if !ok || d != tc.want {
			t.Errorf("%s: delay %v ok=%v, want %v", tc.name, d, ok, tc.want)
		}
	}
	// Default jitter with real randomness stays within (0.8d, d].
	b := &Backoff{Base: 100 * time.Millisecond}
	for i := 0; i < 100; i++ {
		b.Reset()
		d, _ := b.Next()
		if d <= 80*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("jittered delay %v outside (80ms, 100ms]", d)
		}
	}
}

func TestBackoffDefaults(t *testing.T) {
	b := &Backoff{Rand: noJitter, Jitter: -1}
	d, ok := b.Next()
	if !ok || d != DefaultBackoffBase {
		t.Fatalf("zero-value first delay %v, want %v", d, DefaultBackoffBase)
	}
	for i := 0; i < 20; i++ {
		d, _ = b.Next()
	}
	if d != DefaultBackoffMax {
		t.Fatalf("zero-value cap %v, want %v", d, DefaultBackoffMax)
	}
}

// fakeClock is the injectable Clock used by shipper tests: time only
// advances when the test says so, and waits release deterministically.
type fakeClock struct {
	mu      chMu
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// chMu is a tiny channel-based mutex so fakeClock has no lock ordering
// with the code under test.
type chMu chan struct{}

func newChMu() chMu { m := make(chMu, 1); m <- struct{}{}; return m }

func (m chMu) lock()   { <-m }
func (m chMu) unlock() { m <- struct{}{} }

func newFakeClock(start time.Time) *fakeClock {
	return &fakeClock{mu: newChMu(), now: start}
}

func (c *fakeClock) Now() time.Time {
	c.mu.lock()
	defer c.mu.unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.lock()
	defer c.mu.unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.waiters = append(c.waiters, fakeWaiter{at: c.now.Add(d), ch: ch})
	return ch
}

// Advance moves the clock forward, firing every waiter that comes due.
func (c *fakeClock) Advance(d time.Duration) {
	c.mu.lock()
	defer c.mu.unlock()
	c.now = c.now.Add(d)
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if !w.at.After(c.now) {
			w.ch <- c.now
		} else {
			kept = append(kept, w)
		}
	}
	c.waiters = kept
}

func TestFakeClock(t *testing.T) {
	c := newFakeClock(time.Unix(0, 0))
	ch := c.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("fired early")
	default:
	}
	c.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("fired at 9s")
	default:
	}
	c.Advance(time.Second)
	select {
	case <-ch:
	default:
		t.Fatal("did not fire at 10s")
	}
}
