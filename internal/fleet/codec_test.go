package fleet

import (
	"bytes"
	"math"
	"net/netip"
	"testing"
	"time"

	"enttrace/internal/stats"
)

// wireFixture exercises every encoding path the real snapshot graph
// uses: unexported fields, nested structs, maps with composite keys,
// slices of structs, pointers, special-cased types, and a func field
// that must be skipped.
type wireFixture struct {
	name    string
	count   int64
	ratio   float64
	small   uint16
	flag    bool
	addr    netip.Addr
	when    time.Time
	dist    stats.Dist
	pairs   map[pairKey]uint8
	byName  map[string]int64
	nested  innerFixture
	ptr     *innerFixture
	nilPtr  *innerFixture
	items   []innerFixture
	raw     []byte
	arr     [2]netip.Addr
	Skipped func() // must not affect bytes or schema
}

type pairKey struct{ a, b netip.Addr }

type innerFixture struct {
	label string
	n     int
	f32   float32
}

func mkFixture() *wireFixture {
	d := stats.Dist{}
	for _, v := range []float64{5, 1, 1, 3, math.Inf(1), math.NaN(), 2, 2, 2} {
		d.Observe(v)
	}
	return &wireFixture{
		name:  "site-a",
		count: -42,
		ratio: 0.125,
		small: 65535,
		flag:  true,
		addr:  netip.MustParseAddr("10.1.2.3"),
		when:  time.Date(2026, 8, 8, 12, 0, 0, 12345, time.UTC),
		dist:  d,
		pairs: map[pairKey]uint8{
			{netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2")}: 3,
			{netip.MustParseAddr("10.0.0.3"), netip.MustParseAddr("10.0.0.4")}: 1,
		},
		byName: map[string]int64{"tcp": 100, "udp": 7, "icmp": 1},
		nested: innerFixture{label: "in", n: 9, f32: 1.5},
		ptr:    &innerFixture{label: "p", n: -1},
		items:  []innerFixture{{label: "x"}, {label: "y", n: 2}},
		raw:    []byte{0, 1, 2, 255},
		arr: [2]netip.Addr{
			netip.MustParseAddr("192.168.0.1"),
			netip.MustParseAddr("fe80::1"),
		},
		Skipped: func() {},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	in := mkFixture()
	b, err := Marshal(in)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	var out wireFixture
	if err := Unmarshal(b, &out); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
	if out.name != in.name || out.count != in.count || out.ratio != in.ratio ||
		out.small != in.small || out.flag != in.flag || out.addr != in.addr ||
		!out.when.Equal(in.when) || out.nested != in.nested ||
		*out.ptr != *in.ptr || out.nilPtr != nil ||
		len(out.items) != len(in.items) || out.items[1] != in.items[1] ||
		!bytes.Equal(out.raw, in.raw) || out.arr != in.arr {
		t.Fatalf("round-trip mismatch:\n got %+v\nwant %+v", &out, in)
	}
	if len(out.pairs) != len(in.pairs) || out.pairs[pairKey{netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2")}] != 3 {
		t.Fatalf("pairs mismatch: %v", out.pairs)
	}
	if len(out.byName) != 3 || out.byName["tcp"] != 100 {
		t.Fatalf("byName mismatch: %v", out.byName)
	}
	if out.dist.N() != in.dist.N() || out.dist.Quantile(0.5) != in.dist.Quantile(0.5) {
		t.Fatalf("dist mismatch: n=%d median=%v", out.dist.N(), out.dist.Quantile(0.5))
	}
}

// TestCodecDeterministic pins that two values with the same content —
// built with different map insertion orders — encode to identical
// bytes, and that encoding is stable across repeated calls.
func TestCodecDeterministic(t *testing.T) {
	a := mkFixture()
	b := mkFixture()
	// Rebuild b's maps in reverse insertion order.
	m := make(map[string]int64, len(b.byName))
	for _, k := range []string{"icmp", "udp", "tcp"} {
		m[k] = b.byName[k]
	}
	b.byName = m
	ba, err := Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		bb, err := Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ba, bb) {
			t.Fatalf("iteration %d: same content, different bytes (%d vs %d)", i, len(ba), len(bb))
		}
	}
}

func TestCodecErrors(t *testing.T) {
	if _, err := Marshal(wireFixture{}); err == nil {
		t.Error("Marshal accepted a non-pointer")
	}
	var out wireFixture
	if err := Unmarshal(nil, out); err == nil {
		t.Error("Unmarshal accepted a non-pointer")
	}
	b, err := Marshal(mkFixture())
	if err != nil {
		t.Fatal(err)
	}
	if err := Unmarshal(append(b, 0xFF), &out); err == nil {
		t.Error("Unmarshal accepted trailing bytes")
	}
	for cut := 0; cut < len(b); cut += 7 {
		if err := Unmarshal(b[:cut], &out); err == nil {
			t.Errorf("Unmarshal accepted truncation at %d", cut)
		}
	}
	type withIface struct{ v any }
	if _, err := Marshal(&withIface{v: 3}); err == nil {
		t.Error("Marshal accepted an interface field")
	}
}

func TestSchemaOf(t *testing.T) {
	a := SchemaOf(&wireFixture{})
	if a != SchemaOf(&wireFixture{}) {
		t.Fatal("schema hash unstable")
	}
	if a != SchemaOf(wireFixture{}) {
		t.Fatal("pointer vs value schema mismatch")
	}
	type renamed struct {
		namex string // one field name differs from wireFixture.name
		count int64
	}
	type sameShape struct {
		name  string
		count int64
	}
	if SchemaOf(&renamed{}) == SchemaOf(&sameShape{}) {
		t.Fatal("field rename did not change schema hash")
	}
	type widened struct {
		name  string
		count int32
	}
	if SchemaOf(&widened{}) == SchemaOf(&sameShape{}) {
		t.Fatal("field type change did not change schema hash")
	}
}

// TestCodecDistMergesAfterDecode pins the property core relies on: a
// decoded snapshot keeps merging exactly.
func TestCodecDistMergesAfterDecode(t *testing.T) {
	type holder struct{ d stats.Dist }
	var h holder
	for i := 0; i < 1000; i++ {
		h.d.Observe(float64(i % 37))
	}
	b, err := Marshal(&h)
	if err != nil {
		t.Fatal(err)
	}
	var got holder
	if err := Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	ref := h.d.Snapshot()
	ref.Merge(h.d.Snapshot())
	m := got.d.Snapshot()
	m.Merge(&got.d)
	if m.N() != ref.N() || m.Quantile(0.9) != ref.Quantile(0.9) || m.Sum() != ref.Sum() {
		t.Fatalf("decoded dist merges differently: n=%d q90=%v", m.N(), m.Quantile(0.9))
	}
}
