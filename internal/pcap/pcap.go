// Package pcap implements the classic libpcap trace file format: the
// 24-byte global header followed by 16-byte-headed packet records. It
// supports both byte orders, microsecond and nanosecond timestamp variants,
// snaplen truncation on write (the paper's D1/D2 datasets were captured
// with a 68-byte snaplen), and timestamp-ordered merging of several
// unidirectional streams — the way the paper's tracing host merged four
// NIC streams into one trace.
//
// Only link type Ethernet (DLT_EN10MB = 1) is used by this repository, but
// the reader preserves whatever link type the file declares.
package pcap

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
	"time"
)

// readBufferSize is the bufio buffer NewReader installs over unbuffered
// streams. Large enough that even jumbo records need one refill at most.
const readBufferSize = 256 << 10

// Magic numbers for the two timestamp resolutions, in file byte order.
const (
	MagicMicroseconds = 0xa1b2c3d4
	MagicNanoseconds  = 0xa1b23c4d
)

// LinkTypeEthernet is DLT_EN10MB.
const LinkTypeEthernet = 1

const (
	globalHeaderLen = 24
	recordHeaderLen = 16
)

// ErrBadMagic is returned when a file does not start with a known pcap
// magic number in either byte order.
var ErrBadMagic = errors.New("pcap: bad magic number")

// Packet is one captured packet record.
type Packet struct {
	// Timestamp is the capture time.
	Timestamp time.Time
	// Data holds the captured bytes (possibly truncated to snaplen).
	Data []byte
	// OrigLen is the original wire length, >= len(Data).
	OrigLen int

	// retained marks a pooled packet whose Data has escaped into
	// longer-lived state; Pool.Put leaves it alone. See Retain.
	retained bool
}

// Retain marks the packet as kept by its consumer: a subsequent Pool.Put
// becomes a no-op, so Data is never recycled out from under references
// held beyond the packet callback. Harmless on non-pooled packets.
func (p *Packet) Retain() { p.retained = true }

// Retained reports whether Retain was called since the packet was last
// issued by a Pool.
func (p *Packet) Retained() bool { return p.retained }

// Truncated reports whether the capture lost bytes to the snaplen.
func (p *Packet) Truncated() bool { return p.OrigLen > len(p.Data) }

// Header describes a trace file's global header.
type Header struct {
	SnapLen  uint32
	LinkType uint32
	// Nanos indicates nanosecond timestamp resolution.
	Nanos bool
}

// Reader reads packets from a pcap stream.
type Reader struct {
	r      io.Reader
	order  binary.ByteOrder
	hdr    Header
	rec    [recordHeaderLen]byte
	nanos  bool
	sticky error
}

// NewReader parses the global header from r and returns a Reader. Readers
// without their own buffering (anything not implementing io.ByteReader,
// such as *os.File) are wrapped in a large bufio.Reader, so record-sized
// reads never hit the underlying stream directly.
func NewReader(r io.Reader) (*Reader, error) {
	if _, ok := r.(io.ByteReader); !ok {
		r = bufio.NewReaderSize(r, readBufferSize)
	}
	var gh [globalHeaderLen]byte
	if _, err := io.ReadFull(r, gh[:]); err != nil {
		return nil, fmt.Errorf("pcap: reading global header: %w", err)
	}
	order, hdr, err := parseGlobalHeader(gh)
	if err != nil {
		return nil, err
	}
	return &Reader{
		r:     r,
		order: order,
		nanos: hdr.Nanos,
		hdr:   hdr,
	}, nil
}

// parseGlobalHeader decodes a 24-byte pcap global header: magic (either
// byte order, µs or ns timestamp variant), snaplen, link type. Shared
// by the streaming Reader and the memory-mapped MapSource.
func parseGlobalHeader(gh [globalHeaderLen]byte) (binary.ByteOrder, Header, error) {
	var order binary.ByteOrder
	var nanos bool
	switch binary.LittleEndian.Uint32(gh[0:4]) {
	case MagicMicroseconds:
		order = binary.LittleEndian
	case MagicNanoseconds:
		order, nanos = binary.LittleEndian, true
	default:
		switch binary.BigEndian.Uint32(gh[0:4]) {
		case MagicMicroseconds:
			order = binary.BigEndian
		case MagicNanoseconds:
			order, nanos = binary.BigEndian, true
		default:
			return nil, Header{}, ErrBadMagic
		}
	}
	return order, Header{
		SnapLen:  order.Uint32(gh[16:20]),
		LinkType: order.Uint32(gh[20:24]),
		Nanos:    nanos,
	}, nil
}

// Header returns the trace's global header fields.
func (r *Reader) Header() Header { return r.hdr }

// Next returns the next packet, or io.EOF at a clean end of file. The
// returned Data slice is freshly allocated to the record's exact size
// and owned by the caller; for an allocation-free hot path use NextInto
// with recycled packets.
func (r *Reader) Next() (*Packet, error) {
	p := new(Packet)
	if err := r.readInto(p, false); err != nil {
		return nil, err
	}
	return p, nil
}

// NextInto reads the next record into p, reusing p.Data's capacity when it
// fits, and returns io.EOF at a clean end of file. A record cut short by
// the end of the stream — header or body — yields an error wrapping
// io.ErrUnexpectedEOF. Any previous contents of p are overwritten.
func (r *Reader) NextInto(p *Packet) error {
	return r.readInto(p, true)
}

// readInto is the shared record reader. reuse selects the buffer policy:
// rounded-up allocations that converge under recycling (NextInto), or
// exact-size allocations for packets the caller keeps (Next) — a
// materialized header-only trace must not pay 2 KB per 96-byte record.
func (r *Reader) readInto(p *Packet, reuse bool) error {
	if r.sticky != nil {
		return r.sticky
	}
	if _, err := io.ReadFull(r.r, r.rec[:]); err != nil {
		if err == io.EOF {
			r.sticky = io.EOF
			return io.EOF
		}
		// ReadFull's io.ErrUnexpectedEOF (a partial header) stays
		// visible through the wrapping.
		r.sticky = fmt.Errorf("pcap: reading record header: %w", err)
		return r.sticky
	}
	sec := int64(r.order.Uint32(r.rec[0:4]))
	frac := int64(r.order.Uint32(r.rec[4:8]))
	incl := r.order.Uint32(r.rec[8:12])
	orig := r.order.Uint32(r.rec[12:16])
	if incl > r.hdr.SnapLen && r.hdr.SnapLen != 0 || incl > 1<<24 {
		r.sticky = fmt.Errorf("pcap: record length %d exceeds snaplen %d", incl, r.hdr.SnapLen)
		return r.sticky
	}
	n := int(incl)
	switch {
	case cap(p.Data) >= n:
		p.Data = p.Data[:n]
	case reuse:
		// Round the allocation up so a recycled buffer converges on the
		// trace's largest record instead of reallocating per size class.
		p.Data = make([]byte, n, roundUpPow2(n))
	default:
		p.Data = make([]byte, n)
	}
	if _, err := io.ReadFull(r.r, p.Data); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		r.sticky = fmt.Errorf("pcap: reading packet body: %w", err)
		return r.sticky
	}
	nsec := frac * 1000
	if r.nanos {
		nsec = frac
	}
	p.Timestamp = time.Unix(sec, nsec).UTC()
	p.OrigLen = int(orig)
	p.retained = false
	return nil
}

// roundUpPow2 rounds n up to the next power of two, with a floor that
// covers typical full-size Ethernet frames.
func roundUpPow2(n int) int {
	const floor = 2048
	if n <= floor {
		return floor
	}
	return 1 << bits.Len(uint(n-1))
}

// ReadAll drains the reader, returning every packet until EOF. On error —
// including a final record truncated by the end of the stream, reported
// as an error wrapping io.ErrUnexpectedEOF — the packets successfully
// read before the failure are returned alongside it.
func (r *Reader) ReadAll() ([]*Packet, error) {
	var pkts []*Packet
	for {
		p, err := r.Next()
		if err == io.EOF {
			return pkts, nil
		}
		if err != nil {
			return pkts, err
		}
		pkts = append(pkts, p)
	}
}

// Writer writes packets to a pcap stream, truncating to the configured
// snaplen as a capture device would.
type Writer struct {
	w       io.Writer
	snaplen uint32
	nanos   bool
	rec     [recordHeaderLen]byte
	wrote   bool
}

// NewWriter writes a global header to w and returns a Writer. A snaplen of
// zero means "no truncation" and is recorded as 65535. linkType is usually
// LinkTypeEthernet.
func NewWriter(w io.Writer, snaplen uint32, linkType uint32) (*Writer, error) {
	if snaplen == 0 {
		snaplen = 65535
	}
	var gh [globalHeaderLen]byte
	binary.LittleEndian.PutUint32(gh[0:4], MagicMicroseconds)
	binary.LittleEndian.PutUint16(gh[4:6], 2) // version 2.4
	binary.LittleEndian.PutUint16(gh[6:8], 4)
	// thiszone, sigfigs stay zero.
	binary.LittleEndian.PutUint32(gh[16:20], snaplen)
	binary.LittleEndian.PutUint32(gh[20:24], linkType)
	if _, err := w.Write(gh[:]); err != nil {
		return nil, fmt.Errorf("pcap: writing global header: %w", err)
	}
	return &Writer{w: w, snaplen: snaplen}, nil
}

// SnapLen returns the writer's snaplen.
func (w *Writer) SnapLen() uint32 { return w.snaplen }

// WritePacket writes one record; data longer than the snaplen is truncated
// and the original length preserved in the record header.
func (w *Writer) WritePacket(ts time.Time, data []byte) error {
	return w.WriteCaptured(ts, data, len(data))
}

// WriteCaptured writes a record whose data was already truncated upstream,
// preserving the original wire length in the record header.
func (w *Writer) WriteCaptured(ts time.Time, data []byte, origLen int) error {
	orig := origLen
	if orig < len(data) {
		orig = len(data)
	}
	if uint32(len(data)) > w.snaplen {
		data = data[:w.snaplen]
	}
	binary.LittleEndian.PutUint32(w.rec[0:4], uint32(ts.Unix()))
	binary.LittleEndian.PutUint32(w.rec[4:8], uint32(ts.Nanosecond()/1000))
	binary.LittleEndian.PutUint32(w.rec[8:12], uint32(len(data)))
	binary.LittleEndian.PutUint32(w.rec[12:16], uint32(orig))
	if _, err := w.w.Write(w.rec[:]); err != nil {
		return fmt.Errorf("pcap: writing record header: %w", err)
	}
	if _, err := w.w.Write(data); err != nil {
		return fmt.Errorf("pcap: writing packet body: %w", err)
	}
	w.wrote = true
	return nil
}
