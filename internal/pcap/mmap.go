package pcap

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// ErrMmapUnsupported is returned by OpenMmap on platforms without a
// memory-mapping implementation. Callers fall back to the streaming
// Reader path, which is portable.
var ErrMmapUnsupported = errors.New("pcap: mmap not supported on this platform")

// MapSource reads a pcap trace from a byte slice that is already in
// memory — typically a memory-mapped file (OpenMmap) — and hands out
// packets whose Data is a view into that slice rather than a copy. It
// implements PacketSource and Releaser with the same contract as
// PooledReader: a packet is valid until Release, and consumers keeping
// slices into Data past the callback must Retain it first.
//
// The zero-copy twist is what Release means here. A released packet's
// Data pointed into the mapping, so Release poisons the struct (Data
// becomes nil) before recycling it: any use-after-release fails loudly
// with a nil-slice panic instead of silently reading whatever record
// the view happened to cover. Retained packets are exempt — their views
// stay valid until Close unmaps the file, which is why Close must not
// be called until the run consuming the source has returned. The
// analysis core's borrow contract (see connStreams.release) guarantees
// nothing derived from packet Data outlives the run, so closing after
// AddTraceSource returns is safe.
//
// Error semantics mirror Reader record for record: a clean end of the
// slice is io.EOF; a record cut short — header or body — is a sticky
// error wrapping io.ErrUnexpectedEOF with the packets before it already
// delivered; an incl length over the snaplen is a sticky corruption
// error. All of it classifies identically through ClassifyReadError.
type MapSource struct {
	data   []byte
	off    int
	order  binary.ByteOrder
	hdr    Header
	sticky error
	pool   *Pool
	// unmap releases the mapping (nil for caller-owned slices).
	unmap func() error
}

// NewMapSource returns a MapSource over an in-memory pcap image. The
// slice is borrowed, not copied: it must stay valid (and unmodified)
// until the source — and every packet retained from it — is done.
func NewMapSource(data []byte) (*MapSource, error) {
	if len(data) < globalHeaderLen {
		return nil, fmt.Errorf("pcap: reading global header: %w", io.ErrUnexpectedEOF)
	}
	var gh [globalHeaderLen]byte
	copy(gh[:], data)
	order, hdr, err := parseGlobalHeader(gh)
	if err != nil {
		return nil, err
	}
	return &MapSource{
		data:  data,
		off:   globalHeaderLen,
		order: order,
		hdr:   hdr,
		pool:  NewPool(),
	}, nil
}

// Header returns the trace's global header fields.
func (s *MapSource) Header() Header { return s.hdr }

// Next implements PacketSource. The returned packet's Data aliases the
// mapped file — no copy — and is valid until Release (or, if Retained,
// until Close).
func (s *MapSource) Next() (*Packet, error) {
	if s.sticky != nil {
		return nil, s.sticky
	}
	if s.off == len(s.data) {
		s.sticky = io.EOF
		return nil, io.EOF
	}
	if len(s.data)-s.off < recordHeaderLen {
		s.sticky = fmt.Errorf("pcap: reading record header: %w", io.ErrUnexpectedEOF)
		return nil, s.sticky
	}
	rec := s.data[s.off : s.off+recordHeaderLen]
	sec := int64(s.order.Uint32(rec[0:4]))
	frac := int64(s.order.Uint32(rec[4:8]))
	incl := s.order.Uint32(rec[8:12])
	orig := s.order.Uint32(rec[12:16])
	if incl > s.hdr.SnapLen && s.hdr.SnapLen != 0 || incl > 1<<24 {
		s.sticky = fmt.Errorf("pcap: record length %d exceeds snaplen %d", incl, s.hdr.SnapLen)
		return nil, s.sticky
	}
	body := s.off + recordHeaderLen
	if len(s.data)-body < int(incl) {
		s.sticky = fmt.Errorf("pcap: reading packet body: %w", io.ErrUnexpectedEOF)
		return nil, s.sticky
	}
	s.off = body + int(incl)
	nsec := frac * 1000
	if s.hdr.Nanos {
		nsec = frac
	}
	p := s.pool.Get()
	p.Timestamp = time.Unix(sec, nsec).UTC()
	p.Data = s.data[body : body+int(incl) : body+int(incl)]
	p.OrigLen = int(orig)
	return p, nil
}

// Release implements Releaser. Unlike a buffer-recycling pool, the
// packet's Data is a borrowed view, so Release poisons it — Data nil,
// lengths zeroed — before returning the struct for reuse. Retained
// packets are left untouched, views and all.
func (s *MapSource) Release(p *Packet) {
	if p == nil || p.retained {
		return
	}
	p.Data = nil
	p.OrigLen = 0
	p.Timestamp = time.Time{}
	s.pool.Put(p)
}

// Close releases the underlying mapping, if any. Every view handed out
// by Next — including retained packets — dies with it, so Close only
// after the run consuming this source has fully returned.
func (s *MapSource) Close() error {
	s.data = nil
	// Any Next after Close is a borrow-contract violation; report it as
	// such even on a cleanly drained source (a real read error stays).
	if s.sticky == nil || s.sticky == io.EOF {
		s.sticky = errors.New("pcap: source closed")
	}
	if s.unmap == nil {
		return nil
	}
	unmap := s.unmap
	s.unmap = nil
	return unmap()
}
