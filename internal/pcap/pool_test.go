package pcap

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

// writeTestTrace serializes n packets with recognizable payloads and
// returns the raw trace bytes plus the expected packets.
func writeTestTrace(t testing.TB, n int) ([]byte, []*Packet) {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0, LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	var want []*Packet
	for i := 0; i < n; i++ {
		data := bytes.Repeat([]byte{byte(i)}, 20+i%64)
		stamp := ts(1000+int64(i), int64(i))
		if err := w.WritePacket(stamp, data); err != nil {
			t.Fatal(err)
		}
		want = append(want, &Packet{Timestamp: stamp, Data: data, OrigLen: len(data)})
	}
	return buf.Bytes(), want
}

func TestNextIntoReusesBuffer(t *testing.T) {
	raw, want := writeTestTrace(t, 50)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var p Packet
	var firstCap int
	for i := 0; ; i++ {
		err := r.NextInto(&p)
		if err == io.EOF {
			if i != len(want) {
				t.Fatalf("read %d packets, want %d", i, len(want))
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p.Data, want[i].Data) {
			t.Fatalf("packet %d data mismatch", i)
		}
		if !p.Timestamp.Equal(want[i].Timestamp) {
			t.Fatalf("packet %d timestamp = %v, want %v", i, p.Timestamp, want[i].Timestamp)
		}
		if i == 0 {
			firstCap = cap(p.Data)
		} else if cap(p.Data) != firstCap {
			// All test records fit the power-of-two floor, so the first
			// allocation must be the only one.
			t.Fatalf("packet %d reallocated: cap %d, first cap %d", i, cap(p.Data), firstCap)
		}
	}
}

func TestNextIntoGrowsUndersizedBuffer(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0, LinkTypeEthernet)
	big := bytes.Repeat([]byte{0xEE}, 5000)
	if err := w.WritePacket(ts(1, 0), big); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p := Packet{Data: make([]byte, 0, 16)}
	if err := r.NextInto(&p); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p.Data, big) {
		t.Fatal("grown buffer lost data")
	}
}

func TestPoolRecyclesUnretained(t *testing.T) {
	pool := NewPool()
	p := pool.Get()
	p.Data = append(p.Data[:0], 1, 2, 3)
	pool.Put(p)
	// sync.Pool gives no recycling guarantee, but a same-goroutine
	// Get-after-Put with no GC in between returns the same object.
	q := pool.Get()
	if q != p {
		t.Skip("pool did not recycle (GC interference); contract untestable this run")
	}
	if q.Retained() {
		t.Error("recycled packet still marked retained")
	}
}

func TestPoolRetainExemptsPacket(t *testing.T) {
	pool := NewPool()
	p := pool.Get()
	p.Data = append(p.Data[:0], 42)
	p.Retain()
	pool.Put(p) // must be a no-op
	if q := pool.Get(); q == p {
		t.Fatal("retained packet was recycled")
	}
	if p.Data[0] != 42 {
		t.Fatal("retained packet data clobbered")
	}
}

func TestPooledReaderMatchesNext(t *testing.T) {
	raw, want := writeTestTrace(t, 40)
	src := NewPooledReader(mustReader(t, raw), nil)
	for i := 0; ; i++ {
		p, err := src.Next()
		if err == io.EOF {
			if i != len(want) {
				t.Fatalf("read %d packets, want %d", i, len(want))
			}
			return
		}
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(p.Data, want[i].Data) || !p.Timestamp.Equal(want[i].Timestamp) || p.OrigLen != want[i].OrigLen {
			t.Fatalf("packet %d mismatch: %+v", i, p)
		}
		src.Release(p)
	}
}

// TestPooledReaderRetainSurvivesReuse is the Retain contract end to end:
// a retained packet's bytes must survive arbitrarily many subsequent
// reads through the same pool, while released packets may be recycled.
func TestPooledReaderRetainSurvivesReuse(t *testing.T) {
	raw, want := writeTestTrace(t, 60)
	src := NewPooledReader(mustReader(t, raw), nil)
	kept := map[int][]byte{}
	for i := 0; ; i++ {
		p, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if i%7 == 0 {
			p.Retain()
			kept[i] = p.Data
		}
		src.Release(p)
	}
	for i, data := range kept {
		if !bytes.Equal(data, want[i].Data) {
			t.Errorf("retained packet %d corrupted by pool reuse", i)
		}
	}
}

func mustReader(t testing.TB, raw []byte) *Reader {
	t.Helper()
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestReadAllTruncatedFinalRecord pins the mid-record-truncation
// contract: the packets before the cut are returned, and the error wraps
// io.ErrUnexpectedEOF whether the cut lands in the record body or the
// record header.
func TestReadAllTruncatedFinalRecord(t *testing.T) {
	raw, want := writeTestTrace(t, 5)
	lastBody := 20 + 4%64 // length of the final packet's body
	for name, cut := range map[string]int{
		"mid-body":   3,            // strips part of the last body
		"whole-body": lastBody,     // strips exactly the last body
		"mid-header": lastBody + 7, // leaves a partial record header
	} {
		t.Run(name, func(t *testing.T) {
			r := mustReader(t, raw[:len(raw)-cut])
			pkts, err := r.ReadAll()
			if err == nil {
				t.Fatal("truncated trace read without error")
			}
			if !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Errorf("err = %v, want wrapped io.ErrUnexpectedEOF", err)
			}
			if len(pkts) != len(want)-1 {
				t.Fatalf("got %d packets before the cut, want %d", len(pkts), len(want)-1)
			}
			for i, p := range pkts {
				if !bytes.Equal(p.Data, want[i].Data) {
					t.Errorf("packet %d data mismatch", i)
				}
			}
		})
	}
}

// TestBufferedReaderWrap verifies NewReader still parses correctly when
// handed a reader with no internal buffering (the wrap path).
func TestBufferedReaderWrap(t *testing.T) {
	raw, want := writeTestTrace(t, 10)
	r, err := NewReader(onlyReader{bytes.NewReader(raw)})
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != len(want) {
		t.Fatalf("read %d packets, want %d", len(pkts), len(want))
	}
}

// onlyReader hides every interface except io.Reader.
type onlyReader struct{ r io.Reader }

func (o onlyReader) Read(p []byte) (int, error) { return o.r.Read(p) }

// BenchmarkReadPacketPooled is the pooled counterpart of
// BenchmarkReadPacket: steady-state reads must not allocate.
func BenchmarkReadPacketPooled(b *testing.B) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0, LinkTypeEthernet)
	data := bytes.Repeat([]byte{0x5A}, 1400)
	for i := 0; i < 1000; i++ {
		_ = w.WritePacket(time.Unix(int64(i), 0), data)
	}
	raw := buf.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	src := NewPooledReader(mustReader(b, raw), nil)
	for i := 0; i < b.N; i++ {
		p, err := src.Next()
		if err == io.EOF {
			src = NewPooledReader(mustReader(b, raw), src.pool)
			continue
		}
		if err != nil {
			b.Fatal(err)
		}
		src.Release(p)
	}
}
