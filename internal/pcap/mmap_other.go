//go:build !linux

package pcap

// OpenMmap is unsupported on this platform; callers fall back to the
// streaming Reader path. NewMapSource over a caller-loaded slice still
// works everywhere.
func OpenMmap(path string) (*MapSource, error) {
	return nil, ErrMmapUnsupported
}
