package pcap

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

// mmapTestTrace serializes a small trace exercising the record shapes
// the map walker must agree with the streaming Reader on: empty
// payload, full frame, and a snaplen-truncated record.
func mmapTestTrace(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 96, LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{
		{},
		{0xde, 0xad, 0xbe, 0xef},
		bytes.Repeat([]byte{0x55}, 64),
		bytes.Repeat([]byte{0xab}, 1500), // truncated to 96 on write
	}
	for i, p := range payloads {
		if err := w.WritePacket(ts(1000+int64(i), 250), p); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestMapSourceMatchesReader is the parity pin: packet for packet, the
// zero-copy map walker and the streaming Reader agree on timestamps,
// capture data, and original lengths — and the map source's Data really
// is a view into the input, not a copy.
func TestMapSourceMatchesReader(t *testing.T) {
	raw := mmapTestTrace(t)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	want, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewMapSource(raw)
	if err != nil {
		t.Fatal(err)
	}
	if src.Header() != r.Header() {
		t.Errorf("header = %+v, want %+v", src.Header(), r.Header())
	}
	for i, w := range want {
		p, err := src.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !p.Timestamp.Equal(w.Timestamp) || p.OrigLen != w.OrigLen || !bytes.Equal(p.Data, w.Data) {
			t.Errorf("packet %d = {%v %d %x}, want {%v %d %x}",
				i, p.Timestamp, p.OrigLen, p.Data, w.Timestamp, w.OrigLen, w.Data)
		}
		if len(p.Data) > 0 {
			// Zero-copy: the view must alias raw, not a fresh buffer.
			if &p.Data[0] != &raw[rawOffsetOf(t, raw, p.Data)] {
				t.Errorf("packet %d: Data is a copy, want a view into the input", i)
			}
		}
		src.Release(p)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Errorf("after last packet: err = %v, want io.EOF", err)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Errorf("EOF not sticky: %v", err)
	}
}

// rawOffsetOf locates view's backing offset inside raw by content
// search from the front; the test traces keep payloads distinct enough
// that the first match is the right one.
func rawOffsetOf(t *testing.T, raw []byte, view []byte) int {
	t.Helper()
	off := bytes.Index(raw, view)
	if off < 0 {
		t.Fatal("view content not found in input")
	}
	return off
}

// TestMapSourceTruncatedFinalRecord pins the torn-trace contract shared
// with Reader: every complete record is delivered, then the cut — in
// the body or in the record header — surfaces as a sticky error
// wrapping io.ErrUnexpectedEOF, which the degrade policy's fallback
// classification buckets as a terminal torn-record.
func TestMapSourceTruncatedFinalRecord(t *testing.T) {
	raw := mmapTestTrace(t)
	for _, cut := range []struct {
		name string
		drop int
	}{
		{"torn-body", 2},                      // last record loses 2 payload bytes
		{"torn-header", 96 + 2},               // cut lands inside the last record header
		{"header-only-trailing", 96 + 16 - 1}, // 15 bytes of header, no more
	} {
		t.Run(cut.name, func(t *testing.T) {
			src, err := NewMapSource(raw[:len(raw)-cut.drop])
			if err != nil {
				t.Fatal(err)
			}
			var got int
			var readErr error
			for {
				p, err := src.Next()
				if err != nil {
					readErr = err
					break
				}
				got++
				src.Release(p)
			}
			if got != 3 {
				t.Errorf("delivered %d packets before the tear, want 3", got)
			}
			if !errors.Is(readErr, io.ErrUnexpectedEOF) {
				t.Errorf("err = %v, want wrapped io.ErrUnexpectedEOF", readErr)
			}
			if kind, recoverable := ClassifyReadError(readErr); kind != "torn-record" || recoverable {
				t.Errorf("classified as (%q, %v), want (torn-record, false)", kind, recoverable)
			}
			if _, err := src.Next(); !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Errorf("sticky error lost: %v", err)
			}
		})
	}
}

// TestMapSourceReleasePoisons is the use-after-release tripwire: a
// released packet's view into the mapping must be gone (nil Data, so
// any indexing panics immediately), while a Retained packet keeps its
// view intact through Release.
func TestMapSourceReleasePoisons(t *testing.T) {
	src, err := NewMapSource(mmapTestTrace(t))
	if err != nil {
		t.Fatal(err)
	}
	if p, err := src.Next(); err != nil {
		t.Fatal(err)
	} else {
		src.Release(p)
	}
	released, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(released.Data) == 0 {
		t.Fatal("test wants a non-empty record")
	}
	src.Release(released)
	if released.Data != nil || released.OrigLen != 0 || !released.Timestamp.IsZero() {
		t.Errorf("released packet not poisoned: %+v", released)
	}
	retained, err := src.Next()
	if err != nil {
		t.Fatal(err)
	}
	keep := retained.Data
	retained.Retain()
	src.Release(retained)
	if !bytes.Equal(retained.Data, keep) || &retained.Data[0] != &keep[0] {
		t.Error("retained packet lost its view on Release")
	}
}

// TestMapSourceHeaderErrors pins the constructor's failure modes to the
// Reader's shapes: too short for a global header wraps
// io.ErrUnexpectedEOF, a wrong magic is ErrBadMagic.
func TestMapSourceHeaderErrors(t *testing.T) {
	if _, err := NewMapSource([]byte{1, 2, 3}); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("short header: err = %v, want wrapped io.ErrUnexpectedEOF", err)
	}
	bad := make([]byte, 24)
	copy(bad, "not a pcap file.........")
	if _, err := NewMapSource(bad); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: err = %v, want ErrBadMagic", err)
	}
}

// TestOpenMmapReadsFile exercises the real mmap path end to end on
// Linux: map a trace file, drain it, Close unmaps without error. On
// other platforms OpenMmap must report ErrMmapUnsupported.
func TestOpenMmapReadsFile(t *testing.T) {
	raw := mmapTestTrace(t)
	path := filepath.Join(t.TempDir(), "trace.pcap")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	src, err := OpenMmap(path)
	if runtime.GOOS != "linux" {
		if !errors.Is(err, ErrMmapUnsupported) {
			t.Fatalf("err = %v, want ErrMmapUnsupported off Linux", err)
		}
		return
	}
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for {
		p, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
		src.Release(p)
	}
	if n != 4 {
		t.Errorf("read %d packets, want 4", n)
	}
	if err := src.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if _, err := src.Next(); err == nil || err == io.EOF {
		t.Errorf("Next after Close: err = %v, want a closed error", err)
	}

	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMmap(path); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("empty file: err = %v, want wrapped io.ErrUnexpectedEOF", err)
	}
}
