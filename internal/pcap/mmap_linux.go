//go:build linux

package pcap

import (
	"fmt"
	"io"
	"os"
	"syscall"
)

// OpenMmap maps the trace file at path read-only and returns a
// MapSource over it. The file descriptor is closed before returning
// (the mapping keeps the pages alive); MapSource.Close unmaps them.
// Callers on non-Linux platforms get ErrMmapUnsupported and should fall
// back to the streaming Reader.
func OpenMmap(path string) (*MapSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size == 0 {
		// mmap rejects zero-length maps; report what a Reader would.
		return nil, fmt.Errorf("pcap: reading global header: %w", io.ErrUnexpectedEOF)
	}
	if size != int64(int(size)) {
		return nil, fmt.Errorf("pcap: %s: file too large to map", path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, fmt.Errorf("pcap: mmap %s: %w", path, err)
	}
	// The read path walks records front to back; tell the kernel so
	// readahead stays aggressive. Best-effort — ignore failure.
	_ = syscall.Madvise(data, syscall.MADV_SEQUENTIAL)
	src, err := NewMapSource(data)
	if err != nil {
		_ = syscall.Munmap(data)
		return nil, err
	}
	src.unmap = func() error { return syscall.Munmap(data) }
	return src, nil
}
