package pcap

import "sync"

// Pool recycles Packet structs together with their Data buffers. The
// hot-path contract (see DESIGN.md "Allocation model"):
//
//   - Get hands out a packet whose fields are stale; fill it with
//     Reader.NextInto before use.
//   - Put returns the packet and its buffer for reuse — unless the
//     consumer called Retain, which permanently exempts that packet
//     because slices into its Data have escaped into longer-lived state.
//   - Buffers grow to the trace's largest record and then stabilize, so a
//     steady-state read loop performs no per-packet allocation.
//
// A Pool is safe for concurrent use; Put may be called from any
// goroutine, which is how pipeline workers release packets the router
// handed them.
type Pool struct {
	p sync.Pool
}

// NewPool returns an empty pool.
func NewPool() *Pool {
	return &Pool{p: sync.Pool{New: func() any { return new(Packet) }}}
}

// Get returns a packet for reuse. Its Timestamp, Data contents, and
// OrigLen are stale; only Data's capacity is meaningful.
func (pl *Pool) Get() *Packet {
	p := pl.p.Get().(*Packet)
	p.retained = false
	return p
}

// Put recycles p and its buffer. Retained and nil packets are left alone.
func (pl *Pool) Put(p *Packet) {
	if p == nil || p.retained {
		return
	}
	pl.p.Put(p)
}

// Releaser is implemented by packet sources whose packets are recycled:
// the consumer must hand each packet back via Release once it is done
// with it, unless it called Retain to keep references into the packet's
// Data. Sources that do not implement Releaser allocate per packet, and
// their packets are owned by the consumer indefinitely.
type Releaser interface {
	Release(*Packet)
}

// PooledReader adapts a Reader to a pooled PacketSource: Next draws
// packets from a Pool and NextInto, and Release returns them. It is the
// zero-allocation way to stream a trace through the pipeline.
type PooledReader struct {
	r    *Reader
	pool *Pool
}

// NewPooledReader returns a pooled source over r. A nil pool gets a
// private one; passing a shared pool lets several sequential readers
// (e.g. one per trace file) reuse the same buffers.
func NewPooledReader(r *Reader, pool *Pool) *PooledReader {
	if pool == nil {
		pool = NewPool()
	}
	return &PooledReader{r: r, pool: pool}
}

// Header returns the underlying trace's global header fields.
func (s *PooledReader) Header() Header { return s.r.Header() }

// Next implements PacketSource. The returned packet is valid until
// Release; callers keeping slices into its Data must call Retain first.
func (s *PooledReader) Next() (*Packet, error) {
	p := s.pool.Get()
	if err := s.r.NextInto(p); err != nil {
		s.pool.Put(p)
		return nil, err
	}
	return p, nil
}

// Release implements Releaser, returning p to the pool (a no-op for
// retained packets). Safe to call from any goroutine.
func (s *PooledReader) Release(p *Packet) { s.pool.Put(p) }
