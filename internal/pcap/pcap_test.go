package pcap

import (
	"bytes"
	"encoding/binary"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func ts(sec int64, usec int64) time.Time {
	return time.Unix(sec, usec*1000).UTC()
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 0, LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	payloads := [][]byte{
		{0x01},
		bytes.Repeat([]byte{0xab}, 1500),
		{},
	}
	for i, p := range payloads {
		if err := w.WritePacket(ts(1000+int64(i), 42), p); err != nil {
			t.Fatal(err)
		}
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if r.Header().LinkType != LinkTypeEthernet {
		t.Errorf("link type = %d", r.Header().LinkType)
	}
	if r.Header().SnapLen != 65535 {
		t.Errorf("snaplen = %d, want 65535 default", r.Header().SnapLen)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(payloads) {
		t.Fatalf("read %d packets, want %d", len(got), len(payloads))
	}
	for i, p := range got {
		if !bytes.Equal(p.Data, payloads[i]) {
			t.Errorf("packet %d data mismatch", i)
		}
		if p.OrigLen != len(payloads[i]) {
			t.Errorf("packet %d origlen = %d", i, p.OrigLen)
		}
		if p.Truncated() {
			t.Errorf("packet %d unexpectedly truncated", i)
		}
		if want := ts(1000+int64(i), 42); !p.Timestamp.Equal(want) {
			t.Errorf("packet %d ts = %v, want %v", i, p.Timestamp, want)
		}
	}
}

func TestSnaplenTruncation(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 68, LinkTypeEthernet)
	if err != nil {
		t.Fatal(err)
	}
	full := bytes.Repeat([]byte{0x55}, 1500)
	if err := w.WritePacket(ts(1, 0), full); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 68 {
		t.Errorf("captured %d bytes, want 68", len(p.Data))
	}
	if p.OrigLen != 1500 {
		t.Errorf("origlen = %d, want 1500", p.OrigLen)
	}
	if !p.Truncated() {
		t.Error("Truncated() = false, want true")
	}
}

func TestBadMagic(t *testing.T) {
	data := make([]byte, 24)
	copy(data, []byte("not a pcap file........."))
	if _, err := NewReader(bytes.NewReader(data)); err != ErrBadMagic {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestShortHeader(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("short header should error")
	}
}

func TestTruncatedRecordBody(t *testing.T) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0, LinkTypeEthernet)
	_ = w.WritePacket(ts(1, 0), []byte{1, 2, 3, 4})
	raw := buf.Bytes()
	r, err := NewReader(bytes.NewReader(raw[:len(raw)-2]))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("truncated body: err = %v, want non-EOF error", err)
	}
	// Error should be sticky.
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("sticky error lost: %v", err)
	}
}

func TestBigEndianAndNanos(t *testing.T) {
	// Hand-construct a big-endian nanosecond trace with one packet.
	var buf bytes.Buffer
	gh := make([]byte, 24)
	binary.BigEndian.PutUint32(gh[0:4], MagicNanoseconds)
	binary.BigEndian.PutUint16(gh[4:6], 2)
	binary.BigEndian.PutUint16(gh[6:8], 4)
	binary.BigEndian.PutUint32(gh[16:20], 65535)
	binary.BigEndian.PutUint32(gh[20:24], LinkTypeEthernet)
	buf.Write(gh)
	rec := make([]byte, 16)
	binary.BigEndian.PutUint32(rec[0:4], 1700000000)
	binary.BigEndian.PutUint32(rec[4:8], 123456789) // nanoseconds
	binary.BigEndian.PutUint32(rec[8:12], 2)
	binary.BigEndian.PutUint32(rec[12:16], 2)
	buf.Write(rec)
	buf.Write([]byte{0xde, 0xad})

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Header().Nanos {
		t.Error("Nanos = false, want true")
	}
	p, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	want := time.Unix(1700000000, 123456789).UTC()
	if !p.Timestamp.Equal(want) {
		t.Errorf("ts = %v, want %v", p.Timestamp, want)
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	var buf bytes.Buffer
	gh := make([]byte, 24)
	binary.LittleEndian.PutUint32(gh[0:4], MagicMicroseconds)
	binary.LittleEndian.PutUint32(gh[16:20], 100) // snaplen 100
	binary.LittleEndian.PutUint32(gh[20:24], LinkTypeEthernet)
	buf.Write(gh)
	rec := make([]byte, 16)
	binary.LittleEndian.PutUint32(rec[8:12], 5000) // incl_len > snaplen
	buf.Write(rec)
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("oversize record should error")
	}
}

func TestSliceSource(t *testing.T) {
	pkts := []*Packet{
		{Timestamp: ts(1, 0)},
		{Timestamp: ts(2, 0)},
	}
	s := NewSliceSource(pkts)
	for i := 0; i < 2; i++ {
		p, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if !p.Timestamp.Equal(pkts[i].Timestamp) {
			t.Errorf("packet %d out of order", i)
		}
	}
	if _, err := s.Next(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
}

func TestMergerInterleaves(t *testing.T) {
	a := NewSliceSource([]*Packet{
		{Timestamp: ts(1, 0), Data: []byte{'a'}},
		{Timestamp: ts(3, 0), Data: []byte{'a'}},
		{Timestamp: ts(5, 0), Data: []byte{'a'}},
	})
	b := NewSliceSource([]*Packet{
		{Timestamp: ts(2, 0), Data: []byte{'b'}},
		{Timestamp: ts(4, 0), Data: []byte{'b'}},
	})
	m := NewMerger(a, b)
	got, err := ReadAll(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("merged %d packets, want 5", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Timestamp.Before(got[i-1].Timestamp) {
			t.Fatalf("merge out of order at %d", i)
		}
	}
	wantSrc := "ababa"
	for i, p := range got {
		if p.Data[0] != wantSrc[i] {
			t.Errorf("position %d from source %c, want %c", i, p.Data[0], wantSrc[i])
		}
	}
}

func TestMergerEmptySources(t *testing.T) {
	m := NewMerger(NewSliceSource(nil), NewSliceSource(nil))
	got, err := ReadAll(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("got %d packets from empty sources", len(got))
	}
}

// Property: merging k sorted streams yields a sorted stream containing
// every packet exactly once.
func TestMergerProperty(t *testing.T) {
	f := func(seed int64, sizes [4]uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var sources []PacketSource
		total := 0
		for _, sz := range sizes {
			n := int(sz % 50)
			total += n
			pkts := make([]*Packet, n)
			cur := int64(0)
			for i := range pkts {
				cur += int64(rng.Intn(1000))
				pkts[i] = &Packet{Timestamp: ts(cur, 0)}
			}
			sources = append(sources, NewSliceSource(pkts))
		}
		got, err := ReadAll(NewMerger(sources...))
		if err != nil || len(got) != total {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i].Timestamp.Before(got[i-1].Timestamp) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: write/read round trip preserves data and lengths for arbitrary
// payloads under any snaplen.
func TestRoundTripProperty(t *testing.T) {
	f := func(payload []byte, snap uint16) bool {
		var buf bytes.Buffer
		w, err := NewWriter(&buf, uint32(snap), LinkTypeEthernet)
		if err != nil {
			return false
		}
		if err := w.WritePacket(ts(100, 5), payload); err != nil {
			return false
		}
		r, err := NewReader(&buf)
		if err != nil {
			return false
		}
		p, err := r.Next()
		if err != nil {
			return false
		}
		wantLen := len(payload)
		if int(w.SnapLen()) < wantLen {
			wantLen = int(w.SnapLen())
		}
		return len(p.Data) == wantLen &&
			bytes.Equal(p.Data, payload[:wantLen]) &&
			p.OrigLen == len(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkWritePacket(b *testing.B) {
	w, _ := NewWriter(io.Discard, 0, LinkTypeEthernet)
	data := bytes.Repeat([]byte{0xaa}, 500)
	t0 := ts(1, 0)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.WritePacket(t0, data)
	}
}

func BenchmarkReadPacket(b *testing.B) {
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 0, LinkTypeEthernet)
	data := bytes.Repeat([]byte{0xaa}, 500)
	for i := 0; i < 1000; i++ {
		_ = w.WritePacket(ts(int64(i), 0), data)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, _ := NewReader(bytes.NewReader(raw))
		for {
			if _, err := r.Next(); err != nil {
				break
			}
		}
	}
}
