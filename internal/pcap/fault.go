package pcap

import (
	"errors"
	"io"
)

// SourceFault is the optional error classification a PacketSource can
// attach to its read errors. The pipeline's degrade-and-continue policy
// uses it to build the SourceError census without depending on any
// particular source implementation: the fault-injection wrapper
// (internal/faults) implements it on every injected error, and errors
// that do not implement it fall back to ClassifyReadError.
type SourceFault interface {
	error
	// FaultKind names the failure class ("read-error", "torn-record",
	// "short-read", "early-eof", ...). Kinds are census keys, so they
	// must be stable strings.
	FaultKind() string
	// LostBytes is the capture payload lost to this fault: the dropped
	// record's captured length, or the bytes truncated off a short read.
	// Zero when unknown.
	LostBytes() int64
	// Recoverable reports whether the source can yield further packets
	// after this error. Terminal faults end the trace; recoverable ones
	// lose only the affected record.
	Recoverable() bool
}

// ClassifyReadError maps a source read error without SourceFault
// classification onto a census kind. Real pcap.Reader failures land
// here: a record cut off by the end of the stream wraps
// io.ErrUnexpectedEOF ("torn-record"); anything else — bad record
// header, length exceeding snaplen, I/O failure — is a generic
// "read-error". Reader errors are sticky, so both are terminal.
func ClassifyReadError(err error) (kind string, recoverable bool) {
	var sf SourceFault
	if errors.As(err, &sf) {
		return sf.FaultKind(), sf.Recoverable()
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return "torn-record", false
	}
	return "read-error", false
}

// FaultLostBytes extracts the byte-loss estimate from a classified read
// error (0 when the error carries none).
func FaultLostBytes(err error) int64 {
	var sf SourceFault
	if errors.As(err, &sf) {
		return sf.LostBytes()
	}
	return 0
}
