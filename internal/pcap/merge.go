package pcap

import (
	"container/heap"
	"io"
)

// PacketSource yields packets in timestamp order, ending with io.EOF. Both
// *Reader and in-memory traces satisfy it.
type PacketSource interface {
	Next() (*Packet, error)
}

// SliceSource adapts an in-memory packet slice to PacketSource.
type SliceSource struct {
	pkts []*Packet
	idx  int
}

// NewSliceSource returns a source over pkts; the slice is not copied and
// must already be in timestamp order.
func NewSliceSource(pkts []*Packet) *SliceSource { return &SliceSource{pkts: pkts} }

// Next implements PacketSource.
func (s *SliceSource) Next() (*Packet, error) {
	if s.idx >= len(s.pkts) {
		return nil, io.EOF
	}
	p := s.pkts[s.idx]
	s.idx++
	return p, nil
}

type mergeEntry struct {
	pkt *Packet
	src int
}

type mergeHeap []mergeEntry

func (h mergeHeap) Len() int { return len(h) }
func (h mergeHeap) Less(i, j int) bool {
	return h[i].pkt.Timestamp.Before(h[j].pkt.Timestamp)
}
func (h mergeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *mergeHeap) Push(x interface{}) { *h = append(*h, x.(mergeEntry)) }
func (h *mergeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Merger performs a timestamp-ordered k-way merge over several packet
// sources — the software analogue of the paper's merge of four
// clock-synchronized NIC streams into one bidirectional trace.
type Merger struct {
	sources []PacketSource
	h       mergeHeap
	primed  bool
	err     error
}

// NewMerger returns a merger over the given sources. Each source must
// itself be timestamp-ordered.
func NewMerger(sources ...PacketSource) *Merger {
	return &Merger{sources: sources}
}

func (m *Merger) prime() error {
	for i, s := range m.sources {
		p, err := s.Next()
		if err == io.EOF {
			continue
		}
		if err != nil {
			return err
		}
		m.h = append(m.h, mergeEntry{pkt: p, src: i})
	}
	heap.Init(&m.h)
	m.primed = true
	return nil
}

// Next implements PacketSource, returning the globally earliest packet.
func (m *Merger) Next() (*Packet, error) {
	if m.err != nil {
		return nil, m.err
	}
	if !m.primed {
		if err := m.prime(); err != nil {
			m.err = err
			return nil, err
		}
	}
	if len(m.h) == 0 {
		m.err = io.EOF
		return nil, io.EOF
	}
	e := heap.Pop(&m.h).(mergeEntry)
	next, err := m.sources[e.src].Next()
	if err == nil {
		heap.Push(&m.h, mergeEntry{pkt: next, src: e.src})
	} else if err != io.EOF {
		m.err = err
		return nil, err
	}
	return e.pkt, nil
}

// ReadAll drains any PacketSource into a slice.
func ReadAll(src PacketSource) ([]*Packet, error) {
	var pkts []*Packet
	for {
		p, err := src.Next()
		if err == io.EOF {
			return pkts, nil
		}
		if err != nil {
			return pkts, err
		}
		pkts = append(pkts, p)
	}
}
