package kmerge

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// elem carries enough provenance to check stability: key is the sort
// key (deliberately colliding), run/seq identify where the element
// came from.
type elem struct {
	key      int
	run, seq int
}

func elemLess(a, b elem) bool { return a.key < b.key }

func elemKey(e elem) int { return e.key }

// buildRuns makes k pre-sorted runs of random lengths (some empty) with
// keys drawn from a small space so duplicates are common.
func buildRuns(rng *rand.Rand, k, maxLen, keySpace int) [][]elem {
	runs := make([][]elem, k)
	for r := range runs {
		n := rng.Intn(maxLen + 1)
		keys := make([]int, n)
		for i := range keys {
			keys[i] = rng.Intn(keySpace)
		}
		sort.Ints(keys)
		run := make([]elem, n)
		for i, key := range keys {
			run[i] = elem{key: key, run: r, seq: i}
		}
		runs[r] = run
	}
	return runs
}

// reference is the specified behavior: append all runs in index order,
// then stable-sort by key. Stable sort keeps equal keys in append
// order, i.e. by (run index, within-run position) — exactly the merge's
// tie rule.
func reference(runs [][]elem) []elem {
	var all []elem
	for _, r := range runs {
		all = append(all, r...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].key < all[j].key })
	return all
}

// headScanMerge is the O(n·k) linear scan this package replaced
// (pipeline.SortedConns / core.mergeUDPEvents before the loser tree):
// every pop rescans all run heads. Kept here as the property-test
// oracle's second witness and the micro-benchmark baseline.
func headScanMerge(runs [][]elem) []elem {
	var n int
	live := make([][]elem, 0, len(runs))
	for _, r := range runs {
		if len(r) > 0 {
			live = append(live, r)
			n += len(r)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	out := make([]elem, 0, n)
	heads := make([]int, len(live))
	for len(out) < n {
		best := -1
		var bestKey int
		for r, h := range heads {
			if h >= len(live[r]) {
				continue
			}
			if best < 0 || live[r][h].key < bestKey {
				best, bestKey = r, live[r][h].key
			}
		}
		out = append(out, live[best][heads[best]])
		heads[best]++
	}
	return out
}

func checkEqual(t *testing.T, got, want []elem, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: merged %d elements, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: element %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestMergeMatchesSortProperty is the package contract: for seeded
// random run shapes — 0, 1, and many runs, empty runs mixed in, heavy
// key duplication — Merge is element-for-element identical to
// append-all-then-stable-sort (and to the old head scan, whose
// first-strictly-smaller-head rule encodes the same tie order).
func TestMergeMatchesSortProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{0, 1, 2, 3, 5, 8, 17, 32} {
		for trial := 0; trial < 25; trial++ {
			runs := buildRuns(rng, k, 50, 12)
			want := reference(runs)
			label := fmt.Sprintf("k=%d trial=%d", k, trial)
			checkEqual(t, Merge(runs, elemLess), want, label)
			checkEqual(t, MergeBy(runs, elemKey), want, label+" (MergeBy)")
			checkEqual(t, headScanMerge(runs), want, label+" (head-scan oracle)")
		}
	}
}

// TestMergeEdgeShapes pins the shapes property trials may miss.
func TestMergeEdgeShapes(t *testing.T) {
	if got := Merge(nil, elemLess); got != nil {
		t.Errorf("Merge(nil) = %v, want nil", got)
	}
	if got := Merge([][]elem{{}, nil, {}}, elemLess); got != nil {
		t.Errorf("Merge(all empty) = %v, want nil", got)
	}
	if got := MergeBy(nil, elemKey); got != nil {
		t.Errorf("MergeBy(nil) = %v, want nil", got)
	}
	// A single non-empty run among empties comes back as that very
	// slice — the documented no-copy shortcut.
	run := []elem{{key: 1}, {key: 2}}
	got := Merge([][]elem{{}, run, nil}, elemLess)
	if len(got) != 2 || &got[0] != &run[0] {
		t.Error("single-run merge did not return the run itself")
	}
	if got := MergeBy([][]elem{nil, run}, elemKey); len(got) != 2 || &got[0] != &run[0] {
		t.Error("single-run MergeBy did not return the run itself")
	}
	// All-equal keys across many runs: pure tie-breaking. Output must
	// walk the runs in index order, each run intact.
	equal := [][]elem{
		{{key: 5, run: 0, seq: 0}, {key: 5, run: 0, seq: 1}},
		{{key: 5, run: 1, seq: 0}},
		{{key: 5, run: 2, seq: 0}, {key: 5, run: 2, seq: 1}, {key: 5, run: 2, seq: 2}},
	}
	checkEqual(t, Merge(equal, elemLess), reference(equal), "all-equal keys")
	checkEqual(t, MergeBy(equal, elemKey), reference(equal), "all-equal keys (MergeBy)")
}

// TestMergeUniqueKeysTotalOrder mirrors the in-repo call sites, whose
// keys (global packet indices) are unique: the merged sequence is the
// fully sorted union.
func TestMergeUniqueKeysTotalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		perm := rng.Perm(500)
		k := 2 + rng.Intn(15)
		runs := make([][]elem, k)
		for i, v := range perm {
			r := rng.Intn(k)
			runs[r] = append(runs[r], elem{key: v, run: r, seq: i})
		}
		for r := range runs {
			sort.Slice(runs[r], func(i, j int) bool { return runs[r][i].key < runs[r][j].key })
		}
		for name, got := range map[string][]elem{
			"Merge":   Merge(runs, elemLess),
			"MergeBy": MergeBy(runs, elemKey),
		} {
			if len(got) != len(perm) {
				t.Fatalf("trial %d %s: merged %d, want %d", trial, name, len(got), len(perm))
			}
			for i, e := range got {
				if e.key != i {
					t.Fatalf("trial %d %s: position %d holds key %d", trial, name, i, e.key)
				}
			}
		}
	}
}

// benchRuns splits total elements with unique ascending keys across k
// runs round-robin — the shape SortedConns sees (hash-sharded global
// indices, every run interleaved with every other, worst case for a
// merge's branch predictor).
func benchRuns(total, k int) [][]elem {
	runs := make([][]elem, k)
	for i := 0; i < total; i++ {
		r := i % k
		runs[r] = append(runs[r], elem{key: i, run: r})
	}
	return runs
}

// BenchmarkMergeBy vs BenchmarkHeadScan at k∈{2,8,32} is the
// O(n log k) vs O(n·k) pin: the EXPERIMENTS.md table records the
// ratio, and the k=32 point is where the head scan's linear rescan
// cost shows (the acceptance bar is ≥3× there). MergeBy is what the
// analyzer's serial path runs; BenchmarkMerge prices the fully generic
// less-func variant for comparison.
func BenchmarkMergeBy(b *testing.B) {
	const total = 65536
	for _, k := range []int{2, 8, 32} {
		runs := benchRuns(total, k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := MergeBy(runs, elemKey); len(got) != total {
					b.Fatal("short merge")
				}
			}
		})
	}
}

func BenchmarkMerge(b *testing.B) {
	const total = 65536
	for _, k := range []int{2, 8, 32} {
		runs := benchRuns(total, k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := Merge(runs, elemLess); len(got) != total {
					b.Fatal("short merge")
				}
			}
		})
	}
}

func BenchmarkHeadScan(b *testing.B) {
	const total = 65536
	for _, k := range []int{2, 8, 32} {
		runs := benchRuns(total, k)
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if got := headScanMerge(runs); len(got) != total {
					b.Fatal("short merge")
				}
			}
		})
	}
}
