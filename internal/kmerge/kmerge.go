// Package kmerge merges k pre-sorted runs into one sorted slice in
// O(n log k) comparisons using a loser tree (a tournament tree that
// stores, at each internal node, the loser of the match played there,
// with the overall winner kept at the root). Re-inserting the winner's
// successor replays exactly one root-to-leaf path — log k comparisons —
// instead of rescanning every run head the way a linear k-way scan
// does.
//
// The repository's two serial-path merges go through this package:
// pipeline.Result.SortedConns (per-shard connection runs → canonical
// first-packet order) and core's mergeUDPEvents (per-shard datagram
// runs → global arrival order). Both sit between pipeline drain and
// replay fan-out, on the one segment of the analysis that cannot be
// parallelized, so their cost is pure Amdahl serial residue: at k
// shards the old head scan paid O(n·k) comparisons and grew linearly
// with the worker count it was supposed to be amortizing.
//
// Determinism: the merge is stable across runs — when two heads
// compare equal (neither less(a,b) nor less(b,a)), the element from
// the lower-indexed run is emitted first. Callers that index runs by
// shard therefore get the same tie order a serial single-shard pass
// would have produced, which is what the byte-identical-reports
// guarantee leans on.
package kmerge

import "cmp"

// Merge merges the pre-sorted runs under less into one ascending
// slice. Runs may be empty or nil; a nil or all-empty runs set yields
// nil. When exactly one run is non-empty it is returned directly (no
// copy) — callers that go on to mutate the result must be holding
// throwaway runs, which both in-repo call sites are.
//
// Ties across runs resolve to the lower run index (stable), and ties
// within a run keep their order (elements of one run are never
// reordered), so Merge(runs) is element-for-element identical to
// appending all runs in index order and stable-sorting.
//
// When the sort key is an ordered scalar, prefer MergeBy: it hoists
// the key per head and compares inline, roughly halving the merge's
// constant factor (less here is an indirect call per match).
func Merge[T any](runs [][]T, less func(a, b T) bool) []T {
	live, n := liveRuns(runs)
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	case 2:
		return merge2(live[0], live[1], less, n)
	}
	out := make([]T, n)
	t := newLoserTree(live, less)
	for i := range out {
		w := t.node[0]
		out[i] = t.runs[w][t.heads[w]]
		t.heads[w]++
		t.replay(w)
	}
	return out
}

// MergeBy merges the pre-sorted runs ascending by key(e). Semantics
// are exactly Merge's (same tie rules, same no-copy single-run
// shortcut) with the comparison specialized: each run's current key is
// cached as its head advances — one key() call per element — and every
// tournament match is an inline ordered compare instead of an indirect
// less() call. This is the variant on the analyzer's serial path
// (pipeline.SortedConns, core's UDP event merge), where the key is a
// global packet index.
func MergeBy[T any, K cmp.Ordered](runs [][]T, key func(T) K) []T {
	live, n := liveRuns(runs)
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	k := len(live)
	t := keyedTree[T, K]{
		node:   make([]int, k),
		heads:  make([]int, k),
		curKey: make([]K, k),
		done:   make([]bool, k),
		runs:   live,
	}
	for i := range t.node {
		t.node[i] = -1
	}
	for i, r := range live {
		t.curKey[i] = key(r[0])
	}
	for i := range live {
		t.replay(i)
	}
	out := make([]T, n)
	for i := range out {
		w := t.node[0]
		h := t.heads[w]
		out[i] = t.runs[w][h]
		h++
		t.heads[w] = h
		if h < len(t.runs[w]) {
			t.curKey[w] = key(t.runs[w][h])
		} else {
			t.done[w] = true
		}
		t.replay(w)
	}
	return out
}

// liveRuns drops empty runs (preserving order, so tie-breaking by
// filtered index matches tie-breaking by original index) and counts
// the total elements.
func liveRuns[T any](runs [][]T) ([][]T, int) {
	live := make([][]T, 0, len(runs))
	n := 0
	for _, r := range runs {
		if len(r) > 0 {
			live = append(live, r)
			n += len(r)
		}
	}
	return live, n
}

// keyedTree is the loser tree specialized to cached ordered keys; see
// loserTree for the node layout and sentinel rules.
type keyedTree[T any, K cmp.Ordered] struct {
	node   []int
	heads  []int
	curKey []K
	done   []bool
	runs   [][]T
}

func (t *keyedTree[T, K]) replay(i int) {
	winner := i
	for parent := (i + len(t.node)) / 2; parent > 0; parent >>= 1 {
		if t.wins(t.node[parent], winner) {
			t.node[parent], winner = winner, t.node[parent]
		}
	}
	t.node[0] = winner
}

// wins reports whether run a's head beats run b's: the -1 seeding
// sentinel beats everything, exhausted runs lose to everything real,
// ties break to the lower run index. One ordered compare per match.
func (t *keyedTree[T, K]) wins(a, b int) bool {
	if a < 0 {
		return true
	}
	if b < 0 {
		return false
	}
	if t.done[a] {
		return false
	}
	if t.done[b] {
		return true
	}
	if a < b {
		// a wins unless b is strictly smaller (tie → lower index = a).
		return !(t.curKey[b] < t.curKey[a])
	}
	return t.curKey[a] < t.curKey[b]
}

// merge2 is the two-run fast path: a plain guarded two-finger merge,
// cheaper than any tree for k == 2 (the most common parallel shape —
// pipeline workers default to small counts). Ties go to run 0.
func merge2[T any](a, b []T, less func(x, y T) bool, n int) []T {
	out := make([]T, 0, n)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if less(b[j], a[i]) {
			out = append(out, b[j])
			j++
		} else {
			out = append(out, a[i])
			i++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// loserTree is the tournament state over k := len(runs) non-empty
// runs. node has k slots: node[0] holds the current overall winner's
// run index and node[1:] the internal nodes, each storing the loser of
// the last match played there. Leaf i occupies virtual position k+i,
// so its parent chain is (k+i)/2, (k+i)/4, … 1.
type loserTree[T any] struct {
	node  []int
	heads []int
	runs  [][]T
	less  func(a, b T) bool
}

func newLoserTree[T any](runs [][]T, less func(a, b T) bool) *loserTree[T] {
	k := len(runs)
	t := &loserTree[T]{
		node:  make([]int, k),
		heads: make([]int, k),
		runs:  runs,
		less:  less,
	}
	// Seed every node with the -1 sentinel, which wins every match it
	// plays (see wins): as each leaf is replayed in, the sentinel keeps
	// moving up and out of the way, so after k replays every internal
	// node holds a real loser and node[0] the real winner.
	for i := range t.node {
		t.node[i] = -1
	}
	for i := range runs {
		t.replay(i)
	}
	return t
}

// replay re-runs leaf i's matches from its parent up to the root,
// leaving the tournament winner at node[0]. At every node the winner
// of (occupant, incoming) moves up and the loser stays.
func (t *loserTree[T]) replay(i int) {
	winner := i
	for parent := (i + len(t.node)) / 2; parent > 0; parent /= 2 {
		if t.wins(t.node[parent], winner) {
			t.node[parent], winner = winner, t.node[parent]
		}
	}
	t.node[0] = winner
}

// wins reports whether run a's head beats run b's head. The -1
// initialization sentinel beats everything (it must bubble out of the
// tree during seeding); an exhausted run loses to everything real, so
// it sinks to the bottom and stays there. Ties break to the lower run
// index — the stability rule.
func (t *loserTree[T]) wins(a, b int) bool {
	if a < 0 {
		return true
	}
	if b < 0 {
		return false
	}
	if t.heads[a] >= len(t.runs[a]) {
		return false
	}
	if t.heads[b] >= len(t.runs[b]) {
		return true
	}
	x, y := t.runs[a][t.heads[a]], t.runs[b][t.heads[b]]
	if a < b {
		// a wins unless b is strictly smaller (tie → lower index = a).
		return !t.less(y, x)
	}
	return t.less(x, y)
}
