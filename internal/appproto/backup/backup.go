// Package backup models the three backup applications of the paper's
// §5.2.3 and Table 15: Veritas (separate control and data connections,
// data strictly client → server), Dantz (control and data multiplexed in
// one connection with a striking degree of bidirectionality — sometimes
// tens of MB each way within a single connection), and the "Connected"
// service backing up to an external site. The paper analyzes backup purely
// at the transport level (it is a rarity dominated by a few giant
// connections), so this package's job is to emit connection plans with the
// right shape; the analyzer side is the ordinary flow accounting.
package backup

// App identifies a backup application.
type App string

// The Table 15 applications.
const (
	VeritasCtrl App = "VERITAS-BACKUP-CTRL"
	VeritasData App = "VERITAS-BACKUP-DATA"
	Dantz       App = "DANTZ"
	Connected   App = "CONNECTED-BACKUP"
)

// Transfer is one bulk phase within a connection.
type Transfer struct {
	FromClient bool
	Bytes      int64
}

// Plan describes one backup connection's transfer schedule.
type Plan struct {
	App       App
	Transfers []Transfer
}

// ClientBytes sums client → server payload.
func (p *Plan) ClientBytes() int64 {
	var n int64
	for _, t := range p.Transfers {
		if t.FromClient {
			n += t.Bytes
		}
	}
	return n
}

// ServerBytes sums server → client payload.
func (p *Plan) ServerBytes() int64 {
	var n int64
	for _, t := range p.Transfers {
		if !t.FromClient {
			n += t.Bytes
		}
	}
	return n
}

// Bidirectional reports whether both directions carry at least minEach
// bytes — the Dantz signature the paper highlights.
func (p *Plan) Bidirectional(minEach int64) bool {
	return p.ClientBytes() >= minEach && p.ServerBytes() >= minEach
}

// VeritasControlPlan is the small command exchange on the control
// connection.
func VeritasControlPlan() *Plan {
	return &Plan{App: VeritasCtrl, Transfers: []Transfer{
		{FromClient: true, Bytes: 400},
		{FromClient: false, Bytes: 200},
		{FromClient: true, Bytes: 150},
		{FromClient: false, Bytes: 80},
	}}
}

// VeritasDataPlan is a one-way client → server dump of the given size.
// Veritas data connections in the traces were exclusively client-to-server.
func VeritasDataPlan(bytes int64) *Plan {
	return &Plan{App: VeritasData, Transfers: []Transfer{
		{FromClient: true, Bytes: bytes},
	}}
}

// DantzPlan interleaves client-heavy data with substantial server → client
// phases (fingerprint/validation exchanges, per the paper's speculation),
// possibly tens of MB in both directions within one connection.
func DantzPlan(clientBytes, serverBytes int64) *Plan {
	p := &Plan{App: Dantz}
	// Interleave in chunks so the bidirectionality exists *within* the
	// connection, not merely across connections.
	const chunks = 8
	for i := 0; i < chunks; i++ {
		p.Transfers = append(p.Transfers,
			Transfer{FromClient: true, Bytes: clientBytes / chunks},
			Transfer{FromClient: false, Bytes: serverBytes / chunks},
		)
	}
	return p
}

// ConnectedPlan is the modest client → external-site upload.
func ConnectedPlan(bytes int64) *Plan {
	return &Plan{App: Connected, Transfers: []Transfer{
		{FromClient: true, Bytes: 300},
		{FromClient: false, Bytes: 100},
		{FromClient: true, Bytes: bytes},
	}}
}
