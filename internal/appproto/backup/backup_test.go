package backup

import (
	"testing"
	"testing/quick"
)

func TestVeritasDataOneWay(t *testing.T) {
	p := VeritasDataPlan(500 << 20)
	if p.ClientBytes() != 500<<20 {
		t.Errorf("client bytes = %d", p.ClientBytes())
	}
	if p.ServerBytes() != 0 {
		t.Errorf("Veritas data must be strictly client→server, got %d server bytes", p.ServerBytes())
	}
	if p.Bidirectional(1) {
		t.Error("Veritas data should not be bidirectional")
	}
	if p.App != VeritasData {
		t.Errorf("app = %s", p.App)
	}
}

func TestVeritasControlSmall(t *testing.T) {
	p := VeritasControlPlan()
	if total := p.ClientBytes() + p.ServerBytes(); total > 10_000 {
		t.Errorf("control plan = %d bytes, should be tiny", total)
	}
}

func TestDantzBidirectionalWithinConnection(t *testing.T) {
	p := DantzPlan(100<<20, 40<<20)
	if !p.Bidirectional(10 << 20) {
		t.Errorf("Dantz should carry tens of MB both ways: c=%d s=%d", p.ClientBytes(), p.ServerBytes())
	}
	// Interleaving: direction must alternate, not be two monolithic phases.
	flips := 0
	for i := 1; i < len(p.Transfers); i++ {
		if p.Transfers[i].FromClient != p.Transfers[i-1].FromClient {
			flips++
		}
	}
	if flips < 4 {
		t.Errorf("only %d direction changes; bidirectionality should be within-connection", flips)
	}
}

func TestConnectedUpload(t *testing.T) {
	p := ConnectedPlan(2 << 20)
	if p.ClientBytes() < 2<<20 {
		t.Errorf("client bytes = %d", p.ClientBytes())
	}
	if p.ServerBytes() >= p.ClientBytes() {
		t.Error("Connected backup is an upload service")
	}
}

// Property: byte accounting identities hold for any plan size.
func TestAccountingProperty(t *testing.T) {
	f := func(c, s uint32) bool {
		p := DantzPlan(int64(c), int64(s))
		// Chunked division may round down by at most `chunks` bytes/dir.
		cb, sb := p.ClientBytes(), p.ServerBytes()
		return cb <= int64(c) && cb >= int64(c)-8 && sb <= int64(s) && sb >= int64(s)-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
