package sunrpc

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestProcNames(t *testing.T) {
	cases := map[uint32]string{
		ProcRead:    "Read",
		ProcWrite:   "Write",
		ProcGetAttr: "GetAttr",
		ProcLookup:  "LookUp",
		ProcAccess:  "Access",
		ProcReadDir: "Other",
		ProcNull:    "Other",
	}
	for proc, want := range cases {
		if got := ProcName(proc); got != want {
			t.Errorf("ProcName(%d) = %q", proc, got)
		}
	}
}

func TestWriteCallRoundTrip(t *testing.T) {
	m := &Msg{XID: 77, Type: MsgCall, Prog: ProgNFS, Vers: 3, Proc: ProcWrite, DataLen: 8192}
	raw := Encode(m)
	got, err := Decode(raw, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.XID != 77 || got.Proc != ProcWrite || got.DataLen != 8192 {
		t.Errorf("got %+v", got)
	}
	if len(raw) < 8192 {
		t.Errorf("write call should carry data, len = %d", len(raw))
	}
}

func TestReadCallSmallButReplyLarge(t *testing.T) {
	call := Encode(&Msg{XID: 1, Type: MsgCall, Prog: ProgNFS, Vers: 3, Proc: ProcRead, DataLen: 8192})
	if len(call) > 200 {
		t.Errorf("read call len = %d, should be small", len(call))
	}
	reply := Encode(&Msg{XID: 1, Type: MsgReply, Proc: ProcRead, Status: NFSOK, DataLen: 8192})
	if len(reply) < 8192 {
		t.Errorf("read reply len = %d, should carry data", len(reply))
	}
	got, err := Decode(reply, ProcRead)
	if err != nil {
		t.Fatal(err)
	}
	if got.DataLen != 8192 || got.Status != NFSOK {
		t.Errorf("got %+v", got)
	}
}

func TestLookupFailureReply(t *testing.T) {
	reply := Encode(&Msg{XID: 2, Type: MsgReply, Proc: ProcLookup, Status: NFSErrNoEnt})
	got, err := Decode(reply, ProcLookup)
	if err != nil {
		t.Fatal(err)
	}
	if got.Status != NFSErrNoEnt {
		t.Errorf("status = %d", got.Status)
	}
}

func TestRecordMarking(t *testing.T) {
	msgs := [][]byte{
		Encode(&Msg{XID: 1, Type: MsgCall, Prog: ProgNFS, Vers: 3, Proc: ProcGetAttr}),
		Encode(&Msg{XID: 2, Type: MsgCall, Prog: ProgNFS, Vers: 3, Proc: ProcAccess}),
	}
	var stream []byte
	for _, m := range msgs {
		stream = append(stream, MarkRecord(m)...)
	}
	var got [][]byte
	SplitRecords(stream, func(rec []byte) {
		cp := make([]byte, len(rec))
		copy(cp, rec)
		got = append(got, cp)
	})
	if len(got) != 2 {
		t.Fatalf("split %d records", len(got))
	}
	for i := range got {
		if string(got[i]) != string(msgs[i]) {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestSplitRecordsTruncated(t *testing.T) {
	rec := MarkRecord(Encode(&Msg{XID: 1, Type: MsgCall, Prog: ProgNFS, Vers: 3, Proc: ProcRead}))
	count := 0
	SplitRecords(rec[:len(rec)-3], func([]byte) { count++ })
	if count != 0 {
		t.Error("truncated record should not be delivered")
	}
}

func TestDecodeShort(t *testing.T) {
	if _, err := Decode([]byte{1, 2}, 0); err != ErrShort {
		t.Errorf("err = %v", err)
	}
}

var (
	cli = netip.MustParseAddr("10.1.1.9")
	srv = netip.MustParseAddr("10.0.0.49")
)

func TestAnalyzerCallReply(t *testing.T) {
	a := NewAnalyzer()
	a.Message(cli, srv, Encode(&Msg{XID: 5, Type: MsgCall, Prog: ProgNFS, Vers: 3, Proc: ProcRead, DataLen: 8192}))
	a.Message(srv, cli, Encode(&Msg{XID: 5, Type: MsgReply, Proc: ProcRead, Status: NFSOK, DataLen: 8192}))
	if a.Requests.Get("Read") != 1 {
		t.Errorf("read requests = %d", a.Requests.Get("Read"))
	}
	if a.Bytes.Get("Read") != 8192 {
		t.Errorf("read bytes = %d", a.Bytes.Get("Read"))
	}
	if a.OK != 1 || a.Failed != 0 {
		t.Errorf("ok=%d failed=%d", a.OK, a.Failed)
	}
	if a.PerPair[pairOf(cli, srv)] != 1 {
		t.Error("per-pair count")
	}
	if a.ReqSizes.N() != 1 || a.ReplySizes.N() != 1 {
		t.Error("size dists")
	}
}

func TestAnalyzerWriteBytesOnCall(t *testing.T) {
	a := NewAnalyzer()
	a.Message(cli, srv, Encode(&Msg{XID: 9, Type: MsgCall, Prog: ProgNFS, Vers: 3, Proc: ProcWrite, DataLen: 4096}))
	if a.Bytes.Get("Write") != 4096 {
		t.Errorf("write bytes = %d", a.Bytes.Get("Write"))
	}
}

func TestAnalyzerFailureRate(t *testing.T) {
	a := NewAnalyzer()
	for i := 0; i < 10; i++ {
		xid := uint32(i)
		a.Message(cli, srv, Encode(&Msg{XID: xid, Type: MsgCall, Prog: ProgNFS, Vers: 3, Proc: ProcLookup}))
		status := NFSOK
		if i < 2 {
			status = NFSErrNoEnt
		}
		a.Message(srv, cli, Encode(&Msg{XID: xid, Type: MsgReply, Proc: ProcLookup, Status: status}))
	}
	if got := a.SuccessRate(); got != 0.8 {
		t.Errorf("success rate = %v, want 0.8", got)
	}
}

func TestAnalyzerNonNFSIgnored(t *testing.T) {
	a := NewAnalyzer()
	a.Message(cli, srv, Encode(&Msg{XID: 1, Type: MsgCall, Prog: 100000, Vers: 2, Proc: 4})) // portmapper
	if a.Requests.Total() != 0 {
		t.Error("non-NFS program counted")
	}
}

func TestAnalyzerOrphanReplyIgnored(t *testing.T) {
	a := NewAnalyzer()
	a.Message(srv, cli, Encode(&Msg{XID: 404, Type: MsgReply, Proc: ProcRead, Status: NFSOK, DataLen: 100}))
	if a.OK != 0 || a.ReplySizes.N() != 0 {
		t.Error("orphan reply processed")
	}
}

// Property: encode/decode round-trips calls for every procedure and data
// size; dual-mode sizing holds (write calls ≈ 100 + data, others small).
func TestCallRoundTripProperty(t *testing.T) {
	f := func(xid uint32, procSel, size uint16) bool {
		procs := []uint32{ProcGetAttr, ProcLookup, ProcAccess, ProcRead, ProcWrite}
		proc := procs[int(procSel)%len(procs)]
		dataLen := 0
		if proc == ProcWrite || proc == ProcRead {
			dataLen = int(size % 9000)
		}
		m := &Msg{XID: xid, Type: MsgCall, Prog: ProgNFS, Vers: 3, Proc: proc, DataLen: dataLen}
		raw := Encode(m)
		got, err := Decode(raw, 0)
		if err != nil || got.XID != xid || got.Proc != proc {
			return false
		}
		if proc == ProcWrite && got.DataLen != dataLen {
			return false
		}
		if proc != ProcWrite && len(raw) > 200 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeFuzz(t *testing.T) {
	f := func(data []byte, proc uint32) bool {
		_, _ = Decode(data, proc)
		SplitRecords(data, func([]byte) {})
		a := NewAnalyzer()
		a.Message(cli, srv, data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeWrite(b *testing.B) {
	m := &Msg{XID: 1, Type: MsgCall, Prog: ProgNFS, Vers: 3, Proc: ProcWrite, DataLen: 8192}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Encode(m)
	}
}
