// Package sunrpc implements the ONC RPC (RFC 1831) message format and the
// NFSv3 procedures the paper's §5.2.2 analysis reports: GETATTR, LOOKUP,
// ACCESS, READ and WRITE, over both UDP datagrams and TCP with 4-byte
// record marking. The paper found — against expectation — that most NFS
// host pairs still used UDP in 2004-05, so both transports are first-class
// here.
package sunrpc

import (
	"encoding/binary"
	"errors"
)

// RPC message types.
const (
	MsgCall  uint32 = 0
	MsgReply uint32 = 1
)

// ProgNFS is the NFS program number.
const ProgNFS uint32 = 100003

// NFSv3 procedure numbers.
const (
	ProcNull    uint32 = 0
	ProcGetAttr uint32 = 1
	ProcLookup  uint32 = 3
	ProcAccess  uint32 = 4
	ProcRead    uint32 = 6
	ProcWrite   uint32 = 7
	ProcReadDir uint32 = 16
)

// NFSv3 status codes the analysis distinguishes.
const (
	NFSOK       uint32 = 0
	NFSErrNoEnt uint32 = 2
	NFSErrIO    uint32 = 5
)

// ProcName maps a procedure to the paper's Table 13 row names.
func ProcName(proc uint32) string {
	switch proc {
	case ProcRead:
		return "Read"
	case ProcWrite:
		return "Write"
	case ProcGetAttr:
		return "GetAttr"
	case ProcLookup:
		return "LookUp"
	case ProcAccess:
		return "Access"
	default:
		return "Other"
	}
}

// Msg is one RPC call or reply with the NFS fields the analysis uses.
type Msg struct {
	XID  uint32
	Type uint32 // MsgCall or MsgReply
	// Call fields.
	Prog, Vers, Proc uint32
	// Reply fields.
	Status uint32 // NFS status from the result body
	// DataLen is file payload carried (WRITE call args, READ reply data).
	DataLen int
}

// Errors.
var (
	ErrShort = errors.New("sunrpc: truncated message")
)

const fhSize = 32 // NFSv3 file handles in these workloads

// Encode serializes a message (without TCP record marking; see MarkRecord).
// Calls carry AUTH_UNIX-shaped credentials; WRITE calls and READ replies
// carry DataLen bytes of file payload.
func Encode(m *Msg) []byte {
	b := make([]byte, 0, 64+m.DataLen)
	put32 := func(v uint32) { b = binary.BigEndian.AppendUint32(b, v) }
	put32(m.XID)
	put32(m.Type)
	if m.Type == MsgCall {
		put32(2) // RPC version
		put32(m.Prog)
		put32(m.Vers)
		put32(m.Proc)
		// Credential: AUTH_UNIX, 16 opaque bytes; verifier: AUTH_NONE.
		put32(1)
		put32(16)
		b = append(b, make([]byte, 16)...)
		put32(0)
		put32(0)
		// Arguments: file handle for all procs.
		b = append(b, make([]byte, fhSize)...)
		switch m.Proc {
		case ProcWrite:
			put32(0) // offset hi
			put32(0) // offset lo
			put32(uint32(m.DataLen))
			b = append(b, fill(m.DataLen)...)
		case ProcRead:
			put32(0)
			put32(0)
			put32(uint32(m.DataLen)) // requested count
		case ProcLookup:
			name := "somefile.dat"
			put32(uint32(len(name)))
			b = append(b, name...)
			b = append(b, make([]byte, pad4(len(name)))...)
		}
	} else {
		put32(0) // reply_stat accepted
		put32(0) // verifier flavor
		put32(0) // verifier length
		put32(0) // accept_stat success
		put32(m.Status)
		if m.Status == NFSOK {
			switch m.Proc {
			case ProcRead:
				put32(uint32(m.DataLen))
				b = append(b, fill(m.DataLen)...)
			case ProcGetAttr, ProcLookup:
				b = append(b, make([]byte, 84)...) // fattr3
			case ProcWrite:
				put32(uint32(m.DataLen)) // committed count
			}
		}
	}
	return b
}

func pad4(n int) int { return (4 - n%4) % 4 }

func fill(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('A' + i%26)
	}
	return b
}

// Decode parses a message. For replies, proc must be supplied by the
// caller (from the matched call), since RPC replies do not repeat it.
func Decode(data []byte, replyProc uint32) (*Msg, error) {
	if len(data) < 8 {
		return nil, ErrShort
	}
	get32 := func(off int) uint32 { return binary.BigEndian.Uint32(data[off : off+4]) }
	m := &Msg{XID: get32(0), Type: get32(4)}
	if m.Type == MsgCall {
		if len(data) < 24 {
			return nil, ErrShort
		}
		m.Prog, m.Vers, m.Proc = get32(12), get32(16), get32(20)
		// Skip credential and verifier.
		off := 24
		for i := 0; i < 2; i++ {
			if len(data) < off+8 {
				return m, nil // truncated capture: header facts still valid
			}
			l := int(get32(off + 4))
			off += 8 + l + pad4(l)
		}
		off += fhSize
		switch m.Proc {
		case ProcWrite:
			if len(data) >= off+12 {
				m.DataLen = int(get32(off + 8))
			}
		case ProcRead:
			if len(data) >= off+12 {
				m.DataLen = int(get32(off + 8))
			}
		}
		return m, nil
	}
	// Reply layout: reply_stat(8), verf flavor(12), verf len(16),
	// accept_stat(20), NFS status(24).
	if len(data) < 28 {
		return nil, ErrShort
	}
	m.Proc = replyProc
	m.Status = get32(24)
	if m.Status == NFSOK && replyProc == ProcRead && len(data) >= 32 {
		m.DataLen = int(get32(28))
	}
	return m, nil
}

// MarkRecord prepends the TCP record-marking header (last-fragment bit set).
func MarkRecord(msg []byte) []byte {
	out := make([]byte, 4+len(msg))
	binary.BigEndian.PutUint32(out, uint32(len(msg))|0x80000000)
	copy(out[4:], msg)
	return out
}

// SplitRecords walks a record-marked TCP stream, invoking fn on each
// complete record. Incomplete trailing data is ignored (truncated trace).
func SplitRecords(stream []byte, fn func(rec []byte)) {
	for len(stream) >= 4 {
		hdr := binary.BigEndian.Uint32(stream)
		l := int(hdr & 0x7fffffff)
		if l <= 0 || 4+l > len(stream) {
			return
		}
		fn(stream[4 : 4+l])
		stream = stream[4+l:]
	}
}
