package sunrpc

import (
	"net/netip"

	"enttrace/internal/stats"
)

// Analyzer accumulates the paper's NFS statistics: Table 13's per-procedure
// request/byte mix, Figure 7's requests per host pair, Figure 8's
// request/reply size distributions, and the request success rate.
type Analyzer struct {
	Requests *stats.Counter // per ProcName
	Bytes    *stats.Counter // file payload bytes per ProcName
	// ReqSizes and ReplySizes are the Figure 8 message-size samples
	// (RPC message bytes, headers excluded per the figure caption —
	// we record the full RPC body which is the analogous quantity).
	ReqSizes, ReplySizes *stats.Dist
	// PerPair counts requests per client-server host pair (Figure 7).
	PerPair map[[2]netip.Addr]int64
	// OK and Failed count replies by outcome.
	OK, Failed int64

	pendingProc map[pendKey]uint32
}

type pendKey struct {
	client, server netip.Addr
	xid            uint32
}

// NewAnalyzer returns an empty analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		Requests:    stats.NewCounter(),
		Bytes:       stats.NewCounter(),
		ReqSizes:    stats.NewDist(),
		ReplySizes:  stats.NewDist(),
		PerPair:     make(map[[2]netip.Addr]int64),
		pendingProc: make(map[pendKey]uint32),
	}
}

func pairOf(a, b netip.Addr) [2]netip.Addr {
	if a.Compare(b) > 0 {
		a, b = b, a
	}
	return [2]netip.Addr{a, b}
}

// Merge folds other's accumulated state into a. Counters, distributions,
// and per-pair sums are commutative; the pendingProc call/reply pairing
// unions correctly when each (client, server) host pair was fed to
// exactly one source.
func (a *Analyzer) Merge(other *Analyzer) {
	a.Requests.Merge(other.Requests)
	a.Bytes.Merge(other.Bytes)
	a.ReqSizes.Merge(other.ReqSizes)
	a.ReplySizes.Merge(other.ReplySizes)
	for pair, n := range other.PerPair {
		a.PerPair[pair] += n
	}
	a.OK += other.OK
	a.Failed += other.Failed
	for k, v := range other.pendingProc {
		a.pendingProc[k] = v
	}
}

// Snapshot returns an independent analyzer holding the statistics
// accumulated since the last Reset. The call/reply pairing state stays
// behind (the epoch contract): a reply arriving after the cut still
// matches the call observed before it, and its outcome banks into the
// epoch in which the pairing completed.
func (a *Analyzer) Snapshot() *Analyzer {
	s := NewAnalyzer()
	s.Requests.Merge(a.Requests)
	s.Bytes.Merge(a.Bytes)
	s.ReqSizes.Merge(a.ReqSizes)
	s.ReplySizes.Merge(a.ReplySizes)
	for pair, n := range a.PerPair {
		s.PerPair[pair] = n
	}
	s.OK, s.Failed = a.OK, a.Failed
	return s
}

// Reset clears the banked statistics in place; pending call state
// persists across the cut.
func (a *Analyzer) Reset() {
	a.Requests.Reset()
	a.Bytes.Reset()
	a.ReqSizes.Reset()
	a.ReplySizes.Reset()
	clear(a.PerPair)
	a.OK, a.Failed = 0, 0
}

// Cut is Snapshot followed by Reset in one move (nil when nothing was
// banked); call/reply pairing state is untouched.
func (a *Analyzer) Cut() *Analyzer {
	if a.Requests.Total() == 0 && a.Bytes.Total() == 0 && a.ReqSizes.N() == 0 &&
		a.ReplySizes.N() == 0 && len(a.PerPair) == 0 && a.OK == 0 && a.Failed == 0 {
		return nil
	}
	s := &Analyzer{
		Requests: a.Requests, Bytes: a.Bytes,
		ReqSizes: a.ReqSizes, ReplySizes: a.ReplySizes,
		PerPair: a.PerPair, OK: a.OK, Failed: a.Failed,
	}
	a.Requests, a.Bytes = stats.NewCounter(), stats.NewCounter()
	a.ReqSizes, a.ReplySizes = stats.NewDist(), stats.NewDist()
	a.PerPair = make(map[[2]netip.Addr]int64)
	a.OK, a.Failed = 0, 0
	return s
}

// Message feeds one raw RPC message (UDP payload or one TCP record)
// traveling src → dst.
func (a *Analyzer) Message(src, dst netip.Addr, raw []byte) {
	// Peek the type to know whether a matched proc is needed.
	m, err := Decode(raw, 0)
	if err != nil {
		return
	}
	if m.Type == MsgCall {
		if m.Prog != ProgNFS {
			return
		}
		a.pendingProc[pendKey{client: src, server: dst, xid: m.XID}] = m.Proc
		name := ProcName(m.Proc)
		a.Requests.Inc(name)
		if m.Proc == ProcWrite {
			a.Bytes.Add(name, int64(m.DataLen))
		}
		a.ReqSizes.Observe(float64(len(raw)))
		a.PerPair[pairOf(src, dst)]++
		return
	}
	key := pendKey{client: dst, server: src, xid: m.XID}
	proc, ok := a.pendingProc[key]
	if !ok {
		return
	}
	delete(a.pendingProc, key)
	m, err = Decode(raw, proc)
	if err != nil {
		return
	}
	if m.Status == NFSOK {
		a.OK++
		if proc == ProcRead {
			a.Bytes.Add(ProcName(proc), int64(m.DataLen))
		}
	} else {
		a.Failed++
	}
	a.ReplySizes.Observe(float64(len(raw)))
}

// SuccessRate is successful replies over all matched replies.
func (a *Analyzer) SuccessRate() float64 {
	total := a.OK + a.Failed
	if total == 0 {
		return 0
	}
	return float64(a.OK) / float64(total)
}
