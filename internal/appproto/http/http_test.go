package http

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	r := &Request{Method: "GET", URI: "/index.html", Host: "www.lbl.gov", UserAgent: "Mozilla/4.0"}
	got := ParseRequests(EncodeRequest(r))
	if len(got) != 1 {
		t.Fatalf("parsed %d requests", len(got))
	}
	if got[0].Method != "GET" || got[0].URI != "/index.html" || got[0].Host != "www.lbl.gov" {
		t.Errorf("got %+v", got[0])
	}
	if got[0].Conditional {
		t.Error("unexpected conditional")
	}
}

func TestConditionalGet(t *testing.T) {
	r := &Request{Method: "GET", URI: "/logo.gif", Host: "intranet", Conditional: true}
	got := ParseRequests(EncodeRequest(r))
	if len(got) != 1 || !got[0].Conditional {
		t.Errorf("conditional lost: %+v", got)
	}
}

func TestPostWithBody(t *testing.T) {
	r := &Request{Method: "POST", URI: "/ifolder/sync", Host: "files", UserAgent: "Novell iFolder client", BodyLen: 500}
	got := ParseRequests(EncodeRequest(r))
	if len(got) != 1 || got[0].BodyLen != 500 {
		t.Errorf("got %+v", got)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	r := &Response{Status: 200, ContentType: "image/gif", BodyLen: 1234}
	got := ParseResponses(EncodeResponse(r))
	if len(got) != 1 {
		t.Fatalf("parsed %d responses", len(got))
	}
	if got[0].Status != 200 || got[0].ContentType != "image/gif" || got[0].BodyLen != 1234 {
		t.Errorf("got %+v", got[0])
	}
}

func TestPipelinedTransactions(t *testing.T) {
	var stream []byte
	for i := 0; i < 5; i++ {
		stream = append(stream, EncodeRequest(&Request{Method: "GET", URI: "/a", Host: "h"})...)
	}
	got := ParseRequests(stream)
	if len(got) != 5 {
		t.Errorf("parsed %d pipelined requests", len(got))
	}
	var respStream []byte
	sizes := []int{10, 0, 32780, 5, 100}
	for _, n := range sizes {
		respStream = append(respStream, EncodeResponse(&Response{Status: 200, ContentType: "text/html", BodyLen: n})...)
	}
	resps := ParseResponses(respStream)
	if len(resps) != 5 {
		t.Fatalf("parsed %d responses", len(resps))
	}
	for i, n := range sizes {
		if resps[i].BodyLen != n {
			t.Errorf("response %d body = %d, want %d", i, resps[i].BodyLen, n)
		}
	}
}

func TestTruncatedBodyTolerated(t *testing.T) {
	full := EncodeResponse(&Response{Status: 200, ContentType: "application/zip", BodyLen: 10000})
	got := ParseResponses(full[:200]) // capture cut mid-body
	if len(got) != 1 {
		t.Fatalf("parsed %d", len(got))
	}
	if got[0].BodyLen >= 10000 || got[0].ContentType != "application/zip" {
		t.Errorf("got %+v", got[0])
	}
}

func TestGarbageStream(t *testing.T) {
	if got := ParseRequests([]byte("\x16\x03\x01 tls handshake not http\r\n\r\n")); len(got) != 0 {
		t.Errorf("garbage parsed as %d requests", len(got))
	}
	if got := ParseResponses([]byte("random text\r\n\r\nmore")); len(got) != 0 {
		t.Errorf("garbage parsed as %d responses", len(got))
	}
	if got := ParseRequests(nil); got != nil {
		t.Error("nil stream should give nil")
	}
}

func TestContentClass(t *testing.T) {
	cases := map[string]string{
		"text/html":                "text",
		"text/css":                 "text",
		"image/png":                "image",
		"application/octet-stream": "application",
		"application/pdf":          "application",
		"audio/mpeg":               "other",
		"video/mp4":                "other",
		"multipart/mixed":          "other",
		"":                         "other",
		"IMAGE/GIF":                "image",
	}
	for mime, want := range cases {
		if got := ContentClass(mime); got != want {
			t.Errorf("ContentClass(%q) = %q, want %q", mime, got, want)
		}
	}
}

func TestContentTypeParamStripped(t *testing.T) {
	stream := EncodeResponse(&Response{Status: 200, ContentType: "text/html", BodyLen: 2})
	stream = bytes.Replace(stream, []byte("Content-Type: text/html"), []byte("Content-Type: text/html; charset=utf-8"), 1)
	got := ParseResponses(stream)
	if len(got) != 1 || got[0].ContentType != "text/html" {
		t.Errorf("got %+v", got)
	}
}

func TestClassifyAgent(t *testing.T) {
	cases := map[string]string{
		"Mozilla/5.0":               ClientBrowser,
		"LBNL-Site-Scanner/1.2":     ClientScanner,
		"Googlebot-1.0 (via cache)": ClientGoogle1,
		"Googlebot-2.1 crawler":     ClientGoogle2,
		"Novell iFolder client 2.0": ClientIFolder,
		"":                          ClientBrowser,
	}
	for ua, want := range cases {
		if got := ClassifyAgent(ua); got != want {
			t.Errorf("ClassifyAgent(%q) = %q, want %q", ua, got, want)
		}
	}
	if Automated(ClientBrowser) {
		t.Error("browser is not automated")
	}
	if !Automated(ClientScanner) || !Automated(ClientIFolder) {
		t.Error("scanner/ifolder are automated")
	}
}

func TestStatus304NoBody(t *testing.T) {
	got := ParseResponses(EncodeResponse(&Response{Status: 304}))
	if len(got) != 1 || got[0].Status != 304 || got[0].BodyLen != 0 {
		t.Errorf("got %+v", got)
	}
}

// Property: any sequence of well-formed transactions parses back with
// matching methods, statuses, and body lengths.
func TestStreamRoundTripProperty(t *testing.T) {
	f := func(bodies []uint16, conditional []bool) bool {
		if len(bodies) > 20 {
			bodies = bodies[:20]
		}
		var reqStream, respStream []byte
		for i, n := range bodies {
			cond := i < len(conditional) && conditional[i]
			method := "GET"
			if n%7 == 0 && n > 0 {
				method = "POST"
			}
			bodyLen := 0
			if method == "POST" {
				bodyLen = int(n % 2048)
			}
			reqStream = append(reqStream, EncodeRequest(&Request{Method: method, URI: "/x", Host: "h", Conditional: cond, BodyLen: bodyLen})...)
			respStream = append(respStream, EncodeResponse(&Response{Status: 200, ContentType: "text/plain", BodyLen: int(n % 4096)})...)
		}
		reqs := ParseRequests(reqStream)
		resps := ParseResponses(respStream)
		if len(reqs) != len(bodies) || len(resps) != len(bodies) {
			return false
		}
		for i, n := range bodies {
			if resps[i].BodyLen != int(n%4096) {
				return false
			}
			wantCond := i < len(conditional) && conditional[i]
			if reqs[i].Conditional != wantCond {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: parsers never panic on arbitrary bytes.
func TestParseFuzzProperty(t *testing.T) {
	f := func(data []byte) bool {
		_ = ParseRequests(data)
		_ = ParseResponses(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkParseRequests(b *testing.B) {
	var stream []byte
	for i := 0; i < 10; i++ {
		stream = append(stream, EncodeRequest(&Request{Method: "GET", URI: "/path/to/resource", Host: "server.lbl.gov", UserAgent: "Mozilla/4.0"})...)
	}
	b.SetBytes(int64(len(stream)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := ParseRequests(stream); len(got) != 10 {
			b.Fatal("parse failure")
		}
	}
}
