// Package http implements a compact HTTP/1.x message codec and stream
// analyzer sufficient for the paper's §5.1.1 web characterization:
// request methods (GET/POST/conditional GET), response status codes,
// Content-Type accounting, body sizes, and identification of automated
// clients (the site scanner, Google bots, and applications such as
// iFolder that run on top of HTTP), which Table 6 shows dominate internal
// web traffic.
package http

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// Request is one parsed HTTP request.
type Request struct {
	Method    string
	URI       string
	Host      string
	UserAgent string
	// Conditional marks requests bearing If-Modified-Since (or
	// If-None-Match), the paper's "conditional GET".
	Conditional bool
	BodyLen     int
}

// Response is one parsed HTTP response.
type Response struct {
	Status      int
	ContentType string
	BodyLen     int
}

// ContentClass buckets a MIME type the way Table 7 does.
func ContentClass(mime string) string {
	mime = strings.ToLower(mime)
	switch {
	case mime == "":
		return "other"
	case strings.HasPrefix(mime, "text/"):
		return "text"
	case strings.HasPrefix(mime, "image/"):
		return "image"
	case strings.HasPrefix(mime, "application/"):
		return "application"
	default:
		return "other" // audio, video, multipart, ...
	}
}

// Automated-client classes of Table 6.
const (
	ClientBrowser = "browser"
	ClientScanner = "scan1"
	ClientGoogle1 = "google1"
	ClientGoogle2 = "google2"
	ClientIFolder = "ifolder"
)

// ClassifyAgent maps a User-Agent to the paper's automated-client classes.
// This mirrors how the authors separated non-browsing activity from user
// browsing before computing the rest of the HTTP statistics.
func ClassifyAgent(ua string) string {
	low := strings.ToLower(ua)
	switch {
	case strings.Contains(low, "site-scanner"):
		return ClientScanner
	case strings.Contains(low, "googlebot-1"):
		return ClientGoogle1
	case strings.Contains(low, "googlebot-2"):
		return ClientGoogle2
	case strings.Contains(low, "ifolder"):
		return ClientIFolder
	default:
		return ClientBrowser
	}
}

// Automated reports whether the class is one of the Table 6 automated
// activities.
func Automated(class string) bool { return class != ClientBrowser }

// EncodeRequest serializes a request with a Content-Length body.
func EncodeRequest(r *Request) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\n", r.Method, r.URI)
	fmt.Fprintf(&b, "Host: %s\r\n", r.Host)
	if r.UserAgent != "" {
		fmt.Fprintf(&b, "User-Agent: %s\r\n", r.UserAgent)
	}
	if r.Conditional {
		b.WriteString("If-Modified-Since: Thu, 01 Jul 2004 00:00:00 GMT\r\n")
	}
	if r.BodyLen > 0 {
		fmt.Fprintf(&b, "Content-Length: %d\r\n", r.BodyLen)
	}
	b.WriteString("\r\n")
	if r.BodyLen > 0 {
		b.Write(fillBody(r.BodyLen))
	}
	return b.Bytes()
}

// EncodeResponse serializes a response with a Content-Length body.
func EncodeResponse(r *Response) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", r.Status, statusText(r.Status))
	if r.ContentType != "" {
		fmt.Fprintf(&b, "Content-Type: %s\r\n", r.ContentType)
	}
	fmt.Fprintf(&b, "Content-Length: %d\r\n", r.BodyLen)
	b.WriteString("Connection: keep-alive\r\n\r\n")
	if r.BodyLen > 0 {
		b.Write(fillBody(r.BodyLen))
	}
	return b.Bytes()
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 206:
		return "Partial Content"
	case 304:
		return "Not Modified"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	default:
		return "Status"
	}
}

// fillBody produces n deterministic filler bytes.
func fillBody(n int) []byte {
	b := make([]byte, n)
	const pat = "abcdefghijklmnopqrstuvwxyz0123456789"
	for i := range b {
		b[i] = pat[i%len(pat)]
	}
	return b
}

// ParseRequests parses a reassembled client→server stream into requests.
// Parsing is tolerant: a malformed head terminates the parse, returning
// what was recognized.
func ParseRequests(stream []byte) []Request {
	var out []Request
	for len(stream) > 0 {
		head, rest, ok := splitHead(stream)
		if !ok {
			break
		}
		lines := strings.Split(head, "\r\n")
		parts := strings.SplitN(lines[0], " ", 3)
		if len(parts) != 3 || !strings.HasPrefix(parts[2], "HTTP/") {
			break
		}
		r := Request{Method: parts[0], URI: parts[1]}
		cl := 0
		for _, ln := range lines[1:] {
			name, val, found := strings.Cut(ln, ":")
			if !found {
				continue
			}
			val = strings.TrimSpace(val)
			switch strings.ToLower(name) {
			case "host":
				r.Host = val
			case "user-agent":
				r.UserAgent = val
			case "if-modified-since", "if-none-match":
				r.Conditional = true
			case "content-length":
				cl, _ = strconv.Atoi(val)
			}
		}
		if cl > len(rest) {
			cl = len(rest) // truncated capture
		}
		r.BodyLen = cl
		out = append(out, r)
		stream = rest[cl:]
	}
	return out
}

// ParseResponses parses a reassembled server→client stream into responses.
func ParseResponses(stream []byte) []Response {
	var out []Response
	for len(stream) > 0 {
		head, rest, ok := splitHead(stream)
		if !ok {
			break
		}
		lines := strings.Split(head, "\r\n")
		parts := strings.SplitN(lines[0], " ", 3)
		if len(parts) < 2 || !strings.HasPrefix(parts[0], "HTTP/") {
			break
		}
		status, err := strconv.Atoi(parts[1])
		if err != nil {
			break
		}
		r := Response{Status: status}
		cl := 0
		for _, ln := range lines[1:] {
			name, val, found := strings.Cut(ln, ":")
			if !found {
				continue
			}
			val = strings.TrimSpace(val)
			switch strings.ToLower(name) {
			case "content-type":
				if semi := strings.IndexByte(val, ';'); semi >= 0 {
					val = val[:semi]
				}
				r.ContentType = val
			case "content-length":
				cl, _ = strconv.Atoi(val)
			}
		}
		if cl > len(rest) {
			cl = len(rest)
		}
		r.BodyLen = cl
		out = append(out, r)
		stream = rest[cl:]
	}
	return out
}

// splitHead cuts the header block (up to CRLFCRLF) from a stream.
func splitHead(stream []byte) (head string, rest []byte, ok bool) {
	idx := bytes.Index(stream, []byte("\r\n\r\n"))
	if idx < 0 {
		return "", nil, false
	}
	return string(stream[:idx]), stream[idx+4:], true
}
