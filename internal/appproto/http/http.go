// Package http implements a compact HTTP/1.x message codec and stream
// analyzer sufficient for the paper's §5.1.1 web characterization:
// request methods (GET/POST/conditional GET), response status codes,
// Content-Type accounting, body sizes, and identification of automated
// clients (the site scanner, Google bots, and applications such as
// iFolder that run on top of HTTP), which Table 6 shows dominate internal
// web traffic.
package http

import (
	"bytes"
	"fmt"
	"strings"
)

// Request is one parsed HTTP request.
type Request struct {
	Method    string
	URI       string
	Host      string
	UserAgent string
	// Conditional marks requests bearing If-Modified-Since (or
	// If-None-Match), the paper's "conditional GET".
	Conditional bool
	BodyLen     int
}

// Response is one parsed HTTP response.
type Response struct {
	Status      int
	ContentType string
	BodyLen     int
}

// ContentClass buckets a MIME type the way Table 7 does.
func ContentClass(mime string) string {
	mime = strings.ToLower(mime)
	switch {
	case mime == "":
		return "other"
	case strings.HasPrefix(mime, "text/"):
		return "text"
	case strings.HasPrefix(mime, "image/"):
		return "image"
	case strings.HasPrefix(mime, "application/"):
		return "application"
	default:
		return "other" // audio, video, multipart, ...
	}
}

// Automated-client classes of Table 6.
const (
	ClientBrowser = "browser"
	ClientScanner = "scan1"
	ClientGoogle1 = "google1"
	ClientGoogle2 = "google2"
	ClientIFolder = "ifolder"
)

// ClassifyAgent maps a User-Agent to the paper's automated-client classes.
// This mirrors how the authors separated non-browsing activity from user
// browsing before computing the rest of the HTTP statistics.
func ClassifyAgent(ua string) string {
	switch {
	case containsFold(ua, "site-scanner"):
		return ClientScanner
	case containsFold(ua, "googlebot-1"):
		return ClientGoogle1
	case containsFold(ua, "googlebot-2"):
		return ClientGoogle2
	case containsFold(ua, "ifolder"):
		return ClientIFolder
	default:
		return ClientBrowser
	}
}

// containsFold reports whether s contains sub under ASCII case folding;
// sub must be lowercase. It is the allocation-free stand-in for
// strings.Contains(strings.ToLower(s), sub) on this hot path.
func containsFold(s, sub string) bool {
	if len(sub) == 0 {
		return true
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		if equalFold(s[i:i+len(sub)], sub) {
			return true
		}
	}
	return false
}

// equalFold reports a == lower(b) where lower is the lowercase form of a;
// b must already be lowercase ASCII.
func equalFold(a, lower string) bool {
	for i := 0; i < len(a); i++ {
		c := a[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != lower[i] {
			return false
		}
	}
	return true
}

// Automated reports whether the class is one of the Table 6 automated
// activities.
func Automated(class string) bool { return class != ClientBrowser }

// EncodeRequest serializes a request with a Content-Length body.
func EncodeRequest(r *Request) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s %s HTTP/1.1\r\n", r.Method, r.URI)
	fmt.Fprintf(&b, "Host: %s\r\n", r.Host)
	if r.UserAgent != "" {
		fmt.Fprintf(&b, "User-Agent: %s\r\n", r.UserAgent)
	}
	if r.Conditional {
		b.WriteString("If-Modified-Since: Thu, 01 Jul 2004 00:00:00 GMT\r\n")
	}
	if r.BodyLen > 0 {
		fmt.Fprintf(&b, "Content-Length: %d\r\n", r.BodyLen)
	}
	b.WriteString("\r\n")
	if r.BodyLen > 0 {
		b.Write(fillBody(r.BodyLen))
	}
	return b.Bytes()
}

// EncodeResponse serializes a response with a Content-Length body.
func EncodeResponse(r *Response) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "HTTP/1.1 %d %s\r\n", r.Status, statusText(r.Status))
	if r.ContentType != "" {
		fmt.Fprintf(&b, "Content-Type: %s\r\n", r.ContentType)
	}
	fmt.Fprintf(&b, "Content-Length: %d\r\n", r.BodyLen)
	b.WriteString("Connection: keep-alive\r\n\r\n")
	if r.BodyLen > 0 {
		b.Write(fillBody(r.BodyLen))
	}
	return b.Bytes()
}

func statusText(code int) string {
	switch code {
	case 200:
		return "OK"
	case 206:
		return "Partial Content"
	case 304:
		return "Not Modified"
	case 404:
		return "Not Found"
	case 500:
		return "Internal Server Error"
	default:
		return "Status"
	}
}

// fillBody produces n deterministic filler bytes.
func fillBody(n int) []byte {
	b := make([]byte, n)
	const pat = "abcdefghijklmnopqrstuvwxyz0123456789"
	for i := range b {
		b[i] = pat[i%len(pat)]
	}
	return b
}

// ParseRequests parses a reassembled client→server stream into requests.
// Parsing is tolerant: a malformed head terminates the parse, returning
// what was recognized. The stream is borrowed: every retained field is an
// owned string copy, so the caller may recycle the buffer afterwards.
func ParseRequests(stream []byte) []Request {
	var out []Request
	for len(stream) > 0 {
		head, rest, ok := splitHead(stream)
		if !ok {
			break
		}
		first, hdrs := cutLine(head)
		method, after, ok1 := cutByte(first, ' ')
		uri, version, ok2 := cutByte(after, ' ')
		if !ok1 || !ok2 || !bytes.HasPrefix(version, []byte("HTTP/")) {
			break
		}
		r := Request{Method: internMethod(method), URI: string(uri)}
		cl := 0
		for len(hdrs) > 0 {
			var ln []byte
			ln, hdrs = cutLine(hdrs)
			name, val, found := cutByte(ln, ':')
			if !found {
				continue
			}
			val = trimSpace(val)
			switch {
			case nameIs(name, "host"):
				r.Host = string(val)
			case nameIs(name, "user-agent"):
				r.UserAgent = string(val)
			case nameIs(name, "if-modified-since"), nameIs(name, "if-none-match"):
				r.Conditional = true
			case nameIs(name, "content-length"):
				cl = parseInt(val)
			}
		}
		if cl > len(rest) {
			cl = len(rest) // truncated capture
		}
		r.BodyLen = cl
		out = append(out, r)
		stream = rest[cl:]
	}
	return out
}

// ParseResponses parses a reassembled server→client stream into responses.
// The stream is borrowed; see ParseRequests.
func ParseResponses(stream []byte) []Response {
	var out []Response
	for len(stream) > 0 {
		head, rest, ok := splitHead(stream)
		if !ok {
			break
		}
		first, hdrs := cutLine(head)
		version, after, ok1 := cutByte(first, ' ')
		if !ok1 || !bytes.HasPrefix(version, []byte("HTTP/")) {
			break
		}
		codeStr := after
		if i := bytes.IndexByte(after, ' '); i >= 0 {
			codeStr = after[:i]
		}
		status := parseInt(codeStr)
		if status <= 0 {
			break
		}
		r := Response{Status: status}
		cl := 0
		for len(hdrs) > 0 {
			var ln []byte
			ln, hdrs = cutLine(hdrs)
			name, val, found := cutByte(ln, ':')
			if !found {
				continue
			}
			val = trimSpace(val)
			switch {
			case nameIs(name, "content-type"):
				if semi := bytes.IndexByte(val, ';'); semi >= 0 {
					val = val[:semi]
				}
				r.ContentType = string(val)
			case nameIs(name, "content-length"):
				cl = parseInt(val)
			}
		}
		if cl > len(rest) {
			cl = len(rest)
		}
		r.BodyLen = cl
		out = append(out, r)
		stream = rest[cl:]
	}
	return out
}

// splitHead cuts the header block (up to CRLFCRLF) from a stream without
// copying it.
func splitHead(stream []byte) (head, rest []byte, ok bool) {
	idx := bytes.Index(stream, []byte("\r\n\r\n"))
	if idx < 0 {
		return nil, nil, false
	}
	return stream[:idx], stream[idx+4:], true
}

// cutLine splits off the first CRLF-terminated line; the remainder is
// everything after the CRLF (or empty).
func cutLine(b []byte) (line, rest []byte) {
	if i := bytes.Index(b, []byte("\r\n")); i >= 0 {
		return b[:i], b[i+2:]
	}
	return b, nil
}

// cutByte is bytes.Cut with a single-byte separator.
func cutByte(b []byte, sep byte) (before, after []byte, found bool) {
	if i := bytes.IndexByte(b, sep); i >= 0 {
		return b[:i], b[i+1:], true
	}
	return b, nil, false
}

func trimSpace(b []byte) []byte {
	for len(b) > 0 && (b[0] == ' ' || b[0] == '\t') {
		b = b[1:]
	}
	for len(b) > 0 && (b[len(b)-1] == ' ' || b[len(b)-1] == '\t') {
		b = b[:len(b)-1]
	}
	return b
}

// nameIs reports whether a header name equals the lowercase target under
// ASCII case folding.
func nameIs(name []byte, lower string) bool {
	if len(name) != len(lower) {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != lower[i] {
			return false
		}
	}
	return true
}

// parseInt is a minimal non-negative integer parser (0 on malformed
// input, matching the old strconv.Atoi error-ignoring behaviour).
func parseInt(b []byte) int {
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0
		}
		n = n*10 + int(c-'0')
		if n < 0 {
			return 0
		}
	}
	if len(b) == 0 {
		return 0
	}
	return n
}

// internMethod returns the canonical string for common request methods so
// parsing a request usually costs no method allocation.
func internMethod(m []byte) string {
	switch {
	case bytes.Equal(m, []byte("GET")):
		return "GET"
	case bytes.Equal(m, []byte("POST")):
		return "POST"
	case bytes.Equal(m, []byte("HEAD")):
		return "HEAD"
	case bytes.Equal(m, []byte("PUT")):
		return "PUT"
	case bytes.Equal(m, []byte("OPTIONS")):
		return "OPTIONS"
	default:
		return string(m)
	}
}
