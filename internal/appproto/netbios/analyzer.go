package netbios

import (
	"net/netip"
	"time"

	"enttrace/internal/stats"
)

// Analyzer accumulates the §5.1.3 Netbios/NS statistics: request-type mix,
// name-type mix, per-client spread, and the failure rate counted per
// distinct (name, host pair) operation.
type Analyzer struct {
	Ops       *stats.Counter // request type mix (query/refresh/...)
	NameTypes *stats.Counter // workstation/server vs domain/browser
	Clients   *stats.Counter // requests per client
	Rcodes    *stats.Counter // per-distinct-operation outcome

	pending   map[pendKey]pendVal
	seenOp    map[opKey]struct{}
	addrNames map[netip.Addr]string
}

// opKey identifies one distinct operation (name asked between one host
// pair) without building a concatenated string per response.
type opKey struct {
	name           string
	client, server netip.Addr
}

type pendKey struct {
	client, server netip.Addr
	id             uint16
}

type pendVal struct {
	name string
	op   uint8
}

// NewAnalyzer returns an empty analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		Ops:       stats.NewCounter(),
		NameTypes: stats.NewCounter(),
		Clients:   stats.NewCounter(),
		Rcodes:    stats.NewCounter(),
		pending:   make(map[pendKey]pendVal),
		seenOp:    make(map[opKey]struct{}),
		addrNames: make(map[netip.Addr]string),
	}
}

// addrString formats addr, caching the result per analyzer.
func (a *Analyzer) addrString(addr netip.Addr) string {
	if s, ok := a.addrNames[addr]; ok {
		return s
	}
	s := addr.String()
	a.addrNames[addr] = s
	return s
}

// Message feeds one decoded NS message traveling src → dst at ts.
func (a *Analyzer) Message(ts time.Time, src, dst netip.Addr, m *NSMessage) {
	if !m.Response {
		a.Ops.Inc(OpName(m.Op))
		if m.Op == OpQuery {
			a.NameTypes.Inc(SuffixClass(m.Suffix))
		}
		a.Clients.Inc(a.addrString(src))
		a.pending[pendKey{client: src, server: dst, id: m.ID}] = pendVal{name: m.Name, op: m.Op}
		return
	}
	key := pendKey{client: dst, server: src, id: m.ID}
	q, ok := a.pending[key]
	if !ok {
		return
	}
	delete(a.pending, key)
	if q.op != OpQuery {
		return // outcome accounting covers queries only, like the paper
	}
	op := opKey{name: q.name, client: dst, server: src}
	if _, dup := a.seenOp[op]; dup {
		return
	}
	a.seenOp[op] = struct{}{}
	if m.Rcode == RcodeNXDomain {
		a.Rcodes.Inc("NXDOMAIN")
	} else {
		a.Rcodes.Inc("NOERROR")
	}
}

// Merge folds other's accumulated state into a. Counters are
// commutative; the pending/seenOp pairing state is correct to union as
// long as each (client, server) host pair was fed to exactly one source.
func (a *Analyzer) Merge(other *Analyzer) {
	a.Ops.Merge(other.Ops)
	a.NameTypes.Merge(other.NameTypes)
	a.Clients.Merge(other.Clients)
	a.Rcodes.Merge(other.Rcodes)
	for k, v := range other.pending {
		a.pending[k] = v
	}
	for k := range other.seenOp {
		a.seenOp[k] = struct{}{}
	}
}

// Snapshot returns an independent analyzer holding the statistics
// accumulated since the last Reset; the pending-query and per-operation
// dedup state stays behind (the epoch contract), so cross-cut pairings
// resolve exactly as they would without the cut.
func (a *Analyzer) Snapshot() *Analyzer {
	s := NewAnalyzer()
	s.Ops.Merge(a.Ops)
	s.NameTypes.Merge(a.NameTypes)
	s.Clients.Merge(a.Clients)
	s.Rcodes.Merge(a.Rcodes)
	return s
}

// Reset clears the banked counters in place; pending queries, the dedup
// set, and the address-format cache persist.
func (a *Analyzer) Reset() {
	a.Ops.Reset()
	a.NameTypes.Reset()
	a.Clients.Reset()
	a.Rcodes.Reset()
}

// Cut is Snapshot followed by Reset in one move (nil when nothing was
// banked); pairing state is untouched.
func (a *Analyzer) Cut() *Analyzer {
	if a.Ops.Total() == 0 && a.NameTypes.Total() == 0 && a.Clients.Total() == 0 && a.Rcodes.Total() == 0 {
		return nil
	}
	s := &Analyzer{Ops: a.Ops, NameTypes: a.NameTypes, Clients: a.Clients, Rcodes: a.Rcodes}
	a.Ops, a.NameTypes = stats.NewCounter(), stats.NewCounter()
	a.Clients, a.Rcodes = stats.NewCounter(), stats.NewCounter()
	return s
}

// FailureRate is the fraction of distinct query operations that returned
// NXDOMAIN — the paper reports 36–50%.
func (a *Analyzer) FailureRate() float64 {
	return a.Rcodes.Fraction("NXDOMAIN")
}

// SSNAnalyzer tracks Session Service handshakes per host pair for the
// Netbios/SSN success-rate row of Table 9.
type SSNAnalyzer struct {
	// outcome per host pair: positive beats negative beats none.
	pairs map[pairKey]uint8
}

type pairKey struct{ a, b netip.Addr }

// NewSSNAnalyzer returns an empty SSN analyzer.
func NewSSNAnalyzer() *SSNAnalyzer {
	return &SSNAnalyzer{pairs: make(map[pairKey]uint8)}
}

func canonPair(x, y netip.Addr) pairKey {
	if x.Compare(y) > 0 {
		x, y = y, x
	}
	return pairKey{x, y}
}

// Frame feeds one session-service frame type observed between client and
// server.
func (s *SSNAnalyzer) Frame(client, server netip.Addr, typ uint8) {
	k := canonPair(client, server)
	cur := s.pairs[k]
	switch typ {
	case SSNRequest:
		if cur == 0 {
			s.pairs[k] = SSNRequest
		}
	case SSNPositiveResponse:
		s.pairs[k] = SSNPositiveResponse
	case SSNNegativeResponse:
		if cur != SSNPositiveResponse {
			s.pairs[k] = SSNNegativeResponse
		}
	}
}

// Merge folds other's per-pair outcomes into s under the same precedence
// Frame applies (positive beats negative beats request), which makes the
// merged outcome independent of how frames were split across sources.
func (s *SSNAnalyzer) Merge(other *SSNAnalyzer) {
	for k, v := range other.pairs {
		cur := s.pairs[k]
		switch {
		case v == SSNPositiveResponse || cur == SSNPositiveResponse:
			s.pairs[k] = SSNPositiveResponse
		case v == SSNNegativeResponse || cur == SSNNegativeResponse:
			s.pairs[k] = SSNNegativeResponse
		case cur == 0:
			s.pairs[k] = v
		}
	}
}

// Snapshot returns an independent copy of the per-pair outcomes
// accumulated since the last Reset. The outcome fold is a precedence
// lattice (positive beats negative beats request), so merging the
// snapshots of consecutive epochs yields exactly the outcome the uncut
// analyzer would have reached.
func (s *SSNAnalyzer) Snapshot() *SSNAnalyzer {
	c := NewSSNAnalyzer()
	for k, v := range s.pairs {
		c.pairs[k] = v
	}
	return c
}

// Reset clears the per-pair outcomes in place.
func (s *SSNAnalyzer) Reset() {
	clear(s.pairs)
}

// Cut is Snapshot followed by Reset in one move (nil when no pair was
// observed since the last cut).
func (s *SSNAnalyzer) Cut() *SSNAnalyzer {
	if len(s.pairs) == 0 {
		return nil
	}
	c := &SSNAnalyzer{pairs: s.pairs}
	s.pairs = make(map[pairKey]uint8)
	return c
}

// Summary reports (successful, rejected, unanswered, total) host pairs.
func (s *SSNAnalyzer) Summary() (ok, rejected, unanswered, total int) {
	for _, v := range s.pairs {
		total++
		switch v {
		case SSNPositiveResponse:
			ok++
		case SSNNegativeResponse:
			rejected++
		default:
			unanswered++
		}
	}
	return
}
