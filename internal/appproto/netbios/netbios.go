// Package netbios implements the two NetBIOS services the paper analyzes:
// the Name Service (UDP 137 — a DNS-like query/registration protocol with
// first-level-encoded names and a type suffix) and the Session Service
// (TCP 139 — the framing layer under CIFS, with its own session-request
// handshake whose success rate Table 9 reports).
package netbios

import (
	"errors"
	"fmt"
	"strings"
)

// Name Service opcodes (the paper's "request types").
const (
	OpQuery    uint8 = 0
	OpRegister uint8 = 5
	OpRelease  uint8 = 6
	OpWACK     uint8 = 7
	OpRefresh  uint8 = 8
	OpStatus   uint8 = 10 // node status check
)

// OpName renders an opcode the way the paper's text does.
func OpName(op uint8) string {
	switch op {
	case OpQuery:
		return "query"
	case OpRegister:
		return "register"
	case OpRelease:
		return "release"
	case OpRefresh:
		return "refresh"
	case OpStatus:
		return "status"
	case OpWACK:
		return "wack"
	default:
		return fmt.Sprintf("op%d", op)
	}
}

// Name type suffixes (the 16th byte of a NetBIOS name).
const (
	SuffixWorkstation uint8 = 0x00
	SuffixServer      uint8 = 0x20
	SuffixDomain      uint8 = 0x1C
	SuffixBrowser     uint8 = 0x1D
)

// SuffixClass groups suffixes into the paper's two reported classes.
func SuffixClass(s uint8) string {
	switch s {
	case SuffixWorkstation, SuffixServer:
		return "workstation/server"
	case SuffixDomain, SuffixBrowser, 0x1B, 0x1E:
		return "domain/browser"
	default:
		return "other"
	}
}

// Rcode values (shared numbering with DNS).
const (
	RcodeNoError  uint8 = 0
	RcodeNXDomain uint8 = 3
)

// NSMessage is a parsed Name Service message.
type NSMessage struct {
	ID       uint16
	Response bool
	Op       uint8
	Rcode    uint8
	Name     string // decoded NetBIOS name, trailing spaces trimmed
	Suffix   uint8
}

// Decode errors.
var (
	ErrShort   = errors.New("netbios: message too short")
	ErrBadName = errors.New("netbios: malformed encoded name")
)

// EncodeNS serializes a Name Service message.
func EncodeNS(m *NSMessage) []byte {
	buf := make([]byte, 0, 50)
	buf = append(buf, byte(m.ID>>8), byte(m.ID))
	var flags uint16
	flags |= uint16(m.Op&0x0f) << 11
	if m.Response {
		flags |= 0x8000
		flags |= uint16(m.Rcode) & 0x000f
	} else {
		flags |= 0x0110 // RD + B (broadcast) typical of NBNS
	}
	buf = append(buf, byte(flags>>8), byte(flags))
	if m.Response {
		buf = append(buf, 0, 0, 0, 1, 0, 0, 0, 0) // ANCOUNT = 1
	} else {
		buf = append(buf, 0, 1, 0, 0, 0, 0, 0, 0) // QDCOUNT = 1
	}
	buf = append(buf, 0x20) // encoded-name length, always 32
	buf = append(buf, encodeName(m.Name, m.Suffix)...)
	buf = append(buf, 0)       // terminating scope
	buf = append(buf, 0, 0x20) // NB type
	buf = append(buf, 0, 1)    // IN class
	if m.Response {
		buf = append(buf, 0, 0, 0, 60, 0, 6, 0, 0, 10, 0, 0, 1) // TTL, RDLEN, flags+addr
	}
	return buf
}

// encodeName performs RFC 1001 first-level encoding: the 16-byte
// space-padded name (with the suffix as byte 16) becomes 32 bytes of
// nibble+'A'.
func encodeName(name string, suffix uint8) []byte {
	raw := make([]byte, 16)
	for i := range raw {
		raw[i] = ' '
	}
	up := strings.ToUpper(name)
	if len(up) > 15 {
		up = up[:15]
	}
	copy(raw, up)
	raw[15] = suffix
	out := make([]byte, 32)
	for i, b := range raw {
		out[2*i] = 'A' + (b >> 4)
		out[2*i+1] = 'A' + (b & 0x0f)
	}
	return out
}

func decodeName(enc []byte) (string, uint8, error) {
	if len(enc) < 32 {
		return "", 0, ErrBadName
	}
	raw := make([]byte, 16)
	for i := 0; i < 16; i++ {
		hi, lo := enc[2*i], enc[2*i+1]
		if hi < 'A' || hi > 'P' || lo < 'A' || lo > 'P' {
			return "", 0, ErrBadName
		}
		raw[i] = (hi-'A')<<4 | (lo - 'A')
	}
	suffix := raw[15]
	return strings.TrimRight(string(raw[:15]), " "), suffix, nil
}

// DecodeNS parses a Name Service message.
func DecodeNS(data []byte) (*NSMessage, error) {
	if len(data) < 12 {
		return nil, ErrShort
	}
	flags := uint16(data[2])<<8 | uint16(data[3])
	m := &NSMessage{
		ID:       uint16(data[0])<<8 | uint16(data[1]),
		Response: flags&0x8000 != 0,
		Op:       uint8(flags >> 11 & 0x0f),
		Rcode:    uint8(flags & 0x0f),
	}
	// Name section: length byte then 32 encoded bytes.
	if len(data) < 13+32 {
		return nil, ErrShort
	}
	if data[12] != 0x20 {
		return nil, ErrBadName
	}
	name, suffix, err := decodeName(data[13 : 13+32])
	if err != nil {
		return nil, err
	}
	m.Name, m.Suffix = name, suffix
	return m, nil
}

// Session Service packet types (TCP 139 framing).
const (
	SSNMessage          uint8 = 0x00
	SSNRequest          uint8 = 0x81
	SSNPositiveResponse uint8 = 0x82
	SSNNegativeResponse uint8 = 0x83
	SSNKeepAlive        uint8 = 0x85
)

// SSNHeader is the 4-byte Session Service frame header.
type SSNHeader struct {
	Type   uint8
	Length int // payload length (17-bit)
}

// EncodeSSN builds a session-service frame around payload.
func EncodeSSN(typ uint8, payload []byte) []byte {
	out := make([]byte, 4+len(payload))
	out[0] = typ
	out[1] = byte(len(payload) >> 16 & 0x01)
	out[2] = byte(len(payload) >> 8)
	out[3] = byte(len(payload))
	copy(out[4:], payload)
	return out
}

// DecodeSSNHeader parses a session-service frame header.
func DecodeSSNHeader(data []byte) (SSNHeader, error) {
	if len(data) < 4 {
		return SSNHeader{}, ErrShort
	}
	return SSNHeader{
		Type:   data[0],
		Length: int(data[1]&0x01)<<16 | int(data[2])<<8 | int(data[3]),
	}, nil
}
