package netbios

import (
	"testing"
)

// FuzzDecodeNS feeds the Name Service decoder arbitrary bytes: no
// panics, and an accepted message carries a name within the protocol's
// 15-byte bound with first-level encoding round-tripping cleanly.
func FuzzDecodeNS(f *testing.F) {
	// Well-formed seeds from the package's own encoder.
	f.Add(EncodeNS(&NSMessage{ID: 0x0102, Name: "FILESRV01", Suffix: 0x20}))
	f.Add(EncodeNS(&NSMessage{ID: 0x0304, Response: true, Rcode: RcodeNXDomain,
		Name: "WORKSTATION", Suffix: 0x00}))
	// Evasion-shaped seeds: truncations and corrupt encoded names.
	full := EncodeNS(&NSMessage{ID: 9, Name: "HOST", Suffix: 0x20})
	f.Add(full[:12])
	f.Add(full[:20])
	badLen := append([]byte(nil), full...)
	badLen[12] = 0x1F // name-length byte not 0x20
	f.Add(badLen)
	badChar := append([]byte(nil), full...)
	badChar[13] = 'z' // outside the A..P nibble alphabet
	f.Add(badChar)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := DecodeNS(data)
		if err != nil {
			return
		}
		if len(m.Name) > 15 {
			t.Fatalf("NetBIOS name %q exceeds 15 bytes", m.Name)
		}
		m2, err := DecodeNS(EncodeNS(m))
		if err != nil {
			t.Fatalf("re-encoded message rejected: %v", err)
		}
		if m2.ID != m.ID || m2.Response != m.Response || m2.Suffix != m.Suffix {
			t.Fatalf("fields lost in round trip: %+v vs %+v", m, m2)
		}
	})
}

// FuzzDecodeSSNHeader checks the Session Service framing header parser:
// no panics, and the 17-bit length field stays within its range so a
// stream walker sizing a read from it cannot be driven past 128 KiB + 1.
func FuzzDecodeSSNHeader(f *testing.F) {
	f.Add(EncodeSSN(SSNMessage, []byte("smb-session-payload")))
	f.Add(EncodeSSN(SSNRequest, nil))
	f.Add([]byte{SSNKeepAlive, 0, 0, 0})
	f.Add([]byte{0x00, 0xFF, 0xFF, 0xFF}) // length bits beyond the 17-bit field
	f.Add([]byte{0x81, 0x01})             // truncated header

	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := DecodeSSNHeader(data)
		if err != nil {
			return
		}
		if h.Length < 0 || h.Length >= 1<<17 {
			t.Fatalf("session length %d outside the 17-bit field", h.Length)
		}
	})
}
