package netbios

import (
	"net/netip"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestNSRoundTripQuery(t *testing.T) {
	m := &NSMessage{ID: 0xBEEF, Op: OpQuery, Name: "FILESRV01", Suffix: SuffixServer}
	got, err := DecodeNS(EncodeNS(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 0xBEEF || got.Response || got.Op != OpQuery {
		t.Errorf("got %+v", got)
	}
	if got.Name != "FILESRV01" || got.Suffix != SuffixServer {
		t.Errorf("name = %q suffix = %#x", got.Name, got.Suffix)
	}
}

func TestNSRoundTripResponse(t *testing.T) {
	m := &NSMessage{ID: 3, Response: true, Op: OpQuery, Rcode: RcodeNXDomain, Name: "STALE", Suffix: SuffixWorkstation}
	got, err := DecodeNS(EncodeNS(m))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Response || got.Rcode != RcodeNXDomain || got.Name != "STALE" {
		t.Errorf("got %+v", got)
	}
}

func TestNSAllOpcodes(t *testing.T) {
	for _, op := range []uint8{OpQuery, OpRegister, OpRelease, OpRefresh, OpStatus} {
		m := &NSMessage{ID: 1, Op: op, Name: "HOST", Suffix: SuffixWorkstation}
		got, err := DecodeNS(EncodeNS(m))
		if err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		if got.Op != op {
			t.Errorf("op = %d, want %d", got.Op, op)
		}
	}
}

func TestNameCaseFoldingAndPadding(t *testing.T) {
	m := &NSMessage{ID: 1, Op: OpQuery, Name: "lowercase", Suffix: 0}
	got, err := DecodeNS(EncodeNS(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "LOWERCASE" {
		t.Errorf("name = %q, want upper-cased", got.Name)
	}
}

func TestLongNameTruncated(t *testing.T) {
	m := &NSMessage{ID: 1, Op: OpQuery, Name: strings.Repeat("A", 40), Suffix: 0}
	got, err := DecodeNS(EncodeNS(m))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Name) != 15 {
		t.Errorf("name len = %d, want 15", len(got.Name))
	}
}

func TestDecodeNSErrors(t *testing.T) {
	if _, err := DecodeNS([]byte{1}); err != ErrShort {
		t.Errorf("short: %v", err)
	}
	bad := EncodeNS(&NSMessage{ID: 1, Op: OpQuery, Name: "X"})
	bad[13] = 'z' // invalid encoded nibble
	if _, err := DecodeNS(bad); err != ErrBadName {
		t.Errorf("bad name: %v", err)
	}
}

func TestSuffixClasses(t *testing.T) {
	cases := map[uint8]string{
		SuffixWorkstation: "workstation/server",
		SuffixServer:      "workstation/server",
		SuffixDomain:      "domain/browser",
		SuffixBrowser:     "domain/browser",
		0x42:              "other",
	}
	for s, want := range cases {
		if got := SuffixClass(s); got != want {
			t.Errorf("SuffixClass(%#x) = %q", s, got)
		}
	}
}

func TestSSNFraming(t *testing.T) {
	payload := []byte("smb goes here")
	frame := EncodeSSN(SSNMessage, payload)
	h, err := DecodeSSNHeader(frame)
	if err != nil {
		t.Fatal(err)
	}
	if h.Type != SSNMessage || h.Length != len(payload) {
		t.Errorf("header = %+v", h)
	}
	if _, err := DecodeSSNHeader([]byte{0x81}); err != ErrShort {
		t.Errorf("short SSN: %v", err)
	}
}

func TestSSNLargeLength(t *testing.T) {
	// 17-bit length field: 100000 bytes.
	payload := make([]byte, 100000)
	h, err := DecodeSSNHeader(EncodeSSN(SSNMessage, payload))
	if err != nil {
		t.Fatal(err)
	}
	if h.Length != 100000 {
		t.Errorf("length = %d", h.Length)
	}
}

// Property: NS name round-trip for arbitrary alphanumeric names and all
// standard suffixes.
func TestNSNameProperty(t *testing.T) {
	f := func(raw string, sfxSel uint8) bool {
		name := make([]rune, 0, 15)
		for _, r := range strings.ToUpper(raw) {
			if r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' {
				name = append(name, r)
			}
			if len(name) == 15 {
				break
			}
		}
		if len(name) == 0 {
			name = []rune{'H'}
		}
		sfx := []uint8{SuffixWorkstation, SuffixServer, SuffixDomain, SuffixBrowser}[int(sfxSel)%4]
		m := &NSMessage{ID: 1, Op: OpQuery, Name: string(name), Suffix: sfx}
		got, err := DecodeNS(EncodeNS(m))
		return err == nil && got.Name == string(name) && got.Suffix == sfx
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeNSFuzz(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = DecodeNS(data)
		_, _ = DecodeSSNHeader(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

var (
	cli = netip.MustParseAddr("10.1.1.7")
	srv = netip.MustParseAddr("10.0.0.137")
)

func TestAnalyzerQueryFailure(t *testing.T) {
	a := NewAnalyzer()
	t0 := time.Unix(0, 0)
	a.Message(t0, cli, srv, &NSMessage{ID: 1, Op: OpQuery, Name: "GONE", Suffix: SuffixWorkstation})
	a.Message(t0, srv, cli, &NSMessage{ID: 1, Response: true, Op: OpQuery, Rcode: RcodeNXDomain, Name: "GONE"})
	a.Message(t0, cli, srv, &NSMessage{ID: 2, Op: OpQuery, Name: "HERE", Suffix: SuffixServer})
	a.Message(t0, srv, cli, &NSMessage{ID: 2, Response: true, Op: OpQuery, Rcode: RcodeNoError, Name: "HERE"})
	if got := a.FailureRate(); got != 0.5 {
		t.Errorf("failure rate = %v, want 0.5", got)
	}
	if a.Ops.Get("query") != 2 {
		t.Errorf("query ops = %d", a.Ops.Get("query"))
	}
	if a.NameTypes.Get("workstation/server") != 2 {
		t.Errorf("name types: %v", a.NameTypes.Keys())
	}
}

func TestAnalyzerRefreshNotInOutcome(t *testing.T) {
	a := NewAnalyzer()
	t0 := time.Unix(0, 0)
	a.Message(t0, cli, srv, &NSMessage{ID: 5, Op: OpRefresh, Name: "ME", Suffix: SuffixWorkstation})
	a.Message(t0, srv, cli, &NSMessage{ID: 5, Response: true, Op: OpRefresh, Rcode: RcodeNoError, Name: "ME"})
	if a.Rcodes.Total() != 0 {
		t.Error("refresh should not enter query outcome accounting")
	}
	if a.Ops.Get("refresh") != 1 {
		t.Error("refresh op not counted")
	}
}

func TestAnalyzerDeduplicatesRetries(t *testing.T) {
	a := NewAnalyzer()
	t0 := time.Unix(0, 0)
	for i := 0; i < 4; i++ {
		id := uint16(10 + i)
		a.Message(t0, cli, srv, &NSMessage{ID: id, Op: OpQuery, Name: "POPULAR", Suffix: SuffixServer})
		a.Message(t0, srv, cli, &NSMessage{ID: id, Response: true, Op: OpQuery, Rcode: RcodeNXDomain, Name: "POPULAR"})
	}
	if a.Rcodes.Get("NXDOMAIN") != 1 {
		t.Errorf("NXDOMAIN = %d, want 1", a.Rcodes.Get("NXDOMAIN"))
	}
}

func TestSSNAnalyzer(t *testing.T) {
	s := NewSSNAnalyzer()
	a1 := netip.MustParseAddr("10.1.1.1")
	a2 := netip.MustParseAddr("10.1.1.2")
	a3 := netip.MustParseAddr("10.1.1.3")
	a4 := netip.MustParseAddr("10.1.1.4")
	srv := netip.MustParseAddr("10.0.0.139")
	// pair 1: success
	s.Frame(a1, srv, SSNRequest)
	s.Frame(srv, a1, SSNPositiveResponse)
	// pair 2: rejected
	s.Frame(a2, srv, SSNRequest)
	s.Frame(srv, a2, SSNNegativeResponse)
	// pair 3: unanswered
	s.Frame(a3, srv, SSNRequest)
	// pair 4: rejected then succeeded on retry → success wins
	s.Frame(a4, srv, SSNRequest)
	s.Frame(srv, a4, SSNNegativeResponse)
	s.Frame(a4, srv, SSNRequest)
	s.Frame(srv, a4, SSNPositiveResponse)
	ok, rej, un, total := s.Summary()
	if ok != 2 || rej != 1 || un != 1 || total != 4 {
		t.Errorf("summary = %d/%d/%d/%d", ok, rej, un, total)
	}
}
