// Package imap models the two flavors of IMAP the paper's email analysis
// sees: plaintext IMAP4 (which LBNL phased out between D0 and D1) and
// IMAP over SSL (IMAP/S, port 993), whose payload is opaque — the paper
// analyzes it purely at the transport layer. The generator produces a
// polling session: a handshake, then FETCH polls every PollInterval with
// the mailbox data flowing server → client; the plaintext parser recovers
// command counts and fetched bytes.
package imap

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Session describes one IMAP session for generation.
type Session struct {
	User string
	// Polls is how many FETCH polls the session performs (the paper
	// observes clients polling every ~10 minutes within 50-minute
	// sessions).
	Polls int
	// BytesPerPoll is the mailbox payload returned per poll.
	BytesPerPoll int
	// PollInterval separates successive polls.
	PollInterval time.Duration
	// TLS produces an IMAP/S-style opaque byte stream instead of
	// plaintext commands.
	TLS bool
}

// Turn is one paced send within the session.
type Turn struct {
	FromClient bool
	// Delay before this turn relative to the previous one (zero for
	// RTT-paced command/response steps; the generator adds RTT itself).
	Delay time.Duration
	Data  []byte
}

// Turns renders the session.
func (s *Session) Turns() []Turn {
	if s.TLS {
		return s.tlsTurns()
	}
	var t []Turn
	srv := func(delay time.Duration, str string) {
		t = append(t, Turn{Delay: delay, Data: []byte(str)})
	}
	cli := func(delay time.Duration, str string) {
		t = append(t, Turn{FromClient: true, Delay: delay, Data: []byte(str)})
	}
	srv(0, "* OK imap.lbl.gov IMAP4rev1 ready\r\n")
	cli(0, fmt.Sprintf("a1 LOGIN %s secret\r\n", s.User))
	srv(0, "a1 OK LOGIN completed\r\n")
	cli(0, "a2 SELECT INBOX\r\n")
	srv(0, "* 17 EXISTS\r\na2 OK [READ-WRITE] SELECT completed\r\n")
	for i := 0; i < s.Polls; i++ {
		delay := time.Duration(0)
		if i > 0 {
			delay = s.PollInterval
		}
		tag := fmt.Sprintf("a%d", 3+i)
		cli(delay, tag+" FETCH 1:* (FLAGS BODY[])\r\n")
		srv(0, fmt.Sprintf("* 1 FETCH (BODY[] {%d}\r\n", s.BytesPerPoll))
		t = append(t, Turn{Data: mailbox(s.BytesPerPoll)})
		srv(0, ")\r\n"+tag+" OK FETCH completed\r\n")
	}
	cli(0, "a99 LOGOUT\r\n")
	srv(0, "* BYE\r\na99 OK LOGOUT completed\r\n")
	return t
}

// tlsTurns emits an opaque TLS-like session: a handshake exchange then
// sized application records. The analyzer can only see sizes and timing,
// exactly the paper's situation with encrypted IMAP/S.
func (s *Session) tlsTurns() []Turn {
	var t []Turn
	t = append(t, Turn{FromClient: true, Data: tlsRecord(0x16, 200)}) // ClientHello
	t = append(t, Turn{Data: tlsRecord(0x16, 1800)})                  // ServerHello+cert
	t = append(t, Turn{FromClient: true, Data: tlsRecord(0x16, 300)}) // key exchange
	t = append(t, Turn{Data: tlsRecord(0x14, 40)})                    // ChangeCipherSpec
	for i := 0; i < s.Polls; i++ {
		delay := time.Duration(0)
		if i > 0 {
			delay = s.PollInterval
		}
		t = append(t, Turn{FromClient: true, Delay: delay, Data: tlsRecord(0x17, 80)})
		t = append(t, Turn{Data: tlsRecord(0x17, s.BytesPerPoll)})
	}
	t = append(t, Turn{FromClient: true, Data: tlsRecord(0x15, 24)}) // close_notify
	return t
}

// tlsRecord builds a TLS-framed record with deterministic pseudo-random
// body (high-entropy-looking but reproducible).
func tlsRecord(typ byte, n int) []byte {
	out := make([]byte, 5+n)
	out[0] = typ
	out[1], out[2] = 3, 1 // TLS 1.0, the 2004-era version
	out[3] = byte(n >> 8)
	out[4] = byte(n)
	state := uint32(n)*2654435761 + uint32(typ)
	for i := 5; i < len(out); i++ {
		state = state*1664525 + 1013904223
		out[i] = byte(state >> 24)
	}
	return out
}

// mailbox builds n bytes of message payload.
func mailbox(n int) []byte {
	var b bytes.Buffer
	const line = "From: someone@lbl.gov\r\nSubject: status\r\n\r\nbody text follows here\r\n"
	for b.Len() < n {
		b.WriteString(line)
	}
	out := b.Bytes()
	return out[:n]
}

// Result summarizes a parsed plaintext IMAP session.
type Result struct {
	LoggedIn     bool
	FetchCount   int
	FetchedBytes int
}

// Parse recovers session facts from the two plaintext stream directions.
func Parse(clientStream, serverStream []byte) Result {
	var r Result
	r.LoggedIn = bytes.Contains(serverStream, []byte("OK LOGIN"))
	for _, ln := range strings.Split(string(clientStream), "\r\n") {
		if strings.Contains(ln, " FETCH ") {
			r.FetchCount++
		}
	}
	// Literal sizes: {N} markers in the server stream.
	rest := serverStream
	for {
		idx := bytes.IndexByte(rest, '{')
		if idx < 0 {
			break
		}
		end := bytes.IndexByte(rest[idx:], '}')
		if end < 0 {
			break
		}
		if n, err := strconv.Atoi(string(rest[idx+1 : idx+end])); err == nil {
			r.FetchedBytes += n
		}
		rest = rest[idx+end:]
	}
	return r
}

// IsTLS sniffs whether a stream begins with a TLS handshake record, which
// is how the analyzer separates IMAP/S from plaintext when ports are
// ambiguous.
func IsTLS(stream []byte) bool {
	return len(stream) >= 3 && stream[0] == 0x16 && stream[1] == 3
}
