package imap

import (
	"testing"
	"testing/quick"
	"time"
)

func split(turns []Turn) (client, server []byte) {
	for _, t := range turns {
		if t.FromClient {
			client = append(client, t.Data...)
		} else {
			server = append(server, t.Data...)
		}
	}
	return
}

func TestPlaintextSession(t *testing.T) {
	s := &Session{User: "alice", Polls: 3, BytesPerPoll: 5000, PollInterval: 10 * time.Minute}
	turns := s.Turns()
	client, server := split(turns)
	r := Parse(client, server)
	if !r.LoggedIn {
		t.Error("login not detected")
	}
	if r.FetchCount != 3 {
		t.Errorf("fetches = %d, want 3", r.FetchCount)
	}
	if r.FetchedBytes != 15000 {
		t.Errorf("fetched = %d, want 15000", r.FetchedBytes)
	}
}

func TestPollPacing(t *testing.T) {
	s := &Session{User: "bob", Polls: 5, BytesPerPoll: 100, PollInterval: 10 * time.Minute}
	var total time.Duration
	for _, turn := range s.Turns() {
		total += turn.Delay
	}
	if want := 40 * time.Minute; total != want {
		t.Errorf("total poll delay = %v, want %v (4 intervals)", total, want)
	}
}

func TestServerSendsBulk(t *testing.T) {
	s := &Session{User: "c", Polls: 2, BytesPerPoll: 20000}
	client, server := split(s.Turns())
	if len(server) < 40000 {
		t.Errorf("server bytes = %d, want > 40000", len(server))
	}
	if len(client) > 2000 {
		t.Errorf("client bytes = %d, should be small control traffic", len(client))
	}
}

func TestTLSSessionOpaque(t *testing.T) {
	s := &Session{User: "d", Polls: 4, BytesPerPoll: 8000, TLS: true, PollInterval: 10 * time.Minute}
	turns := s.Turns()
	client, server := split(turns)
	if !IsTLS(client) || !IsTLS(server) {
		t.Error("TLS session should start with handshake records")
	}
	// Opaque payload: the plaintext parser must find nothing.
	r := Parse(client, server)
	if r.LoggedIn || r.FetchCount != 0 {
		t.Errorf("TLS stream leaked plaintext structure: %+v", r)
	}
	// Bulk direction is server → client.
	if len(server) < 4*8000 {
		t.Errorf("server bytes = %d", len(server))
	}
}

func TestIsTLSNegative(t *testing.T) {
	if IsTLS([]byte("a1 LOGIN alice secret\r\n")) {
		t.Error("plaintext misdetected as TLS")
	}
	if IsTLS(nil) || IsTLS([]byte{0x16}) {
		t.Error("short streams misdetected")
	}
}

func TestTLSRecordFraming(t *testing.T) {
	rec := tlsRecord(0x17, 500)
	if len(rec) != 505 {
		t.Fatalf("record len = %d", len(rec))
	}
	if got := int(rec[3])<<8 | int(rec[4]); got != 500 {
		t.Errorf("framed length = %d", got)
	}
	// Deterministic: same inputs, same bytes.
	rec2 := tlsRecord(0x17, 500)
	for i := range rec {
		if rec[i] != rec2[i] {
			t.Fatal("record generation not deterministic")
		}
	}
}

// Property: fetched-byte accounting matches polls × size for any session
// shape.
func TestFetchAccountingProperty(t *testing.T) {
	f := func(polls, size uint8) bool {
		s := &Session{User: "u", Polls: int(polls % 8), BytesPerPoll: int(size)*10 + 1}
		client, server := split(s.Turns())
		r := Parse(client, server)
		return r.FetchCount == s.Polls && r.FetchedBytes == s.Polls*s.BytesPerPoll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestParseGarbage(t *testing.T) {
	r := Parse([]byte("{not-a-number}"), []byte("x{99"))
	if r.FetchedBytes != 0 {
		t.Errorf("garbage literals parsed: %+v", r)
	}
}
