// Package smtp models SMTP dialogues for the paper's email analysis
// (§5.1.2): a generator producing byte-exact client/server command
// streams for a message of a given size, and a parser extracting the
// transaction outcome and transferred message size from reassembled
// streams. SMTP sessions exchange control information and a unidirectional
// bulk transfer, both proportional to RTT — which is why the paper finds
// internal SMTP connections an order of magnitude shorter than WAN ones.
package smtp

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// Dialogue describes one SMTP session for generation.
type Dialogue struct {
	ClientHost  string
	From, To    string
	MessageSize int
	// Rejected produces a server that refuses the MAIL command (550).
	Rejected bool
}

// Turn is one alternating step of a dialogue: who sends, and what.
type Turn struct {
	FromClient bool
	Data       []byte
}

// Turns renders the dialogue as an alternating sequence of sends,
// which the generator paces at the path RTT.
func (d *Dialogue) Turns() []Turn {
	var t []Turn
	srv := func(s string) { t = append(t, Turn{Data: []byte(s)}) }
	cli := func(s string) { t = append(t, Turn{FromClient: true, Data: []byte(s)}) }
	srv("220 smtp.lbl.gov ESMTP ready\r\n")
	cli(fmt.Sprintf("HELO %s\r\n", d.ClientHost))
	srv("250 smtp.lbl.gov\r\n")
	cli(fmt.Sprintf("MAIL FROM:<%s>\r\n", d.From))
	if d.Rejected {
		srv("550 rejected: policy\r\n")
		cli("QUIT\r\n")
		srv("221 bye\r\n")
		return t
	}
	srv("250 ok\r\n")
	cli(fmt.Sprintf("RCPT TO:<%s>\r\n", d.To))
	srv("250 ok\r\n")
	cli("DATA\r\n")
	srv("354 go ahead\r\n")
	t = append(t, Turn{FromClient: true, Data: message(d.MessageSize)})
	srv("250 queued\r\n")
	cli("QUIT\r\n")
	srv("221 bye\r\n")
	return t
}

// message builds an n-byte RFC822-ish message ending with the dot
// terminator.
func message(n int) []byte {
	var b bytes.Buffer
	b.WriteString("Subject: report\r\nMIME-Version: 1.0\r\n\r\n")
	const line = "The quick brown fox jumps over the lazy dog 0123456789.\r\n"
	for b.Len() < n {
		b.WriteString(line)
	}
	msg := b.Bytes()
	if len(msg) > n {
		msg = msg[:n]
	}
	return append(msg, []byte("\r\n.\r\n")...)
}

// Result summarizes a parsed SMTP session.
type Result struct {
	// Accepted reports that the server accepted the message (250 after
	// DATA).
	Accepted bool
	// Rejected reports a 5xx reply to MAIL/RCPT.
	Rejected bool
	// MessageBytes is the size of the DATA payload seen.
	MessageBytes int
}

// Parse extracts the outcome from the two reassembled directions of an
// SMTP connection.
func Parse(clientStream, serverStream []byte) Result {
	var r Result
	// Find the DATA section in the client stream.
	cs := clientStream
	if idx := bytes.Index(cs, []byte("DATA\r\n")); idx >= 0 {
		body := cs[idx+6:]
		if end := bytes.Index(body, []byte("\r\n.\r\n")); end >= 0 {
			r.MessageBytes = end
		} else {
			r.MessageBytes = len(body) // truncated capture
		}
	}
	sawData := false
	for _, ln := range strings.Split(string(serverStream), "\r\n") {
		if len(ln) < 3 {
			continue
		}
		code, err := strconv.Atoi(ln[:3])
		if err != nil {
			continue
		}
		switch {
		case code == 354:
			sawData = true
		case code == 250 && sawData:
			r.Accepted = true
		case code >= 500:
			r.Rejected = true
		}
	}
	return r
}
