package smtp

import (
	"testing"
	"testing/quick"
)

func split(turns []Turn) (client, server []byte) {
	for _, t := range turns {
		if t.FromClient {
			client = append(client, t.Data...)
		} else {
			server = append(server, t.Data...)
		}
	}
	return
}

func TestAcceptedDialogue(t *testing.T) {
	d := &Dialogue{ClientHost: "pc1.lbl.gov", From: "a@lbl.gov", To: "b@lbl.gov", MessageSize: 4000}
	turns := d.Turns()
	if len(turns) < 10 {
		t.Fatalf("only %d turns", len(turns))
	}
	if turns[0].FromClient {
		t.Error("SMTP server speaks first (220 banner)")
	}
	client, server := split(turns)
	r := Parse(client, server)
	if !r.Accepted || r.Rejected {
		t.Errorf("result = %+v", r)
	}
	if r.MessageBytes < 4000 || r.MessageBytes > 4100 {
		t.Errorf("message bytes = %d, want ≈4000", r.MessageBytes)
	}
}

func TestRejectedDialogue(t *testing.T) {
	d := &Dialogue{ClientHost: "ext.example.com", From: "spam@example.com", To: "x@lbl.gov", MessageSize: 100, Rejected: true}
	client, server := split(d.Turns())
	r := Parse(client, server)
	if r.Accepted || !r.Rejected {
		t.Errorf("result = %+v", r)
	}
	if r.MessageBytes != 0 {
		t.Errorf("rejected session transferred %d bytes", r.MessageBytes)
	}
}

func TestAlternation(t *testing.T) {
	d := &Dialogue{ClientHost: "h", From: "a@b", To: "c@d", MessageSize: 10}
	turns := d.Turns()
	for i := 1; i < len(turns); i++ {
		if turns[i].FromClient == turns[i-1].FromClient {
			// Only the DATA body follows another client turn... verify none.
			t.Errorf("turns %d and %d from same side", i-1, i)
		}
	}
}

func TestParseTruncatedCapture(t *testing.T) {
	d := &Dialogue{ClientHost: "h", From: "a@b", To: "c@d", MessageSize: 10000}
	client, server := split(d.Turns())
	r := Parse(client[:len(client)/2], server)
	if r.MessageBytes == 0 {
		t.Error("truncated capture should still estimate message bytes")
	}
}

func TestParseGarbage(t *testing.T) {
	r := Parse([]byte("not smtp at all"), []byte("\x00\x01\x02"))
	if r.Accepted || r.Rejected || r.MessageBytes != 0 {
		t.Errorf("garbage parse = %+v", r)
	}
}

// Property: the message size extracted by the parser tracks the requested
// size within the terminator/line-rounding slack for any size.
func TestMessageSizeProperty(t *testing.T) {
	f := func(size uint16) bool {
		d := &Dialogue{ClientHost: "h", From: "a@b", To: "c@d", MessageSize: int(size)}
		client, server := split(d.Turns())
		r := Parse(client, server)
		if !r.Accepted {
			return false
		}
		// message() pads with the header block, so tiny sizes floor there.
		return r.MessageBytes >= int(size) && r.MessageBytes <= int(size)+128
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
