// Package ftp implements the FTP control-channel dialogue (RFC 959) to
// the depth the paper's "bulk" category needs: command/reply codec, PASV
// port negotiation (which is how the analyzer associates data connections
// with control sessions), and transfer accounting. FTP is half of the
// paper's bulk category (with HPSS); its hallmark is a tiny control
// connection steering a separate high-volume data connection.
package ftp

import (
	"bytes"
	"fmt"
	"strings"
)

// Command is one client control-channel command.
type Command struct {
	Verb string // USER, PASS, PASV, RETR, STOR, QUIT, ...
	Arg  string
}

// Reply is one server control-channel reply.
type Reply struct {
	Code int
	Text string
}

// EncodeCommand serializes a command line.
func EncodeCommand(c Command) []byte {
	if c.Arg == "" {
		return []byte(c.Verb + "\r\n")
	}
	return []byte(c.Verb + " " + c.Arg + "\r\n")
}

// EncodeReply serializes a reply line.
func EncodeReply(r Reply) []byte {
	return []byte(fmt.Sprintf("%d %s\r\n", r.Code, r.Text))
}

// EncodePasvReply builds the 227 reply advertising a data port at the
// given IPv4 address.
func EncodePasvReply(ip [4]byte, port uint16) []byte {
	return EncodeReply(Reply{
		Code: 227,
		Text: fmt.Sprintf("Entering Passive Mode (%d,%d,%d,%d,%d,%d)",
			ip[0], ip[1], ip[2], ip[3], port>>8, port&0xff),
	})
}

// ParseCommands parses a client control stream.
func ParseCommands(stream []byte) []Command {
	var out []Command
	for _, line := range bytes.Split(stream, []byte("\r\n")) {
		if len(line) == 0 {
			continue
		}
		verb, arg, _ := strings.Cut(string(line), " ")
		verb = strings.ToUpper(strings.TrimSpace(verb))
		if len(verb) < 3 || len(verb) > 4 || !isAlpha(verb) {
			continue
		}
		out = append(out, Command{Verb: verb, Arg: strings.TrimSpace(arg)})
	}
	return out
}

func isAlpha(s string) bool {
	for _, r := range s {
		if r < 'A' || r > 'Z' {
			return false
		}
	}
	return true
}

// ParseReplies parses a server control stream.
func ParseReplies(stream []byte) []Reply {
	var out []Reply
	for _, line := range bytes.Split(stream, []byte("\r\n")) {
		code, text, ok := ParseReplyLine(line)
		if !ok {
			continue
		}
		out = append(out, Reply{Code: code, Text: string(text)})
	}
	return out
}

// ParseReplyLine parses one CRLF-stripped reply line in place: the
// returned text aliases line and nothing is allocated. ok is false for
// continuation lines, partial lines, and anything without a valid
// three-digit code.
func ParseReplyLine(line []byte) (code int, text []byte, ok bool) {
	if len(line) < 4 || line[3] != ' ' {
		return 0, nil, false
	}
	for _, c := range line[:3] {
		if c < '0' || c > '9' {
			return 0, nil, false
		}
	}
	code = int(line[0]-'0')*100 + int(line[1]-'0')*10 + int(line[2]-'0')
	if code < 100 {
		return 0, nil, false
	}
	return code, line[4:], true
}

// PasvPort extracts the advertised data port from a 227 reply, with ok
// false when the reply is not a parseable PASV response.
func PasvPort(r Reply) (port uint16, ok bool) {
	if r.Code != 227 {
		return 0, false
	}
	return PasvPortFromText(r.Text)
}

// PasvPortFromText extracts the data port from the text of a 227 reply
// ("Entering Passive Mode (h1,h2,h3,h4,p1,p2)") without allocating; it
// accepts the text as either a string or a byte slice so replay can feed
// reassembled stream bytes directly.
func PasvPortFromText[T ~string | ~[]byte](text T) (port uint16, ok bool) {
	open, close := -1, -1
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case '(':
			if open < 0 {
				open = i
			}
		case ')':
			if open >= 0 && close < 0 {
				close = i
			}
		}
	}
	if open < 0 || close < open {
		return 0, false
	}
	// Walk the six comma-separated decimal fields; only the last two (the
	// port halves) are kept.
	var fields [6]int
	field, n := 0, -1
	ended := false // digits already ended by trailing whitespace
	for i := open + 1; i <= close; i++ {
		c := text[i]
		switch {
		case c >= '0' && c <= '9':
			if ended {
				return 0, false // "12 3" is not a field
			}
			if n < 0 {
				n = 0
			}
			n = n*10 + int(c-'0')
			if n > 255 {
				return 0, false
			}
		case c == ',' || i == close:
			if n < 0 || field >= 6 {
				return 0, false
			}
			fields[field] = n
			field++
			n = -1
			ended = false
		case c == ' ' || c == '\t':
			// Tolerate whitespace around fields, as the string parser did.
			ended = n >= 0
		default:
			return 0, false
		}
	}
	if field != 6 {
		return 0, false
	}
	return uint16(fields[4])<<8 | uint16(fields[5]), true
}

// Session summarizes one parsed control connection.
type Session struct {
	User       string
	Transfers  int // RETR + STOR commands
	Retrievals int
	Stores     int
	// DataPorts lists ports advertised by PASV replies, in order.
	DataPorts []uint16
	LoggedIn  bool
	Completed int // 226 transfer-complete replies
}

// Analyze pairs a control connection's two directions into a Session.
func Analyze(clientStream, serverStream []byte) Session {
	var s Session
	for _, c := range ParseCommands(clientStream) {
		switch c.Verb {
		case "USER":
			s.User = c.Arg
		case "RETR":
			s.Transfers++
			s.Retrievals++
		case "STOR":
			s.Transfers++
			s.Stores++
		}
	}
	for _, r := range ParseReplies(serverStream) {
		switch {
		case r.Code == 230:
			s.LoggedIn = true
		case r.Code == 226:
			s.Completed++
		case r.Code == 227:
			if p, ok := PasvPort(r); ok {
				s.DataPorts = append(s.DataPorts, p)
			}
		}
	}
	return s
}

// Dialogue builds the canonical control exchange for a passive-mode
// retrieval, returning alternating turns (server speaks first).
type Turn struct {
	FromClient bool
	Data       []byte
}

// RetrievalDialogue produces the control conversation for fetching one
// file over a PASV data connection on dataPort.
func RetrievalDialogue(user, file string, serverIP [4]byte, dataPort uint16) []Turn {
	return []Turn{
		{Data: EncodeReply(Reply{220, "FTP server ready"})},
		{FromClient: true, Data: EncodeCommand(Command{"USER", user})},
		{Data: EncodeReply(Reply{331, "Password required"})},
		{FromClient: true, Data: EncodeCommand(Command{"PASS", "guest"})},
		{Data: EncodeReply(Reply{230, "User logged in"})},
		{FromClient: true, Data: EncodeCommand(Command{"PASV", ""})},
		{Data: EncodePasvReply(serverIP, dataPort)},
		{FromClient: true, Data: EncodeCommand(Command{"RETR", file})},
		{Data: EncodeReply(Reply{150, "Opening BINARY mode data connection"})},
		{Data: EncodeReply(Reply{226, "Transfer complete"})},
		{FromClient: true, Data: EncodeCommand(Command{"QUIT", ""})},
		{Data: EncodeReply(Reply{221, "Goodbye"})},
	}
}
