package ftp

import (
	"testing"
	"testing/quick"
)

func TestCommandRoundTrip(t *testing.T) {
	cmds := []Command{
		{"USER", "anonymous"},
		{"PASS", "guest"},
		{"PASV", ""},
		{"RETR", "pub/data.tar"},
		{"QUIT", ""},
	}
	var stream []byte
	for _, c := range cmds {
		stream = append(stream, EncodeCommand(c)...)
	}
	got := ParseCommands(stream)
	if len(got) != len(cmds) {
		t.Fatalf("parsed %d commands, want %d", len(got), len(cmds))
	}
	for i, c := range cmds {
		if got[i] != c {
			t.Errorf("command %d = %+v, want %+v", i, got[i], c)
		}
	}
}

func TestReplyRoundTrip(t *testing.T) {
	replies := []Reply{{220, "ready"}, {230, "logged in"}, {226, "done"}}
	var stream []byte
	for _, r := range replies {
		stream = append(stream, EncodeReply(r)...)
	}
	got := ParseReplies(stream)
	if len(got) != 3 {
		t.Fatalf("parsed %d replies", len(got))
	}
	for i, r := range replies {
		if got[i] != r {
			t.Errorf("reply %d = %+v", i, got[i])
		}
	}
}

func TestPasvPort(t *testing.T) {
	r := ParseReplies(EncodePasvReply([4]byte{128, 3, 10, 2}, 51234))
	if len(r) != 1 {
		t.Fatal("pasv reply not parsed")
	}
	port, ok := PasvPort(r[0])
	if !ok || port != 51234 {
		t.Errorf("port = %d ok=%v", port, ok)
	}
	if _, ok := PasvPort(Reply{Code: 226, Text: "done"}); ok {
		t.Error("non-227 should not parse")
	}
	if _, ok := PasvPort(Reply{Code: 227, Text: "no tuple here"}); ok {
		t.Error("malformed 227 should not parse")
	}
}

func TestAnalyzeRetrievalDialogue(t *testing.T) {
	turns := RetrievalDialogue("alice", "big.iso", [4]byte{128, 3, 10, 2}, 40001)
	var cli, srv []byte
	for _, turn := range turns {
		if turn.FromClient {
			cli = append(cli, turn.Data...)
		} else {
			srv = append(srv, turn.Data...)
		}
	}
	s := Analyze(cli, srv)
	if s.User != "alice" || !s.LoggedIn {
		t.Errorf("session = %+v", s)
	}
	if s.Transfers != 1 || s.Retrievals != 1 || s.Stores != 0 {
		t.Errorf("transfers: %+v", s)
	}
	if s.Completed != 1 {
		t.Errorf("completed = %d", s.Completed)
	}
	if len(s.DataPorts) != 1 || s.DataPorts[0] != 40001 {
		t.Errorf("data ports = %v", s.DataPorts)
	}
}

func TestGarbageStreams(t *testing.T) {
	if got := ParseCommands([]byte("\x00\x01 binary junk\r\nlowercase arg\r\n")); len(got) != 0 {
		t.Errorf("garbage commands: %v", got)
	}
	if got := ParseReplies([]byte("not a reply\r\n99 too low\r\nxyz 1\r\n")); len(got) != 0 {
		t.Errorf("garbage replies: %v", got)
	}
}

// Property: PASV round-trips every port.
func TestPasvProperty(t *testing.T) {
	f := func(port uint16, ip [4]byte) bool {
		replies := ParseReplies(EncodePasvReply(ip, port))
		if len(replies) != 1 {
			return false
		}
		got, ok := PasvPort(replies[0])
		return ok && got == port
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: parsers never panic and never invent commands from arbitrary
// bytes lacking CRLF structure.
func TestParseFuzz(t *testing.T) {
	f := func(data []byte) bool {
		_ = ParseCommands(data)
		_ = ParseReplies(data)
		_ = Analyze(data, data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
