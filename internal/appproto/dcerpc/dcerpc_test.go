package dcerpc

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestUUIDParseAndString(t *testing.T) {
	if got := IfEPM.String(); got != "e1af8308-5d1f-11c9-91a4-08002b14a0fa" {
		t.Errorf("EPM uuid = %s", got)
	}
	if IfNetLogon == IfLsaRPC || IfNetLogon == IfSpoolss {
		t.Error("interface UUIDs must be distinct")
	}
}

func TestInterfaceNames(t *testing.T) {
	cases := map[string]UUID{
		"NetLogon": IfNetLogon,
		"LsaRPC":   IfLsaRPC,
		"Spoolss":  IfSpoolss,
		"EPM":      IfEPM,
	}
	for want, u := range cases {
		if got := InterfaceName(u); got != want {
			t.Errorf("InterfaceName(%s) = %q", u, got)
		}
	}
	if InterfaceName(UUID{1, 2, 3}) != "unknown" {
		t.Error("unknown uuid should be unknown")
	}
}

func TestBindRoundTrip(t *testing.T) {
	p := &PDU{Type: PTBind, CallID: 9, Iface: IfSpoolss}
	got, n, err := Decode(Encode(p))
	if err != nil {
		t.Fatal(err)
	}
	if n != len(Encode(p)) {
		t.Errorf("consumed %d", n)
	}
	if got.Type != PTBind || got.CallID != 9 || got.Iface != IfSpoolss {
		t.Errorf("got %+v", got)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	stub := bytes.Repeat([]byte{0xAB}, 1024)
	p := &PDU{Type: PTRequest, CallID: 3, Opnum: OpSpoolssWritePrinter, Stub: stub}
	got, _, err := Decode(Encode(p))
	if err != nil {
		t.Fatal(err)
	}
	if got.Opnum != OpSpoolssWritePrinter || got.StubLen != 1024 || !bytes.Equal(got.Stub, stub) {
		t.Errorf("got opnum=%d stublen=%d", got.Opnum, got.StubLen)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode([]byte{5, 0}); err != ErrShort {
		t.Errorf("short: %v", err)
	}
	bad := Encode(&PDU{Type: PTRequest})
	bad[0] = 4
	if _, _, err := Decode(bad); err != ErrBadVersion {
		t.Errorf("version: %v", err)
	}
}

func TestFunctionNames(t *testing.T) {
	cases := []struct {
		iface UUID
		op    uint16
		want  string
	}{
		{IfSpoolss, OpSpoolssWritePrinter, "Spoolss/WritePrinter"},
		{IfSpoolss, OpSpoolssOpenPrinter, "Spoolss/other"},
		{IfNetLogon, OpNetrLogonSamLogon, "NetLogon"},
		{IfLsaRPC, OpLsarLookupNames, "LsaRPC"},
		{IfEPM, OpEpmMap, "EPM"},
		{UUID{9}, 5, "Other"},
	}
	for _, c := range cases {
		if got := FunctionName(c.iface, c.op); got != c.want {
			t.Errorf("FunctionName(%s, %d) = %q, want %q", c.iface, c.op, got, c.want)
		}
	}
}

func TestEpmMapResponse(t *testing.T) {
	data := EncodeEpmMapResponse(5, IfSpoolss, netip.AddrFrom4([4]byte{128, 3, 7, 5}), 1891)
	p, _, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	iface, host, port, ok := ParseEpmMapResponse(p)
	if !ok || iface != IfSpoolss || port != 1891 || host != netip.AddrFrom4([4]byte{128, 3, 7, 5}) {
		t.Errorf("parsed %v %v %d %v", iface, host, port, ok)
	}
}

func TestAnalyzerBindThenRequests(t *testing.T) {
	a := NewAnalyzer()
	var stream []byte
	stream = append(stream, Encode(&PDU{Type: PTBind, CallID: 1, Iface: IfSpoolss})...)
	for i := 0; i < 10; i++ {
		stream = append(stream, Encode(&PDU{Type: PTRequest, CallID: uint32(2 + i), Opnum: OpSpoolssWritePrinter, Stub: make([]byte, 4096)})...)
	}
	stream = append(stream, Encode(&PDU{Type: PTRequest, CallID: 99, Opnum: OpSpoolssOpenPrinter, Stub: make([]byte, 64)})...)
	a.Stream("pipe1", true, stream)
	if got := a.Requests.Get("Spoolss/WritePrinter"); got != 10 {
		t.Errorf("WritePrinter = %d", got)
	}
	if got := a.Bytes.Get("Spoolss/WritePrinter"); got != 40960 {
		t.Errorf("WritePrinter bytes = %d", got)
	}
	if got := a.Requests.Get("Spoolss/other"); got != 1 {
		t.Errorf("Spoolss/other = %d", got)
	}
	if u, ok := a.BoundInterface("pipe1"); !ok || u != IfSpoolss {
		t.Error("bind not recorded")
	}
}

func TestAnalyzerChannelsIndependent(t *testing.T) {
	a := NewAnalyzer()
	a.Stream("auth", true, Encode(&PDU{Type: PTBind, CallID: 1, Iface: IfNetLogon}))
	a.Stream("print", true, Encode(&PDU{Type: PTBind, CallID: 1, Iface: IfSpoolss}))
	a.Stream("auth", true, Encode(&PDU{Type: PTRequest, CallID: 2, Opnum: OpNetrLogonSamLogon, Stub: make([]byte, 100)}))
	a.Stream("print", true, Encode(&PDU{Type: PTRequest, CallID: 2, Opnum: OpSpoolssWritePrinter, Stub: make([]byte, 100)}))
	if a.Requests.Get("NetLogon") != 1 || a.Requests.Get("Spoolss/WritePrinter") != 1 {
		t.Errorf("cross-channel contamination: %v", a.Requests.Keys())
	}
}

func TestAnalyzerEpmRegistersPort(t *testing.T) {
	a := NewAnalyzer()
	a.Stream("epm", true, Encode(&PDU{Type: PTBind, CallID: 1, Iface: IfEPM}))
	a.Stream("epm", false, EncodeEpmMapResponse(2, IfSpoolss, netip.AddrFrom4([4]byte{128, 3, 7, 5}), 2101))
	u, ok := a.MappedPorts[2101]
	if !ok || u != IfSpoolss {
		t.Errorf("mapped ports = %v", a.MappedPorts)
	}
}

func TestAnalyzerUnboundRequestIsOther(t *testing.T) {
	a := NewAnalyzer()
	a.Stream("mystery", true, Encode(&PDU{Type: PTRequest, CallID: 1, Opnum: 7, Stub: make([]byte, 10)}))
	if a.Requests.Get("Other") != 1 {
		t.Errorf("requests: %v", a.Requests.Keys())
	}
}

// Property: round-trip of arbitrary request PDUs.
func TestRoundTripProperty(t *testing.T) {
	f := func(callID uint32, opnum uint16, stub []byte) bool {
		if len(stub) > 4000 {
			stub = stub[:4000]
		}
		p := &PDU{Type: PTRequest, CallID: callID, Opnum: opnum, Stub: stub}
		got, n, err := Decode(Encode(p))
		if err != nil {
			return false
		}
		return n == len(Encode(p)) && got.CallID == callID && got.Opnum == opnum && bytes.Equal(got.Stub, stub)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: decoder and analyzer survive arbitrary bytes.
func TestFuzzProperty(t *testing.T) {
	f := func(data []byte) bool {
		_, _, _ = Decode(data)
		a := NewAnalyzer()
		a.Stream("x", true, data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAnalyzerStream(b *testing.B) {
	var stream []byte
	stream = append(stream, Encode(&PDU{Type: PTBind, CallID: 1, Iface: IfSpoolss})...)
	for i := 0; i < 20; i++ {
		stream = append(stream, Encode(&PDU{Type: PTRequest, CallID: uint32(i), Opnum: OpSpoolssWritePrinter, Stub: make([]byte, 1024)})...)
	}
	b.SetBytes(int64(len(stream)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := NewAnalyzer()
		a.Stream("p", true, stream)
	}
}
