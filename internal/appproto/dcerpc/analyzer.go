package dcerpc

import (
	"enttrace/internal/stats"
)

// Analyzer accumulates the Table 11 function breakdown. One Analyzer
// serves a whole trace; per-channel bind state is keyed by an opaque
// channel identifier supplied by the caller (a connection/pipe key).
type Analyzer struct {
	// Requests counts request PDUs per function name; Bytes sums stub
	// bytes (claimed lengths) per function name.
	Requests *stats.Counter
	Bytes    *stats.Counter
	// MappedPorts collects (port → interface) from EPM responses, for
	// dynamic service-port registration.
	MappedPorts map[uint16]UUID

	binds map[string]UUID
}

// NewAnalyzer returns an empty analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		Requests:    stats.NewCounter(),
		Bytes:       stats.NewCounter(),
		MappedPorts: make(map[uint16]UUID),
		binds:       make(map[string]UUID),
	}
}

// Stream consumes one direction of a DCE/RPC channel (a named pipe's
// payload bytes or a stand-alone TCP stream). channel identifies the
// conversation so binds pair with later requests; fromClient marks the
// request direction.
func (a *Analyzer) Stream(channel string, fromClient bool, data []byte) {
	for len(data) > 0 {
		p, n, err := Decode(data)
		if err != nil || n == 0 {
			return
		}
		a.PDU(channel, fromClient, p)
		data = data[n:]
	}
}

// PDU consumes one already-decoded PDU.
func (a *Analyzer) PDU(channel string, fromClient bool, p *PDU) {
	switch p.Type {
	case PTBind:
		a.binds[channel] = p.Iface
	case PTBindAck:
		// Bind-acks on stand-alone channels also reveal the interface.
		if _, known := a.binds[channel]; !known {
			a.binds[channel] = p.Iface
		}
	case PTRequest:
		iface := a.binds[channel]
		fn := FunctionName(iface, p.Opnum)
		a.Requests.Inc(fn)
		a.Bytes.Add(fn, int64(p.StubLen))
	case PTResponse:
		iface := a.binds[channel]
		if InterfaceName(iface) == "EPM" {
			if mapped, port, ok := ParseEpmMapResponse(p); ok {
				a.MappedPorts[port] = mapped
			}
		}
		a.Bytes.Add(FunctionName(iface, 0), int64(p.StubLen))
	}
}

// BoundInterface reports the interface bound on a channel, if any.
func (a *Analyzer) BoundInterface(channel string) (UUID, bool) {
	u, ok := a.binds[channel]
	return u, ok
}
