package dcerpc

import (
	"enttrace/internal/stats"
)

// ChanKey identifies one replay channel without allocating: the trace
// ordinal (connection first-packet indices restart at zero every trace),
// the connection's first-packet index, and which side of the
// conversation the channel carries. It replaces the fmt.Sprintf string
// keys the replay used to build per connection.
type ChanKey struct {
	// Trace is the analyzer-lifetime trace ordinal.
	Trace int
	// Conn is the connection's global first-packet index within the trace.
	Conn int64
	// Side distinguishes per-direction channels (Endpoint Mapper replay
	// walks each direction as its own channel) from whole-connection
	// channels.
	Side uint8
}

// ChanKey sides.
const (
	SideBoth   uint8 = iota // one channel carries both directions
	SideClient              // client→server half
	SideServer              // server→client half
)

// Analyzer accumulates the Table 11 function breakdown. One Analyzer
// serves a whole trace; per-channel bind state is keyed by an opaque
// channel identifier supplied by the caller — either a string (a
// connection/pipe key) or an allocation-free ChanKey.
type Analyzer struct {
	// Requests counts request PDUs per function name; Bytes sums stub
	// bytes (claimed lengths) per function name.
	Requests *stats.Counter
	Bytes    *stats.Counter
	// MappedPorts collects (port → interface) from EPM responses, for
	// dynamic service-port registration.
	MappedPorts map[uint16]UUID

	binds  map[string]UUID
	bindsK map[ChanKey]UUID
}

// NewAnalyzer returns an empty analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		Requests:    stats.NewCounter(),
		Bytes:       stats.NewCounter(),
		MappedPorts: make(map[uint16]UUID),
		binds:       make(map[string]UUID),
		bindsK:      make(map[ChanKey]UUID),
	}
}

// Merge folds other's accumulated state into a. The function counters
// are commutative; bind state unions correctly because channel keys are
// connection-scoped, so two sources never carry fragments of the same
// channel (the parallel replay assigns each connection to exactly one
// shard).
func (a *Analyzer) Merge(other *Analyzer) {
	a.Requests.Merge(other.Requests)
	a.Bytes.Merge(other.Bytes)
	for port, iface := range other.MappedPorts {
		a.MappedPorts[port] = iface
	}
	for ch, iface := range other.binds {
		a.binds[ch] = iface
	}
	for ch, iface := range other.bindsK {
		a.bindsK[ch] = iface
	}
}

// Snapshot returns an independent analyzer holding the function
// counters and endpoint mappings accumulated since the last Reset. Bind
// state stays behind (the epoch contract): a request PDU arriving after
// the cut still resolves against the bind its channel saw before it.
func (a *Analyzer) Snapshot() *Analyzer {
	s := NewAnalyzer()
	s.Requests.Merge(a.Requests)
	s.Bytes.Merge(a.Bytes)
	for port, iface := range a.MappedPorts {
		s.MappedPorts[port] = iface
	}
	return s
}

// Reset clears the banked counters and mappings in place; per-channel
// bind state persists across the cut.
func (a *Analyzer) Reset() {
	a.Requests.Reset()
	a.Bytes.Reset()
	clear(a.MappedPorts)
}

// Cut is Snapshot followed by Reset in one move (nil when nothing was
// banked); per-channel bind state is untouched, exactly as with
// Snapshot/Reset.
func (a *Analyzer) Cut() *Analyzer {
	if a.Requests.Total() == 0 && a.Bytes.Total() == 0 && len(a.MappedPorts) == 0 {
		return nil
	}
	s := &Analyzer{Requests: a.Requests, Bytes: a.Bytes, MappedPorts: a.MappedPorts}
	a.Requests, a.Bytes = stats.NewCounter(), stats.NewCounter()
	a.MappedPorts = make(map[uint16]UUID)
	return s
}

// Stream consumes one direction of a DCE/RPC channel (a named pipe's
// payload bytes or a stand-alone TCP stream). channel identifies the
// conversation so binds pair with later requests; fromClient marks the
// request direction.
func (a *Analyzer) Stream(channel string, fromClient bool, data []byte) {
	for len(data) > 0 {
		p, n, err := Decode(data)
		if err != nil || n == 0 {
			return
		}
		a.PDU(channel, fromClient, p)
		data = data[n:]
	}
}

// StreamKey is Stream with an allocation-free channel key.
func (a *Analyzer) StreamKey(key ChanKey, fromClient bool, data []byte) {
	for len(data) > 0 {
		p, n, err := Decode(data)
		if err != nil || n == 0 {
			return
		}
		a.PDUKey(key, fromClient, p)
		data = data[n:]
	}
}

// PDU consumes one already-decoded PDU.
func (a *Analyzer) PDU(channel string, fromClient bool, p *PDU) {
	switch p.Type {
	case PTBind:
		a.binds[channel] = p.Iface
	case PTBindAck:
		// Bind-acks on stand-alone channels also reveal the interface.
		if _, known := a.binds[channel]; !known {
			a.binds[channel] = p.Iface
		}
	default:
		a.accumulate(a.binds[channel], p)
	}
}

// PDUKey is PDU with an allocation-free channel key.
func (a *Analyzer) PDUKey(key ChanKey, fromClient bool, p *PDU) {
	switch p.Type {
	case PTBind:
		a.bindsK[key] = p.Iface
	case PTBindAck:
		if _, known := a.bindsK[key]; !known {
			a.bindsK[key] = p.Iface
		}
	default:
		a.accumulate(a.bindsK[key], p)
	}
}

// accumulate records a non-bind PDU against the channel's bound
// interface.
func (a *Analyzer) accumulate(iface UUID, p *PDU) {
	switch p.Type {
	case PTRequest:
		fn := FunctionName(iface, p.Opnum)
		a.Requests.Inc(fn)
		a.Bytes.Add(fn, int64(p.StubLen))
	case PTResponse:
		if InterfaceName(iface) == "EPM" {
			if mapped, _, port, ok := ParseEpmMapResponse(p); ok {
				a.MappedPorts[port] = mapped
			}
		}
		a.Bytes.Add(FunctionName(iface, 0), int64(p.StubLen))
	}
}

// BoundInterface reports the interface bound on a string channel, if any.
func (a *Analyzer) BoundInterface(channel string) (UUID, bool) {
	u, ok := a.binds[channel]
	return u, ok
}

// BoundInterfaceKey reports the interface bound on a ChanKey channel.
func (a *Analyzer) BoundInterfaceKey(key ChanKey) (UUID, bool) {
	u, ok := a.bindsK[key]
	return u, ok
}
