// Package dcerpc implements the DCE/RPC connection-oriented PDU format to
// the depth of the paper's §5.2.1 function breakdown (Table 11): bind PDUs
// carrying the abstract-syntax interface UUID, request PDUs carrying the
// operation number, and Endpoint Mapper map responses that reveal the
// ephemeral ports of services running over stand-alone TCP — which is how
// the paper's analysis discovers non-pipe DCE/RPC traffic.
//
// The 16-byte PDU header is wire-accurate (RFC-style C706 layout with
// little-endian data representation); bind and request bodies carry the
// fields the analysis consumes. The EPM map response uses a simplified
// 18-byte tower (port + interface UUID) rather than full C706 tower
// encoding — the analyzer and generator agree, which is the property the
// reproduction needs.
package dcerpc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// PDU types.
const (
	PTRequest  uint8 = 0
	PTResponse uint8 = 2
	PTBind     uint8 = 11
	PTBindAck  uint8 = 12
)

// UUID is a DCE interface identifier.
type UUID [16]byte

// Well-known interfaces from the paper's traces. Values are the real
// interface UUIDs (netlogon, lsarpc, spoolss, and the endpoint mapper).
var (
	IfNetLogon = mustUUID("12345678-1234-abcd-ef00-01234567cffb")
	IfLsaRPC   = mustUUID("12345778-1234-abcd-ef00-0123456789ab")
	IfSpoolss  = mustUUID("12345678-1234-abcd-ef00-0123456789ab")
	IfEPM      = mustUUID("e1af8308-5d1f-11c9-91a4-08002b14a0fa")
)

func mustUUID(s string) UUID {
	var u UUID
	hex := func(c byte) byte {
		switch {
		case c >= '0' && c <= '9':
			return c - '0'
		case c >= 'a' && c <= 'f':
			return c - 'a' + 10
		case c >= 'A' && c <= 'F':
			return c - 'A' + 10
		}
		panic("dcerpc: bad uuid literal")
	}
	j := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '-' {
			continue
		}
		u[j/2] |= hex(s[i]) << (4 * uint(1-j%2))
		j++
	}
	if j != 32 {
		panic("dcerpc: bad uuid length")
	}
	return u
}

// String renders the UUID in canonical form.
func (u UUID) String() string {
	return fmt.Sprintf("%x-%x-%x-%x-%x", u[0:4], u[4:6], u[6:8], u[8:10], u[10:16])
}

// InterfaceName names a bound interface for reporting.
func InterfaceName(u UUID) string {
	switch u {
	case IfNetLogon:
		return "NetLogon"
	case IfLsaRPC:
		return "LsaRPC"
	case IfSpoolss:
		return "Spoolss"
	case IfEPM:
		return "EPM"
	default:
		return "unknown"
	}
}

// Spoolss operation numbers the paper's Table 11 separates.
const (
	OpSpoolssWritePrinter uint16 = 19
	OpSpoolssOpenPrinter  uint16 = 1
	OpSpoolssEnumPrinters uint16 = 0
	OpSpoolssClosePrinter uint16 = 29
)

// NetLogon / LsaRPC representative opnums.
const (
	OpNetrLogonSamLogon uint16 = 2
	OpLsarLookupNames   uint16 = 14
	OpEpmMap            uint16 = 3
)

// FunctionName maps (interface, opnum) to the paper's Table 11 rows.
func FunctionName(iface UUID, opnum uint16) string {
	switch iface {
	case IfSpoolss:
		if opnum == OpSpoolssWritePrinter {
			return "Spoolss/WritePrinter"
		}
		return "Spoolss/other"
	case IfNetLogon:
		return "NetLogon"
	case IfLsaRPC:
		return "LsaRPC"
	case IfEPM:
		return "EPM"
	default:
		return "Other"
	}
}

// PDU is one connection-oriented DCE/RPC PDU.
type PDU struct {
	Type   uint8
	CallID uint32
	// Iface is set for bind/bind-ack PDUs.
	Iface UUID
	// Opnum is set for request PDUs.
	Opnum uint16
	// StubLen is the stub data length (request/response payload).
	StubLen int
	// Stub is the captured stub data.
	Stub []byte
}

// ErrShort reports a buffer too small for the fixed header.
var ErrShort = errors.New("dcerpc: truncated PDU")

// ErrBadVersion reports a PDU with the wrong RPC version.
var ErrBadVersion = errors.New("dcerpc: not a version-5 PDU")

const hdrLen = 16

// Encode serializes the PDU.
func Encode(p *PDU) []byte {
	var body []byte
	switch p.Type {
	case PTBind, PTBindAck:
		body = make([]byte, 4+16)
		// max xmit/recv frag sizes
		binary.LittleEndian.PutUint16(body[0:2], 4280)
		binary.LittleEndian.PutUint16(body[2:4], 4280)
		copy(body[4:20], p.Iface[:])
	case PTRequest:
		body = make([]byte, 8+len(p.Stub))
		binary.LittleEndian.PutUint32(body[0:4], uint32(len(p.Stub))) // alloc hint
		// context id at 4:6 stays 0
		binary.LittleEndian.PutUint16(body[6:8], p.Opnum)
		copy(body[8:], p.Stub)
	case PTResponse:
		body = make([]byte, 8+len(p.Stub))
		binary.LittleEndian.PutUint32(body[0:4], uint32(len(p.Stub)))
		copy(body[8:], p.Stub)
	}
	out := make([]byte, hdrLen+len(body))
	out[0] = 5 // RPC major version
	out[2] = p.Type
	out[3] = 0x03 // first+last fragment
	out[4] = 0x10 // little-endian data representation
	binary.LittleEndian.PutUint16(out[8:10], uint16(len(out)))
	binary.LittleEndian.PutUint32(out[12:16], p.CallID)
	copy(out[hdrLen:], body)
	return out
}

// Decode parses one PDU from data, returning it and the bytes consumed
// (the header-declared fragment length, clamped to the buffer).
func Decode(data []byte) (*PDU, int, error) {
	if len(data) < hdrLen {
		return nil, 0, ErrShort
	}
	if data[0] != 5 {
		return nil, 0, ErrBadVersion
	}
	p := &PDU{
		Type:   data[2],
		CallID: binary.LittleEndian.Uint32(data[12:16]),
	}
	fragLen := int(binary.LittleEndian.Uint16(data[8:10]))
	if fragLen < hdrLen {
		fragLen = hdrLen
	}
	consumed := fragLen
	if consumed > len(data) {
		consumed = len(data)
	}
	body := data[hdrLen:consumed]
	switch p.Type {
	case PTBind, PTBindAck:
		if len(body) >= 20 {
			copy(p.Iface[:], body[4:20])
		}
	case PTRequest:
		if len(body) >= 8 {
			p.StubLen = int(binary.LittleEndian.Uint32(body[0:4]))
			p.Opnum = binary.LittleEndian.Uint16(body[6:8])
			p.Stub = body[8:]
		}
	case PTResponse:
		if len(body) >= 8 {
			p.StubLen = int(binary.LittleEndian.Uint32(body[0:4]))
			p.Stub = body[8:]
		}
	}
	return p, consumed, nil
}

// EncodeEpmMapResponse builds an EPM ept_map response PDU whose stub
// reveals that iface is reachable at the given host and TCP port. Real
// C706 towers carry an ip_addr floor alongside the port floor for the
// same reason: the mapped endpoint may live on a different host than
// the endpoint mapper itself.
func EncodeEpmMapResponse(callID uint32, iface UUID, host netip.Addr, port uint16) []byte {
	stub := make([]byte, 22)
	binary.BigEndian.PutUint16(stub[0:2], port)
	copy(stub[2:18], iface[:])
	a4 := host.As4()
	copy(stub[18:22], a4[:])
	return Encode(&PDU{Type: PTResponse, CallID: callID, Stub: stub})
}

// ParseEpmMapResponse extracts (iface, host, port) from an EPM map
// response stub. ok is false when the stub is too short.
func ParseEpmMapResponse(p *PDU) (iface UUID, host netip.Addr, port uint16, ok bool) {
	if p.Type != PTResponse || len(p.Stub) < 22 {
		return UUID{}, netip.Addr{}, 0, false
	}
	port = binary.BigEndian.Uint16(p.Stub[0:2])
	copy(iface[:], p.Stub[2:18])
	host = netip.AddrFrom4([4]byte(p.Stub[18:22]))
	return iface, host, port, true
}
