package ncp

import (
	"net/netip"

	"enttrace/internal/stats"
)

// Analyzer accumulates Table 14's request/byte mix, Figure 7's requests
// per host pair, Figure 8's size distributions, and the request success
// rate from completion codes.
type Analyzer struct {
	Requests             *stats.Counter
	Bytes                *stats.Counter
	ReqSizes, ReplySizes *stats.Dist
	PerPair              map[[2]netip.Addr]int64
	OK, Failed           int64

	// pending pairs replies to requests by (pair, sequence).
	pending map[pendKey]uint8
}

type pendKey struct {
	client, server netip.Addr
	seq            uint8
}

// NewAnalyzer returns an empty analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		Requests:   stats.NewCounter(),
		Bytes:      stats.NewCounter(),
		ReqSizes:   stats.NewDist(),
		ReplySizes: stats.NewDist(),
		PerPair:    make(map[[2]netip.Addr]int64),
		pending:    make(map[pendKey]uint8),
	}
}

func pairOf(a, b netip.Addr) [2]netip.Addr {
	if a.Compare(b) > 0 {
		a, b = b, a
	}
	return [2]netip.Addr{a, b}
}

// Merge folds other's accumulated state into a. Counters, distributions,
// and per-pair sums are commutative; the request/reply pairing state
// unions correctly when each (client, server) host pair was fed to
// exactly one source.
func (a *Analyzer) Merge(other *Analyzer) {
	a.Requests.Merge(other.Requests)
	a.Bytes.Merge(other.Bytes)
	a.ReqSizes.Merge(other.ReqSizes)
	a.ReplySizes.Merge(other.ReplySizes)
	for pair, n := range other.PerPair {
		a.PerPair[pair] += n
	}
	a.OK += other.OK
	a.Failed += other.Failed
	for k, v := range other.pending {
		a.pending[k] = v
	}
}

// Snapshot returns an independent analyzer holding the statistics
// accumulated since the last Reset; the request/reply pairing state
// stays behind (the epoch contract), so replies pair across cuts.
func (a *Analyzer) Snapshot() *Analyzer {
	s := NewAnalyzer()
	s.Requests.Merge(a.Requests)
	s.Bytes.Merge(a.Bytes)
	s.ReqSizes.Merge(a.ReqSizes)
	s.ReplySizes.Merge(a.ReplySizes)
	for pair, n := range a.PerPair {
		s.PerPair[pair] = n
	}
	s.OK, s.Failed = a.OK, a.Failed
	return s
}

// Reset clears the banked statistics in place; pending request state
// persists across the cut.
func (a *Analyzer) Reset() {
	a.Requests.Reset()
	a.Bytes.Reset()
	a.ReqSizes.Reset()
	a.ReplySizes.Reset()
	clear(a.PerPair)
	a.OK, a.Failed = 0, 0
}

// Cut is Snapshot followed by Reset in one move (nil when nothing was
// banked); call/reply pairing state is untouched.
func (a *Analyzer) Cut() *Analyzer {
	if a.Requests.Total() == 0 && a.Bytes.Total() == 0 && a.ReqSizes.N() == 0 &&
		a.ReplySizes.N() == 0 && len(a.PerPair) == 0 && a.OK == 0 && a.Failed == 0 {
		return nil
	}
	s := &Analyzer{
		Requests: a.Requests, Bytes: a.Bytes,
		ReqSizes: a.ReqSizes, ReplySizes: a.ReplySizes,
		PerPair: a.PerPair, OK: a.OK, Failed: a.Failed,
	}
	a.Requests, a.Bytes = stats.NewCounter(), stats.NewCounter()
	a.ReqSizes, a.ReplySizes = stats.NewDist(), stats.NewDist()
	a.PerPair = make(map[[2]netip.Addr]int64)
	a.OK, a.Failed = 0, 0
	return s
}

// Stream consumes one direction of an NCP connection's reassembled bytes.
func (a *Analyzer) Stream(src, dst netip.Addr, data []byte) {
	for len(data) > 0 {
		m, n, err := Decode(data)
		if err != nil || n == 0 {
			return
		}
		a.message(src, dst, m)
		data = data[n:]
	}
}

func (a *Analyzer) message(src, dst netip.Addr, m *Msg) {
	name := FnName(m.Function)
	if m.Request {
		a.Requests.Inc(name)
		a.ReqSizes.Observe(float64(hdrLen + m.PayloadLen))
		a.PerPair[pairOf(src, dst)]++
		if m.Function == FnWriteFile {
			a.Bytes.Add(name, int64(m.PayloadLen))
		}
		a.pending[pendKey{client: src, server: dst, seq: m.Sequence}] = m.Function
		return
	}
	key := pendKey{client: dst, server: src, seq: m.Sequence}
	if _, ok := a.pending[key]; ok {
		delete(a.pending, key)
	}
	a.ReplySizes.Observe(float64(hdrLen + m.PayloadLen))
	if m.Completion == 0 {
		a.OK++
		if m.Function == FnReadFile {
			a.Bytes.Add(FnName(m.Function), int64(m.PayloadLen))
		}
	} else {
		a.Failed++
	}
}

// SuccessRate is successful replies over all replies.
func (a *Analyzer) SuccessRate() float64 {
	total := a.OK + a.Failed
	if total == 0 {
		return 0
	}
	return float64(a.OK) / float64(total)
}
