package ncp

import (
	"net/netip"

	"enttrace/internal/stats"
)

// Analyzer accumulates Table 14's request/byte mix, Figure 7's requests
// per host pair, Figure 8's size distributions, and the request success
// rate from completion codes.
type Analyzer struct {
	Requests             *stats.Counter
	Bytes                *stats.Counter
	ReqSizes, ReplySizes *stats.Dist
	PerPair              map[[2]netip.Addr]int64
	OK, Failed           int64

	// pending pairs replies to requests by (pair, sequence).
	pending map[pendKey]uint8
}

type pendKey struct {
	client, server netip.Addr
	seq            uint8
}

// NewAnalyzer returns an empty analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		Requests:   stats.NewCounter(),
		Bytes:      stats.NewCounter(),
		ReqSizes:   stats.NewDist(),
		ReplySizes: stats.NewDist(),
		PerPair:    make(map[[2]netip.Addr]int64),
		pending:    make(map[pendKey]uint8),
	}
}

func pairOf(a, b netip.Addr) [2]netip.Addr {
	if a.Compare(b) > 0 {
		a, b = b, a
	}
	return [2]netip.Addr{a, b}
}

// Merge folds other's accumulated state into a. Counters, distributions,
// and per-pair sums are commutative; the request/reply pairing state
// unions correctly when each (client, server) host pair was fed to
// exactly one source.
func (a *Analyzer) Merge(other *Analyzer) {
	a.Requests.Merge(other.Requests)
	a.Bytes.Merge(other.Bytes)
	a.ReqSizes.Merge(other.ReqSizes)
	a.ReplySizes.Merge(other.ReplySizes)
	for pair, n := range other.PerPair {
		a.PerPair[pair] += n
	}
	a.OK += other.OK
	a.Failed += other.Failed
	for k, v := range other.pending {
		a.pending[k] = v
	}
}

// Stream consumes one direction of an NCP connection's reassembled bytes.
func (a *Analyzer) Stream(src, dst netip.Addr, data []byte) {
	for len(data) > 0 {
		m, n, err := Decode(data)
		if err != nil || n == 0 {
			return
		}
		a.message(src, dst, m)
		data = data[n:]
	}
}

func (a *Analyzer) message(src, dst netip.Addr, m *Msg) {
	name := FnName(m.Function)
	if m.Request {
		a.Requests.Inc(name)
		a.ReqSizes.Observe(float64(hdrLen + m.PayloadLen))
		a.PerPair[pairOf(src, dst)]++
		if m.Function == FnWriteFile {
			a.Bytes.Add(name, int64(m.PayloadLen))
		}
		a.pending[pendKey{client: src, server: dst, seq: m.Sequence}] = m.Function
		return
	}
	key := pendKey{client: dst, server: src, seq: m.Sequence}
	if _, ok := a.pending[key]; ok {
		delete(a.pending, key)
	}
	a.ReplySizes.Observe(float64(hdrLen + m.PayloadLen))
	if m.Completion == 0 {
		a.OK++
		if m.Function == FnReadFile {
			a.Bytes.Add(FnName(m.Function), int64(m.PayloadLen))
		}
	} else {
		a.Failed++
	}
}

// SuccessRate is successful replies over all replies.
func (a *Analyzer) SuccessRate() float64 {
	total := a.OK + a.Failed
	if total == 0 {
		return 0
	}
	return float64(a.OK) / float64(total)
}
