package ncp

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestFnNames(t *testing.T) {
	cases := map[uint8]string{
		FnReadFile:    "Read",
		FnWriteFile:   "Write",
		FnFileDirInfo: "FileDirInfo",
		FnOpenFile:    "File Open/Close",
		FnCloseFile:   "File Open/Close",
		FnGetFileSize: "File Size",
		FnSearchFile:  "File Search",
		FnDirService:  "Directory Service",
		7:             "Other",
	}
	for fn, want := range cases {
		if got := FnName(fn); got != want {
			t.Errorf("FnName(%d) = %q, want %q", fn, got, want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	m := &Msg{Request: true, Sequence: 9, Function: FnWriteFile, Payload: make([]byte, 8000)}
	got, n, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if n != hdrLen+8000 {
		t.Errorf("consumed %d", n)
	}
	if !got.Request || got.Sequence != 9 || got.Function != FnWriteFile || got.PayloadLen != 8000 {
		t.Errorf("got %+v", got)
	}
}

func TestBadType(t *testing.T) {
	if _, _, err := Decode([]byte{0x11, 0x11, 0, 0, 0, 0, 0, 0, 0}); err != ErrBadType {
		t.Errorf("err = %v", err)
	}
	if _, _, err := Decode([]byte{0x22}); err != ErrShort {
		t.Errorf("short err = %v", err)
	}
}

func TestCanonicalSizes(t *testing.T) {
	// Figure 8's modes: 14-byte read request, 2-byte completion-only write
	// reply... our framing carries a 9-byte header, so "2-byte reply"
	// means header-only (payload 0) and the read request is header+5=14.
	readReq := RequestFor(1, FnReadFile, 0)
	if got := len(Encode(readReq)); got != 14 {
		t.Errorf("read request = %d bytes, want 14", got)
	}
	writeReply := ReplyFor(&Msg{Function: FnWriteFile, Sequence: 1}, 0)
	if got := len(Encode(writeReply)); got != hdrLen {
		t.Errorf("write reply = %d bytes, want header-only %d", got, hdrLen)
	}
	sizeReply := ReplyFor(&Msg{Function: FnGetFileSize, Sequence: 1}, 0)
	if got := len(Encode(sizeReply)); got != 10 {
		t.Errorf("file-size reply = %d bytes, want 10", got)
	}
	readReply := ReplyFor(&Msg{Function: FnReadFile, Sequence: 1}, 260)
	if got := len(Encode(readReply)); got != hdrLen+260 {
		t.Errorf("read reply = %d", got)
	}
}

func TestTruncatedPayload(t *testing.T) {
	m := &Msg{Request: true, Function: FnWriteFile, Payload: make([]byte, 5000)}
	raw := Encode(m)[:100]
	got, n, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.PayloadLen != 5000 {
		t.Errorf("claimed = %d", got.PayloadLen)
	}
	if n != 100 {
		t.Errorf("consumed = %d", n)
	}
}

var (
	cli = netip.MustParseAddr("10.2.2.2")
	srv = netip.MustParseAddr("10.0.0.24")
)

func TestAnalyzerRequestReply(t *testing.T) {
	a := NewAnalyzer()
	req := RequestFor(3, FnReadFile, 0)
	a.Stream(cli, srv, Encode(req))
	a.Stream(srv, cli, Encode(ReplyFor(req, 8000)))
	if a.Requests.Get("Read") != 1 {
		t.Errorf("read reqs = %d", a.Requests.Get("Read"))
	}
	if a.Bytes.Get("Read") != 8000 {
		t.Errorf("read bytes = %d", a.Bytes.Get("Read"))
	}
	if a.OK != 1 {
		t.Errorf("ok = %d", a.OK)
	}
	if a.PerPair[pairOf(cli, srv)] != 1 {
		t.Error("per-pair")
	}
}

func TestAnalyzerWriteBytesOnRequest(t *testing.T) {
	a := NewAnalyzer()
	a.Stream(cli, srv, Encode(RequestFor(1, FnWriteFile, 4096)))
	if a.Bytes.Get("Write") != 4096 {
		t.Errorf("write bytes = %d", a.Bytes.Get("Write"))
	}
}

func TestAnalyzerFailedRequests(t *testing.T) {
	a := NewAnalyzer()
	// "failures dominated by File/Dir Info requests"
	req := RequestFor(2, FnFileDirInfo, 0)
	a.Stream(cli, srv, Encode(req))
	reply := ReplyFor(req, 0)
	reply.Completion = 0x89 // access denied
	reply.Payload = nil
	a.Stream(srv, cli, Encode(reply))
	if a.Failed != 1 || a.OK != 0 {
		t.Errorf("ok=%d failed=%d", a.OK, a.Failed)
	}
	if a.SuccessRate() != 0 {
		t.Errorf("rate = %v", a.SuccessRate())
	}
}

func TestAnalyzerBackToBackMessages(t *testing.T) {
	a := NewAnalyzer()
	var stream []byte
	for i := 0; i < 50; i++ {
		stream = append(stream, Encode(RequestFor(uint8(i), FnReadFile, 0))...)
	}
	a.Stream(cli, srv, stream)
	if a.Requests.Get("Read") != 50 {
		t.Errorf("reads = %d", a.Requests.Get("Read"))
	}
	if a.ReqSizes.N() != 50 || a.ReqSizes.Median() != 14 {
		t.Errorf("req sizes: n=%d median=%v", a.ReqSizes.N(), a.ReqSizes.Median())
	}
}

// Property: round-trip for arbitrary function/sequence/payload.
func TestRoundTripProperty(t *testing.T) {
	f := func(req bool, seq, fn uint8, payload []byte) bool {
		if len(payload) > 3000 {
			payload = payload[:3000]
		}
		m := &Msg{Request: req, Sequence: seq, Function: fn, Payload: payload}
		got, _, err := Decode(Encode(m))
		if err != nil {
			return false
		}
		return got.Request == req && got.Sequence == seq && got.Function == fn && got.PayloadLen == len(payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFuzz(t *testing.T) {
	f := func(data []byte) bool {
		a := NewAnalyzer()
		a.Stream(cli, srv, data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
