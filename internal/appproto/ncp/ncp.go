// Package ncp implements the Netware Core Protocol messages the paper's
// §5.2.2 analysis reports on: request/reply framing over TCP 524 with the
// classic 0x2222/0x3333 type signatures, the function mix of Table 14
// (read, write, file/dir info, open/close, size, search, directory
// service), and the characteristic message sizes of Figure 8 — 14-byte
// read requests, 2-byte completion-code-only replies, 10-byte
// GetFileCurrentSize replies, and 260-byte read-data replies.
//
// NCP is, as the paper puts it, "a veritable kitchen-sink protocol
// supporting hundreds of message types"; this codec carries the function
// code and sized payload, which is the granularity of every reported
// statistic.
package ncp

import (
	"encoding/binary"
	"errors"
)

// Frame type signatures.
const (
	TypeRequest uint16 = 0x2222
	TypeReply   uint16 = 0x3333
)

// Function codes (classic NCP function numbers where they exist).
const (
	FnReadFile    uint8 = 72
	FnWriteFile   uint8 = 73
	FnFileDirInfo uint8 = 87
	FnOpenFile    uint8 = 76
	FnCloseFile   uint8 = 66
	FnGetFileSize uint8 = 71
	FnSearchFile  uint8 = 63
	FnDirService  uint8 = 104 // NDS verbs
	FnOther       uint8 = 255
)

// FnName maps a function to the paper's Table 14 row names.
func FnName(fn uint8) string {
	switch fn {
	case FnReadFile:
		return "Read"
	case FnWriteFile:
		return "Write"
	case FnFileDirInfo:
		return "FileDirInfo"
	case FnOpenFile, FnCloseFile:
		return "File Open/Close"
	case FnGetFileSize:
		return "File Size"
	case FnSearchFile:
		return "File Search"
	case FnDirService:
		return "Directory Service"
	default:
		return "Other"
	}
}

// Msg is one NCP message.
type Msg struct {
	Request  bool
	Sequence uint8
	Function uint8
	// Completion is the reply completion code (0 = success).
	Completion uint8
	// Payload carries file data (write requests, read replies) or
	// structured results.
	Payload []byte
	// PayloadLen is the header-claimed payload length (robust to
	// truncated captures).
	PayloadLen int
}

// ErrShort reports a buffer below the fixed header size.
var ErrShort = errors.New("ncp: truncated message")

// ErrBadType reports an unknown frame signature.
var ErrBadType = errors.New("ncp: bad frame type")

// header: type(2) seq(1) fn(1) completion(1) payloadLen(4)
const hdrLen = 9

// Encode serializes the message.
func Encode(m *Msg) []byte {
	out := make([]byte, hdrLen+len(m.Payload))
	typ := TypeReply
	if m.Request {
		typ = TypeRequest
	}
	binary.BigEndian.PutUint16(out[0:2], typ)
	out[2] = m.Sequence
	out[3] = m.Function
	out[4] = m.Completion
	binary.BigEndian.PutUint32(out[5:9], uint32(len(m.Payload)))
	copy(out[hdrLen:], m.Payload)
	return out
}

// Decode parses one message from data, returning it and bytes consumed.
func Decode(data []byte) (*Msg, int, error) {
	if len(data) < hdrLen {
		return nil, 0, ErrShort
	}
	typ := binary.BigEndian.Uint16(data[0:2])
	if typ != TypeRequest && typ != TypeReply {
		return nil, 0, ErrBadType
	}
	m := &Msg{
		Request:    typ == TypeRequest,
		Sequence:   data[2],
		Function:   data[3],
		Completion: data[4],
		PayloadLen: int(binary.BigEndian.Uint32(data[5:9])),
	}
	consumed := hdrLen + m.PayloadLen
	if consumed > len(data) {
		consumed = len(data)
	}
	m.Payload = data[hdrLen:consumed]
	return m, consumed, nil
}

// RequestFor builds the canonical request for a function with the sizes
// the paper's Figure 8 shows (14-byte read requests; write requests carry
// the data).
func RequestFor(seq uint8, fn uint8, dataLen int) *Msg {
	m := &Msg{Request: true, Sequence: seq, Function: fn}
	switch fn {
	case FnReadFile:
		m.Payload = make([]byte, 5) // header(9) + 5 = 14 bytes on the wire
	case FnWriteFile:
		m.Payload = fill(dataLen)
	case FnSearchFile:
		m.Payload = make([]byte, 23)
	case FnFileDirInfo, FnOpenFile, FnCloseFile, FnGetFileSize:
		m.Payload = make([]byte, 11)
	case FnDirService:
		m.Payload = make([]byte, 40)
	}
	return m
}

// ReplyFor builds the canonical reply: completion-only for writes,
// data-bearing for reads, 10-byte (1-byte body) size replies.
func ReplyFor(req *Msg, dataLen int) *Msg {
	m := &Msg{Sequence: req.Sequence, Function: req.Function}
	switch req.Function {
	case FnReadFile:
		m.Payload = fill(dataLen)
	case FnGetFileSize:
		m.Payload = make([]byte, 1) // 10 bytes on the wire
	case FnFileDirInfo:
		m.Payload = make([]byte, 60)
	case FnSearchFile:
		m.Payload = make([]byte, 32)
	case FnDirService:
		m.Payload = make([]byte, 80)
	}
	return m
}

func fill(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('n' + i%13)
	}
	return b
}
