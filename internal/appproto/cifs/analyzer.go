package cifs

import (
	"enttrace/internal/appproto/netbios"
	"enttrace/internal/stats"
)

// Analyzer accumulates the Table 10 command/byte breakdown from SMB
// streams and hands embedded DCE/RPC pipe payloads to an optional sink.
type Analyzer struct {
	// Requests counts request messages per category; Bytes counts
	// message data bytes (header-claimed) per category.
	Requests *stats.Counter
	Bytes    *stats.Counter
	// PipeSink, when non-nil, receives the DCE/RPC payload of each pipe
	// transaction (both directions) for function-level analysis.
	PipeSink func(fromClient bool, pipe string, payload []byte)
}

// NewAnalyzer returns an empty analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{Requests: stats.NewCounter(), Bytes: stats.NewCounter()}
}

// Merge folds other's command/byte counters into a (commutative, so the
// merged Table 10 is identical for any sharding of the input streams).
func (a *Analyzer) Merge(other *Analyzer) {
	a.Requests.Merge(other.Requests)
	a.Bytes.Merge(other.Bytes)
}

// Snapshot returns an independent analyzer holding the command/byte
// counters accumulated since the last Reset (the epoch contract; this
// analyzer keeps no cross-message pairing state, so the cut is a pure
// counter copy).
func (a *Analyzer) Snapshot() *Analyzer {
	s := NewAnalyzer()
	s.Requests.Merge(a.Requests)
	s.Bytes.Merge(a.Bytes)
	return s
}

// Reset clears the banked counters in place.
func (a *Analyzer) Reset() {
	a.Requests.Reset()
	a.Bytes.Reset()
}

// Cut is Snapshot followed by Reset in one move (nil when nothing was
// banked since the last cut).
func (a *Analyzer) Cut() *Analyzer {
	if a.Requests.Total() == 0 && a.Bytes.Total() == 0 {
		return nil
	}
	s := &Analyzer{Requests: a.Requests, Bytes: a.Bytes}
	a.Requests, a.Bytes = stats.NewCounter(), stats.NewCounter()
	return s
}

// Stream consumes one reassembled direction of a CIFS connection.
// netbiosFramed selects TCP-139-style session framing (each SMB wrapped in
// a NetBIOS session frame) versus raw port-445 framing, which this codec
// treats as back-to-back SMB messages.
func (a *Analyzer) Stream(fromClient bool, netbiosFramed bool, stream []byte) {
	for len(stream) > 0 {
		var smb []byte
		if netbiosFramed {
			h, err := netbios.DecodeSSNHeader(stream)
			if err != nil {
				return
			}
			if h.Type != netbios.SSNMessage {
				// Session-request/response frames carry no SMB.
				adv := 4 + h.Length
				if adv > len(stream) {
					return
				}
				stream = stream[adv:]
				continue
			}
			end := 4 + h.Length
			if end > len(stream) {
				end = len(stream)
			}
			smb = stream[4:end]
			stream = stream[end:]
		} else {
			smb = stream
			stream = nil
		}
		a.consumeSMB(fromClient, smb)
	}
}

// consumeSMB walks back-to-back SMB messages in a buffer, reusing one
// Message across iterations (DecodeInto overwrites it).
func (a *Analyzer) consumeSMB(fromClient bool, buf []byte) {
	var msg Message
	for len(buf) > 0 {
		m := &msg
		n, err := DecodeInto(buf, m)
		if err != nil || n == 0 {
			return
		}
		cat := Category(m)
		if !m.Response {
			a.Requests.Inc(cat)
		}
		a.Bytes.Add(cat, int64(m.DataLen))
		if m.Command == CmdTrans && a.PipeSink != nil && len(m.Payload) > 0 {
			a.PipeSink(fromClient, m.PipeName, m.Payload)
		}
		buf = buf[n:]
	}
}
