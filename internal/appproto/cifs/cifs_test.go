package cifs

import (
	"bytes"
	"testing"
	"testing/quick"

	"enttrace/internal/appproto/netbios"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	m := &Message{
		Command: CmdWriteAndX,
		TreeID:  3,
		MID:     41,
		Payload: bytes.Repeat([]byte{0x5a}, 8192),
	}
	data := Encode(m)
	got, n, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(data) {
		t.Errorf("consumed %d of %d", n, len(data))
	}
	if got.Command != CmdWriteAndX || got.TreeID != 3 || got.MID != 41 {
		t.Errorf("got %+v", got)
	}
	if got.DataLen != 8192 || !bytes.Equal(got.Payload, m.Payload) {
		t.Errorf("payload len = %d claimed %d", len(got.Payload), got.DataLen)
	}
}

func TestPipeNameRoundTrip(t *testing.T) {
	m := &Message{Command: CmdTrans, PipeName: `\PIPE\spoolss`, Payload: []byte("rpc pdu")}
	got, _, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.PipeName != `\PIPE\spoolss` {
		t.Errorf("pipe = %q", got.PipeName)
	}
	if string(got.Payload) != "rpc pdu" {
		t.Errorf("payload = %q", got.Payload)
	}
}

func TestResponseFlagAndStatus(t *testing.T) {
	m := &Message{Command: CmdNTCreateAndX, Response: true, Status: StatusAccessDenied}
	got, _, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Response || got.Status != StatusAccessDenied {
		t.Errorf("got %+v", got)
	}
}

func TestDecodeNotSMB(t *testing.T) {
	if _, _, err := Decode([]byte("GET / HTTP/1.1\r\n\r\n padding padding padding")); err != ErrNotSMB {
		t.Errorf("err = %v", err)
	}
	if _, _, err := Decode([]byte{0xFF, 'S', 'M'}); err != ErrNotSMB {
		t.Errorf("short err = %v", err)
	}
}

func TestTruncatedPayloadTolerated(t *testing.T) {
	m := &Message{Command: CmdReadAndX, Response: true, Payload: make([]byte, 4096)}
	full := Encode(m)
	got, n, err := Decode(full[:100]) // 68-byte-snaplen-ish truncation
	if err != nil {
		t.Fatal(err)
	}
	if got.DataLen != 4096 {
		t.Errorf("claimed len = %d, want 4096", got.DataLen)
	}
	if len(got.Payload) >= 4096 {
		t.Errorf("captured = %d", len(got.Payload))
	}
	if n != 100 {
		t.Errorf("consumed = %d", n)
	}
}

func TestCategories(t *testing.T) {
	cases := []struct {
		m    Message
		want string
	}{
		{Message{Command: CmdNegotiate}, CatBasic},
		{Message{Command: CmdSessionSetupAndX}, CatBasic},
		{Message{Command: CmdTreeConnectAndX}, CatBasic},
		{Message{Command: CmdNTCreateAndX}, CatBasic},
		{Message{Command: CmdClose}, CatBasic},
		{Message{Command: CmdReadAndX}, CatFile},
		{Message{Command: CmdWriteAndX}, CatFile},
		{Message{Command: CmdTrans2}, CatFile},
		{Message{Command: CmdTrans, PipeName: `\PIPE\spoolss`}, CatPipes},
		{Message{Command: CmdTrans, PipeName: `\PIPE\lsarpc`}, CatPipes},
		{Message{Command: CmdTrans, PipeName: `\PIPE\LANMAN`}, CatLanman},
		{Message{Command: CmdTrans, PipeName: `\pipe\lanman`}, CatLanman},
		{Message{Command: CmdTrans, PipeName: "weird"}, CatOther},
		{Message{Command: 0xEE}, CatOther},
	}
	for _, c := range cases {
		if got := Category(&c.m); got != c.want {
			t.Errorf("Category(cmd=%#x pipe=%q) = %q, want %q", c.m.Command, c.m.PipeName, got, c.want)
		}
	}
}

func TestAnalyzerRaw445Stream(t *testing.T) {
	var stream []byte
	msgs := []*Message{
		{Command: CmdNegotiate},
		{Command: CmdSessionSetupAndX},
		{Command: CmdNTCreateAndX},
		{Command: CmdTrans, PipeName: `\PIPE\spoolss`, Payload: make([]byte, 400)},
		{Command: CmdWriteAndX, Payload: make([]byte, 8192)},
	}
	for _, m := range msgs {
		stream = append(stream, Encode(m)...)
	}
	a := NewAnalyzer()
	var pipePayloads int
	a.PipeSink = func(fromClient bool, pipe string, payload []byte) {
		if pipe == `\PIPE\spoolss` {
			pipePayloads += len(payload)
		}
	}
	a.Stream(true, false, stream)
	if a.Requests.Get(CatBasic) != 3 {
		t.Errorf("basic = %d", a.Requests.Get(CatBasic))
	}
	if a.Requests.Get(CatPipes) != 1 || a.Requests.Get(CatFile) != 1 {
		t.Errorf("pipes=%d file=%d", a.Requests.Get(CatPipes), a.Requests.Get(CatFile))
	}
	if a.Bytes.Get(CatFile) != 8192 {
		t.Errorf("file bytes = %d", a.Bytes.Get(CatFile))
	}
	if pipePayloads != 400 {
		t.Errorf("pipe sink got %d bytes", pipePayloads)
	}
}

func TestAnalyzerNetbiosFramedStream(t *testing.T) {
	// TCP 139: session request first, then SMBs inside session messages.
	var stream []byte
	stream = append(stream, netbios.EncodeSSN(netbios.SSNRequest, make([]byte, 68))...)
	for _, m := range []*Message{
		{Command: CmdNegotiate},
		{Command: CmdTrans, PipeName: `\PIPE\LANMAN`, Payload: make([]byte, 60)},
	} {
		stream = append(stream, netbios.EncodeSSN(netbios.SSNMessage, Encode(m))...)
	}
	a := NewAnalyzer()
	a.Stream(true, true, stream)
	if a.Requests.Get(CatBasic) != 1 || a.Requests.Get(CatLanman) != 1 {
		t.Errorf("basic=%d lanman=%d", a.Requests.Get(CatBasic), a.Requests.Get(CatLanman))
	}
}

func TestAnalyzerResponsesNotCountedAsRequests(t *testing.T) {
	var stream []byte
	stream = append(stream, Encode(&Message{Command: CmdReadAndX, Response: true, Payload: make([]byte, 100)})...)
	a := NewAnalyzer()
	a.Stream(false, false, stream)
	if a.Requests.Total() != 0 {
		t.Error("response counted as request")
	}
	if a.Bytes.Get(CatFile) != 100 {
		t.Errorf("response bytes = %d", a.Bytes.Get(CatFile))
	}
}

// Property: encode/decode round-trips command, response flag, pipe name,
// and payload for arbitrary content.
func TestRoundTripProperty(t *testing.T) {
	f := func(cmdSel uint8, resp bool, mid uint16, payload []byte) bool {
		cmds := []uint8{CmdNegotiate, CmdTrans, CmdReadAndX, CmdWriteAndX, CmdNTCreateAndX, CmdTrans2}
		m := &Message{Command: cmds[int(cmdSel)%len(cmds)], Response: resp, MID: mid}
		if len(payload) > 2000 {
			payload = payload[:2000]
		}
		m.Payload = payload
		if m.Command == CmdTrans {
			m.PipeName = `\PIPE\netlogon`
		}
		got, n, err := Decode(Encode(m))
		if err != nil {
			return false
		}
		return n == len(Encode(m)) && got.Command == m.Command && got.Response == resp &&
			got.MID == mid && bytes.Equal(got.Payload, payload) && got.PipeName == m.PipeName
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: analyzer never panics on arbitrary streams.
func TestAnalyzerFuzz(t *testing.T) {
	f := func(data []byte, framed bool) bool {
		a := NewAnalyzer()
		a.Stream(true, framed, data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDecodeSMB(b *testing.B) {
	data := Encode(&Message{Command: CmdWriteAndX, Payload: make([]byte, 8192)})
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
