// Package cifs implements an SMB1/CIFS message codec and command
// accounting for the paper's §5.2.1 Windows-services analysis. The 32-byte
// SMB header is wire-accurate (protocol magic, command codes, status,
// response flag, TID/PID/UID/MID); command bodies use a simplified but
// self-consistent parameter layout carrying the fields the analysis
// needs — data lengths, pipe names, and embedded DCE/RPC payloads. CIFS
// travels either over TCP 445 directly or inside NetBIOS session frames on
// TCP 139; hosts use the two interchangeably, which is itself one of the
// paper's findings.
package cifs

import (
	"encoding/binary"
	"errors"
	"strings"
)

// SMB1 command codes used in the traces.
const (
	CmdClose            uint8 = 0x04
	CmdTrans            uint8 = 0x25 // named-pipe transactions (DCE/RPC, LANMAN)
	CmdEcho             uint8 = 0x2B
	CmdReadAndX         uint8 = 0x2E
	CmdWriteAndX        uint8 = 0x2F
	CmdTrans2           uint8 = 0x32 // QUERY_FILE_INFO and friends
	CmdTreeDisconnect   uint8 = 0x71
	CmdNegotiate        uint8 = 0x72
	CmdSessionSetupAndX uint8 = 0x73
	CmdLogoffAndX       uint8 = 0x74
	CmdTreeConnectAndX  uint8 = 0x75
	CmdNTCreateAndX     uint8 = 0xA2 // file/pipe open
)

// Table 10 command categories.
const (
	CatBasic  = "SMB Basic"
	CatPipes  = "RPC Pipes"
	CatFile   = "Windows File Sharing"
	CatLanman = "LANMAN"
	CatOther  = "Other"
)

// LanmanPipe is the management named pipe the paper calls out.
const LanmanPipe = `\PIPE\LANMAN`

// Message is one SMB message.
type Message struct {
	Command  uint8
	Status   uint32
	Response bool
	TreeID   uint16
	MID      uint16
	// PipeName is set for CmdTrans (e.g. `\PIPE\spoolss`, `\PIPE\LANMAN`).
	PipeName string
	// Payload carries file data for Read/Write and the DCE/RPC PDU for
	// pipe transactions.
	Payload []byte
	// DataLen is the header-claimed payload length (survives truncated
	// captures where len(Payload) is smaller).
	DataLen int
}

var smbMagic = [4]byte{0xFF, 'S', 'M', 'B'}

// ErrNotSMB reports a buffer that does not start with the SMB magic.
var ErrNotSMB = errors.New("cifs: not an SMB message")

// Encode serializes the message: 32-byte header, then a parameter block
// (word count, data length, pipe-name z-string for Trans) and the payload.
func Encode(m *Message) []byte {
	nameLen := 0
	if m.Command == CmdTrans {
		nameLen = len(m.PipeName) + 1
	}
	body := make([]byte, 1+2+2+2+nameLen+len(m.Payload))
	i := 0
	body[i] = 2 // word count (two 16-bit words follow)
	i++
	binary.LittleEndian.PutUint16(body[i:], uint16(len(m.Payload)))
	i += 2
	binary.LittleEndian.PutUint16(body[i:], uint16(nameLen))
	i += 2
	binary.LittleEndian.PutUint16(body[i:], uint16(nameLen+len(m.Payload))) // byte count
	i += 2
	if nameLen > 0 {
		copy(body[i:], m.PipeName)
		i += nameLen // includes the NUL already zeroed
	}
	copy(body[i:], m.Payload)

	out := make([]byte, 32+len(body))
	copy(out[0:4], smbMagic[:])
	out[4] = m.Command
	binary.LittleEndian.PutUint32(out[5:9], m.Status)
	if m.Response {
		out[9] = 0x80 // FLAGS reply bit
	}
	// flags2, PIDHigh, signature, reserved left zero.
	binary.LittleEndian.PutUint16(out[24:26], m.TreeID)
	binary.LittleEndian.PutUint16(out[26:28], 0xFEFF) // PID
	binary.LittleEndian.PutUint16(out[28:30], 0x0800) // UID
	binary.LittleEndian.PutUint16(out[30:32], m.MID)
	copy(out[32:], body)
	return out
}

// Decode parses one SMB message from data, returning the message and the
// number of bytes consumed. Truncated payloads are tolerated: DataLen
// holds the claimed size, Payload whatever was captured.
func Decode(data []byte) (*Message, int, error) {
	m := &Message{}
	n, err := DecodeInto(data, m)
	if err != nil {
		return nil, 0, err
	}
	return m, n, nil
}

// DecodeInto parses one SMB message into a caller-owned Message, the
// allocation-light variant stream walkers use. m is overwritten; Payload
// borrows data.
func DecodeInto(data []byte, m *Message) (int, error) {
	if len(data) < 32 || data[0] != smbMagic[0] || data[1] != smbMagic[1] ||
		data[2] != smbMagic[2] || data[3] != smbMagic[3] {
		return 0, ErrNotSMB
	}
	*m = Message{
		Command:  data[4],
		Status:   binary.LittleEndian.Uint32(data[5:9]),
		Response: data[9]&0x80 != 0,
		TreeID:   binary.LittleEndian.Uint16(data[24:26]),
		MID:      binary.LittleEndian.Uint16(data[30:32]),
	}
	body := data[32:]
	if len(body) < 7 {
		return len(data), nil // header-only capture
	}
	dataLen := int(binary.LittleEndian.Uint16(body[1:3]))
	nameLen := int(binary.LittleEndian.Uint16(body[3:5]))
	rest := body[7:]
	if nameLen > 0 {
		n := nameLen
		if n > len(rest) {
			n = len(rest)
		}
		nameBytes := rest[:n]
		for len(nameBytes) > 0 && nameBytes[len(nameBytes)-1] == 0 {
			nameBytes = nameBytes[:len(nameBytes)-1]
		}
		m.PipeName = internPipe(nameBytes)
		rest = rest[n:]
	}
	m.DataLen = dataLen
	if dataLen < len(rest) {
		rest = rest[:dataLen]
	}
	m.Payload = rest
	consumed := 32 + 7 + nameLen + dataLen
	if consumed > len(data) {
		consumed = len(data)
	}
	return consumed, nil
}

// wellKnownPipes are the pipe names seen in the traces; interning them
// makes pipe-transaction decoding allocation-free for the common case.
var wellKnownPipes = []string{
	LanmanPipe, `\PIPE\spoolss`, `\PIPE\srvsvc`, `\PIPE\wkssvc`,
	`\PIPE\NETLOGON`, `\PIPE\lsarpc`, `\PIPE\samr`, `\PIPE\epmapper`,
}

func internPipe(b []byte) string {
	for _, p := range wellKnownPipes {
		if len(b) == len(p) && string(b) == p {
			return p
		}
	}
	return string(b)
}

// Category buckets a message per Table 10.
func Category(m *Message) string {
	switch m.Command {
	case CmdNegotiate, CmdSessionSetupAndX, CmdLogoffAndX,
		CmdTreeConnectAndX, CmdTreeDisconnect, CmdNTCreateAndX, CmdClose:
		return CatBasic
	case CmdTrans:
		if strings.EqualFold(m.PipeName, LanmanPipe) {
			return CatLanman
		}
		if len(m.PipeName) >= 6 && strings.EqualFold(m.PipeName[:6], `\PIPE\`) {
			return CatPipes
		}
		return CatOther
	case CmdReadAndX, CmdWriteAndX, CmdTrans2:
		return CatFile
	default:
		return CatOther
	}
}

// StatusOK is NT_STATUS success.
const StatusOK uint32 = 0

// StatusAccessDenied is a representative failure status.
const StatusAccessDenied uint32 = 0xC0000022
