package cifs

import (
	"testing"
)

// FuzzDecodeInto feeds the SMB decoder arbitrary bytes: it must never
// panic, the consumed count must stay within the buffer, and the parsed
// payload must be a view into the input, never an over-read.
func FuzzDecodeInto(f *testing.F) {
	// Well-formed seeds from the package's own encoder.
	f.Add(Encode(&Message{Command: CmdTrans, MID: 7, PipeName: `\PIPE\spoolss`,
		Payload: []byte("rpc-bytes-here")}))
	f.Add(Encode(&Message{Command: CmdReadAndX, Response: true, TreeID: 3, MID: 9,
		Payload: make([]byte, 64)}))
	f.Add(Encode(&Message{Command: CmdNegotiate}))
	// Evasion-shaped seeds: truncations and lying length fields.
	full := Encode(&Message{Command: CmdTrans, PipeName: LanmanPipe, Payload: []byte("0123456789")})
	f.Add(full[:32])          // header-only capture
	f.Add(full[:40])          // mid-parameter-block truncation
	f.Add(full[:len(full)-5]) // payload truncated below DataLen
	lying := append([]byte(nil), full...)
	lying[33], lying[34] = 0xFF, 0xFF // claimed data length 65535
	f.Add(lying)
	lyingName := append([]byte(nil), full...)
	lyingName[35], lyingName[36] = 0xFF, 0x7F // claimed name length past the buffer
	f.Add(lyingName)

	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		n, err := DecodeInto(data, &m)
		if err != nil {
			return
		}
		if n < 0 || n > len(data) {
			t.Fatalf("consumed %d of a %d-byte buffer", n, len(data))
		}
		if len(m.Payload) > len(data) {
			t.Fatalf("payload %d bytes from a %d-byte buffer", len(m.Payload), len(data))
		}
		if m.DataLen < 0 {
			t.Fatalf("negative claimed data length %d", m.DataLen)
		}
		if len(m.Payload) > m.DataLen {
			t.Fatalf("payload %d exceeds claimed length %d", len(m.Payload), m.DataLen)
		}
	})
}
