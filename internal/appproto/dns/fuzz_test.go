package dns

import (
	"testing"
)

// FuzzDecodeInto hammers the DNS decoder with arbitrary bytes: it must
// never panic or over-read, malformed compression chains must error, and
// a successful parse must be deterministic with a bounded question name
// (the label/jump guards cap it at 128 labels × 63 bytes).
func FuzzDecodeInto(f *testing.F) {
	// Well-formed seeds from the package's own encoder.
	f.Add(Encode(&Message{ID: 0x1234, QName: "host7.lbl.gov", QType: TypeA}))
	f.Add(Encode(&Message{ID: 0x1234, Response: true, Rcode: RcodeNXDomain,
		QName: "host7.lbl.gov", QType: TypePTR, AnswerCount: 3}))
	// Evasion-shaped seeds: truncations and hostile compression pointers.
	q := Encode(&Message{ID: 1, QName: "a.example", QType: TypeMX})
	f.Add(q[:12])
	f.Add(q[:len(q)-3])
	// Self-referential compression pointer at the question name.
	loop := append([]byte(nil), q[:12]...)
	loop = append(loop, 0xc0, 12, 0, 1, 0, 1)
	f.Add(loop)
	// Pointer chain bouncing between two offsets.
	pp := append([]byte(nil), q[:12]...)
	pp = append(pp, 0xc0, 14, 0xc0, 12, 0, 1, 0, 1)
	f.Add(pp)
	// Label length running past the buffer.
	overrun := append([]byte(nil), q[:12]...)
	overrun = append(overrun, 63, 'x')
	f.Add(overrun)

	f.Fuzz(func(t *testing.T, data []byte) {
		var m Message
		if err := DecodeInto(data, &m); err != nil {
			return
		}
		if len(m.QName) > 128*64 {
			t.Fatalf("question name unbounded: %d bytes", len(m.QName))
		}
		var m2 Message
		if err := DecodeInto(data, &m2); err != nil {
			t.Fatalf("second decode of accepted input failed: %v", err)
		}
		if m != m2 {
			t.Fatalf("decode not deterministic: %+v vs %+v", m, m2)
		}
		// Every accepted message must survive a re-encode/decode cycle with
		// its header fields intact (answer bodies capped to keep the
		// encoder's synthetic answers cheap).
		rt := m
		rt.AnswerCount %= 4
		var m3 Message
		if err := DecodeInto(Encode(&rt), &m3); err != nil {
			t.Fatalf("re-encoded message rejected: %v", err)
		}
		if m3.ID != rt.ID || m3.Response != rt.Response || m3.QType != rt.QType {
			t.Fatalf("header fields lost in round trip: %+v vs %+v", rt, m3)
		}
	})
}
