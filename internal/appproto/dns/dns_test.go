package dns

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"
)

func TestEncodeDecodeQuery(t *testing.T) {
	m := &Message{ID: 0x1234, QName: "mail.lbl.gov", QType: TypeMX}
	data := Encode(m)
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 0x1234 || got.Response || got.QName != "mail.lbl.gov" || got.QType != TypeMX {
		t.Errorf("got %+v", got)
	}
}

func TestEncodeDecodeResponse(t *testing.T) {
	m := &Message{ID: 7, Response: true, Rcode: RcodeNXDomain, QName: "gone.example.com", QType: TypeA}
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Response || got.Rcode != RcodeNXDomain || got.QName != "gone.example.com" {
		t.Errorf("got %+v", got)
	}
}

func TestResponseWithAnswersParses(t *testing.T) {
	m := &Message{ID: 9, Response: true, Rcode: RcodeNoError, QName: "www.lbl.gov", QType: TypeA, AnswerCount: 3}
	data := Encode(m)
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.AnswerCount != 3 {
		t.Errorf("answers = %d", got.AnswerCount)
	}
	// Answers use compression pointers; the name at offset 12 must parse.
	name, _, err := decodeName(data, len(data)-16+0) // start of last answer record name
	if err != nil {
		t.Fatalf("compressed name: %v", err)
	}
	if name != "www.lbl.gov" {
		t.Errorf("compressed name = %q", name)
	}
}

func TestDecodeShort(t *testing.T) {
	if _, err := Decode([]byte{1, 2, 3}); err != ErrShortMessage {
		t.Errorf("err = %v", err)
	}
}

func TestDecodeCompressionLoop(t *testing.T) {
	// A name that points at itself must terminate with ErrBadName.
	data := make([]byte, 14)
	data[4], data[5] = 0, 1 // QDCOUNT 1
	data[12], data[13] = 0xc0, 12
	if _, err := Decode(data); err != ErrBadName {
		t.Errorf("err = %v, want ErrBadName", err)
	}
}

func TestTypeNames(t *testing.T) {
	cases := map[uint16]string{TypeA: "A", TypeAAAA: "AAAA", TypePTR: "PTR", TypeMX: "MX", 99: "TYPE99"}
	for typ, want := range cases {
		if got := TypeName(typ); got != want {
			t.Errorf("TypeName(%d) = %q", typ, got)
		}
	}
}

func TestRootName(t *testing.T) {
	m := &Message{ID: 1, QName: "", QType: TypeNS}
	got, err := Decode(Encode(m))
	if err != nil {
		t.Fatal(err)
	}
	if got.QName != "" {
		t.Errorf("root name = %q", got.QName)
	}
}

// Property: every encodable query round-trips name, type, and ID.
func TestRoundTripProperty(t *testing.T) {
	f := func(id uint16, qtypeSel uint8, labelA, labelB string) bool {
		clean := func(s string) string {
			out := make([]rune, 0, len(s))
			for _, r := range s {
				if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
					out = append(out, r)
				}
			}
			if len(out) == 0 {
				return "x"
			}
			if len(out) > 30 {
				out = out[:30]
			}
			return string(out)
		}
		qtypes := []uint16{TypeA, TypeAAAA, TypePTR, TypeMX}
		m := &Message{
			ID:    id,
			QName: clean(labelA) + "." + clean(labelB),
			QType: qtypes[int(qtypeSel)%len(qtypes)],
		}
		got, err := Decode(Encode(m))
		return err == nil && got.ID == m.ID && got.QName == m.QName && got.QType == m.QType
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: decoding arbitrary bytes never panics.
func TestDecodeFuzzProperty(t *testing.T) {
	f := func(data []byte) bool {
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

var (
	client = netip.MustParseAddr("10.1.1.5")
	server = netip.MustParseAddr("10.0.0.53")
)

func TestAnalyzerPairsQueryResponse(t *testing.T) {
	a := NewAnalyzer()
	t0 := time.Unix(100, 0)
	a.Message(t0, client, server, &Message{ID: 5, QName: "a.lbl.gov", QType: TypeA})
	a.Message(t0.Add(400*time.Microsecond), server, client, &Message{ID: 5, Response: true, Rcode: RcodeNoError, QName: "a.lbl.gov", QType: TypeA})
	if len(a.Done) != 1 {
		t.Fatalf("done = %d", len(a.Done))
	}
	tr := a.Done[0]
	if !tr.Answered || tr.Rcode != RcodeNoError || tr.Latency != 400*time.Microsecond {
		t.Errorf("transaction = %+v", tr)
	}
	if a.Types.Get("A") != 1 {
		t.Error("type counter")
	}
	if a.Rcodes.Get("NOERROR") != 1 {
		t.Error("rcode counter")
	}
	if a.Latency.N() != 1 {
		t.Error("latency dist")
	}
}

func TestAnalyzerUnansweredFlushed(t *testing.T) {
	a := NewAnalyzer()
	a.Message(time.Unix(0, 0), client, server, &Message{ID: 1, QName: "x.lbl.gov", QType: TypeAAAA})
	a.Flush()
	if len(a.Done) != 1 || a.Done[0].Answered {
		t.Errorf("done = %+v", a.Done)
	}
}

func TestAnalyzerRetryCountedOnce(t *testing.T) {
	// The paper counts failures per distinct operation, so an automated
	// client retrying the same lookup inflates neither NXDOMAIN nor
	// NOERROR counts.
	a := NewAnalyzer()
	t0 := time.Unix(0, 0)
	for i := 0; i < 5; i++ {
		id := uint16(100 + i)
		a.Message(t0, client, server, &Message{ID: id, QName: "stale.lbl.gov", QType: TypeA})
		a.Message(t0.Add(time.Millisecond), server, client, &Message{ID: id, Response: true, Rcode: RcodeNXDomain, QName: "stale.lbl.gov", QType: TypeA})
	}
	if a.Rcodes.Get("NXDOMAIN") != 1 {
		t.Errorf("NXDOMAIN = %d, want 1 (deduplicated)", a.Rcodes.Get("NXDOMAIN"))
	}
	if len(a.Done) != 5 {
		t.Errorf("done = %d, want 5 raw transactions", len(a.Done))
	}
}

func TestAnalyzerResponseWithoutQueryIgnored(t *testing.T) {
	a := NewAnalyzer()
	a.Message(time.Unix(0, 0), server, client, &Message{ID: 9, Response: true, Rcode: RcodeNoError})
	if len(a.Done) != 0 {
		t.Error("orphan response should be dropped")
	}
}

func BenchmarkEncodeDecode(b *testing.B) {
	m := &Message{ID: 1, QName: "host123.subnet45.lbl.gov", QType: TypeA}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data := Encode(m)
		if _, err := Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}
