package dns

import (
	"net/netip"
	"time"

	"enttrace/internal/stats"
)

// Transaction is one matched query/response pair (or an unanswered query).
type Transaction struct {
	Client, Server netip.Addr
	QName          string
	QType          uint16
	Rcode          uint8
	Answered       bool
	Latency        time.Duration
}

// Analyzer consumes DNS messages observed on the wire and produces the
// paper's §5.1.3 statistics: per-type request mix, return-code mix,
// latency distribution, and per-client request counts.
type Analyzer struct {
	pending map[pendKey]pend
	// Done holds completed transactions.
	Done []Transaction

	Types   *stats.Counter // request type mix
	Rcodes  *stats.Counter // return code mix (by distinct name+hostpair)
	Clients *stats.Counter // requests per client
	Latency *stats.Dist    // seconds
	seenOp  map[opKey]struct{}
	// addrNames caches formatted client addresses; a busy client would
	// otherwise be re-rendered once per request.
	addrNames map[netip.Addr]string
}

type pendKey struct {
	client, server netip.Addr
	id             uint16
}

// opKey identifies one distinct operation: a name asked between one host
// pair. A comparable struct key avoids building a concatenated string per
// response.
type opKey struct {
	qname          string
	client, server netip.Addr
}

type pend struct {
	qname string
	qtype uint16
	at    time.Time
}

// NewAnalyzer returns an empty analyzer.
func NewAnalyzer() *Analyzer {
	return &Analyzer{
		pending:   make(map[pendKey]pend),
		Types:     stats.NewCounter(),
		Rcodes:    stats.NewCounter(),
		Clients:   stats.NewCounter(),
		Latency:   stats.NewDist(),
		seenOp:    make(map[opKey]struct{}),
		addrNames: make(map[netip.Addr]string),
	}
}

// addrString formats addr, caching the result per analyzer.
func (a *Analyzer) addrString(addr netip.Addr) string {
	if s, ok := a.addrNames[addr]; ok {
		return s
	}
	s := addr.String()
	a.addrNames[addr] = s
	return s
}

// Message feeds one decoded DNS message seen at time ts traveling
// src → dst.
func (a *Analyzer) Message(ts time.Time, src, dst netip.Addr, m *Message) {
	if !m.Response {
		a.Types.Inc(TypeName(m.QType))
		a.Clients.Inc(a.addrString(src))
		a.pending[pendKey{client: src, server: dst, id: m.ID}] = pend{qname: m.QName, qtype: m.QType, at: ts}
		return
	}
	key := pendKey{client: dst, server: src, id: m.ID}
	q, ok := a.pending[key]
	if !ok {
		return
	}
	delete(a.pending, key)
	lat := ts.Sub(q.at)
	a.Latency.Observe(lat.Seconds())
	// The paper counts success/failure by distinct operation (name,
	// host pair), not raw message count, to avoid retry skew.
	op := opKey{qname: q.qname, client: dst, server: src}
	if _, dup := a.seenOp[op]; !dup {
		a.seenOp[op] = struct{}{}
		a.Rcodes.Inc(rcodeName(m.Rcode))
	}
	a.Done = append(a.Done, Transaction{
		Client: dst, Server: src,
		QName: q.qname, QType: q.qtype,
		Rcode: m.Rcode, Answered: true, Latency: lat,
	})
}

// Merge folds other's accumulated state into a. The aggregate outputs
// (counters, latency distribution) are commutative, so merging per-shard
// analyzers yields the same statistics for any sharding — provided each
// (client, server) host pair was fed to exactly one shard, which is what
// keeps the pending/seenOp pairing state shard-local. Done transactions
// are appended in merge-call order; callers that need a canonical order
// must sort by their own key.
func (a *Analyzer) Merge(other *Analyzer) {
	a.Types.Merge(other.Types)
	a.Rcodes.Merge(other.Rcodes)
	a.Clients.Merge(other.Clients)
	a.Latency.Merge(other.Latency)
	a.Done = append(a.Done, other.Done...)
	for k, v := range other.pending {
		a.pending[k] = v
	}
	for k := range other.seenOp {
		a.seenOp[k] = struct{}{}
	}
}

// Snapshot returns an independent analyzer holding the statistics
// accumulated since the last Reset. The epoch contract: Snapshot/Reset
// cut banked outputs (counters, latency samples, completed
// transactions) while the in-flight pairing state — pending queries,
// the per-operation dedup set — stays behind, so a query answered in a
// later window pairs exactly as it would have without the cut, and
// merging every snapshot reproduces the uncut analyzer's statistics.
func (a *Analyzer) Snapshot() *Analyzer {
	s := NewAnalyzer()
	s.Types.Merge(a.Types)
	s.Rcodes.Merge(a.Rcodes)
	s.Clients.Merge(a.Clients)
	s.Latency.Merge(a.Latency)
	s.Done = append(s.Done, a.Done...)
	return s
}

// Reset clears the banked statistics in place; pending queries, the
// dedup set, and the address-format cache persist across the cut.
func (a *Analyzer) Reset() {
	a.Types.Reset()
	a.Rcodes.Reset()
	a.Clients.Reset()
	a.Latency.Reset()
	a.Done = nil
}

// Cut is Snapshot followed by Reset in one move: the banked containers
// transfer to the returned analyzer and fresh empties take their place,
// so the cost is O(1) in the epoch's size. Returns nil when nothing was
// banked since the last cut. Pairing state is untouched, exactly as
// with Snapshot/Reset.
func (a *Analyzer) Cut() *Analyzer {
	if a.Types.Total() == 0 && a.Rcodes.Total() == 0 && a.Clients.Total() == 0 &&
		a.Latency.N() == 0 && len(a.Done) == 0 {
		return nil
	}
	s := &Analyzer{Types: a.Types, Rcodes: a.Rcodes, Clients: a.Clients, Latency: a.Latency, Done: a.Done}
	a.Types, a.Rcodes, a.Clients = stats.NewCounter(), stats.NewCounter(), stats.NewCounter()
	a.Latency = stats.NewDist()
	a.Done = nil
	return s
}

// Flush records remaining unanswered queries as transactions.
func (a *Analyzer) Flush() {
	for k, q := range a.pending {
		a.Done = append(a.Done, Transaction{
			Client: k.client, Server: k.server,
			QName: q.qname, QType: q.qtype,
		})
		delete(a.pending, k)
	}
}

func rcodeName(rc uint8) string {
	switch rc {
	case RcodeNoError:
		return "NOERROR"
	case RcodeNXDomain:
		return "NXDOMAIN"
	case RcodeServFail:
		return "SERVFAIL"
	default:
		return "OTHER"
	}
}
