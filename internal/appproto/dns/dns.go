// Package dns implements the DNS wire format (RFC 1035) to the depth the
// paper's name-service analysis needs: header, question, and answer
// encoding/decoding for A, AAAA, PTR and MX queries, NOERROR/NXDOMAIN
// response codes, and compression-pointer-aware name parsing. An Analyzer
// pairs queries with responses per (host pair, transaction ID) to measure
// the latency, request-type, and return-code breakdowns of §5.1.3.
package dns

import (
	"errors"
	"fmt"
	"strings"
)

// Query types the paper's breakdown reports.
const (
	TypeA    uint16 = 1
	TypeNS   uint16 = 2
	TypePTR  uint16 = 12
	TypeMX   uint16 = 15
	TypeAAAA uint16 = 28
)

// Response codes.
const (
	RcodeNoError  uint8 = 0
	RcodeServFail uint8 = 2
	RcodeNXDomain uint8 = 3
)

// TypeName renders a query type the way the paper's text does.
func TypeName(t uint16) string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypePTR:
		return "PTR"
	case TypeMX:
		return "MX"
	case TypeAAAA:
		return "AAAA"
	default:
		return fmt.Sprintf("TYPE%d", t)
	}
}

// Message is a parsed DNS message (only the fields the analysis uses).
type Message struct {
	ID       uint16
	Response bool
	Rcode    uint8
	// Question section (first entry only; multi-question messages do not
	// occur in the workloads).
	QName string
	QType uint16
	// Answer count as claimed by the header.
	AnswerCount uint16
}

// Errors returned by Decode.
var (
	ErrShortMessage = errors.New("dns: message too short")
	ErrBadName      = errors.New("dns: malformed name")
)

// Encode serializes a message. Responses repeat the question section and
// carry AnswerCount synthetic A answers (enough for size realism; the
// analyzer never inspects answer bodies).
func Encode(m *Message) []byte {
	buf := make([]byte, 0, 12+len(m.QName)+32)
	var flags uint16
	if m.Response {
		flags |= 0x8000
		flags |= 0x0400 // AA, typical of the site's authoritative servers
		flags |= uint16(m.Rcode) & 0x000f
	} else {
		flags |= 0x0100 // RD
	}
	buf = append(buf, byte(m.ID>>8), byte(m.ID))
	buf = append(buf, byte(flags>>8), byte(flags))
	buf = append(buf, 0, 1) // QDCOUNT = 1
	an := m.AnswerCount
	if !m.Response {
		an = 0
	}
	buf = append(buf, byte(an>>8), byte(an))
	buf = append(buf, 0, 0, 0, 0) // NSCOUNT, ARCOUNT
	buf = appendName(buf, m.QName)
	buf = append(buf, byte(m.QType>>8), byte(m.QType), 0, 1) // QTYPE, QCLASS IN
	for i := uint16(0); i < an; i++ {
		// Compression pointer to the question name at offset 12.
		buf = append(buf, 0xc0, 12)
		buf = append(buf, byte(TypeA>>8), byte(TypeA), 0, 1)
		buf = append(buf, 0, 0, 0, 60) // TTL
		buf = append(buf, 0, 4, 10, 0, byte(i>>8), byte(i))
	}
	return buf
}

func appendName(buf []byte, name string) []byte {
	if name == "" || name == "." {
		return append(buf, 0)
	}
	for _, label := range strings.Split(strings.TrimSuffix(name, "."), ".") {
		if len(label) > 63 {
			label = label[:63]
		}
		buf = append(buf, byte(len(label)))
		buf = append(buf, label...)
	}
	return append(buf, 0)
}

// Decode parses a DNS message.
func Decode(data []byte) (*Message, error) {
	m := &Message{}
	if err := DecodeInto(data, m); err != nil {
		return nil, err
	}
	return m, nil
}

// DecodeInto parses a DNS message into a caller-owned Message — the
// allocation-light variant the hot path uses (only the question name is
// materialized, as one string). m is overwritten; on error its contents
// are unspecified.
func DecodeInto(data []byte, m *Message) error {
	if len(data) < 12 {
		return ErrShortMessage
	}
	*m = Message{
		ID:          uint16(data[0])<<8 | uint16(data[1]),
		Response:    data[2]&0x80 != 0,
		Rcode:       data[3] & 0x0f,
		AnswerCount: uint16(data[6])<<8 | uint16(data[7]),
	}
	qd := uint16(data[4])<<8 | uint16(data[5])
	if qd == 0 {
		return nil
	}
	name, off, err := decodeName(data, 12)
	if err != nil {
		return err
	}
	m.QName = name
	if off+4 > len(data) {
		return ErrShortMessage
	}
	m.QType = uint16(data[off])<<8 | uint16(data[off+1])
	return nil
}

// decodeName parses a possibly-compressed name starting at off, returning
// the dotted name and the offset just past it. Labels accumulate in a
// stack buffer so the dotted name costs a single string allocation.
func decodeName(data []byte, off int) (string, int, error) {
	var stack [256]byte
	name := stack[:0]
	end := -1 // offset after the name at the original position
	jumps, labels := 0, 0
	for {
		if off >= len(data) {
			return "", 0, ErrBadName
		}
		b := data[off]
		switch {
		case b == 0:
			if end < 0 {
				end = off + 1
			}
			return string(name), end, nil
		case b&0xc0 == 0xc0:
			if off+1 >= len(data) {
				return "", 0, ErrBadName
			}
			if end < 0 {
				end = off + 2
			}
			off = int(b&0x3f)<<8 | int(data[off+1])
			jumps++
			if jumps > 16 {
				return "", 0, ErrBadName
			}
		default:
			l := int(b)
			if off+1+l > len(data) {
				return "", 0, ErrBadName
			}
			if len(name) > 0 {
				name = append(name, '.')
			}
			name = append(name, data[off+1:off+1+l]...)
			off += 1 + l
			labels++
			if labels > 128 {
				return "", 0, ErrBadName
			}
		}
	}
}
