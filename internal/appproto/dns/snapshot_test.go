package dns

import (
	"net/netip"
	"testing"
	"time"
)

// TestSnapshotResetPairsAcrossCut pins the epoch contract's key
// property: a query observed before a Snapshot/Reset cut pairs with its
// response after the cut, the latency banks into the epoch where the
// pairing completed, and merging the epoch snapshots reproduces the
// uncut analyzer's statistics (including the cross-operation dedup).
func TestSnapshotResetPairsAcrossCut(t *testing.T) {
	client := netip.MustParseAddr("10.0.0.1")
	server := netip.MustParseAddr("10.0.0.53")
	t0 := time.Date(2005, 1, 6, 0, 0, 0, 0, time.UTC)

	run := func(cutMid bool) *Analyzer {
		a := NewAnalyzer()
		var snaps []*Analyzer
		a.Message(t0, client, server, &Message{ID: 1, QName: "a.example", QType: TypeA})
		if cutMid {
			snaps = append(snaps, a.Snapshot())
			a.Reset()
			if a.Types.Total() != 0 || a.Latency.N() != 0 {
				t.Fatal("reset left banked stats")
			}
		}
		// Response pairs across the cut; a retry of the same operation
		// afterwards must still dedup against seenOp.
		a.Message(t0.Add(5*time.Millisecond), server, client, &Message{ID: 1, Response: true, Rcode: RcodeNoError, QName: "a.example", QType: TypeA})
		a.Message(t0.Add(time.Second), client, server, &Message{ID: 2, QName: "a.example", QType: TypeA})
		a.Message(t0.Add(time.Second+4*time.Millisecond), server, client, &Message{ID: 2, Response: true, Rcode: RcodeNoError, QName: "a.example", QType: TypeA})
		if !cutMid {
			return a
		}
		merged := NewAnalyzer()
		for _, s := range snaps {
			merged.Merge(s)
		}
		merged.Merge(a.Snapshot())
		return merged
	}

	whole, cut := run(false), run(true)
	if got, want := cut.Latency.N(), whole.Latency.N(); got != want {
		t.Errorf("latency samples across cut: %d, want %d", got, want)
	}
	if got, want := cut.Rcodes.Total(), whole.Rcodes.Total(); got != want {
		t.Errorf("deduped rcode count across cut: %d, want %d (retries must not double-count)", got, want)
	}
	if got, want := cut.Types.Total(), whole.Types.Total(); got != want {
		t.Errorf("type counts: %d, want %d", got, want)
	}
}
