// Package flows implements transport-level connection tracking in the
// style of Bro's connection summaries, which the paper's analysis is built
// on. It groups decoded packets into bidirectional connections (TCP by
// handshake state, UDP and ICMP by canonical flow key with an inactivity
// timeout), accounts payload bytes per direction using header-implied
// lengths (so snaplen-truncated traces are counted correctly), classifies
// TCP connection outcomes (successful / rejected / unanswered — the
// categories of the paper's Table 9), and detects retransmissions and TCP
// keep-alives in sequence space (the inputs to Figure 10).
//
// Epoch obligations: none directly — a Table is per-shard, lives for a
// whole trace, and connections may straddle window boundaries. The
// windowed layer above (internal/core) banks a connection into the epoch
// in which it closes and snapshots its own aggregates; see DESIGN.md
// § "Epoch snapshots and windowed reports: the Snapshot/Reset/watermark
// contract".
package flows

import (
	"sync/atomic"
	"time"

	"enttrace/internal/layers"
)

// Dir distinguishes the two directions of a connection.
type Dir int

// Direction values.
const (
	DirOrig Dir = iota // originator → responder
	DirResp            // responder → originator
)

// State summarizes a TCP connection's fate, mirroring the paper's
// "successful / rejected / unanswered" accounting. Non-TCP connections are
// always StateActive.
type State int

// Connection states.
const (
	// StateActive covers UDP/ICMP flows and TCP connections seen only
	// mid-stream (no handshake observed in the trace).
	StateActive State = iota
	// StateAttempted is a SYN with no response at all ("unanswered").
	StateAttempted
	// StateRejected is a SYN answered by RST.
	StateRejected
	// StateEstablished is a completed SYN / SYN-ACK handshake.
	StateEstablished
)

// String names the state as the paper's tables do.
func (s State) String() string {
	switch s {
	case StateAttempted:
		return "unanswered"
	case StateRejected:
		return "rejected"
	case StateEstablished:
		return "successful"
	default:
		return "active"
	}
}

// dirTrack carries per-direction TCP sequence tracking.
type dirTrack struct {
	maxSeqEnd uint32 // highest seq+len observed
	seen      bool
}

// Conn is one tracked connection.
type Conn struct {
	// Key is oriented originator → responder.
	Key   layers.FlowKey
	Proto uint8
	Start time.Time
	Last  time.Time
	// Packet and header-implied payload byte counts per direction.
	OrigPkts, RespPkts   int64
	OrigBytes, RespBytes int64
	// WireBytes is total frame bytes in both directions (for load).
	WireBytes int64
	State     State
	// sawSYN/sawSYNACK/sawRST drive state classification.
	sawSYN, sawSYNACK bool
	sawRSTFromResp    bool
	sawFin            [2]bool
	// Retransmission accounting (TCP only).
	Retrans          int64 // retransmitted data packets, keep-alives excluded
	KeepAliveRetrans int64 // 1-byte snd_nxt-1 probes (NCP/SSH keep-alives)
	// DataPkts counts payload-carrying packets (the denominator of the
	// paper's retransmission rate).
	DataPkts int64
	track    [2]dirTrack
	// Multicast marks flows addressed to a multicast group.
	Multicast bool
	// finished marks connections already emitted (timeout or FIN/RST).
	finished bool
}

// Duration is the time between the first and last packet.
func (c *Conn) Duration() time.Duration { return c.Last.Sub(c.Start) }

// PayloadBytes is total payload in both directions.
func (c *Conn) PayloadBytes() int64 { return c.OrigBytes + c.RespBytes }

// Packets is total packets in both directions.
func (c *Conn) Packets() int64 { return c.OrigPkts + c.RespPkts }

// Successful reports whether the connection counts as successful for the
// paper's success-rate metrics: an established TCP handshake, or any
// non-TCP flow that saw a response.
func (c *Conn) Successful() bool {
	if c.Proto == layers.ProtoTCP {
		return c.State == StateEstablished || c.State == StateActive && c.RespPkts > 0
	}
	return c.RespPkts > 0
}

// HostPair returns the unordered endpoint pair.
func (c *Conn) HostPair() layers.HostPair {
	return layers.NewHostPair(c.Key.Src, c.Key.Dst)
}

// Config parameterizes a Table.
type Config struct {
	// UDPTimeout ends a UDP flow after this much inactivity. Default 30 s.
	UDPTimeout time.Duration
	// ICMPTimeout is the ICMP flow inactivity bound. Default 10 s.
	ICMPTimeout time.Duration
	// IdleTimeout, when > 0, ends any connection — TCP included — idle
	// past it, and arms the periodic sweep that evicts such connections
	// from the live table, bounding memory on indefinite runs. A
	// connection that speaks again after the horizon is tracked as a
	// new one; because the split is decided against the flow's own
	// timestamps, it is identical for any shard count, and the sweep
	// itself (which only reclaims memory earlier) never changes what is
	// reported. Protocols with a shorter default timeout keep it.
	IdleTimeout time.Duration
	// MaxConns, when > 0, hard-bounds the live table: an insert beyond
	// it evicts the least-recently-active connection first. This is a
	// lossy backstop for hostile or misconfigured workloads — when it
	// fires, which connection splits depends on shard load, so reports
	// are no longer worker-count-invariant; the eviction count is
	// surfaced so a run that tripped it is identifiable.
	MaxConns int
	// LiveGauge, when non-nil, tracks the live-connection count; shards
	// of one analysis share a single gauge, so it reads as the whole
	// run's resident connection total.
	LiveGauge *atomic.Int64
}

func (c *Config) withDefaults() Config {
	out := *c
	if out.UDPTimeout == 0 {
		out.UDPTimeout = 30 * time.Second
	}
	if out.ICMPTimeout == 0 {
		out.ICMPTimeout = 10 * time.Second
	}
	return out
}

// Table tracks all live connections in a trace. Feed it decoded packets in
// timestamp order via Packet, then call Flush; Conns returns every
// connection observed.
type Table struct {
	cfg  Config
	live map[layers.FlowKey]*Conn
	done []*Conn
	// slab batches Conn allocations: connection tracking creates one Conn
	// per flow, and carving them from a block cuts the hot path's
	// allocation count without changing lifetimes (all of a trace's
	// connections live until the analysis drops the whole table).
	slab []Conn
	// lastSweep is the event time of the last idle sweep (zero until
	// the first packet arms it).
	lastSweep time.Time
	// agedEvicted/capEvicted count connections removed from the live
	// table by the idle sweep and the MaxConns backstop respectively.
	agedEvicted, capEvicted int64
}

// NewTable returns an empty connection table.
func NewTable(cfg Config) *Table {
	return &Table{cfg: cfg.withDefaults(), live: make(map[layers.FlowKey]*Conn)}
}

// Packet feeds one decoded packet. wireLen is the frame's original wire
// length. It returns the connection and the packet's direction within it,
// or nil for packets with no transport flow (ARP, IPX, fragments).
func (t *Table) Packet(ts time.Time, p *layers.Packet, wireLen int) (*Conn, Dir) {
	t.maybeSweep(ts)
	key, ok := layers.FlowKeyOf(p)
	if !ok {
		return nil, DirOrig
	}
	if p.Layers.Has(layers.LayerICMP) {
		// Echo exchanges pair request and reply into one flow by ID.
		key.SrcPort, key.DstPort = 0, 0
		if p.ICMP.Type == layers.ICMPEchoRequest || p.ICMP.Type == layers.ICMPEchoReply {
			key.SrcPort = p.ICMP.ID
			key.DstPort = p.ICMP.ID
		}
	}
	canon, flipped := key.Canonical()
	conn := t.live[canon]
	if conn != nil && t.expired(conn, ts) {
		t.finish(conn)
		conn = nil
	}
	isNew := conn == nil
	if isNew {
		conn = t.alloc()
		*conn = Conn{Key: key, Proto: key.Proto, Start: ts, Last: ts}
		if p.Eth.Dst.Multicast() {
			conn.Multicast = true
		}
		if dst, ok := p.NetDst(); ok && dst.Is4() && dst.IsMulticast() {
			conn.Multicast = true
		}
		t.live[canon] = conn
		if t.cfg.LiveGauge != nil {
			t.cfg.LiveGauge.Add(1)
		}
		t.enforceCap(conn)
	}
	// Direction relative to the connection's originator.
	dir := DirOrig
	if key != conn.Key {
		dir = DirResp
	}
	_ = flipped
	conn.Last = ts
	conn.WireBytes += int64(wireLen)
	payload := int64(p.PayloadLen)
	if dir == DirOrig {
		conn.OrigPkts++
		conn.OrigBytes += payload
	} else {
		conn.RespPkts++
		conn.RespBytes += payload
	}
	if payload > 0 {
		conn.DataPkts++
	}
	if p.Layers.Has(layers.LayerTCP) {
		t.tcpUpdate(conn, dir, &p.TCP, p.PayloadLen, isNew)
	}
	return conn, dir
}

// alloc carves one Conn from the slab.
func (t *Table) alloc() *Conn {
	if len(t.slab) == 0 {
		t.slab = make([]Conn, 128)
	}
	c := &t.slab[0]
	t.slab = t.slab[1:]
	return c
}

func (t *Table) expired(c *Conn, now time.Time) bool {
	if t.cfg.IdleTimeout > 0 && now.Sub(c.Last) > t.cfg.IdleTimeout {
		return true
	}
	switch c.Proto {
	case layers.ProtoUDP:
		return now.Sub(c.Last) > t.cfg.UDPTimeout
	case layers.ProtoICMP:
		return now.Sub(c.Last) > t.cfg.ICMPTimeout
	}
	return false
}

// sweep finishes every live connection idle past the IdleTimeout
// horizon at event time now. Because shard timestamps are
// non-decreasing, any connection the sweep evicts would also have been
// split by expired() at its next packet — the sweep only reclaims the
// memory earlier, so reports are unchanged by when (or whether) it
// runs.
func (t *Table) sweep(now time.Time) {
	for _, c := range t.live {
		if now.Sub(c.Last) > t.cfg.IdleTimeout {
			t.finish(c)
			t.agedEvicted++
		}
	}
}

// maybeSweep runs the idle sweep at most once per half horizon of
// event time — often enough that the live table holds at most one
// extra horizon's worth of dead flows, rarely enough to stay off the
// hot path.
func (t *Table) maybeSweep(now time.Time) {
	if t.cfg.IdleTimeout <= 0 {
		return
	}
	if t.lastSweep.IsZero() {
		t.lastSweep = now
		return
	}
	if now.Sub(t.lastSweep) >= t.cfg.IdleTimeout/2 {
		t.sweep(now)
		t.lastSweep = now
	}
}

// enforceCap evicts the least-recently-active connection when an
// insert pushed the live table over MaxConns. Ties break toward the
// earliest-started connection; the just-inserted one is never the
// victim.
func (t *Table) enforceCap(just *Conn) {
	for t.cfg.MaxConns > 0 && len(t.live) > t.cfg.MaxConns {
		var victim *Conn
		for _, c := range t.live {
			if c == just {
				continue
			}
			if victim == nil || c.Last.Before(victim.Last) ||
				(c.Last.Equal(victim.Last) && c.Start.Before(victim.Start)) {
				victim = c
			}
		}
		if victim == nil {
			return
		}
		t.finish(victim)
		t.capEvicted++
	}
}

// EvictStats returns how many connections the idle sweep (aged) and the
// MaxConns backstop (capped) have evicted from the live table.
func (t *Table) EvictStats() (aged, capped int64) { return t.agedEvicted, t.capEvicted }

// CapEvicted returns the MaxConns backstop's eviction count alone.
func (t *Table) CapEvicted() int64 { return t.capEvicted }

func (t *Table) tcpUpdate(c *Conn, dir Dir, tcp *layers.TCP, payloadLen int, isNew bool) {
	syn := tcp.Flags&layers.TCPSyn != 0
	ack := tcp.Flags&layers.TCPAck != 0
	rst := tcp.Flags&layers.TCPRst != 0
	fin := tcp.Flags&layers.TCPFin != 0

	if syn && !ack {
		// Pure SYN defines the originator. If the first packet we saw was
		// actually from the responder (e.g. simultaneous capture start),
		// reorient the connection.
		if dir == DirResp && !c.sawSYN {
			c.reorient()
			dir = DirOrig
		}
		c.sawSYN = true
	}
	if syn && ack && dir == DirResp {
		c.sawSYNACK = true
	}
	if rst && dir == DirResp && c.sawSYN && !c.sawSYNACK {
		c.sawRSTFromResp = true
	}
	if fin {
		c.sawFin[dir] = true
	}
	c.State = c.classify()

	// Sequence-space retransmission detection, per direction.
	tr := &c.track[dir]
	seqEnd := tcp.Seq + uint32(payloadLen)
	if syn || fin {
		seqEnd++
	}
	if !tr.seen {
		tr.seen = true
		tr.maxSeqEnd = seqEnd
		return
	}
	if payloadLen > 0 && int32(seqEnd-tr.maxSeqEnd) <= 0 {
		// Entirely old data: a retransmission. The paper excludes TCP
		// keep-alives (1 garbage byte at snd_nxt-1) from load analysis.
		if payloadLen == 1 && tcp.Seq == tr.maxSeqEnd-1 {
			c.KeepAliveRetrans++
		} else {
			c.Retrans++
		}
		return
	}
	if int32(seqEnd-tr.maxSeqEnd) > 0 {
		tr.maxSeqEnd = seqEnd
	}
}

// reorient swaps originator and responder on a connection whose first
// packet turned out to be from the responder.
func (c *Conn) reorient() {
	c.Key = c.Key.Reverse()
	c.OrigPkts, c.RespPkts = c.RespPkts, c.OrigPkts
	c.OrigBytes, c.RespBytes = c.RespBytes, c.OrigBytes
	c.track[0], c.track[1] = c.track[1], c.track[0]
	c.sawFin[0], c.sawFin[1] = c.sawFin[1], c.sawFin[0]
}

func (c *Conn) classify() State {
	switch {
	case c.sawSYNACK:
		return StateEstablished
	case c.sawRSTFromResp:
		return StateRejected
	case c.sawSYN && c.RespPkts == 0:
		return StateAttempted
	case c.sawSYN && c.RespPkts > 0:
		// Response seen but no SYN-ACK captured (e.g. truncated trace
		// start); treat as established for success accounting.
		return StateEstablished
	default:
		return StateActive
	}
}

func (t *Table) finish(c *Conn) {
	if !c.finished {
		c.finished = true
		t.done = append(t.done, c)
	}
	canon, _ := c.Key.Canonical()
	if t.live[canon] == c {
		delete(t.live, canon)
		if t.cfg.LiveGauge != nil {
			t.cfg.LiveGauge.Add(-1)
		}
	}
}

// Flush finalizes all live connections (end of trace).
func (t *Table) Flush() {
	for _, c := range t.live {
		c.finished = true
		t.done = append(t.done, c)
	}
	if t.cfg.LiveGauge != nil {
		t.cfg.LiveGauge.Add(-int64(len(t.live)))
	}
	t.live = make(map[layers.FlowKey]*Conn)
}

// Conns returns all finalized connections, in no particular order. Call
// Flush first to include still-live flows.
func (t *Table) Conns() []*Conn { return t.done }

// Live returns the number of currently tracked connections.
func (t *Table) Live() int { return len(t.live) }
