package flows

import (
	"net/netip"
	"testing"
	"time"

	"enttrace/internal/layers"
)

var (
	macA = layers.MAC{0, 1, 2, 3, 4, 5}
	macB = layers.MAC{6, 7, 8, 9, 10, 11}
	ipA  = netip.MustParseAddr("10.0.0.1")
	ipB  = netip.MustParseAddr("10.0.0.2")
	ipC  = netip.MustParseAddr("192.168.9.9")
)

func t0(ms int64) time.Time { return time.Unix(100, 0).Add(time.Duration(ms) * time.Millisecond) }

func feedTCP(t *testing.T, tbl *Table, ts time.Time, src, dst netip.Addr, sp, dp uint16, seq, ack uint32, flags uint8, payload []byte) (*Conn, Dir) {
	t.Helper()
	frame := layers.BuildTCP(layers.TCPOpts{
		FrameOpts: layers.FrameOpts{SrcMAC: macA, DstMAC: macB, SrcIP: src, DstIP: dst},
		SrcPort:   sp, DstPort: dp, Seq: seq, Ack: ack, Flags: flags, Payload: payload,
	})
	var p layers.Packet
	if err := layers.Decode(frame, len(frame), &p); err != nil {
		t.Fatal(err)
	}
	return tbl.Packet(ts, &p, len(frame))
}

func feedUDP(t *testing.T, tbl *Table, ts time.Time, src, dst netip.Addr, sp, dp uint16, n int) (*Conn, Dir) {
	t.Helper()
	frame := layers.BuildUDP(layers.UDPOpts{
		FrameOpts: layers.FrameOpts{SrcMAC: macA, DstMAC: macB, SrcIP: src, DstIP: dst},
		SrcPort:   sp, DstPort: dp, Payload: make([]byte, n),
	})
	var p layers.Packet
	if err := layers.Decode(frame, len(frame), &p); err != nil {
		t.Fatal(err)
	}
	return tbl.Packet(ts, &p, len(frame))
}

func TestTCPHandshakeEstablished(t *testing.T) {
	tbl := NewTable(Config{})
	c1, d1 := feedTCP(t, tbl, t0(0), ipA, ipB, 3000, 80, 100, 0, layers.TCPSyn, nil)
	if d1 != DirOrig {
		t.Error("SYN should be originator direction")
	}
	c2, d2 := feedTCP(t, tbl, t0(1), ipB, ipA, 80, 3000, 500, 101, layers.TCPSyn|layers.TCPAck, nil)
	if c1 != c2 {
		t.Fatal("same connection expected")
	}
	if d2 != DirResp {
		t.Error("SYN-ACK should be responder direction")
	}
	feedTCP(t, tbl, t0(2), ipA, ipB, 3000, 80, 101, 501, layers.TCPAck, []byte("hello"))
	if c1.State != StateEstablished {
		t.Errorf("state = %v", c1.State)
	}
	if !c1.Successful() {
		t.Error("established conn should be successful")
	}
	if c1.OrigBytes != 5 || c1.RespBytes != 0 {
		t.Errorf("bytes orig=%d resp=%d", c1.OrigBytes, c1.RespBytes)
	}
	if c1.Key.Src != ipA || c1.Key.Dst != ipB {
		t.Errorf("orientation: %v", c1.Key)
	}
	if c1.Duration() != 2*time.Millisecond {
		t.Errorf("duration = %v", c1.Duration())
	}
	tbl.Flush()
	if len(tbl.Conns()) != 1 {
		t.Errorf("conns = %d", len(tbl.Conns()))
	}
}

func TestTCPRejected(t *testing.T) {
	tbl := NewTable(Config{})
	c, _ := feedTCP(t, tbl, t0(0), ipA, ipB, 3000, 445, 1, 0, layers.TCPSyn, nil)
	feedTCP(t, tbl, t0(1), ipB, ipA, 445, 3000, 0, 2, layers.TCPRst|layers.TCPAck, nil)
	if c.State != StateRejected {
		t.Errorf("state = %v, want rejected", c.State)
	}
	if c.Successful() {
		t.Error("rejected conn counted successful")
	}
	if c.State.String() != "rejected" {
		t.Errorf("string = %s", c.State)
	}
}

func TestTCPUnanswered(t *testing.T) {
	tbl := NewTable(Config{})
	c, _ := feedTCP(t, tbl, t0(0), ipA, ipB, 3000, 139, 1, 0, layers.TCPSyn, nil)
	feedTCP(t, tbl, t0(500), ipA, ipB, 3000, 139, 1, 0, layers.TCPSyn, nil) // retry
	if c.State != StateAttempted {
		t.Errorf("state = %v, want attempted", c.State)
	}
	if c.Successful() {
		t.Error("unanswered conn counted successful")
	}
	if c.OrigPkts != 2 {
		t.Errorf("pkts = %d", c.OrigPkts)
	}
}

func TestTCPReorientOnLateSYN(t *testing.T) {
	// Trace catches the server's data packet before the client's SYN
	// (possible with the merged unidirectional streams).
	tbl := NewTable(Config{})
	c, _ := feedTCP(t, tbl, t0(0), ipB, ipA, 80, 3000, 900, 0, layers.TCPAck, []byte("srv"))
	feedTCP(t, tbl, t0(1), ipA, ipB, 3000, 80, 100, 0, layers.TCPSyn, nil)
	if c.Key.Src != ipA {
		t.Errorf("conn should reorient to SYN sender: %v", c.Key)
	}
	if c.RespBytes != 3 || c.OrigBytes != 0 {
		t.Errorf("bytes not swapped: orig=%d resp=%d", c.OrigBytes, c.RespBytes)
	}
}

func TestMidstreamActive(t *testing.T) {
	tbl := NewTable(Config{})
	c, _ := feedTCP(t, tbl, t0(0), ipA, ipB, 9, 10, 5, 0, layers.TCPAck, []byte("x"))
	feedTCP(t, tbl, t0(1), ipB, ipA, 10, 9, 50, 6, layers.TCPAck, []byte("y"))
	if c.State != StateActive {
		t.Errorf("state = %v", c.State)
	}
	if !c.Successful() {
		t.Error("bidirectional midstream flow should count successful")
	}
}

func TestRetransmissionDetection(t *testing.T) {
	tbl := NewTable(Config{})
	c, _ := feedTCP(t, tbl, t0(0), ipA, ipB, 1, 2, 1000, 0, layers.TCPAck, []byte("abcd"))
	feedTCP(t, tbl, t0(1), ipA, ipB, 1, 2, 1004, 0, layers.TCPAck, []byte("efgh"))
	feedTCP(t, tbl, t0(2), ipA, ipB, 1, 2, 1004, 0, layers.TCPAck, []byte("efgh")) // retransmission
	feedTCP(t, tbl, t0(3), ipA, ipB, 1, 2, 1000, 0, layers.TCPAck, []byte("abcd")) // older retransmission
	if c.Retrans != 2 {
		t.Errorf("retrans = %d, want 2", c.Retrans)
	}
	if c.KeepAliveRetrans != 0 {
		t.Errorf("keepalives = %d", c.KeepAliveRetrans)
	}
	// New data after retransmissions is not counted.
	feedTCP(t, tbl, t0(4), ipA, ipB, 1, 2, 1008, 0, layers.TCPAck, []byte("ijkl"))
	if c.Retrans != 2 {
		t.Errorf("retrans after new data = %d", c.Retrans)
	}
}

func TestKeepAliveDetection(t *testing.T) {
	// NCP-style keep-alive: 1 byte at snd_nxt-1, repeatedly.
	tbl := NewTable(Config{})
	c, _ := feedTCP(t, tbl, t0(0), ipA, ipB, 1, 524, 100, 0, layers.TCPAck, []byte("ab"))
	for i := 1; i <= 3; i++ {
		feedTCP(t, tbl, t0(int64(i*1000)), ipA, ipB, 1, 524, 101, 0, layers.TCPAck, []byte("b"))
	}
	if c.KeepAliveRetrans != 3 {
		t.Errorf("keepalives = %d, want 3", c.KeepAliveRetrans)
	}
	if c.Retrans != 0 {
		t.Errorf("retrans = %d, want 0", c.Retrans)
	}
}

func TestSYNRetransNotData(t *testing.T) {
	tbl := NewTable(Config{})
	c, _ := feedTCP(t, tbl, t0(0), ipA, ipB, 1, 2, 9, 0, layers.TCPSyn, nil)
	feedTCP(t, tbl, t0(3000), ipA, ipB, 1, 2, 9, 0, layers.TCPSyn, nil)
	if c.Retrans != 0 {
		t.Errorf("SYN retransmission should not count as data retrans, got %d", c.Retrans)
	}
}

func TestUDPFlowAggregation(t *testing.T) {
	tbl := NewTable(Config{})
	c1, _ := feedUDP(t, tbl, t0(0), ipA, ipB, 5000, 53, 30)
	c2, d2 := feedUDP(t, tbl, t0(5), ipB, ipA, 53, 5000, 100)
	if c1 != c2 || d2 != DirResp {
		t.Error("reply should join the same flow as responder")
	}
	if !c1.Successful() {
		t.Error("answered UDP flow should be successful")
	}
	if c1.OrigBytes != 30 || c1.RespBytes != 100 {
		t.Errorf("bytes: %d/%d", c1.OrigBytes, c1.RespBytes)
	}
}

func TestUDPTimeoutSplitsFlows(t *testing.T) {
	tbl := NewTable(Config{UDPTimeout: time.Second})
	c1, _ := feedUDP(t, tbl, t0(0), ipA, ipB, 5000, 123, 48)
	c2, _ := feedUDP(t, tbl, t0(5000), ipA, ipB, 5000, 123, 48) // 5 s later
	if c1 == c2 {
		t.Error("flow should have timed out and split")
	}
	tbl.Flush()
	if n := len(tbl.Conns()); n != 2 {
		t.Errorf("conns = %d, want 2", n)
	}
}

func TestICMPEchoPairing(t *testing.T) {
	tbl := NewTable(Config{})
	build := func(typ uint8, id uint16, src, dst netip.Addr) *layers.Packet {
		frame := layers.BuildICMP(layers.ICMPOpts{
			FrameOpts: layers.FrameOpts{SrcMAC: macA, DstMAC: macB, SrcIP: src, DstIP: dst},
			Type:      typ, ID: id, Seq: 1,
		})
		var p layers.Packet
		if err := layers.Decode(frame, len(frame), &p); err != nil {
			t.Fatal(err)
		}
		return &p
	}
	c1, _ := tbl.Packet(t0(0), build(layers.ICMPEchoRequest, 7, ipA, ipB), 60)
	c2, d := tbl.Packet(t0(1), build(layers.ICMPEchoReply, 7, ipB, ipA), 60)
	if c1 != c2 || d != DirResp {
		t.Error("echo reply should pair with request")
	}
	c3, _ := tbl.Packet(t0(2), build(layers.ICMPEchoRequest, 8, ipA, ipB), 60)
	if c3 == c1 {
		t.Error("different echo ID should be a distinct flow")
	}
}

func TestMulticastFlagged(t *testing.T) {
	tbl := NewTable(Config{})
	group := netip.MustParseAddr("239.2.11.71")
	frame := layers.BuildUDP(layers.UDPOpts{
		FrameOpts: layers.FrameOpts{SrcMAC: macA, DstMAC: layers.MulticastMAC(group), SrcIP: ipA, DstIP: group},
		SrcPort:   3000, DstPort: 5004, Payload: make([]byte, 200),
	})
	var p layers.Packet
	if err := layers.Decode(frame, len(frame), &p); err != nil {
		t.Fatal(err)
	}
	c, _ := tbl.Packet(t0(0), &p, len(frame))
	if !c.Multicast {
		t.Error("multicast flow not flagged")
	}
}

func TestNonIPIgnored(t *testing.T) {
	tbl := NewTable(Config{})
	frame := layers.BuildARP(layers.ARPOpts{SrcMAC: macA, DstMAC: layers.Broadcast, Op: 1, SenderHW: macA, SenderIP: ipA, TargetIP: ipB})
	var p layers.Packet
	if err := layers.Decode(frame, len(frame), &p); err != nil {
		t.Fatal(err)
	}
	if c, _ := tbl.Packet(t0(0), &p, len(frame)); c != nil {
		t.Error("ARP should not create a connection")
	}
}

func TestWireBytesAccounting(t *testing.T) {
	tbl := NewTable(Config{})
	c, _ := feedUDP(t, tbl, t0(0), ipA, ipB, 1, 2, 100)
	want := int64(14 + 20 + 8 + 100)
	if c.WireBytes != want {
		t.Errorf("wire bytes = %d, want %d", c.WireBytes, want)
	}
}

func TestFanInOut(t *testing.T) {
	tbl := NewTable(Config{})
	// A (monitored, local) talks to B (local) and C (remote).
	feedUDP(t, tbl, t0(0), ipA, ipB, 1000, 53, 10)
	feedUDP(t, tbl, t0(1), ipA, ipC, 1001, 53, 10)
	// C contacts A.
	feedUDP(t, tbl, t0(2), ipC, ipA, 2000, 80, 10)
	tbl.Flush()
	local := func(a netip.Addr) bool { return a == ipA || a == ipB }
	monitored := func(a netip.Addr) bool { return a == ipA }
	fan := FanInOut(tbl.Conns(), monitored, local)
	s := fan[ipA]
	if s == nil {
		t.Fatal("no stats for monitored host")
	}
	if s.FanOutLocal != 1 || s.FanOutRemote != 1 || s.FanOut() != 2 {
		t.Errorf("fan-out: %+v", s)
	}
	if s.FanInRemote != 1 || s.FanInLocal != 0 || s.FanIn() != 1 {
		t.Errorf("fan-in: %+v", s)
	}
	if _, ok := fan[ipB]; ok {
		t.Error("unmonitored host should have no entry")
	}
}

func TestFanInOutExcludesMulticast(t *testing.T) {
	tbl := NewTable(Config{})
	group := netip.MustParseAddr("224.0.1.1")
	frame := layers.BuildUDP(layers.UDPOpts{
		FrameOpts: layers.FrameOpts{SrcMAC: macA, DstMAC: layers.MulticastMAC(group), SrcIP: ipA, DstIP: group},
		SrcPort:   427, DstPort: 427, Payload: make([]byte, 50),
	})
	var p layers.Packet
	if err := layers.Decode(frame, len(frame), &p); err != nil {
		t.Fatal(err)
	}
	tbl.Packet(t0(0), &p, len(frame))
	tbl.Flush()
	all := func(netip.Addr) bool { return true }
	fan := FanInOut(tbl.Conns(), all, all)
	if s := fan[ipA]; s != nil && s.FanOut() != 0 {
		t.Errorf("multicast contributed to fan-out: %+v", s)
	}
}

func TestManyConnsDistinct(t *testing.T) {
	tbl := NewTable(Config{})
	for i := 0; i < 100; i++ {
		feedTCP(t, tbl, t0(int64(i)), ipA, ipB, uint16(10000+i), 80, 1, 0, layers.TCPSyn, nil)
	}
	tbl.Flush()
	if n := len(tbl.Conns()); n != 100 {
		t.Errorf("conns = %d, want 100", n)
	}
}

func BenchmarkTablePacket(b *testing.B) {
	tbl := NewTable(Config{})
	frame := layers.BuildTCP(layers.TCPOpts{
		FrameOpts: layers.FrameOpts{SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB},
		SrcPort:   3000, DstPort: 80, Seq: 1, Flags: layers.TCPAck, Payload: make([]byte, 512),
	})
	var p layers.Packet
	if err := layers.Decode(frame, len(frame), &p); err != nil {
		b.Fatal(err)
	}
	ts := t0(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl.Packet(ts, &p, len(frame))
	}
}
