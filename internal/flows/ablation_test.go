package flows

import (
	"testing"
	"time"

	"enttrace/internal/layers"
)

// TestUDPTimeoutAblation quantifies the DESIGN.md ablation: how the UDP
// inactivity timeout changes the connection count for periodic traffic.
// A 45-second announcement period must split into one flow per
// announcement below the period and merge above it — the mechanism behind
// the paper's stable net-mgnt connection share.
func TestUDPTimeoutAblation(t *testing.T) {
	build := func(timeout time.Duration) int {
		tbl := NewTable(Config{UDPTimeout: timeout})
		frame := layers.BuildUDP(layers.UDPOpts{
			FrameOpts: layers.FrameOpts{SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB},
			SrcPort:   9875, DstPort: 9875, Payload: make([]byte, 200),
		})
		var p layers.Packet
		if err := layers.Decode(frame, len(frame), &p); err != nil {
			t.Fatal(err)
		}
		// 20 announcements, 45 s apart.
		for i := 0; i < 20; i++ {
			tbl.Packet(t0(int64(i)*45_000), &p, len(frame))
		}
		tbl.Flush()
		return len(tbl.Conns())
	}
	if got := build(10 * time.Second); got != 20 {
		t.Errorf("10s timeout → %d conns, want 20 (one per announcement)", got)
	}
	if got := build(30 * time.Second); got != 20 {
		t.Errorf("30s timeout → %d conns, want 20", got)
	}
	if got := build(60 * time.Second); got != 1 {
		t.Errorf("60s timeout → %d conns, want 1 (merged)", got)
	}
}

// TestUDPTimeoutMonotone: larger timeouts can only merge flows, never
// split them.
func TestUDPTimeoutMonotone(t *testing.T) {
	counts := make([]int, 0, 3)
	for _, timeout := range []time.Duration{5 * time.Second, 30 * time.Second, 2 * time.Minute} {
		tbl := NewTable(Config{UDPTimeout: timeout})
		frame := layers.BuildUDP(layers.UDPOpts{
			FrameOpts: layers.FrameOpts{SrcMAC: macA, DstMAC: macB, SrcIP: ipA, DstIP: ipB},
			SrcPort:   427, DstPort: 427, Payload: make([]byte, 60),
		})
		var p layers.Packet
		if err := layers.Decode(frame, len(frame), &p); err != nil {
			t.Fatal(err)
		}
		// Irregular gaps: 3 s, 40 s, 8 s, 90 s, 3 s.
		at := []int64{0, 3, 43, 51, 141, 144}
		for _, sec := range at {
			tbl.Packet(t0(sec*1000), &p, len(frame))
		}
		tbl.Flush()
		counts = append(counts, len(tbl.Conns()))
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] > counts[i-1] {
			t.Errorf("conn counts not monotone under growing timeout: %v", counts)
		}
	}
}
