package flows

import (
	"sync/atomic"
	"testing"
	"time"

	"enttrace/internal/layers"
)

// TestIdleTimeoutSplitsConnection: a packet on a tuple idle past the
// horizon starts a fresh connection instead of extending the old one.
func TestIdleTimeoutSplitsConnection(t *testing.T) {
	tbl := NewTable(Config{IdleTimeout: time.Minute})
	c1, _ := feedTCP(t, tbl, t0(0), ipA, ipB, 3000, 80, 100, 0, layers.TCPSyn, nil)
	c2, _ := feedTCP(t, tbl, t0(0).Add(2*time.Minute), ipA, ipB, 3000, 80, 200, 0, layers.TCPSyn, nil)
	if c1 == c2 {
		t.Fatal("idle connection extended past the horizon instead of splitting")
	}
	tbl.Flush()
	if n := len(tbl.Conns()); n != 2 {
		t.Errorf("conns = %d, want 2", n)
	}
}

// TestSweepEvictsIdleConnWithoutRevisit: the periodic sweep finishes a
// connection whose tuple is never touched again, driven only by other
// traffic advancing the clock — the bounded-memory guarantee.
func TestSweepEvictsIdleConnWithoutRevisit(t *testing.T) {
	var gauge atomic.Int64
	tbl := NewTable(Config{IdleTimeout: time.Minute, LiveGauge: &gauge})
	feedUDP(t, tbl, t0(0), ipA, ipB, 5000, 53, 64)
	if gauge.Load() != 1 {
		t.Fatalf("gauge = %d after first insert, want 1", gauge.Load())
	}
	// Unrelated traffic two minutes later triggers the sweep.
	feedUDP(t, tbl, t0(0).Add(2*time.Minute), ipA, ipC, 5001, 53, 64)
	aged, capped := tbl.EvictStats()
	if aged != 1 || capped != 0 {
		t.Errorf("EvictStats = (%d, %d), want (1, 0)", aged, capped)
	}
	if gauge.Load() != 1 {
		t.Errorf("gauge = %d after sweep, want 1 (old conn evicted, new live)", gauge.Load())
	}
	tbl.Flush()
	if gauge.Load() != 0 {
		t.Errorf("gauge = %d after flush, want 0", gauge.Load())
	}
	if n := len(tbl.Conns()); n != 2 {
		t.Errorf("conns = %d, want 2 (evicted conn still reported)", n)
	}
}

// TestMaxConnsBackstopEvictsColdest: an insert past the cap evicts the
// least-recently-active connection, never the one just inserted, and
// every evicted connection still reaches the finished list.
func TestMaxConnsBackstopEvictsColdest(t *testing.T) {
	var gauge atomic.Int64
	tbl := NewTable(Config{MaxConns: 2, LiveGauge: &gauge})
	a, _ := feedUDP(t, tbl, t0(0), ipA, ipB, 5000, 53, 64)
	feedUDP(t, tbl, t0(10), ipA, ipB, 5001, 53, 64)
	feedUDP(t, tbl, t0(20), ipA, ipC, 5002, 53, 64)
	if got := tbl.CapEvicted(); got != 1 {
		t.Fatalf("CapEvicted = %d, want 1", got)
	}
	if gauge.Load() != 2 {
		t.Errorf("gauge = %d with cap 2, want 2", gauge.Load())
	}
	// The coldest (first) connection is the victim: a later packet on
	// its tuple starts a new connection.
	a2, _ := feedUDP(t, tbl, t0(30), ipA, ipB, 5000, 53, 64)
	if a2 == a {
		t.Error("evicted connection was extended, want a fresh one")
	}
	tbl.Flush()
	if n := len(tbl.Conns()); n != 4 {
		t.Errorf("conns = %d, want 4 (3 originals + post-eviction revisit)", n)
	}
	if gauge.Load() != 0 {
		t.Errorf("gauge = %d after flush, want 0", gauge.Load())
	}
}

// TestNoAgingWithoutConfig: the zero config keeps the historical
// behavior — a TCP connection never expires on idleness alone (UDP and
// ICMP keep their own protocol timeouts), and nothing is capped.
func TestNoAgingWithoutConfig(t *testing.T) {
	tbl := NewTable(Config{})
	c1, _ := feedTCP(t, tbl, t0(0), ipA, ipB, 3000, 80, 100, 0, layers.TCPSyn, nil)
	c2, _ := feedTCP(t, tbl, t0(0).Add(24*time.Hour), ipA, ipB, 3000, 80, 101, 0, layers.TCPAck, nil)
	if c1 != c2 {
		t.Error("TCP connection split with no IdleTimeout configured")
	}
	aged, capped := tbl.EvictStats()
	if aged != 0 || capped != 0 {
		t.Errorf("EvictStats = (%d, %d), want zeros", aged, capped)
	}
}
