package flows

import (
	"net/netip"
)

// FanStats holds, for one host, the set sizes the paper's §4 reports:
// fan-in (distinct hosts that originate conversations to it) and fan-out
// (distinct hosts it originates conversations to), split by whether the
// peer is local to the enterprise.
type FanStats struct {
	FanInLocal, FanInRemote   int
	FanOutLocal, FanOutRemote int
}

// FanIn is total distinct originating peers.
func (f FanStats) FanIn() int { return f.FanInLocal + f.FanInRemote }

// FanOut is total distinct contacted peers.
func (f FanStats) FanOut() int { return f.FanOutLocal + f.FanOutRemote }

// FanInOut computes per-host fan statistics over a set of connections.
// isLocal classifies an address as inside the enterprise; only hosts for
// which monitored(addr) is true get an entry (the paper computes fan only
// for monitored hosts). Multicast flows are excluded.
func FanInOut(conns []*Conn, monitored, isLocal func(netip.Addr) bool) map[netip.Addr]*FanStats {
	type peerSet map[netip.Addr]struct{}
	fanIn := make(map[netip.Addr]peerSet)
	fanOut := make(map[netip.Addr]peerSet)
	for _, c := range conns {
		if c.Multicast {
			continue
		}
		orig, resp := c.Key.Src, c.Key.Dst
		if monitored(resp) {
			if _, ok := fanIn[resp]; !ok {
				fanIn[resp] = make(peerSet)
			}
			fanIn[resp][orig] = struct{}{}
		}
		if monitored(orig) {
			if _, ok := fanOut[orig]; !ok {
				fanOut[orig] = make(peerSet)
			}
			fanOut[orig][resp] = struct{}{}
		}
	}
	out := make(map[netip.Addr]*FanStats)
	get := func(h netip.Addr) *FanStats {
		s := out[h]
		if s == nil {
			s = &FanStats{}
			out[h] = s
		}
		return s
	}
	for h, peers := range fanIn {
		s := get(h)
		for p := range peers {
			if isLocal(p) {
				s.FanInLocal++
			} else {
				s.FanInRemote++
			}
		}
	}
	for h, peers := range fanOut {
		s := get(h)
		for p := range peers {
			if isLocal(p) {
				s.FanOutLocal++
			} else {
				s.FanOutRemote++
			}
		}
	}
	return out
}
