package flows

import (
	"net/netip"
	"sort"
)

// FanStats holds, for one host, the set sizes the paper's §4 reports:
// fan-in (distinct hosts that originate conversations to it) and fan-out
// (distinct hosts it originates conversations to), split by whether the
// peer is local to the enterprise.
type FanStats struct {
	FanInLocal, FanInRemote   int
	FanOutLocal, FanOutRemote int
}

// FanIn is total distinct originating peers.
func (f FanStats) FanIn() int { return f.FanInLocal + f.FanInRemote }

// FanOut is total distinct contacted peers.
func (f FanStats) FanOut() int { return f.FanOutLocal + f.FanOutRemote }

// Merge adds other's distinct-peer counts into f. Exact when the two
// stats were computed over connection sets split by host pair (each
// (host, peer) edge then lives in exactly one source) — the invariant
// both the replay sharding and the per-trace fan census provide.
func (f *FanStats) Merge(other *FanStats) {
	f.FanInLocal += other.FanInLocal
	f.FanInRemote += other.FanInRemote
	f.FanOutLocal += other.FanOutLocal
	f.FanOutRemote += other.FanOutRemote
}

// FanInOut computes per-host fan statistics over a set of connections.
// isLocal classifies an address as inside the enterprise; only hosts for
// which monitored(addr) is true get an entry (the paper computes fan only
// for monitored hosts). Multicast flows are excluded.
//
// Distinct peers are counted by sorting (host, peer) edge lists and
// scanning runs — the per-host set-of-maps form this replaces allocated
// a small object per host pair per trace.
func FanInOut(conns []*Conn, monitored, isLocal func(netip.Addr) bool) map[netip.Addr]*FanStats {
	type edge struct{ host, peer netip.Addr }
	inE := make([]edge, 0, len(conns))
	outE := make([]edge, 0, len(conns))
	for _, c := range conns {
		if c.Multicast {
			continue
		}
		orig, resp := c.Key.Src, c.Key.Dst
		if monitored(resp) {
			inE = append(inE, edge{host: resp, peer: orig})
		}
		if monitored(orig) {
			outE = append(outE, edge{host: orig, peer: resp})
		}
	}
	out := make(map[netip.Addr]*FanStats)
	byHostPeer := func(e []edge) func(i, j int) bool {
		return func(i, j int) bool {
			if c := e[i].host.Compare(e[j].host); c != 0 {
				return c < 0
			}
			return e[i].peer.Compare(e[j].peer) < 0
		}
	}
	scan := func(e []edge, record func(s *FanStats, peer netip.Addr)) {
		sort.Slice(e, byHostPeer(e))
		for i := 0; i < len(e); i++ {
			if i > 0 && e[i] == e[i-1] {
				continue // duplicate (host, peer) pair
			}
			s := out[e[i].host]
			if s == nil {
				s = &FanStats{}
				out[e[i].host] = s
			}
			record(s, e[i].peer)
		}
	}
	scan(inE, func(s *FanStats, peer netip.Addr) {
		if isLocal(peer) {
			s.FanInLocal++
		} else {
			s.FanInRemote++
		}
	})
	scan(outE, func(s *FanStats, peer netip.Addr) {
		if isLocal(peer) {
			s.FanOutLocal++
		} else {
			s.FanOutRemote++
		}
	})
	return out
}
