package advtest

import (
	"bytes"
	"testing"
	"time"

	"enttrace/internal/core"
	"enttrace/internal/enterprise"
	"enttrace/internal/gen"
)

// TestEvasionGrid is the differential contract for the evasion family:
// every scenario replays at every {1,4,8}×{1,4,8} grid point in both
// batch and windowed mode, and must produce (a) byte-identical JSON and
// text reports everywhere, (b) an exactly conserved reassembly ledger,
// (c) bounded pending memory, (d) the census signal the scenario was
// built to drive, and (e) per-window census counters that sum to the
// cumulative ones.
func TestEvasionGrid(t *testing.T) {
	const window = 500 * time.Microsecond
	for _, sc := range gen.EvasionScenarios() {
		t.Run(sc.Name, func(t *testing.T) {
			tr := sc.Build()
			raw := Serialize(tr)
			ref, err := Replay(raw, tr.Prefix, GridPoint{Workers: 1, ReplayWorkers: 1}, 0)
			if err != nil {
				t.Fatal(err)
			}
			h := ref.Report.Hostile
			if err := CheckConservation(h); err != nil {
				t.Error(err)
			}
			checkExpect(t, sc.Expect, h)
			for _, gp := range Grid() {
				got, err := Replay(raw, tr.Prefix, gp, 0)
				if err != nil {
					t.Fatalf("%v: %v", gp, err)
				}
				if !bytes.Equal(got.JSON, ref.JSON) {
					t.Errorf("%v: JSON report differs from 1×1 reference", gp)
				}
				if got.Text != ref.Text {
					t.Errorf("%v: text report differs from 1×1 reference", gp)
				}
				win, err := Replay(raw, tr.Prefix, gp, window)
				if err != nil {
					t.Fatalf("%v windowed: %v", gp, err)
				}
				if !bytes.Equal(win.JSON, ref.JSON) {
					t.Errorf("%v: windowed cumulative report differs from batch", gp)
				}
				if len(win.Windows) == 0 {
					t.Errorf("%v: windowed run produced no windows", gp)
					continue
				}
				checkWindowSums(t, gp, win, h)
			}
		})
	}
}

// checkExpect asserts the census counters a scenario guarantees.
func checkExpect(t *testing.T, want gen.EvasionExpect, h core.HostileReport) {
	t.Helper()
	check := func(name string, expected bool, v int64) {
		if expected && v == 0 {
			t.Errorf("scenario promises %s > 0, census has 0", name)
		}
	}
	check("ConflictBytes", want.ConflictBytes, h.ConflictBytes)
	check("DuplicateBytes", want.DuplicateBytes, h.DuplicateBytes)
	check("BogusRSTs", want.BogusRSTs, h.BogusRSTs)
	check("WrapEvents", want.WrapEvents, h.WrapEvents)
	check("GapEvents", want.GapEvents, h.GapEvents)
	check("UndecodableFrames", want.Undecodable, h.UndecodableFrames)
}

// checkWindowSums verifies each connection's census contribution landed
// in exactly one window: the additive counters summed across windows
// equal the cumulative report's. (PeakPendingBytes is a maximum, not a
// sum, so each window's peak is only bounded by the budget.)
func checkWindowSums(t *testing.T, gp GridPoint, win *Result, cum core.HostileReport) {
	t.Helper()
	var sum core.HostileReport
	for _, w := range win.Windows {
		wh := w.Report.Hostile
		sum.Streams += wh.Streams
		sum.IngestBytes += wh.IngestBytes
		sum.DeliveredBytes += wh.DeliveredBytes
		sum.DuplicateBytes += wh.DuplicateBytes
		sum.ConflictBytes += wh.ConflictBytes
		sum.DiscardedBytes += wh.DiscardedBytes
		sum.GapSkippedBytes += wh.GapSkippedBytes
		sum.GapEvents += wh.GapEvents
		sum.WrapEvents += wh.WrapEvents
		sum.BogusRSTs += wh.BogusRSTs
		sum.PostRSTDataSegments += wh.PostRSTDataSegments
		sum.UndecodableFrames += wh.UndecodableFrames
		if err := CheckConservation(wh); err != nil {
			t.Errorf("%v window %d: %v", gp, w.Index, err)
		}
	}
	if sum.Streams != cum.Streams || sum.IngestBytes != cum.IngestBytes ||
		sum.DeliveredBytes != cum.DeliveredBytes || sum.DuplicateBytes != cum.DuplicateBytes ||
		sum.ConflictBytes != cum.ConflictBytes || sum.DiscardedBytes != cum.DiscardedBytes ||
		sum.GapSkippedBytes != cum.GapSkippedBytes || sum.GapEvents != cum.GapEvents ||
		sum.WrapEvents != cum.WrapEvents || sum.BogusRSTs != cum.BogusRSTs ||
		sum.PostRSTDataSegments != cum.PostRSTDataSegments ||
		sum.UndecodableFrames != cum.UndecodableFrames {
		t.Errorf("%v: window census sums diverge from cumulative:\n  sum %+v\n  cum %+v", gp, sum, cum)
	}
}

// TestBenignConservation is the property test over ordinary generated
// traffic: the ledger identity and report determinism are not special
// cases for adversarial input — they hold for every workload at every
// grid point.
func TestBenignConservation(t *testing.T) {
	var cfg enterprise.Config
	found := false
	for _, c := range enterprise.AllDatasets() {
		if c.Name == "D3" {
			cfg, found = c, true
		}
	}
	if !found {
		t.Fatal("dataset D3 not defined")
	}
	cfg.Scale = 0.05
	cfg.Monitored = cfg.Monitored[:1]
	ds := gen.GenerateDataset(cfg)
	if len(ds.Traces) == 0 {
		t.Fatal("empty benign dataset")
	}

	type serialized struct {
		name    string
		prefix  gen.Trace
		pcapRaw []byte
	}
	traces := make([]serialized, 0, len(ds.Traces))
	for _, tr := range ds.Traces {
		var buf bytes.Buffer
		if err := gen.WriteTrace(&buf, ds.Config, tr); err != nil {
			t.Fatal(err)
		}
		traces = append(traces, serialized{name: "benign", prefix: tr, pcapRaw: buf.Bytes()})
	}

	run := func(gp GridPoint, window time.Duration) *Result {
		t.Helper()
		a := core.NewAnalyzer(core.Options{
			Dataset:         ds.Config.Name,
			KnownScanners:   enterprise.KnownScanners(),
			PayloadAnalysis: ds.Config.Snaplen >= 1500,
			Workers:         gp.Workers,
			ReplayWorkers:   gp.ReplayWorkers,
			Window:          window,
		})
		for _, tr := range traces {
			if err := a.AddTraceReader(tr.name, tr.prefix.Prefix, bytes.NewReader(tr.pcapRaw)); err != nil {
				t.Fatal(err)
			}
		}
		r := a.Report()
		js, err := core.MarshalReport(r)
		if err != nil {
			t.Fatal(err)
		}
		return &Result{Report: r, JSON: js, Text: core.RenderText(r), Windows: a.WindowReports()}
	}

	ref := run(GridPoint{Workers: 1, ReplayWorkers: 1}, 0)
	if ref.Report.Hostile.IngestBytes == 0 {
		t.Fatal("benign dataset produced no reassembled stream bytes")
	}
	if err := CheckConservation(ref.Report.Hostile); err != nil {
		t.Error(err)
	}
	for _, gp := range Grid() {
		got := run(gp, 0)
		if err := CheckConservation(got.Report.Hostile); err != nil {
			t.Errorf("%v: %v", gp, err)
		}
		if !bytes.Equal(got.JSON, ref.JSON) {
			t.Errorf("%v: benign JSON report differs from 1×1 reference", gp)
		}
	}
	// Windowed==batch on benign traffic at one representative grid point.
	win := run(GridPoint{Workers: 4, ReplayWorkers: 4}, 30*time.Second)
	if !bytes.Equal(win.JSON, ref.JSON) {
		t.Error("windowed cumulative report differs from batch on benign dataset")
	}
	checkWindowSums(t, GridPoint{Workers: 4, ReplayWorkers: 4}, win, ref.Report.Hostile)
}
