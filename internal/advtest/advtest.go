// Package advtest is the adversarial differential harness: it replays
// the evasion scenario family (internal/gen) and benign workloads across
// the worker/replay-worker grid and checks the properties hostile input
// must not break — bit-identical reports at every grid point, exact
// conservation of the reassembly byte ledger, bounded pending memory,
// and windowed==batch equivalence.
//
// The helpers are exported so the adversarial consumers (the test suite
// here, entbench's evasion benchmark) share one replay path. The package
// holds no epoch state of its own — it drives the analyzer's windowed and
// batch modes and asserts their equivalence. DESIGN.md § "Adversarial
// input: overlap-conflict policy and the hostile-input census" is the
// companion prose.
package advtest

import (
	"bytes"
	"fmt"
	"net/netip"
	"time"

	"enttrace/internal/core"
	"enttrace/internal/enterprise"
	"enttrace/internal/gen"
	"enttrace/internal/reassembly"
)

// GridPoint is one (pipeline workers, replay workers) configuration.
type GridPoint struct {
	Workers       int
	ReplayWorkers int
}

func (g GridPoint) String() string { return fmt.Sprintf("w%d.r%d", g.Workers, g.ReplayWorkers) }

// Grid is the {1,4,8}×{1,4,8} configuration matrix the differential
// tests sweep: every combination must yield byte-identical reports.
func Grid() []GridPoint {
	counts := []int{1, 4, 8}
	g := make([]GridPoint, 0, len(counts)*len(counts))
	for _, w := range counts {
		for _, r := range counts {
			g = append(g, GridPoint{Workers: w, ReplayWorkers: r})
		}
	}
	return g
}

// Serialize renders a trace as a full-snaplen pcap — the wire format the
// analyzer consumes — so corrupt headers and payload bytes survive
// intact regardless of any dataset snaplen.
func Serialize(tr gen.Trace) []byte {
	var buf bytes.Buffer
	if err := gen.WriteTrace(&buf, enterprise.Config{Snaplen: 65535}, tr); err != nil {
		// Writing to a bytes.Buffer cannot fail; an encoding error here
		// is a bug in the generator itself.
		panic(err)
	}
	return buf.Bytes()
}

// Result is one replay's outputs in byte-comparable form.
type Result struct {
	Report  *core.Report
	JSON    []byte
	Text    string
	Windows []*core.WindowReport
}

// Replay runs one serialized trace through a fresh analyzer at a grid
// point. window == 0 replays in batch mode; window > 0 enables epoch
// rotation (whose cumulative report must stay byte-identical to batch).
func Replay(pcapBytes []byte, monitored netip.Prefix, gp GridPoint, window time.Duration) (*Result, error) {
	a := core.NewAnalyzer(core.Options{
		Dataset:         "ADV",
		KnownScanners:   enterprise.KnownScanners(),
		PayloadAnalysis: true,
		Workers:         gp.Workers,
		ReplayWorkers:   gp.ReplayWorkers,
		Window:          window,
	})
	if err := a.AddTraceReader("adv", monitored, bytes.NewReader(pcapBytes)); err != nil {
		return nil, err
	}
	r := a.Report()
	js, err := core.MarshalReport(r)
	if err != nil {
		return nil, err
	}
	return &Result{Report: r, JSON: js, Text: core.RenderText(r), Windows: a.WindowReports()}, nil
}

// CheckConservation validates the hostile-input ledger identity on a
// final report: every ingested payload byte was delivered, trimmed as a
// duplicate or a conflict, or discarded — and the out-of-order buffer
// never exceeded its budget. (Pending is zero in a final ledger: streams
// are discarded before their accounting is folded into the census.)
func CheckConservation(h core.HostileReport) error {
	if got := h.DeliveredBytes + h.DuplicateBytes + h.ConflictBytes + h.DiscardedBytes; got != h.IngestBytes {
		return fmt.Errorf("ledger leak: delivered %d + duplicate %d + conflict %d + discarded %d = %d, want ingest %d",
			h.DeliveredBytes, h.DuplicateBytes, h.ConflictBytes, h.DiscardedBytes, got, h.IngestBytes)
	}
	if h.PeakPendingBytes > reassembly.DefaultMaxPending {
		return fmt.Errorf("pending memory unbounded: peak %d > budget %d",
			h.PeakPendingBytes, int64(reassembly.DefaultMaxPending))
	}
	for _, c := range []struct {
		name string
		v    int64
	}{
		{"streams", h.Streams},
		{"ingest", h.IngestBytes},
		{"delivered", h.DeliveredBytes},
		{"duplicate", h.DuplicateBytes},
		{"conflict", h.ConflictBytes},
		{"discarded", h.DiscardedBytes},
		{"gap-skipped", h.GapSkippedBytes},
		{"gap-events", h.GapEvents},
		{"wrap-events", h.WrapEvents},
		{"peak-pending", h.PeakPendingBytes},
		{"bogus-rsts", h.BogusRSTs},
		{"post-rst-data", h.PostRSTDataSegments},
		{"undecodable", h.UndecodableFrames},
	} {
		if c.v < 0 {
			return fmt.Errorf("negative %s counter: %d", c.name, c.v)
		}
	}
	return nil
}
