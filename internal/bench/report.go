// Package bench is the repository's perf-telemetry subsystem: it runs the
// reproduction's benchmarks programmatically (via testing.Benchmark),
// records the results as a structured, machine-readable report
// (BENCH_<n>.json), and compares reports so CI can fail on a performance
// regression. The cmd/entbench command is its CLI.
//
// Telemetry model: wall-clock numbers (ns/op, pkts/sec) vary with the
// host, so regressions in them are only gated when a time tolerance is
// explicitly configured; allocation counts (allocs/op, B/op) are stable
// for a given Go version and are the default CI gate — they are how the
// zero-allocation hot-path contract stays enforced.
//
// The suite (suite.go) spans the decode/pcap/pipeline micro-benchmarks,
// the replay and windowed-rotation gates, per-dataset analyze entries,
// the adversarial evasion price, and the soak/* entries pricing the
// streamed gen→analyze load harness. No epoch obligations: benchmarks
// construct fresh analyzers per iteration. DESIGN.md § "Perf telemetry:
// internal/bench + entbench" is the companion prose.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
)

// SchemaVersion identifies the BENCH_*.json layout. Version 2 added
// the per-metric gomaxprocs field (the report-level num_cpu records the
// host's core count; gomaxprocs records what each entry actually ran
// with, which the -cpus scaling grid varies per entry).
const SchemaVersion = 2

// Metric is one benchmark's measurement.
type Metric struct {
	Name       string `json:"name"`
	Iterations int    `json:"iterations"`
	// GoMaxProcs is the GOMAXPROCS the entry ran under. Gated entries
	// run at the process default (1 in CI); scaling/* entries sweep it.
	GoMaxProcs int `json:"gomaxprocs"`
	// NsPerOp is wall time per operation (one op = the unit the
	// benchmark defines, e.g. one full trace analysis).
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// PktsPerSec is set by packet-throughput benchmarks (0 otherwise).
	PktsPerSec float64 `json:"pkts_per_sec,omitempty"`
}

// Report is one entbench run.
type Report struct {
	Schema    int    `json:"schema"`
	CreatedAt string `json:"created_at,omitempty"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// Metrics are sorted by name for diff-friendly files.
	Metrics []Metric `json:"metrics"`
}

// NewReport returns an empty report stamped with the runtime environment.
func NewReport() *Report {
	return &Report{
		Schema:    SchemaVersion,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
}

// Add appends a metric, keeping Metrics sorted by name.
func (r *Report) Add(m Metric) {
	idx := sort.Search(len(r.Metrics), func(i int) bool { return r.Metrics[i].Name >= m.Name })
	r.Metrics = append(r.Metrics, Metric{})
	copy(r.Metrics[idx+1:], r.Metrics[idx:])
	r.Metrics[idx] = m
}

// Metric returns the named metric, or nil.
func (r *Report) Metric(name string) *Metric {
	for i := range r.Metrics {
		if r.Metrics[i].Name == name {
			return &r.Metrics[i]
		}
	}
	return nil
}

// WriteFile marshals the report to path as indented JSON.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadFile loads a report and validates its schema.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	if r.Schema != SchemaVersion {
		return nil, fmt.Errorf("bench: %s has schema %d, want %d", path, r.Schema, SchemaVersion)
	}
	return &r, nil
}

// NextPath returns the first unused BENCH_<n>.json path in dir, n >= 1.
func NextPath(dir string) (string, error) {
	for n := 1; ; n++ {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path, nil
		} else if err != nil {
			return "", err
		}
	}
}
