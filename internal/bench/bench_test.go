package bench

import (
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"testing"
)

func sampleReport() *Report {
	r := NewReport()
	r.Add(Metric{Name: "pipeline/stream/workers=4", Iterations: 10, NsPerOp: 1e6, AllocsPerOp: 50000, BytesPerOp: 4 << 20, PktsPerSec: 6e5})
	r.Add(Metric{Name: "decode/d3", Iterations: 100, NsPerOp: 2e5, AllocsPerOp: 0, BytesPerOp: 0, PktsPerSec: 5e6})
	return r
}

func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	want := sampleReport()
	want.CreatedAt = "2026-07-26T00:00:00Z"
	if err := want.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Metrics must be name-sorted regardless of Add order.
	if got.Metrics[0].Name != "decode/d3" {
		t.Errorf("metrics not sorted: %q first", got.Metrics[0].Name)
	}
}

func TestReadFileRejectsBadSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_bad.json")
	if err := os.WriteFile(path, []byte(`{"schema": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("schema 99 accepted")
	}
	if err := os.WriteFile(path, []byte(`{not json`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestNextPath(t *testing.T) {
	dir := t.TempDir()
	p1, err := NextPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p1) != "BENCH_1.json" {
		t.Fatalf("first path = %s", p1)
	}
	if err := os.WriteFile(p1, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	p2, err := NextPath(dir)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(p2) != "BENCH_2.json" {
		t.Fatalf("second path = %s", p2)
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	m := cur.Metric("pipeline/stream/workers=4")
	m.AllocsPerOp = int64(float64(m.AllocsPerOp) * 1.05) // +5% < 10%
	c := Compare(base, cur, Tolerances{Alloc: 0.10})
	if c.Regressed() {
		t.Errorf("5%% growth under 10%% tolerance regressed: %+v", c.Deltas)
	}
}

func TestCompareAllocRegressionTrips(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Metric("pipeline/stream/workers=4").AllocsPerOp *= 2
	c := Compare(base, cur, Tolerances{Alloc: 0.10})
	if !c.Regressed() {
		t.Fatal("2x allocs under 10% tolerance passed")
	}
	var hit bool
	for _, d := range c.Deltas {
		if d.Regressed && d.Metric == "pipeline/stream/workers=4" && d.Field == "allocs/op" {
			hit = true
		}
	}
	if !hit {
		t.Errorf("regression not attributed to allocs/op: %+v", c.Deltas)
	}
}

func TestCompareZeroBaselineSlack(t *testing.T) {
	// decode/d3 has 0 allocs/op at baseline; a couple of allocs of noise
	// must not trip the gate, but a real allocation leak must.
	base := sampleReport()
	cur := sampleReport()
	cur.Metric("decode/d3").AllocsPerOp = 2
	if c := Compare(base, cur, Tolerances{Alloc: 0.10}); c.Regressed() {
		t.Error("2 allocs of noise on a zero baseline regressed")
	}
	cur.Metric("decode/d3").AllocsPerOp = 5000
	if c := Compare(base, cur, Tolerances{Alloc: 0.10}); !c.Regressed() {
		t.Error("5000 allocs on a zero baseline passed")
	}
}

func TestCompareTimeGatingOptIn(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Metric("decode/d3").NsPerOp *= 3
	if c := Compare(base, cur, Tolerances{Alloc: 0.10}); c.Regressed() {
		t.Error("time regression gated without a time tolerance")
	}
	if c := Compare(base, cur, Tolerances{Alloc: 0.10, Time: 0.5}); !c.Regressed() {
		t.Error("3x slower passed a 50% time tolerance")
	}
}

func TestCompareThroughputGating(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Metric("pipeline/stream/workers=4").PktsPerSec /= 3
	if c := Compare(base, cur, Tolerances{Alloc: 0.10, Time: 0.5}); !c.Regressed() {
		t.Error("3x slower throughput passed a 50% time tolerance")
	}
}

func TestCompareMissingMetricRegresses(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Metrics = cur.Metrics[:1] // drop one benchmark
	c := Compare(base, cur, Tolerances{Alloc: 0.10})
	if !c.Regressed() {
		t.Error("vanished benchmark passed")
	}
	if len(c.MissingInCurrent) != 1 {
		t.Errorf("missing = %v", c.MissingInCurrent)
	}
}

func TestCompareNewMetricInformational(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Add(Metric{Name: "brand/new", AllocsPerOp: 1e6})
	c := Compare(base, cur, Tolerances{Alloc: 0.10})
	if c.Regressed() {
		t.Error("new benchmark with no baseline regressed")
	}
	if len(c.NewInCurrent) != 1 || c.NewInCurrent[0] != "brand/new" {
		t.Errorf("new = %v", c.NewInCurrent)
	}
}

// TestRunSuiteFiltered smoke-tests the programmatic runner on the
// cheapest entry; full-suite execution lives in entbench and CI.
func TestRunSuiteFiltered(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a real benchmark")
	}
	rep := RunSuite(regexp.MustCompile(`^decode/d3$`), nil, nil)
	if len(rep.Metrics) != 1 {
		t.Fatalf("got %d metrics, want 1", len(rep.Metrics))
	}
	m := rep.Metrics[0]
	if m.Name != "decode/d3" || m.Iterations == 0 || m.NsPerOp <= 0 {
		t.Errorf("suspicious metric: %+v", m)
	}
	if m.AllocsPerOp != 0 {
		t.Errorf("decode allocates %d allocs/op, want 0 (zero-alloc contract)", m.AllocsPerOp)
	}
	if m.PktsPerSec <= 0 {
		t.Errorf("pkts/sec missing: %+v", m)
	}
}

func TestSuiteNamesUniqueAndStable(t *testing.T) {
	seen := map[string]bool{}
	for _, bm := range Suite() {
		if seen[bm.Name] {
			t.Errorf("duplicate suite name %q", bm.Name)
		}
		seen[bm.Name] = true
	}
	// The CI gate keys on these names; renaming them silently would turn
	// the baseline comparison into a no-op.
	for _, want := range []string{"decode/d3", "pcap/read-trace-pooled",
		"pipeline/stream/workers=1", "pipeline/stream/workers=4",
		"pipeline/stream/workers=8", "analyze/D0", "analyze/D4",
		"reassembly/in-order", "reassembly/out-of-order",
		"stats/dist-observe"} {
		if !seen[want] {
			t.Errorf("suite is missing %q", want)
		}
	}
}
