package bench

import (
	"fmt"
	"testing"
	"time"

	"enttrace/internal/core"
)

// ScalingSuite returns the multi-core scaling grid: the full D3
// analysis — batch and minute-windowed — once per requested GOMAXPROCS
// value, with worker counts left at their defaults so the shard and
// replay fan-out follow the scheduler width the way a default
// `entanalyze` invocation would. Entries are named
// scaling/D3[/window=60s]/cpus=N.
//
// The grid is informational, not gated: it is absent from
// BENCH_baseline.json (a run without -cpus never produces these names,
// and a missing baseline entry reads as a regression), and wall-clock
// scaling numbers only mean anything relative to the same host's other
// entries anyway. EXPERIMENTS.md holds the pkts/sec-vs-cores table.
func ScalingSuite(cpus []int) []Benchmark {
	var suite []Benchmark
	for _, n := range cpus {
		n := n
		for _, win := range []time.Duration{0, 60 * time.Second} {
			win := win
			name := fmt.Sprintf("scaling/D3/cpus=%d", n)
			if win > 0 {
				name = fmt.Sprintf("scaling/D3/window=60s/cpus=%d", n)
			}
			suite = append(suite, Benchmark{
				Name:       name,
				GOMAXPROCS: n,
				F:          scalingBenchmark(win),
			})
		}
	}
	return suite
}

// scalingBenchmark is one grid cell's body: the analyze/D3 workload at
// default (GOMAXPROCS-wide) worker counts, optionally windowed.
func scalingBenchmark(win time.Duration) func(b *testing.B) {
	return func(b *testing.B) {
		ds := suiteDataset("D3")
		pkts := datasetPackets(ds)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a := newAnalyzerWindow(ds, 0, 0, win)
			for _, tr := range ds.Traces {
				if err := a.AddTrace(core.TraceInput{
					Name:      tr.Prefix.String(),
					Monitored: tr.Prefix,
					Packets:   tr.Packets,
				}); err != nil {
					b.Fatal(err)
				}
			}
			a.Report()
			if win > 0 {
				if _, ok := a.WindowReport(a.LatestWindowIndex()); !ok {
					b.Fatal("windowed run produced no completed window")
				}
			}
		}
		reportPktsPerSec(b, pkts)
	}
}
