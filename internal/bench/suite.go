package bench

import (
	"bytes"
	"fmt"
	"io"
	"net/netip"
	"regexp"
	"runtime"
	"sync"
	"testing"
	"time"

	"enttrace/internal/advtest"
	"enttrace/internal/core"
	"enttrace/internal/enterprise"
	"enttrace/internal/gen"
	"enttrace/internal/layers"
	"enttrace/internal/pcap"
)

// suiteScale mirrors the bench_test.go harness: datasets small enough
// for tight iteration, every traffic class preserved.
const suiteScale = 0.15

// streamWorkerCounts are the shard counts the pipeline micro-benchmarks
// sweep — the determinism tests pin these same counts bit-identical.
var streamWorkerCounts = []int{1, 4, 8}

// Benchmark is one suite entry. F must call b.ReportAllocs (allocation
// telemetry is the primary CI gate) and may attach a pkts/sec extra via
// b.ReportMetric.
type Benchmark struct {
	Name string
	F    func(b *testing.B)
	// GOMAXPROCS, when non-zero, pins the scheduler width for this
	// entry: the runner sets it before F and restores it after. Gated
	// suite entries leave it zero (run at the process default, so the
	// 1-CPU baseline gate is undisturbed); the scaling grid sweeps it.
	GOMAXPROCS int
}

var (
	dsCache   = map[string]*gen.Dataset{}
	dsCacheMu sync.Mutex
)

// suiteDataset builds (and caches) a scaled dataset the same way the
// go-test benchmark harness does: vantage subnets kept, a few client
// subnets, one tap per subnet.
func suiteDataset(name string) *gen.Dataset {
	return suiteDatasetScaled(name, suiteScale)
}

// suiteDatasetScaled is suiteDataset with an explicit workload scale —
// the windowed-overhead pair measures at the reproduction's full
// density (scale 1.0), where a 60-second window carries a realistic
// packet volume for the cut cost to amortize over.
func suiteDatasetScaled(name string, scale float64) *gen.Dataset {
	dsCacheMu.Lock()
	defer dsCacheMu.Unlock()
	key := fmt.Sprintf("%s@%g", name, scale)
	if ds, ok := dsCache[key]; ok {
		return ds
	}
	var cfg enterprise.Config
	for _, c := range enterprise.AllDatasets() {
		if c.Name == name {
			cfg = c
		}
	}
	if cfg.Name == "" {
		panic("bench: unknown dataset " + name)
	}
	cfg.Scale = scale
	const subnets = 6
	if subnets < len(cfg.Monitored) {
		head := cfg.Monitored[:subnets-2]
		tail := cfg.Monitored[len(cfg.Monitored)-2:]
		cfg.Monitored = append(append([]int{}, head...), tail...)
	}
	cfg.PerTap = 1
	ds := gen.GenerateDataset(cfg)
	dsCache[key] = ds
	return ds
}

// serializedTrace is one trace as raw pcap bytes.
type serializedTrace struct {
	name string
	pre  netip.Prefix
	raw  []byte
}

func serializeDataset(ds *gen.Dataset) []serializedTrace {
	var out []serializedTrace
	for _, tr := range ds.Traces {
		var buf bytes.Buffer
		if err := gen.WriteTrace(&buf, ds.Config, tr); err != nil {
			panic(fmt.Sprintf("bench: serializing trace: %v", err))
		}
		out = append(out, serializedTrace{name: tr.Prefix.String(), pre: tr.Prefix, raw: buf.Bytes()})
	}
	return out
}

func datasetPackets(ds *gen.Dataset) int64 {
	var n int64
	for _, tr := range ds.Traces {
		n += int64(len(tr.Packets))
	}
	return n
}

func newAnalyzer(ds *gen.Dataset, workers int) *core.Analyzer {
	return newAnalyzerReplay(ds, workers, 0)
}

func newAnalyzerReplay(ds *gen.Dataset, workers, replayWorkers int) *core.Analyzer {
	return newAnalyzerWindow(ds, workers, replayWorkers, 0)
}

func newAnalyzerWindow(ds *gen.Dataset, workers, replayWorkers int, window time.Duration) *core.Analyzer {
	return core.NewAnalyzer(core.Options{
		Dataset:         ds.Config.Name,
		KnownScanners:   enterprise.KnownScanners(),
		PayloadAnalysis: ds.Config.Snaplen >= 1500,
		Workers:         workers,
		ReplayWorkers:   replayWorkers,
		Window:          window,
	})
}

// Suite returns every perf-telemetry benchmark:
//
//   - decode: the zero-alloc layer decoder over one trace (B/op must
//     stay 0 — this is the gate that keeps it that way).
//   - pcap/read-trace[-pooled]: trace reading with owning vs recycled
//     packets; the pooled variant is the hot path's read mode.
//   - pipeline/stream/workers=N: the full streaming analysis
//     (pcap bytes -> decode -> route -> shard -> replay -> report) at
//     the determinism-pinned worker counts.
//   - reassembly/*: the zero-copy TCP reassembly layer, in-order and
//     out-of-order regimes (pooled-buffer alloc gates).
//   - replay/D3/workers=N: the two-phase deterministic replay stage at
//     the determinism-pinned replay worker counts (fixed pipeline shape).
//   - replay/D3/window={0,60s}: the epoch-rotation overhead pair — the
//     batch path versus minute-windowed snapshot cutting at the same
//     worker shape (the <5% rotation-cost gate).
//   - stats/dist-observe: the compact Dist representation's
//     bounded-memory gate.
//   - analyze/D0..D4: the in-memory measured unit behind every table and
//     figure benchmark in bench_test.go, one per paper dataset.
//   - soak/D3-shape[/window=60s]: the streamed gen→analyze loop (the
//     entanalyze -gen load harness) over an hour-tiled schedule, batch
//     and minute-windowed.
func Suite() []Benchmark {
	var suite []Benchmark

	suite = append(suite, Benchmark{
		Name: "decode/d3",
		F: func(b *testing.B) {
			pkts := suiteDataset("D3").Traces[0].Packets
			var p layers.Packet
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, pk := range pkts {
					_ = layers.Decode(pk.Data, pk.OrigLen, &p)
				}
			}
			reportPktsPerSec(b, int64(len(pkts)))
		},
	})

	suite = append(suite, Benchmark{
		Name: "pcap/read-trace",
		F: func(b *testing.B) {
			raw := serializeDataset(suiteDataset("D3"))[0]
			b.ReportAllocs()
			b.ResetTimer()
			var n int64
			for i := 0; i < b.N; i++ {
				n = readTrace(b, raw.raw, nil)
			}
			reportPktsPerSec(b, n)
		},
	})

	suite = append(suite, Benchmark{
		Name: "pcap/read-trace-pooled",
		F: func(b *testing.B) {
			raw := serializeDataset(suiteDataset("D3"))[0]
			pool := pcap.NewPool()
			b.ReportAllocs()
			b.ResetTimer()
			var n int64
			for i := 0; i < b.N; i++ {
				n = readTrace(b, raw.raw, pool)
			}
			reportPktsPerSec(b, n)
		},
	})

	for _, workers := range streamWorkerCounts {
		workers := workers
		suite = append(suite, Benchmark{
			Name: fmt.Sprintf("pipeline/stream/workers=%d", workers),
			F: func(b *testing.B) {
				StreamBenchmark(b, suiteDataset("D3"), workers)
			},
		})
	}

	suite = append(suite, reassemblyBenchmarks()...)
	suite = append(suite, statsBenchmarks()...)

	// replay/*: the two-phase deterministic replay stage, swept across
	// replay worker counts at a fixed pipeline shape (D3, 4 pipeline
	// workers). The deltas between entries isolate the replay stage's
	// sharded-fan-out cost/benefit; the workers=1 entry is the serial
	// two-phase baseline. Gated like every other entry.
	for _, rw := range []int{1, 4, 8} {
		rw := rw
		suite = append(suite, Benchmark{
			Name: fmt.Sprintf("replay/D3/workers=%d", rw),
			F: func(b *testing.B) {
				ds := suiteDataset("D3")
				pkts := datasetPackets(ds)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					a := newAnalyzerReplay(ds, 4, rw)
					for _, tr := range ds.Traces {
						if err := a.AddTrace(core.TraceInput{
							Name:      tr.Prefix.String(),
							Monitored: tr.Prefix,
							Packets:   tr.Packets,
						}); err != nil {
							b.Fatal(err)
						}
					}
					a.Report()
				}
				reportPktsPerSec(b, pkts)
			},
		})
	}

	// replay/D3/window=*: the epoch-rotation overhead gate. window=0 is
	// the batch path; window=60s cuts ~60 epochs per one-hour trace
	// (per-shard aggregate snapshots along both replay passes, window
	// report banking at trace joins). The pair proves the snapshot-cut
	// machinery stays within a few percent of batch throughput — the
	// acceptance budget is <5% on this benchmark.
	for _, win := range []time.Duration{0, 60 * time.Second} {
		win := win
		name := "replay/D3/window=0"
		if win > 0 {
			name = "replay/D3/window=60s"
		}
		suite = append(suite, Benchmark{
			Name: name,
			F: func(b *testing.B) {
				ds := suiteDatasetScaled("D3", 1.0)
				pkts := datasetPackets(ds)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					a := newAnalyzerWindow(ds, 4, 4, win)
					for _, tr := range ds.Traces {
						if err := a.AddTrace(core.TraceInput{
							Name:      tr.Prefix.String(),
							Monitored: tr.Prefix,
							Packets:   tr.Packets,
						}); err != nil {
							b.Fatal(err)
						}
					}
					a.Report()
					if win > 0 {
						// Serve-style single-window request: window
						// reports build on demand, so the rotation gate
						// prices a cut-and-serve cycle, not a render of
						// every window.
						if _, ok := a.WindowReport(a.LatestWindowIndex()); !ok {
							b.Fatal("windowed run produced no completed window")
						}
					}
				}
				reportPktsPerSec(b, pkts)
			},
		})
	}

	for _, dsName := range []string{"D0", "D1", "D2", "D3", "D4"} {
		dsName := dsName
		suite = append(suite, Benchmark{
			Name: "analyze/" + dsName,
			F: func(b *testing.B) {
				ds := suiteDataset(dsName)
				pkts := datasetPackets(ds)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					a := newAnalyzer(ds, 4)
					for _, tr := range ds.Traces {
						if err := a.AddTrace(core.TraceInput{
							Name:      tr.Prefix.String(),
							Monitored: tr.Prefix,
							Packets:   tr.Packets,
						}); err != nil {
							b.Fatal(err)
						}
					}
					a.Report()
				}
				reportPktsPerSec(b, pkts)
			},
		})
	}

	// soak/D3-shape: the gen→analyze load harness priced end to end. The
	// default day-in-miniature schedule is tiled to an hour (~12× one
	// suite trace) and streamed straight from gen.StreamSource into the
	// pipeline — no pcap bytes anywhere — so the entry captures synthesis,
	// pooling, decode, shard, and replay as one loop: the cost model for
	// soak runs (`entanalyze -gen`). The window=60s variant adds epoch
	// rotation at the soak shape. Both are new relative to older
	// baselines, so -against treats them as informational until
	// re-baselined.
	for _, win := range []time.Duration{0, 60 * time.Second} {
		win := win
		name := "soak/D3-shape"
		if win > 0 {
			name = "soak/D3-shape/window=60s"
		}
		suite = append(suite, Benchmark{
			Name: name,
			F: func(b *testing.B) {
				cfg := enterprise.D3()
				sched := gen.DefaultSchedule().Repeat(time.Hour)
				subnet := cfg.Monitored[0]
				prefix := enterprise.SubnetPrefix(subnet)
				b.ReportAllocs()
				b.ResetTimer()
				var pkts int64
				for i := 0; i < b.N; i++ {
					src := gen.NewStreamSource(gen.StreamConfig{
						Network:  enterprise.NewNetwork(cfg),
						Subnet:   subnet,
						Schedule: sched,
						Snaplen:  cfg.Snaplen,
					})
					a := core.NewAnalyzer(core.Options{
						Dataset:         cfg.Name,
						KnownScanners:   enterprise.KnownScanners(),
						PayloadAnalysis: cfg.Snaplen >= 1500,
						Workers:         4,
						ReplayWorkers:   4,
						Window:          win,
					})
					if err := a.AddTraceSource("soak", prefix, src); err != nil {
						b.Fatal(err)
					}
					a.Report()
					pkts = src.Stats().Frames
				}
				reportPktsPerSec(b, pkts)
			},
		})
	}

	// adversarial/evasion: the hostile-input price. Replays the full
	// evasion scenario family (internal/gen) through the differential
	// harness's replay path at the default 4×4 shape. The entry is new
	// relative to older baselines, so -against treats it as informational
	// until re-baselined; the guarantee that the hardening did not tax
	// benign traffic is carried by the gated analyze/* and replay/*
	// entries, which share the reassembly and census hot path.
	suite = append(suite, Benchmark{
		Name: "adversarial/evasion",
		F: func(b *testing.B) {
			type rawScenario struct {
				raw []byte
				pre netip.Prefix
			}
			var scenarios []rawScenario
			var pkts int64
			for _, sc := range gen.EvasionScenarios() {
				tr := sc.Build()
				scenarios = append(scenarios, rawScenario{raw: advtest.Serialize(tr), pre: tr.Prefix})
				pkts += int64(len(tr.Packets))
			}
			gp := advtest.GridPoint{Workers: 4, ReplayWorkers: 4}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, sc := range scenarios {
					res, err := advtest.Replay(sc.raw, sc.pre, gp, 0)
					if err != nil {
						b.Fatal(err)
					}
					if res.Report.Hostile.IngestBytes == 0 {
						b.Fatal("evasion replay produced no reassembled bytes")
					}
				}
			}
			reportPktsPerSec(b, pkts)
		},
	})

	return suite
}

// StreamBenchmark measures the full streaming path — pcap bytes through
// AddTraceReader's pooled read, decode, route, shard, replay, report —
// at a fixed worker count, reporting allocations and pkts/sec. It is the
// single definition of that workload: the entbench suite and the go-test
// harness (BenchmarkPipelineStream* in determinism_test.go) both run it,
// so the CI telemetry and the -benchmem numbers can never drift apart.
// Traces are serialized once, outside the timed region.
func StreamBenchmark(b *testing.B, ds *gen.Dataset, workers int) {
	traces := serializeDataset(ds)
	pkts := datasetPackets(ds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := newAnalyzer(ds, workers)
		for _, tr := range traces {
			if err := a.AddTraceReader(tr.name, tr.pre, bytes.NewReader(tr.raw)); err != nil {
				b.Fatal(err)
			}
		}
		a.Report()
	}
	b.StopTimer()
	reportPktsPerSec(b, pkts)
}

// readTrace drains one serialized trace, optionally through a pool, and
// returns the packet count.
func readTrace(b *testing.B, raw []byte, pool *pcap.Pool) int64 {
	rd, err := pcap.NewReader(bytes.NewReader(raw))
	if err != nil {
		b.Fatal(err)
	}
	var n int64
	if pool == nil {
		for {
			if _, err := rd.Next(); err != nil {
				finishTrace(b, err)
				return n
			}
			n++
		}
	}
	src := pcap.NewPooledReader(rd, pool)
	for {
		p, err := src.Next()
		if err != nil {
			finishTrace(b, err)
			return n
		}
		src.Release(p)
		n++
	}
}

// finishTrace distinguishes a clean end of trace from a read failure —
// a truncated trace must fail the benchmark, not shrink its workload.
func finishTrace(b *testing.B, err error) {
	if err != io.EOF {
		b.Fatalf("trace read failed mid-benchmark: %v", err)
	}
}

// reportPktsPerSec attaches packet throughput to the benchmark result.
// pkts is the packet count of ONE operation.
func reportPktsPerSec(b *testing.B, pkts int64) {
	if elapsed := b.Elapsed().Seconds(); elapsed > 0 {
		b.ReportMetric(float64(pkts)*float64(b.N)/elapsed, "pkts/sec")
	}
}

// RunSuite executes the suite entries matching filter (nil = all),
// minus those matching skip (nil = none), and returns their metrics as a
// report. progress, when non-nil, receives a line per finished
// benchmark.
func RunSuite(filter, skip *regexp.Regexp, progress func(string)) *Report {
	return RunBenchmarks(Suite(), filter, skip, progress)
}

// RunBenchmarks is RunSuite over an explicit entry list — how entbench
// composes the gated suite with the optional -cpus scaling grid. Each
// entry runs under its pinned GOMAXPROCS (restored afterwards, so one
// entry's width never leaks into the next), and the width it actually
// ran with is recorded on its metric.
func RunBenchmarks(entries []Benchmark, filter, skip *regexp.Regexp, progress func(string)) *Report {
	rep := NewReport()
	for _, bm := range entries {
		if filter != nil && !filter.MatchString(bm.Name) {
			continue
		}
		if skip != nil && skip.MatchString(bm.Name) {
			continue
		}
		procs := runtime.GOMAXPROCS(0)
		restore := 0
		if bm.GOMAXPROCS > 0 && bm.GOMAXPROCS != procs {
			restore = runtime.GOMAXPROCS(bm.GOMAXPROCS)
			procs = bm.GOMAXPROCS
		}
		res := testing.Benchmark(bm.F)
		if restore > 0 {
			runtime.GOMAXPROCS(restore)
		}
		m := Metric{
			Name:        bm.Name,
			Iterations:  res.N,
			GoMaxProcs:  procs,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
			PktsPerSec:  res.Extra["pkts/sec"],
		}
		rep.Add(m)
		if progress != nil {
			progress(fmt.Sprintf("%-30s %12.0f ns/op %10d B/op %8d allocs/op %12.0f pkts/sec  gomaxprocs=%d",
				m.Name, m.NsPerOp, m.BytesPerOp, m.AllocsPerOp, m.PktsPerSec, m.GoMaxProcs))
		}
	}
	return rep
}
