package bench

import "fmt"

// Absolute slack added on top of the relative tolerance, so noise on
// near-zero baselines (a benchmark measuring 0–2 allocs/op) cannot trip
// the gate: a regression must exceed BOTH the relative band and this
// floor. Set deliberately small — the hot-path benchmarks this package
// guards sit at thousands of allocs/op, where the relative band governs.
const (
	allocSlack = 8    // allocs/op
	bytesSlack = 1024 // B/op
)

// Tolerances configures Compare. Values are fractions (0.10 = 10%).
type Tolerances struct {
	// Alloc bounds growth of allocs_per_op and bytes_per_op. Allocation
	// counts are deterministic enough to gate in CI.
	Alloc float64
	// Time bounds growth of ns_per_op (and decay of pkts_per_sec); <= 0
	// disables time gating, the default for CI where machines differ.
	Time float64
}

// Delta is one field's baseline-to-current movement.
type Delta struct {
	Metric   string  `json:"metric"`
	Field    string  `json:"field"`
	Baseline float64 `json:"baseline"`
	Current  float64 `json:"current"`
	// Change is the relative movement, signed so that positive always
	// means "worse" (more time, more allocation, less throughput).
	Change    float64 `json:"change"`
	Regressed bool    `json:"regressed"`
}

func (d Delta) String() string {
	verdict := "ok"
	if d.Regressed {
		verdict = "REGRESSED"
	}
	return fmt.Sprintf("%-34s %-13s %14.1f -> %14.1f  %+6.1f%%  %s",
		d.Metric, d.Field, d.Baseline, d.Current, d.Change*100, verdict)
}

// Comparison is the full result of comparing two reports.
type Comparison struct {
	Deltas []Delta
	// MissingInCurrent lists baseline metrics the current run did not
	// produce — treated as regressions (a benchmark silently vanished).
	MissingInCurrent []string
	// NewInCurrent lists metrics with no baseline — informational only.
	NewInCurrent []string
}

// Regressed reports whether any gate tripped.
func (c *Comparison) Regressed() bool {
	if len(c.MissingInCurrent) > 0 {
		return true
	}
	for _, d := range c.Deltas {
		if d.Regressed {
			return true
		}
	}
	return false
}

// Compare evaluates current against baseline under tol. Metrics are
// matched by name; see Tolerances for what gates.
func Compare(baseline, current *Report, tol Tolerances) *Comparison {
	c := &Comparison{}
	seen := make(map[string]bool)
	for _, bm := range baseline.Metrics {
		cm := current.Metric(bm.Name)
		if cm == nil {
			c.MissingInCurrent = append(c.MissingInCurrent, bm.Name)
			continue
		}
		seen[bm.Name] = true
		c.Deltas = append(c.Deltas,
			deltaMore(bm.Name, "allocs/op", float64(bm.AllocsPerOp), float64(cm.AllocsPerOp), tol.Alloc, allocSlack),
			deltaMore(bm.Name, "B/op", float64(bm.BytesPerOp), float64(cm.BytesPerOp), tol.Alloc, bytesSlack),
			deltaMore(bm.Name, "ns/op", bm.NsPerOp, cm.NsPerOp, tol.Time, 0),
		)
		if bm.PktsPerSec > 0 && cm.PktsPerSec > 0 {
			c.Deltas = append(c.Deltas, deltaLess(bm.Name, "pkts/sec", bm.PktsPerSec, cm.PktsPerSec, tol.Time))
		}
	}
	for _, cm := range current.Metrics {
		if !seen[cm.Name] {
			c.NewInCurrent = append(c.NewInCurrent, cm.Name)
		}
	}
	return c
}

// deltaMore gates a lower-is-better field: regression when current
// exceeds both the relative band and the absolute slack. tol <= 0
// disables gating for the field.
func deltaMore(metric, field string, base, cur, tol, slack float64) Delta {
	d := Delta{Metric: metric, Field: field, Baseline: base, Current: cur}
	if base > 0 {
		d.Change = cur/base - 1
	} else if cur > 0 {
		d.Change = 1
	}
	d.Regressed = tol > 0 && cur > base*(1+tol)+slack
	return d
}

// deltaLess gates a higher-is-better field (throughput).
func deltaLess(metric, field string, base, cur, tol float64) Delta {
	d := Delta{Metric: metric, Field: field, Baseline: base, Current: cur}
	if base > 0 {
		d.Change = 1 - cur/base // positive = slower = worse
	}
	d.Regressed = tol > 0 && cur < base*(1-tol)
	return d
}
