package bench

import (
	"testing"

	"enttrace/internal/reassembly"
	"enttrace/internal/stats"
)

// Hot-path micro-benchmarks for the reassembly and stats layers. Like
// decode/d3, these exist primarily as CI alloc gates: the zero-copy
// reassembly path and the compact Dist representation each make a
// steady-state allocation promise, and these entries are what holds the
// promise against the committed baseline.

// reassemblyBenchmarks covers the two Stream regimes: pure in-order
// delivery (borrowed slices, nothing buffered) and heavy out-of-order
// with overlap (pooled segment copies, recycled every drain).
func reassemblyBenchmarks() []Benchmark {
	return []Benchmark{
		{
			Name: "reassembly/in-order",
			F: func(b *testing.B) {
				data := make([]byte, 1460)
				for i := range data {
					data[i] = byte(i)
				}
				var c reassembly.BufferConsumer
				c.Limit = 1 // measure reassembly, not buffer retention
				s := reassembly.NewStream(&c)
				seq := uint32(0)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					s.Segment(seq, data)
					seq += uint32(len(data))
				}
			},
		},
		{
			Name: "reassembly/out-of-order",
			F: func(b *testing.B) {
				data := make([]byte, 1460)
				var c reassembly.BufferConsumer
				c.Limit = 1
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// One op = an 8-segment burst delivered in reverse,
					// with a duplicate mixed in: every segment but the
					// last is buffered via the pool and drained at once.
					var s reassembly.Stream
					s.Init(&c)
					base := uint32(i) * 64 << 10
					s.SetISN(base)
					for seg := 7; seg >= 1; seg-- {
						s.Segment(base+uint32(seg*len(data)), data)
					}
					s.Segment(base+uint32(len(data)), data) // retransmit
					s.Segment(base, data)                   // plugs the hole
				}
			},
		},
	}
}

// statsBenchmarks gates Dist's compact-representation promise: observing
// integer-valued samples must not retain per-sample memory.
func statsBenchmarks() []Benchmark {
	return []Benchmark{
		{
			Name: "stats/dist-observe",
			F: func(b *testing.B) {
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					// One op = a D3-sized distribution: 64k integer-valued
					// observations over 1k distinct values, plus the
					// quantile/CDF extraction the report performs.
					d := stats.NewDist()
					for j := 0; j < 64<<10; j++ {
						d.Observe(float64(j & 1023))
					}
					if d.N() != 64<<10 {
						b.Fatal("lost samples")
					}
					d.Median()
					d.CDF(128)
				}
			},
		},
	}
}
