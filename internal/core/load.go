package core

import (
	"net/netip"
	"time"

	"enttrace/internal/flows"
	"enttrace/internal/layers"
	"enttrace/internal/stats"
)

// traceLoad bins one trace's wire bytes per second.
type traceLoad struct {
	name    string
	start   time.Time
	started bool
	bins    []int64
}

func newTraceLoad(name string) *traceLoad {
	return &traceLoad{name: name}
}

func (t *traceLoad) packet(ts time.Time, wireLen int) {
	if !t.started {
		t.start = ts
		t.started = true
	}
	sec := int(ts.Sub(t.start) / time.Second)
	if sec < 0 {
		sec = 0
	}
	for len(t.bins) <= sec {
		t.bins = append(t.bins, 0)
	}
	t.bins[sec] += int64(wireLen)
}

// mergedTraceLoad rebuilds a trace's per-second byte series from the
// pipeline shards' bins. Every shard bins against the same base (the
// trace's first packet), so the merge is an element-wise integer sum —
// exact, and independent of shard count and order.
func mergedTraceLoad(name string, shardBins [][]int64) *traceLoad {
	t := newTraceLoad(name)
	for _, bins := range shardBins {
		for len(t.bins) < len(bins) {
			t.bins = append(t.bins, 0)
		}
		for i, v := range bins {
			t.bins[i] += v
		}
	}
	t.started = len(t.bins) > 0
	return t
}

// TraceLoad is one trace's Figure 9 / Figure 10 numbers.
type TraceLoad struct {
	Name string
	// Peak utilization (Mbps) over 1, 10 and 60-second windows.
	Peak1s, Peak10s, Peak60s float64
	// Per-second utilization summary (Mbps).
	Min, P25, Median, P75, Max, Avg float64
	// Retransmission rates (retransmitted data packets over data
	// packets), split by locality; keep-alives excluded per §6.
	RetransEnt, RetransWan float64
	// Data-packet counts backing the rates (the paper only plots traces
	// with ≥ 1000 packets in a category).
	EntDataPkts, WanDataPkts int64
	// Seconds at or above 90% of capacity (saturation dwell).
	SaturatedSeconds int
	// Hurst is the variance-time Hurst estimate over the per-second
	// byte series (self-similarity extension; HurstOK false when the
	// trace is too short to estimate).
	Hurst   float64
	HurstOK bool

	// ord is the trace's global ordinal (TraceBase-offset). Fleet folds
	// append rows window-major rather than trace-major; report building
	// re-sorts by ordinal so both orders render identically. Unexported:
	// absent from JSON, carried by the fleet snapshot codec.
	ord int
}

// loadAgg accumulates per-trace load stats for a dataset.
type loadAgg struct {
	traces []TraceLoad
}

func newLoadAgg() *loadAgg { return &loadAgg{} }

func windowPeak(bins []int64, w int) float64 {
	var best int64
	var sum int64
	for i, v := range bins {
		sum += v
		if i >= w {
			sum -= bins[i-w]
		}
		if sum > best {
			best = sum
		}
	}
	return float64(best) / float64(w)
}

func (l *loadAgg) finishTrace(t *traceLoad, kept []*flows.Conn, isLocal func(netip.Addr) bool, capacityMbps float64, ord int) {
	tl := TraceLoad{Name: t.name, ord: ord}
	if len(t.bins) > 0 {
		toMbps := func(bytesPerSec float64) float64 { return bytesPerSec * 8 / 1e6 }
		tl.Peak1s = toMbps(windowPeak(t.bins, 1))
		tl.Peak10s = toMbps(windowPeak(t.bins, 10))
		tl.Peak60s = toMbps(windowPeak(t.bins, 60))
		d := stats.NewDist()
		d.Reserve(len(t.bins))
		var total int64
		for _, v := range t.bins {
			d.Observe(toMbps(float64(v)))
			total += v
			if toMbps(float64(v)) >= 0.9*capacityMbps {
				tl.SaturatedSeconds++
			}
		}
		series := make([]float64, len(t.bins))
		for i, v := range t.bins {
			series[i] = float64(v)
		}
		tl.Hurst, tl.HurstOK = stats.HurstVT(series)
		tl.Min, tl.Max = d.Min(), d.Max()
		tl.P25, tl.Median, tl.P75 = d.Quantile(0.25), d.Median(), d.Quantile(0.75)
		tl.Avg = d.Mean()
	}
	var entData, entRetrans, wanData, wanRetrans int64
	for _, c := range kept {
		if c.Proto != layers.ProtoTCP {
			continue
		}
		wan := connWAN(c, isLocal)
		if wan {
			wanData += c.DataPkts - c.KeepAliveRetrans
			wanRetrans += c.Retrans
		} else {
			entData += c.DataPkts - c.KeepAliveRetrans
			entRetrans += c.Retrans
		}
	}
	tl.EntDataPkts, tl.WanDataPkts = entData, wanData
	if entData > 0 {
		tl.RetransEnt = float64(entRetrans) / float64(entData)
	}
	if wanData > 0 {
		tl.RetransWan = float64(wanRetrans) / float64(wanData)
	}
	l.traces = append(l.traces, tl)
}
