package core

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"enttrace/internal/enterprise"
	"enttrace/internal/gen"
)

func fleetGet(t *testing.T, srv *FleetServer, path string) (int, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.Bytes()
}

func fleetHealthz(t *testing.T, srv *FleetServer) fleetHealth {
	t.Helper()
	code, body := fleetGet(t, srv, "/healthz")
	if code != 200 {
		t.Fatalf("healthz: %d (%s)", code, body)
	}
	var h fleetHealth
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	return h
}

// fleetSiteAnalyzer builds a windowed analyzer sharing the fleet's
// window clock, with conns starting at the given offsets from the
// origin.
func fleetSiteAnalyzer(t *testing.T, seed int64, offsets ...time.Duration) *Analyzer {
	t.Helper()
	a := NewAnalyzer(Options{
		Dataset:         "win",
		PayloadAnalysis: true,
		Window:          time.Minute,
		WindowOrigin:    windowTestBase,
	})
	em := gen.NewEmitter(seed)
	for i, off := range offsets {
		emitConn(em, int(seed)*10+i, windowTestBase.Add(off), 0)
	}
	if err := a.AddTrace(TraceInput{Name: "t" + string(rune('0'+seed)), Monitored: enterprise.SubnetPrefix(5), Packets: em.Packets()}); err != nil {
		t.Fatal(err)
	}
	return a
}

// TestFleetServeLifecycle walks the aggregator endpoints through a
// two-site run: degraded while an expected site is missing, window
// endpoints live as deltas land, /report/final gated on every site
// finning, and the final identical to the any-time /report/fleet view.
func TestFleetServeLifecycle(t *testing.T) {
	f := NewFleet(FleetConfig{Dataset: "win", ExpectSites: []string{"east", "west"}})
	srv := NewFleetServer(f)
	srv.SetStaleThreshold(0) // liveness ages are exercised separately

	// Before any site connects: both expected sites missing, nothing
	// windowed, no final.
	h := fleetHealthz(t, srv)
	if h.Status != "degraded" || len(h.MissingSites) != 2 || h.FinalReady {
		t.Errorf("initial health = %+v, want degraded with 2 missing sites", h)
	}
	if code, _ := fleetGet(t, srv, "/report/latest"); code != 404 {
		t.Errorf("latest before hello: %d, want 404", code)
	}
	if code, _ := fleetGet(t, srv, "/report/final"); code != 404 {
		t.Errorf("final before any site: %d, want 404", code)
	}

	// East connects and ships windows 0 and 1; no fin yet.
	east := fleetSiteAnalyzer(t, 1, 0, 70*time.Second)
	eastExports, err := east.ExportAll()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Hello("east", east.FleetHello()); err != nil {
		t.Fatal(err)
	}
	for i, we := range eastExports {
		if err := f.Delta("east", we.Window, uint64(i+1), we.Watermark, we.Payload); err != nil {
			t.Fatal(err)
		}
	}

	h = fleetHealthz(t, srv)
	if h.Status != "degraded" || len(h.MissingSites) != 1 || h.MissingSites[0] != "west" {
		t.Errorf("partial health = %+v, want degraded missing [west]", h)
	}
	if h.Sites != 1 || h.ConnectedSites != 1 || h.FinSites != 0 || !h.Windowing || h.Windows != 2 {
		t.Errorf("partial health counts = %+v, want 1 connected site, 2 windows", h)
	}

	code, body := fleetGet(t, srv, "/report/latest")
	if code != 200 {
		t.Fatalf("latest mid-run: %d (%s)", code, body)
	}
	var latest Report
	if err := json.Unmarshal(body, &latest); err != nil {
		t.Fatal(err)
	}
	if latest.Window == nil || latest.Window.Index != 1 {
		t.Errorf("latest window meta = %+v, want index 1", latest.Window)
	}
	if code, _ := fleetGet(t, srv, "/report/window/0"); code != 200 {
		t.Errorf("window/0: %d, want 200", code)
	}
	if code, _ := fleetGet(t, srv, "/report/window/7"); code != 404 {
		t.Errorf("window/7: %d, want 404", code)
	}
	if code, _ := fleetGet(t, srv, "/report/window/x"); code != 400 {
		t.Errorf("window/x: %d, want 400", code)
	}

	// The any-time fleet view serves, carrying the degradation census
	// for the still-missing site.
	code, body = fleetGet(t, srv, "/report/fleet")
	if code != 200 {
		t.Fatalf("fleet mid-run: %d", code)
	}
	var partial Report
	if err := json.Unmarshal(body, &partial); err != nil {
		t.Fatal(err)
	}
	if partial.Fleet == nil || len(partial.Fleet.Sites) == 0 {
		t.Fatalf("partial fleet report census = %+v, want entries", partial.Fleet)
	}
	foundWest := false
	for _, site := range partial.Fleet.Sites {
		if site.Site == "west" && !site.Fin && len(site.MissingWindows) > 0 {
			foundWest = true
		}
	}
	if !foundWest {
		t.Errorf("census %+v does not name west as missing", partial.Fleet.Sites)
	}
	if code, _ := fleetGet(t, srv, "/report/final"); code != 404 {
		t.Errorf("final before fins: %d, want 404", code)
	}

	// East fins; west delivers fully. The fleet becomes final.
	if err := f.Fin("east", 1, uint64(len(eastExports)+1), 0); err != nil {
		t.Fatal(err)
	}
	deliverAll(t, f, "west", fleetSiteAnalyzer(t, 2, 30*time.Second))

	h = fleetHealthz(t, srv)
	if h.Status != "ok" || !h.FinalReady || h.FinSites != 2 || len(h.MissingSites) != 0 {
		t.Errorf("final health = %+v, want ok/final-ready with 2 finned sites", h)
	}
	code, final := fleetGet(t, srv, "/report/final")
	if code != 200 {
		t.Fatalf("final: %d", code)
	}
	_, fleetView := fleetGet(t, srv, "/report/fleet")
	if !bytes.Equal(final, fleetView) {
		t.Error("/report/final differs from /report/fleet on a complete fleet")
	}
	var fr Report
	if err := json.Unmarshal(final, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Fleet != nil {
		t.Errorf("complete fleet final carries a census: %+v", fr.Fleet)
	}
	if fr.Table3.TotalConns != 3 {
		t.Errorf("final conns = %d, want 3", fr.Table3.TotalConns)
	}
}

// TestFleetServeStaleAndDraining pins the liveness view under a pinned
// clock: a silent site degrades /healthz past the stale threshold and is
// named, watermark skew and delivery ages report while live, and both
// draining and final-ready suppress all lag reporting.
func TestFleetServeStaleAndDraining(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	f := NewFleet(FleetConfig{Dataset: "win", Now: func() time.Time { return t0 }})
	srv := NewFleetServer(f)
	now := t0
	srv.now = func() time.Time { return now }
	srv.SetStaleThreshold(10 * time.Second)

	east := fleetSiteAnalyzer(t, 1, 0, 70*time.Second)
	exports, err := east.ExportAll()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Hello("east", east.FleetHello()); err != nil {
		t.Fatal(err)
	}
	for i, we := range exports {
		if err := f.Delta("east", we.Window, uint64(i+1), we.Watermark, we.Payload); err != nil {
			t.Fatal(err)
		}
	}

	// Fresh delivery: ok, age reported, not stale.
	h := fleetHealthz(t, srv)
	if h.Status != "ok" || len(h.StaleSites) != 0 {
		t.Errorf("fresh health = %+v, want ok", h)
	}
	if len(h.SiteDetail) != 1 || h.SiteDetail[0].LastDeliveryAgeSeconds != 0 {
		t.Errorf("fresh site detail = %+v, want zero age", h.SiteDetail)
	}

	// Silence past the threshold: degraded, the site is named, its age
	// reported.
	now = t0.Add(30 * time.Second)
	h = fleetHealthz(t, srv)
	if h.Status != "degraded" || len(h.StaleSites) != 1 || h.StaleSites[0] != "east" {
		t.Errorf("stale health = %+v, want degraded naming east", h)
	}
	if h.SiteDetail[0].LastDeliveryAgeSeconds != 30 {
		t.Errorf("stale age = %v, want 30", h.SiteDetail[0].LastDeliveryAgeSeconds)
	}

	// Draining suppresses staleness and lag: sites are expected to stop.
	srv.SetDraining(true)
	h = fleetHealthz(t, srv)
	if h.Status != "ok" || !h.Draining || len(h.StaleSites) != 0 || h.SiteDetail[0].LastDeliveryAgeSeconds != 0 {
		t.Errorf("draining health = %+v, want ok with lag suppressed", h)
	}
	srv.SetDraining(false)

	// A finned fleet likewise reads quiet, however old the deliveries.
	if err := f.Fin("east", 1, uint64(len(exports)+1), 0); err != nil {
		t.Fatal(err)
	}
	now = t0.Add(time.Hour)
	h = fleetHealthz(t, srv)
	if h.Status != "ok" || !h.FinalReady || len(h.StaleSites) != 0 {
		t.Errorf("final health = %+v, want ok/final-ready", h)
	}
}

// TestFleetServeBatch: a batch (unwindowed) fleet serves health and the
// cumulative views; window endpoints explain themselves with 404.
func TestFleetServeBatch(t *testing.T) {
	f := NewFleet(FleetConfig{Dataset: "plain"})
	srv := NewFleetServer(f)

	a := NewAnalyzer(Options{Dataset: "plain", PayloadAnalysis: true})
	em := gen.NewEmitter(3)
	emitConn(em, 0, windowTestBase, 0)
	if err := a.AddTrace(TraceInput{Name: "t0", Monitored: enterprise.SubnetPrefix(5), Packets: em.Packets()}); err != nil {
		t.Fatal(err)
	}
	deliverAll(t, f, "only", a)

	h := fleetHealthz(t, srv)
	if h.Status != "ok" || h.Windowing || !h.FinalReady {
		t.Errorf("batch health = %+v, want ok unwindowed final-ready", h)
	}
	if code, _ := fleetGet(t, srv, "/report/latest"); code != 404 {
		t.Errorf("latest on batch fleet: %d, want 404", code)
	}
	if code, _ := fleetGet(t, srv, "/report/window/0"); code != 404 {
		t.Errorf("window/0 on batch fleet: %d, want 404", code)
	}
	code, body := fleetGet(t, srv, "/report/final")
	if code != 200 {
		t.Fatalf("batch final: %d", code)
	}
	if !bytes.Equal(body, append(reportBytes(t, a.Report()), '\n')) {
		t.Error("batch fleet final differs from the site's own report")
	}
}
