package core

import (
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"enttrace/internal/enterprise"
	"enttrace/internal/flows"
	"enttrace/internal/layers"
)

func TestWindowPeak(t *testing.T) {
	bins := []int64{0, 100, 900, 100, 0, 0}
	if got := windowPeak(bins, 1); got != 900 {
		t.Errorf("peak 1 = %v", got)
	}
	if got := windowPeak(bins, 2); got != 500 {
		t.Errorf("peak 2 = %v, want (900+100)/2", got)
	}
	if got := windowPeak(bins, 6); got*6 != 1100 {
		t.Errorf("peak 6 = %v", got)
	}
}

func TestWindowPeakShortTrace(t *testing.T) {
	// Window larger than the trace still averages over the window size,
	// matching how a 60-second window dilutes a 10-second burst.
	bins := []int64{600}
	if got := windowPeak(bins, 60); got != 10 {
		t.Errorf("peak = %v, want 600/60", got)
	}
}

// Property: peaks are monotonically non-increasing along chains of
// window sizes where each divides the next. (For non-divisible pairs the
// claim is false in discrete time — a 2-bin peak average can undercut a
// 5-bin one when values alternate — so the figure uses 1/10/60 s windows,
// a divisible chain.)
func TestWindowPeakMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		bins := make([]int64, len(raw))
		for i, v := range raw {
			bins[i] = int64(v)
		}
		prev := windowPeak(bins, 1)
		for _, w := range []int{2, 10, 30, 60} {
			cur := windowPeak(bins, w)
			if cur > prev+1e-9 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTraceLoadBinning(t *testing.T) {
	tl := newTraceLoad("x")
	t0 := time.Unix(500, 0)
	tl.packet(t0, 1000)
	tl.packet(t0.Add(200*time.Millisecond), 500)
	tl.packet(t0.Add(3*time.Second), 100)
	if len(tl.bins) != 4 {
		t.Fatalf("bins = %d", len(tl.bins))
	}
	if tl.bins[0] != 1500 || tl.bins[3] != 100 || tl.bins[1] != 0 {
		t.Errorf("bins = %v", tl.bins)
	}
}

func TestFinishTraceRetransSplit(t *testing.T) {
	agg := newLoadAgg()
	tl := newTraceLoad("t")
	tl.packet(time.Unix(0, 0), 1000)
	local1 := netip.MustParseAddr("128.3.1.1")
	local2 := netip.MustParseAddr("128.3.1.2")
	remote := netip.MustParseAddr("8.8.8.8")
	ent := &flows.Conn{
		Key:   layers.FlowKey{Proto: layers.ProtoTCP, Src: local1, Dst: local2},
		Proto: layers.ProtoTCP, DataPkts: 1000, Retrans: 5, KeepAliveRetrans: 100,
	}
	wan := &flows.Conn{
		Key:   layers.FlowKey{Proto: layers.ProtoTCP, Src: local1, Dst: remote},
		Proto: layers.ProtoTCP, DataPkts: 2000, Retrans: 40,
	}
	udp := &flows.Conn{
		Key:   layers.FlowKey{Proto: layers.ProtoUDP, Src: local1, Dst: local2},
		Proto: layers.ProtoUDP, DataPkts: 500,
	}
	agg.finishTrace(tl, []*flows.Conn{ent, wan, udp}, enterprise.IsLocal, 100, 1)
	got := agg.traces[0]
	// Keep-alives excluded from the denominator.
	wantEnt := 5.0 / 900.0
	if diff := got.RetransEnt - wantEnt; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("ent rate = %v, want %v", got.RetransEnt, wantEnt)
	}
	if got.RetransWan != 0.02 {
		t.Errorf("wan rate = %v", got.RetransWan)
	}
	if got.EntDataPkts != 900 || got.WanDataPkts != 2000 {
		t.Errorf("denominators: %d/%d", got.EntDataPkts, got.WanDataPkts)
	}
}

func TestSaturationDwell(t *testing.T) {
	agg := newLoadAgg()
	tl := newTraceLoad("sat")
	t0 := time.Unix(0, 0)
	// One second at 100 Mbps (12.5 MB), then quiet.
	tl.packet(t0, 12_500_000)
	tl.packet(t0.Add(5*time.Second), 100)
	agg.finishTrace(tl, nil, enterprise.IsLocal, 100, 1)
	got := agg.traces[0]
	if got.SaturatedSeconds != 1 {
		t.Errorf("saturated seconds = %d", got.SaturatedSeconds)
	}
	if got.Peak1s < 99 || got.Peak1s > 101 {
		t.Errorf("peak 1s = %v Mbps", got.Peak1s)
	}
	if got.Peak60s >= got.Peak10s || got.Peak10s >= got.Peak1s {
		t.Errorf("peaks should decay: %v/%v/%v", got.Peak1s, got.Peak10s, got.Peak60s)
	}
}

// enterpriseD3ForFig gives apps_test a config without import cycles.
func enterpriseD3ForFig() enterprise.Config { return enterprise.D3() }
