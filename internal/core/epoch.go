package core

import (
	"net/netip"
	"sync"
	"time"

	"enttrace/internal/flows"
	"enttrace/internal/roles"
	"enttrace/internal/stats"
)

// epochAgg holds every report-feeding accumulator for one span of event
// time: the whole run (the cumulative aggregate every Analyzer owns) or
// one time window. The batch path accumulates into the cumulative
// aggregate directly; the windowed path accumulates into per-window
// deltas that merge into both the window's aggregate and the cumulative
// one, in banking order, so the final cumulative report is byte-identical
// to a run that never windowed.
type epochAgg struct {
	// Table 1 accumulators.
	totalPackets                            int64
	traceCount                              int
	monitoredHosts, localHosts, remoteHosts map[netip.Addr]struct{}

	// Table 2: network-layer packet counts.
	netLayer *stats.Counter

	// Post-filter connection-level accumulators.
	transBytes, transConns *stats.Counter // Table 3
	removedConns           int
	totalConns             int
	scanners               map[netip.Addr]struct{}

	catBytes, catConns map[string]*locSplit // Figure 1
	origins            *stats.Counter       // §4 origin mix

	fanAgg map[netip.Addr]*flows.FanStats // Figure 2

	load *loadAgg

	roleCounts map[roles.Role]int

	// hostile is the hostile-input census (reassembly ledger + RST
	// signals), folded from replay workers like the connection sums.
	hostile hostileCounters

	// srcErrs is the degraded-run source-error census, one entry per
	// trace that saw errors, in banking order.
	srcErrs []TraceSourceErrors
	// capEvicted counts MaxConns-backstop evictions; agedOut counts
	// connections idle past the IdleEvict horizon at end of trace (the
	// AgedOut disposition, folded from replay workers like the
	// connection sums).
	capEvicted int64
	agedOut    int64

	// apps folds banked application deltas. The batch path leaves it
	// empty (live replay shards merge at report time instead); the
	// windowed path banks every application snapshot here.
	apps *appAggregates
}

func newEpochAgg() *epochAgg {
	return &epochAgg{
		monitoredHosts: make(map[netip.Addr]struct{}),
		localHosts:     make(map[netip.Addr]struct{}),
		remoteHosts:    make(map[netip.Addr]struct{}),
		netLayer:       stats.NewCounter(),
		transBytes:     stats.NewCounter(),
		transConns:     stats.NewCounter(),
		scanners:       make(map[netip.Addr]struct{}),
		catBytes:       make(map[string]*locSplit),
		catConns:       make(map[string]*locSplit),
		origins:        stats.NewCounter(),
		fanAgg:         make(map[netip.Addr]*flows.FanStats),
		load:           newLoadAgg(),
		roleCounts:     make(map[roles.Role]int),
		apps:           newAppAggregates(),
	}
}

// merge folds other into e. Every fold is a sum, union, exact
// distribution merge, or append-in-banking-order, so folding a partition
// of deltas reproduces the aggregate that never split.
func (e *epochAgg) merge(other *epochAgg) {
	e.totalPackets += other.totalPackets
	e.traceCount += other.traceCount
	unionHosts(e.monitoredHosts, other.monitoredHosts)
	unionHosts(e.localHosts, other.localHosts)
	unionHosts(e.remoteHosts, other.remoteHosts)
	e.netLayer.Merge(other.netLayer)
	e.transBytes.Merge(other.transBytes)
	e.transConns.Merge(other.transConns)
	e.removedConns += other.removedConns
	e.totalConns += other.totalConns
	unionHosts(e.scanners, other.scanners)
	foldLocSplit(e.catBytes, other.catBytes)
	foldLocSplit(e.catConns, other.catConns)
	e.origins.Merge(other.origins)
	e.foldFan(other.fanAgg)
	e.load.traces = append(e.load.traces, other.load.traces...)
	for role, n := range other.roleCounts {
		e.roleCounts[role] += n
	}
	e.hostile.merge(&other.hostile)
	e.srcErrs = append(e.srcErrs, other.srcErrs...)
	e.capEvicted += other.capEvicted
	e.agedOut += other.agedOut
	e.apps.Merge(other.apps)
}

// foldConns folds one replay worker's connection-level sums into e.
func (e *epochAgg) foldConns(ca *connAggregates) {
	e.transBytes.Merge(ca.transBytes)
	e.transConns.Merge(ca.transConns)
	e.origins.Merge(ca.origins)
	foldLocSplit(e.catBytes, ca.catBytes)
	foldLocSplit(e.catConns, ca.catConns)
	e.hostile.merge(&ca.hostile)
	e.agedOut += ca.agedOut
}

func (e *epochAgg) foldFan(fan map[netip.Addr]*flows.FanStats) {
	for h, s := range fan {
		agg := e.fanAgg[h]
		if agg == nil {
			agg = &flows.FanStats{}
			e.fanAgg[h] = agg
		}
		agg.Merge(s)
	}
}

// WindowMeta labels a per-window report with its position on the event
// timeline. It rides along in the JSON encoding so consumers can align
// windows across runs and sites.
type WindowMeta struct {
	// Index is the window ordinal (0-based, aligned to the first packet
	// timestamp of the first trace).
	Index int
	// Start and End bound the window: [Start, End) in packet time.
	Start, End time.Time
}

// WindowReport is one completed (or provisionally completed) window.
type WindowReport struct {
	Index      int
	Start, End time.Time
	Report     *Report
}

// windowDelta is one replay worker's banked contribution to one window:
// the application aggregate snapshot cut at the window boundary and the
// connection-level sums accumulated inside the window.
type windowDelta struct {
	window int
	apps   *appAggregates
	conns  *connAggregates
}

// windowState is the Analyzer's epoch-rotation machinery: the window
// clock (origin + duration), the per-window pending aggregates, and the
// event-time watermark that decides when a window is complete. All
// access is mutex-guarded so a serve-mode HTTP handler can read window
// reports while analysis is still streaming.
type windowState struct {
	mu       sync.Mutex
	dur      time.Duration
	dataset  string
	onWindow func(*WindowReport)

	origin    time.Time
	originSet bool
	// watermark is the largest packet timestamp fully processed. Shard
	// workers bank deltas at their own pace (a lagging worker cuts its
	// snapshots later); the watermark only advances once every worker of
	// a trace has drained, so a window is declared complete only when no
	// in-flight worker can still contribute to it.
	watermark time.Time
	// pending maps window index to that window's trace-granular
	// aggregate (packet censuses, scan, load, fan, roles — banked once
	// per trace). Windows stay addressable after completion: a later
	// trace that overlaps an already-completed window in event time
	// banks into it (late data), and the canonical WindowReports() view
	// at the end of the run reflects everything.
	pending map[int]*epochAgg
	// deltas holds each window's worker deltas in banking order; window
	// reports fold them on demand, so banking itself is an append. (The
	// cumulative fold does not read these: each worker maintains its own
	// running aggregate of everything it banked, drained at Report.)
	deltas map[int][]windowDelta
	// maxWindow is the highest window index known (banked or covered by
	// the watermark); -1 before any data.
	maxWindow int
	// nextEmit is the first window index not yet emitted via onWindow.
	nextEmit int
}

func newWindowState(dataset string, dur time.Duration, onWindow func(*WindowReport)) *windowState {
	return &windowState{
		dur:       dur,
		dataset:   dataset,
		onWindow:  onWindow,
		pending:   make(map[int]*epochAgg),
		deltas:    make(map[int][]windowDelta),
		maxWindow: -1,
	}
}

// setOrigin pins the window clock to the first trace's first packet
// timestamp. Idempotent; windows are aligned to multiples of dur from
// this instant for the Analyzer's lifetime.
func (ws *windowState) setOrigin(base time.Time) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if !ws.originSet && !base.IsZero() {
		ws.origin = base
		ws.originSet = true
	}
}

// windowOf maps a packet timestamp to its window index. Timestamps
// before the origin (a later trace starting earlier in event time than
// the first) clamp to window 0.
func (ws *windowState) windowOf(ts time.Time) int {
	if !ws.originSet {
		return 0
	}
	d := ts.Sub(ws.origin)
	if d < 0 {
		return 0
	}
	return int(d / ws.dur)
}

func (ws *windowState) windowStart(n int) time.Time { return ws.origin.Add(time.Duration(n) * ws.dur) }
func (ws *windowState) windowEnd(n int) time.Time {
	return ws.origin.Add(time.Duration(n+1) * ws.dur)
}

// epoch returns window n's aggregate, creating it on first touch.
// Callers hold ws.mu.
func (ws *windowState) epoch(n int) *epochAgg {
	e := ws.pending[n]
	if e == nil {
		e = newEpochAgg()
		ws.pending[n] = e
	}
	if n > ws.maxWindow {
		ws.maxWindow = n
	}
	return e
}

// bankDeltas records one trace's worker deltas, in shard-major banking
// order. Banking is an append — the folds happen lazily (window reports
// on demand, the cumulative at Report) — and banking order preserves
// each host pair's chronological fold (a pair's deltas all come from
// one shard, in window order), which is what keeps the cumulative
// aggregate byte-identical to a batch run.
func (ws *windowState) bankDeltas(deltas []windowDelta) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	for _, d := range deltas {
		if d.window > ws.maxWindow {
			ws.maxWindow = d.window
		}
		ws.deltas[d.window] = append(ws.deltas[d.window], d)
	}
}

// finishTrace banks a trace's trace-granular delta (packet censuses,
// scanner removal, load, fan, roles, and the phase-A application
// residue) into the window containing the trace's last packet — the
// window during which those quantities become known — then advances the
// watermark and emits every newly completed window.
//
// A zero-packet trace has no event time: it banks into the window of
// the current watermark (so window sums still cover it), or into the
// cumulative alone when no packet has ever been seen — either way the
// cumulative stays byte-identical to a batch run, which counts empty
// traces too.
func (ws *windowState) finishTrace(cum *epochAgg, traceDelta *epochAgg, apDelta *appAggregates, maxTS time.Time) {
	var completed []*WindowReport
	ws.mu.Lock()
	if apDelta != nil {
		cum.apps.Merge(apDelta)
	}
	cum.merge(traceDelta)
	if ws.originSet {
		at := maxTS
		if at.IsZero() {
			at = ws.watermark
		}
		e := ws.epoch(ws.windowOf(at))
		if apDelta != nil {
			e.apps.Merge(apDelta)
		}
		e.merge(traceDelta)
	}
	if !maxTS.IsZero() {
		if maxTS.After(ws.watermark) {
			ws.watermark = maxTS
		}
		// Every window strictly before the watermark's window is
		// complete; gap windows with no traffic at all are enumerated
		// (and emitted) as empty reports.
		if high := ws.windowOf(ws.watermark) - 1; high > ws.maxWindow {
			ws.maxWindow = high
		}
		if ws.onWindow != nil {
			for ; ws.nextEmit < ws.windowOf(ws.watermark); ws.nextEmit++ {
				completed = append(completed, ws.windowReportLocked(ws.nextEmit))
			}
		}
	}
	ws.mu.Unlock()
	// Emit outside the lock: the callback may serve HTTP or block.
	for _, wr := range completed {
		ws.onWindow(wr)
	}
}

// foldWindowLocked builds window n's standalone aggregate: the
// trace-granular pending epoch plus the window's worker deltas, folded
// in banking order. This is the single fold both window reports and
// fleet snapshot exports go through, so a shipped window is exactly the
// window a local report would describe. Callers hold ws.mu.
func (ws *windowState) foldWindowLocked(n int) *epochAgg {
	e := newEpochAgg()
	if tp := ws.pending[n]; tp != nil {
		e.merge(tp)
	}
	for _, d := range ws.deltas[n] {
		if d.apps != nil {
			e.apps.Merge(d.apps)
		}
		if d.conns != nil {
			e.foldConns(d.conns)
		}
	}
	return e
}

// windowReportLocked builds window n's report: the trace-granular
// aggregate plus the window's worker deltas, folded in banking order.
// Callers hold ws.mu.
func (ws *windowState) windowReportLocked(n int) *WindowReport {
	e := ws.foldWindowLocked(n)
	meta := &WindowMeta{Index: n, Start: ws.windowStart(n), End: ws.windowEnd(n)}
	return &WindowReport{
		Index:  n,
		Start:  meta.Start,
		End:    meta.End,
		Report: buildReport(ws.dataset, e, e.apps, meta),
	}
}

// report builds window n's report (false when n is out of range).
func (ws *windowState) report(n int) (*WindowReport, bool) {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if n < 0 || n > ws.maxWindow {
		return nil, false
	}
	return ws.windowReportLocked(n), true
}

// allReports builds every window's report, 0..maxWindow, empty windows
// included. This is the canonical end-of-run view: late banked data is
// reflected regardless of when (or whether) a window was emitted.
func (ws *windowState) allReports() []*WindowReport {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	out := make([]*WindowReport, 0, ws.maxWindow+1)
	for n := 0; n <= ws.maxWindow; n++ {
		out = append(out, ws.windowReportLocked(n))
	}
	return out
}

// latest returns the highest completed window index (-1 when the
// watermark has not passed any window boundary yet).
func (ws *windowState) latest() int {
	ws.mu.Lock()
	defer ws.mu.Unlock()
	if !ws.originSet {
		return -1
	}
	n := ws.windowOf(ws.watermark) - 1
	if n > ws.maxWindow {
		n = ws.maxWindow
	}
	return n
}

// Windowing reports whether epoch rotation is enabled.
func (a *Analyzer) Windowing() bool { return a.win != nil }

// WindowDuration returns the configured window length (0 when
// windowing is disabled).
func (a *Analyzer) WindowDuration() time.Duration {
	if a.win == nil {
		return 0
	}
	return a.win.dur
}

// Watermark returns the event-time high-water mark: the largest packet
// timestamp fully processed. Safe for concurrent use with Add*.
func (a *Analyzer) Watermark() time.Time {
	if a.win == nil {
		return time.Time{}
	}
	a.win.mu.Lock()
	defer a.win.mu.Unlock()
	return a.win.watermark
}

// LatestWindowIndex returns the highest completed window (-1 if none).
// Safe for concurrent use with Add*.
func (a *Analyzer) LatestWindowIndex() int {
	if a.win == nil {
		return -1
	}
	return a.win.latest()
}

// WindowCount returns the number of known windows (complete or open).
// Safe for concurrent use with Add*.
func (a *Analyzer) WindowCount() int {
	if a.win == nil {
		return 0
	}
	a.win.mu.Lock()
	defer a.win.mu.Unlock()
	return a.win.maxWindow + 1
}

// WindowReport builds the report for window n. Reports are live views:
// a window that later traces still feed (in event time) reflects
// everything banked so far. Safe for concurrent use with Add*.
func (a *Analyzer) WindowReport(n int) (*WindowReport, bool) {
	if a.win == nil {
		return nil, false
	}
	return a.win.report(n)
}

// WindowReports builds every window's report in window order — the
// canonical windowed view of the run. The sum of these windows merges
// to the cumulative report: every banked quantity lives in exactly one
// window. Safe for concurrent use with Add*.
func (a *Analyzer) WindowReports() []*WindowReport {
	if a.win == nil {
		return nil
	}
	return a.win.allReports()
}
