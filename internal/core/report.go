package core

import (
	"fmt"
	"sort"

	"enttrace/internal/categories"
	"enttrace/internal/flows"
	"enttrace/internal/stats"
)

// Report carries every reproduced table and figure for one dataset —
// for the whole run, or, when windowing is enabled, for one time window
// (Window non-nil). Every fraction in a Report is guarded against
// zero-denominator inputs: an empty window renders as zeros, never
// NaN/Inf, which also keeps the JSON encoding valid.
type Report struct {
	Dataset string

	// Window labels a per-window report; nil on cumulative reports.
	Window *WindowMeta `json:",omitempty"`

	Table1 DatasetStats
	Table2 map[string]float64 // network-layer packet fractions
	Table3 TransportBreakdown
	Scan   ScanSummary

	Figure1 []CategoryRow
	Figure2 FanReport
	Origins map[string]float64

	HTTP        HTTPReport
	Email       EmailReport
	Names       NameServiceReport
	Windows     WindowsReport
	FileSvc     FileServiceReport
	Bulk        BulkReport
	Interactive InteractiveReport
	Backup      BackupReport
	Load        LoadReport

	// Hostile is the hostile-input census: what the reassembly and decode
	// layers saw that well-formed traffic never produces (extension; see
	// DESIGN.md on the overlap-conflict policy).
	Hostile HostileReport

	// SourceErrors is the degraded-run census: source read failures the
	// Degrade error policy skipped, plus the bounded-memory dispositions
	// (extension; see DESIGN.md "Failure policy & degraded runs"). All
	// zeros on a clean fail-fast run.
	SourceErrors SourceErrorReport

	// Roles is the host-role census (extension: the paper's cited
	// role-classification direction), summed over traces.
	Roles map[string]int

	// Fleet is the fleet-mode degradation census: which sites are
	// missing which windows from this merged report (extension; see
	// DESIGN.md "Fleet aggregation"). Nil on single-instance runs and on
	// complete fleet merges, so a clean fleet report stays byte-identical
	// to its single-instance equivalent.
	Fleet *FleetReport `json:",omitempty"`

	Findings []string // Table 5: computed qualitative findings
}

// FleetReport is the fleet degradation census: one entry per site with
// at least one window missing or permanently lost from the merged
// report (complete sites are omitted — an empty census is a nil Fleet
// section). Sites sort by name, window lists ascend, and a permanently
// lost window appears exactly once, in its site's LostWindows.
type FleetReport struct {
	Sites []FleetSiteReport
}

// FleetSiteReport is one degraded site's census row.
type FleetSiteReport struct {
	Site string
	// Fin reports whether the site declared itself complete.
	Fin bool
	// Windows counts the site's snapshots folded into the report.
	Windows int
	// LostWindows are windows the site's shipper declared permanently
	// dropped (bounded-queue eviction or give-up) and never superseded
	// with a delivery.
	LostWindows []int `json:",omitempty"`
	// MissingWindows are windows expected from this site but neither
	// delivered nor declared lost — the site is lagging, stale, or dead.
	MissingWindows []int `json:",omitempty"`
}

// DatasetStats is Table 1's per-dataset row (measured, not configured).
type DatasetStats struct {
	Packets        int64
	Traces         int
	MonitoredHosts int
	LocalHosts     int
	RemoteHosts    int
}

// TransportBreakdown is Table 3.
type TransportBreakdown struct {
	TotalBytes int64
	TotalConns int64
	BytesFrac  map[string]float64
	ConnsFrac  map[string]float64
}

// ScanSummary reports the §3 scanner removal.
type ScanSummary struct {
	Scanners        int
	RemovedConns    int
	TotalConns      int
	RemovedFraction float64
}

// HostileReport is the hostile-input census. The byte ledger satisfies
// IngestBytes == DeliveredBytes + DuplicateBytes + ConflictBytes +
// DiscardedBytes exactly (streams are closed or discarded before the
// census is taken), and the fractions are zero-denominator-safe.
type HostileReport struct {
	// Streams is the number of reassembled stream directions that carried
	// at least one payload byte.
	Streams int64
	// The reassembly byte ledger, summed over those streams.
	IngestBytes     int64
	DeliveredBytes  int64
	DuplicateBytes  int64
	ConflictBytes   int64
	DiscardedBytes  int64
	GapSkippedBytes int64
	// Event counts.
	GapEvents  int64
	WrapEvents int64
	// PeakPendingBytes is the largest out-of-order backlog any single
	// stream direction reached (bounded by the reassembler's MaxPending).
	PeakPendingBytes int64
	// BogusRSTs counts RST segments whose sequence number disagreed with
	// the reassembly cursor; PostRSTDataSegments counts payload segments
	// seen after any RST on the connection.
	BogusRSTs           int64
	PostRSTDataSegments int64
	// UndecodableFrames counts frames the packet decoder rejected
	// (truncated or corrupt link/IP/transport headers).
	UndecodableFrames int64
	// Shares of ingested bytes (0 when nothing was ingested).
	DuplicateFrac float64
	ConflictFrac  float64
	// GapFrac is gap-skipped sequence space over delivered+skipped.
	GapFrac float64
}

// SourceErrorReport is the degraded-run census for one epoch (the run,
// or one window): every source read failure the Degrade policy folded,
// plus the bounded-memory dispositions. Sum-of-windows equals the
// cumulative on every field (the per-trace entries bank into the window
// of the trace's last packet; AgedOut follows the connection banking).
type SourceErrorReport struct {
	// Errors and LostBytes total the per-trace entries below.
	Errors    int64
	LostBytes int64
	// ByKind counts errors per census kind ("read-error", "torn-record",
	// "short-read", "early-eof", ...).
	ByKind map[string]int64 `json:",omitempty"`
	// AgedOutConns counts connections idle past the IdleEvict horizon at
	// the end of their trace; CapEvictedConns counts MaxConns-backstop
	// evictions (nonzero only when the lossy backstop actually fired).
	AgedOutConns    int64
	CapEvictedConns int64
	// Traces carries the per-trace census entries, in banking order.
	Traces []TraceSourceErrors `json:",omitempty"`
}

// TraceSourceErrors is one trace's source-error census.
type TraceSourceErrors struct {
	Trace     string
	Errors    int64
	LostBytes int64
	ByKind    map[string]int64
	// FirstIndex/LastIndex are the packet-stream offsets (packets
	// delivered before the error) of the trace's first and last errors.
	FirstIndex, LastIndex int64
	// Terminal marks a trace a fault ended early.
	Terminal bool

	// ord is the trace's global ordinal (TraceBase-offset), used to
	// restore trace order after a window-major fleet fold. Unexported:
	// absent from JSON, carried by the fleet snapshot codec.
	ord int
}

// CategoryRow is one Figure 1 bar: the category's share of unicast
// payload bytes and connections, split enterprise vs WAN-crossing.
type CategoryRow struct {
	Category string
	BytesEnt float64
	BytesWan float64
	ConnsEnt float64
	ConnsWan float64
	// Multicast shares (the text's 5–10% observations).
	BytesMulticast float64
	ConnsMulticast float64
}

// BytesTotal is the category's total share of bytes.
func (c CategoryRow) BytesTotal() float64 { return c.BytesEnt + c.BytesWan }

// ConnsTotal is the category's total share of connections.
func (c CategoryRow) ConnsTotal() float64 { return c.ConnsEnt + c.ConnsWan }

// FanReport is Figure 2: fan-in and fan-out CDFs, enterprise vs WAN peers.
type FanReport struct {
	FanInEnt, FanInWan, FanOutEnt, FanOutWan []stats.CDFPoint
	// OnlyInternalFanIn/Out: fraction of monitored hosts whose peers are
	// all internal.
	OnlyInternalFanIn  float64
	OnlyInternalFanOut float64
	Hosts              int
}

// HTTPReport is §5.1.1.
type HTTPReport struct {
	// Table 6: internal HTTP automated-activity shares.
	InternalRequests int64
	InternalBytes    int64
	Automated        map[string]AutomatedShare
	// Figure 3: fan-out CDFs (clients → distinct servers).
	FanOutEnt, FanOutWan     []stats.CDFPoint
	NEntClients, NWanClients int
	// Connection success by host pair.
	SuccessEnt, SuccessWan float64
	PairsEnt, PairsWan     int
	// Conditional GET shares.
	CondEnt, CondWan           float64
	CondBytesEnt, CondBytesWan float64
	// Table 7: content classes.
	ContentReqEnt, ContentReqWan   map[string]float64
	ContentByteEnt, ContentByteWan map[string]float64
	// Figure 4: reply body sizes.
	ReplySizeEnt, ReplySizeWan []stats.CDFPoint
	// GET share of requests and request success rate.
	GETFrac, RequestSuccess float64
	// HTTPS: the anomalous busiest pair's connection count.
	MaxHTTPSConnsPerPair int64
}

// AutomatedShare is one Table 6 row.
type AutomatedShare struct {
	ReqFrac, ByteFrac float64
}

// EmailReport is §5.1.2.
type EmailReport struct {
	// Table 8: bytes by protocol.
	Bytes map[string]int64
	// Figure 5: connection durations (seconds).
	SMTPDurEnt, SMTPDurWan               []stats.CDFPoint
	IMAPSDurEnt, IMAPSDurWan             []stats.CDFPoint
	MedianSMTPDurEnt, MedianSMTPDurWan   float64
	MedianIMAPSDurEnt, MedianIMAPSDurWan float64
	// Figure 6: flow sizes (bytes).
	SMTPSizeEnt, SMTPSizeWan   []stats.CDFPoint
	IMAPSSizeEnt, IMAPSSizeWan []stats.CDFPoint
	// Success rates by host pair.
	SMTPSuccessEnt, SMTPSuccessWan, IMAPSSuccess float64
}

// NameServiceReport is §5.1.3.
type NameServiceReport struct {
	DNSMedianLatencyEntMs float64
	DNSMedianLatencyWanMs float64
	DNSTypes              map[string]float64
	DNSRcodes             map[string]float64
	// Top-10 client share of requests (the paper: DNS concentrated, NBNS
	// spread with top ten < 40%).
	DNSTop10ClientShare  float64
	NBNSTop10ClientShare float64
	NBNSOps              map[string]float64
	NBNSNameTypes        map[string]float64
	NBNSFailureRate      float64
}

// WindowsReport is §5.2.1.
type WindowsReport struct {
	// Table 9: per-service host-pair outcomes.
	Table9 map[string]ServiceOutcome
	// Netbios/SSN application-level handshake success.
	SSNHandshakeSuccess float64
	// Table 10: CIFS command mix.
	CIFSRequests map[string]float64
	CIFSBytes    map[string]float64
	// Table 11: DCE/RPC function mix.
	RPCRequests map[string]float64
	RPCBytes    map[string]float64
	// Total raw counts for context.
	CIFSTotalRequests, RPCTotalRequests int64
}

// ServiceOutcome is one Table 9 column.
type ServiceOutcome struct {
	Pairs                         int
	Success, Rejected, Unanswered float64
}

// FileServiceReport is §5.2.2.
type FileServiceReport struct {
	// Table 12-ish: totals.
	NFSRequests, NCPRequests   int64
	NFSDataBytes, NCPDataBytes int64
	// Tables 13–14: request mixes.
	NFSRequestMix, NCPRequestMix map[string]float64
	NFSByteMix, NCPByteMix       map[string]float64
	// Figure 7: requests per host pair.
	NFSPerPair, NCPPerPair []stats.CDFPoint
	// Top-3 pair share of requests (heavy hitters).
	NFSTop3Share, NCPTop3Share float64
	// Figure 8: message sizes.
	NFSReqSizes, NFSReplySizes []stats.CDFPoint
	NCPReqSizes, NCPReplySizes []stats.CDFPoint
	// Success rates.
	NFSSuccess, NCPSuccess float64
	// UDP vs TCP host pairs for NFS.
	NFSUDPPairs, NFSTCPPairs int
	// NCP keep-alive-only connection fraction.
	NCPKeepAliveOnlyFrac float64
}

// InteractiveReport quantifies the paper's two §3/§5 remarks about
// interactive traffic: packets are small (the category's packet share is
// about twice its byte share) and SSH moonlights as a bulk mover.
type InteractiveReport struct {
	SSHConns int64
	// SSHBulkFrac is the fraction of SSH connections moving ≥200 KB —
	// file copies and tunnels rather than keystrokes.
	SSHBulkFrac float64
	// MeanSSHPayloadPerPkt is the average payload per packet (bytes),
	// small for keystroke-dominated traffic.
	MeanSSHPayloadPerPkt float64
}

// BulkReport covers the bulk category's constituents: FTP sessions
// (control-channel level) and the data volumes moved by FTP and HPSS.
type BulkReport struct {
	FTPSessions  int
	FTPTransfers int
	FTPLoginRate float64
	FTPDataConns int64
	FTPDataBytes int64
	HPSSBytes    int64
}

// BackupReport is Table 15.
type BackupReport struct {
	Conns map[string]int64
	Bytes map[string]int64
	// DantzBidirFrac: Dantz connections with ≥100 KB in both directions.
	DantzBidirFrac float64
}

// LoadReport is §6.
type LoadReport struct {
	Traces []TraceLoad
	// Figure 9 aggregate distributions over traces.
	Peak1s, Peak10s, Peak60s []stats.CDFPoint
	MedianOfMedians          float64
	MaxRetransEnt            float64
	// MedianHurst is the median per-trace Hurst estimate (self-similarity
	// extension; 0 when no trace was long enough).
	MedianHurst float64
	// Fractions of traces whose retransmission rate exceeds 1%.
	EntOver1Pct, WanOver1Pct float64
}

// Report finalizes all accumulated state into the dataset report. In
// batch mode it reads the cumulative aggregate plus the live replay
// shards; in windowed mode the cumulative aggregate already holds every
// banked delta (merged in banking order), so the report is byte-identical
// to a batch run over the same traces.
func (a *Analyzer) Report() *Report {
	if a.win != nil {
		a.win.mu.Lock()
		defer a.win.mu.Unlock()
		// Drain each worker's running cumulative aggregate, in shard
		// order (the batch path's mergedApps order). cut() keeps the
		// drain idempotent: a report mid-run consumes only what has been
		// banked since the previous one.
		for i, cs := range a.cumApps {
			if d := cs.cut(); d != nil {
				a.cum.apps.Merge(d)
			}
			a.cum.foldConns(a.cumConns[i])
			a.cumConns[i] = newConnAggregates()
		}
		return buildReport(a.opts.Dataset, a.cum, a.cum.apps, nil)
	}
	return buildReport(a.opts.Dataset, a.cum, a.mergedApps(), nil)
}

// frac is num/den guarded against empty denominators: a quiet window
// must render 0%, never NaN or Inf (which would also poison the JSON
// encoding). Every ratio in this file goes through it.
func frac(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// buildReport renders one epoch aggregate (the whole run or one window)
// into the dataset report. ap supplies the application-level sections —
// the canonical shard merge in batch mode, the epoch's own banked
// aggregate in windowed mode.
func buildReport(dataset string, e *epochAgg, ap *appAggregates, win *WindowMeta) *Report {
	r := &Report{Dataset: dataset, Window: win}
	r.Table1 = DatasetStats{
		Packets:        e.totalPackets,
		Traces:         e.traceCount,
		MonitoredHosts: len(e.monitoredHosts),
		LocalHosts:     len(e.localHosts),
		RemoteHosts:    len(e.remoteHosts),
	}
	r.Table2 = counterFractions(e.netLayer)
	r.Table3 = TransportBreakdown{
		TotalBytes: e.transBytes.Total(),
		TotalConns: e.transConns.Total(),
		BytesFrac:  counterFractions(e.transBytes),
		ConnsFrac:  counterFractions(e.transConns),
	}
	r.Scan = ScanSummary{
		Scanners:        len(e.scanners),
		RemovedConns:    e.removedConns,
		TotalConns:      e.totalConns,
		RemovedFraction: frac(float64(e.removedConns), float64(e.totalConns)),
	}
	r.Figure1 = e.categoryRows()
	r.Figure2 = e.fanReport()
	r.Origins = counterFractions(e.origins)
	// Order-bearing collections restore canonical first-packet order
	// before anything walks them (idempotent; shard and window merges
	// append out of order).
	ap.sortFTPSessions()
	r.HTTP = httpReport(ap)
	r.Email = emailReport(ap)
	r.Names = nameReport(ap)
	r.Windows = windowsReport(ap)
	r.FileSvc = fileReport(ap)
	r.Bulk = bulkReport(ap)
	r.Interactive = interactiveReport(ap)
	r.Backup = backupReport(ap)
	r.Load = e.loadReport()
	r.Hostile = e.hostileReport()
	r.SourceErrors = e.sourceErrorReport()
	r.Roles = make(map[string]int)
	for role, n := range e.roleCounts {
		r.Roles[string(role)] = n
	}
	r.Findings = findings(r)
	return r
}

func counterFractions(c *stats.Counter) map[string]float64 {
	out := make(map[string]float64)
	for _, k := range c.Keys() {
		out[k] = c.Fraction(k)
	}
	return out
}

func (e *epochAgg) categoryRows() []CategoryRow {
	var totalBytes, totalConns int64
	for _, s := range e.catBytes {
		totalBytes += s.Ent + s.Wan
	}
	for _, s := range e.catConns {
		totalConns += s.Ent + s.Wan
	}
	if totalBytes == 0 {
		totalBytes = 1
	}
	if totalConns == 0 {
		totalConns = 1
	}
	var rows []CategoryRow
	for _, cat := range categories.All {
		row := CategoryRow{Category: cat}
		if s := e.catBytes[cat]; s != nil {
			row.BytesEnt = float64(s.Ent) / float64(totalBytes)
			row.BytesWan = float64(s.Wan) / float64(totalBytes)
		}
		if s := e.catConns[cat]; s != nil {
			row.ConnsEnt = float64(s.Ent) / float64(totalConns)
			row.ConnsWan = float64(s.Wan) / float64(totalConns)
		}
		if s := e.catBytes[cat+"/multicast"]; s != nil {
			row.BytesMulticast = float64(s.Ent+s.Wan) / float64(totalBytes)
		}
		if s := e.catConns[cat+"/multicast"]; s != nil {
			row.ConnsMulticast = float64(s.Ent+s.Wan) / float64(totalConns)
		}
		rows = append(rows, row)
	}
	return rows
}

func (e *epochAgg) fanReport() FanReport {
	fr := FanReport{Hosts: len(e.fanAgg)}
	fiEnt, fiWan := stats.NewDist(), stats.NewDist()
	foEnt, foWan := stats.NewDist(), stats.NewDist()
	for _, d := range []*stats.Dist{fiEnt, fiWan, foEnt, foWan} {
		d.Reserve(len(e.fanAgg))
	}
	onlyIntIn, onlyIntOut, haveIn, haveOut := 0, 0, 0, 0
	for _, s := range e.fanAgg {
		if s.FanIn() > 0 {
			haveIn++
			fiEnt.Observe(float64(s.FanInLocal))
			fiWan.Observe(float64(s.FanInRemote))
			if s.FanInRemote == 0 {
				onlyIntIn++
			}
		}
		if s.FanOut() > 0 {
			haveOut++
			foEnt.Observe(float64(s.FanOutLocal))
			foWan.Observe(float64(s.FanOutRemote))
			if s.FanOutRemote == 0 {
				onlyIntOut++
			}
		}
	}
	const pts = 64
	fr.FanInEnt = fiEnt.CDF(pts)
	fr.FanInWan = fiWan.CDF(pts)
	fr.FanOutEnt = foEnt.CDF(pts)
	fr.FanOutWan = foWan.CDF(pts)
	fr.OnlyInternalFanIn = frac(float64(onlyIntIn), float64(haveIn))
	fr.OnlyInternalFanOut = frac(float64(onlyIntOut), float64(haveOut))
	return fr
}

func httpReport(ap *appAggregates) HTTPReport {
	h := ap.http
	r := HTTPReport{Automated: make(map[string]AutomatedShare)}
	r.InternalRequests = h.reqTotal["ent"]
	r.InternalBytes = h.dataTotal["ent"]
	for class, e := range h.byClass {
		r.Automated[class] = AutomatedShare{
			ReqFrac:  frac(float64(e.Reqs), float64(r.InternalRequests)),
			ByteFrac: frac(float64(e.Bytes), float64(r.InternalBytes)),
		}
	}
	// Figure 3 fan-out.
	fanEnt, fanWan := stats.NewDist(), stats.NewDist()
	fanEnt.Reserve(len(h.fanServers))
	fanWan.Reserve(len(h.fanServers))
	for client, byLoc := range h.fanServers {
		if h.automated[client] {
			continue
		}
		if n := len(byLoc["ent"]); n > 0 {
			fanEnt.Observe(float64(n))
		}
		if n := len(byLoc["wan"]); n > 0 {
			fanWan.Observe(float64(n))
		}
	}
	r.FanOutEnt, r.FanOutWan = fanEnt.CDF(64), fanWan.CDF(64)
	r.NEntClients, r.NWanClients = fanEnt.N(), fanWan.N()
	// Success by pair.
	rate := func(loc string) (float64, int) {
		pm := h.connPairs[loc]
		ok := 0
		for _, s := range pm {
			if s {
				ok++
			}
		}
		return frac(float64(ok), float64(len(pm))), len(pm)
	}
	r.SuccessEnt, r.PairsEnt = rate("ent")
	r.SuccessWan, r.PairsWan = rate("wan")
	if c := h.conditional["ent"]; c != nil {
		r.CondEnt = frac(float64(c.Cond), float64(c.Total))
		r.CondBytesEnt = frac(float64(c.CondBytes), float64(c.Bytes))
	}
	if c := h.conditional["wan"]; c != nil {
		r.CondWan = frac(float64(c.Cond), float64(c.Total))
		r.CondBytesWan = frac(float64(c.CondBytes), float64(c.Bytes))
	}
	if h.contentReq["ent"] != nil {
		r.ContentReqEnt = counterFractions(h.contentReq["ent"])
		r.ContentByteEnt = counterFractions(h.contentLen["ent"])
	}
	if h.contentReq["wan"] != nil {
		r.ContentReqWan = counterFractions(h.contentReq["wan"])
		r.ContentByteWan = counterFractions(h.contentLen["wan"])
	}
	if h.replySizes["ent"] != nil {
		r.ReplySizeEnt = h.replySizes["ent"].CDF(128)
	}
	if h.replySizes["wan"] != nil {
		r.ReplySizeWan = h.replySizes["wan"].CDF(128)
	}
	r.GETFrac = h.methods.Fraction("GET")
	r.RequestSuccess = frac(float64(h.statusOK), float64(h.statusAll))
	for _, n := range h.httpsConnsByPair {
		if n > r.MaxHTTPSConnsPerPair {
			r.MaxHTTPSConnsPerPair = n
		}
	}
	return r
}

func emailReport(ap *appAggregates) EmailReport {
	e := ap.email
	r := EmailReport{Bytes: make(map[string]int64)}
	for _, k := range e.bytesByProto.Keys() {
		r.Bytes[k] = e.bytesByProto.Get(k)
	}
	cdf := func(key string) []stats.CDFPoint {
		if d := e.durations[key]; d != nil {
			return d.CDF(96)
		}
		return nil
	}
	scdf := func(key string) []stats.CDFPoint {
		if d := e.sizes[key]; d != nil {
			return d.CDF(96)
		}
		return nil
	}
	med := func(key string) float64 {
		if d := e.durations[key]; d != nil {
			return d.Median()
		}
		return 0
	}
	r.SMTPDurEnt, r.SMTPDurWan = cdf("SMTP/ent"), cdf("SMTP/wan")
	r.IMAPSDurEnt, r.IMAPSDurWan = cdf("IMAP/S/ent"), cdf("IMAP/S/wan")
	r.MedianSMTPDurEnt, r.MedianSMTPDurWan = med("SMTP/ent"), med("SMTP/wan")
	r.MedianIMAPSDurEnt, r.MedianIMAPSDurWan = med("IMAP/S/ent"), med("IMAP/S/wan")
	r.SMTPSizeEnt, r.SMTPSizeWan = scdf("SMTP/ent"), scdf("SMTP/wan")
	r.IMAPSSizeEnt, r.IMAPSSizeWan = scdf("IMAP/S/ent"), scdf("IMAP/S/wan")
	r.SMTPSuccessEnt, _ = e.successRate("SMTP/ent")
	r.SMTPSuccessWan, _ = e.successRate("SMTP/wan")
	entOK, entN := e.successRate("IMAP/S/ent")
	wanOK, wanN := e.successRate("IMAP/S/wan")
	r.IMAPSSuccess = frac(entOK*float64(entN)+wanOK*float64(wanN), float64(entN+wanN))
	return r
}

func nameReport(ap *appAggregates) NameServiceReport {
	r := NameServiceReport{
		DNSMedianLatencyEntMs: ap.dnsInt.Latency.Median() * 1000,
		DNSMedianLatencyWanMs: ap.dnsWan.Latency.Median() * 1000,
		NBNSFailureRate:       ap.nbns.FailureRate(),
	}
	combined := stats.NewCounter()
	combined.Merge(ap.dnsInt.Types)
	combined.Merge(ap.dnsWan.Types)
	r.DNSTypes = counterFractions(combined)
	rcodes := stats.NewCounter()
	rcodes.Merge(ap.dnsInt.Rcodes)
	rcodes.Merge(ap.dnsWan.Rcodes)
	r.DNSRcodes = counterFractions(rcodes)
	r.NBNSOps = counterFractions(ap.nbns.Ops)
	r.NBNSNameTypes = counterFractions(ap.nbns.NameTypes)
	dnsClients := stats.NewCounter()
	dnsClients.Merge(ap.dnsInt.Clients)
	dnsClients.Merge(ap.dnsWan.Clients)
	r.DNSTop10ClientShare = topNShare(dnsClients, 10)
	r.NBNSTop10ClientShare = topNShare(ap.nbns.Clients, 10)
	return r
}

func topNShare(c *stats.Counter, n int) float64 {
	keys := c.Keys()
	if len(keys) > n {
		keys = keys[:n]
	}
	var top int64
	for _, k := range keys {
		top += c.Get(k)
	}
	return frac(float64(top), float64(c.Total()))
}

func windowsReport(ap *appAggregates) WindowsReport {
	r := WindowsReport{Table9: make(map[string]ServiceOutcome)}
	for service, pairs := range ap.winPairs {
		o := ServiceOutcome{Pairs: len(pairs)}
		var ok, rej, un int
		for _, st := range pairs {
			switch st {
			case flows.StateEstablished, flows.StateActive:
				ok++
			case flows.StateRejected:
				rej++
			default:
				un++
			}
		}
		o.Success = frac(float64(ok), float64(o.Pairs))
		o.Rejected = frac(float64(rej), float64(o.Pairs))
		o.Unanswered = frac(float64(un), float64(o.Pairs))
		r.Table9[service] = o
	}
	ok, _, _, total := ap.ssn.Summary()
	r.SSNHandshakeSuccess = frac(float64(ok), float64(total))
	r.CIFSRequests = counterFractions(ap.cifs.Requests)
	r.CIFSBytes = counterFractions(ap.cifs.Bytes)
	r.RPCRequests = counterFractions(ap.rpc.Requests)
	r.RPCBytes = counterFractions(ap.rpc.Bytes)
	r.CIFSTotalRequests = ap.cifs.Requests.Total()
	r.RPCTotalRequests = ap.rpc.Requests.Total()
	return r
}

func fileReport(ap *appAggregates) FileServiceReport {
	r := FileServiceReport{
		NFSRequests:   ap.nfs.Requests.Total(),
		NCPRequests:   ap.ncp.Requests.Total(),
		NFSDataBytes:  ap.nfs.Bytes.Total(),
		NCPDataBytes:  ap.ncp.Bytes.Total(),
		NFSRequestMix: counterFractions(ap.nfs.Requests),
		NCPRequestMix: counterFractions(ap.ncp.Requests),
		NFSByteMix:    counterFractions(ap.nfs.Bytes),
		NCPByteMix:    counterFractions(ap.ncp.Bytes),
		NFSSuccess:    ap.nfs.SuccessRate(),
		NCPSuccess:    ap.ncp.SuccessRate(),
		NFSUDPPairs:   len(ap.nfsUDP),
		NFSTCPPairs:   len(ap.nfsTCP),
	}
	nfsPairs := stats.NewDist()
	nfsPairs.Reserve(len(ap.nfs.PerPair))
	nfsCounts := make([]int64, 0, len(ap.nfs.PerPair))
	for _, n := range ap.nfs.PerPair {
		nfsPairs.Observe(float64(n))
		nfsCounts = append(nfsCounts, n)
	}
	ncpPairs := stats.NewDist()
	ncpPairs.Reserve(len(ap.ncp.PerPair))
	ncpCounts := make([]int64, 0, len(ap.ncp.PerPair))
	for _, n := range ap.ncp.PerPair {
		ncpPairs.Observe(float64(n))
		ncpCounts = append(ncpCounts, n)
	}
	r.NFSPerPair = nfsPairs.CDF(64)
	r.NCPPerPair = ncpPairs.CDF(64)
	r.NFSTop3Share = topShare(nfsCounts, 3)
	r.NCPTop3Share = topShare(ncpCounts, 3)
	r.NFSReqSizes = ap.nfs.ReqSizes.CDF(128)
	r.NFSReplySizes = ap.nfs.ReplySizes.CDF(128)
	r.NCPReqSizes = ap.ncp.ReqSizes.CDF(128)
	r.NCPReplySizes = ap.ncp.ReplySizes.CDF(128)
	r.NCPKeepAliveOnlyFrac = frac(float64(ap.ncpKeepAliveOnly), float64(ap.ncpConns))
	return r
}

func topShare(counts []int64, n int) float64 {
	sort.Slice(counts, func(i, j int) bool { return counts[i] > counts[j] })
	var total, top int64
	for i, c := range counts {
		total += c
		if i < n {
			top += c
		}
	}
	return frac(float64(top), float64(total))
}

func interactiveReport(ap *appAggregates) InteractiveReport {
	return InteractiveReport{
		SSHConns:             ap.sshConns,
		SSHBulkFrac:          frac(float64(ap.sshBulk), float64(ap.sshConns)),
		MeanSSHPayloadPerPkt: frac(float64(ap.sshPayload), float64(ap.sshPkts)),
	}
}

func bulkReport(ap *appAggregates) BulkReport {
	r := BulkReport{
		FTPSessions:  len(ap.ftpSessions),
		FTPDataConns: ap.bulkConns.Get("FTP-Data"),
		FTPDataBytes: ap.bulkBytes.Get("FTP-Data"),
		HPSSBytes:    ap.bulkBytes.Get("HPSS"),
	}
	logins := 0
	for _, rec := range ap.ftpSessions {
		r.FTPTransfers += rec.session.Transfers
		if rec.session.LoggedIn {
			logins++
		}
	}
	r.FTPLoginRate = frac(float64(logins), float64(r.FTPSessions))
	return r
}

func backupReport(ap *appAggregates) BackupReport {
	r := BackupReport{Conns: make(map[string]int64), Bytes: make(map[string]int64)}
	for _, k := range ap.backupConns.Keys() {
		r.Conns[k] = ap.backupConns.Get(k)
	}
	for _, k := range ap.backupBytes.Keys() {
		r.Bytes[k] = ap.backupBytes.Get(k)
	}
	r.DantzBidirFrac = frac(float64(ap.dantzBidir), float64(ap.dantzConns))
	return r
}

// tracesByOrd returns rows re-sorted into global trace order. A fleet
// fold appends per-trace rows window-major, not trace-major; sorting by
// the stamped ordinal makes the report canonical either way. For a
// single instance the rows are already in ordinal order, so this is an
// order-preserving copy.
func tracesByOrd[T any](rows []T, ord func(T) int) []T {
	out := append([]T(nil), rows...)
	sort.SliceStable(out, func(i, j int) bool { return ord(out[i]) < ord(out[j]) })
	return out
}

func (e *epochAgg) loadReport() LoadReport {
	r := LoadReport{Traces: tracesByOrd(e.load.traces, func(t TraceLoad) int { return t.ord })}
	p1, p10, p60 := stats.NewDist(), stats.NewDist(), stats.NewDist()
	med := stats.NewDist()
	for _, d := range []*stats.Dist{p1, p10, p60, med} {
		d.Reserve(len(r.Traces))
	}
	entOver, wanOver, entTraces, wanTraces := 0, 0, 0, 0
	for _, t := range r.Traces {
		p1.Observe(t.Peak1s)
		p10.Observe(t.Peak10s)
		p60.Observe(t.Peak60s)
		med.Observe(t.Median)
		if t.RetransEnt > r.MaxRetransEnt {
			r.MaxRetransEnt = t.RetransEnt
		}
		if t.EntDataPkts >= 1000 {
			entTraces++
			if t.RetransEnt > 0.01 {
				entOver++
			}
		}
		if t.WanDataPkts >= 1000 {
			wanTraces++
			if t.RetransWan > 0.01 {
				wanOver++
			}
		}
	}
	hursts := stats.NewDist()
	for _, t := range r.Traces {
		if t.HurstOK {
			hursts.Observe(t.Hurst)
		}
	}
	r.MedianHurst = hursts.Median()
	r.Peak1s, r.Peak10s, r.Peak60s = p1.CDF(64), p10.CDF(64), p60.CDF(64)
	r.MedianOfMedians = med.Median()
	r.EntOver1Pct = frac(float64(entOver), float64(entTraces))
	r.WanOver1Pct = frac(float64(wanOver), float64(wanTraces))
	return r
}

func (e *epochAgg) hostileReport() HostileReport {
	h := &e.hostile
	return HostileReport{
		Streams:             h.streams,
		IngestBytes:         h.ingest,
		DeliveredBytes:      h.delivered,
		DuplicateBytes:      h.duplicate,
		ConflictBytes:       h.conflict,
		DiscardedBytes:      h.discarded,
		GapSkippedBytes:     h.gapSkipped,
		GapEvents:           h.gapEvents,
		WrapEvents:          h.wrapEvents,
		PeakPendingBytes:    h.peakPending,
		BogusRSTs:           h.bogusRST,
		PostRSTDataSegments: h.postRSTData,
		UndecodableFrames:   e.netLayer.Get("undecodable"),
		DuplicateFrac:       frac(float64(h.duplicate), float64(h.ingest)),
		ConflictFrac:        frac(float64(h.conflict), float64(h.ingest)),
		GapFrac:             frac(float64(h.gapSkipped), float64(h.delivered+h.gapSkipped)),
	}
}

func (e *epochAgg) sourceErrorReport() SourceErrorReport {
	r := SourceErrorReport{
		AgedOutConns:    e.agedOut,
		CapEvictedConns: e.capEvicted,
	}
	if len(e.srcErrs) == 0 {
		return r
	}
	r.ByKind = make(map[string]int64)
	r.Traces = tracesByOrd(e.srcErrs, func(t TraceSourceErrors) int { return t.ord })
	for _, t := range e.srcErrs {
		r.Errors += t.Errors
		r.LostBytes += t.LostBytes
		for k, n := range t.ByKind {
			r.ByKind[k] += n
		}
	}
	return r
}

// findings produces Table 5's qualitative summary from the measured data.
func findings(r *Report) []string {
	var f []string
	if auto, ok := maxAutomated(r.HTTP); ok {
		f = append(f, fmt.Sprintf("§5.1.1 Automated HTTP clients account for %s of internal requests and %s of internal HTTP bytes (largest: %s).",
			stats.Pct(totalAutomatedReq(r.HTTP)), stats.Pct(totalAutomatedBytes(r.HTTP)), auto))
	}
	if r.Email.MedianIMAPSDurEnt > 0 && r.Email.MedianIMAPSDurWan > 0 {
		f = append(f, fmt.Sprintf("§5.1.2 Internal IMAP/S connections last %.0fx longer than WAN ones (medians %.1fs vs %.1fs).",
			r.Email.MedianIMAPSDurEnt/r.Email.MedianIMAPSDurWan, r.Email.MedianIMAPSDurEnt, r.Email.MedianIMAPSDurWan))
	}
	if r.Names.NBNSFailureRate > 0 {
		f = append(f, fmt.Sprintf("§5.1.3 Netbios/NS queries fail %s of the time vs %s for DNS.",
			stats.Pct(r.Names.NBNSFailureRate), stats.Pct(r.Names.DNSRcodes["NXDOMAIN"])))
	}
	if pipes := r.Windows.CIFSRequests["RPC Pipes"]; pipes > 0 {
		f = append(f, fmt.Sprintf("§5.2.1 DCE/RPC named pipes carry %s of CIFS requests; Windows File Sharing %s.",
			stats.Pct(pipes), stats.Pct(r.Windows.CIFSRequests["Windows File Sharing"])))
	}
	rw := r.FileSvc.NFSRequestMix["Read"] + r.FileSvc.NFSRequestMix["Write"] + r.FileSvc.NFSRequestMix["GetAttr"]
	if rw > 0 {
		f = append(f, fmt.Sprintf("§5.2.2 Read/write/attr operations make up %s of NFS requests.", stats.Pct(rw)))
	}
	if r.Backup.Conns["DANTZ"] > 0 {
		f = append(f, fmt.Sprintf("§5.2.3 %s of Dantz connections carry ≥100KB in both directions; Veritas data flows only client→server.",
			stats.Pct(r.Backup.DantzBidirFrac)))
	}
	return f
}

func maxAutomated(h HTTPReport) (string, bool) {
	// Ties break by name so the finding text is deterministic.
	best, bestV := "", 0.0
	for k, v := range h.Automated {
		if v.ByteFrac > bestV || (v.ByteFrac == bestV && best != "" && k < best) {
			best, bestV = k, v.ByteFrac
		}
	}
	return best, best != ""
}

func totalAutomatedReq(h HTTPReport) float64 {
	var t float64
	for _, v := range h.Automated {
		t += v.ReqFrac
	}
	return t
}

func totalAutomatedBytes(h HTTPReport) float64 {
	var t float64
	for _, v := range h.Automated {
		t += v.ByteFrac
	}
	return t
}
