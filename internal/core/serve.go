package core

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ReportServer exposes a long-running analysis over HTTP:
//
//	GET /healthz            — liveness plus progress (packets, watermark,
//	                          window counts)
//	GET /report/latest      — the most recently completed window, JSON
//	GET /report/window/<n>  — window n (0-based), JSON
//	GET /report/final       — the cumulative report, once analysis ends
//
// Window endpoints are live views: they reflect everything banked so
// far, while analysis is still streaming. They require the analyzer to
// be windowed (Options.Window > 0); without windowing only /healthz and
// /report/final respond.
type ReportServer struct {
	a   *Analyzer
	mux *http.ServeMux

	// finalJSON is written once by SetFinal (on the analysis goroutine)
	// and read by handlers; atomic, since the two race by design.
	finalJSON atomic.Pointer[[]byte]

	// Stall detection: /healthz tracks a progress signature (packets
	// seen, watermark) and reports the server degraded once it stops
	// advancing for stallAfter of wall time — a stuck source looks
	// healthy to every other probe, since the process itself is fine.
	mu          sync.Mutex
	stallAfter  time.Duration
	lastPackets int64
	lastMark    time.Time
	lastAdvance time.Time
}

// DefaultStallThreshold is how long /healthz lets the progress
// signature sit still before reporting the run degraded.
const DefaultStallThreshold = 30 * time.Second

// SetStallThreshold overrides the watermark-stall threshold; d <= 0
// disables stall detection. Call before serving.
func (s *ReportServer) SetStallThreshold(d time.Duration) { s.stallAfter = d }

// NewReportServer returns a server over a (the handlers use only the
// Analyzer's concurrency-safe accessors).
func NewReportServer(a *Analyzer) *ReportServer {
	s := &ReportServer{a: a, mux: http.NewServeMux(), stallAfter: DefaultStallThreshold}
	s.mux.HandleFunc("/healthz", s.healthz)
	s.mux.HandleFunc("/report/latest", s.latest)
	s.mux.HandleFunc("/report/window/", s.window)
	s.mux.HandleFunc("/report/final", s.final)
	return s
}

// SetFinal publishes the cumulative report. Call it from the analysis
// goroutine after the last trace; handlers serve 404 on /report/final
// until then. The report is marshaled once, here, so handlers never
// touch the analyzer's aggregates after analysis ends.
func (s *ReportServer) SetFinal(r *Report) error {
	b, err := MarshalReport(r)
	if err != nil {
		return err
	}
	s.finalJSON.Store(&b)
	return nil
}

// ServeHTTP implements http.Handler.
func (s *ReportServer) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	s.mux.ServeHTTP(w, req)
}

type healthStatus struct {
	// Status is "ok", or "degraded" when the run has folded source
	// errors or the progress signature has stalled past the threshold.
	Status           string
	Packets          int64
	Windowing        bool
	WindowDuration   string `json:",omitempty"`
	Watermark        string `json:",omitempty"`
	Windows          int
	CompletedWindows int
	FinalReady       bool
	// LiveConns is the resident connection count; SourceErrors the
	// running degraded-run error count.
	LiveConns    int64
	SourceErrors int64
	// Draining marks a graceful shutdown in progress.
	Draining bool `json:",omitempty"`
	// StallSeconds is how long the progress signature has been still,
	// present only once past the stall threshold.
	StallSeconds float64 `json:",omitempty"`
}

// stallAge reports how long the (packets, watermark) progress signature
// has been unchanged, or 0 while it is still advancing (or stall
// detection is off). The clock arms at the first probe, so a server
// nobody polls never accumulates a phantom stall.
func (s *ReportServer) stallAge(packets int64, mark time.Time) time.Duration {
	if s.stallAfter <= 0 {
		return 0
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.lastAdvance.IsZero() || packets != s.lastPackets || !mark.Equal(s.lastMark) {
		s.lastPackets, s.lastMark, s.lastAdvance = packets, mark, now
		return 0
	}
	return now.Sub(s.lastAdvance)
}

func (s *ReportServer) healthz(w http.ResponseWriter, req *http.Request) {
	h := healthStatus{
		Status:           "ok",
		Packets:          s.a.PacketsSeen(),
		Windowing:        s.a.Windowing(),
		Windows:          s.a.WindowCount(),
		CompletedWindows: s.a.LatestWindowIndex() + 1,
		FinalReady:       s.finalJSON.Load() != nil,
		LiveConns:        s.a.LiveConns(),
		SourceErrors:     s.a.SourceErrorsSeen(),
		Draining:         s.a.Stopping(),
	}
	wm := s.a.Watermark()
	if h.Windowing {
		h.WindowDuration = s.a.WindowDuration().String()
		if !wm.IsZero() {
			h.Watermark = wm.UTC().Format(time.RFC3339Nano)
		}
	}
	// A finished run can't advance and isn't stalled; a draining one is
	// expected to stop moving.
	if !h.FinalReady && !h.Draining {
		if age := s.stallAge(h.Packets, wm); age > s.stallAfter {
			h.Status = "degraded"
			h.StallSeconds = age.Seconds()
		}
	}
	if h.SourceErrors > 0 {
		h.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *ReportServer) latest(w http.ResponseWriter, req *http.Request) {
	if !s.a.Windowing() {
		httpError(w, http.StatusNotFound, "windowing disabled; run with -window")
		return
	}
	n := s.a.LatestWindowIndex()
	if n < 0 {
		httpError(w, http.StatusNotFound, "no completed window yet")
		return
	}
	s.serveWindow(w, n)
}

func (s *ReportServer) window(w http.ResponseWriter, req *http.Request) {
	if !s.a.Windowing() {
		httpError(w, http.StatusNotFound, "windowing disabled; run with -window")
		return
	}
	raw := strings.TrimPrefix(req.URL.Path, "/report/window/")
	n, err := strconv.Atoi(raw)
	if err != nil {
		httpError(w, http.StatusBadRequest, "window index must be an integer")
		return
	}
	s.serveWindow(w, n)
}

func (s *ReportServer) serveWindow(w http.ResponseWriter, n int) {
	wr, ok := s.a.WindowReport(n)
	if !ok {
		httpError(w, http.StatusNotFound, "no such window")
		return
	}
	b, err := MarshalReport(wr.Report)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(append(b, '\n'))
}

func (s *ReportServer) final(w http.ResponseWriter, req *http.Request) {
	b := s.finalJSON.Load()
	if b == nil {
		httpError(w, http.StatusNotFound, "analysis still running")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(*b)
	w.Write([]byte("\n"))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(b, '\n'))
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
