package core

import (
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"enttrace/internal/appproto/http"
	"enttrace/internal/appproto/smtp"
	"enttrace/internal/flows"
	"enttrace/internal/layers"
)

var (
	hostA = netip.MustParseAddr("128.3.2.10")
	hostB = netip.MustParseAddr("128.3.7.2")
	hostW = netip.MustParseAddr("198.128.1.1")
)

func tcpConn(src, dst netip.Addr, sport, dport uint16, state flows.State) *flows.Conn {
	c := &flows.Conn{
		Key:   layers.FlowKey{Proto: layers.ProtoTCP, Src: src, Dst: dst, SrcPort: sport, DstPort: dport},
		Proto: layers.ProtoTCP,
		State: state,
		Start: time.Unix(100, 0),
		Last:  time.Unix(101, 0),
	}
	if state == flows.StateEstablished {
		c.RespPkts = 1
	}
	return c
}

func TestWinPairFolding(t *testing.T) {
	ap := newAppAggregates()
	// Same pair: rejected then established → established wins.
	ap.winPair("CIFS", tcpConn(hostA, hostB, 40000, 445, flows.StateRejected))
	ap.winPair("CIFS", tcpConn(hostA, hostB, 40001, 445, flows.StateEstablished))
	// Reverse-direction conn is the same pair.
	ap.winPair("CIFS", tcpConn(hostB, hostA, 40002, 445, flows.StateAttempted))
	if n := len(ap.winPairs["CIFS"]); n != 1 {
		t.Fatalf("pairs = %d, want 1", n)
	}
	for _, st := range ap.winPairs["CIFS"] {
		if st != flows.StateEstablished {
			t.Errorf("state = %v, want established", st)
		}
	}
	// A different pair stays rejected.
	other := netip.MustParseAddr("128.3.4.4")
	ap.winPair("CIFS", tcpConn(other, hostB, 40003, 445, flows.StateRejected))
	if len(ap.winPairs["CIFS"]) != 2 {
		t.Error("second pair missing")
	}
}

func TestEmailAggLocalitySplit(t *testing.T) {
	e := newEmailAgg()
	ent := tcpConn(hostA, hostB, 40000, 25, flows.StateEstablished)
	ent.OrigBytes = 5000
	e.conn("SMTP", false, ent)
	wan := tcpConn(hostA, hostW, 40001, 25, flows.StateEstablished)
	wan.OrigBytes = 9000
	wan.Last = wan.Start.Add(4 * time.Second)
	e.conn("SMTP", true, wan)
	if e.bytesByProto.Get("SMTP") != 14000 {
		t.Errorf("smtp bytes = %d", e.bytesByProto.Get("SMTP"))
	}
	if e.durations["SMTP/ent"].N() != 1 || e.durations["SMTP/wan"].N() != 1 {
		t.Error("duration split wrong")
	}
	if got := e.sizes["SMTP/wan"].Median(); got != 9000 {
		t.Errorf("wan size = %v", got)
	}
	rate, n := e.successRate("SMTP/ent")
	if rate != 1 || n != 1 {
		t.Errorf("success = %v n=%d", rate, n)
	}
}

func TestEmailAggIMAPUsesServerBytes(t *testing.T) {
	e := newEmailAgg()
	c := tcpConn(hostA, hostB, 40000, 993, flows.StateEstablished)
	c.OrigBytes, c.RespBytes = 400, 90000 // mailbox flows to the client
	e.conn("IMAP/S", false, c)
	if got := e.sizes["IMAP/S/ent"].Median(); got != 90000 {
		t.Errorf("imaps size = %v, want server→client bytes", got)
	}
	if e.bytesByProto.Get("SIMAP") != 90400 {
		t.Errorf("table8 key: %v", e.bytesByProto.Keys())
	}
}

func TestEmailAggTable8Buckets(t *testing.T) {
	e := newEmailAgg()
	for _, proto := range []string{"POP3", "POP/S", "LDAP"} {
		c := tcpConn(hostA, hostB, 40000, 110, flows.StateEstablished)
		c.OrigBytes = 100
		e.conn(proto, false, c)
	}
	if e.bytesByProto.Get("Other") != 300 {
		t.Errorf("Other bucket = %d", e.bytesByProto.Get("Other"))
	}
}

func TestHTTPAggAutomatedSeparation(t *testing.T) {
	h := newHTTPAgg()
	conn := tcpConn(hostA, hostB, 40000, 80, flows.StateEstablished)
	reqs := []http.Request{
		{Method: "GET", URI: "/a", UserAgent: "Mozilla/4.0"},
		{Method: "GET", URI: "/b", UserAgent: "LBNL-Site-Scanner/1.2"},
	}
	resps := []http.Response{
		{Status: 200, ContentType: "text/html", BodyLen: 1000},
		{Status: 404, ContentType: "text/html", BodyLen: 200},
	}
	h.conn(conn, false, reqs, resps)
	if h.reqTotal["ent"] != 2 {
		t.Errorf("total = %d", h.reqTotal["ent"])
	}
	if h.byClass[http.ClientScanner] == nil || h.byClass[http.ClientScanner].Reqs != 1 {
		t.Error("scanner share missing")
	}
	if !h.automated[hostA] {
		t.Error("client not flagged automated")
	}
	// The browser request contributed to content stats; the scanner's
	// 404 did not (non-2xx).
	if h.contentReq["ent"].Get("text") != 1 {
		t.Errorf("content classes: %v", h.contentReq["ent"].Keys())
	}
}

func TestHTTPAggConditionalSavings(t *testing.T) {
	h := newHTTPAgg()
	conn := tcpConn(hostA, hostB, 40000, 80, flows.StateEstablished)
	h.conn(conn, false,
		[]http.Request{
			{Method: "GET", Conditional: true},
			{Method: "GET"},
		},
		[]http.Response{
			{Status: 304},
			{Status: 200, ContentType: "image/gif", BodyLen: 5000},
		})
	c := h.conditional["ent"]
	if c.Cond != 1 || c.Total != 2 {
		t.Errorf("cond = %+v", c)
	}
	if c.CondBytes != 0 || c.Bytes != 5000 {
		t.Errorf("cond bytes = %+v", c)
	}
}

func TestSMTPParsedCounts(t *testing.T) {
	ap := newAppAggregates()
	ap.smtpParsed(false, smtp.Result{Accepted: true, MessageBytes: 100})
	ap.smtpParsed(true, smtp.Result{Rejected: true})
	if ap.email.smtpAccepted != 1 || ap.email.smtpRejected != 1 {
		t.Errorf("smtp parse counts: %d/%d", ap.email.smtpAccepted, ap.email.smtpRejected)
	}
}

func TestTransportConnBackupAccounting(t *testing.T) {
	ap := newAppAggregates()
	opts := Options{}
	opts.fill()
	classified := func(c *flows.Conn) string {
		name, _ := opts.Registry.Classify(c.Proto, c.Key.Src, c.Key.Dst, c.Key.SrcPort, c.Key.DstPort)
		return name
	}
	dantz := tcpConn(hostA, hostB, 40000, 497, flows.StateEstablished)
	dantz.OrigBytes, dantz.RespBytes = 200<<10, 150<<10
	ap.transportConn(dantz, classified(dantz), opts.IsLocal)
	oneway := tcpConn(hostA, hostB, 40001, 497, flows.StateEstablished)
	oneway.OrigBytes = 500 << 10
	ap.transportConn(oneway, classified(oneway), opts.IsLocal)
	if ap.dantzConns != 2 || ap.dantzBidir != 1 {
		t.Errorf("dantz: conns=%d bidir=%d", ap.dantzConns, ap.dantzBidir)
	}
	veritas := tcpConn(hostA, hostB, 40002, 13724, flows.StateEstablished)
	veritas.OrigBytes = 1 << 20
	ap.transportConn(veritas, classified(veritas), opts.IsLocal)
	if ap.backupBytes.Get("VERITAS-BACKUP-DATA") != 1<<20 {
		t.Error("veritas bytes")
	}
}

func TestTransportConnSSH(t *testing.T) {
	ap := newAppAggregates()
	opts := Options{}
	opts.fill()
	small := tcpConn(hostA, hostB, 40000, 22, flows.StateEstablished)
	small.OrigBytes, small.OrigPkts = 4000, 80
	ap.transportConn(small, "SSH", opts.IsLocal)
	big := tcpConn(hostA, hostB, 40001, 22, flows.StateEstablished)
	big.OrigBytes, big.OrigPkts = 500<<10, 400
	ap.transportConn(big, "SSH", opts.IsLocal)
	if ap.sshConns != 2 || ap.sshBulk != 1 {
		t.Errorf("ssh: conns=%d bulk=%d", ap.sshConns, ap.sshBulk)
	}
}

func TestMarkNCPKeepAlive(t *testing.T) {
	ap := newAppAggregates()
	ka := tcpConn(hostA, hostB, 40000, 524, flows.StateEstablished)
	ka.KeepAliveRetrans, ka.OrigBytes, ka.RespBytes = 20, 22, 0
	ap.markNCPKeepAlive(ka)
	active := tcpConn(hostA, hostB, 40001, 524, flows.StateEstablished)
	active.OrigBytes, active.RespBytes = 50000, 90000
	ap.markNCPKeepAlive(active)
	if ap.ncpKeepAliveOnly != 1 {
		t.Errorf("keepalive-only = %d", ap.ncpKeepAliveOnly)
	}
}

func TestWriteFigureData(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end analysis in -short mode")
	}
	r := analyzeScaled(t, enterpriseD3ForFig(), 0.15, 4)
	dir := t.TempDir()
	if err := WriteFigureData(dir, r); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 9 {
		t.Fatalf("wrote %d files, want 9", len(entries))
	}
	data, err := os.ReadFile(filepath.Join(dir, r.Dataset+"-fig02-fan.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "fan-out-ent") {
		t.Error("series label missing")
	}
	ret, err := os.ReadFile(filepath.Join(dir, r.Dataset+"-fig10-retransmission.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(strings.Split(strings.TrimSpace(string(ret)), "\n")) < 2 {
		t.Error("figure 10 has no trace rows")
	}
}
