package core

import (
	"math/rand"
	"testing"

	"enttrace/internal/enterprise"
	"enttrace/internal/gen"
	"enttrace/internal/pcap"
)

// TestCorruptedTraceRobustness injects random corruption into a generated
// trace — flipped bytes, truncated frames, duplicated and dropped
// packets — and verifies the full pipeline neither panics nor produces
// degenerate output. Real captures contain exactly this kind of damage
// (the paper observed receivers ACKing data absent from the trace).
func TestCorruptedTraceRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end analysis in -short mode")
	}
	cfg := enterprise.D3()
	cfg.Scale = 0.15
	cfg.Monitored = []int{5, 6}
	ds := gen.GenerateDataset(cfg)
	rng := rand.New(rand.NewSource(99))

	for _, tr := range ds.Traces {
		var mangled []*pcap.Packet
		for _, pk := range tr.Packets {
			r := rng.Float64()
			switch {
			case r < 0.02: // drop
				continue
			case r < 0.04: // duplicate
				mangled = append(mangled, pk, pk)
			case r < 0.08: // flip a byte
				cp := make([]byte, len(pk.Data))
				copy(cp, pk.Data)
				if len(cp) > 0 {
					cp[rng.Intn(len(cp))] ^= 0xFF
				}
				mangled = append(mangled, &pcap.Packet{Timestamp: pk.Timestamp, Data: cp, OrigLen: pk.OrigLen})
			case r < 0.12: // truncate mid-frame
				n := 1 + rng.Intn(len(pk.Data))
				mangled = append(mangled, &pcap.Packet{Timestamp: pk.Timestamp, Data: pk.Data[:n], OrigLen: pk.OrigLen})
			default:
				mangled = append(mangled, pk)
			}
		}
		tr.Packets = mangled
	}

	a := NewAnalyzer(Options{Dataset: "corrupt", KnownScanners: enterprise.KnownScanners(), PayloadAnalysis: true})
	for _, tr := range ds.Traces {
		if err := a.AddTrace(TraceInput{Name: "m", Monitored: tr.Prefix, Packets: tr.Packets}); err != nil {
			t.Fatal(err)
		}
	}
	r := a.Report()
	if r.Table1.Packets == 0 || r.Table3.TotalConns == 0 {
		t.Fatal("corrupted trace produced no output")
	}
	// The broad shapes survive 10% corruption.
	if r.Table2["IP"] < 0.8 {
		t.Errorf("IP fraction collapsed to %v", r.Table2["IP"])
	}
	if r.Table3.ConnsFrac["UDP"] < 0.4 {
		t.Errorf("UDP conn share collapsed to %v", r.Table3.ConnsFrac["UDP"])
	}
}

// TestEmptyAndTinyTraces exercises degenerate inputs.
func TestEmptyAndTinyTraces(t *testing.T) {
	a := NewAnalyzer(Options{Dataset: "tiny"})
	if err := a.AddTrace(TraceInput{Name: "empty", Monitored: enterprise.SubnetPrefix(1)}); err != nil {
		t.Fatal(err)
	}
	r := a.Report()
	if r.Table1.Packets != 0 || r.Scan.RemovedFraction != 0 {
		t.Errorf("empty trace: %+v", r.Table1)
	}
	if len(r.Findings) > 2 {
		t.Errorf("findings from nothing: %v", r.Findings)
	}
}
