// Package core is the paper's analysis pipeline as a library: it consumes
// packet traces (generated or read from pcap files), performs the §3
// scanner removal, and produces every table and figure of the paper as
// structured data — network/transport/application breakdowns, locality
// and origins, per-application characterizations, and network load.
//
// The pipeline mirrors the paper's Bro-based methodology: packets are
// decoded, grouped into connections, TCP streams are reassembled and
// handed to application analyzers, and all statistics are computed from
// what is visible on the wire.
package core

import (
	"io"
	"net/netip"
	"runtime"
	"sync/atomic"
	"time"

	"enttrace/internal/categories"
	"enttrace/internal/enterprise"
	"enttrace/internal/flows"
	"enttrace/internal/layers"
	"enttrace/internal/pcap"
	"enttrace/internal/pipeline"
	"enttrace/internal/scan"
)

// Options configures an Analyzer.
type Options struct {
	// Dataset labels the report (e.g. "D3").
	Dataset string
	// Registry classifies connections; nil uses the Table 4 registry.
	Registry *categories.Registry
	// KnownScanners are removed regardless of the heuristic.
	KnownScanners []netip.Addr
	// IsLocal classifies enterprise addresses; nil uses the 128.3/16
	// default.
	IsLocal func(netip.Addr) bool
	// PayloadAnalysis enables application-layer parsing. The paper
	// disables it for the 68-byte-snaplen datasets (D1, D2).
	PayloadAnalysis bool
	// LinkCapacityMbps is the subnet link speed for utilization; the
	// paper's networks were 100 Mbps.
	LinkCapacityMbps float64
	// Workers is the streaming pipeline's shard count; 0 uses GOMAXPROCS.
	// Reports are bit-identical for any worker count.
	Workers int
	// ReplayWorkers is the deterministic replay's worker count: the
	// application-analysis stage (payload parsing, UDP message dispatch,
	// transport accumulation) fans out across this many goroutines, each
	// accumulating into its own aggregate shard, merged canonically at
	// report time. 0 uses GOMAXPROCS. Reports are bit-identical for any
	// count. A caller-supplied IsLocal must be safe for concurrent use
	// regardless of this count: even a single replay worker runs as a
	// goroutine overlapping the trace-load accounting, and both sides
	// consult IsLocal.
	ReplayWorkers int
	// BatchSize is packets per pipeline dispatch batch; 0 uses the
	// pipeline default.
	BatchSize int
	// Window enables epoch rotation: when > 0, the analyzer cuts the
	// run into windows of this duration in packet time (aligned to the
	// first packet of the first trace) and makes a per-window Report
	// available for each, while the cumulative report stays
	// byte-identical to a run without windowing. 0 disables windowing;
	// the batch path is then untouched.
	Window time.Duration
	// OnWindow, when set (requires Window > 0), receives each window's
	// report as the event-time watermark passes its end. Reports emitted
	// mid-run are provisional when later traces overlap the window in
	// event time; WindowReports() at end of run is the canonical view.
	// The callback runs on the analysis goroutine between traces.
	OnWindow func(*WindowReport)
	// OnError selects the source read-error policy. The zero value is
	// pipeline.FailFast (any source error aborts the trace, the
	// historical behavior); pipeline.Degrade skips poisoned records,
	// keeps the healthy traffic, and folds a SourceError census into the
	// report instead.
	OnError pipeline.ErrorPolicy
	// IdleEvict, when > 0, ends any connection idle past this horizon
	// and sweeps it out of the live table, bounding memory on indefinite
	// runs. Evicted-then-revived flows split deterministically (the
	// split depends only on the flow's own timestamps), and connections
	// still idle past the horizon at end of trace are counted as the
	// report's AgedOut disposition — computed from the trace-wide
	// event-time extent, so it is bit-identical for any worker count.
	IdleEvict time.Duration
	// MaxConns, when > 0, hard-bounds the live connection count across
	// all shards (each shard gets an equal slice). A lossy backstop: when
	// it fires, reports are no longer worker-count-invariant, and the
	// eviction count is surfaced in the report so such runs are
	// identifiable.
	MaxConns int
	// WindowOrigin, when set (requires Window > 0), pins the window
	// clock instead of aligning it to the first packet. Fleet members
	// must share one origin so every site cuts windows on the same
	// boundaries as the aggregator's single-instance equivalent.
	WindowOrigin time.Time
	// TraceBase offsets this analyzer's trace ordinals (the per-trace
	// sequence numbers that key cross-trace application state and order
	// FTP session lists). A fleet member analyzing traces k..k+m-1 of
	// the logical concatenated run sets TraceBase=k so its exported
	// snapshots merge into the same canonical order a single instance
	// over all traces would produce.
	TraceBase int
}

func (o *Options) fill() {
	if o.Registry == nil {
		o.Registry = categories.NewRegistry()
	}
	if o.IsLocal == nil {
		o.IsLocal = enterprise.IsLocal
	}
	if o.LinkCapacityMbps == 0 {
		o.LinkCapacityMbps = 100
	}
}

// TraceInput is one monitored-subnet trace.
type TraceInput struct {
	Name string
	// Monitored is the traced subnet's prefix; hosts inside it count as
	// "monitored" for fan-in/fan-out.
	Monitored netip.Prefix
	Packets   []*pcap.Packet
}

// Analyzer accumulates dataset-wide statistics across traces.
type Analyzer struct {
	opts Options

	// cum is the cumulative aggregate: every report-feeding accumulator
	// for the whole run. The batch path accumulates into it directly;
	// the windowed path folds banked per-window deltas into it in
	// banking order, which yields byte-identical final reports.
	cum *epochAgg

	// win is the epoch-rotation state; nil when Options.Window == 0.
	win *windowState

	// apps holds the serial (phase A) application state — the Endpoint
	// Mapper PDU accounting that rides along with port registration.
	// Everything else application-level accumulates in replayShards.
	apps *appAggregates

	// replayShards are the parallel replay's per-worker aggregates. They
	// persist across traces (a host pair always hashes to the same
	// shard, so cross-trace pairing state — DNS retries, RPC binds —
	// stays shard-local) and merge with apps at report time. In
	// windowed mode each shard's banked statistics are cut into window
	// deltas as its worker crosses boundaries; only pairing state
	// persists in the shard between cuts.
	replayShards []*appAggregates

	// cumApps/cumConns are the windowed mode's per-worker running
	// cumulative aggregates: each worker folds its own cut deltas into
	// its slot (lock-free, parallel with the other shards), and Report
	// drains the slots in shard order — the same canonical order the
	// batch path's mergedApps uses, which is what keeps the windowed
	// cumulative report byte-identical to batch.
	cumApps  []*appAggregates
	cumConns []*connAggregates

	traceCount int

	// packetsSeen mirrors cum.totalPackets for lock-free progress reads
	// (the serve-mode health endpoint polls it mid-trace).
	packetsSeen atomic.Int64

	// stopFlag requests a graceful drain: the pipeline stops reading at
	// the next packet boundary, drains what is already routed, and the
	// in-flight Add* returns normally with everything processed so far
	// accounted.
	stopFlag atomic.Bool

	// liveConns is the resident connection count across every shard
	// table (serve-mode health reads it mid-trace).
	liveConns atomic.Int64

	// srcErrsLive counts source errors as the Degrade policy folds them,
	// ahead of the end-of-trace census (health endpoints poll it).
	srcErrsLive atomic.Int64

	// pool recycles capture buffers across AddTraceReader calls.
	pool *pcap.Pool
}

// Stop requests a graceful drain of any in-flight Add* call: intake
// stops at the next packet boundary, already-routed packets drain, and
// the call returns normally with everything read so far accounted.
// Subsequent Add* calls return immediately without reading. Safe for
// concurrent use (signal handlers, HTTP handlers).
func (a *Analyzer) Stop() { a.stopFlag.Store(true) }

// Stopping reports whether Stop has been called.
func (a *Analyzer) Stopping() bool { return a.stopFlag.Load() }

// LiveConns returns the resident (not yet finished) connection count
// across all shard tables. Safe for concurrent use with Add*.
func (a *Analyzer) LiveConns() int64 { return a.liveConns.Load() }

// SourceErrorsSeen returns the running count of source read errors the
// Degrade policy has folded, across all traces, updated mid-trace.
// Safe for concurrent use with Add*.
func (a *Analyzer) SourceErrorsSeen() int64 { return a.srcErrsLive.Load() }

// locSplit separates enterprise-internal from WAN-crossing traffic.
type locSplit struct {
	Ent, Wan int64
}

// NewAnalyzer returns an Analyzer for one dataset.
func NewAnalyzer(opts Options) *Analyzer {
	opts.fill()
	a := &Analyzer{
		opts: opts,
		cum:  newEpochAgg(),
		apps: newAppAggregates(),
	}
	a.traceCount = opts.TraceBase
	if opts.Window > 0 {
		a.win = newWindowState(opts.Dataset, opts.Window, opts.OnWindow)
		a.win.setOrigin(opts.WindowOrigin)
	}
	return a
}

// AddTrace processes one in-memory trace through the streaming pipeline.
func (a *Analyzer) AddTrace(tr TraceInput) error {
	return a.addSource(tr.Name, tr.Monitored, pcap.NewSliceSource(tr.Packets))
}

// AddTraceReader streams one pcap trace through the pipeline without
// materializing it: packets are read incrementally through a recycled
// packet pool (near-zero allocation per packet), decoded in batches, and
// sharded across the configured worker count. The pool is per-Analyzer,
// so buffers are reused across successive traces.
func (a *Analyzer) AddTraceReader(name string, monitored netip.Prefix, r io.Reader) error {
	rd, err := pcap.NewReader(r)
	if err != nil {
		return err
	}
	if a.pool == nil {
		a.pool = pcap.NewPool()
	}
	return a.addSource(name, monitored, pcap.NewPooledReader(rd, a.pool))
}

// AddTraceSource runs one trace from an arbitrary packet source through
// the pipeline — this is the analyzer's ingest seam. A source can be a
// pcap.Merger over several taps, a replayed file, or a gen.StreamSource
// synthesizing frames on the fly (the soak-mode load harness): the
// analysis below the seam is source-blind, so a streamed schedule and a
// pcap round-trip of the same frames report byte-identically. If src
// implements pcap.Releaser, its packets are recycled as soon as analysis
// is done with them, keeping memory bounded however long the source
// runs. See DESIGN.md "Packet sources".
func (a *Analyzer) AddTraceSource(name string, monitored netip.Prefix, src pcap.PacketSource) error {
	return a.addSource(name, monitored, src)
}

// addSource runs one trace through the sharded pipeline and merges the
// per-shard results deterministically: packet-level accumulators merge in
// shard order (all integer/set unions), and everything order-sensitive —
// scanner detection, dynamic port registration, application parsing —
// replays in global first-packet order, which is identical for any
// worker count.
func (a *Analyzer) addSource(name string, monitored netip.Prefix, src pipeline.Source) error {
	// MaxConns bounds the whole run; each shard table gets an equal
	// slice of it.
	perShard := 0
	if a.opts.MaxConns > 0 {
		workers := a.opts.Workers
		if workers <= 0 {
			workers = runtime.GOMAXPROCS(0)
		}
		perShard = a.opts.MaxConns / workers
		if perShard < 1 {
			perShard = 1
		}
	}
	var sinks []*shardSink
	var traceBase time.Time
	res, err := pipeline.Run(src, pipeline.Config{
		Workers:   a.opts.Workers,
		BatchSize: a.opts.BatchSize,
		Flows: flows.Config{
			IdleTimeout: a.opts.IdleEvict,
			MaxConns:    perShard,
			LiveGauge:   &a.liveConns,
		},
		OnError:    a.opts.OnError,
		Stopped:    a.stopFlag.Load,
		ErrCounter: &a.srcErrsLive,
		NewSink: func(shard int, base time.Time) pipeline.Sink {
			traceBase = base
			s := newShardSink(&a.opts, monitored, base)
			sinks = append(sinks, s)
			return s
		},
	})
	if err != nil {
		return err
	}
	a.traceCount++
	a.packetsSeen.Add(res.Packets)

	// Trace-granular accumulation target: the cumulative aggregate in
	// batch mode; a fresh per-trace delta in windowed mode, banked into
	// the window containing the trace's last packet once the trace's
	// event-time extent (and hence the watermark) is known.
	tgt := a.cum
	if a.win != nil {
		if res.Packets > 0 {
			a.win.setOrigin(traceBase)
		}
		tgt = newEpochAgg()
	}
	tgt.totalPackets += res.Packets
	tgt.traceCount++

	// Degraded-run accounting: the trace's source-error census and the
	// MaxConns backstop's eviction count ride the same trace-granular
	// delta as every other accumulator, so windowed sums reconcile with
	// the cumulative.
	tgt.capEvicted += res.CapEvicted
	if len(res.SourceErrors) > 0 {
		tse := TraceSourceErrors{
			Trace:      name,
			ord:        a.traceCount,
			ByKind:     make(map[string]int64),
			FirstIndex: res.SourceErrors[0].Index,
			LastIndex:  res.SourceErrors[len(res.SourceErrors)-1].Index,
		}
		for _, se := range res.SourceErrors {
			tse.Errors++
			tse.LostBytes += se.Lost
			tse.ByKind[se.Kind]++
			if se.Terminal {
				tse.Terminal = true
			}
		}
		tgt.srcErrs = append(tgt.srcErrs, tse)
	}

	// Packet-level merges, in shard order. maxTS is the trace's
	// event-time extent: every shard has drained, so the slowest
	// worker's high-water mark is behind it.
	var maxTS time.Time
	shardBins := make([][]int64, 0, len(sinks))
	for _, s := range sinks {
		tgt.netLayer.Merge(s.netLayer)
		unionHosts(tgt.monitoredHosts, s.monHosts)
		unionHosts(tgt.localHosts, s.localHosts)
		unionHosts(tgt.remoteHosts, s.remoteHosts)
		if s.maxTS.After(maxTS) {
			maxTS = s.maxTS
		}
		shardBins = append(shardBins, s.bins)
	}
	perSec := mergedTraceLoad(name, shardBins)

	// Canonical connection order: by first packet, across all shards.
	recs := res.SortedConns()
	conns := make([]*flows.Conn, len(recs))
	for i, rec := range recs {
		conns[i] = rec.Conn
	}
	tgt.totalConns += len(conns)

	// §3 scanner removal, per trace.
	fres := scan.Filter(conns, a.opts.KnownScanners)
	tgt.removedConns += fres.RemovedConns
	for _, s := range fres.Scanners {
		tgt.scanners[s] = struct{}{}
	}
	kept := fres.Kept
	keptBy := keptSet(kept)

	// Application replay: UDP messages, dynamic registrations, transport
	// accumulation, payload parsing — all in canonical order. The serial
	// phase (dynamic registrations) runs inline and must precede the
	// connection-level accumulation below, which classifies against the
	// registry; the parallel phase is left in flight while that
	// accumulation runs, since the two touch disjoint state.
	streams := make(map[*flows.Conn]*connStreams)
	for _, s := range sinks {
		for c, st := range s.conns {
			streams[c] = st
		}
	}
	join := a.replayApps(recs, streams, mergeUDPEvents(sinks), keptBy, monitored, tgt, maxTS)

	// Trace load accounting overlaps the replay workers (it reads only
	// the per-second bins and connection fields, which nothing mutates).
	tgt.load.finishTrace(perSec, kept, a.opts.IsLocal, a.opts.LinkCapacityMbps, a.traceCount)
	join()

	if a.win != nil {
		// Bank the phase-A application residue (Endpoint Mapper PDU
		// accounting) and the trace-granular delta at the watermark,
		// then emit newly completed windows. Reset keeps the registry
		// pairing state (RPC binds) for later traces.
		a.win.finishTrace(a.cum, tgt, a.apps.cut(), maxTS)
	}
	return nil
}

// ensureReplayShards lazily builds the per-worker replay aggregates.
// The count is fixed at first use so the pair→shard assignment stays
// stable for the Analyzer's lifetime.
func (a *Analyzer) ensureReplayShards() []*appAggregates {
	if a.replayShards == nil {
		n := a.opts.ReplayWorkers
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		if n > maxReplayWorkers {
			n = maxReplayWorkers
		}
		a.replayShards = make([]*appAggregates, n)
		for i := range a.replayShards {
			a.replayShards[i] = newAppAggregates()
		}
		if a.win != nil {
			a.cumApps = make([]*appAggregates, n)
			a.cumConns = make([]*connAggregates, n)
			for i := range a.cumApps {
				a.cumApps[i] = newAppAggregates()
				a.cumConns[i] = newConnAggregates()
			}
		}
	}
	return a.replayShards
}

// maxReplayWorkers bounds the replay fan-out; beyond this the per-shard
// aggregate fixed costs outweigh any parallelism.
const maxReplayWorkers = 64

// mergedApps folds the serial aggregate and every replay shard into one
// view for the report, in canonical order: phase-A state first, then
// shards by index, with order-bearing collections (FTP sessions)
// restored to first-packet order. The sources are left untouched, so
// reports can interleave with further traces.
func (a *Analyzer) mergedApps() *appAggregates {
	if a.replayShards == nil {
		return a.apps
	}
	merged := newAppAggregates()
	merged.Merge(a.apps)
	for _, shard := range a.replayShards {
		merged.Merge(shard)
	}
	merged.sortFTPSessions()
	return merged
}

func unionHosts(dst, src map[netip.Addr]struct{}) {
	for h := range src {
		dst[h] = struct{}{}
	}
}

// PacketsSeen returns the running packet total across all traces added
// so far, for progress reporting by streaming callers. Safe for
// concurrent use with Add* (the serve-mode health endpoint polls it).
func (a *Analyzer) PacketsSeen() int64 { return a.packetsSeen.Load() }

func keptSet(conns []*flows.Conn) map[*flows.Conn]bool {
	m := make(map[*flows.Conn]bool, len(conns))
	for _, c := range conns {
		m[c] = true
	}
	return m
}

// accumulateConn feeds Table 3, Figure 1, and the §4 origin mix into a
// replay worker's connection-level shard (folded at join). cat is the
// connection's Figure 1 category from the phase-A classification
// snapshot, so every report section sees the same verdict and phase B
// never consults the registry.
func (a *Analyzer) accumulateConn(ca *connAggregates, c *flows.Conn, cat string) {
	var tname string
	switch c.Proto {
	case layers.ProtoTCP:
		tname = "TCP"
	case layers.ProtoUDP:
		tname = "UDP"
	case layers.ProtoICMP:
		tname = "ICMP"
	default:
		tname = "Other"
	}
	ca.transBytes.Add(tname, c.PayloadBytes())
	ca.transConns.Inc(tname)

	srcLocal := a.opts.IsLocal(c.Key.Src)
	dstLocal := a.opts.IsLocal(c.Key.Dst)

	// §4 origins.
	switch {
	case c.Multicast && srcLocal:
		ca.origins.Inc("multicast-internal")
	case c.Multicast:
		ca.origins.Inc("multicast-external")
	case srcLocal && dstLocal:
		ca.origins.Inc("ent-ent")
	case srcLocal:
		ca.origins.Inc("ent-wan")
	default:
		ca.origins.Inc("wan-ent")
	}

	// Figure 1 considers unicast traffic; multicast is reported
	// separately in the text.
	if cat == "" {
		return
	}
	wan := !(srcLocal && dstLocal)
	key := cat
	if c.Multicast {
		key = cat + "/multicast"
	}
	bs := ca.catBytes[key]
	if bs == nil {
		bs = &locSplit{}
		ca.catBytes[key] = bs
	}
	cs := ca.catConns[key]
	if cs == nil {
		cs = &locSplit{}
		ca.catConns[key] = cs
	}
	if wan {
		bs.Wan += c.PayloadBytes()
		cs.Wan++
	} else {
		bs.Ent += c.PayloadBytes()
		cs.Ent++
	}
}

// AddDataset is a convenience that runs every trace of a generated
// dataset through the analyzer.
func (a *Analyzer) AddDataset(traces []TraceInput) error {
	for _, tr := range traces {
		if err := a.AddTrace(tr); err != nil {
			return err
		}
	}
	return nil
}

// connLocality reports whether a connection crosses the enterprise border.
func connWAN(c *flows.Conn, isLocal func(netip.Addr) bool) bool {
	return !(isLocal(c.Key.Src) && isLocal(c.Key.Dst))
}
