package core

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"enttrace/internal/enterprise"
	"enttrace/internal/gen"
	"enttrace/internal/pcap"
)

// analyzeScaled generates a scaled-down dataset and runs the full
// pipeline — the reproduction's end-to-end path.
func analyzeScaled(t testing.TB, cfg enterprise.Config, scale float64, subnets int) *Report {
	t.Helper()
	cfg.Scale = scale
	if subnets > 0 && subnets < len(cfg.Monitored) {
		cfg.Monitored = cfg.Monitored[:subnets]
	}
	ds := gen.GenerateDataset(cfg)
	a := NewAnalyzer(Options{
		Dataset:         cfg.Name,
		KnownScanners:   enterprise.KnownScanners(),
		PayloadAnalysis: cfg.Snaplen >= 1500,
	})
	for _, tr := range ds.Traces {
		if err := a.AddTrace(TraceInput{
			Name:      tr.Prefix.String(),
			Monitored: tr.Prefix,
			Packets:   tr.Packets,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return a.Report()
}

func TestEndToEndD3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end analysis in -short mode")
	}
	cfg := enterprise.D3()
	// Keep the DNS/print subnets for vantage effects plus a few client
	// subnets.
	cfg.Monitored = []int{2, 3, 5, 6, enterprise.SubnetDNS, enterprise.SubnetPrint}
	cfg.Scale = 0.3
	ds := gen.GenerateDataset(cfg)
	a := NewAnalyzer(Options{Dataset: "D3", KnownScanners: enterprise.KnownScanners(), PayloadAnalysis: true})
	for _, tr := range ds.Traces {
		if err := a.AddTrace(TraceInput{Name: tr.Prefix.String(), Monitored: tr.Prefix, Packets: tr.Packets}); err != nil {
			t.Fatal(err)
		}
	}
	r := a.Report()

	// Table 2: IP dominates (> 95%).
	if r.Table2["IP"] < 0.90 {
		t.Errorf("IP fraction = %v, want > 0.90", r.Table2["IP"])
	}
	if r.Table2["ARP"] == 0 || r.Table2["IPX"] == 0 {
		t.Error("non-IP protocols missing")
	}

	// Table 3: bulk of bytes TCP, bulk of connections UDP.
	if r.Table3.BytesFrac["TCP"] < 0.5 {
		t.Errorf("TCP byte fraction = %v, want majority", r.Table3.BytesFrac["TCP"])
	}
	if r.Table3.ConnsFrac["UDP"] < 0.5 {
		t.Errorf("UDP conn fraction = %v, want majority", r.Table3.ConnsFrac["UDP"])
	}

	// Scanner removal in the paper's 4–18% band (loosely).
	if r.Scan.RemovedFraction < 0.005 || r.Scan.RemovedFraction > 0.3 {
		t.Errorf("scan removal fraction = %v", r.Scan.RemovedFraction)
	}
	if r.Scan.Scanners == 0 {
		t.Error("no scanners found")
	}

	// Figure 1: name services dominate connections; they carry almost no
	// bytes.
	var nameRow, backupRow CategoryRow
	for _, row := range r.Figure1 {
		switch row.Category {
		case "name":
			nameRow = row
		case "backup":
			backupRow = row
		}
	}
	if nameRow.ConnsTotal() < 0.25 {
		t.Errorf("name conns share = %v, want dominant", nameRow.ConnsTotal())
	}
	if nameRow.BytesTotal() > 0.05 {
		t.Errorf("name bytes share = %v, want ≈0", nameRow.BytesTotal())
	}
	if backupRow.BytesTotal() < 0.02 {
		t.Errorf("backup bytes share = %v, want significant", backupRow.BytesTotal())
	}

	// Origins: enterprise-to-enterprise unicast dominates.
	if r.Origins["ent-ent"] < 0.5 {
		t.Errorf("ent-ent origin = %v", r.Origins["ent-ent"])
	}
	if r.Origins["multicast-internal"] == 0 {
		t.Error("no internal multicast flows")
	}

	// Names: Netbios/NS fails much more often than DNS.
	if r.Names.NBNSFailureRate < 0.25 || r.Names.NBNSFailureRate > 0.6 {
		t.Errorf("NBNS failure rate = %v, want ≈0.43", r.Names.NBNSFailureRate)
	}
	if dns := r.Names.DNSRcodes["NXDOMAIN"]; dns > r.Names.NBNSFailureRate {
		t.Errorf("DNS failure (%v) should be below NBNS (%v)", dns, r.Names.NBNSFailureRate)
	}
	if r.Names.DNSMedianLatencyEntMs >= r.Names.DNSMedianLatencyWanMs {
		t.Errorf("internal DNS latency %vms should be far below WAN %vms",
			r.Names.DNSMedianLatencyEntMs, r.Names.DNSMedianLatencyWanMs)
	}

	// Windows: D3 vantage (print server) → Spoolss/WritePrinter dominates
	// DCE/RPC; RPC pipes beat file sharing in CIFS.
	if wp := r.Windows.RPCRequests["Spoolss/WritePrinter"]; wp < 0.3 {
		t.Errorf("WritePrinter share = %v, want dominant at print vantage", wp)
	}
	if r.Windows.CIFSRequests["RPC Pipes"] == 0 {
		t.Error("no RPC pipe traffic seen")
	}
	cifsOutcome := r.Windows.Table9["CIFS"]
	if cifsOutcome.Pairs == 0 || cifsOutcome.Rejected == 0 {
		t.Errorf("CIFS outcomes = %+v, want rejected pairs from parallel dialing", cifsOutcome)
	}
	// The paper's CIFS signature is mass rejection from parallel 139/445
	// dialing; Netbios/SSN sees almost none of it.
	ssn := r.Windows.Table9["Netbios/SSN"]
	if ssn.Rejected >= cifsOutcome.Rejected {
		t.Errorf("SSN rejected (%v) should be far below CIFS (%v)", ssn.Rejected, cifsOutcome.Rejected)
	}

	// File services: read/write/attr dominate; NFS mostly UDP pairs.
	mix := r.FileSvc.NFSRequestMix
	if mix["Read"]+mix["Write"]+mix["GetAttr"] < 0.5 {
		t.Errorf("NFS request mix = %v", mix)
	}
	if r.FileSvc.NFSUDPPairs <= r.FileSvc.NFSTCPPairs {
		t.Errorf("NFS UDP pairs (%d) should exceed TCP pairs (%d)", r.FileSvc.NFSUDPPairs, r.FileSvc.NFSTCPPairs)
	}
	if r.FileSvc.NCPKeepAliveOnlyFrac < 0.2 {
		t.Errorf("NCP keep-alive-only fraction = %v, want 40–80%%", r.FileSvc.NCPKeepAliveOnlyFrac)
	}
	if r.FileSvc.NFSTop3Share < 0.3 {
		t.Errorf("NFS top-3 pair share = %v, want heavy hitters", r.FileSvc.NFSTop3Share)
	}

	// HTTP: automated clients are a large share of internal bytes;
	// internal conditional GETs exceed WAN.
	if r.HTTP.InternalRequests == 0 {
		t.Fatal("no internal HTTP parsed")
	}
	if auto := totalAutomatedBytes(r.HTTP); auto < 0.2 {
		t.Errorf("automated byte share = %v", auto)
	}
	if r.HTTP.CondEnt <= r.HTTP.CondWan {
		t.Errorf("conditional GETs: ent %v should exceed wan %v", r.HTTP.CondEnt, r.HTTP.CondWan)
	}

	// Load: network far from saturated; internal retransmission below 1%
	// in the typical trace.
	if r.Load.MedianOfMedians > 50 {
		t.Errorf("median utilization = %v Mbps, want far below capacity", r.Load.MedianOfMedians)
	}
	over := 0
	for _, tl := range r.Load.Traces {
		if tl.RetransEnt > 0.01 {
			over++
		}
	}
	if over > len(r.Load.Traces)/2 {
		t.Errorf("%d of %d traces over 1%% retransmission", over, len(r.Load.Traces))
	}

	// Backup: Veritas data strictly one-way is asserted by the generator;
	// Dantz bidirectionality must be measured.
	if r.Backup.Conns["DANTZ"] == 0 || r.Backup.DantzBidirFrac == 0 {
		t.Errorf("backup report = %+v", r.Backup)
	}

	// Findings present.
	if len(r.Findings) < 4 {
		t.Errorf("findings = %v", r.Findings)
	}
}

// TestAddTraceReaderMatchesAddTrace drives the streaming entry point:
// feeding a serialized pcap through AddTraceReader must produce the same
// report as handing AddTrace the same packets in memory.
func TestAddTraceReaderMatchesAddTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end analysis in -short mode")
	}
	cfg := enterprise.D3()
	cfg.Monitored = []int{2, enterprise.SubnetPrint}
	cfg.Scale = 0.1
	ds := gen.GenerateDataset(cfg)
	newAnalyzer := func(workers int) *Analyzer {
		return NewAnalyzer(Options{
			Dataset:         "D3",
			KnownScanners:   enterprise.KnownScanners(),
			PayloadAnalysis: true,
			Workers:         workers,
		})
	}
	// The pcap format stores microseconds; truncate before the in-memory
	// run so both paths see identical timestamps.
	inMem := newAnalyzer(1)
	streamed := newAnalyzer(4)
	for _, tr := range ds.Traces {
		var buf bytes.Buffer
		if err := gen.WriteTrace(&buf, cfg, tr); err != nil {
			t.Fatal(err)
		}
		var trunc []*pcap.Packet
		for _, p := range tr.Packets {
			cp := *p
			cp.Timestamp = p.Timestamp.Truncate(time.Microsecond)
			trunc = append(trunc, &cp)
		}
		if err := inMem.AddTrace(TraceInput{Name: tr.Prefix.String(), Monitored: tr.Prefix, Packets: trunc}); err != nil {
			t.Fatal(err)
		}
		if err := streamed.AddTraceReader(tr.Prefix.String(), tr.Prefix, &buf); err != nil {
			t.Fatal(err)
		}
	}
	a, b := inMem.Report(), streamed.Report()
	if !reflect.DeepEqual(a, b) {
		t.Error("streamed report differs from in-memory report")
	}
}

// poisonSource wraps a pooled reader and scribbles over every released
// buffer before it is recycled — unless the analyzer retained it. Any
// analysis state that kept a slice into an unretained capture buffer
// (violating the Retain contract) would read 0xAA garbage and change the
// report.
type poisonSource struct{ inner *pcap.PooledReader }

func (s *poisonSource) Next() (*pcap.Packet, error) { return s.inner.Next() }

// Release implements pcap.Releaser. Called from worker goroutines; p is
// exclusively ours here, so the scribble is race-free.
func (s *poisonSource) Release(p *pcap.Packet) {
	if !p.Retained() {
		for i := range p.Data {
			p.Data[i] = 0xAA
		}
	}
	s.inner.Release(p)
}

// TestRecycledBufferMutationDoesNotChangeReport guards the pooling
// contract end to end: running the full analysis over a source that
// actively corrupts every recycled buffer must produce the exact report
// of the in-memory (never-recycled) path, at 1 and 4 workers.
func TestRecycledBufferMutationDoesNotChangeReport(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end analysis in -short mode")
	}
	cfg := enterprise.D3()
	cfg.Monitored = []int{2, enterprise.SubnetPrint}
	cfg.Scale = 0.1
	ds := gen.GenerateDataset(cfg)
	newAnalyzer := func(workers int) *Analyzer {
		return NewAnalyzer(Options{
			Dataset:         "D3",
			KnownScanners:   enterprise.KnownScanners(),
			PayloadAnalysis: true,
			Workers:         workers,
		})
	}
	inMem := newAnalyzer(1)
	poisoned1 := newAnalyzer(1)
	poisoned4 := newAnalyzer(4)
	for _, tr := range ds.Traces {
		var raw bytes.Buffer
		if err := gen.WriteTrace(&raw, cfg, tr); err != nil {
			t.Fatal(err)
		}
		var trunc []*pcap.Packet
		for _, p := range tr.Packets {
			cp := *p
			cp.Timestamp = p.Timestamp.Truncate(time.Microsecond)
			trunc = append(trunc, &cp)
		}
		if err := inMem.AddTrace(TraceInput{Name: tr.Prefix.String(), Monitored: tr.Prefix, Packets: trunc}); err != nil {
			t.Fatal(err)
		}
		for _, a := range []*Analyzer{poisoned1, poisoned4} {
			rd, err := pcap.NewReader(bytes.NewReader(raw.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			src := &poisonSource{inner: pcap.NewPooledReader(rd, nil)}
			if err := a.AddTraceSource(tr.Prefix.String(), tr.Prefix, src); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := inMem.Report()
	if got := poisoned1.Report(); !reflect.DeepEqual(want, got) {
		t.Error("1-worker report changed when recycled buffers were mutated")
	}
	if got := poisoned4.Report(); !reflect.DeepEqual(want, got) {
		t.Error("4-worker report changed when recycled buffers were mutated")
	}
}

func TestHeaderOnlyDatasetSkipsPayload(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end analysis in -short mode")
	}
	r := analyzeScaled(t, enterprise.D1(), 0.1, 3)
	// Transport-level results exist.
	if r.Table3.TotalConns == 0 {
		t.Fatal("no connections")
	}
	// Payload-level results must be absent.
	if r.HTTP.InternalRequests != 0 {
		t.Error("payload analysis ran on a 68-byte-snaplen dataset")
	}
	if r.Windows.CIFSTotalRequests != 0 {
		t.Error("CIFS commands parsed without payloads")
	}
	// Email transport stats still present (the paper analyzes email at
	// the transport layer).
	if len(r.Email.Bytes) == 0 {
		t.Error("email transport stats missing")
	}
}

func TestFanReport(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end analysis in -short mode")
	}
	r := analyzeScaled(t, enterprise.D2(), 0.15, 4)
	f := r.Figure2
	if f.Hosts == 0 {
		t.Fatal("no fan stats")
	}
	if len(f.FanOutEnt) == 0 || len(f.FanInEnt) == 0 {
		t.Fatal("missing CDFs")
	}
	// More internal-only hosts than a trivial fraction, per §4.
	if f.OnlyInternalFanOut < 0.2 {
		t.Errorf("only-internal fan-out fraction = %v", f.OnlyInternalFanOut)
	}
}

func TestMonitoredHostCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end analysis in -short mode")
	}
	r := analyzeScaled(t, enterprise.D0(), 0.3, 3)
	s := r.Table1
	if s.MonitoredHosts == 0 || s.LocalHosts <= s.MonitoredHosts || s.RemoteHosts == 0 {
		t.Errorf("host counts: %+v", s)
	}
	if s.Packets == 0 {
		t.Error("no packets")
	}
}
