package core

import (
	"reflect"
	"testing"
	"time"

	"enttrace/internal/enterprise"
	"enttrace/internal/gen"
)

// feedAggregates runs a small trace and returns the merged application
// aggregate — a convenient way to populate every banked domain through
// the real accumulation paths.
func feedAggregates(t *testing.T) *appAggregates {
	t.Helper()
	cfg := enterprise.D3()
	cfg.Scale = 0.2
	cfg.Monitored = cfg.Monitored[:1]
	ds := gen.GenerateDataset(cfg)
	a := NewAnalyzer(Options{Dataset: "snap", PayloadAnalysis: true, Workers: 1, ReplayWorkers: 1})
	for _, tr := range ds.Traces {
		if err := a.AddTrace(TraceInput{Name: "t", Monitored: tr.Prefix, Packets: tr.Packets}); err != nil {
			t.Fatal(err)
		}
	}
	return a.mergedApps()
}

// TestAppAggregatesSnapshotResetMatchesCut pins the aggregate-level
// contract with both cut flavors against each other: Snapshot-then-Reset
// and cut() must bank exactly the same statistics (cut deltas are
// sparse; re-merging both into full aggregates normalizes the shapes).
// This is also what keeps the two field enumerations from drifting when
// appAggregates grows a field: data accumulated through the real
// pipeline that one cut banks and the other misses fails the deep
// comparison.
func TestAppAggregatesSnapshotResetMatchesCut(t *testing.T) {
	viaSnapshot := feedAggregates(t)
	viaCut := feedAggregates(t)

	snap := viaSnapshot.Snapshot()
	viaSnapshot.Reset()
	delta := viaCut.cut()
	if delta == nil {
		t.Fatal("cut of a populated aggregate returned nil")
	}

	a := newAppAggregates()
	a.Merge(snap)
	b := newAppAggregates()
	b.Merge(delta)
	a.sortFTPSessions()
	b.sortFTPSessions()
	ra := buildReport("snap", newEpochAgg(), a, nil)
	rb := buildReport("snap", newEpochAgg(), b, nil)
	if !reflect.DeepEqual(ra, rb) {
		t.Error("Snapshot/Reset and cut banked different statistics")
	}

	// Both residues must be empty: everything banked exactly once.
	if d := viaSnapshot.cut(); d != nil {
		t.Error("Reset left banked statistics behind")
	}
	if d := viaCut.cut(); d != nil {
		t.Error("cut left banked statistics behind")
	}
}

// TestAppAggregatesSnapshotIndependent pins that a snapshot shares no
// mutable state with its source: further accumulation must not leak in.
func TestAppAggregatesSnapshotIndependent(t *testing.T) {
	ap := feedAggregates(t)
	snap := ap.Snapshot()
	before := buildReport("snap", newEpochAgg(), snapToFull(snap), nil)
	em := gen.NewEmitter(21)
	emitConn(em, 0, time.Date(2005, 1, 7, 0, 0, 0, 0, time.UTC), 0)
	ap.sshConns += 100 // mutate the source directly
	ap.bulkConns.Inc("FTP")
	after := buildReport("snap", newEpochAgg(), snapToFull(snap), nil)
	if !reflect.DeepEqual(before, after) {
		t.Error("snapshot aliases its source aggregate")
	}
}

func snapToFull(s *appAggregates) *appAggregates {
	full := newAppAggregates()
	full.Merge(s)
	full.sortFTPSessions()
	return full
}
