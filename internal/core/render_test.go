package core

import (
	"bytes"
	"strings"
	"testing"

	"enttrace/internal/enterprise"
	"enttrace/internal/gen"
	"enttrace/internal/pcap"
)

func TestRenderTextCoversEveryExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end analysis in -short mode")
	}
	cfg := enterprise.D3()
	cfg.Scale = 0.2
	cfg.Monitored = []int{2, 5, 6, 7, 8, 9, enterprise.SubnetDNS, enterprise.SubnetPrint}
	ds := gen.GenerateDataset(cfg)
	a := NewAnalyzer(Options{Dataset: "D3", KnownScanners: enterprise.KnownScanners(), PayloadAnalysis: true})
	for _, tr := range ds.Traces {
		if err := a.AddTrace(TraceInput{Name: tr.Prefix.String(), Monitored: tr.Prefix, Packets: tr.Packets}); err != nil {
			t.Fatal(err)
		}
	}
	out := RenderText(a.Report())
	for _, want := range []string{
		"Table 1", "Table 2", "Table 3", "Scanner removal",
		"Figure 1", "Figure 2", "Origins",
		"Table 6", "Fig 3", "Table 7", "Figure 4",
		"Table 8", "Figure 5",
		"Name services", "Netbios/NS failure",
		"Table 9", "Table 10", "Table 11",
		"Table 13", "Table 14", "Figure 8",
		"Table 15", "Dantz bidirectional",
		"Figures 9–10", "retransmission",
		"Table 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q", want)
		}
	}
}

func TestRenderEmptyReport(t *testing.T) {
	a := NewAnalyzer(Options{Dataset: "empty"})
	out := RenderText(a.Report())
	if !strings.Contains(out, "Dataset empty") {
		t.Error("empty report should still render")
	}
}

// TestPcapRoundTripEquivalence verifies that analyzing a trace written to
// and re-read from a pcap file yields the same connection-level numbers
// as analyzing it in memory — entgen|entanalyze and entreport agree.
func TestPcapRoundTripEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end analysis in -short mode")
	}
	cfg := enterprise.D0()
	cfg.Scale = 0.2
	cfg.Monitored = cfg.Monitored[:2]
	ds := gen.GenerateDataset(cfg)

	analyzeTraces := func(traces []TraceInput) *Report {
		a := NewAnalyzer(Options{Dataset: "x", KnownScanners: enterprise.KnownScanners(), PayloadAnalysis: true})
		for _, tr := range traces {
			if err := a.AddTrace(tr); err != nil {
				t.Fatal(err)
			}
		}
		return a.Report()
	}

	var direct, viaFile []TraceInput
	for _, tr := range ds.Traces {
		direct = append(direct, TraceInput{Name: "m", Monitored: tr.Prefix, Packets: tr.Packets})
		var buf bytes.Buffer
		if err := gen.WriteTrace(&buf, cfg, tr); err != nil {
			t.Fatal(err)
		}
		r, err := pcap.NewReader(&buf)
		if err != nil {
			t.Fatal(err)
		}
		pkts, err := r.ReadAll()
		if err != nil {
			t.Fatal(err)
		}
		viaFile = append(viaFile, TraceInput{Name: "f", Monitored: tr.Prefix, Packets: pkts})
	}
	r1 := analyzeTraces(direct)
	r2 := analyzeTraces(viaFile)

	if r1.Table1.Packets != r2.Table1.Packets {
		t.Errorf("packet counts differ: %d vs %d", r1.Table1.Packets, r2.Table1.Packets)
	}
	if r1.Table3.TotalConns != r2.Table3.TotalConns {
		t.Errorf("conn counts differ: %d vs %d", r1.Table3.TotalConns, r2.Table3.TotalConns)
	}
	if r1.Table3.TotalBytes != r2.Table3.TotalBytes {
		t.Errorf("payload bytes differ: %d vs %d", r1.Table3.TotalBytes, r2.Table3.TotalBytes)
	}
	if r1.Scan.RemovedConns != r2.Scan.RemovedConns {
		t.Errorf("scan removal differs: %d vs %d", r1.Scan.RemovedConns, r2.Scan.RemovedConns)
	}
	if r1.HTTP.InternalRequests != r2.HTTP.InternalRequests {
		t.Errorf("HTTP requests differ: %d vs %d", r1.HTTP.InternalRequests, r2.HTTP.InternalRequests)
	}
	if r1.FileSvc.NFSRequests != r2.FileSvc.NFSRequests {
		t.Errorf("NFS requests differ: %d vs %d", r1.FileSvc.NFSRequests, r2.FileSvc.NFSRequests)
	}
}

func TestCategoryRowTotals(t *testing.T) {
	row := CategoryRow{BytesEnt: 0.2, BytesWan: 0.1, ConnsEnt: 0.05, ConnsWan: 0.02}
	if d := row.BytesTotal() - 0.3; d > 1e-12 || d < -1e-12 {
		t.Error("bytes total")
	}
	if d := row.ConnsTotal() - 0.07; d > 1e-12 || d < -1e-12 {
		t.Error("conns total")
	}
}

func TestFigure1SumsToUnity(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end analysis in -short mode")
	}
	r := analyzeScaled(t, enterprise.D4(), 0.15, 4)
	var bytesSum, connsSum float64
	for _, row := range r.Figure1 {
		// Unicast shares plus the separately-reported multicast shares
		// cover the whole TCP/UDP payload denominator.
		bytesSum += row.BytesTotal() + row.BytesMulticast
		connsSum += row.ConnsTotal() + row.ConnsMulticast
	}
	if bytesSum < 0.98 || bytesSum > 1.001 {
		t.Errorf("bytes shares sum to %v", bytesSum)
	}
	if connsSum < 0.95 || connsSum > 1.001 {
		t.Errorf("conns shares sum to %v", connsSum)
	}
}
