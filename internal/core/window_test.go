package core

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"enttrace/internal/enterprise"
	"enttrace/internal/gen"
)

// windowTestBase is an arbitrary fixed origin for hand-built traces.
var windowTestBase = time.Date(2005, 1, 6, 9, 0, 0, 0, time.UTC)

// emitConn emits one two-turn HTTP-less TCP conversation starting at
// start; extraDelay stretches the server turn so the connection's last
// packet lands that much later.
func emitConn(em *gen.Emitter, cliNum int, start time.Time, extraDelay time.Duration) {
	client := enterprise.InternalHost(5, 10+cliNum)
	server := enterprise.InternalHost(5, 200)
	em.TCPSession(gen.TCPOpts{
		Client: client, Server: server,
		ClientPort: uint16(40000 + cliNum), ServerPort: 9999,
		Start: start, RTT: time.Millisecond,
		Turns: []gen.Turn{
			{FromClient: true, Data: []byte("ping")},
			{Delay: extraDelay, Data: []byte("pong")},
		},
	})
}

func windowedAnalyzer(window time.Duration) *Analyzer {
	return NewAnalyzer(Options{
		Dataset:         "win",
		PayloadAnalysis: true,
		Workers:         2,
		ReplayWorkers:   2,
		Window:          window,
	})
}

// TestWindowStraddlingConn pins the attribution rule: a connection banks
// wholly into the window of its first packet, even when its last packet
// falls in a later window.
func TestWindowStraddlingConn(t *testing.T) {
	em := gen.NewEmitter(1)
	emitConn(em, 0, windowTestBase, 0)                                  // window 0
	emitConn(em, 1, windowTestBase.Add(50*time.Second), 30*time.Second) // starts in 0, ends ~80s
	emitConn(em, 2, windowTestBase.Add(70*time.Second), 0)              // window 1
	a := windowedAnalyzer(time.Minute)
	if err := a.AddTrace(TraceInput{Name: "t0", Monitored: enterprise.SubnetPrefix(5), Packets: em.Packets()}); err != nil {
		t.Fatal(err)
	}
	final := a.Report()
	wins := a.WindowReports()
	if len(wins) != 2 {
		t.Fatalf("want 2 windows, got %d", len(wins))
	}
	if got := wins[0].Report.Table3.TotalConns; got != 2 {
		t.Errorf("window 0: want 2 conns (incl. straddler), got %d", got)
	}
	if got := wins[1].Report.Table3.TotalConns; got != 1 {
		t.Errorf("window 1: want 1 conn, got %d", got)
	}
	// The straddler's bytes bank entirely with its first-packet window.
	var sum int64
	for _, w := range wins {
		sum += w.Report.Table3.TotalBytes
	}
	if sum != final.Table3.TotalBytes {
		t.Errorf("window byte totals %d != cumulative %d", sum, final.Table3.TotalBytes)
	}
}

// TestEmptyWindowReport checks the zero-denominator guarantee: a window
// with no traffic renders all-zero fractions (never NaN/Inf) in both
// text and JSON.
func TestEmptyWindowReport(t *testing.T) {
	em := gen.NewEmitter(2)
	emitConn(em, 0, windowTestBase, 0)
	emitConn(em, 1, windowTestBase.Add(130*time.Second), 0) // skips window 1
	a := windowedAnalyzer(time.Minute)
	if err := a.AddTrace(TraceInput{Name: "t0", Monitored: enterprise.SubnetPrefix(5), Packets: em.Packets()}); err != nil {
		t.Fatal(err)
	}
	wins := a.WindowReports()
	if len(wins) != 3 {
		t.Fatalf("want 3 windows, got %d", len(wins))
	}
	empty := wins[1].Report
	if empty.Table3.TotalConns != 0 || empty.Table1.Packets != 0 {
		t.Fatalf("window 1 should be empty, got %d conns %d packets",
			empty.Table3.TotalConns, empty.Table1.Packets)
	}
	text := RenderText(empty)
	for _, bad := range []string{"NaN", "Inf"} {
		if strings.Contains(text, bad) {
			t.Errorf("empty-window text contains %s", bad)
		}
	}
	b, err := MarshalReport(empty)
	if err != nil {
		t.Fatalf("empty-window report does not marshal: %v", err)
	}
	var doc any
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	assertFinite(t, doc, "$")
}

func assertFinite(t *testing.T, v any, path string) {
	t.Helper()
	switch x := v.(type) {
	case map[string]any:
		for k, e := range x {
			assertFinite(t, e, path+"."+k)
		}
	case []any:
		for _, e := range x {
			assertFinite(t, e, path+"[]")
		}
	case float64:
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Errorf("non-finite value at %s", path)
		}
	}
}

// TestScheduledWindows runs the time-structured workload end-to-end
// through windowed analysis: the burst window must dominate the ramp's
// start, and the quiet slot must be (nearly) silent.
func TestScheduledWindows(t *testing.T) {
	cfg := enterprise.D3()
	cfg.Scale = 1
	net := enterprise.NewNetwork(cfg)
	pkts := gen.GenerateScheduledTrace(net, cfg.Monitored[0], 0, gen.DefaultSchedule())
	a := windowedAnalyzer(time.Minute)
	if err := a.AddTrace(TraceInput{
		Name:      "sched",
		Monitored: enterprise.SubnetPrefix(cfg.Monitored[0]),
		Packets:   pkts,
	}); err != nil {
		t.Fatal(err)
	}
	final := a.Report()
	wins := a.WindowReports()
	// Schedule: ramp 1m (0→30/min), burst 1m (90/min), quiet 1m,
	// steady 2m (18/min) — five windows, the third silent.
	if len(wins) < 4 {
		t.Fatalf("want >= 4 windows, got %d", len(wins))
	}
	ramp := wins[0].Report.Table3.TotalConns
	burst := wins[1].Report.Table3.TotalConns
	quiet := wins[2].Report.Table3.TotalConns
	if burst <= ramp {
		t.Errorf("burst window (%d conns) should exceed ramp window (%d)", burst, ramp)
	}
	if quiet != 0 {
		t.Errorf("quiet window should be silent, got %d conns", quiet)
	}
	// Sum-of-windows == cumulative, for conn, byte, and packet totals.
	var conns, bytes, packets int64
	for _, w := range wins {
		conns += w.Report.Table3.TotalConns
		bytes += w.Report.Table3.TotalBytes
		packets += w.Report.Table1.Packets
	}
	if conns != final.Table3.TotalConns || bytes != final.Table3.TotalBytes || packets != final.Table1.Packets {
		t.Errorf("window sums (%d conns, %d bytes, %d pkts) != cumulative (%d, %d, %d)",
			conns, bytes, packets,
			final.Table3.TotalConns, final.Table3.TotalBytes, final.Table1.Packets)
	}
}

// TestWindowedCountsEmptyTraces pins a batch-parity edge: a zero-packet
// trace has no event time but must still count in the windowed
// cumulative report exactly as it does in a batch run.
func TestWindowedCountsEmptyTraces(t *testing.T) {
	run := func(window time.Duration) *Report {
		a := NewAnalyzer(Options{Dataset: "win", PayloadAnalysis: true, Window: window})
		empty := TraceInput{Name: "empty", Monitored: enterprise.SubnetPrefix(5)}
		if err := a.AddTrace(empty); err != nil { // before any event time exists
			t.Fatal(err)
		}
		em := gen.NewEmitter(9)
		emitConn(em, 0, windowTestBase, 0)
		if err := a.AddTrace(TraceInput{Name: "t", Monitored: enterprise.SubnetPrefix(5), Packets: em.Packets()}); err != nil {
			t.Fatal(err)
		}
		if err := a.AddTrace(empty); err != nil { // after the origin is set
			t.Fatal(err)
		}
		return a.Report()
	}
	batch, windowed := run(0), run(time.Minute)
	if batch.Table1.Traces != 3 {
		t.Fatalf("batch counts %d traces, want 3", batch.Table1.Traces)
	}
	if windowed.Table1.Traces != batch.Table1.Traces {
		t.Errorf("windowed cumulative counts %d traces, batch %d", windowed.Table1.Traces, batch.Table1.Traces)
	}
}

// TestWindowedReportsAcrossTraces checks that windows spanning multiple
// AddTrace calls accumulate correctly and that the watermark only
// completes windows once their end has passed.
func TestWindowedReportsAcrossTraces(t *testing.T) {
	var emitted []int
	a := NewAnalyzer(Options{
		Dataset:         "win",
		PayloadAnalysis: true,
		Window:          time.Minute,
		OnWindow:        func(wr *WindowReport) { emitted = append(emitted, wr.Index) },
	})
	em := gen.NewEmitter(3)
	emitConn(em, 0, windowTestBase, 0)
	if err := a.AddTrace(TraceInput{Name: "t0", Monitored: enterprise.SubnetPrefix(5), Packets: em.Packets()}); err != nil {
		t.Fatal(err)
	}
	// Trace 0 sits inside window 0: nothing completed yet.
	if got := a.LatestWindowIndex(); got != -1 {
		t.Errorf("after trace 0: latest completed window = %d, want -1", got)
	}
	em = gen.NewEmitter(4)
	emitConn(em, 1, windowTestBase.Add(90*time.Second), 0)
	if err := a.AddTrace(TraceInput{Name: "t1", Monitored: enterprise.SubnetPrefix(5), Packets: em.Packets()}); err != nil {
		t.Fatal(err)
	}
	if got := a.LatestWindowIndex(); got != 0 {
		t.Errorf("after trace 1: latest completed window = %d, want 0", got)
	}
	if len(emitted) != 1 || emitted[0] != 0 {
		t.Errorf("OnWindow emissions = %v, want [0]", emitted)
	}
	wins := a.WindowReports()
	if len(wins) != 2 {
		t.Fatalf("want 2 windows, got %d", len(wins))
	}
	if wins[0].Report.Table3.TotalConns != 1 || wins[1].Report.Table3.TotalConns != 1 {
		t.Errorf("conn attribution across traces: got %d/%d, want 1/1",
			wins[0].Report.Table3.TotalConns, wins[1].Report.Table3.TotalConns)
	}
	// Trace-granular stats (Table 1) bank at each trace's completion.
	if wins[0].Report.Table1.Traces != 1 || wins[1].Report.Table1.Traces != 1 {
		t.Errorf("trace banking: got %d/%d traces, want 1/1",
			wins[0].Report.Table1.Traces, wins[1].Report.Table1.Traces)
	}
}
