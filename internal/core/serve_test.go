package core

import (
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"enttrace/internal/enterprise"
	"enttrace/internal/gen"
)

func get(t *testing.T, srv *ReportServer, path string) (int, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	return rec.Code, rec.Body.Bytes()
}

// TestServeWindowedRun drives the serve-mode handler through a streaming
// run: window endpoints serve the latest completed window between
// traces — while analysis is still in progress — and the final report
// appears once published.
func TestServeWindowedRun(t *testing.T) {
	a := windowedAnalyzer(time.Minute)
	srv := NewReportServer(a)

	// Before any data: health is up, no window completed, no final.
	code, body := get(t, srv, "/healthz")
	if code != 200 {
		t.Fatalf("healthz: %d", code)
	}
	var health struct {
		Status           string
		Windowing        bool
		CompletedWindows int
		FinalReady       bool
	}
	if err := json.Unmarshal(body, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || !health.Windowing || health.CompletedWindows != 0 || health.FinalReady {
		t.Errorf("unexpected initial health: %+v", health)
	}
	if code, _ := get(t, srv, "/report/latest"); code != 404 {
		t.Errorf("latest before any window: %d, want 404", code)
	}
	if code, _ := get(t, srv, "/report/final"); code != 404 {
		t.Errorf("final before analysis end: %d, want 404", code)
	}

	// First trace spans two windows; window 0 completes.
	em := gen.NewEmitter(7)
	emitConn(em, 0, windowTestBase, 0)
	emitConn(em, 1, windowTestBase.Add(70*time.Second), 0)
	if err := a.AddTrace(TraceInput{Name: "t0", Monitored: enterprise.SubnetPrefix(5), Packets: em.Packets()}); err != nil {
		t.Fatal(err)
	}

	code, body = get(t, srv, "/report/latest")
	if code != 200 {
		t.Fatalf("latest mid-run: %d (%s)", code, body)
	}
	var wr Report
	if err := json.Unmarshal(body, &wr); err != nil {
		t.Fatal(err)
	}
	if wr.Window == nil || wr.Window.Index != 0 {
		t.Errorf("latest window meta = %+v, want index 0", wr.Window)
	}
	if wr.Table3.TotalConns != 1 {
		t.Errorf("latest window conns = %d, want 1", wr.Table3.TotalConns)
	}

	// Window by index: 1 is the open window (addressable), 7 is not.
	if code, _ := get(t, srv, "/report/window/1"); code != 200 {
		t.Errorf("window/1: %d, want 200", code)
	}
	if code, _ := get(t, srv, "/report/window/7"); code != 404 {
		t.Errorf("window/7: %d, want 404", code)
	}
	if code, _ := get(t, srv, "/report/window/x"); code != 400 {
		t.Errorf("window/x: %d, want 400", code)
	}

	// Publish the final report.
	if err := srv.SetFinal(a.Report()); err != nil {
		t.Fatal(err)
	}
	code, body = get(t, srv, "/report/final")
	if code != 200 {
		t.Fatalf("final: %d", code)
	}
	var final Report
	if err := json.Unmarshal(body, &final); err != nil {
		t.Fatal(err)
	}
	if final.Window != nil || final.Table3.TotalConns != 2 {
		t.Errorf("final report: window=%v conns=%d, want nil/2", final.Window, final.Table3.TotalConns)
	}
}

// TestServeStallDetection drives /healthz through the watermark-stall
// state machine: a still progress signature past the threshold degrades
// the status, any advance resets the clock, and a published final
// report suppresses stall reporting entirely.
func TestServeStallDetection(t *testing.T) {
	a := windowedAnalyzer(time.Minute)
	srv := NewReportServer(a)
	srv.SetStallThreshold(time.Millisecond)

	health := func() healthStatus {
		t.Helper()
		code, body := get(t, srv, "/healthz")
		if code != 200 {
			t.Fatalf("healthz: %d", code)
		}
		var h healthStatus
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatal(err)
		}
		return h
	}

	// First probe arms the clock; no stall yet.
	if h := health(); h.Status != "ok" {
		t.Errorf("initial status = %s, want ok", h.Status)
	}
	time.Sleep(5 * time.Millisecond)
	if h := health(); h.Status != "degraded" || h.StallSeconds <= 0 {
		t.Errorf("stalled status = %+v, want degraded with StallSeconds", h)
	}

	// Progress resets the stall clock.
	em := gen.NewEmitter(7)
	emitConn(em, 0, windowTestBase, 0)
	if err := a.AddTrace(TraceInput{Name: "t0", Monitored: enterprise.SubnetPrefix(5), Packets: em.Packets()}); err != nil {
		t.Fatal(err)
	}
	if h := health(); h.Status != "ok" {
		t.Errorf("status after progress = %s, want ok", h.Status)
	}

	// A finished run cannot advance and must not read as stalled.
	time.Sleep(5 * time.Millisecond)
	if err := srv.SetFinal(a.Report()); err != nil {
		t.Fatal(err)
	}
	if h := health(); h.Status != "ok" || !h.FinalReady {
		t.Errorf("final status = %+v, want ok/final-ready", h)
	}
}

// TestServeDegradedOnSourceErrors: any folded source error turns the
// health status degraded for the rest of the run.
func TestServeDegradedOnSourceErrors(t *testing.T) {
	a := windowedAnalyzer(time.Minute)
	srv := NewReportServer(a)
	a.srcErrsLive.Add(1)
	_, body := get(t, srv, "/healthz")
	var h healthStatus
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "degraded" || h.SourceErrors != 1 {
		t.Errorf("health = %+v, want degraded with 1 source error", h)
	}
}

// TestServeWithoutWindowing pins the degraded mode: health and final
// work, window endpoints explain themselves with 404.
func TestServeWithoutWindowing(t *testing.T) {
	a := NewAnalyzer(Options{Dataset: "plain", PayloadAnalysis: true})
	srv := NewReportServer(a)
	if code, _ := get(t, srv, "/healthz"); code != 200 {
		t.Errorf("healthz: %d", code)
	}
	if code, _ := get(t, srv, "/report/latest"); code != 404 {
		t.Errorf("latest: %d, want 404", code)
	}
	if code, _ := get(t, srv, "/report/window/0"); code != 404 {
		t.Errorf("window/0: %d, want 404", code)
	}
}
