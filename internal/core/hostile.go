package core

import "enttrace/internal/reassembly"

// hostileCounters aggregates the reassembly layer's hostile-input ledger
// (see reassembly.Accounting and the overlap-conflict policy in that
// package's doc) plus the packet-time RST signals tracked on connStreams.
// Every field is a commutative sum except peakPending, which merges by
// max; each connection contributes exactly once (at replay, after its
// streams are released), so window sums reproduce the batch aggregate
// and the report is identical for any worker/replay-worker grid point.
type hostileCounters struct {
	// streams counts stream directions that ingested at least one byte.
	streams int64
	// Byte ledger, summed over streams (conservation: ingest = delivered
	// + duplicate + conflict + discarded once streams are closed).
	ingest, delivered, duplicate, conflict, discarded int64
	// Gap / wrap events.
	gapSkipped, gapEvents, wrapEvents int64
	// peakPending is the largest buffered out-of-order volume any single
	// stream direction reached (max-merged).
	peakPending int64
	// RST-shaped signals from packet time.
	bogusRST, postRSTData int64
}

// addStream folds one stream direction's ledger. Streams that never
// ingested a byte contribute nothing (and are not counted), keeping the
// census meaningful on traces full of payload-less connections.
func (h *hostileCounters) addStream(a reassembly.Accounting) {
	if a.IngestBytes == 0 {
		return
	}
	h.streams++
	h.ingest += a.IngestBytes
	h.delivered += a.DeliveredBytes
	h.duplicate += a.DuplicateBytes
	h.conflict += a.ConflictBytes
	h.discarded += a.DiscardedBytes
	h.gapSkipped += a.GapSkippedBytes
	h.gapEvents += a.GapEvents
	h.wrapEvents += a.WrapEvents
	if a.PeakPendingBytes > h.peakPending {
		h.peakPending = a.PeakPendingBytes
	}
}

// fold accounts one connection's hostile-input evidence. Called once per
// connection at replay, after release, so the discard ledger is final.
func (h *hostileCounters) fold(app *connStreams) {
	if app == nil {
		return
	}
	h.bogusRST += app.bogusRST
	h.postRSTData += app.postRSTData
	if app.buffered {
		h.addStream(app.cliStream.Accounting())
		h.addStream(app.srvStream.Accounting())
	}
}

// merge folds another aggregate into h.
func (h *hostileCounters) merge(o *hostileCounters) {
	h.streams += o.streams
	h.ingest += o.ingest
	h.delivered += o.delivered
	h.duplicate += o.duplicate
	h.conflict += o.conflict
	h.discarded += o.discarded
	h.gapSkipped += o.gapSkipped
	h.gapEvents += o.gapEvents
	h.wrapEvents += o.wrapEvents
	if o.peakPending > h.peakPending {
		h.peakPending = o.peakPending
	}
	h.bogusRST += o.bogusRST
	h.postRSTData += o.postRSTData
}
