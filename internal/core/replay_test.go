package core

import (
	"math"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"enttrace/internal/appproto/dcerpc"
	"enttrace/internal/appproto/ftp"
	"enttrace/internal/enterprise"
	"enttrace/internal/gen"
	"enttrace/internal/layers"
)

// replayHost builds an in-enterprise host for hand-crafted traces.
func replayHost(addr string, mac byte) enterprise.Host {
	return enterprise.Host{
		Addr: netip.MustParseAddr(addr),
		MAC:  layers.MAC{0x02, 0x00, 0x00, 0x00, 0x00, mac},
	}
}

// registrationOrderTrace builds a trace that pins the classification
// snapshot semantics of the two-phase replay: for both dynamic
// registration mechanisms (FTP PASV and the DCE/RPC Endpoint Mapper), a
// connection to the advertised port that starts BEFORE the registering
// connection must stay unclassified, while an identical one starting
// after it must classify (and parse) as the registered service.
func registrationOrderTrace() TraceInput {
	const (
		ftpDataPort uint16 = 35021
		spoolssPort uint16 = 42101
	)
	clientA := replayHost("128.3.2.10", 1)
	clientB := replayHost("128.3.2.11", 2)
	clientC := replayHost("128.3.2.12", 3)
	ftpSrv := replayHost("128.3.7.5", 4)
	dc := replayHost("128.3.7.6", 5)

	em := gen.NewEmitter(41)
	t0 := time.Unix(1_100_000_000, 0)
	rtt := 10 * time.Millisecond

	// Spoolss-shaped payload: a bind plus three WritePrinter requests —
	// identical on the early and late connections, so a classification
	// leak would show up as extra counted requests.
	spoolssTurns := func() []gen.Turn {
		turns := []gen.Turn{
			{FromClient: true, Data: dcerpc.Encode(&dcerpc.PDU{Type: dcerpc.PTBind, CallID: 1, Iface: dcerpc.IfSpoolss})},
			{Data: dcerpc.Encode(&dcerpc.PDU{Type: dcerpc.PTBindAck, CallID: 1, Iface: dcerpc.IfSpoolss})},
		}
		for j := 0; j < 3; j++ {
			turns = append(turns,
				gen.Turn{FromClient: true, Data: dcerpc.Encode(&dcerpc.PDU{Type: dcerpc.PTRequest, CallID: uint32(2 + j), Opnum: dcerpc.OpSpoolssWritePrinter, Stub: make([]byte, 512)})},
				gen.Turn{Data: dcerpc.Encode(&dcerpc.PDU{Type: dcerpc.PTResponse, CallID: uint32(2 + j), Stub: make([]byte, 16)})},
			)
		}
		return turns
	}
	bulkTurns := []gen.Turn{
		{FromClient: true, Data: make([]byte, 2048)},
		{Data: make([]byte, 512)},
	}

	// Early connections to the not-yet-registered ports.
	em.TCPSession(gen.TCPOpts{Client: clientA, Server: ftpSrv, ClientPort: 40001, ServerPort: ftpDataPort,
		Start: t0, RTT: rtt, Turns: bulkTurns})
	em.TCPSession(gen.TCPOpts{Client: clientB, Server: dc, ClientPort: 40002, ServerPort: spoolssPort,
		Start: t0.Add(1 * time.Second), RTT: rtt, Turns: spoolssTurns()})

	// The registering connections.
	var ftpTurns []gen.Turn
	for _, turn := range ftp.RetrievalDialogue("alice", "data.bin", [4]byte{128, 3, 7, 5}, ftpDataPort) {
		ftpTurns = append(ftpTurns, gen.Turn{FromClient: turn.FromClient, Data: turn.Data})
	}
	em.TCPSession(gen.TCPOpts{Client: clientA, Server: ftpSrv, ClientPort: 40003, ServerPort: 21,
		Start: t0.Add(2 * time.Second), RTT: rtt, Turns: ftpTurns})
	em.TCPSession(gen.TCPOpts{Client: clientB, Server: dc, ClientPort: 40004, ServerPort: 135,
		Start: t0.Add(3 * time.Second), RTT: rtt, Turns: []gen.Turn{
			{FromClient: true, Data: dcerpc.Encode(&dcerpc.PDU{Type: dcerpc.PTBind, CallID: 1, Iface: dcerpc.IfEPM})},
			{Data: dcerpc.Encode(&dcerpc.PDU{Type: dcerpc.PTBindAck, CallID: 1, Iface: dcerpc.IfEPM})},
			{FromClient: true, Data: dcerpc.Encode(&dcerpc.PDU{Type: dcerpc.PTRequest, CallID: 2, Opnum: dcerpc.OpEpmMap, Stub: make([]byte, 24)})},
			{Data: dcerpc.EncodeEpmMapResponse(2, dcerpc.IfSpoolss, dc.Addr, spoolssPort)},
		}})

	// Late connections to the now-registered ports.
	em.TCPSession(gen.TCPOpts{Client: clientC, Server: ftpSrv, ClientPort: 40005, ServerPort: ftpDataPort,
		Start: t0.Add(4 * time.Second), RTT: rtt, Turns: bulkTurns})
	em.TCPSession(gen.TCPOpts{Client: clientC, Server: dc, ClientPort: 40006, ServerPort: spoolssPort,
		Start: t0.Add(5 * time.Second), RTT: rtt, Turns: spoolssTurns()})

	return TraceInput{
		Name:      "registration-order",
		Monitored: netip.MustParsePrefix("128.3.0.0/16"),
		Packets:   em.Packets(),
	}
}

func analyzeRegistrationOrder(t *testing.T, workers, replayWorkers int) *Report {
	t.Helper()
	a := NewAnalyzer(Options{
		Dataset:         "order",
		PayloadAnalysis: true,
		Workers:         workers,
		ReplayWorkers:   replayWorkers,
	})
	if err := a.AddTrace(registrationOrderTrace()); err != nil {
		t.Fatal(err)
	}
	return a.Report()
}

// TestReplayRegistrationOrdering is the direct serial-replay versus
// parallel-replay equality test: the PASV- and EPM-registered ports must
// classify only later-starting connections, identically for every
// replay worker count.
func TestReplayRegistrationOrdering(t *testing.T) {
	serial := analyzeRegistrationOrder(t, 1, 1)

	// Snapshot semantics: exactly one data connection counted as
	// FTP-Data — the one starting after the control connection's PASV.
	if got := serial.Bulk.FTPDataConns; got != 1 {
		t.Errorf("FTP-Data conns = %d, want 1 (late connection only)", got)
	}
	if serial.Bulk.FTPSessions != 1 || serial.Bulk.FTPTransfers != 1 {
		t.Errorf("FTP sessions/transfers = %d/%d, want 1/1",
			serial.Bulk.FTPSessions, serial.Bulk.FTPTransfers)
	}
	// Exactly the EPM map request plus the late connection's three
	// WritePrinter requests; the early (pre-registration) connection's
	// identical payload must not be parsed.
	if got := serial.Windows.RPCTotalRequests; got != 4 {
		t.Errorf("RPC requests = %d, want 4 (1 EPM map + 3 late WritePrinter)", got)
	}
	if frac := serial.Windows.RPCRequests["Spoolss/WritePrinter"]; math.Abs(frac-0.75) > 1e-9 {
		t.Errorf("WritePrinter share = %v, want 0.75", frac)
	}

	for _, grid := range [][2]int{{1, 4}, {1, 8}, {4, 1}, {4, 4}, {8, 8}} {
		got := analyzeRegistrationOrder(t, grid[0], grid[1])
		if !reflect.DeepEqual(serial, got) {
			t.Errorf("report with %d pipeline / %d replay workers differs from serial replay",
				grid[0], grid[1])
		}
	}
}
