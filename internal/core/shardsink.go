package core

import (
	"net/netip"
	"time"

	"enttrace/internal/flows"
	"enttrace/internal/layers"
	"enttrace/internal/pcap"
	"enttrace/internal/reassembly"
	"enttrace/internal/stats"
)

// bufferedProtos are the TCP protocols whose payloads are reassembled.
var bufferedProtos = map[string]int{
	"HTTP":        4 << 20,
	"FTP":         1 << 20,
	"SMTP":        1 << 20,
	"IMAP4":       1 << 20,
	"CIFS":        2 << 20,
	"Netbios-SSN": 2 << 20,
	"NCP":         2 << 20,
	"NFS":         2 << 20,
	"Spoolss":     1 << 20, // dynamically mapped DCE/RPC service ports
}

// unknownStreamLimit bounds reassembly for TCP connections the registry
// cannot classify when they attach. An unclassified ephemeral-port
// service may be registered later in the trace (DCE/RPC endpoint
// mapping, FTP PASV), so the stream is kept around for the
// deterministic replay to classify and parse. The limit matches the
// Spoolss entry above — the one dynamically mapped protocol the replay
// actually parses. This buffering is the streaming pipeline's main
// memory trade-off: up to 2 MB per unclassified high-port connection
// until trace end (see DESIGN.md §3).
const unknownStreamLimit = 1 << 20

// shardSink is the analysis layer's per-shard state: packet-level
// accumulators that merge cheaply after the run, plus the reassembled
// application streams and captured UDP messages that the deterministic
// replay consumes. It is owned by one pipeline worker; nothing here is
// shared while packets flow.
type shardSink struct {
	opts      *Options
	monitored netip.Prefix
	base      time.Time

	// Packet-level accumulators (merged across shards in shard order).
	netLayer                          *stats.Counter
	monHosts, localHosts, remoteHosts map[netip.Addr]struct{}
	// bins holds wire bytes per second since base (the trace's first
	// packet, fixed by the router before any worker starts).
	bins []int64
	// maxTS is this shard's event-time high-water mark; the trace
	// watermark (max across shards, read after all workers drain) drives
	// window completion in windowed mode.
	maxTS time.Time

	// Deferred application state, replayed in global packet order.
	conns map[*flows.Conn]*connStreams
	udp   []udpEvent
}

// udpEvent is one captured datagram for an application protocol the
// paper parses per message (DNS, Netbios/NS, NFS-over-UDP).
type udpEvent struct {
	idx              int64
	ts               time.Time
	src, dst         netip.Addr
	srcPort, dstPort uint16
	payload          []byte
}

// connStreams buffers one TCP connection's two directions until replay.
// The streams are embedded by value (one allocation per connection), and
// every byte buffer underneath them is pooled: replayApps releases the
// whole structure back to the reassembly buffer pool at end of trace.
type connStreams struct {
	// kind is the registry protocol name when the connection attached;
	// replay re-classifies, so this only records the buffering decision.
	kind string
	// buffered reports whether the streams below are live.
	buffered             bool
	cliStream, srvStream reassembly.Stream
	cliBuf, srvBuf       reassembly.BufferConsumer
	// epmCli/epmSrv replace the buffers for Endpoint Mapper connections,
	// preserving gap boundaries so replay can resynchronize PDU parsing
	// exactly where the incremental parser would have.
	epmCli, epmSrv *segBuffer
	// released guards double-recycling: the owning replay worker
	// releases a connection's streams, and a serial sweep afterwards
	// catches connections the flow table never surfaced.
	released bool
	// Hostile-input signals observed at packet time. rstSeen flags any
	// RST on the connection; bogusRST counts RSTs whose sequence number
	// disagrees with the receiver's reassembly cursor (the blind-reset /
	// evasion shape); postRSTData counts payload segments that keep
	// flowing after a RST was seen.
	rstSeen     bool
	bogusRST    int64
	postRSTData int64
}

func newShardSink(opts *Options, monitored netip.Prefix, base time.Time) *shardSink {
	return &shardSink{
		opts:        opts,
		monitored:   monitored,
		base:        base,
		netLayer:    stats.NewCounter(),
		monHosts:    make(map[netip.Addr]struct{}),
		localHosts:  make(map[netip.Addr]struct{}),
		remoteHosts: make(map[netip.Addr]struct{}),
		conns:       make(map[*flows.Conn]*connStreams),
	}
}

// Undecodable implements pipeline.Sink.
func (s *shardSink) Undecodable(idx int64) {
	s.netLayer.Inc("undecodable")
}

// Packet implements pipeline.Sink. pk may come from a recycled-buffer
// source: anything that outlives this call must either copy out of
// pk.Data (TCP reassembly buffers do) or call pk.Retain() (UDP capture
// does), or a reused buffer would leak other packets' bytes into the
// analysis.
func (s *shardSink) Packet(idx int64, pk *pcap.Packet, p *layers.Packet, conn *flows.Conn, dir flows.Dir) {
	s.countNetLayer(p)
	s.recordHosts(p)
	s.bin(pk.Timestamp, pk.OrigLen)
	if pk.Timestamp.After(s.maxTS) {
		s.maxTS = pk.Timestamp
	}
	if !s.opts.PayloadAnalysis || conn == nil {
		return
	}
	if p.Layers.Has(layers.LayerUDP) {
		s.captureUDP(idx, pk, p)
		return
	}
	if !p.Layers.Has(layers.LayerTCP) {
		return
	}
	app := s.conns[conn]
	if app == nil {
		name, _ := s.opts.Registry.Classify(conn.Proto, conn.Key.Src, conn.Key.Dst, conn.Key.SrcPort, conn.Key.DstPort)
		app = newConnStreams(name, conn)
		s.conns[conn] = app
	}
	if len(p.Payload) > 0 && app.rstSeen {
		app.postRSTData++
	}
	if !app.buffered {
		if p.TCP.Flags&layers.TCPRst != 0 {
			app.rstSeen = true
		}
		return
	}
	stream := &app.cliStream
	if dir == flows.DirResp {
		stream = &app.srvStream
	}
	if p.TCP.Flags&layers.TCPRst != 0 {
		// A reset whose sequence number disagrees with the sender's own
		// stream cursor is the blind-reset evasion shape: an injected RST
		// would tear the monitor's state down while the endpoints (which
		// check sequence numbers) keep talking.
		if stream.Started() && p.TCP.Seq != stream.NextSeq() {
			app.bogusRST++
		}
		app.rstSeen = true
	}
	if p.TCP.Flags&layers.TCPSyn != 0 {
		stream.SetISN(p.TCP.Seq + 1)
		return
	}
	if len(p.Payload) > 0 {
		stream.Segment(p.TCP.Seq, p.Payload)
	}
}

// newConnStreams decides, from the attach-time classification, whether
// and how a connection's payload is buffered for replay.
func newConnStreams(name string, conn *flows.Conn) *connStreams {
	app := &connStreams{kind: name}
	switch {
	case name == "FTP" && conn.Key.DstPort == 21:
		// Control channel: the client side is size-capped like any other
		// buffered protocol; the server side is kept whole so replay can
		// register PASV data ports before classifying later connections.
		app.cliBuf.Limit = bufferedProtos[name]
		app.buffered = true
		app.cliStream.Init(&app.cliBuf)
		app.srvStream.Init(&app.srvBuf)
	case name == "DCE/RPC-EPM":
		app.epmCli = &segBuffer{}
		app.epmSrv = &segBuffer{}
		app.buffered = true
		app.cliStream.Init(app.epmCli)
		app.srvStream.Init(app.epmSrv)
	default:
		limit, buffered := bufferedProtos[name]
		if !buffered && name == "" && conn.Key.DstPort > 1023 {
			// Unclassified ephemeral port: it may be endpoint-mapped
			// later in the trace. Well-known unregistered ports cannot
			// be (EPM and PASV always map ephemeral ports), so scan
			// probes and other low-port junk are not buffered.
			limit, buffered = unknownStreamLimit, true
		}
		if buffered {
			app.cliBuf.Limit = limit
			app.srvBuf.Limit = limit
			app.buffered = true
			app.cliStream.Init(&app.cliBuf)
			app.srvStream.Init(&app.srvBuf)
		}
	}
	return app
}

// release sends every pooled byte buffer under this connection's streams
// back to the reassembly pool. Any slice of the stream buffers taken
// during replay is invalid afterwards; parse results that outlive replay
// hold copies (strings or owned structs), never stream sub-slices.
func (app *connStreams) release() {
	if !app.buffered || app.released {
		return
	}
	app.released = true
	// Streams the replay never parsed still hold out-of-order data.
	app.cliStream.Discard()
	app.srvStream.Discard()
	app.cliBuf.Release()
	app.srvBuf.Release()
	if app.epmCli != nil {
		app.epmCli.release()
		app.epmSrv.release()
	}
}

// captureUDP records datagrams for the message-based analyzers. The
// payload slice references the capture buffer, so the packet is retained:
// a pooled source must not recycle it while the replay still holds the
// slice. These are the few packets per trace the Retain contract exists
// for — everything else is copied (reassembly) or consumed immediately.
func (s *shardSink) captureUDP(idx int64, pk *pcap.Packet, p *layers.Packet) {
	if len(p.Payload) == 0 || !udpAppPorts(p.UDP.SrcPort, p.UDP.DstPort) {
		return
	}
	pk.Retain()
	src, _ := p.NetSrc()
	dst, _ := p.NetDst()
	s.udp = append(s.udp, udpEvent{
		idx: idx, ts: pk.Timestamp, src: src, dst: dst,
		srcPort: p.UDP.SrcPort, dstPort: p.UDP.DstPort,
		payload: p.Payload,
	})
}

func (s *shardSink) countNetLayer(p *layers.Packet) {
	switch {
	case p.Layers.Has(layers.LayerIPv4), p.Layers.Has(layers.LayerIPv6):
		s.netLayer.Inc("IP")
	case p.Layers.Has(layers.LayerARP):
		s.netLayer.Inc("ARP")
	case p.Layers.Has(layers.LayerIPX):
		s.netLayer.Inc("IPX")
	default:
		s.netLayer.Inc("Other")
	}
}

func (s *shardSink) recordHosts(p *layers.Packet) {
	record := func(addr netip.Addr) {
		if !addr.IsValid() || addr.IsMulticast() {
			return
		}
		switch {
		case s.monitored.Contains(addr):
			s.monHosts[addr] = struct{}{}
			s.localHosts[addr] = struct{}{}
		case s.opts.IsLocal(addr):
			s.localHosts[addr] = struct{}{}
		default:
			s.remoteHosts[addr] = struct{}{}
		}
	}
	if src, ok := p.NetSrc(); ok {
		record(src)
	}
	if dst, ok := p.NetDst(); ok {
		record(dst)
	}
}

func (s *shardSink) bin(ts time.Time, wireLen int) {
	sec := int(ts.Sub(s.base) / time.Second)
	if sec < 0 {
		sec = 0
	}
	if sec >= len(s.bins) {
		// Fill the gap in one step: a long idle stretch in a trace must
		// cost one grow, not one append per missing second. Capacity
		// doubles, so n quiet-then-busy traces stay amortized O(1)/packet.
		if sec < cap(s.bins) {
			// The unused capacity is already zeroed: bins never shrink,
			// and nothing past len has ever been written.
			s.bins = s.bins[:sec+1]
		} else {
			newCap := 2 * cap(s.bins)
			if newCap <= sec {
				newCap = sec + 1
			}
			grown := make([]int64, sec+1, newCap)
			copy(grown, s.bins)
			s.bins = grown
		}
	}
	s.bins[sec] += int64(wireLen)
}

// segBuffer accumulates a reassembled stream as gap-delimited contiguous
// segments. PDU parsers resynchronize at segment boundaries, mirroring
// the incremental parser's buffer reset on Gap. Segment storage is drawn
// from the reassembly buffer pool and recycled by release.
type segBuffer struct {
	segs [][]byte
	cur  []byte
}

// Data implements reassembly.Consumer, copying the borrowed chunk.
func (b *segBuffer) Data(d []byte) {
	b.cur = reassembly.AppendPooled(b.cur, d)
}

// release recycles every pooled segment.
func (b *segBuffer) release() {
	for i := range b.segs {
		reassembly.PutBuffer(b.segs[i])
		b.segs[i] = nil
	}
	b.segs = nil
	reassembly.PutBuffer(b.cur)
	b.cur = nil
}

// Gap implements reassembly.Consumer.
func (b *segBuffer) Gap(n int) {
	if len(b.cur) > 0 {
		b.segs = append(b.segs, b.cur)
		b.cur = nil
	}
}

// segments returns every contiguous stream region in order.
func (b *segBuffer) segments() [][]byte {
	if len(b.cur) > 0 {
		return append(b.segs, b.cur)
	}
	return b.segs
}
