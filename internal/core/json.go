package core

import (
	"encoding/json"
	"io"
)

// Report JSON is the stable structured encoding of a Report: exported
// field names, map keys sorted (encoding/json's map behavior), windows
// labeled via the Window metadata. The schema is pinned by a golden-file
// test (report_schema.golden); extending the Report struct extends the
// schema, which is an intentional, reviewed change.

// MarshalReport renders a report as indented JSON. Reports never carry
// NaN or Inf (every fraction is zero-denominator-guarded), so marshaling
// cannot fail on numeric values.
func MarshalReport(r *Report) ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// WriteReportJSON writes a report as indented JSON followed by a
// newline.
func WriteReportJSON(w io.Writer, r *Report) error {
	b, err := MarshalReport(r)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// RunJSON is the top-level JSON document of a windowed run: every window
// report in window order, then the cumulative report. Batch runs emit
// the cumulative report alone instead.
type RunJSON struct {
	Windows    []*Report `json:",omitempty"`
	Cumulative *Report
}

// WriteRunJSON writes the windowed-run document: the per-window reports
// (when windows is non-empty) and the cumulative report.
func WriteRunJSON(w io.Writer, windows []*WindowReport, cumulative *Report) error {
	doc := RunJSON{Cumulative: cumulative}
	for _, wr := range windows {
		doc.Windows = append(doc.Windows, wr.Report)
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
