package core

import (
	"bytes"
	"testing"
	"time"

	"enttrace/internal/enterprise"
	"enttrace/internal/gen"
)

// fleetTestDataset generates a small but application-rich dataset:
// four monitored subnets' worth of traces, exercising every payload
// analyzer the snapshot codec has to round-trip. Each subnet's trace is
// generated with its own network instance so it carries its own
// endpoint-mapper exchanges: fleet sites own classification-
// self-contained trace blocks (dynamic port registrations do not cross
// sites — see DESIGN.md "Fleet aggregation"), exactly as a real
// per-tap capture is self-contained.
func fleetTestDataset(t *testing.T) *gen.Dataset {
	t.Helper()
	cfg := enterprise.D3()
	cfg.Scale = 0.2
	all := &gen.Dataset{Config: cfg}
	for _, subnet := range cfg.Monitored[:4] {
		c := cfg
		c.Monitored = []int{subnet}
		all.Traces = append(all.Traces, gen.GenerateDataset(c).Traces...)
	}
	return all
}

func datasetOrigin(ds *gen.Dataset) time.Time {
	var origin time.Time
	for _, tr := range ds.Traces {
		if len(tr.Packets) == 0 {
			continue
		}
		ts := tr.Packets[0].Timestamp
		if origin.IsZero() || ts.Before(origin) {
			origin = ts
		}
	}
	return origin
}

// deliverAll feeds every export into the fleet through the Sink
// interface, exactly as the transport would, and fins the site.
func deliverAll(t *testing.T, f *Fleet, site string, a *Analyzer) {
	t.Helper()
	exports, err := a.ExportAll()
	if err != nil {
		t.Fatalf("site %s export: %v", site, err)
	}
	if err := f.Hello(site, a.FleetHello()); err != nil {
		t.Fatalf("site %s hello: %v", site, err)
	}
	maxWindow := -1 // a site with no data fins through window -1: it owes nothing
	for i, we := range exports {
		if err := f.Delta(site, we.Window, uint64(i+1), we.Watermark, we.Payload); err != nil {
			t.Fatalf("site %s window %d: %v", site, we.Window, err)
		}
		if we.Window > maxWindow {
			maxWindow = we.Window
		}
	}
	if err := f.Fin(site, maxWindow, uint64(len(exports)+1), 0); err != nil {
		t.Fatalf("site %s fin: %v", site, err)
	}
	f.Disconnect(site)
}

func reportBytes(t *testing.T, r *Report) []byte {
	t.Helper()
	b, err := MarshalReport(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestFleetSingleSiteRoundTrip pins the snapshot codec against the
// analyzer itself: one windowed site's exported windows, decoded and
// folded by the fleet merger, must reproduce the site's own cumulative
// and per-window reports byte for byte. This is the error-free base
// case of the fleet differential — any codec field drift or fold-order
// divergence fails here first, without transport in the way.
func TestFleetSingleSiteRoundTrip(t *testing.T) {
	ds := fleetTestDataset(t)
	origin := datasetOrigin(ds)
	a := NewAnalyzer(Options{
		Dataset:         "fleet",
		PayloadAnalysis: true,
		Workers:         2,
		ReplayWorkers:   2,
		Window:          time.Minute,
		WindowOrigin:    origin,
	})
	for i, tr := range ds.Traces {
		if err := a.AddTrace(TraceInput{Name: traceName(i), Monitored: tr.Prefix, Packets: tr.Packets}); err != nil {
			t.Fatal(err)
		}
	}

	f := NewFleet(FleetConfig{Dataset: "fleet"})
	deliverAll(t, f, "site-a", a)

	fleetFinal := f.Report()
	if fleetFinal.Fleet != nil {
		t.Fatalf("complete single-site fleet carries a degradation census: %+v", fleetFinal.Fleet)
	}
	localFinal := a.Report()
	if !bytes.Equal(reportBytes(t, fleetFinal), reportBytes(t, localFinal)) {
		t.Error("fleet cumulative report differs from the site's own report")
	}
	if RenderText(fleetFinal) != RenderText(localFinal) {
		t.Error("fleet cumulative text rendering differs from the site's own")
	}

	localWindows := a.WindowReports()
	fleetWindows := f.WindowReports()
	if len(fleetWindows) != len(localWindows) {
		t.Fatalf("fleet has %d windows, site has %d", len(fleetWindows), len(localWindows))
	}
	for n := range localWindows {
		if !bytes.Equal(reportBytes(t, fleetWindows[n].Report), reportBytes(t, localWindows[n].Report)) {
			t.Errorf("window %d: fleet report differs from the site's own", n)
		}
	}
}

// TestFleetDifferential pins the tentpole invariant without transport:
// a fleet of sites analyzing disjoint blocks of the trace sequence —
// each with the shared window origin and its block's trace-ordinal base
// — merges to the byte-identical report of a single instance over the
// concatenated traces. Both windowed and batch fleets, several site
// counts and worker counts.
func TestFleetDifferential(t *testing.T) {
	ds := fleetTestDataset(t)
	origin := datasetOrigin(ds)
	grid := []struct {
		sites, workers int
		window         time.Duration
	}{
		{2, 1, time.Minute},
		{2, 4, time.Minute},
		{4, 4, time.Minute},
		{2, 4, 0}, // batch fleet: each site ships its whole run as window 0
	}
	for _, g := range grid {
		single := NewAnalyzer(Options{
			Dataset:         "fleet",
			PayloadAnalysis: true,
			Workers:         g.workers,
			ReplayWorkers:   g.workers,
			Window:          g.window,
			WindowOrigin:    origin,
		})
		for i, tr := range ds.Traces {
			if err := single.AddTrace(TraceInput{Name: traceName(i), Monitored: tr.Prefix, Packets: tr.Packets}); err != nil {
				t.Fatal(err)
			}
		}
		singleFinal := reportBytes(t, single.Report())

		f := NewFleet(FleetConfig{Dataset: "fleet"})
		for s := 0; s < g.sites; s++ {
			lo := len(ds.Traces) * s / g.sites
			hi := len(ds.Traces) * (s + 1) / g.sites
			site := NewAnalyzer(Options{
				Dataset:         "fleet",
				PayloadAnalysis: true,
				Workers:         g.workers,
				ReplayWorkers:   g.workers,
				Window:          g.window,
				WindowOrigin:    origin,
				TraceBase:       lo,
			})
			for i := lo; i < hi; i++ {
				tr := ds.Traces[i]
				if err := site.AddTrace(TraceInput{Name: traceName(i), Monitored: tr.Prefix, Packets: tr.Packets}); err != nil {
					t.Fatal(err)
				}
			}
			deliverAll(t, f, siteName(s), site)
		}

		fleetFinal := f.Report()
		if fleetFinal.Fleet != nil {
			t.Errorf("sites=%d workers=%d window=%v: complete fleet carries a census: %+v",
				g.sites, g.workers, g.window, fleetFinal.Fleet)
		}
		if !bytes.Equal(reportBytes(t, fleetFinal), singleFinal) {
			t.Errorf("sites=%d workers=%d window=%v: fleet report differs from single instance",
				g.sites, g.workers, g.window)
		}
		if g.window > 0 {
			singleWins := single.WindowReports()
			fleetWins := f.WindowReports()
			if len(fleetWins) != len(singleWins) {
				t.Fatalf("sites=%d workers=%d: fleet %d windows, single %d",
					g.sites, g.workers, len(fleetWins), len(singleWins))
			}
			for n := range singleWins {
				if !bytes.Equal(reportBytes(t, fleetWins[n].Report), reportBytes(t, singleWins[n].Report)) {
					t.Errorf("sites=%d workers=%d window %d: fleet report differs from single instance",
						g.sites, g.workers, n)
				}
			}
		}
	}
}

// TestFleetDegradationCensus pins the partial-fleet behavior: missing
// and lost windows surface in the census exactly once, idempotently
// under duplicate delivery, and a re-export supersedes a loss.
func TestFleetDegradationCensus(t *testing.T) {
	ds := fleetTestDataset(t)
	origin := datasetOrigin(ds)
	a := NewAnalyzer(Options{
		Dataset: "fleet", PayloadAnalysis: true, Workers: 1, ReplayWorkers: 1,
		Window: time.Minute, WindowOrigin: origin,
	})
	for i, tr := range ds.Traces {
		if err := a.AddTrace(TraceInput{Name: traceName(i), Monitored: tr.Prefix, Packets: tr.Packets}); err != nil {
			t.Fatal(err)
		}
	}
	exports, err := a.ExportAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(exports) < 3 {
		t.Fatalf("dataset too small: %d windows", len(exports))
	}
	last := len(exports) - 1

	f := NewFleet(FleetConfig{Dataset: "fleet", ExpectSites: []string{"site-a", "site-ghost"}})
	if err := f.Hello("site-a", a.FleetHello()); err != nil {
		t.Fatal(err)
	}
	// Deliver all but windows 1 (declared lost) and 2 (silently missing);
	// duplicate every delivery to check idempotence.
	seq := uint64(0)
	for _, we := range exports {
		seq++
		if we.Window == 1 || we.Window == 2 {
			continue
		}
		for range 2 {
			if err := f.Delta("site-a", we.Window, seq, we.Watermark, we.Payload); err != nil {
				t.Fatal(err)
			}
		}
	}
	seq++
	if err := f.Lost("site-a", 1, seq); err != nil {
		t.Fatal(err)
	}
	if err := f.Fin("site-a", last, seq+1, 0); err != nil {
		t.Fatal(err)
	}

	r := f.Report()
	if r.Fleet == nil {
		t.Fatal("degraded fleet report has no census")
	}
	if len(r.Fleet.Sites) != 2 {
		t.Fatalf("census sites: %+v", r.Fleet.Sites)
	}
	sa := r.Fleet.Sites[0]
	if sa.Site != "site-a" || !sa.Fin {
		t.Fatalf("census[0] = %+v, want degraded fin site-a", sa)
	}
	if len(sa.LostWindows) != 1 || sa.LostWindows[0] != 1 {
		t.Errorf("LostWindows = %v, want [1] exactly once", sa.LostWindows)
	}
	if len(sa.MissingWindows) != 1 || sa.MissingWindows[0] != 2 {
		t.Errorf("MissingWindows = %v, want [2] exactly once", sa.MissingWindows)
	}
	ghost := r.Fleet.Sites[1]
	if ghost.Site != "site-ghost" || ghost.Fin || len(ghost.MissingWindows) != len(exports) {
		t.Errorf("expected-but-absent site census = %+v", ghost)
	}

	st := f.Status()
	if st.FinalReady {
		t.Error("fleet with an absent expected site reports FinalReady")
	}
	if len(st.MissingSites) != 1 || st.MissingSites[0] != "site-ghost" {
		t.Errorf("MissingSites = %v", st.MissingSites)
	}
	if st.LostWindows != 1 {
		t.Errorf("status LostWindows = %d, want 1", st.LostWindows)
	}

	// A canonical re-export with a higher sequence supersedes the loss:
	// window 1 leaves the census.
	for _, we := range exports {
		if we.Window != 1 {
			continue
		}
		if err := f.Delta("site-a", 1, seq+2, we.Watermark, we.Payload); err != nil {
			t.Fatal(err)
		}
	}
	r = f.Report()
	if r.Fleet == nil {
		t.Fatal("census vanished while window 2 is still missing")
	}
	if got := r.Fleet.Sites[0]; len(got.LostWindows) != 0 {
		t.Errorf("re-exported window still census-lost: %+v", got)
	}
}

func traceName(i int) string { return "trace-" + string(rune('a'+i)) }

func siteName(s int) string { return "site-" + string(rune('a'+s)) }
