package core

import (
	"fmt"
	"sort"

	"enttrace/internal/appproto/dcerpc"
	"enttrace/internal/appproto/dns"
	"enttrace/internal/appproto/ftp"
	"enttrace/internal/appproto/netbios"
	"enttrace/internal/appproto/smtp"
	"enttrace/internal/appproto/sunrpc"
	"enttrace/internal/categories"
	"enttrace/internal/flows"
	"enttrace/internal/layers"
	"enttrace/internal/pipeline"
)

// replayApps runs the application-level analysis that the sequential
// dispatcher used to interleave with packet processing. Everything here
// happens in a canonical order — UDP messages by global packet index,
// then connections by first-packet index — so the result is identical
// for any worker count:
//
//  1. Captured UDP messages feed the datagram analyzers in arrival order.
//  2. Every connection (kept or not — the sequential path also parsed
//     scanner traffic incrementally) replays its dynamic registrations:
//     Endpoint Mapper responses and FTP PASV replies register service
//     ports before any later-starting connection is classified.
//  3. Kept connections accumulate transport-level statistics.
//  4. Kept connections parse their reassembled payloads.
func (a *Analyzer) replayApps(recs []pipeline.ConnRecord, streams map[*flows.Conn]*connStreams, events []udpEvent, kept map[*flows.Conn]bool) {
	apps := a.apps
	isLocal := a.opts.IsLocal

	// Phase 3 (numbering above): transport-level accumulation happens for
	// every kept conn even without payloads (email figures, windows
	// success rates, backup).
	transport := func() {
		for _, rec := range recs {
			if kept[rec.Conn] {
				apps.transportConn(rec.Conn, a.opts)
			}
		}
	}
	if !a.opts.PayloadAnalysis {
		transport()
		return
	}

	a.replayUDP(events)

	// Phase 2: dynamic port registrations, in first-packet order.
	for _, rec := range recs {
		app := streams[rec.Conn]
		if app == nil {
			continue
		}
		name, _ := a.opts.Registry.Classify(rec.Conn.Proto, rec.Conn.Key.SrcPort, rec.Conn.Key.DstPort)
		switch {
		case name == "FTP" && rec.Conn.Key.DstPort == 21:
			if kept[rec.Conn] {
				app.cliStream.Close()
				app.srvStream.Close()
			}
			a.replayFTPRegistrations(app.srvBuf.Buf)
		case name == "DCE/RPC-EPM":
			if kept[rec.Conn] {
				// The sequential path closed kept EPM streams at trace
				// end, flushing still-pending out-of-order data through
				// the PDU parser; mirror that before reading segments.
				app.cliStream.Close()
				app.srvStream.Close()
			}
			// Channel keys carry the trace ordinal: FirstIdx restarts at
			// zero every trace, and the RPC analyzer's bind state
			// persists for the Analyzer's lifetime.
			ch := fmt.Sprintf("t%d/%d", a.traceCount, rec.FirstIdx)
			a.replayEPM(ch+"/c", true, app.epmCli.segments())
			a.replayEPM(ch+"/s", false, app.epmSrv.segments())
		}
	}

	transport()

	// Phase 4: per-connection payload parsing, in first-packet order.
	for _, rec := range recs {
		conn := rec.Conn
		if !kept[conn] {
			continue
		}
		app := streams[conn]
		if app == nil {
			continue
		}
		name, _ := a.opts.Registry.Classify(conn.Proto, conn.Key.SrcPort, conn.Key.DstPort)
		client, server := conn.Key.Src, conn.Key.Dst
		wan := connWAN(conn, isLocal)
		if app.buffered && name != "DCE/RPC-EPM" && !(name == "FTP" && conn.Key.DstPort == 21) {
			app.cliStream.Close()
			app.srvStream.Close()
		}
		switch name {
		case "HTTP":
			apps.httpConn(conn, wan, app.cliBuf.Buf, app.srvBuf.Buf)
		case "SMTP":
			apps.smtpParsed(wan, smtp.Parse(app.cliBuf.Buf, app.srvBuf.Buf))
		case "CIFS":
			apps.cifsStreams(conn, false, app.cliBuf.Buf, app.srvBuf.Buf)
		case "Netbios-SSN":
			apps.ssnFrames(client, server, app.cliBuf.Buf, app.srvBuf.Buf)
			apps.cifsStreams(conn, true, app.cliBuf.Buf, app.srvBuf.Buf)
		case "NCP":
			apps.ncp.Stream(client, server, app.cliBuf.Buf)
			apps.ncp.Stream(server, client, app.srvBuf.Buf)
			apps.markNCPKeepAlive(conn)
		case "NFS":
			sunrpc.SplitRecords(app.cliBuf.Buf, func(rec []byte) {
				apps.nfs.Message(client, server, rec)
			})
			sunrpc.SplitRecords(app.srvBuf.Buf, func(rec []byte) {
				apps.nfs.Message(server, client, rec)
			})
			apps.markNFSPair(client, server, false)
		case "Spoolss":
			ch := fmt.Sprintf("t%d/%d", a.traceCount, rec.FirstIdx)
			apps.rpc.Stream(ch, true, app.cliBuf.Buf)
			apps.rpc.Stream(ch, false, app.srvBuf.Buf)
		case "FTP":
			if conn.Key.DstPort == 21 {
				apps.ftpSession(ftp.Analyze(app.cliBuf.Buf, app.srvBuf.Buf))
			}
		}
	}

	// Every stream buffer is dead now: parse results hold copies, never
	// sub-slices (the borrow contract ends here). Recycle the pooled
	// storage — including unparsed streams' out-of-order segments — so the
	// next trace reuses this one's buffers.
	for _, app := range streams {
		app.release()
	}
}

// udpAppPorts reports whether a datagram belongs to one of the
// message-based application protocols replayUDP dispatches on. Capture
// (shardSink.captureUDP) and dispatch share this predicate so the two
// cannot drift: a port added to the switch below must be added here.
func udpAppPorts(srcPort, dstPort uint16) bool {
	switch {
	case dstPort == 53 || srcPort == 53,
		dstPort == 137 || srcPort == 137,
		dstPort == 2049 || srcPort == 2049:
		return true
	}
	return false
}

// replayUDP feeds captured datagrams through the message analyzers in
// arrival order — the order the sequential path parsed them in.
func (a *Analyzer) replayUDP(events []udpEvent) {
	apps := a.apps
	var dnsMsg dns.Message
	for _, ev := range events {
		switch {
		case ev.dstPort == 53 || ev.srcPort == 53:
			if err := dns.DecodeInto(ev.payload, &dnsMsg); err == nil {
				if a.opts.IsLocal(ev.src) && a.opts.IsLocal(ev.dst) {
					apps.dnsInt.Message(ev.ts, ev.src, ev.dst, &dnsMsg)
				} else {
					apps.dnsWan.Message(ev.ts, ev.src, ev.dst, &dnsMsg)
				}
			}
		case ev.dstPort == 137 || ev.srcPort == 137:
			if m, err := netbios.DecodeNS(ev.payload); err == nil {
				apps.nbns.Message(ev.ts, ev.src, ev.dst, m)
			}
		case ev.dstPort == 2049 || ev.srcPort == 2049:
			apps.nfs.Message(ev.src, ev.dst, ev.payload)
			apps.markNFSPair(ev.src, ev.dst, true)
		}
	}
}

// replayFTPRegistrations scans complete reply lines of an FTP control
// stream's server side and registers PASV-advertised data ports, exactly
// as the incremental parser did at the moment each 227 reply was seen.
func (a *Analyzer) replayFTPRegistrations(srv []byte) {
	scanned := 0
	for {
		idx := -1
		for i := scanned; i+1 < len(srv); i++ {
			if srv[i] == '\r' && srv[i+1] == '\n' {
				idx = i
				break
			}
		}
		if idx < 0 {
			return
		}
		line := srv[scanned:idx]
		scanned = idx + 2
		for _, r := range ftp.ParseReplies(append(append([]byte{}, line...), '\r', '\n')) {
			if port, ok := ftp.PasvPort(r); ok {
				a.opts.Registry.Register(layers.ProtoTCP, port, "FTP-Data", categories.Bulk)
			}
		}
	}
}

// replayEPM walks complete DCE/RPC PDUs out of each contiguous stream
// segment of an Endpoint Mapper connection, accumulating PDU statistics
// and registering endpoint-mapped service ports. Parsing restarts at
// segment (gap) boundaries, like the incremental parser's buffer reset.
func (a *Analyzer) replayEPM(channel string, fromClient bool, segs [][]byte) {
	for _, seg := range segs {
		buf := seg
		for {
			p, n, err := dcerpc.Decode(buf)
			if err != nil || n == 0 || n > len(buf) {
				break
			}
			// Only consume complete PDUs; Decode clamps n to the buffer,
			// so compare against the header's fragment length.
			if len(buf) >= 10 {
				fragLen := int(uint16(buf[8]) | uint16(buf[9])<<8)
				if fragLen > len(buf) {
					break // the incremental parser would wait for more bytes
				}
			}
			a.apps.rpc.PDU(channel, fromClient, p)
			if iface, port, ok := dcerpc.ParseEpmMapResponse(p); ok {
				name := dcerpc.InterfaceName(iface)
				if name == "unknown" {
					name = "DCE/RPC"
				}
				a.opts.Registry.Register(layers.ProtoTCP, port, name, categories.Windows)
			}
			buf = buf[n:]
		}
	}
}

// mergeUDPEvents collects every shard's captured datagrams into global
// arrival order.
func mergeUDPEvents(sinks []*shardSink) []udpEvent {
	var n int
	for _, s := range sinks {
		n += len(s.udp)
	}
	if n == 0 {
		return nil
	}
	events := make([]udpEvent, 0, n)
	for _, s := range sinks {
		events = append(events, s.udp...)
	}
	sort.Slice(events, func(i, j int) bool { return events[i].idx < events[j].idx })
	return events
}
