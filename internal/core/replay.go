package core

import (
	"net/netip"
	"sync"
	"time"

	"enttrace/internal/appproto/dcerpc"
	"enttrace/internal/appproto/dns"
	"enttrace/internal/appproto/ftp"
	"enttrace/internal/appproto/netbios"
	"enttrace/internal/appproto/smtp"
	"enttrace/internal/appproto/sunrpc"
	"enttrace/internal/categories"
	"enttrace/internal/flows"
	"enttrace/internal/kmerge"
	"enttrace/internal/layers"
	"enttrace/internal/pipeline"
	"enttrace/internal/roles"
	"enttrace/internal/stats"
)

// replayApps runs the application-level analysis that the sequential
// dispatcher used to interleave with packet processing, as a two-phase
// deterministic replay:
//
// Phase A (serial, cheap) walks connections in canonical first-packet
// order doing only the order-sensitive work — FTP PASV and Endpoint
// Mapper port registrations — and snapshots each connection's registry
// classification at its position in that order. The snapshot is what
// pins the incremental semantics: a port registered later in the trace
// classifies only later-starting connections, for any worker count.
//
// Phase B (parallel) fans the expensive work — per-connection payload
// parsing, transport-level accumulation, and UDP message dispatch — out
// across the replay workers. Work is sharded by canonical host pair, so
// every stateful pairing domain (DNS/NBNS transaction matching, NFS/NCP
// call-reply pairing, per-host-pair outcome folding) lives wholly inside
// one worker and is processed there in global order; each worker
// accumulates into its own appAggregates shard. The shards merge in
// canonical order at report time (Analyzer.mergedApps), and because
// every merged quantity is either commutative or pair-contained, the
// report is byte-identical for any replay worker count.
//
// Phase B also carries the connection-level accumulation that used to
// run serially after replay — Table 3/Figure 1/origin sums (commutative)
// and the fan/role distinct-peer evidence (pair-contained) — folded into
// the Analyzer at join time in shard order.
//
// replayApps returns after phase A with phase B in flight; the caller
// runs work that is independent of the per-shard state (trace load
// accounting) concurrently, then calls the returned join to wait for
// the workers and fold their connection-level results. Phase B touches
// only per-worker state, the stream buffers it owns, and the
// (mutex-guarded) reassembly pool; it reads the registry, connections,
// and kept set without writing them — which is what makes the overlap
// safe.
// In windowed mode (Analyzer.win != nil) each worker additionally cuts
// its shard's application aggregate into per-window deltas as it crosses
// window boundaries in event time — first along the UDP pass, then
// along the connection pass — banking connection-level sums per window
// alongside. Workers never synchronize at boundaries (a lagging worker
// cuts late); the deltas fold into the window and cumulative aggregates
// at join, and the watermark machinery decides when windows complete.
// The per-trace distinct-peer censuses (fan, roles) stay trace-granular:
// slicing them per window would double-count peers seen in two windows.
// maxTS is the trace's event-time extent; connections still idle past
// the IdleEvict horizon at that instant count toward the AgedOut
// disposition. The check reads only the connection's own timestamps and
// the trace-wide extent, so the count is bit-identical for any worker
// count — whether or not the shard tables' memory sweep ever ran.
func (a *Analyzer) replayApps(recs []pipeline.ConnRecord, streams map[*flows.Conn]*connStreams, events []udpEvent, kept map[*flows.Conn]bool, monitored netip.Prefix, tgt *epochAgg, maxTS time.Time) (join func()) {
	shards := a.ensureReplayShards()
	nshard := len(shards)

	// Phase A: classification snapshots (protocol name and Figure 1
	// category) plus dynamic port registrations, in first-packet order.
	// Registrations must precede every snapshot taken after them — this
	// loop is the only place the registry is written, so phase B can
	// classify from the snapshots alone and never touch the registry
	// concurrently.
	names := make([]string, len(recs))
	cats := make([]string, len(recs))
	for i, rec := range recs {
		name, cat := a.opts.Registry.Classify(rec.Conn.Proto, rec.Conn.Key.Src, rec.Conn.Key.Dst, rec.Conn.Key.SrcPort, rec.Conn.Key.DstPort)
		names[i], cats[i] = name, cat
		if !a.opts.PayloadAnalysis {
			continue
		}
		app := streams[rec.Conn]
		if app == nil {
			continue
		}
		switch {
		case name == "FTP" && rec.Conn.Key.DstPort == 21:
			if kept[rec.Conn] {
				app.cliStream.Close()
				app.srvStream.Close()
			}
			a.replayFTPRegistrations(rec.Conn.Key.Dst, app.srvBuf.Buf)
		case name == "DCE/RPC-EPM":
			if kept[rec.Conn] {
				// The sequential path closed kept EPM streams at trace
				// end, flushing still-pending out-of-order data through
				// the PDU parser; mirror that before reading segments.
				app.cliStream.Close()
				app.srvStream.Close()
			}
			// Channel keys carry the trace ordinal: FirstIdx restarts at
			// zero every trace, and the RPC analyzer's bind state
			// persists for the Analyzer's lifetime.
			a.replayEPM(dcerpc.ChanKey{Trace: a.traceCount, Conn: rec.FirstIdx, Side: dcerpc.SideClient}, true, app.epmCli.segments())
			a.replayEPM(dcerpc.ChanKey{Trace: a.traceCount, Conn: rec.FirstIdx, Side: dcerpc.SideServer}, false, app.epmSrv.segments())
		}
	}

	// Phase B: partition connections and UDP messages by canonical host
	// pair and fan out. Per-shard slices preserve global order, so each
	// worker sees exactly the serial subsequence of its pairs.
	connsByShard := make([][]int32, nshard)
	for i, rec := range recs {
		s := pairShard(rec.Conn.Key.Src, rec.Conn.Key.Dst, nshard)
		connsByShard[s] = append(connsByShard[s], int32(i))
	}
	udpByShard := make([][]udpEvent, nshard)
	for _, ev := range events {
		s := pairShard(ev.src, ev.dst, nshard)
		udpByShard[s] = append(udpByShard[s], ev)
	}

	trace := a.traceCount
	inMonitored := func(h netip.Addr) bool { return monitored.Contains(h) }
	results := make([]*replayResult, nshard)
	run := func(w int) {
		ap := shards[w]
		rr := &replayResult{}
		// processConn replays one connection into the worker's current
		// aggregates.
		processConn := func(i int32, ca *connAggregates, keptConns *[]*flows.Conn) {
			rec := recs[i]
			conn := rec.Conn
			app := streams[conn]
			// AgedOut census: every connection (kept or filtered) idle
			// past the horizon at end of trace. Idle-split predecessor
			// segments qualify by construction (their successor's first
			// packet already lies past Last + horizon).
			if a.opts.IdleEvict > 0 && maxTS.Sub(conn.Last) > a.opts.IdleEvict {
				ca.agedOut++
			}
			if kept[conn] {
				*keptConns = append(*keptConns, conn)
				a.accumulateConn(ca, conn, cats[i])
				// Transport-level accumulation happens for every kept
				// conn even without payloads (email figures, windows
				// success rates, backup).
				ap.transportConn(conn, names[i], a.opts.IsLocal)
				if a.opts.PayloadAnalysis && app != nil {
					a.parseConnPayload(ap, trace, rec, names[i], app)
				}
			}
			if app != nil {
				// Parse results hold copies, never sub-slices (the
				// borrow contract ends here); recycle the pooled stream
				// storage — including unparsed streams' out-of-order
				// segments — so the next trace reuses this one's buffers.
				app.release()
				// Census after release: Discard has finalized the ledger.
				// Every connection with streams contributes, kept or not —
				// hostile input must not hide behind the scan filter.
				ca.hostile.fold(app)
			}
		}
		keptConns := make([]*flows.Conn, 0, len(connsByShard[w]))
		if a.win == nil {
			// Batch: UDP messages first, in arrival order — the order
			// the sequential path parsed them in relative to connection
			// replay — then connections, one aggregate for the trace.
			replayUDPInto(ap, udpByShard[w], a.opts.IsLocal)
			ca := newConnAggregates()
			for _, i := range connsByShard[w] {
				processConn(i, ca, &keptConns)
			}
			rr.ca = ca
		} else {
			rr.deltas = a.runWindowed(w, ap, recs, connsByShard[w], udpByShard[w], processConn, &keptConns)
		}
		// Distinct-peer censuses over this shard's kept connections:
		// exact under the pair sharding, since every (host, peer) edge
		// domain lives wholly in one shard. Trace-granular by design —
		// see the windowed note above.
		rr.fan = flows.FanInOut(keptConns, inMonitored, a.opts.IsLocal)
		rr.roles = roles.Accumulate(keptConns)
		results[w] = rr
	}
	// Even a single replay worker runs as a goroutine, so the caller's
	// shard-independent accumulation overlaps it on multicore hardware.
	var wg sync.WaitGroup
	wg.Add(nshard)
	for w := 0; w < nshard; w++ {
		go func(w int) {
			defer wg.Done()
			run(w)
		}(w)
	}

	return func() {
		wg.Wait()
		a.foldReplayResults(tgt, results)
		// Streams whose connection the flow table never surfaced
		// (evicted mid-trace) have no ConnRecord and so no owning
		// worker; release is idempotent, so a serial sweep catches the
		// stragglers.
		for _, app := range streams {
			app.release()
		}
	}
}

// runWindowed is one worker's windowed replay: the same UDP-then-conns
// sequence as the batch path (so the shard's pairing state evolves
// identically), with the shard aggregate cut into per-window snapshots
// at boundary crossings. Both passes walk their events in arrival order,
// which within a trace is timestamp order, so each pass's cuts are
// monotone; timestamp regressions (possible in real captures) clamp to
// the current window rather than banking backwards.
func (a *Analyzer) runWindowed(w int, ap *appAggregates, recs []pipeline.ConnRecord, connIdx []int32, events []udpEvent, processConn func(int32, *connAggregates, *[]*flows.Conn), keptConns *[]*flows.Conn) []windowDelta {
	var deltas []windowDelta
	// UDP pass.
	cur := -1
	bankUDP := func() {
		if d := ap.cut(); d != nil {
			deltas = append(deltas, windowDelta{window: cur, apps: d})
			a.cumApps[w].Merge(d)
		}
	}
	for _, ev := range events {
		n := a.win.windowOf(ev.ts)
		if n < cur {
			n = cur
		}
		if cur >= 0 && n != cur {
			bankUDP()
		}
		cur = n
		replayUDPEvent(ap, ev, a.opts.IsLocal)
	}
	if cur >= 0 {
		bankUDP()
	}
	// Connection pass: a connection banks wholly into the window of its
	// first packet, even when it straddles the boundary.
	cur = -1
	var ca *connAggregates
	bankConns := func() {
		d := ap.cut()
		if d != nil || ca != nil {
			deltas = append(deltas, windowDelta{window: cur, apps: d, conns: ca})
		}
		if d != nil {
			a.cumApps[w].Merge(d)
		}
		if ca != nil {
			a.cumConns[w].merge(ca)
		}
		ca = nil
	}
	for _, i := range connIdx {
		n := a.win.windowOf(recs[i].Conn.Start)
		if n < cur {
			n = cur
		}
		if cur >= 0 && n != cur {
			bankConns()
		}
		cur = n
		if ca == nil {
			ca = newConnAggregates()
		}
		processConn(i, ca, keptConns)
	}
	if cur >= 0 {
		bankConns()
	}
	return deltas
}

// connAggregates is one replay worker's connection-level accumulation:
// the Table 3 transport breakdown, Figure 1 category splits, and §4
// origin mix (all commutative sums).
type connAggregates struct {
	transBytes, transConns *stats.Counter
	origins                *stats.Counter
	catBytes, catConns     map[string]*locSplit
	// hostile is the hostile-input census over this worker's connections
	// (sums plus one max; see hostileCounters).
	hostile hostileCounters
	// agedOut counts connections idle past the IdleEvict horizon at end
	// of trace (the report's AgedOut disposition).
	agedOut int64
}

func newConnAggregates() *connAggregates {
	return &connAggregates{
		transBytes: stats.NewCounter(),
		transConns: stats.NewCounter(),
		origins:    stats.NewCounter(),
		catBytes:   make(map[string]*locSplit),
		catConns:   make(map[string]*locSplit),
	}
}

// merge folds another worker aggregate into ca (all commutative sums).
func (ca *connAggregates) merge(o *connAggregates) {
	ca.transBytes.Merge(o.transBytes)
	ca.transConns.Merge(o.transConns)
	ca.origins.Merge(o.origins)
	foldLocSplit(ca.catBytes, o.catBytes)
	foldLocSplit(ca.catConns, o.catConns)
	ca.hostile.merge(&o.hostile)
	ca.agedOut += o.agedOut
}

// replayResult is one worker's output for one trace: the whole-trace
// connection sums (batch mode) or per-window deltas (windowed mode),
// plus the trace-granular distinct-peer censuses.
type replayResult struct {
	ca     *connAggregates
	deltas []windowDelta
	fan    map[netip.Addr]*flows.FanStats
	roles  *roles.Partial
}

// foldReplayResults folds the per-worker results into the trace target,
// in shard order; every fold is a sum (or, windowed, a banked delta
// merge in shard-major order), so the totals are identical for any
// shard count.
func (a *Analyzer) foldReplayResults(tgt *epochAgg, results []*replayResult) {
	var rolePartial *roles.Partial
	for _, rr := range results {
		if rr.ca != nil {
			tgt.foldConns(rr.ca)
		}
		if len(rr.deltas) > 0 {
			a.win.bankDeltas(rr.deltas)
		}
		tgt.foldFan(rr.fan)
		if rolePartial == nil {
			rolePartial = rr.roles
		} else {
			rolePartial.Merge(rr.roles)
		}
	}
	// Role verdicts are per trace (thresholds apply to the merged
	// evidence), summed across traces like the serial path did.
	if rolePartial != nil {
		for role, n := range roles.Summary(rolePartial.Finalize(roles.Config{})) {
			tgt.roleCounts[role] += n
		}
	}
}

func foldLocSplit(dst, src map[string]*locSplit) {
	for k, s := range src {
		d := dst[k]
		if d == nil {
			d = &locSplit{}
			dst[k] = d
		}
		d.Ent += s.Ent
		d.Wan += s.Wan
	}
}

// parseConnPayload replays one kept connection's reassembled payload
// into the worker's aggregate shard. name is the phase-A classification
// snapshot.
func (a *Analyzer) parseConnPayload(ap *appAggregates, trace int, rec pipeline.ConnRecord, name string, app *connStreams) {
	conn := rec.Conn
	client, server := conn.Key.Src, conn.Key.Dst
	wan := connWAN(conn, a.opts.IsLocal)
	if app.buffered && name != "DCE/RPC-EPM" && !(name == "FTP" && conn.Key.DstPort == 21) {
		app.cliStream.Close()
		app.srvStream.Close()
	}
	switch name {
	case "HTTP":
		ap.httpConn(conn, wan, app.cliBuf.Buf, app.srvBuf.Buf)
	case "SMTP":
		ap.smtpParsed(wan, smtp.Parse(app.cliBuf.Buf, app.srvBuf.Buf))
	case "CIFS":
		ap.cifsStreams(conn, false, app.cliBuf.Buf, app.srvBuf.Buf)
	case "Netbios-SSN":
		ap.ssnFrames(client, server, app.cliBuf.Buf, app.srvBuf.Buf)
		ap.cifsStreams(conn, true, app.cliBuf.Buf, app.srvBuf.Buf)
	case "NCP":
		ap.ncp.Stream(client, server, app.cliBuf.Buf)
		ap.ncp.Stream(server, client, app.srvBuf.Buf)
		ap.markNCPKeepAlive(conn)
	case "NFS":
		sunrpc.SplitRecords(app.cliBuf.Buf, func(rec []byte) {
			ap.nfs.Message(client, server, rec)
		})
		sunrpc.SplitRecords(app.srvBuf.Buf, func(rec []byte) {
			ap.nfs.Message(server, client, rec)
		})
		ap.markNFSPair(client, server, false)
	case "Spoolss":
		key := dcerpc.ChanKey{Trace: trace, Conn: rec.FirstIdx, Side: dcerpc.SideBoth}
		ap.rpc.StreamKey(key, true, app.cliBuf.Buf)
		ap.rpc.StreamKey(key, false, app.srvBuf.Buf)
	case "FTP":
		if conn.Key.DstPort == 21 {
			ap.ftpSession(trace, rec.FirstIdx, ftp.Analyze(app.cliBuf.Buf, app.srvBuf.Buf))
		}
	}
}

// pairShard maps an unordered address pair onto a replay shard. The
// assignment is stable for the Analyzer's lifetime (FNV over the
// addresses), so a host pair's state — transaction pairing, outcome
// folding, dedup sets — accumulates in the same shard across traces.
func pairShard(x, y netip.Addr, n int) int {
	if n <= 1 {
		return 0
	}
	hx, hy := addrHash(x), addrHash(y)
	if hx > hy {
		hx, hy = hy, hx
	}
	h := hx ^ (hy*0x9E3779B97F4A7C15 + 0x85EBCA6B)
	h ^= h >> 33
	return int(h % uint64(n))
}

// addrHash is FNV-1a over the address's 16-byte form.
func addrHash(a netip.Addr) uint64 {
	b := a.As16()
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}

// udpAppPorts reports whether a datagram belongs to one of the
// message-based application protocols replayUDP dispatches on. Capture
// (shardSink.captureUDP) and dispatch share this predicate so the two
// cannot drift: a port added to the switch below must be added here.
func udpAppPorts(srcPort, dstPort uint16) bool {
	switch {
	case dstPort == 53 || srcPort == 53,
		dstPort == 137 || srcPort == 137,
		dstPort == 2049 || srcPort == 2049:
		return true
	}
	return false
}

// replayUDPInto feeds captured datagrams through the message analyzers
// in arrival order — the order the sequential path parsed them in.
func replayUDPInto(ap *appAggregates, events []udpEvent, isLocal func(netip.Addr) bool) {
	for _, ev := range events {
		replayUDPEvent(ap, ev, isLocal)
	}
}

// replayUDPEvent dispatches one captured datagram. The DNS decode
// scratch lives on the aggregate (one per worker, reused across
// events); the windowed pass dispatches event-by-event between window
// cuts, and sharing this dispatcher with the batch loop keeps the two
// paths from drifting.
func replayUDPEvent(ap *appAggregates, ev udpEvent, isLocal func(netip.Addr) bool) {
	switch {
	case ev.dstPort == 53 || ev.srcPort == 53:
		if err := dns.DecodeInto(ev.payload, &ap.dnsScratch); err == nil {
			if isLocal(ev.src) && isLocal(ev.dst) {
				ap.dnsInt.Message(ev.ts, ev.src, ev.dst, &ap.dnsScratch)
			} else {
				ap.dnsWan.Message(ev.ts, ev.src, ev.dst, &ap.dnsScratch)
			}
		}
	case ev.dstPort == 137 || ev.srcPort == 137:
		if m, err := netbios.DecodeNS(ev.payload); err == nil {
			ap.nbns.Message(ev.ts, ev.src, ev.dst, m)
		}
	case ev.dstPort == 2049 || ev.srcPort == 2049:
		ap.nfs.Message(ev.src, ev.dst, ev.payload)
		ap.markNFSPair(ev.src, ev.dst, true)
	}
}

// replayFTPRegistrations scans complete reply lines of an FTP control
// stream's server side and registers PASV-advertised data ports, exactly
// as the incremental parser did at the moment each 227 reply was seen.
// Lines are parsed in place; nothing here allocates. host is the FTP
// server (the control connection's responder): a 227 reply advertises a
// data port on the server itself, so the registration is scoped there.
func (a *Analyzer) replayFTPRegistrations(host netip.Addr, srv []byte) {
	scanned := 0
	for {
		idx := -1
		for i := scanned; i+1 < len(srv); i++ {
			if srv[i] == '\r' && srv[i+1] == '\n' {
				idx = i
				break
			}
		}
		if idx < 0 {
			return
		}
		line := srv[scanned:idx]
		scanned = idx + 2
		code, text, ok := ftp.ParseReplyLine(line)
		if !ok || code != 227 {
			continue
		}
		if port, ok := ftp.PasvPortFromText(text); ok {
			a.opts.Registry.Register(host, layers.ProtoTCP, port, "FTP-Data", categories.Bulk)
		}
	}
}

// replayEPM walks complete DCE/RPC PDUs out of each contiguous stream
// segment of an Endpoint Mapper connection, accumulating PDU statistics
// and registering endpoint-mapped service ports. Parsing restarts at
// segment (gap) boundaries, like the incremental parser's buffer reset.
func (a *Analyzer) replayEPM(key dcerpc.ChanKey, fromClient bool, segs [][]byte) {
	for _, seg := range segs {
		buf := seg
		for {
			p, n, err := dcerpc.Decode(buf)
			if err != nil || n == 0 || n > len(buf) {
				break
			}
			// Only consume complete PDUs; Decode clamps n to the buffer,
			// so compare against the header's fragment length.
			if len(buf) >= 10 {
				fragLen := int(uint16(buf[8]) | uint16(buf[9])<<8)
				if fragLen > len(buf) {
					break // the incremental parser would wait for more bytes
				}
			}
			a.apps.rpc.PDUKey(key, fromClient, p)
			if iface, host, port, ok := dcerpc.ParseEpmMapResponse(p); ok {
				name := dcerpc.InterfaceName(iface)
				if name == "unknown" {
					name = "DCE/RPC"
				}
				a.opts.Registry.Register(host, layers.ProtoTCP, port, name, categories.Windows)
			}
			buf = buf[n:]
		}
	}
}

// mergeUDPEvents collects every shard's captured datagrams into global
// arrival order. Each shard's slice is already sorted by global index
// (packets route to a pipeline worker in read order), so this is a
// k-way merge of sorted runs, not a sort. The loser tree keeps this
// serial-path step at O(n log k) regardless of shard count; idx values
// are unique, so the order is total.
func mergeUDPEvents(sinks []*shardSink) []udpEvent {
	runs := make([][]udpEvent, 0, len(sinks))
	for _, s := range sinks {
		runs = append(runs, s.udp)
	}
	return kmerge.MergeBy(runs, func(e udpEvent) int64 { return e.idx })
}
