package core

import (
	"fmt"
	"sort"
	"strings"

	"enttrace/internal/stats"
)

// RenderText renders a dataset report in the style of the paper's tables.
// The analysis API returns structured data; this is the presentation layer
// used by cmd/entreport and cmd/entanalyze.
func RenderText(r *Report) string {
	var b strings.Builder
	if r.Window != nil {
		fmt.Fprintf(&b, "==== Dataset %s · window %d [%s, %s) ====\n\n",
			r.Dataset, r.Window.Index,
			r.Window.Start.UTC().Format("2006-01-02 15:04:05"),
			r.Window.End.UTC().Format("15:04:05"))
	} else {
		fmt.Fprintf(&b, "==== Dataset %s ====\n\n", r.Dataset)
	}

	t1 := stats.NewTable("Table 1: dataset characteristics (measured)",
		"metric", "value")
	t1.AddRow("traces", fmt.Sprint(r.Table1.Traces))
	t1.AddRow("packets", fmt.Sprint(r.Table1.Packets))
	t1.AddRow("monitored hosts", fmt.Sprint(r.Table1.MonitoredHosts))
	t1.AddRow("LBNL hosts", fmt.Sprint(r.Table1.LocalHosts))
	t1.AddRow("remote hosts", fmt.Sprint(r.Table1.RemoteHosts))
	b.WriteString(t1.String() + "\n")

	t2 := stats.NewTable("Table 2: network-layer protocol mix (packets)", "proto", "fraction")
	for _, k := range []string{"IP", "ARP", "IPX", "Other"} {
		t2.AddRow(k, stats.Pct(r.Table2[k]))
	}
	b.WriteString(t2.String() + "\n")

	t3 := stats.NewTable("Table 3: transport mix", "transport", "bytes", "conns")
	for _, k := range []string{"TCP", "UDP", "ICMP"} {
		t3.AddRow(k, stats.Pct(r.Table3.BytesFrac[k]), stats.Pct(r.Table3.ConnsFrac[k]))
	}
	t3.AddRow("total", stats.Bytes(r.Table3.TotalBytes), fmt.Sprintf("%d conns", r.Table3.TotalConns))
	b.WriteString(t3.String() + "\n")

	fmt.Fprintf(&b, "Scanner removal (§3): %d scanners, %s of connections removed\n\n",
		r.Scan.Scanners, stats.Pct(r.Scan.RemovedFraction))

	f1 := stats.NewTable("Figure 1: application categories (% of unicast payload / connections)",
		"category", "bytes ent", "bytes wan", "conns ent", "conns wan")
	for _, row := range r.Figure1 {
		f1.AddRow(row.Category,
			stats.Pct(row.BytesEnt), stats.Pct(row.BytesWan),
			stats.Pct(row.ConnsEnt), stats.Pct(row.ConnsWan))
	}
	b.WriteString(f1.String() + "\n")

	fmt.Fprintf(&b, "Origins (§4): ent-ent %s, ent→wan %s, wan→ent %s, mcast-int %s, mcast-ext %s\n",
		stats.Pct(r.Origins["ent-ent"]), stats.Pct(r.Origins["ent-wan"]),
		stats.Pct(r.Origins["wan-ent"]), stats.Pct(r.Origins["multicast-internal"]),
		stats.Pct(r.Origins["multicast-external"]))
	fmt.Fprintf(&b, "Figure 2: hosts=%d, internal-only fan-in %s, internal-only fan-out %s\n\n",
		r.Figure2.Hosts, stats.Pct(r.Figure2.OnlyInternalFanIn), stats.Pct(r.Figure2.OnlyInternalFanOut))

	if r.HTTP.InternalRequests > 0 {
		t6 := stats.NewTable("Table 6: automated clients, share of internal HTTP",
			"client", "requests", "data")
		for _, k := range sortedKeys(r.HTTP.Automated) {
			v := r.HTTP.Automated[k]
			t6.AddRow(k, stats.Pct(v.ReqFrac), stats.Pct(v.ByteFrac))
		}
		b.WriteString(t6.String() + "\n")
		fmt.Fprintf(&b, "HTTP fan-out (Fig 3): median ent %.0f (N=%d) vs wan %.0f (N=%d) servers/client\n",
			cdfMedian(r.HTTP.FanOutEnt), r.HTTP.NEntClients, cdfMedian(r.HTTP.FanOutWan), r.HTTP.NWanClients)
		fmt.Fprintf(&b, "HTTP conn success by pair: ent %s (n=%d) vs wan %s (n=%d)\n",
			stats.Pct(r.HTTP.SuccessEnt), r.HTTP.PairsEnt, stats.Pct(r.HTTP.SuccessWan), r.HTTP.PairsWan)
		fmt.Fprintf(&b, "Conditional GETs: ent %s of requests (%s of bytes) vs wan %s (%s)\n",
			stats.Pct(r.HTTP.CondEnt), stats.Pct(r.HTTP.CondBytesEnt),
			stats.Pct(r.HTTP.CondWan), stats.Pct(r.HTTP.CondBytesWan))
		t7 := stats.NewTable("Table 7: HTTP reply content classes",
			"class", "req ent", "req wan", "bytes ent", "bytes wan")
		for _, cls := range []string{"text", "image", "application", "other"} {
			t7.AddRow(cls,
				stats.Pct(r.HTTP.ContentReqEnt[cls]), stats.Pct(r.HTTP.ContentReqWan[cls]),
				stats.Pct(r.HTTP.ContentByteEnt[cls]), stats.Pct(r.HTTP.ContentByteWan[cls]))
		}
		b.WriteString(t7.String())
		fmt.Fprintf(&b, "Figure 4: median reply size ent %.0fB wan %.0fB; GET %s of requests; request success %s\n\n",
			cdfMedian(r.HTTP.ReplySizeEnt), cdfMedian(r.HTTP.ReplySizeWan),
			stats.Pct(r.HTTP.GETFrac), stats.Pct(r.HTTP.RequestSuccess))
	}

	t8 := stats.NewTable("Table 8: email bytes", "proto", "bytes")
	for _, k := range []string{"SMTP", "SIMAP", "IMAP4", "Other"} {
		t8.AddRow(k, stats.Bytes(r.Email.Bytes[k]))
	}
	b.WriteString(t8.String())
	fmt.Fprintf(&b, "Figure 5: SMTP median duration ent %.3fs wan %.3fs; IMAP/S ent %.1fs wan %.1fs\n",
		r.Email.MedianSMTPDurEnt, r.Email.MedianSMTPDurWan,
		r.Email.MedianIMAPSDurEnt, r.Email.MedianIMAPSDurWan)
	fmt.Fprintf(&b, "SMTP success: ent %s wan %s; IMAP/S success %s\n\n",
		stats.Pct(r.Email.SMTPSuccessEnt), stats.Pct(r.Email.SMTPSuccessWan), stats.Pct(r.Email.IMAPSSuccess))

	fmt.Fprintf(&b, "Name services (§5.1.3):\n")
	fmt.Fprintf(&b, "  DNS median latency: internal %.2fms, wan %.1fms\n",
		r.Names.DNSMedianLatencyEntMs, r.Names.DNSMedianLatencyWanMs)
	fmt.Fprintf(&b, "  DNS types: A %s AAAA %s PTR %s MX %s\n",
		stats.Pct(r.Names.DNSTypes["A"]), stats.Pct(r.Names.DNSTypes["AAAA"]),
		stats.Pct(r.Names.DNSTypes["PTR"]), stats.Pct(r.Names.DNSTypes["MX"]))
	fmt.Fprintf(&b, "  DNS rcodes: NOERROR %s NXDOMAIN %s | Netbios/NS failure %s\n",
		stats.Pct(r.Names.DNSRcodes["NOERROR"]), stats.Pct(r.Names.DNSRcodes["NXDOMAIN"]),
		stats.Pct(r.Names.NBNSFailureRate))
	fmt.Fprintf(&b, "  NBNS ops: query %s refresh %s; name types: wkst/srv %s dom/browser %s\n",
		stats.Pct(r.Names.NBNSOps["query"]), stats.Pct(r.Names.NBNSOps["refresh"]),
		stats.Pct(r.Names.NBNSNameTypes["workstation/server"]), stats.Pct(r.Names.NBNSNameTypes["domain/browser"]))
	fmt.Fprintf(&b, "  top-10 clients: DNS %s of requests, NBNS %s\n\n",
		stats.Pct(r.Names.DNSTop10ClientShare), stats.Pct(r.Names.NBNSTop10ClientShare))

	t9 := stats.NewTable("Table 9: Windows connection outcomes by host pair",
		"service", "pairs", "successful", "rejected", "unanswered")
	for _, svc := range []string{"Netbios/SSN", "CIFS", "Endpoint Mapper"} {
		o := r.Windows.Table9[svc]
		t9.AddRow(svc, fmt.Sprint(o.Pairs), stats.Pct(o.Success), stats.Pct(o.Rejected), stats.Pct(o.Unanswered))
	}
	b.WriteString(t9.String())
	if r.Windows.CIFSTotalRequests > 0 {
		fmt.Fprintf(&b, "Netbios/SSN handshake success: %s\n", stats.Pct(r.Windows.SSNHandshakeSuccess))
		t10 := stats.NewTable("Table 10: CIFS command mix", "category", "requests", "data")
		for _, k := range []string{"SMB Basic", "RPC Pipes", "Windows File Sharing", "LANMAN", "Other"} {
			t10.AddRow(k, stats.Pct(r.Windows.CIFSRequests[k]), stats.Pct(r.Windows.CIFSBytes[k]))
		}
		b.WriteString(t10.String())
		t11 := stats.NewTable("Table 11: DCE/RPC function mix", "function", "requests", "data")
		for _, k := range []string{"NetLogon", "LsaRPC", "Spoolss/WritePrinter", "Spoolss/other", "EPM", "Other"} {
			t11.AddRow(k, stats.Pct(r.Windows.RPCRequests[k]), stats.Pct(r.Windows.RPCBytes[k]))
		}
		b.WriteString(t11.String() + "\n")
	}

	if r.FileSvc.NFSRequests > 0 {
		t13 := stats.NewTable("Table 13: NFS request mix", "request", "share", "data share")
		for _, k := range []string{"Read", "Write", "GetAttr", "LookUp", "Access", "Other"} {
			t13.AddRow(k, stats.Pct(r.FileSvc.NFSRequestMix[k]), stats.Pct(r.FileSvc.NFSByteMix[k]))
		}
		b.WriteString(t13.String())
		t14 := stats.NewTable("Table 14: NCP request mix", "request", "share", "data share")
		for _, k := range []string{"Read", "Write", "FileDirInfo", "File Open/Close", "File Size", "File Search", "Directory Service", "Other"} {
			t14.AddRow(k, stats.Pct(r.FileSvc.NCPRequestMix[k]), stats.Pct(r.FileSvc.NCPByteMix[k]))
		}
		b.WriteString(t14.String())
		fmt.Fprintf(&b, "NFS: %d requests, success %s, UDP pairs %d vs TCP %d, top-3 pair share %s\n",
			r.FileSvc.NFSRequests, stats.Pct(r.FileSvc.NFSSuccess),
			r.FileSvc.NFSUDPPairs, r.FileSvc.NFSTCPPairs, stats.Pct(r.FileSvc.NFSTop3Share))
		fmt.Fprintf(&b, "NCP: %d requests, success %s, keep-alive-only conns %s, top-3 pair share %s\n",
			r.FileSvc.NCPRequests, stats.Pct(r.FileSvc.NCPSuccess),
			stats.Pct(r.FileSvc.NCPKeepAliveOnlyFrac), stats.Pct(r.FileSvc.NCPTop3Share))
		fmt.Fprintf(&b, "Figure 8 medians: NFS req %.0fB reply %.0fB; NCP req %.0fB reply %.0fB\n\n",
			cdfMedian(r.FileSvc.NFSReqSizes), cdfMedian(r.FileSvc.NFSReplySizes),
			cdfMedian(r.FileSvc.NCPReqSizes), cdfMedian(r.FileSvc.NCPReplySizes))
	}

	if r.Interactive.SSHConns > 0 {
		fmt.Fprintf(&b, "Interactive: %d SSH conns, %s bulk (≥200KB), mean payload/pkt %.0fB\n",
			r.Interactive.SSHConns, stats.Pct(r.Interactive.SSHBulkFrac), r.Interactive.MeanSSHPayloadPerPkt)
	}
	if r.Bulk.FTPSessions > 0 {
		fmt.Fprintf(&b, "Bulk: %d FTP sessions (%d transfers, login %s), %d data conns carrying %s; HPSS %s\n\n",
			r.Bulk.FTPSessions, r.Bulk.FTPTransfers, stats.Pct(r.Bulk.FTPLoginRate),
			r.Bulk.FTPDataConns, stats.Bytes(r.Bulk.FTPDataBytes), stats.Bytes(r.Bulk.HPSSBytes))
	}

	t15 := stats.NewTable("Table 15: backup applications", "app", "conns", "bytes")
	for _, k := range []string{"VERITAS-BACKUP-CTRL", "VERITAS-BACKUP-DATA", "DANTZ", "CONNECTED-BACKUP"} {
		t15.AddRow(k, fmt.Sprint(r.Backup.Conns[k]), stats.Bytes(r.Backup.Bytes[k]))
	}
	b.WriteString(t15.String())
	fmt.Fprintf(&b, "Dantz bidirectional (≥100KB each way): %s of connections\n\n", stats.Pct(r.Backup.DantzBidirFrac))

	fmt.Fprintf(&b, "Load (§6, Figures 9–10):\n")
	fmt.Fprintf(&b, "  peak 1s utilization across traces: median %.2f Mbps, max %.1f Mbps\n",
		cdfMedian(r.Load.Peak1s), cdfMax(r.Load.Peak1s))
	fmt.Fprintf(&b, "  peak 60s: median %.2f Mbps; typical per-second median %.3f Mbps\n",
		cdfMedian(r.Load.Peak60s), r.Load.MedianOfMedians)
	fmt.Fprintf(&b, "  retransmission: max internal %.1f%%; traces >1%%: ent %s, wan %s\n\n",
		r.Load.MaxRetransEnt*100, stats.Pct(r.Load.EntOver1Pct), stats.Pct(r.Load.WanOver1Pct))

	if r.Load.MedianHurst > 0 {
		fmt.Fprintf(&b, "Self-similarity (extension): median per-trace Hurst estimate %.2f\n", r.Load.MedianHurst)
	}
	h := r.Hostile
	fmt.Fprintf(&b, "Hostile-input census (extension):\n")
	fmt.Fprintf(&b, "  reassembly: %s ingested over %d streams; delivered %s, duplicate %s (%s), conflicting overlap %s (%s), discarded %s\n",
		stats.Bytes(h.IngestBytes), h.Streams, stats.Bytes(h.DeliveredBytes),
		stats.Bytes(h.DuplicateBytes), stats.Pct(h.DuplicateFrac),
		stats.Bytes(h.ConflictBytes), stats.Pct(h.ConflictFrac), stats.Bytes(h.DiscardedBytes))
	fmt.Fprintf(&b, "  gaps: %d events skipping %s (%s of stream space); seq wraps %d; peak pending %s\n",
		h.GapEvents, stats.Bytes(h.GapSkippedBytes), stats.Pct(h.GapFrac), h.WrapEvents, stats.Bytes(h.PeakPendingBytes))
	fmt.Fprintf(&b, "  bogus RSTs %d; data-after-RST segments %d; undecodable frames %d\n\n",
		h.BogusRSTs, h.PostRSTDataSegments, h.UndecodableFrames)
	if se := r.SourceErrors; se.Errors > 0 || se.AgedOutConns > 0 || se.CapEvictedConns > 0 {
		fmt.Fprintf(&b, "Degraded-run census (extension):\n")
		if se.Errors > 0 {
			fmt.Fprintf(&b, "  source errors: %d skipped, %s lost", se.Errors, stats.Bytes(se.LostBytes))
			for _, k := range sortedKeys(se.ByKind) {
				fmt.Fprintf(&b, "; %s %d", k, se.ByKind[k])
			}
			b.WriteString("\n")
			for _, t := range se.Traces {
				term := ""
				if t.Terminal {
					term = " (trace ended early)"
				}
				fmt.Fprintf(&b, "    %s: %d errors, %s lost, offsets %d..%d%s\n",
					t.Trace, t.Errors, stats.Bytes(t.LostBytes), t.FirstIndex, t.LastIndex, term)
			}
		}
		if se.AgedOutConns > 0 || se.CapEvictedConns > 0 {
			fmt.Fprintf(&b, "  conn-table: aged out %d (idle past horizon), cap-evicted %d\n",
				se.AgedOutConns, se.CapEvictedConns)
		}
		b.WriteString("\n")
	}
	if len(r.Roles) > 0 {
		fmt.Fprintf(&b, "Host roles (extension): servers %d, clients %d, peers %d\n\n",
			r.Roles["server"], r.Roles["client"], r.Roles["peer"])
	}
	b.WriteString("Table 5: example findings (computed)\n")
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "  - %s\n", f)
	}
	return b.String()
}

// RenderWindowSummary renders the windowed activity overview the CLIs
// print ahead of the cumulative report: one line per window with its
// traffic volume and dominant category — the time-of-day variation the
// paper calls out, at a glance.
func RenderWindowSummary(windows []*WindowReport) string {
	if len(windows) == 0 {
		return ""
	}
	var b strings.Builder
	t := stats.NewTable("Windowed activity", "window", "start", "conns", "payload", "top category")
	for _, wr := range windows {
		top, topShare := "-", 0.0
		for _, row := range wr.Report.Figure1 {
			if s := row.BytesTotal(); s > topShare {
				top, topShare = row.Category, s
			}
		}
		if topShare > 0 {
			top = fmt.Sprintf("%s (%s)", top, stats.Pct(topShare))
		}
		t.AddRow(fmt.Sprint(wr.Index),
			wr.Start.UTC().Format("15:04:05"),
			fmt.Sprint(wr.Report.Table3.TotalConns),
			stats.Bytes(wr.Report.Table3.TotalBytes),
			top)
	}
	b.WriteString(t.String())
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func cdfMedian(pts []stats.CDFPoint) float64 {
	for _, p := range pts {
		if p.F >= 0.5 {
			return p.X
		}
	}
	if len(pts) > 0 {
		return pts[len(pts)-1].X
	}
	return 0
}

func cdfMax(pts []stats.CDFPoint) float64 {
	if len(pts) == 0 {
		return 0
	}
	return pts[len(pts)-1].X
}
