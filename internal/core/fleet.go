package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"enttrace/internal/fleet"
)

// This file is the analysis half of two-tier fleet mode: encoding a
// site analyzer's window snapshots for the wire (the shipper side), and
// merging decoded snapshots from many sites back into fleet-wide
// reports (the aggregator side). The transport between the two lives in
// internal/fleet; this file owns what the payloads mean.
//
// The invariant the whole design leans on is the epoch contract: a
// window snapshot is a complete epochAgg, and merging a partition of
// epochs reproduces the aggregate that never split. A fleet of N sites
// analyzing disjoint trace blocks therefore folds — site-major in site
// name order, window-minor — to the same report a single instance
// produces over the concatenated traces, byte for byte, provided the
// sites share a window origin (Options.WindowOrigin) and disjoint
// trace-ordinal ranges (Options.TraceBase).

// SnapshotSchema is the fleet codec's schema hash for the epoch
// snapshot type this build ships. Shipper and aggregator exchange it in
// the HELLO handshake; a mismatch (different builds of the analyzer)
// fails the connection instead of mis-merging silently.
func SnapshotSchema() uint64 { return fleet.SchemaOf(&epochAgg{}) }

// WindowExport is one window's encoded snapshot, ready for
// Shipper.ShipDelta. Payload is a complete snapshot of the window, not
// an increment: re-exporting the same window under a higher sequence
// number replaces the earlier delivery at the aggregator, which is what
// lets a site ship provisional windows mid-run and canonical ones at
// the end of the run.
type WindowExport struct {
	Window    int
	Watermark int64 // event-time watermark at export, unix nanoseconds
	Payload   []byte
}

// FleetHello returns the handshake payload describing this analyzer's
// snapshot schema and window configuration. Windowed fleet members must
// run with Options.WindowOrigin set — the origin rides in the HELLO so
// the aggregator can refuse sites cutting windows on different
// boundaries.
func (a *Analyzer) FleetHello() fleet.Hello {
	h := fleet.Hello{Schema: SnapshotSchema()}
	if a.win != nil {
		h.WindowNanos = int64(a.win.dur)
		a.win.mu.Lock()
		if a.win.originSet {
			h.OriginNanos = a.win.origin.UnixNano()
		}
		a.win.mu.Unlock()
	}
	return h
}

// ExportWindow encodes window n's complete folded snapshot. On a
// windowed analyzer it is safe to call while analysis streams (the
// window fold is read-only); a batch analyzer exports the whole run as
// window 0 and must be quiescent. The error path is an encoding bug or
// an out-of-range window, never data-dependent.
func (a *Analyzer) ExportWindow(n int) (WindowExport, error) {
	if a.win == nil {
		if n != 0 {
			return WindowExport{}, fmt.Errorf("batch run exports only window 0, not %d", n)
		}
		// Shallow copy so the merged application view rides in the
		// snapshot without mutating the analyzer's own aggregate.
		tmp := *a.cum
		tmp.apps = a.mergedApps()
		payload, err := fleet.Marshal(&tmp)
		if err != nil {
			return WindowExport{}, err
		}
		return WindowExport{Window: 0, Payload: payload}, nil
	}
	a.win.mu.Lock()
	defer a.win.mu.Unlock()
	if n < 0 || n > a.win.maxWindow {
		return WindowExport{}, fmt.Errorf("window %d out of range (max %d)", n, a.win.maxWindow)
	}
	payload, err := fleet.Marshal(a.win.foldWindowLocked(n))
	if err != nil {
		return WindowExport{}, err
	}
	return WindowExport{Window: n, Watermark: wmNanos(a.win.watermark), Payload: payload}, nil
}

// ExportAll encodes every known window (0..max, empty windows
// included — presence is how the aggregator distinguishes "no traffic"
// from "not delivered"). A batch analyzer exports the whole run as a
// single window 0. Call at end of run for the canonical re-export pass;
// the slice is empty when the analyzer saw no data at all.
func (a *Analyzer) ExportAll() ([]WindowExport, error) {
	if a.win == nil {
		we, err := a.ExportWindow(0)
		if err != nil {
			return nil, err
		}
		return []WindowExport{we}, nil
	}
	a.win.mu.Lock()
	max := a.win.maxWindow
	a.win.mu.Unlock()
	out := make([]WindowExport, 0, max+1)
	for n := 0; n <= max; n++ {
		we, err := a.ExportWindow(n)
		if err != nil {
			return nil, err
		}
		out = append(out, we)
	}
	return out, nil
}

func wmNanos(t time.Time) int64 {
	if t.IsZero() {
		return 0
	}
	return t.UnixNano()
}

// decodeEpoch decodes one shipped window snapshot and validates the
// invariants the merge fold relies on (the codec guarantees structure,
// not non-nilness — a snapshot our own encoder produced always passes).
func decodeEpoch(payload []byte) (*epochAgg, error) {
	e := new(epochAgg)
	if err := fleet.Unmarshal(payload, e); err != nil {
		return nil, err
	}
	if e.netLayer == nil || e.transBytes == nil || e.transConns == nil ||
		e.origins == nil || e.load == nil || e.apps == nil {
		return nil, fmt.Errorf("snapshot missing required aggregates")
	}
	return e, nil
}

// FleetConfig configures a fleet aggregation (NewFleet).
type FleetConfig struct {
	// Dataset labels the merged reports.
	Dataset string
	// Window and Origin pin the fleet's window configuration. Leave both
	// zero to adopt the first site's HELLO instead; either way every
	// subsequent site must match exactly.
	Window time.Duration
	Origin time.Time
	// ExpectSites, when non-empty, lists the sites the fleet is complete
	// without — a listed site that never reports keeps the fleet from
	// reaching FinalReady and is named in the health and degradation
	// views.
	ExpectSites []string
	// Now is the wall clock seam for liveness tracking (nil = time.Now).
	Now func() time.Time
	// Logf receives merge-side diagnostics (nil discards).
	Logf func(format string, args ...any)
}

// Fleet merges per-site window snapshots into fleet-wide reports. It
// implements fleet.Sink: the transport aggregator feeds it frames, it
// owns dedup (latest sequence number per site and window wins —
// delivery is at-least-once and a re-export supersedes earlier
// provisional snapshots), per-site liveness watermarks, and the
// degradation census. Safe for concurrent use.
type Fleet struct {
	dataset string
	expect  []string
	schema  uint64
	now     func() time.Time
	logf    func(format string, args ...any)

	mu      sync.Mutex
	window  time.Duration
	origin  time.Time
	adopted bool
	sites   map[string]*fleetSite
}

// fleetSite is one site's delivery state.
type fleetSite struct {
	connected bool
	lastSeen  time.Time // wall clock of the last frame from this site
	watermark int64     // event-time watermark, unix nanoseconds
	windows   map[int]*fleetWindow
	lost      map[int]uint64 // window → seq of its latest LOST declaration
	fin       bool
	finMax    int
}

// fleetWindow is the latest delivered snapshot for one (site, window).
type fleetWindow struct {
	seq uint64
	agg *epochAgg
}

// NewFleet returns an empty fleet merger.
func NewFleet(cfg FleetConfig) *Fleet {
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Fleet{
		dataset: cfg.Dataset,
		expect:  append([]string(nil), cfg.ExpectSites...),
		schema:  SnapshotSchema(),
		now:     now,
		logf:    logf,
		window:  cfg.Window,
		origin:  cfg.Origin,
		adopted: cfg.Window > 0 || !cfg.Origin.IsZero(),
		sites:   make(map[string]*fleetSite),
	}
}

// site returns the named site's state, creating it on first contact.
// Callers hold f.mu.
func (f *Fleet) site(name string) *fleetSite {
	s := f.sites[name]
	if s == nil {
		s = &fleetSite{
			windows: make(map[int]*fleetWindow),
			lost:    make(map[int]uint64),
			finMax:  -1,
		}
		f.sites[name] = s
	}
	return s
}

func (s *fleetSite) seen(now time.Time, watermark int64) {
	s.lastSeen = now
	if watermark > s.watermark {
		s.watermark = watermark
	}
}

// Hello implements fleet.Sink: schema and window-config validation.
func (f *Fleet) Hello(site string, h fleet.Hello) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if h.Schema != f.schema {
		return fmt.Errorf("snapshot schema mismatch: site %s ships %#x, aggregator expects %#x (mixed builds cannot merge)",
			site, h.Schema, f.schema)
	}
	win, origin := time.Duration(h.WindowNanos), originTime(h.OriginNanos)
	if !f.adopted {
		f.window, f.origin, f.adopted = win, origin, true
	} else if win != f.window || !origin.Equal(f.origin) {
		return fmt.Errorf("window config mismatch: site %s cuts %v windows from %s, fleet uses %v from %s",
			site, win, fmtOrigin(origin), f.window, fmtOrigin(f.origin))
	}
	s := f.site(site)
	s.connected = true
	s.lastSeen = f.now()
	f.logf("fleet: site %s connected (windows %v)", site, win)
	return nil
}

// Delta implements fleet.Sink: decode, then keep the snapshot iff its
// sequence number is the newest seen for (site, window) — duplicates
// and stale redeliveries are no-ops, which is the idempotence the
// at-least-once transport requires.
func (f *Fleet) Delta(site string, window int, seq uint64, watermark int64, payload []byte) error {
	e, err := decodeEpoch(payload)
	if err != nil {
		return fmt.Errorf("site %s window %d: %w", site, window, err)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.site(site)
	s.seen(f.now(), watermark)
	if prev := s.windows[window]; prev != nil && prev.seq >= seq {
		return nil
	}
	s.windows[window] = &fleetWindow{seq: seq, agg: e}
	return nil
}

// Lost implements fleet.Sink: the site's shipper evicted this window
// from its bounded retry queue. A later re-export (higher sequence)
// supersedes the loss; otherwise the window lands in the census.
func (f *Fleet) Lost(site string, window int, seq uint64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.site(site)
	s.seen(f.now(), 0)
	if seq > s.lost[window] {
		s.lost[window] = seq
	}
	return nil
}

// Heartbeat implements fleet.Sink.
func (f *Fleet) Heartbeat(site string, watermark int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.site(site).seen(f.now(), watermark)
}

// Fin implements fleet.Sink: the site is complete — every window
// 0..maxWindow was shipped or declared lost.
func (f *Fleet) Fin(site string, maxWindow int, seq uint64, watermark int64) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.site(site)
	s.seen(f.now(), watermark)
	s.fin = true
	if maxWindow > s.finMax {
		s.finMax = maxWindow
	}
	f.logf("fleet: site %s fin through window %d", site, maxWindow)
	return nil
}

// Disconnect implements fleet.Sink; the staleness clock runs from the
// site's last delivery.
func (f *Fleet) Disconnect(site string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s := f.sites[site]; s != nil {
		s.connected = false
	}
}

func originTime(nanos int64) time.Time {
	if nanos == 0 {
		return time.Time{}
	}
	return time.Unix(0, nanos).UTC()
}

func fmtOrigin(t time.Time) string {
	if t.IsZero() {
		return "unset"
	}
	return t.UTC().Format(time.RFC3339Nano)
}

// Windowing reports whether the fleet cuts windowed reports.
func (f *Fleet) Windowing() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.window > 0
}

// WindowDuration returns the fleet's window length (0 for batch fleets
// or before the first site's Hello fixes the config).
func (f *Fleet) WindowDuration() time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.window
}

// MaxWindow returns the highest window index any site has delivered,
// declared lost, or finned through (-1 before any data).
func (f *Fleet) MaxWindow() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.maxWindowLocked()
}

func (f *Fleet) maxWindowLocked() int {
	max := -1
	for _, s := range f.sites {
		for w := range s.windows {
			if w > max {
				max = w
			}
		}
		for w := range s.lost {
			if w > max {
				max = w
			}
		}
		if s.finMax > max {
			max = s.finMax
		}
	}
	return max
}

func (f *Fleet) siteNamesLocked() []string {
	names := make([]string, 0, len(f.sites))
	for name := range f.sites {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Report builds the fleet-wide cumulative report: every site's window
// snapshots folded site-major (in site name order) and window-minor —
// the concatenated-trace banking order, so a complete clean fleet
// reproduces the single-instance report byte for byte. When any
// expected window is missing or permanently lost, the report instead
// carries the degradation census in its Fleet section.
func (f *Fleet) Report() *Report {
	f.mu.Lock()
	defer f.mu.Unlock()
	merged, census := f.mergedLocked()
	r := buildReport(f.dataset, merged, merged.apps, nil)
	if len(census.Sites) > 0 {
		r.Fleet = census
	}
	return r
}

// mergedLocked folds every delivered snapshot and takes the degradation
// census in one pass, so the two views can never disagree about which
// windows were counted. Callers hold f.mu.
func (f *Fleet) mergedLocked() (*epochAgg, *FleetReport) {
	merged := newEpochAgg()
	census := &FleetReport{}
	maxW := f.maxWindowLocked()
	known := make(map[string]bool, len(f.sites))
	for _, name := range f.siteNamesLocked() {
		known[name] = true
		s := f.sites[name]
		sr := FleetSiteReport{Site: name, Fin: s.fin}
		// A finned site owes exactly windows 0..finMax; a site still
		// running (or dead) is measured against the fleet's horizon —
		// what it has not delivered yet is what the merged report is
		// missing.
		horizon := maxW
		if s.fin {
			horizon = s.finMax
		}
		for w := 0; w <= horizon; w++ {
			dw := s.windows[w]
			lostSeq, hasLost := s.lost[w]
			switch {
			case dw != nil:
				// A LOST declaration newer than the best delivery means
				// the canonical re-export was evicted: fold the stale
				// provisional snapshot (best effort) but census it as
				// lost — the data for this window is incomplete.
				if hasLost && lostSeq > dw.seq {
					sr.LostWindows = append(sr.LostWindows, w)
				}
				merged.merge(dw.agg)
				sr.Windows++
			case hasLost:
				sr.LostWindows = append(sr.LostWindows, w)
			default:
				sr.MissingWindows = append(sr.MissingWindows, w)
			}
		}
		if len(sr.LostWindows) > 0 || len(sr.MissingWindows) > 0 {
			census.Sites = append(census.Sites, sr)
		}
	}
	// Expected sites that never connected: everything the fleet knows
	// about is missing from them.
	for _, name := range f.expect {
		if known[name] {
			continue
		}
		sr := FleetSiteReport{Site: name}
		for w := 0; w <= maxW; w++ {
			sr.MissingWindows = append(sr.MissingWindows, w)
		}
		census.Sites = append(census.Sites, sr)
	}
	if len(census.Sites) > 0 {
		sort.Slice(census.Sites, func(i, j int) bool {
			return census.Sites[i].Site < census.Sites[j].Site
		})
	}
	return merged, census
}

// WindowReport builds the fleet-wide report for one window (false when
// out of range or the fleet is not windowed).
func (f *Fleet) WindowReport(n int) (*WindowReport, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.window <= 0 || n < 0 || n > f.maxWindowLocked() {
		return nil, false
	}
	return f.windowReportLocked(n), true
}

// WindowReports builds every fleet window report, 0..MaxWindow (nil
// when the fleet is not windowed).
func (f *Fleet) WindowReports() []*WindowReport {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.window <= 0 {
		return nil
	}
	out := make([]*WindowReport, 0, f.maxWindowLocked()+1)
	for n := 0; n <= f.maxWindowLocked(); n++ {
		out = append(out, f.windowReportLocked(n))
	}
	return out
}

func (f *Fleet) windowReportLocked(n int) *WindowReport {
	e := newEpochAgg()
	for _, name := range f.siteNamesLocked() {
		if dw := f.sites[name].windows[n]; dw != nil {
			e.merge(dw.agg)
		}
	}
	start := f.origin.Add(time.Duration(n) * f.window)
	end := f.origin.Add(time.Duration(n+1) * f.window)
	meta := &WindowMeta{Index: n, Start: start, End: end}
	return &WindowReport{
		Index:  n,
		Start:  start,
		End:    end,
		Report: buildReport(f.dataset, e, e.apps, meta),
	}
}

// FleetStatus is the operational view of a fleet merge, feeding the
// aggregator's /healthz. Wall-clock quantities (delivery ages) are the
// server's to derive; everything here is observed state.
type FleetStatus struct {
	Sites []FleetSiteStatus
	// MissingSites are expected sites that never connected.
	MissingSites []string
	// FinalReady: every known site finned, every expected site present
	// and finned, and at least one site reported.
	FinalReady bool
	// Windows is the fleet's window horizon (MaxWindow+1); LostWindows
	// counts census-lost windows across sites.
	Windows     int
	LostWindows int
	// WatermarkSkew is the spread between the most- and least-advanced
	// site watermarks (0 with fewer than two reporting sites).
	WatermarkSkew time.Duration
}

// FleetSiteStatus is one site's liveness row.
type FleetSiteStatus struct {
	Site         string
	Connected    bool
	Fin          bool
	Windows      int
	LostWindows  int
	Watermark    time.Time // zero when the site has not advanced one
	LastDelivery time.Time // wall clock of the site's last frame
}

// Status snapshots the fleet's liveness state.
func (f *Fleet) Status() FleetStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	_, census := f.mergedLocked()
	lostBySite := make(map[string]int, len(census.Sites))
	for _, sr := range census.Sites {
		lostBySite[sr.Site] = len(sr.LostWindows)
	}
	st := FleetStatus{Windows: f.maxWindowLocked() + 1}
	var minWM, maxWM int64
	allFin := len(f.sites) > 0
	for _, name := range f.siteNamesLocked() {
		s := f.sites[name]
		row := FleetSiteStatus{
			Site:         name,
			Connected:    s.connected,
			Fin:          s.fin,
			Windows:      len(s.windows),
			LostWindows:  lostBySite[name],
			LastDelivery: s.lastSeen,
		}
		if s.watermark != 0 {
			row.Watermark = time.Unix(0, s.watermark).UTC()
			if minWM == 0 || s.watermark < minWM {
				minWM = s.watermark
			}
			if s.watermark > maxWM {
				maxWM = s.watermark
			}
		}
		st.LostWindows += row.LostWindows
		allFin = allFin && s.fin
		st.Sites = append(st.Sites, row)
	}
	if minWM != 0 && maxWM > minWM {
		st.WatermarkSkew = time.Duration(maxWM - minWM)
	}
	for _, name := range f.expect {
		if f.sites[name] == nil {
			st.MissingSites = append(st.MissingSites, name)
			allFin = false
		} else if !f.sites[name].fin {
			allFin = false
		}
	}
	sort.Strings(st.MissingSites)
	st.FinalReady = allFin
	return st
}
