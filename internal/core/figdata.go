package core

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"enttrace/internal/stats"
)

// WriteFigureData exports every figure's data series as tab-separated
// files under dir (one file per figure, one column block per series),
// ready for gnuplot or any plotting tool. File names embed the dataset,
// e.g. "D3-fig04-http-reply-sizes.tsv".
func WriteFigureData(dir string, r *Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, series map[string][]stats.CDFPoint) error {
		var b strings.Builder
		b.WriteString("# x\tF(x)\tseries\n")
		keys := make([]string, 0, len(series))
		for k := range series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			for _, p := range series[k] {
				fmt.Fprintf(&b, "%g\t%g\t%s\n", p.X, p.F, k)
			}
			b.WriteString("\n")
		}
		path := filepath.Join(dir, fmt.Sprintf("%s-%s.tsv", r.Dataset, name))
		return os.WriteFile(path, []byte(b.String()), 0o644)
	}

	figures := []struct {
		name   string
		series map[string][]stats.CDFPoint
	}{
		{"fig02-fan", map[string][]stats.CDFPoint{
			"fan-in-ent":  r.Figure2.FanInEnt,
			"fan-in-wan":  r.Figure2.FanInWan,
			"fan-out-ent": r.Figure2.FanOutEnt,
			"fan-out-wan": r.Figure2.FanOutWan,
		}},
		{"fig03-http-fanout", map[string][]stats.CDFPoint{
			"ent": r.HTTP.FanOutEnt,
			"wan": r.HTTP.FanOutWan,
		}},
		{"fig04-http-reply-sizes", map[string][]stats.CDFPoint{
			"ent": r.HTTP.ReplySizeEnt,
			"wan": r.HTTP.ReplySizeWan,
		}},
		{"fig05-email-durations", map[string][]stats.CDFPoint{
			"smtp-ent":  r.Email.SMTPDurEnt,
			"smtp-wan":  r.Email.SMTPDurWan,
			"imaps-ent": r.Email.IMAPSDurEnt,
			"imaps-wan": r.Email.IMAPSDurWan,
		}},
		{"fig06-email-sizes", map[string][]stats.CDFPoint{
			"smtp-ent":  r.Email.SMTPSizeEnt,
			"smtp-wan":  r.Email.SMTPSizeWan,
			"imaps-ent": r.Email.IMAPSSizeEnt,
			"imaps-wan": r.Email.IMAPSSizeWan,
		}},
		{"fig07-reqs-per-pair", map[string][]stats.CDFPoint{
			"nfs": r.FileSvc.NFSPerPair,
			"ncp": r.FileSvc.NCPPerPair,
		}},
		{"fig08-file-msg-sizes", map[string][]stats.CDFPoint{
			"nfs-req":   r.FileSvc.NFSReqSizes,
			"nfs-reply": r.FileSvc.NFSReplySizes,
			"ncp-req":   r.FileSvc.NCPReqSizes,
			"ncp-reply": r.FileSvc.NCPReplySizes,
		}},
		{"fig09-utilization", map[string][]stats.CDFPoint{
			"peak-1s":  r.Load.Peak1s,
			"peak-10s": r.Load.Peak10s,
			"peak-60s": r.Load.Peak60s,
		}},
	}
	for _, f := range figures {
		if err := write(f.name, f.series); err != nil {
			return err
		}
	}

	// Figure 10 is a per-trace scatter, not a CDF.
	var b strings.Builder
	b.WriteString("# trace\tretrans-ent\tretrans-wan\tent-data-pkts\twan-data-pkts\n")
	for _, t := range r.Load.Traces {
		fmt.Fprintf(&b, "%s\t%g\t%g\t%d\t%d\n", t.Name, t.RetransEnt, t.RetransWan, t.EntDataPkts, t.WanDataPkts)
	}
	return os.WriteFile(filepath.Join(dir, fmt.Sprintf("%s-fig10-retransmission.tsv", r.Dataset)), []byte(b.String()), 0o644)
}
