package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"enttrace/internal/enterprise"
	"enttrace/internal/gen"
)

// reportSchema walks the Report type and renders every JSON field path,
// one per line — the report's structural schema, independent of values.
// Maps and slices contribute their element type under a wildcard.
func reportSchema() string {
	var paths []string
	var walk func(t reflect.Type, path string, seen map[reflect.Type]bool)
	walk = func(t reflect.Type, path string, seen map[reflect.Type]bool) {
		for t.Kind() == reflect.Pointer {
			t = t.Elem()
		}
		switch t.Kind() {
		case reflect.Struct:
			if t == reflect.TypeOf(time.Time{}) {
				paths = append(paths, path+" <rfc3339>")
				return
			}
			if seen[t] {
				paths = append(paths, path+" <cycle>")
				return
			}
			seen[t] = true
			for i := 0; i < t.NumField(); i++ {
				f := t.Field(i)
				if !f.IsExported() {
					continue
				}
				name := f.Name
				if tag, ok := f.Tag.Lookup("json"); ok {
					if v, _, _ := strings.Cut(tag, ","); v != "" {
						name = v
					}
				}
				walk(f.Type, path+"."+name, seen)
			}
			delete(seen, t)
		case reflect.Map:
			walk(t.Elem(), path+".<key>", seen)
		case reflect.Slice, reflect.Array:
			walk(t.Elem(), path+"[]", seen)
		default:
			paths = append(paths, fmt.Sprintf("%s <%s>", path, t.Kind()))
		}
	}
	walk(reflect.TypeOf(Report{}), "$", make(map[reflect.Type]bool))
	sort.Strings(paths)
	return strings.Join(paths, "\n") + "\n"
}

// TestReportJSONSchemaGolden pins the JSON report schema to a committed
// golden file: adding, renaming, or retyping a Report field is an
// intentional schema change and must update the golden alongside. Run
// with UPDATE_GOLDEN=1 to regenerate.
func TestReportJSONSchemaGolden(t *testing.T) {
	got := reportSchema()
	path := filepath.Join("testdata", "report_schema.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal([]byte(got), want) {
		t.Errorf("JSON report schema drifted from %s.\nIf the change is intentional, regenerate with UPDATE_GOLDEN=1.\ngot:\n%s", path, got)
	}
}

// TestReportJSONDeterministic pins the byte-stability of the encoding:
// two identical runs marshal to identical bytes (map keys sorted by
// encoding/json, float formatting stable).
func TestReportJSONDeterministic(t *testing.T) {
	build := func() []byte {
		em := gen.NewEmitter(11)
		emitConn(em, 0, windowTestBase, 0)
		emitConn(em, 1, windowTestBase.Add(70*time.Second), 0)
		a := windowedAnalyzer(time.Minute)
		if err := a.AddTrace(TraceInput{Name: "t", Monitored: enterprise.SubnetPrefix(5), Packets: em.Packets()}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := WriteRunJSON(&buf, a.WindowReports(), a.Report()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Error("identical runs marshal to different JSON bytes")
	}
}
