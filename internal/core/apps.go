package core

import (
	"net/netip"
	"sort"

	"enttrace/internal/appproto/cifs"
	"enttrace/internal/appproto/dcerpc"
	"enttrace/internal/appproto/dns"
	"enttrace/internal/appproto/ftp"
	"enttrace/internal/appproto/http"
	"enttrace/internal/appproto/ncp"
	"enttrace/internal/appproto/netbios"
	"enttrace/internal/appproto/smtp"
	"enttrace/internal/appproto/sunrpc"
	"enttrace/internal/flows"
	"enttrace/internal/layers"
	"enttrace/internal/stats"
)

// appAggregates holds dataset-wide application-level state.
type appAggregates struct {
	// Name services.
	dnsInt, dnsWan *dns.Analyzer
	nbns           *netbios.Analyzer
	ssn            *netbios.SSNAnalyzer

	// Windows.
	cifs *cifs.Analyzer
	rpc  *dcerpc.Analyzer
	// winPairs tracks Table 9 outcomes per (service, host pair).
	winPairs map[string]map[layers.HostPair]flows.State

	// File services.
	nfs                        *sunrpc.Analyzer
	ncp                        *ncp.Analyzer
	nfsUDP                     map[layers.HostPair]bool
	nfsTCP                     map[layers.HostPair]bool
	ncpConns, ncpKeepAliveOnly int64

	// Email: transport-level per-connection samples.
	email *emailAgg

	// HTTP.
	http *httpAgg

	// Interactive: SSH connection shapes (§5's observation that SSH is
	// both a login facility and a file-mover).
	sshConns, sshBulk   int64
	sshPkts, sshPayload int64

	// Bulk: FTP control sessions and data volumes. Sessions are tagged
	// with their connection's canonical position so shard merges can
	// restore first-packet order.
	ftpSessions []ftpSessionRec
	bulkConns   *stats.Counter
	bulkBytes   *stats.Counter

	// Backup: per-protocol connection and byte counts.
	backupConns *stats.Counter
	backupBytes *stats.Counter
	// dantzBidir counts Dantz connections with >= 100 KB both ways.
	dantzConns, dantzBidir int64

	// dnsScratch is the owning worker's DNS decode scratch — transient,
	// never merged, snapshot, or reset.
	dnsScratch dns.Message
}

func newAppAggregates() *appAggregates {
	return &appAggregates{
		dnsInt:      dns.NewAnalyzer(),
		dnsWan:      dns.NewAnalyzer(),
		nbns:        netbios.NewAnalyzer(),
		ssn:         netbios.NewSSNAnalyzer(),
		cifs:        cifs.NewAnalyzer(),
		rpc:         dcerpc.NewAnalyzer(),
		winPairs:    make(map[string]map[layers.HostPair]flows.State),
		nfs:         sunrpc.NewAnalyzer(),
		ncp:         ncp.NewAnalyzer(),
		nfsUDP:      make(map[layers.HostPair]bool),
		nfsTCP:      make(map[layers.HostPair]bool),
		email:       newEmailAgg(),
		http:        newHTTPAgg(),
		bulkConns:   stats.NewCounter(),
		bulkBytes:   stats.NewCounter(),
		backupConns: stats.NewCounter(),
		backupBytes: stats.NewCounter(),
	}
}

// ftpSessionRec is one parsed FTP control session plus its canonical
// ordering key (trace ordinal, first-packet index).
type ftpSessionRec struct {
	trace    int
	firstIdx int64
	session  ftp.Session
}

func (ap *appAggregates) ftpSession(trace int, firstIdx int64, s ftp.Session) {
	ap.ftpSessions = append(ap.ftpSessions, ftpSessionRec{trace: trace, firstIdx: firstIdx, session: s})
}

// transportConn accumulates everything derivable without payloads. name
// is the connection's classification snapshot, taken by the serial
// replay phase at the connection's canonical position (so a port
// registered later in the trace does not reclassify earlier-starting
// connections).
func (ap *appAggregates) transportConn(c *flows.Conn, name string, isLocal func(netip.Addr) bool) {
	wan := connWAN(c, isLocal)
	switch name {
	case "SMTP", "IMAP4", "IMAP/S", "POP3", "POP/S", "LDAP":
		ap.email.conn(name, wan, c)
	case "HTTP", "HTTPS":
		ap.http.transportConn(name, wan, c)
	case "Netbios-SSN":
		ap.winPair("Netbios/SSN", c)
	case "CIFS":
		ap.winPair("CIFS", c)
	case "DCE/RPC-EPM":
		ap.winPair("Endpoint Mapper", c)
	case "Dantz":
		ap.backupConns.Inc("DANTZ")
		ap.backupBytes.Add("DANTZ", c.PayloadBytes())
		ap.dantzConns++
		if c.OrigBytes >= 100<<10 && c.RespBytes >= 100<<10 {
			ap.dantzBidir++
		}
	case "Veritas-Ctrl":
		ap.backupConns.Inc("VERITAS-BACKUP-CTRL")
		ap.backupBytes.Add("VERITAS-BACKUP-CTRL", c.PayloadBytes())
	case "Veritas-Data":
		ap.backupConns.Inc("VERITAS-BACKUP-DATA")
		ap.backupBytes.Add("VERITAS-BACKUP-DATA", c.PayloadBytes())
	case "Connected-Backup":
		ap.backupConns.Inc("CONNECTED-BACKUP")
		ap.backupBytes.Add("CONNECTED-BACKUP", c.PayloadBytes())
	case "SSH":
		ap.sshConns++
		if c.PayloadBytes() >= 200<<10 {
			ap.sshBulk++
		}
		ap.sshPkts += c.Packets()
		ap.sshPayload += c.PayloadBytes()
	case "FTP", "FTP-Data", "HPSS":
		ap.bulkConns.Inc(name)
		ap.bulkBytes.Add(name, c.PayloadBytes())
	case "NCP":
		ap.ncpConns++
	case "NFS":
		if c.Proto == layers.ProtoTCP {
			ap.markNFSPair(c.Key.Src, c.Key.Dst, false)
		}
	}
}

// winPair folds one connection into the Table 9 per-host-pair state.
func (ap *appAggregates) winPair(service string, c *flows.Conn) {
	m := ap.winPairs[service]
	if m == nil {
		m = make(map[layers.HostPair]flows.State)
		ap.winPairs[service] = m
	}
	pair := c.HostPair()
	cur, seen := m[pair]
	st := c.State
	switch {
	case !seen:
		m[pair] = st
	case st == flows.StateEstablished || cur == flows.StateEstablished:
		m[pair] = flows.StateEstablished
	case st == flows.StateRejected || cur == flows.StateRejected:
		m[pair] = flows.StateRejected
	default:
		m[pair] = st
	}
}

func (ap *appAggregates) markNFSPair(a, b netip.Addr, udp bool) {
	pair := layers.NewHostPair(a, b)
	if udp {
		ap.nfsUDP[pair] = true
	} else {
		ap.nfsTCP[pair] = true
	}
}

// markNCPKeepAlive classifies an NCP connection that carried nothing but
// keep-alive probes.
func (ap *appAggregates) markNCPKeepAlive(c *flows.Conn) {
	if c.KeepAliveRetrans > 0 && c.OrigBytes <= c.KeepAliveRetrans+4 && c.RespBytes == 0 {
		ap.ncpKeepAliveOnly++
	}
}

func (ap *appAggregates) smtpParsed(wan bool, res smtp.Result) {
	ap.email.smtpParsed(wan, res)
}

func (ap *appAggregates) ssnFrames(client, server netip.Addr, cliStream, srvStream []byte) {
	walk := func(from netip.Addr, to netip.Addr, stream []byte) {
		for len(stream) >= 4 {
			h, err := netbios.DecodeSSNHeader(stream)
			if err != nil {
				return
			}
			ap.ssn.Frame(from, to, h.Type)
			adv := 4 + h.Length
			if adv > len(stream) {
				return
			}
			stream = stream[adv:]
		}
	}
	walk(client, server, cliStream)
	walk(server, client, srvStream)
}

// cifsStreams feeds both directions of a CIFS connection through the
// command analyzer, routing named-pipe payloads to the DCE/RPC analyzer.
func (ap *appAggregates) cifsStreams(conn *flows.Conn, framed bool, cliStream, srvStream []byte) {
	// The channel key (connection + pipe) is stable across the hundreds of
	// payload chunks a busy pipe produces; build it once per pipe instead
	// of concatenating per chunk, and only for connections that actually
	// carry pipe transactions.
	var keyStr, lastPipe, lastChan string
	sink := func(fromClient bool, pipe string, payload []byte) {
		if pipe != lastPipe || lastChan == "" {
			if keyStr == "" {
				keyStr = conn.Key.String()
			}
			lastPipe, lastChan = pipe, keyStr+pipe
		}
		ap.rpc.Stream(lastChan, fromClient, payload)
	}
	ap.cifs.PipeSink = sink
	ap.cifs.Stream(true, framed, cliStream)
	ap.cifs.Stream(false, framed, srvStream)
	ap.cifs.PipeSink = nil
}

// emailAgg collects Figures 5–6 and Table 8.
type emailAgg struct {
	bytesByProto *stats.Counter
	// Duration and size distributions keyed by proto+locality.
	durations map[string]*stats.Dist
	sizes     map[string]*stats.Dist // client→server for SMTP, server→client for IMAP
	// Host-pair success per proto+locality.
	pairs map[string]map[layers.HostPair]bool // pair → any success
	// Parsed SMTP outcomes.
	smtpAccepted, smtpRejected int64
}

func newEmailAgg() *emailAgg {
	return &emailAgg{
		bytesByProto: stats.NewCounter(),
		durations:    make(map[string]*stats.Dist),
		sizes:        make(map[string]*stats.Dist),
		pairs:        make(map[string]map[layers.HostPair]bool),
	}
}

func locKey(proto string, wan bool) string {
	if wan {
		return proto + "/wan"
	}
	return proto + "/ent"
}

func (e *emailAgg) conn(proto string, wan bool, c *flows.Conn) {
	table8Key := proto
	switch proto {
	case "IMAP/S":
		table8Key = "SIMAP"
	case "POP3", "POP/S", "LDAP":
		table8Key = "Other"
	}
	e.bytesByProto.Add(table8Key, c.PayloadBytes())
	key := locKey(proto, wan)
	if d := c.Duration(); d > 0 && c.Successful() {
		dist := e.durations[key]
		if dist == nil {
			dist = stats.NewDist()
			e.durations[key] = dist
		}
		dist.Observe(d.Seconds())
	}
	size := c.OrigBytes // SMTP: flow toward the server
	if proto == "IMAP/S" || proto == "IMAP4" || proto == "POP3" || proto == "POP/S" {
		size = c.RespBytes // mailbox data flows to the client
	}
	if c.Successful() {
		dist := e.sizes[key]
		if dist == nil {
			dist = stats.NewDist()
			e.sizes[key] = dist
		}
		dist.Observe(float64(size))
	}
	pm := e.pairs[key]
	if pm == nil {
		pm = make(map[layers.HostPair]bool)
		e.pairs[key] = pm
	}
	pm[c.HostPair()] = pm[c.HostPair()] || c.Successful()
}

func (e *emailAgg) smtpParsed(wan bool, res smtp.Result) {
	if res.Accepted {
		e.smtpAccepted++
	}
	if res.Rejected {
		e.smtpRejected++
	}
}

// successRate computes the per-host-pair success fraction for one
// proto+locality key.
func (e *emailAgg) successRate(key string) (float64, int) {
	pm := e.pairs[key]
	if len(pm) == 0 {
		return 0, 0
	}
	ok := 0
	for _, s := range pm {
		if s {
			ok++
		}
	}
	return float64(ok) / float64(len(pm)), len(pm)
}

// httpAgg collects §5.1.1: Table 6, Figures 3–4, Table 7, conditional-GET
// and success-rate statistics.
type httpAgg struct {
	// Transport-level (all datasets).
	connPairs        map[string]map[layers.HostPair]bool // locality → pair success
	httpsConnsByPair map[layers.HostPair]int64

	// Payload-level (full-snaplen datasets).
	reqTotal    map[string]int64 // locality → request count
	dataTotal   map[string]int64 // locality → response body bytes
	byClass     map[string]*struct{ Reqs, Bytes int64 }
	automated   map[netip.Addr]bool                               // clients seen acting automated
	fanServers  map[netip.Addr]map[string]map[netip.Addr]struct{} // client → locality → servers
	contentReq  map[string]*stats.Counter                         // locality → content-class requests
	contentLen  map[string]*stats.Counter                         // locality → content-class bytes
	replySizes  map[string]*stats.Dist                            // locality → body size dist
	conditional map[string]*struct{ Cond, Total, CondBytes, Bytes int64 }
	methods     *stats.Counter
	statusOK    int64
	statusAll   int64
}

func newHTTPAgg() *httpAgg {
	return &httpAgg{
		connPairs:        make(map[string]map[layers.HostPair]bool),
		httpsConnsByPair: make(map[layers.HostPair]int64),
		reqTotal:         make(map[string]int64),
		dataTotal:        make(map[string]int64),
		byClass:          make(map[string]*struct{ Reqs, Bytes int64 }),
		automated:        make(map[netip.Addr]bool),
		fanServers:       make(map[netip.Addr]map[string]map[netip.Addr]struct{}),
		contentReq:       make(map[string]*stats.Counter),
		contentLen:       make(map[string]*stats.Counter),
		replySizes:       make(map[string]*stats.Dist),
		conditional:      make(map[string]*struct{ Cond, Total, CondBytes, Bytes int64 }),
		methods:          stats.NewCounter(),
	}
}

func httpLoc(wan bool) string {
	if wan {
		return "wan"
	}
	return "ent"
}

func (h *httpAgg) transportConn(name string, wan bool, c *flows.Conn) {
	if name == "HTTPS" {
		h.httpsConnsByPair[c.HostPair()]++
		return
	}
	key := httpLoc(wan)
	pm := h.connPairs[key]
	if pm == nil {
		pm = make(map[layers.HostPair]bool)
		h.connPairs[key] = pm
	}
	pm[c.HostPair()] = pm[c.HostPair()] || c.Successful()
}

// conn processes one parsed HTTP connection.
func (h *httpAgg) conn(c *flows.Conn, wan bool, reqs []http.Request, resps []http.Response) {
	loc := httpLoc(wan)
	client, server := c.Key.Src, c.Key.Dst
	for i, r := range reqs {
		class := http.ClassifyAgent(r.UserAgent)
		var body int
		var resp *http.Response
		if i < len(resps) {
			resp = &resps[i]
			body = resp.BodyLen
		}
		if !wan {
			// Table 6 covers internal HTTP.
			h.reqTotal[loc]++
			h.dataTotal[loc] += int64(body)
			if http.Automated(class) {
				e := h.byClass[class]
				if e == nil {
					e = &struct{ Reqs, Bytes int64 }{}
					h.byClass[class] = e
				}
				e.Reqs++
				e.Bytes += int64(body)
			}
		} else {
			h.reqTotal[loc]++
			h.dataTotal[loc] += int64(body)
		}
		if http.Automated(class) {
			h.automated[client] = true
			continue // remaining stats exclude automated activity
		}
		h.methods.Inc(r.Method)
		// Fan-out.
		fl := h.fanServers[client]
		if fl == nil {
			fl = make(map[string]map[netip.Addr]struct{})
			h.fanServers[client] = fl
		}
		if fl[loc] == nil {
			fl[loc] = make(map[netip.Addr]struct{})
		}
		fl[loc][server] = struct{}{}
		// Conditional GETs and their byte savings.
		cond := h.conditional[loc]
		if cond == nil {
			cond = &struct{ Cond, Total, CondBytes, Bytes int64 }{}
			h.conditional[loc] = cond
		}
		cond.Total++
		cond.Bytes += int64(body)
		if r.Conditional {
			cond.Cond++
			cond.CondBytes += int64(body)
		}
		if resp == nil {
			continue
		}
		h.statusAll++
		if resp.Status == 200 || resp.Status == 206 || resp.Status == 304 {
			h.statusOK++
		}
		if resp.Status == 200 || resp.Status == 206 {
			cls := http.ContentClass(resp.ContentType)
			if h.contentReq[loc] == nil {
				h.contentReq[loc] = stats.NewCounter()
				h.contentLen[loc] = stats.NewCounter()
			}
			h.contentReq[loc].Inc(cls)
			h.contentLen[loc].Add(cls, int64(resp.BodyLen))
			if resp.BodyLen > 0 {
				if h.replySizes[loc] == nil {
					h.replySizes[loc] = stats.NewDist()
				}
				h.replySizes[loc].Observe(float64(resp.BodyLen))
			}
		}
	}
}

// httpConn is the dispatcher entry point.
func (ap *appAggregates) httpConn(c *flows.Conn, wan bool, cliStream, srvStream []byte) {
	reqs := http.ParseRequests(cliStream)
	resps := http.ParseResponses(srvStream)
	ap.http.conn(c, wan, reqs, resps)
}

// Merge folds other's application-level state into ap — the aggregate
// half of the parallel replay's merge contract (DESIGN.md "Two-phase
// deterministic replay"). Every operation here is either commutative
// (sums, counter/distribution merges, set unions) or keyed by a host
// pair that the replay sharding guarantees lives in exactly one source,
// so the merged state is identical for any shard count. other remains
// usable afterwards; nothing mutable is aliased. other may be a sparse
// cut delta: nil components mean "nothing banked" and are skipped. The
// receiver must be a full aggregate (newAppAggregates).
func (ap *appAggregates) Merge(other *appAggregates) {
	if other.dnsInt != nil {
		ap.dnsInt.Merge(other.dnsInt)
	}
	if other.dnsWan != nil {
		ap.dnsWan.Merge(other.dnsWan)
	}
	if other.nbns != nil {
		ap.nbns.Merge(other.nbns)
	}
	if other.ssn != nil {
		ap.ssn.Merge(other.ssn)
	}
	if other.cifs != nil {
		ap.cifs.Merge(other.cifs)
	}
	if other.rpc != nil {
		ap.rpc.Merge(other.rpc)
	}
	for service, pairs := range other.winPairs {
		m := ap.winPairs[service]
		if m == nil {
			m = make(map[layers.HostPair]flows.State, len(pairs))
			ap.winPairs[service] = m
		}
		for pair, st := range pairs {
			cur, seen := m[pair]
			switch {
			case !seen:
				m[pair] = st
			case st == flows.StateEstablished || cur == flows.StateEstablished:
				m[pair] = flows.StateEstablished
			case st == flows.StateRejected || cur == flows.StateRejected:
				m[pair] = flows.StateRejected
			default:
				m[pair] = st
			}
		}
	}
	if other.nfs != nil {
		ap.nfs.Merge(other.nfs)
	}
	if other.ncp != nil {
		ap.ncp.Merge(other.ncp)
	}
	for pair := range other.nfsUDP {
		ap.nfsUDP[pair] = true
	}
	for pair := range other.nfsTCP {
		ap.nfsTCP[pair] = true
	}
	ap.ncpConns += other.ncpConns
	ap.ncpKeepAliveOnly += other.ncpKeepAliveOnly
	if other.email != nil {
		ap.email.Merge(other.email)
	}
	if other.http != nil {
		ap.http.Merge(other.http)
	}
	ap.sshConns += other.sshConns
	ap.sshBulk += other.sshBulk
	ap.sshPkts += other.sshPkts
	ap.sshPayload += other.sshPayload
	ap.ftpSessions = append(ap.ftpSessions, other.ftpSessions...)
	mergeCounter(ap.bulkConns, other.bulkConns)
	mergeCounter(ap.bulkBytes, other.bulkBytes)
	mergeCounter(ap.backupConns, other.backupConns)
	mergeCounter(ap.backupBytes, other.backupBytes)
	ap.dantzConns += other.dantzConns
	ap.dantzBidir += other.dantzBidir
}

// mergeCounter is Counter.Merge with a nil-source guard (sparse deltas).
func mergeCounter(dst, src *stats.Counter) {
	if src != nil {
		dst.Merge(src)
	}
}

// Snapshot returns an independent aggregate holding everything banked
// since the last Reset — the application half of the epoch-snapshot
// contract (DESIGN.md "Epoch snapshots and windowed reports"). Cost is
// proportional to the epoch's own statistics: the per-analyzer Snapshot
// methods copy banked outputs only, never the in-flight pairing state
// (DNS pending/dedup maps, RPC binds, NFS/NCP call matching), which
// grows monotonically over a trace and would make per-window cuts
// quadratic if copied.
func (ap *appAggregates) Snapshot() *appAggregates {
	s := &appAggregates{
		dnsInt:           ap.dnsInt.Snapshot(),
		dnsWan:           ap.dnsWan.Snapshot(),
		nbns:             ap.nbns.Snapshot(),
		ssn:              ap.ssn.Snapshot(),
		cifs:             ap.cifs.Snapshot(),
		rpc:              ap.rpc.Snapshot(),
		winPairs:         make(map[string]map[layers.HostPair]flows.State, len(ap.winPairs)),
		nfs:              ap.nfs.Snapshot(),
		ncp:              ap.ncp.Snapshot(),
		nfsUDP:           make(map[layers.HostPair]bool, len(ap.nfsUDP)),
		nfsTCP:           make(map[layers.HostPair]bool, len(ap.nfsTCP)),
		ncpConns:         ap.ncpConns,
		ncpKeepAliveOnly: ap.ncpKeepAliveOnly,
		email:            ap.email.Snapshot(),
		http:             ap.http.Snapshot(),
		sshConns:         ap.sshConns,
		sshBulk:          ap.sshBulk,
		sshPkts:          ap.sshPkts,
		sshPayload:       ap.sshPayload,
		ftpSessions:      append([]ftpSessionRec(nil), ap.ftpSessions...),
		bulkConns:        ap.bulkConns.Snapshot(),
		bulkBytes:        ap.bulkBytes.Snapshot(),
		backupConns:      ap.backupConns.Snapshot(),
		backupBytes:      ap.backupBytes.Snapshot(),
		dantzConns:       ap.dantzConns,
		dantzBidir:       ap.dantzBidir,
	}
	for service, pairs := range ap.winPairs {
		m := make(map[layers.HostPair]flows.State, len(pairs))
		for pair, st := range pairs {
			m[pair] = st
		}
		s.winPairs[service] = m
	}
	for pair := range ap.nfsUDP {
		s.nfsUDP[pair] = true
	}
	for pair := range ap.nfsTCP {
		s.nfsTCP[pair] = true
	}
	return s
}

// cut is Snapshot followed by Reset by move: banked containers transfer
// into the returned delta (nil fields/containers for components that
// banked nothing) and fresh empties replace them, so the per-cut cost is
// proportional to the number of components touched during the epoch,
// never to the epoch's sample volume or to the aggregate's accumulated
// pairing state. Returns nil when the whole aggregate banked nothing.
// Merge accepts the sparse deltas (nil-component guards).
func (ap *appAggregates) cut() *appAggregates {
	s := &appAggregates{
		dnsInt:           ap.dnsInt.Cut(),
		dnsWan:           ap.dnsWan.Cut(),
		nbns:             ap.nbns.Cut(),
		ssn:              ap.ssn.Cut(),
		cifs:             ap.cifs.Cut(),
		rpc:              ap.rpc.Cut(),
		nfs:              ap.nfs.Cut(),
		ncp:              ap.ncp.Cut(),
		ncpConns:         ap.ncpConns,
		ncpKeepAliveOnly: ap.ncpKeepAliveOnly,
		sshConns:         ap.sshConns,
		sshBulk:          ap.sshBulk,
		sshPkts:          ap.sshPkts,
		sshPayload:       ap.sshPayload,
		ftpSessions:      ap.ftpSessions,
		bulkConns:        cutCounter(&ap.bulkConns),
		bulkBytes:        cutCounter(&ap.bulkBytes),
		backupConns:      cutCounter(&ap.backupConns),
		backupBytes:      cutCounter(&ap.backupBytes),
		dantzConns:       ap.dantzConns,
		dantzBidir:       ap.dantzBidir,
	}
	ap.ncpConns, ap.ncpKeepAliveOnly = 0, 0
	ap.sshConns, ap.sshBulk, ap.sshPkts, ap.sshPayload = 0, 0, 0, 0
	ap.ftpSessions = nil
	ap.dantzConns, ap.dantzBidir = 0, 0
	if len(ap.winPairs) > 0 {
		s.winPairs = ap.winPairs
		ap.winPairs = make(map[string]map[layers.HostPair]flows.State)
	}
	if len(ap.nfsUDP) > 0 {
		s.nfsUDP = ap.nfsUDP
		ap.nfsUDP = make(map[layers.HostPair]bool)
	}
	if len(ap.nfsTCP) > 0 {
		s.nfsTCP = ap.nfsTCP
		ap.nfsTCP = make(map[layers.HostPair]bool)
	}
	if !ap.email.empty() {
		s.email = ap.email
		ap.email = newEmailAgg()
	}
	if !ap.http.empty() {
		s.http = ap.http
		ap.http = newHTTPAgg()
	}
	if s.empty() {
		return nil
	}
	return s
}

// cutCounter moves a non-empty counter out (installing a fresh one) and
// returns nil for an empty one.
func cutCounter(c **stats.Counter) *stats.Counter {
	if (*c).Total() == 0 && (*c).Len() == 0 {
		return nil
	}
	out := *c
	*c = stats.NewCounter()
	return out
}

// empty reports whether a cut delta carries nothing.
func (ap *appAggregates) empty() bool {
	return ap.dnsInt == nil && ap.dnsWan == nil && ap.nbns == nil && ap.ssn == nil &&
		ap.cifs == nil && ap.rpc == nil && ap.nfs == nil && ap.ncp == nil &&
		len(ap.winPairs) == 0 && len(ap.nfsUDP) == 0 && len(ap.nfsTCP) == 0 &&
		ap.ncpConns == 0 && ap.ncpKeepAliveOnly == 0 &&
		ap.email == nil && ap.http == nil &&
		ap.sshConns == 0 && ap.sshBulk == 0 && ap.sshPkts == 0 && ap.sshPayload == 0 &&
		len(ap.ftpSessions) == 0 &&
		ap.bulkConns == nil && ap.bulkBytes == nil &&
		ap.backupConns == nil && ap.backupBytes == nil &&
		ap.dantzConns == 0 && ap.dantzBidir == 0
}

func (e *emailAgg) empty() bool {
	return e.bytesByProto.Total() == 0 && e.bytesByProto.Len() == 0 &&
		len(e.durations) == 0 && len(e.sizes) == 0 && len(e.pairs) == 0 &&
		e.smtpAccepted == 0 && e.smtpRejected == 0
}

func (h *httpAgg) empty() bool {
	return len(h.connPairs) == 0 && len(h.httpsConnsByPair) == 0 &&
		len(h.reqTotal) == 0 && len(h.dataTotal) == 0 && len(h.byClass) == 0 &&
		len(h.automated) == 0 && len(h.fanServers) == 0 &&
		len(h.contentReq) == 0 && len(h.contentLen) == 0 &&
		len(h.replySizes) == 0 && len(h.conditional) == 0 &&
		h.methods.Total() == 0 && h.methods.Len() == 0 &&
		h.statusOK == 0 && h.statusAll == 0
}

// Reset clears the banked statistics in place while preserving every
// pairing domain the analyzers keep (the sub-analyzer Resets guarantee
// this), so merging consecutive snapshots reproduces exactly the state
// an uncut aggregate would hold.
func (ap *appAggregates) Reset() {
	ap.dnsInt.Reset()
	ap.dnsWan.Reset()
	ap.nbns.Reset()
	ap.ssn.Reset()
	ap.cifs.Reset()
	ap.rpc.Reset()
	clear(ap.winPairs)
	ap.nfs.Reset()
	ap.ncp.Reset()
	clear(ap.nfsUDP)
	clear(ap.nfsTCP)
	ap.ncpConns, ap.ncpKeepAliveOnly = 0, 0
	ap.email.Reset()
	ap.http.Reset()
	ap.sshConns, ap.sshBulk = 0, 0
	ap.sshPkts, ap.sshPayload = 0, 0
	ap.ftpSessions = nil
	ap.bulkConns.Reset()
	ap.bulkBytes.Reset()
	ap.backupConns.Reset()
	ap.backupBytes.Reset()
	ap.dantzConns, ap.dantzBidir = 0, 0
}

// sortFTPSessions restores canonical first-packet order after shard
// merges, so anything walking the session list is shard-count-invariant.
func (ap *appAggregates) sortFTPSessions() {
	sort.Slice(ap.ftpSessions, func(i, j int) bool {
		a, b := ap.ftpSessions[i], ap.ftpSessions[j]
		if a.trace != b.trace {
			return a.trace < b.trace
		}
		return a.firstIdx < b.firstIdx
	})
}

// Merge folds other's email aggregates into e (all commutative or
// host-pair-keyed operations).
func (e *emailAgg) Merge(other *emailAgg) {
	e.bytesByProto.Merge(other.bytesByProto)
	for key, d := range other.durations {
		dst := e.durations[key]
		if dst == nil {
			dst = stats.NewDist()
			e.durations[key] = dst
		}
		dst.Merge(d)
	}
	for key, d := range other.sizes {
		dst := e.sizes[key]
		if dst == nil {
			dst = stats.NewDist()
			e.sizes[key] = dst
		}
		dst.Merge(d)
	}
	for key, pm := range other.pairs {
		dst := e.pairs[key]
		if dst == nil {
			dst = make(map[layers.HostPair]bool, len(pm))
			e.pairs[key] = dst
		}
		for pair, ok := range pm {
			dst[pair] = dst[pair] || ok
		}
	}
	e.smtpAccepted += other.smtpAccepted
	e.smtpRejected += other.smtpRejected
}

// Snapshot returns an independent copy of the banked email aggregates.
// Everything here is banked (Reset clears it all), so building the copy
// through Merge is exact and epoch-bounded.
func (e *emailAgg) Snapshot() *emailAgg {
	s := newEmailAgg()
	s.Merge(e)
	return s
}

// Reset clears the banked email aggregates in place (no pairing state
// lives at this level; connection samples are self-contained).
func (e *emailAgg) Reset() {
	e.bytesByProto.Reset()
	clear(e.durations)
	clear(e.sizes)
	clear(e.pairs)
	e.smtpAccepted, e.smtpRejected = 0, 0
}

// Merge folds other's HTTP aggregates into h (all commutative sums and
// set unions, so the merged state is sharding-invariant).
func (h *httpAgg) Merge(other *httpAgg) {
	for key, pm := range other.connPairs {
		dst := h.connPairs[key]
		if dst == nil {
			dst = make(map[layers.HostPair]bool, len(pm))
			h.connPairs[key] = dst
		}
		for pair, ok := range pm {
			dst[pair] = dst[pair] || ok
		}
	}
	for pair, n := range other.httpsConnsByPair {
		h.httpsConnsByPair[pair] += n
	}
	for key, n := range other.reqTotal {
		h.reqTotal[key] += n
	}
	for key, n := range other.dataTotal {
		h.dataTotal[key] += n
	}
	for class, e := range other.byClass {
		dst := h.byClass[class]
		if dst == nil {
			dst = &struct{ Reqs, Bytes int64 }{}
			h.byClass[class] = dst
		}
		dst.Reqs += e.Reqs
		dst.Bytes += e.Bytes
	}
	for client := range other.automated {
		h.automated[client] = true
	}
	for client, byLoc := range other.fanServers {
		dstLoc := h.fanServers[client]
		if dstLoc == nil {
			dstLoc = make(map[string]map[netip.Addr]struct{}, len(byLoc))
			h.fanServers[client] = dstLoc
		}
		for loc, servers := range byLoc {
			dst := dstLoc[loc]
			if dst == nil {
				dst = make(map[netip.Addr]struct{}, len(servers))
				dstLoc[loc] = dst
			}
			for server := range servers {
				dst[server] = struct{}{}
			}
		}
	}
	for loc, c := range other.contentReq {
		if h.contentReq[loc] == nil {
			h.contentReq[loc] = stats.NewCounter()
		}
		h.contentReq[loc].Merge(c)
	}
	for loc, c := range other.contentLen {
		if h.contentLen[loc] == nil {
			h.contentLen[loc] = stats.NewCounter()
		}
		h.contentLen[loc].Merge(c)
	}
	for loc, d := range other.replySizes {
		if h.replySizes[loc] == nil {
			h.replySizes[loc] = stats.NewDist()
		}
		h.replySizes[loc].Merge(d)
	}
	for loc, c := range other.conditional {
		dst := h.conditional[loc]
		if dst == nil {
			dst = &struct{ Cond, Total, CondBytes, Bytes int64 }{}
			h.conditional[loc] = dst
		}
		dst.Cond += c.Cond
		dst.Total += c.Total
		dst.CondBytes += c.CondBytes
		dst.Bytes += c.Bytes
	}
	h.methods.Merge(other.methods)
	h.statusOK += other.statusOK
	h.statusAll += other.statusAll
}

// Snapshot returns an independent copy of the banked HTTP aggregates
// (all epoch-bounded — Reset clears every field — so Merge-into-fresh is
// exact and cheap).
func (h *httpAgg) Snapshot() *httpAgg {
	s := newHTTPAgg()
	s.Merge(h)
	return s
}

// Reset clears the banked HTTP aggregates in place. The automated-client
// set clears with the rest: it is a per-epoch census (a window report
// judges automation from that window's requests), and the cumulative
// union across snapshots matches the uncut set exactly.
func (h *httpAgg) Reset() {
	clear(h.connPairs)
	clear(h.httpsConnsByPair)
	clear(h.reqTotal)
	clear(h.dataTotal)
	clear(h.byClass)
	clear(h.automated)
	clear(h.fanServers)
	clear(h.contentReq)
	clear(h.contentLen)
	clear(h.replySizes)
	clear(h.conditional)
	h.methods.Reset()
	h.statusOK, h.statusAll = 0, 0
}
