package core

import (
	"fmt"
	"time"

	"enttrace/internal/appproto/dcerpc"
	"enttrace/internal/appproto/dns"
	"enttrace/internal/appproto/ftp"
	"enttrace/internal/appproto/netbios"
	"enttrace/internal/appproto/smtp"
	"enttrace/internal/appproto/sunrpc"
	"enttrace/internal/categories"
	"enttrace/internal/flows"
	"enttrace/internal/layers"
	"enttrace/internal/reassembly"
)

// dispatcher routes per-packet application payloads to protocol analyzers
// for one trace. UDP protocols are parsed per datagram; TCP protocols are
// reassembled per direction and parsed when the trace ends (except
// Endpoint Mapper traffic, which is parsed incrementally so that mapped
// ephemeral ports can be registered before the services using them are
// classified).
type dispatcher struct {
	a     *Analyzer
	conns map[*flows.Conn]*connApp
}

// connApp buffers one TCP connection's two directions.
type connApp struct {
	kind      string // registry protocol name at attach time
	cliStream *reassembly.Stream
	srvStream *reassembly.Stream
	cliBuf    reassembly.BufferConsumer
	srvBuf    reassembly.BufferConsumer
	epmCli    *rpcStream
	epmSrv    *rpcStream
	ftpSrv    *ftpCtl
	sawCliISN bool
	sawSrvISN bool
}

func newDispatcher(a *Analyzer) *dispatcher {
	return &dispatcher{a: a, conns: make(map[*flows.Conn]*connApp)}
}

// bufferedProtos are the TCP protocols whose payloads are reassembled.
var bufferedProtos = map[string]int{
	"HTTP":        4 << 20,
	"FTP":         1 << 20,
	"SMTP":        1 << 20,
	"IMAP4":       1 << 20,
	"CIFS":        2 << 20,
	"Netbios-SSN": 2 << 20,
	"NCP":         2 << 20,
	"NFS":         2 << 20,
	"Spoolss":     1 << 20, // dynamically mapped DCE/RPC service ports
}

func (d *dispatcher) packet(ts time.Time, conn *flows.Conn, dir flows.Dir, p *layers.Packet) {
	if !d.a.opts.PayloadAnalysis {
		return
	}
	if p.Layers.Has(layers.LayerUDP) {
		d.udpMessage(ts, p)
		return
	}
	if !p.Layers.Has(layers.LayerTCP) {
		return
	}
	app := d.conns[conn]
	if app == nil {
		name, _ := d.a.opts.Registry.Classify(conn.Proto, conn.Key.SrcPort, conn.Key.DstPort)
		app = &connApp{kind: name}
		if name == "FTP" && conn.Key.DstPort == 21 {
			// The control channel is parsed incrementally so PASV data
			// ports are registered before the data connection arrives.
			app.ftpSrv = &ftpCtl{d: d}
			app.cliBuf.Limit = bufferedProtos[name]
			app.cliStream = reassembly.NewStream(&app.cliBuf)
			app.srvStream = reassembly.NewStream(app.ftpSrv)
			d.conns[conn] = app
		} else if name == "DCE/RPC-EPM" {
			app.epmCli = &rpcStream{d: d, channel: fmt.Sprintf("%p/c", conn), fromClient: true}
			app.epmSrv = &rpcStream{d: d, channel: fmt.Sprintf("%p/s", conn), fromClient: false}
			app.cliStream = reassembly.NewStream(app.epmCli)
			app.srvStream = reassembly.NewStream(app.epmSrv)
		} else if limit, ok := bufferedProtos[name]; ok {
			app.cliBuf.Limit = limit
			app.srvBuf.Limit = limit
			app.cliStream = reassembly.NewStream(&app.cliBuf)
			app.srvStream = reassembly.NewStream(&app.srvBuf)
		}
		d.conns[conn] = app
	}
	if app.cliStream == nil {
		return
	}
	stream := app.cliStream
	if dir == flows.DirResp {
		stream = app.srvStream
	}
	if p.TCP.Flags&layers.TCPSyn != 0 {
		stream.SetISN(p.TCP.Seq + 1)
		return
	}
	if len(p.Payload) > 0 {
		stream.Segment(p.TCP.Seq, p.Payload)
	}
}

// udpMessage parses datagram-based application protocols immediately.
func (d *dispatcher) udpMessage(ts time.Time, p *layers.Packet) {
	if len(p.Payload) == 0 {
		return
	}
	src, _ := p.NetSrc()
	dst, _ := p.NetDst()
	switch {
	case p.UDP.DstPort == 53 || p.UDP.SrcPort == 53:
		if m, err := dns.Decode(p.Payload); err == nil {
			local := d.a.opts.IsLocal(src) && d.a.opts.IsLocal(dst)
			if local {
				d.a.apps.dnsInt.Message(ts, src, dst, m)
			} else {
				d.a.apps.dnsWan.Message(ts, src, dst, m)
			}
		}
	case p.UDP.DstPort == 137 || p.UDP.SrcPort == 137:
		if m, err := netbios.DecodeNS(p.Payload); err == nil {
			d.a.apps.nbns.Message(ts, src, dst, m)
		}
	case p.UDP.DstPort == 2049 || p.UDP.SrcPort == 2049:
		d.a.apps.nfs.Message(src, dst, p.Payload)
		d.a.apps.markNFSPair(src, dst, true)
	}
}

// finish closes all streams and runs the protocol analyzers over kept
// (non-scanner) connections.
func (d *dispatcher) finish(kept map[*flows.Conn]bool) {
	apps := d.a.apps
	isLocal := d.a.opts.IsLocal
	// Transport-level accumulation happens for every kept conn even
	// without payloads (email figures, windows success rates, backup).
	for conn := range kept {
		apps.transportConn(conn, d.a.opts)
	}
	if !d.a.opts.PayloadAnalysis {
		return
	}
	for conn, app := range d.conns {
		if !kept[conn] {
			continue
		}
		if app.cliStream != nil {
			app.cliStream.Close()
			app.srvStream.Close()
		}
		client, server := conn.Key.Src, conn.Key.Dst
		wan := connWAN(conn, isLocal)
		switch app.kind {
		case "HTTP":
			apps.httpConn(conn, wan, app.cliBuf.Buf, app.srvBuf.Buf)
		case "SMTP":
			res := smtp.Parse(app.cliBuf.Buf, app.srvBuf.Buf)
			apps.smtpParsed(wan, res)
		case "CIFS":
			apps.cifsStreams(conn, false, app.cliBuf.Buf, app.srvBuf.Buf)
		case "Netbios-SSN":
			apps.ssnFrames(client, server, app.cliBuf.Buf, app.srvBuf.Buf)
			apps.cifsStreams(conn, true, app.cliBuf.Buf, app.srvBuf.Buf)
		case "NCP":
			apps.ncp.Stream(client, server, app.cliBuf.Buf)
			apps.ncp.Stream(server, client, app.srvBuf.Buf)
			apps.markNCPKeepAlive(conn)
		case "NFS":
			sunrpc.SplitRecords(app.cliBuf.Buf, func(rec []byte) {
				apps.nfs.Message(client, server, rec)
			})
			sunrpc.SplitRecords(app.srvBuf.Buf, func(rec []byte) {
				apps.nfs.Message(server, client, rec)
			})
			apps.markNFSPair(client, server, false)
		case "Spoolss":
			ch := fmt.Sprintf("%p", conn)
			apps.rpc.Stream(ch, true, app.cliBuf.Buf)
			apps.rpc.Stream(ch, false, app.srvBuf.Buf)
		case "FTP":
			if app.ftpSrv != nil {
				apps.ftpSession(ftp.Analyze(app.cliBuf.Buf, app.ftpSrv.buf))
			}
		}
	}
}

// ftpCtl accumulates the server side of an FTP control connection,
// registering PASV-advertised data ports the moment the 227 reply is
// seen so the subsequent data connection is classified as bulk.
type ftpCtl struct {
	d   *dispatcher
	buf []byte
	// scanned marks how far PASV scanning has progressed.
	scanned int
}

// Data implements reassembly.Consumer.
func (f *ftpCtl) Data(b []byte) {
	f.buf = append(f.buf, b...)
	// Scan only complete lines.
	for {
		idx := -1
		for i := f.scanned; i+1 < len(f.buf); i++ {
			if f.buf[i] == '\r' && f.buf[i+1] == '\n' {
				idx = i
				break
			}
		}
		if idx < 0 {
			return
		}
		line := f.buf[f.scanned:idx]
		f.scanned = idx + 2
		for _, r := range ftp.ParseReplies(append(append([]byte{}, line...), '\r', '\n')) {
			if port, ok := ftp.PasvPort(r); ok {
				f.d.a.opts.Registry.Register(layers.ProtoTCP, port, "FTP-Data", categories.Bulk)
			}
		}
	}
}

// Gap implements reassembly.Consumer.
func (f *ftpCtl) Gap(n int) {}

// rpcStream incrementally parses DCE/RPC PDUs from a reassembled EPM
// stream, registering endpoint-mapped ports the moment the map response
// is seen so later connections to those ports are classified.
type rpcStream struct {
	d          *dispatcher
	channel    string
	fromClient bool
	buf        []byte
}

// Data implements reassembly.Consumer.
func (r *rpcStream) Data(b []byte) {
	r.buf = append(r.buf, b...)
	for {
		p, n, err := dcerpc.Decode(r.buf)
		if err != nil || n == 0 || n > len(r.buf) {
			return
		}
		// Only consume complete PDUs; Decode clamps n to the buffer, so
		// compare against the header's fragment length.
		if len(r.buf) >= 10 {
			fragLen := int(uint16(r.buf[8]) | uint16(r.buf[9])<<8)
			if fragLen > len(r.buf) {
				return // wait for more bytes
			}
		}
		apps := r.d.a.apps
		apps.rpc.PDU(r.channel, r.fromClient, p)
		if iface, port, ok := dcerpc.ParseEpmMapResponse(p); ok {
			name := dcerpc.InterfaceName(iface)
			if name == "unknown" {
				name = "DCE/RPC"
			}
			r.d.a.opts.Registry.Register(layers.ProtoTCP, port, name, categories.Windows)
		}
		r.buf = r.buf[n:]
	}
}

// Gap implements reassembly.Consumer.
func (r *rpcStream) Gap(n int) { r.buf = nil }
