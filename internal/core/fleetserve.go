package core

import (
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// FleetServer exposes a fleet aggregation over HTTP, mirroring
// ReportServer's surface so fleet-wide reports are drop-in for
// single-instance consumers:
//
//	GET /healthz            — fleet liveness: per-site delivery state,
//	                          lag, and degradation counts
//	GET /report/latest      — the highest merged window, JSON
//	GET /report/window/<n>  — fleet-wide window n (0-based), JSON
//	GET /report/fleet       — the current merged cumulative report,
//	                          served any time (carries the degradation
//	                          census while sites are missing data)
//	GET /report/final       — the merged cumulative report, once every
//	                          site has finned (404 before that)
//
// Window endpoints are live views over whatever snapshots have been
// delivered so far; they require a windowed fleet.
type FleetServer struct {
	f   *Fleet
	mux *http.ServeMux

	// staleAfter is how long a non-finned site may go without delivering
	// a frame before /healthz names it stale; now is the wall-clock seam
	// for that age (tests pin it).
	staleAfter time.Duration
	now        func() time.Time

	draining atomic.Bool
}

// NewFleetServer returns a server over f (the handlers use only the
// Fleet's concurrency-safe accessors).
func NewFleetServer(f *Fleet) *FleetServer {
	s := &FleetServer{f: f, mux: http.NewServeMux(), staleAfter: DefaultStallThreshold, now: time.Now}
	s.mux.HandleFunc("/healthz", s.healthz)
	s.mux.HandleFunc("/report/latest", s.latest)
	s.mux.HandleFunc("/report/window/", s.window)
	s.mux.HandleFunc("/report/fleet", s.fleet)
	s.mux.HandleFunc("/report/final", s.final)
	return s
}

// SetStaleThreshold overrides how long a silent site is tolerated before
// /healthz degrades; d <= 0 disables staleness tracking. Call before
// serving.
func (s *FleetServer) SetStaleThreshold(d time.Duration) { s.staleAfter = d }

// SetDraining marks a graceful shutdown in progress: lag and staleness
// reporting is suppressed (sites are expected to stop delivering).
func (s *FleetServer) SetDraining(v bool) { s.draining.Store(v) }

// ServeHTTP implements http.Handler.
func (s *FleetServer) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	s.mux.ServeHTTP(w, req)
}

// fleetHealth is the /healthz document. Lag fields (StaleSites,
// WatermarkSkewSeconds, per-site LastDeliveryAgeSeconds) are suppressed
// once the fleet is draining or final: sites legitimately stop
// delivering then, and a lag alarm would cry wolf on every clean
// shutdown.
type fleetHealth struct {
	// Status is "ok", or "degraded" when windows are census-lost, an
	// expected site never reported, or a live site has gone silent past
	// the stale threshold.
	Status         string
	Sites          int
	ConnectedSites int
	FinSites       int
	// MissingSites are expected sites that never connected; StaleSites
	// are known, unfinished sites whose last delivery is older than the
	// stale threshold (a crashed or partitioned site shows up here).
	MissingSites []string `json:",omitempty"`
	StaleSites   []string `json:",omitempty"`
	Windowing    bool
	WindowDur    string `json:",omitempty"`
	Windows      int
	LostWindows  int
	FinalReady   bool
	Draining     bool `json:",omitempty"`
	// WatermarkSkewSeconds is the event-time spread between the most-
	// and least-advanced reporting sites — the fleet's merge horizon lag.
	WatermarkSkewSeconds float64           `json:",omitempty"`
	SiteDetail           []fleetSiteHealth `json:",omitempty"`
}

// fleetSiteHealth is one site's row in /healthz.
type fleetSiteHealth struct {
	Site        string
	Connected   bool
	Fin         bool
	Windows     int
	LostWindows int    `json:",omitempty"`
	Watermark   string `json:",omitempty"`
	// LastDeliveryAgeSeconds is wall-clock time since the site's last
	// frame (suppressed once the site finned or the fleet is winding
	// down).
	LastDeliveryAgeSeconds float64 `json:",omitempty"`
}

func (s *FleetServer) healthz(w http.ResponseWriter, req *http.Request) {
	st := s.f.Status()
	h := fleetHealth{
		Status:       "ok",
		Sites:        len(st.Sites),
		MissingSites: st.MissingSites,
		Windowing:    s.f.Windowing(),
		Windows:      st.Windows,
		LostWindows:  st.LostWindows,
		FinalReady:   st.FinalReady,
		Draining:     s.draining.Load(),
	}
	if h.Windowing {
		h.WindowDur = s.f.WindowDuration().String()
	}
	quiet := h.FinalReady || h.Draining
	now := s.now()
	for _, row := range st.Sites {
		sh := fleetSiteHealth{
			Site:        row.Site,
			Connected:   row.Connected,
			Fin:         row.Fin,
			Windows:     row.Windows,
			LostWindows: row.LostWindows,
		}
		if row.Connected {
			h.ConnectedSites++
		}
		if row.Fin {
			h.FinSites++
		}
		if !row.Watermark.IsZero() {
			sh.Watermark = row.Watermark.Format(time.RFC3339Nano)
		}
		if !quiet && !row.Fin && !row.LastDelivery.IsZero() {
			age := now.Sub(row.LastDelivery)
			sh.LastDeliveryAgeSeconds = age.Seconds()
			if s.staleAfter > 0 && age > s.staleAfter {
				h.StaleSites = append(h.StaleSites, row.Site)
			}
		}
		h.SiteDetail = append(h.SiteDetail, sh)
	}
	if !quiet && st.WatermarkSkew > 0 {
		h.WatermarkSkewSeconds = st.WatermarkSkew.Seconds()
	}
	if h.LostWindows > 0 || len(h.MissingSites) > 0 || len(h.StaleSites) > 0 {
		h.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *FleetServer) latest(w http.ResponseWriter, req *http.Request) {
	if !s.f.Windowing() {
		httpError(w, http.StatusNotFound, "fleet is not windowed")
		return
	}
	n := s.f.MaxWindow()
	if n < 0 {
		httpError(w, http.StatusNotFound, "no window delivered yet")
		return
	}
	s.serveWindow(w, n)
}

func (s *FleetServer) window(w http.ResponseWriter, req *http.Request) {
	if !s.f.Windowing() {
		httpError(w, http.StatusNotFound, "fleet is not windowed")
		return
	}
	raw := strings.TrimPrefix(req.URL.Path, "/report/window/")
	n, err := strconv.Atoi(raw)
	if err != nil {
		httpError(w, http.StatusBadRequest, "window index must be an integer")
		return
	}
	s.serveWindow(w, n)
}

func (s *FleetServer) serveWindow(w http.ResponseWriter, n int) {
	wr, ok := s.f.WindowReport(n)
	if !ok {
		httpError(w, http.StatusNotFound, "no such window")
		return
	}
	s.serveReport(w, wr.Report)
}

// fleet serves the current merged cumulative, whatever its completeness;
// the Fleet section names what is missing while the fleet is partial.
func (s *FleetServer) fleet(w http.ResponseWriter, req *http.Request) {
	s.serveReport(w, s.f.Report())
}

// final gates on fleet completeness: it serves exactly what
// /report/fleet would, but only once every site has finned — the moment
// the merged report stops changing.
func (s *FleetServer) final(w http.ResponseWriter, req *http.Request) {
	if !s.f.Status().FinalReady {
		httpError(w, http.StatusNotFound, "fleet incomplete: sites still reporting")
		return
	}
	s.serveReport(w, s.f.Report())
}

func (s *FleetServer) serveReport(w http.ResponseWriter, r *Report) {
	b, err := MarshalReport(r)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(append(b, '\n'))
}
