package gen

import (
	"testing"

	"enttrace/internal/categories"
	"enttrace/internal/enterprise"
	"enttrace/internal/flows"
	"enttrace/internal/layers"
)

// TestEveryCategoryGenerated verifies a single full-scale client-subnet
// trace carries traffic in every Figure 1 category — the property the
// whole reproduction depends on.
func TestEveryCategoryGenerated(t *testing.T) {
	net := enterprise.NewNetwork(enterprise.D4())
	pkts := GenerateTrace(net, 5, 0)
	tbl := flows.NewTable(flows.Config{})
	var p layers.Packet
	for _, pk := range pkts {
		if err := layers.Decode(pk.Data, pk.OrigLen, &p); err != nil {
			t.Fatal(err)
		}
		tbl.Packet(pk.Timestamp, &p, pk.OrigLen)
	}
	tbl.Flush()
	reg := categories.NewRegistry()
	seen := map[string]bool{}
	for _, c := range tbl.Conns() {
		_, cat := reg.Classify(c.Proto, c.Key.Src, c.Key.Dst, c.Key.SrcPort, c.Key.DstPort)
		if cat != "" {
			seen[cat] = true
		}
	}
	for _, cat := range categories.All {
		if !seen[cat] {
			t.Errorf("category %q absent from generated trace", cat)
		}
	}
}

// TestVantageAsymmetry verifies the generator's vantage story: the auth
// subnet's trace carries far more CIFS sessions than an ordinary client
// subnet's, and the mail subnet's trace carries far more SMTP.
func TestVantageAsymmetry(t *testing.T) {
	cfg := enterprise.D0()
	cfg.Scale = 0.5
	net := enterprise.NewNetwork(cfg)
	countPort := func(subnet int, port uint16) int {
		pkts := GenerateTrace(net, subnet, 0)
		tbl := flows.NewTable(flows.Config{})
		var p layers.Packet
		for _, pk := range pkts {
			if err := layers.Decode(pk.Data, pk.OrigLen, &p); err != nil {
				t.Fatal(err)
			}
			tbl.Packet(pk.Timestamp, &p, pk.OrigLen)
		}
		tbl.Flush()
		n := 0
		for _, c := range tbl.Conns() {
			if c.Key.DstPort == port {
				n++
			}
		}
		return n
	}
	authCIFS := countPort(enterprise.SubnetAuth, 445) + countPort(enterprise.SubnetAuth, 139)
	clientCIFS := countPort(5, 445) + countPort(5, 139)
	if authCIFS <= 2*clientCIFS {
		t.Errorf("auth vantage CIFS = %d, client subnet = %d; want strong asymmetry", authCIFS, clientCIFS)
	}
	mailSMTP := countPort(enterprise.SubnetMail, 25)
	clientSMTP := countPort(5, 25)
	if mailSMTP <= 2*clientSMTP {
		t.Errorf("mail vantage SMTP = %d, client subnet = %d", mailSMTP, clientSMTP)
	}
}

// TestScaleKnob: halving Scale roughly halves trace volume.
func TestScaleKnob(t *testing.T) {
	big := enterprise.D3()
	big.Scale = 0.6
	small := enterprise.D3()
	small.Scale = 0.15
	nBig := len(GenerateTrace(enterprise.NewNetwork(big), 4, 0))
	nSmall := len(GenerateTrace(enterprise.NewNetwork(small), 4, 0))
	ratio := float64(nBig) / float64(nSmall)
	if ratio < 1.8 || ratio > 9 {
		t.Errorf("scale 4x → packet ratio %.1f (big=%d small=%d)", ratio, nBig, nSmall)
	}
}

// TestD0ShorterThanD3: the 10-minute dataset generates much less per
// trace than the hour-long ones.
func TestD0ShorterThanD3(t *testing.T) {
	n0 := len(GenerateTrace(enterprise.NewNetwork(enterprise.D0()), 5, 0))
	n3 := len(GenerateTrace(enterprise.NewNetwork(enterprise.D3()), 5, 0))
	if n0*2 > n3 {
		t.Errorf("D0 trace %d packets vs D3 %d; want D0 ≪ D3", n0, n3)
	}
}
