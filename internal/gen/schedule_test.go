package gen

import (
	"testing"
	"time"

	"enttrace/internal/enterprise"
)

func TestParseSchedule(t *testing.T) {
	s, err := ParseSchedule("ramp:60s:0-30,burst:30s:120,quiet:90s,steady:2m:20")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Phases) != 4 {
		t.Fatalf("want 4 phases, got %d", len(s.Phases))
	}
	if s.Duration() != 60*time.Second+30*time.Second+90*time.Second+2*time.Minute {
		t.Errorf("duration = %s", s.Duration())
	}
	if p := s.Phases[0]; p.Kind != PhaseRamp || p.Rate0 != 0 || p.Rate1 != 30 {
		t.Errorf("ramp parsed as %+v", p)
	}
	if p := s.Phases[2]; p.Kind != PhaseQuiet || p.Rate0 != 0 || p.Rate1 != 0 {
		t.Errorf("quiet parsed as %+v", p)
	}
	for _, bad := range []string{
		"", "ramp:60s", "ramp:60s:5", "quiet:60s:5", "steady:60s",
		"warp:60s:5", "steady:-1s:5", "steady:60s:-5", "ramp:60s:5-x",
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q): want error", bad)
		}
	}
}

func TestSessionOffsetsDeterministicAndShaped(t *testing.T) {
	s := DefaultSchedule()
	a, b := s.SessionOffsets(), s.SessionOffsets()
	if len(a) == 0 {
		t.Fatal("no sessions")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("offsets differ at %d: %s vs %s", i, a[i], b[i])
		}
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("offsets not monotone at %d", i)
		}
	}
	// Count sessions per schedule minute: ramp < burst, quiet empty,
	// steady near its configured rate.
	perMin := make(map[int]int)
	for _, off := range a {
		perMin[int(off/time.Minute)]++
	}
	if perMin[1] <= perMin[0] {
		t.Errorf("burst minute (%d) should exceed ramp minute (%d)", perMin[1], perMin[0])
	}
	if perMin[2] != 0 {
		t.Errorf("quiet minute has %d sessions", perMin[2])
	}
	if perMin[3] < 15 || perMin[3] > 21 {
		t.Errorf("steady minute = %d sessions, want ~18", perMin[3])
	}
}

func TestGenerateScheduledTraceDeterministic(t *testing.T) {
	cfg := enterprise.D3()
	cfg.Scale = 1
	gen1 := GenerateScheduledTrace(enterprise.NewNetwork(cfg), cfg.Monitored[0], 0, DefaultSchedule())
	gen2 := GenerateScheduledTrace(enterprise.NewNetwork(cfg), cfg.Monitored[0], 0, DefaultSchedule())
	if len(gen1) == 0 {
		t.Fatal("empty scheduled trace")
	}
	if len(gen1) != len(gen2) {
		t.Fatalf("runs differ in packet count: %d vs %d", len(gen1), len(gen2))
	}
	for i := range gen1 {
		if !gen1[i].Timestamp.Equal(gen2[i].Timestamp) || string(gen1[i].Data) != string(gen2[i].Data) {
			t.Fatalf("runs differ at packet %d", i)
		}
	}
	// The first packet anchors the schedule origin exactly.
	if !gen1[0].Timestamp.Equal(cfg.Date) {
		t.Errorf("first packet at %s, want schedule origin %s", gen1[0].Timestamp, cfg.Date)
	}
	// No packet beyond the schedule (sessions near the end still finish
	// with RTT-scale pacing; give a small grace).
	last := gen1[len(gen1)-1].Timestamp
	if last.After(cfg.Date.Add(DefaultSchedule().Duration() + time.Minute)) {
		t.Errorf("last packet at %s, far beyond schedule end", last)
	}
}
