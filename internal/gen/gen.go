// Package gen is the synthetic-traffic engine: it turns the enterprise
// model and per-application workload descriptions into byte-exact packet
// streams. Every connection is emitted with a real TCP state machine —
// handshake (or rejection, or silence), MSS segmentation, delayed ACKs,
// RTT pacing, optional segment retransmission, keep-alive probes, and FIN
// teardown — so the analyzer measures connection outcomes, durations,
// sizes, and retransmission rates from the wire, never from generator
// ground truth.
package gen

import (
	"math/rand"
	"net/netip"
	"sort"
	"time"

	"enttrace/internal/enterprise"
	"enttrace/internal/layers"
	"enttrace/internal/pcap"
)

// MSS is the TCP segment payload bound. It is chosen so a full data frame
// (14 Ethernet + 20 IP + 20 TCP + MSS = 1500 bytes) exactly fits the
// paper's full-packet snap length: a standard 1460-byte MSS yields
// 1514-byte frames that a 1500-byte snaplen silently truncates by
// 14 payload bytes per segment, which would corrupt every reassembled
// application stream at the analyzer (precisely the capture-loss artifact
// the paper mentions observing).
const MSS = 1446

// Turn is one application-level send within a session.
type Turn struct {
	FromClient bool
	// Delay is think time before this turn (beyond the RTT pacing the
	// emitter applies between turns).
	Delay time.Duration
	Data  []byte
}

// Outcome selects the fate of a TCP connection attempt.
type Outcome int

// Connection outcomes.
const (
	Established Outcome = iota
	Rejected            // SYN answered by RST from the responder
	Unanswered          // SYN (and retries) never answered
)

// TCPOpts describes one TCP session to emit.
type TCPOpts struct {
	Client, Server enterprise.Host
	ClientPort     uint16
	ServerPort     uint16
	Start          time.Time
	RTT            time.Duration
	Turns          []Turn
	Outcome        Outcome
	// LossProb duplicates each data segment with this probability,
	// modeling loss downstream of the monitoring point (the monitor sees
	// both the original and the retransmission).
	LossProb float64
	// KeepAlives appends this many 1-byte snd_nxt-1 probes from the
	// client after the last turn, spaced KeepAliveGap apart (the NCP
	// idle-connection pattern).
	KeepAlives   int
	KeepAliveGap time.Duration
	// NoFin leaves the connection open (end of trace cuts it off).
	NoFin bool
}

// Emitter accumulates timestamped frames for one trace.
type Emitter struct {
	rng  *rand.Rand
	pkts []pcap.Packet
	ipid uint16
}

// NewEmitter returns an emitter seeded deterministically.
func NewEmitter(seed int64) *Emitter {
	return &Emitter{rng: rand.New(rand.NewSource(seed))}
}

// RNG exposes the emitter's deterministic random source for workload
// shaping.
func (e *Emitter) RNG() *rand.Rand { return e.rng }

func (e *Emitter) frame(ts time.Time, data []byte) {
	e.pkts = append(e.pkts, pcap.Packet{Timestamp: ts, Data: data, OrigLen: len(data)})
}

func (e *Emitter) nextID() uint16 {
	e.ipid++
	return e.ipid
}

// Packets returns all emitted frames sorted by timestamp. The slice is
// the emitter's own; callers take ownership.
func (e *Emitter) Packets() []*pcap.Packet {
	sort.SliceStable(e.pkts, func(i, j int) bool {
		return e.pkts[i].Timestamp.Before(e.pkts[j].Timestamp)
	})
	out := make([]*pcap.Packet, len(e.pkts))
	for i := range e.pkts {
		out[i] = &e.pkts[i]
	}
	return out
}

// Count reports frames emitted so far.
func (e *Emitter) Count() int { return len(e.pkts) }

// Drain passes every frame buffered since the last Drain to fn in
// emission order, then clears the buffer for reuse. It is the streaming
// alternative to Packets: Packets sorts and hands over ownership of the
// whole trace at once, while Drain lets a caller consume frames
// incrementally — copying whatever it keeps — so the emitter's buffer
// never grows beyond one drain interval. The data slice must be copied
// if kept: the emitter makes no guarantee about it after fn returns.
func (e *Emitter) Drain(fn func(ts time.Time, data []byte)) {
	for i := range e.pkts {
		fn(e.pkts[i].Timestamp, e.pkts[i].Data)
	}
	e.pkts = e.pkts[:0]
}

func frameOpts(src, dst enterprise.Host, id uint16) layers.FrameOpts {
	return layers.FrameOpts{
		SrcMAC: src.MAC, DstMAC: dst.MAC,
		SrcIP: src.Addr, DstIP: dst.Addr,
		IPID: id,
	}
}

// tcpEndpoint tracks one side's sequence state.
type tcpEndpoint struct {
	host enterprise.Host
	port uint16
	seq  uint32
}

// TCPSession emits one full TCP conversation and returns the time the
// last packet was sent.
func (e *Emitter) TCPSession(o TCPOpts) time.Time {
	owd := o.RTT / 2
	if owd <= 0 {
		owd = 100 * time.Microsecond
	}
	cli := &tcpEndpoint{host: o.Client, port: o.ClientPort, seq: e.rng.Uint32()}
	srv := &tcpEndpoint{host: o.Server, port: o.ServerPort, seq: e.rng.Uint32()}
	now := o.Start

	sendFlags := func(from, to *tcpEndpoint, ts time.Time, flags uint8, ack uint32, payload []byte) {
		e.frame(ts, layers.BuildTCP(layers.TCPOpts{
			FrameOpts: frameOpts(from.host, to.host, e.nextID()),
			SrcPort:   from.port, DstPort: to.port,
			Seq: from.seq, Ack: ack, Flags: flags, Payload: payload,
		}))
	}

	// SYN.
	sendFlags(cli, srv, now, layers.TCPSyn, 0, nil)
	switch o.Outcome {
	case Unanswered:
		// Classic exponential SYN retry, then give up.
		sendFlags(cli, srv, now.Add(3*time.Second), layers.TCPSyn, 0, nil)
		sendFlags(cli, srv, now.Add(9*time.Second), layers.TCPSyn, 0, nil)
		return now.Add(9 * time.Second)
	case Rejected:
		now = now.Add(owd)
		// RST from the server, with the server's seq zero-ish.
		e.frame(now, layers.BuildTCP(layers.TCPOpts{
			FrameOpts: frameOpts(o.Server, o.Client, e.nextID()),
			SrcPort:   o.ServerPort, DstPort: o.ClientPort,
			Seq: 0, Ack: cli.seq + 1, Flags: layers.TCPRst | layers.TCPAck,
		}))
		return now
	}
	cli.seq++
	now = now.Add(owd)
	sendFlags(srv, cli, now, layers.TCPSyn|layers.TCPAck, cli.seq, nil)
	srv.seq++
	now = now.Add(owd)
	sendFlags(cli, srv, now, layers.TCPAck, srv.seq, nil)

	// Data turns.
	for _, turn := range o.Turns {
		now = now.Add(turn.Delay)
		from, to := srv, cli
		if turn.FromClient {
			from, to = cli, srv
		}
		data := turn.Data
		segIdx := 0
		for len(data) > 0 {
			n := len(data)
			if n > MSS {
				n = MSS
			}
			seg := data[:n]
			data = data[n:]
			sendFlags(from, to, now, layers.TCPAck|layers.TCPPsh, to.seq, seg)
			if o.LossProb > 0 && e.rng.Float64() < o.LossProb {
				// Retransmission of the same segment an RTO later.
				sendFlags(from, to, now.Add(200*time.Millisecond), layers.TCPAck|layers.TCPPsh, to.seq, seg)
			}
			from.seq += uint32(n)
			segIdx++
			if segIdx%2 == 0 {
				// Delayed ACK from the receiver.
				sendFlags(to, from, now.Add(owd), layers.TCPAck, from.seq, nil)
			}
			now = now.Add(12 * time.Microsecond) // serialization spacing
		}
		// Final ACK for the turn.
		sendFlags(to, from, now.Add(owd), layers.TCPAck, from.seq, nil)
		now = now.Add(owd)
	}

	// Keep-alive probes (1 byte at snd_nxt-1).
	if o.KeepAlives > 0 {
		gap := o.KeepAliveGap
		if gap == 0 {
			gap = time.Minute
		}
		for i := 0; i < o.KeepAlives; i++ {
			now = now.Add(gap)
			e.frame(now, layers.BuildTCP(layers.TCPOpts{
				FrameOpts: frameOpts(o.Client, o.Server, e.nextID()),
				SrcPort:   o.ClientPort, DstPort: o.ServerPort,
				Seq: cli.seq - 1, Ack: srv.seq, Flags: layers.TCPAck, Payload: []byte{0},
			}))
			// Keep-alive ACK response.
			e.frame(now.Add(owd), layers.BuildTCP(layers.TCPOpts{
				FrameOpts: frameOpts(o.Server, o.Client, e.nextID()),
				SrcPort:   o.ServerPort, DstPort: o.ClientPort,
				Seq: srv.seq, Ack: cli.seq, Flags: layers.TCPAck,
			}))
		}
	}

	if !o.NoFin {
		sendFlags(cli, srv, now, layers.TCPFin|layers.TCPAck, srv.seq, nil)
		cli.seq++
		now = now.Add(owd)
		sendFlags(srv, cli, now, layers.TCPFin|layers.TCPAck, cli.seq, nil)
		srv.seq++
		now = now.Add(owd)
		sendFlags(cli, srv, now, layers.TCPAck, srv.seq, nil)
	}
	return now
}

// UDPExchange emits a request datagram and optional reply, returning the
// reply time (or request time if unanswered).
func (e *Emitter) UDPExchange(client, server enterprise.Host, cport, sport uint16, start time.Time, rtt time.Duration, req, reply []byte) time.Time {
	e.frame(start, layers.BuildUDP(layers.UDPOpts{
		FrameOpts: frameOpts(client, server, e.nextID()),
		SrcPort:   cport, DstPort: sport, Payload: req,
	}))
	if reply == nil {
		return start
	}
	at := start.Add(rtt)
	e.frame(at, layers.BuildUDP(layers.UDPOpts{
		FrameOpts: frameOpts(server, client, e.nextID()),
		SrcPort:   sport, DstPort: cport, Payload: reply,
	}))
	return at
}

// UDPSend emits a single one-way datagram (announcements, multicast).
func (e *Emitter) UDPSend(src, dst enterprise.Host, sport, dport uint16, ts time.Time, payload []byte) {
	e.frame(ts, layers.BuildUDP(layers.UDPOpts{
		FrameOpts: frameOpts(src, dst, e.nextID()),
		SrcPort:   sport, DstPort: dport, Payload: payload,
	}))
}

// ICMPEcho emits an echo request and, when answered, its reply.
func (e *Emitter) ICMPEcho(client, server enterprise.Host, id, seq uint16, start time.Time, rtt time.Duration, answered bool) {
	e.frame(start, layers.BuildICMP(layers.ICMPOpts{
		FrameOpts: frameOpts(client, server, e.nextID()),
		Type:      layers.ICMPEchoRequest, ID: id, Seq: seq, Payload: make([]byte, 56),
	}))
	if answered {
		e.frame(start.Add(rtt), layers.BuildICMP(layers.ICMPOpts{
			FrameOpts: frameOpts(server, client, e.nextID()),
			Type:      layers.ICMPEchoReply, ID: id, Seq: seq, Payload: make([]byte, 56),
		}))
	}
}

// ARPExchange emits a broadcast who-has and its unicast reply.
func (e *Emitter) ARPExchange(asker, owner enterprise.Host, ts time.Time) {
	e.frame(ts, layers.BuildARP(layers.ARPOpts{
		SrcMAC: asker.MAC, DstMAC: layers.Broadcast,
		Op:       1,
		SenderHW: asker.MAC, SenderIP: asker.Addr,
		TargetIP: owner.Addr,
	}))
	e.frame(ts.Add(300*time.Microsecond), layers.BuildARP(layers.ARPOpts{
		SrcMAC: owner.MAC, DstMAC: asker.MAC,
		Op:       2,
		SenderHW: owner.MAC, SenderIP: owner.Addr,
		TargetHW: asker.MAC, TargetIP: asker.Addr,
	}))
}

// IPXBroadcast emits a Novell SAP-style broadcast.
func (e *Emitter) IPXBroadcast(src enterprise.Host, ts time.Time, payload []byte, raw8023 bool) {
	e.frame(ts, layers.BuildIPX(layers.IPXOpts{
		SrcMAC: src.MAC, DstMAC: layers.Broadcast,
		SrcNet: 1, DstNet: 0,
		SrcSocket: 0x0452, DstSocket: 0x0452, // SAP
		PacketType: 4,
		Payload:    payload,
		Raw8023:    raw8023,
	}))
}

// MulticastHost fabricates a pseudo-host for a multicast group so the
// generic emitters can address it.
func MulticastHost(group [4]byte) enterprise.Host {
	addr := netip.AddrFrom4(group)
	return enterprise.Host{
		Addr: addr,
		MAC:  layers.MulticastMAC(addr),
	}
}
