package gen

import (
	"bytes"
	"testing"
	"time"

	"enttrace/internal/enterprise"
	"enttrace/internal/flows"
	"enttrace/internal/layers"
	"enttrace/internal/pcap"
	"enttrace/internal/reassembly"
)

func hosts() (c, s enterprise.Host) {
	return enterprise.InternalHost(3, 20), enterprise.InternalHost(6, 2)
}

func t0() time.Time { return time.Unix(1100000000, 0).UTC() }

// runThroughFlows decodes emitted frames and feeds them into a connection
// table, returning the conns — the generator's packets must be readable by
// the real analysis path.
func runThroughFlows(t *testing.T, pkts []*pcap.Packet) []*flows.Conn {
	t.Helper()
	tbl := flows.NewTable(flows.Config{})
	var p layers.Packet
	for _, pk := range pkts {
		if err := layers.Decode(pk.Data, pk.OrigLen, &p); err != nil {
			t.Fatalf("generated frame undecodable: %v", err)
		}
		tbl.Packet(pk.Timestamp, &p, pk.OrigLen)
	}
	tbl.Flush()
	return tbl.Conns()
}

func TestTCPSessionEstablished(t *testing.T) {
	c, s := hosts()
	em := NewEmitter(1)
	payload := bytes.Repeat([]byte{0x42}, 5000)
	em.TCPSession(TCPOpts{
		Client: c, Server: s, ClientPort: 40000, ServerPort: 80,
		Start: t0(), RTT: time.Millisecond,
		Turns: []Turn{
			{FromClient: true, Data: []byte("request")},
			{Data: payload},
		},
	})
	conns := runThroughFlows(t, em.Packets())
	if len(conns) != 1 {
		t.Fatalf("conns = %d", len(conns))
	}
	conn := conns[0]
	if conn.State != flows.StateEstablished {
		t.Errorf("state = %v", conn.State)
	}
	if conn.OrigBytes != 7 || conn.RespBytes != 5000 {
		t.Errorf("bytes = %d/%d", conn.OrigBytes, conn.RespBytes)
	}
	if conn.Retrans != 0 {
		t.Errorf("unexpected retransmissions: %d", conn.Retrans)
	}
}

func TestTCPSessionReassembles(t *testing.T) {
	// The emitted segments must reassemble to exactly the turn data.
	c, s := hosts()
	em := NewEmitter(2)
	want := bytes.Repeat([]byte("0123456789abcdef"), 700) // > 7 segments
	em.TCPSession(TCPOpts{
		Client: c, Server: s, ClientPort: 40001, ServerPort: 13724,
		Start: t0(), RTT: 500 * time.Microsecond,
		Turns: []Turn{{FromClient: true, Data: want}},
	})
	var buf reassembly.BufferConsumer
	stream := reassembly.NewStream(&buf)
	var p layers.Packet
	for _, pk := range em.Packets() {
		if err := layers.Decode(pk.Data, pk.OrigLen, &p); err != nil {
			t.Fatal(err)
		}
		if !p.Layers.Has(layers.LayerTCP) || p.IP4.Src != c.Addr || len(p.Payload) == 0 {
			continue
		}
		if p.TCP.Flags&layers.TCPSyn != 0 {
			continue
		}
		stream.Segment(p.TCP.Seq, p.Payload)
	}
	stream.Close()
	if !bytes.Equal(buf.Buf, want) {
		t.Errorf("reassembled %d bytes, want %d (gaps=%d)", len(buf.Buf), len(want), buf.Gaps)
	}
}

func TestTCPOutcomes(t *testing.T) {
	c, s := hosts()
	for _, tc := range []struct {
		outcome Outcome
		state   flows.State
	}{
		{Rejected, flows.StateRejected},
		{Unanswered, flows.StateAttempted},
	} {
		em := NewEmitter(3)
		em.TCPSession(TCPOpts{
			Client: c, Server: s, ClientPort: 40002, ServerPort: 445,
			Start: t0(), RTT: time.Millisecond, Outcome: tc.outcome,
		})
		conns := runThroughFlows(t, em.Packets())
		if len(conns) != 1 || conns[0].State != tc.state {
			t.Errorf("outcome %v → state %v", tc.outcome, conns[0].State)
		}
	}
}

func TestLossInjectionProducesRetransmissions(t *testing.T) {
	c, s := hosts()
	em := NewEmitter(4)
	em.TCPSession(TCPOpts{
		Client: c, Server: s, ClientPort: 40003, ServerPort: 13724,
		Start: t0(), RTT: time.Millisecond,
		Turns:    []Turn{{FromClient: true, Data: make([]byte, 300*MSS)}},
		LossProb: 0.05,
	})
	conns := runThroughFlows(t, em.Packets())
	if len(conns) != 1 {
		t.Fatal("want one conn")
	}
	r := conns[0].Retrans
	if r < 5 || r > 40 {
		t.Errorf("retransmissions = %d, want ≈15 of 300 segments", r)
	}
}

func TestKeepAlivesDetected(t *testing.T) {
	c, s := hosts()
	em := NewEmitter(5)
	em.TCPSession(TCPOpts{
		Client: c, Server: s, ClientPort: 40004, ServerPort: 524,
		Start: t0(), RTT: time.Millisecond,
		Turns:      []Turn{{FromClient: true, Data: []byte("ab")}},
		KeepAlives: 5, KeepAliveGap: time.Minute,
		NoFin: true,
	})
	conns := runThroughFlows(t, em.Packets())
	if len(conns) != 1 {
		t.Fatal("want one conn")
	}
	if conns[0].KeepAliveRetrans != 5 {
		t.Errorf("keepalives = %d, want 5", conns[0].KeepAliveRetrans)
	}
	if conns[0].Retrans != 0 {
		t.Errorf("retrans = %d", conns[0].Retrans)
	}
}

func TestPacketsSortedAndDeterministic(t *testing.T) {
	net := enterprise.NewNetwork(scaled(enterprise.D0(), 0.1))
	p1 := GenerateTrace(net, 3, 0)
	p2 := GenerateTrace(net, 3, 0)
	if len(p1) == 0 {
		t.Fatal("empty trace")
	}
	if len(p1) != len(p2) {
		t.Fatalf("nondeterministic: %d vs %d packets", len(p1), len(p2))
	}
	for i := range p1 {
		if !p1[i].Timestamp.Equal(p2[i].Timestamp) || !bytes.Equal(p1[i].Data, p2[i].Data) {
			t.Fatalf("packet %d differs between runs", i)
		}
		if i > 0 && p1[i].Timestamp.Before(p1[i-1].Timestamp) {
			t.Fatalf("packet %d out of order", i)
		}
	}
}

func scaled(cfg enterprise.Config, s float64) enterprise.Config {
	cfg.Scale = s
	return cfg
}

func TestTraceDecodableAndMixed(t *testing.T) {
	net := enterprise.NewNetwork(scaled(enterprise.D3(), 0.2))
	pkts := GenerateTrace(net, 5, 0)
	var p layers.Packet
	var ip, arp, ipx, tcp, udp, icmp int
	for _, pk := range pkts {
		if err := layers.Decode(pk.Data, pk.OrigLen, &p); err != nil {
			t.Fatalf("undecodable frame: %v", err)
		}
		switch {
		case p.Layers.Has(layers.LayerIPv4):
			ip++
		case p.Layers.Has(layers.LayerARP):
			arp++
		case p.Layers.Has(layers.LayerIPX):
			ipx++
		}
		switch {
		case p.Layers.Has(layers.LayerTCP):
			tcp++
		case p.Layers.Has(layers.LayerUDP):
			udp++
		case p.Layers.Has(layers.LayerICMP):
			icmp++
		}
	}
	if ip == 0 || arp == 0 || ipx == 0 || tcp == 0 || udp == 0 || icmp == 0 {
		t.Errorf("missing traffic classes: ip=%d arp=%d ipx=%d tcp=%d udp=%d icmp=%d", ip, arp, ipx, tcp, udp, icmp)
	}
	if float64(ip) < 0.9*float64(len(pkts)) {
		t.Errorf("IP fraction = %d/%d, want > 90%%", ip, len(pkts))
	}
}

func TestDatasetSnaplen(t *testing.T) {
	cfg := scaled(enterprise.D1(), 0.03)
	cfg.Monitored = cfg.Monitored[:2]
	ds := GenerateDataset(cfg)
	if len(ds.Traces) != 2*cfg.PerTap {
		t.Fatalf("traces = %d", len(ds.Traces))
	}
	truncated := 0
	for _, tr := range ds.Traces {
		for _, pk := range tr.Packets {
			if len(pk.Data) > 68 {
				t.Fatalf("packet exceeds snaplen: %d bytes", len(pk.Data))
			}
			if pk.OrigLen > len(pk.Data) {
				truncated++
			}
		}
	}
	if truncated == 0 {
		t.Error("no packets truncated at snaplen 68")
	}
	if ds.TotalPackets() == 0 {
		t.Error("empty dataset")
	}
}

func TestWriteTraceRoundTrip(t *testing.T) {
	cfg := scaled(enterprise.D0(), 0.03)
	cfg.Monitored = cfg.Monitored[:1]
	ds := GenerateDataset(cfg)
	var buf bytes.Buffer
	if err := WriteTrace(&buf, cfg, ds.Traces[0]); err != nil {
		t.Fatal(err)
	}
	r, err := pcap.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ds.Traces[0].Packets) {
		t.Errorf("pcap round trip: %d vs %d packets", len(got), len(ds.Traces[0].Packets))
	}
	for i := range got {
		if got[i].OrigLen != ds.Traces[0].Packets[i].OrigLen {
			t.Fatalf("packet %d origlen lost", i)
		}
	}
}

func TestMulticastEmission(t *testing.T) {
	net := enterprise.NewNetwork(scaled(enterprise.D4(), 0.2))
	pkts := GenerateTrace(net, 5, 0)
	conns := runThroughFlows(t, pkts)
	mcast := 0
	for _, c := range conns {
		if c.Multicast {
			mcast++
		}
	}
	if mcast == 0 {
		t.Error("no multicast flows generated")
	}
}

func BenchmarkGenerateTrace(b *testing.B) {
	net := enterprise.NewNetwork(scaled(enterprise.D4(), 0.1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = GenerateTrace(net, 5, 0)
	}
}
