// The streaming generator source: the gen→analyze load harness.
//
// StreamSource synthesizes a scheduled trace's frames on the fly and
// feeds them straight into the analysis pipeline as a pcap.PacketSource
// — no pcap file is written or read in between, and memory stays
// bounded no matter how long the schedule runs. It is the tool ROADMAP
// item 4 names: the generator pushed to production-bench scale, so soak
// runs can sustain a target packet rate for minutes while entanalyze
// -serve reports live windows.
//
// Equivalence contract: the frame sequence a StreamSource yields is
// byte-identical — timestamps, capture truncation, and order included —
// to writing GenerateScheduledTrace's output through pcap.Writer and
// reading it back. DESIGN.md §"Packet sources" walks through why; the
// short version is in the emission-order comment on Next below.
package gen

import (
	"container/heap"
	"io"
	"sync/atomic"
	"time"

	"enttrace/internal/enterprise"
	"enttrace/internal/pcap"
)

// StreamConfig configures a streaming generator source.
type StreamConfig struct {
	// Network is the enterprise model; its Config supplies the seed and
	// trace date, exactly as for GenerateScheduledTrace.
	Network *enterprise.Network
	// Subnet and Tap select the monitored-subnet vantage (the same
	// parameters entgen -schedule uses: the dataset's first monitored
	// subnet, tap 0).
	Subnet, Tap int
	// Schedule is the session timeline. Use Schedule.Repeat to tile a
	// short shape over a soak duration.
	Schedule Schedule
	// Snaplen truncates captured frames exactly as the capture hardware
	// (pcap.Writer) would: Data is cut to Snaplen, OrigLen keeps the
	// wire length. 0 means no truncation.
	Snaplen uint32
}

// StreamStats is a StreamSource's bounded-memory telemetry.
type StreamStats struct {
	// Frames is the total number of frames yielded so far.
	Frames int64
	// PeakBuffered is the high-water mark of the reorder buffer: the
	// most frames ever pending between synthesis and emission. It is
	// bounded by the sessions whose spans overlap one instant (rate ×
	// session length) plus the largest single session's frames — set by
	// the schedule's rate and the size distributions, not its length, so
	// soak runs hold steady however long they go (the property
	// TestStreamSourceBoundedBuffer and the soak-scale test pin).
	PeakBuffered int
	// PeakInFlight is the most frames ever issued to the consumer and
	// not yet returned via Release; for the pipeline this is bounded by
	// its batch/queue depth.
	PeakInFlight int64
}

// frameRec is one synthesized frame waiting in the reorder buffer. idx
// is its global emission index — the order the generator produced it —
// which breaks timestamp ties exactly like the stable sort in
// Emitter.Packets does.
type frameRec struct {
	pk  *pcap.Packet
	idx int64
}

// frameHeap is a min-heap on (timestamp, emission index).
type frameHeap []frameRec

func (h frameHeap) Len() int { return len(h) }
func (h frameHeap) Less(i, j int) bool {
	if !h[i].pk.Timestamp.Equal(h[j].pk.Timestamp) {
		return h[i].pk.Timestamp.Before(h[j].pk.Timestamp)
	}
	return h[i].idx < h[j].idx
}
func (h frameHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *frameHeap) Push(x interface{}) { *h = append(*h, x.(frameRec)) }
func (h *frameHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = frameRec{}
	*h = old[:n-1]
	return e
}

// StreamSource synthesizes frames on demand from a Schedule and yields
// them in capture order. It implements pcap.PacketSource and
// pcap.Releaser: frames are built into pooled buffers and recycled as
// soon as the pipeline releases them, so a soak run's steady state
// allocates nothing per frame.
//
// Next and Release follow the pipeline's pooling contract: Next is
// called from one goroutine (the router); Release may be called from
// any worker goroutine. A consumer keeping slices into a frame's Data
// must call Retain first, as with any pooled source.
type StreamSource struct {
	run     *scheduleRun
	offsets []time.Duration
	next    int // next session index to synthesize
	h       frameHeap
	pool    *pcap.Pool
	snaplen uint32
	emitIdx int64
	done    bool

	frames  int64
	peakBuf int
	live    atomic.Int64
	peak    atomic.Int64
}

// NewStreamSource returns a source over cfg's schedule. Construction
// synthesizes only the anchor frames; everything else is generated
// lazily as Next drains the timeline.
func NewStreamSource(cfg StreamConfig) *StreamSource {
	s := &StreamSource{
		run:     newScheduleRun(cfg.Network, cfg.Subnet, cfg.Tap, cfg.Schedule),
		offsets: cfg.Schedule.SessionOffsets(),
		pool:    pcap.NewPool(),
		snaplen: cfg.Snaplen,
	}
	s.run.g.em.Drain(s.buffer) // the ARP anchor exchange
	return s
}

// buffer copies one synthesized frame into a pooled packet and parks it
// in the reorder heap under its emission index.
func (s *StreamSource) buffer(ts time.Time, data []byte) {
	pk := s.pool.Get()
	pk.Timestamp = ts
	pk.Data = append(pk.Data[:0], data...)
	pk.OrigLen = len(data)
	heap.Push(&s.h, frameRec{pk: pk, idx: s.emitIdx})
	s.emitIdx++
	if len(s.h) > s.peakBuf {
		s.peakBuf = len(s.h)
	}
}

// Next implements pcap.PacketSource, yielding the globally next frame
// and ending with a bare io.EOF.
//
// Emission order reproduces Emitter.Packets' stable sort exactly. The
// heap orders buffered frames by (timestamp, emission index) — the
// stable sort's key. A buffered frame may be emitted once its timestamp
// is at or before the next unsynthesized session's start, because every
// frame of session m carries a timestamp >= its start offset (see
// scheduleRun.emitSession) and offsets are non-decreasing — so no
// future frame can sort earlier: a future frame at the same timestamp
// necessarily has a larger emission index. When the earliest buffered
// frame is still past that horizon, the next session is synthesized
// first. The buffer therefore holds only sessions overlapping the
// current instant: bounded by rate × session length, never by schedule
// duration.
func (s *StreamSource) Next() (*pcap.Packet, error) {
	if s.done {
		return nil, io.EOF
	}
	for {
		if len(s.h) > 0 {
			if s.next >= len(s.offsets) ||
				!s.h[0].pk.Timestamp.After(s.run.g.start.Add(s.offsets[s.next])) {
				return s.pop(), nil
			}
		}
		if s.next >= len(s.offsets) {
			s.done = true
			s.run.g.pinned = time.Time{}
			return nil, io.EOF
		}
		s.run.emitSession(s.next, s.offsets[s.next])
		s.next++
		s.run.g.em.Drain(s.buffer)
	}
}

// pop releases the earliest buffered frame to the consumer, applying
// the capture transform a pcap write/read round-trip would: snaplen
// truncation with the wire length preserved, and the timestamp cut to
// microsecond resolution (pcap.Writer stores µs; pcap.Reader returns
// UTC) — so a streamed run and a replayed file see identical packets.
func (s *StreamSource) pop() *pcap.Packet {
	rec := heap.Pop(&s.h).(frameRec)
	pk := rec.pk
	if s.snaplen > 0 && uint32(len(pk.Data)) > s.snaplen {
		pk.Data = pk.Data[:s.snaplen]
	}
	ts := pk.Timestamp
	pk.Timestamp = time.Unix(ts.Unix(), int64(ts.Nanosecond())/1000*1000).UTC()
	s.frames++
	if live := s.live.Add(1); live > s.peak.Load() {
		s.peak.Store(live)
	}
	return pk
}

// Release implements pcap.Releaser, recycling a frame's buffer once the
// pipeline is done with it (a no-op for retained packets, whose data
// has escaped into longer-lived analysis state). Safe to call from any
// goroutine.
func (s *StreamSource) Release(p *pcap.Packet) {
	s.live.Add(-1)
	s.pool.Put(p)
}

// Stats returns the source's telemetry. Call it after the run drains;
// mid-run values are approximate for the in-flight counters.
func (s *StreamSource) Stats() StreamStats {
	return StreamStats{
		Frames:       s.frames,
		PeakBuffered: s.peakBuf,
		PeakInFlight: s.peak.Load(),
	}
}

// WriteStream drains src into w as a pcap file, releasing each frame as
// soon as it is written, so arbitrarily long schedules serialize in
// bounded memory. The file is byte-identical to WriteTrace over the
// materialized GenerateScheduledTrace packets (the source already
// applies the capture transform). Returns the frame count.
func WriteStream(w io.Writer, snaplen uint32, src *StreamSource) (int64, error) {
	pw, err := pcap.NewWriter(w, snaplen, pcap.LinkTypeEthernet)
	if err != nil {
		return 0, err
	}
	var n int64
	for {
		p, err := src.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		werr := pw.WriteCaptured(p.Timestamp, p.Data, p.OrigLen)
		src.Release(p)
		if werr != nil {
			return n, werr
		}
		n++
	}
}
