package gen

import (
	"io"
	"net/netip"

	"enttrace/internal/enterprise"
	"enttrace/internal/pcap"
)

// Trace is one monitored-subnet capture: the paper's unit of analysis for
// per-trace figures (utilization, retransmission rate).
type Trace struct {
	Subnet  int
	Tap     int
	Packets []*pcap.Packet
	// Prefix is the monitored subnet's address block; analyses use it to
	// decide which hosts were "monitored" in this trace.
	Prefix netip.Prefix
}

// Dataset is a full capture campaign (all subnets, all taps).
type Dataset struct {
	Config enterprise.Config
	Traces []Trace
}

// GenerateDataset runs the tap rotation for a dataset configuration,
// applying the dataset snaplen exactly as the capture hardware would.
func GenerateDataset(cfg enterprise.Config) *Dataset {
	net := enterprise.NewNetwork(cfg)
	ds := &Dataset{Config: cfg}
	for _, subnet := range cfg.Monitored {
		for tap := 0; tap < cfg.PerTap; tap++ {
			pkts := GenerateTrace(net, subnet, tap)
			applySnaplen(pkts, cfg.Snaplen)
			ds.Traces = append(ds.Traces, Trace{
				Subnet:  subnet,
				Tap:     tap,
				Packets: pkts,
				Prefix:  enterprise.SubnetPrefix(subnet),
			})
		}
	}
	return ds
}

func applySnaplen(pkts []*pcap.Packet, snaplen uint32) {
	if snaplen == 0 {
		return
	}
	for _, p := range pkts {
		if uint32(len(p.Data)) > snaplen {
			p.Data = p.Data[:snaplen]
		}
	}
}

// TotalPackets counts packets across all traces.
func (d *Dataset) TotalPackets() int {
	n := 0
	for _, t := range d.Traces {
		n += len(t.Packets)
	}
	return n
}

// WriteTrace writes one trace as a pcap file.
func WriteTrace(w io.Writer, cfg enterprise.Config, t Trace) error {
	pw, err := pcap.NewWriter(w, cfg.Snaplen, pcap.LinkTypeEthernet)
	if err != nil {
		return err
	}
	for _, p := range t.Packets {
		if err := pw.WriteCaptured(p.Timestamp, p.Data, p.OrigLen); err != nil {
			return err
		}
	}
	return nil
}
