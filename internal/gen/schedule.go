// Time-structured workload generation: sessions placed on an explicit
// schedule of ramps, bursts, steady plateaus, and quiet slots, so the
// windowed analysis has traffic whose time-of-day structure is known in
// advance — the paper's observation that the traffic mix varies strongly
// across times of day, made testable end-to-end. (The invitro
// trace-synthesizer exemplar shapes load the same way: per-slot rates
// with deterministic placement.)
package gen

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"enttrace/internal/enterprise"
	"enttrace/internal/pcap"
)

// PhaseKind names one schedule phase's shape.
type PhaseKind string

// Phase kinds.
const (
	PhaseRamp   PhaseKind = "ramp"   // rate interpolates Rate0 → Rate1
	PhaseBurst  PhaseKind = "burst"  // constant high rate
	PhaseSteady PhaseKind = "steady" // constant rate
	PhaseQuiet  PhaseKind = "quiet"  // no sessions at all
)

// Phase is one slot of a Schedule.
type Phase struct {
	Kind PhaseKind
	Dur  time.Duration
	// Rate0 and Rate1 are sessions per minute at the phase's start and
	// end; equal for every kind but ramp, zero for quiet.
	Rate0, Rate1 float64
}

// Schedule is a deterministic session timeline. Unlike the per-category
// workload builders (which draw uniform start times), a schedule pins
// every session start analytically, so a test can assert exactly which
// analysis window each burst lands in.
type Schedule struct {
	Phases []Phase
}

// Duration is the schedule's total length.
func (s Schedule) Duration() time.Duration {
	var d time.Duration
	for _, p := range s.Phases {
		d += p.Dur
	}
	return d
}

// ParseSchedule parses the CLI schedule syntax: comma-separated phases
// of the form kind:duration[:rate] with rate in sessions/minute —
// "ramp:60s:0-30,burst:30s:120,quiet:60s,steady:90s:20". Ramp rates are
// "start-end"; quiet takes no rate.
func ParseSchedule(spec string) (Schedule, error) {
	var s Schedule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) < 2 {
			return Schedule{}, fmt.Errorf("schedule phase %q: want kind:duration[:rate]", part)
		}
		kind := PhaseKind(fields[0])
		dur, err := time.ParseDuration(fields[1])
		if err != nil || dur <= 0 {
			return Schedule{}, fmt.Errorf("schedule phase %q: bad duration", part)
		}
		p := Phase{Kind: kind, Dur: dur}
		switch kind {
		case PhaseQuiet:
			if len(fields) > 2 {
				return Schedule{}, fmt.Errorf("schedule phase %q: quiet takes no rate", part)
			}
		case PhaseRamp:
			if len(fields) != 3 {
				return Schedule{}, fmt.Errorf("schedule phase %q: ramp needs start-end rate", part)
			}
			lo, hi, ok := strings.Cut(fields[2], "-")
			if !ok {
				return Schedule{}, fmt.Errorf("schedule phase %q: ramp rate must be start-end", part)
			}
			if p.Rate0, err = strconv.ParseFloat(lo, 64); err != nil {
				return Schedule{}, fmt.Errorf("schedule phase %q: bad rate %q", part, lo)
			}
			if p.Rate1, err = strconv.ParseFloat(hi, 64); err != nil {
				return Schedule{}, fmt.Errorf("schedule phase %q: bad rate %q", part, hi)
			}
		case PhaseBurst, PhaseSteady:
			if len(fields) != 3 {
				return Schedule{}, fmt.Errorf("schedule phase %q: needs a rate", part)
			}
			r, err := strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return Schedule{}, fmt.Errorf("schedule phase %q: bad rate %q", part, fields[2])
			}
			p.Rate0, p.Rate1 = r, r
		default:
			return Schedule{}, fmt.Errorf("schedule phase %q: unknown kind (want ramp|burst|steady|quiet)", part)
		}
		if p.Rate0 < 0 || p.Rate1 < 0 {
			return Schedule{}, fmt.Errorf("schedule phase %q: negative rate", part)
		}
		s.Phases = append(s.Phases, p)
	}
	if len(s.Phases) == 0 {
		return Schedule{}, fmt.Errorf("empty schedule %q", spec)
	}
	return s, nil
}

// DefaultSchedule is a five-minute day-in-miniature: a ramp-up, a hard
// burst, a dead-quiet slot, and a steady plateau — one distinct regime
// per analysis window at -window 60s.
func DefaultSchedule() Schedule {
	return Schedule{Phases: []Phase{
		{Kind: PhaseRamp, Dur: time.Minute, Rate0: 0, Rate1: 30},
		{Kind: PhaseBurst, Dur: time.Minute, Rate0: 90, Rate1: 90},
		{Kind: PhaseQuiet, Dur: time.Minute},
		{Kind: PhaseSteady, Dur: 2 * time.Minute, Rate0: 18, Rate1: 18},
	}}
}

// Repeat tiles the schedule's phases end to end until the total length
// reaches at least d, so a short "shape" schedule can drive an
// arbitrarily long soak run: Repeat never splits a phase, so the result
// may overshoot d by up to one schedule length. A d no longer than the
// schedule itself returns the schedule unchanged.
func (s Schedule) Repeat(d time.Duration) Schedule {
	total := s.Duration()
	if total <= 0 || d <= total {
		return s
	}
	out := Schedule{Phases: append([]Phase(nil), s.Phases...)}
	for sum := total; sum < d; sum += total {
		out.Phases = append(out.Phases, s.Phases...)
	}
	return out
}

// SessionOffsets returns every session's start offset from the schedule
// origin, in order. Placement is fully deterministic: the instantaneous
// rate integrates in fixed 100ms steps and a session fires each time the
// accumulated count crosses one. No randomness is involved, so the k-th
// session of a given schedule starts at the same offset in every run.
func (s Schedule) SessionOffsets() []time.Duration {
	const step = 100 * time.Millisecond
	var out []time.Duration
	var phaseStart time.Duration
	acc := 0.0
	for _, p := range s.Phases {
		steps := int(p.Dur / step)
		for i := 0; i < steps; i++ {
			at := time.Duration(i) * step
			// Instantaneous rate at the middle of the step, in
			// sessions per step.
			frac := (float64(i) + 0.5) / float64(steps)
			perMin := p.Rate0 + (p.Rate1-p.Rate0)*frac
			acc += perMin * step.Minutes()
			for acc >= 1 {
				acc--
				out = append(out, phaseStart+at)
			}
		}
		phaseStart += p.Dur
	}
	return out
}

// scheduleRun is the session engine shared by the materialized and
// streamed scheduled-trace paths. Both construct it identically and emit
// sessions in the same order, so they consume the deterministic RNG in
// exactly the same sequence — which is what makes the streamed frame
// sequence (gen.StreamSource) reproduce GenerateScheduledTrace's output
// byte for byte.
type scheduleRun struct {
	g              *traceGen
	clients        []enterprise.Host
	webSrv, dnsSrv enterprise.Host
}

// newScheduleRun builds the generator state for one scheduled trace and
// emits the anchor frames: window boundaries derive from the first
// packet timestamp, so the opening ARP exchange pins window k exactly to
// phase time [k·w, (k+1)·w) regardless of when the first session fires
// inside the ramp.
func newScheduleRun(net *enterprise.Network, subnet, tap int, sched Schedule) *scheduleRun {
	cfg := net.Config()
	// Offset the seed space from GenerateTrace so a scheduled trace
	// never replays an unscheduled trace's content byte-for-byte.
	seed := cfg.Seed*1_000_003 + int64(subnet)*1009 + int64(tap) + 0x5ced
	em := NewEmitter(seed)
	g := &traceGen{
		em:      em,
		rng:     em.RNG(),
		net:     net,
		cfg:     cfg,
		subnet:  subnet,
		start:   cfg.Date.Add(time.Duration(tap) * sched.Duration()),
		dur:     sched.Duration(),
		hours:   sched.Duration().Hours() * cfg.Scale,
		nextEph: 32768,
	}
	r := &scheduleRun{
		g:       g,
		clients: g.clients(),
		webSrv:  g.net.Server(enterprise.RoleWeb),
		dnsSrv:  g.net.Server(enterprise.RoleDNS1),
	}
	g.em.ARPExchange(r.clients[0], r.webSrv, g.start)
	return r
}

// emitSession emits the k-th scheduled session, pinned to its offset: a
// rotating mix of internal HTTP, DNS lookups, and WAN browsing. Every
// frame it emits carries a timestamp >= start+off, which is the
// invariant the streaming source's bounded reorder buffer rests on.
func (r *scheduleRun) emitSession(k int, off time.Duration) {
	g := r.g
	g.pinned = g.start.Add(off)
	c := r.clients[k%len(r.clients)]
	switch k % 3 {
	case 0:
		g.httpConn(c, r.webSrv, g.intRTT(), 1+k%2, browserProfileEnt)
	case 1:
		g.dnsLookup(c, r.dnsSrv, g.intRTT()/2, false)
	default:
		g.httpConn(c, g.remote(), g.wanRTT(), 1, browserProfileWAN)
	}
}

// GenerateScheduledTrace produces one monitored-subnet trace whose
// sessions follow the schedule instead of uniform placement, each
// session pinned to its scheduled instant. Packet contents are drawn
// from the usual deterministic per-trace RNG; only the timeline is
// scheduled. For long schedules prefer NewStreamSource, which yields the
// identical frame sequence without materializing it.
func GenerateScheduledTrace(net *enterprise.Network, subnet, tap int, sched Schedule) []*pcap.Packet {
	r := newScheduleRun(net, subnet, tap, sched)
	for k, off := range sched.SessionOffsets() {
		r.emitSession(k, off)
	}
	r.g.pinned = time.Time{}
	return r.g.em.Packets()
}
