package gen

import (
	"bytes"
	"io"
	"testing"
	"time"

	"enttrace/internal/enterprise"
	"enttrace/internal/pcap"
)

// drainStream pulls every frame out of a StreamSource, copying each one
// before releasing its buffer (the consumer-side pooling contract).
func drainStream(t *testing.T, s *StreamSource) []*pcap.Packet {
	t.Helper()
	var out []*pcap.Packet
	for {
		p, err := s.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, &pcap.Packet{
			Timestamp: p.Timestamp,
			Data:      append([]byte(nil), p.Data...),
			OrigLen:   p.OrigLen,
		})
		s.Release(p)
	}
}

// TestStreamSourceMatchesPcapRoundTrip pins the tentpole equivalence at
// the frame level: the streamed sequence must be byte-identical —
// timestamps, snaplen truncation, wire lengths, and order — to writing
// GenerateScheduledTrace's output through pcap.Writer and reading it
// back. Both a full-snaplen (D3) and a 68-byte-snaplen (D1) capture
// shape are checked, so the truncation transform is exercised.
func TestStreamSourceMatchesPcapRoundTrip(t *testing.T) {
	for _, cfg := range []enterprise.Config{enterprise.D3(), enterprise.D1()} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			sched := DefaultSchedule()
			subnet := cfg.Monitored[0]

			// Reference path: materialize, serialize, read back.
			pkts := GenerateScheduledTrace(enterprise.NewNetwork(cfg), subnet, 0, sched)
			var buf bytes.Buffer
			tr := Trace{Subnet: subnet, Packets: pkts, Prefix: enterprise.SubnetPrefix(subnet)}
			if err := WriteTrace(&buf, cfg, tr); err != nil {
				t.Fatal(err)
			}
			rd, err := pcap.NewReader(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			want, err := rd.ReadAll()
			if err != nil {
				t.Fatal(err)
			}

			src := NewStreamSource(StreamConfig{
				Network:  enterprise.NewNetwork(cfg),
				Subnet:   subnet,
				Schedule: sched,
				Snaplen:  cfg.Snaplen,
			})
			got := drainStream(t, src)

			if len(got) != len(want) {
				t.Fatalf("streamed %d frames, pcap round-trip %d", len(got), len(want))
			}
			for i := range got {
				if !got[i].Timestamp.Equal(want[i].Timestamp) {
					t.Fatalf("frame %d: ts %v != %v", i, got[i].Timestamp, want[i].Timestamp)
				}
				if got[i].OrigLen != want[i].OrigLen {
					t.Fatalf("frame %d: origlen %d != %d", i, got[i].OrigLen, want[i].OrigLen)
				}
				if !bytes.Equal(got[i].Data, want[i].Data) {
					t.Fatalf("frame %d: data differs (%d vs %d bytes)", i, len(got[i].Data), len(want[i].Data))
				}
			}
			st := src.Stats()
			if st.Frames != int64(len(got)) {
				t.Errorf("Stats.Frames = %d, want %d", st.Frames, len(got))
			}
			if st.PeakBuffered <= 0 {
				t.Errorf("Stats.PeakBuffered = %d, want > 0", st.PeakBuffered)
			}
		})
	}
}

// TestStreamSourceBoundedBuffer is the soak-mode memory guarantee: the
// reorder buffer's high-water mark depends on the session rate (how many
// sessions overlap one instant), not on how long the schedule runs. A
// 10×-longer steady schedule must not buffer more frames than the short
// one beyond ties at the same rate.
func TestStreamSourceBoundedBuffer(t *testing.T) {
	cfg := enterprise.D3()
	shape, err := ParseSchedule("steady:30s:120")
	if err != nil {
		t.Fatal(err)
	}
	peak := func(sched Schedule) (int, int64) {
		src := NewStreamSource(StreamConfig{
			Network:  enterprise.NewNetwork(cfg),
			Subnet:   cfg.Monitored[0],
			Schedule: sched,
			Snaplen:  cfg.Snaplen,
		})
		var n int64
		for {
			p, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			n++
			src.Release(p)
		}
		st := src.Stats()
		if st.Frames != n {
			t.Fatalf("Stats.Frames = %d, drained %d", st.Frames, n)
		}
		return st.PeakBuffered, n
	}
	long := shape.Repeat(10 * shape.Duration())
	if got, want := len(long.SessionOffsets()), 10*len(shape.SessionOffsets()); got != want {
		t.Fatalf("long schedule has %d sessions, want %d", got, want)
	}
	shortPeak, shortFrames := peak(shape)
	longPeak, longFrames := peak(long)
	// Frame counts per session are heavy-tailed (logNormal bodies), so
	// only the order of magnitude is checked here; the session count
	// above is exact.
	if longFrames < 4*shortFrames {
		t.Fatalf("long run yielded %d frames vs the short run's %d", longFrames, shortFrames)
	}
	if longPeak > shortPeak*2 {
		t.Errorf("peak buffered frames grew with duration: short %d, long %d", shortPeak, longPeak)
	}
	// An immediately-released drain keeps at most one frame in flight.
	src := NewStreamSource(StreamConfig{
		Network: enterprise.NewNetwork(cfg), Subnet: cfg.Monitored[0], Schedule: shape,
	})
	for {
		p, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		src.Release(p)
	}
	if got := src.Stats().PeakInFlight; got != 1 {
		t.Errorf("PeakInFlight = %d, want 1 for an immediate-release drain", got)
	}
}

// TestScheduleRepeat pins the soak tiling semantics: whole phases only,
// total length >= the target, unchanged when the target already fits.
func TestScheduleRepeat(t *testing.T) {
	s, err := ParseSchedule("ramp:30s:0-10,quiet:30s")
	if err != nil {
		t.Fatal(err)
	}
	r := s.Repeat(5 * time.Minute)
	if r.Duration() < 5*time.Minute {
		t.Errorf("Repeat(5m).Duration() = %s", r.Duration())
	}
	if len(r.Phases)%len(s.Phases) != 0 {
		t.Errorf("Repeat split a phase: %d phases from %d", len(r.Phases), len(s.Phases))
	}
	if same := s.Repeat(time.Minute); same.Duration() != s.Duration() {
		t.Errorf("Repeat(<=total) changed the schedule: %s", same.Duration())
	}
	if same := s.Repeat(0); len(same.Phases) != len(s.Phases) {
		t.Errorf("Repeat(0) changed the schedule")
	}
}
