package gen

import (
	"time"

	"enttrace/internal/enterprise"
	"enttrace/internal/layers"
	"enttrace/internal/pcap"
)

// This file is the adversarial workload family (ROADMAP item 3b): traffic
// shaped the way evasion tools shape it — overlapping retransmissions
// with conflicting payload bytes, bogus RSTs, sequence wraps, deliberate
// gap abuse, retransmit storms, and corrupt headers. Each scenario is a
// small, fully deterministic trace whose hostile-input census signature
// is known exactly, so the differential harness (internal/advtest) can
// assert both determinism across the worker grid and the presence of the
// specific counter each attack must light up.

// EvasionExpect declares which hostile-input census counters a scenario
// is guaranteed to drive above zero.
type EvasionExpect struct {
	ConflictBytes  bool
	DuplicateBytes bool
	BogusRSTs      bool
	WrapEvents     bool
	GapEvents      bool
	Undecodable    bool
}

// EvasionScenario is one named adversarial trace.
type EvasionScenario struct {
	Name        string
	Description string
	Expect      EvasionExpect
	Build       func() Trace
}

// EvasionScenarios returns the full scenario family, in stable order.
func EvasionScenarios() []EvasionScenario {
	return []EvasionScenario{
		{
			Name:        "overlap-conflict",
			Description: "out-of-order retransmissions of the same range carrying different bytes (first copy must win)",
			Expect:      EvasionExpect{ConflictBytes: true, DuplicateBytes: true},
			Build:       buildOverlapConflict,
		},
		{
			Name:        "bogus-rst",
			Description: "mid-stream RST with an out-of-window sequence number, data keeps flowing after it",
			Expect:      EvasionExpect{BogusRSTs: true},
			Build:       buildBogusRST,
		},
		{
			Name:        "seq-wrap",
			Description: "connection whose data crosses the 32-bit sequence-number wrap",
			Expect:      EvasionExpect{WrapEvents: true},
			Build:       buildSeqWrap,
		},
		{
			Name:        "gap-unfilled",
			Description: "a hole the sender never fills, flushed as a gap at close",
			Expect:      EvasionExpect{GapEvents: true},
			Build:       buildGapUnfilled,
		},
		{
			Name:        "gap-maxpending",
			Description: "out-of-order backlog driven past MaxPending, forcing a mid-stream gap skip",
			Expect:      EvasionExpect{GapEvents: true},
			Build:       buildGapMaxPending,
		},
		{
			Name:        "retrans-storm",
			Description: "every segment transmitted four times (identical copies)",
			Expect:      EvasionExpect{DuplicateBytes: true},
			Build:       buildRetransStorm,
		},
		{
			Name:        "trunc-headers",
			Description: "frames with truncated or corrupt link/IP/TCP headers mixed into benign traffic",
			Expect:      EvasionExpect{Undecodable: true},
			Build:       buildTruncHeaders,
		},
	}
}

// EvasionScenarioByName returns the named scenario (false if unknown).
func EvasionScenarioByName(name string) (EvasionScenario, bool) {
	for _, sc := range EvasionScenarios() {
		if sc.Name == name {
			return sc, true
		}
	}
	return EvasionScenario{}, false
}

// evasionBase is the fixed clock origin for every scenario; determinism
// across runs requires that nothing here reads the wall clock.
var evasionBase = time.Unix(1100000000, 0).UTC()

// evasionSubnet is the monitored subnet every scenario taps.
const evasionSubnet = 1

func evasionTrace(e *Emitter) Trace {
	return Trace{
		Subnet:  evasionSubnet,
		Tap:     0,
		Packets: e.Packets(),
		Prefix:  enterprise.SubnetPrefix(evasionSubnet),
	}
}

// evasionConn emits one TCP connection with raw control over sequence
// numbers — the evasion shapes need exactly the segments TCPSession's
// well-behaved state machine refuses to produce.
type evasionConn struct {
	e            *Emitter
	cli, srv     enterprise.Host
	cport, sport uint16
	cliISS       uint32 // first data byte from the client (ISN+1)
	srvISS       uint32
	now          time.Time
	owd          time.Duration
}

func newEvasionConn(e *Emitter, hostNum int, cport, sport uint16, cliISN uint32, start time.Time) *evasionConn {
	return &evasionConn{
		e:     e,
		cli:   enterprise.InternalHost(evasionSubnet, hostNum),
		srv:   enterprise.RemoteHost(hostNum),
		cport: cport, sport: sport,
		cliISS: cliISN + 1,
		srvISS: 0x20000000*uint32(hostNum) + 1,
		now:    start,
		owd:    500 * time.Microsecond,
	}
}

// raw emits one segment with explicit sequence/flags. fromClient selects
// the direction; off is the byte offset into that side's stream.
func (c *evasionConn) raw(fromClient bool, off uint32, flags uint8, payload []byte) {
	src, dst := c.cli, c.srv
	sport, dport := c.cport, c.sport
	seq := c.cliISS + off
	ack := c.srvISS
	if !fromClient {
		src, dst = c.srv, c.cli
		sport, dport = c.sport, c.cport
		seq = c.srvISS + off
		ack = c.cliISS
	}
	c.e.frame(c.now, layers.BuildTCP(layers.TCPOpts{
		FrameOpts: frameOpts(src, dst, c.e.nextID()),
		SrcPort:   sport, DstPort: dport,
		Seq: seq, Ack: ack, Flags: flags, Payload: payload,
	}))
	c.now = c.now.Add(c.owd)
}

// rawSeq emits a segment at an absolute sequence number (for RST probes
// whose sequence deliberately disagrees with the stream cursor).
func (c *evasionConn) rawSeq(fromClient bool, seq uint32, flags uint8, payload []byte) {
	src, dst := c.cli, c.srv
	sport, dport := c.cport, c.sport
	ack := c.srvISS
	if !fromClient {
		src, dst = c.srv, c.cli
		sport, dport = c.sport, c.cport
		ack = c.cliISS
	}
	c.e.frame(c.now, layers.BuildTCP(layers.TCPOpts{
		FrameOpts: frameOpts(src, dst, c.e.nextID()),
		SrcPort:   sport, DstPort: dport,
		Seq: seq, Ack: ack, Flags: flags, Payload: payload,
	}))
	c.now = c.now.Add(c.owd)
}

// handshake emits SYN / SYN-ACK / ACK with the connection's fixed ISNs.
func (c *evasionConn) handshake() {
	c.e.frame(c.now, layers.BuildTCP(layers.TCPOpts{
		FrameOpts: frameOpts(c.cli, c.srv, c.e.nextID()),
		SrcPort:   c.cport, DstPort: c.sport,
		Seq: c.cliISS - 1, Flags: layers.TCPSyn,
	}))
	c.now = c.now.Add(c.owd)
	c.e.frame(c.now, layers.BuildTCP(layers.TCPOpts{
		FrameOpts: frameOpts(c.srv, c.cli, c.e.nextID()),
		SrcPort:   c.sport, DstPort: c.cport,
		Seq: c.srvISS - 1, Ack: c.cliISS, Flags: layers.TCPSyn | layers.TCPAck,
	}))
	c.now = c.now.Add(c.owd)
	c.raw(true, 0, layers.TCPAck, nil)
}

// fin tears the connection down cleanly so the flow layer records a
// completed connection. cliOff/srvOff are each side's stream lengths.
func (c *evasionConn) fin(cliOff, srvOff uint32) {
	c.raw(true, cliOff, layers.TCPFin|layers.TCPAck, nil)
	c.raw(false, srvOff, layers.TCPFin|layers.TCPAck, nil)
	c.raw(true, cliOff+1, layers.TCPAck, nil)
}

// fill returns n deterministic payload bytes for stream offset off.
func fill(off uint32, n int, salt byte) []byte {
	d := make([]byte, n)
	for i := range d {
		d[i] = byte((off+uint32(i))*37) ^ salt
	}
	return d
}

// buildOverlapConflict: the client sends a prelude, then two out-of-order
// copies of the same 300-byte range with different content, then a third
// copy half-identical to the first, then fills the hole. First copy wins;
// the census must see conflicting and duplicate overlap bytes.
func buildOverlapConflict() Trace {
	e := NewEmitter(42)
	c := newEvasionConn(e, 2, 2001, 80, 0x1000, evasionBase)
	c.handshake()
	c.raw(true, 0, layers.TCPAck|layers.TCPPsh, fill(0, 100, 0))
	// Out-of-order: [400,700) first copy (salt 0), then a fully
	// conflicting copy (salt 0xFF), then a half-shifted copy overlapping
	// [550,700) with matching content and spilling new bytes to 850.
	c.raw(true, 400, layers.TCPAck|layers.TCPPsh, fill(400, 300, 0))
	c.raw(true, 400, layers.TCPAck|layers.TCPPsh, fill(400, 300, 0xFF))
	c.raw(true, 550, layers.TCPAck|layers.TCPPsh, fill(550, 300, 0))
	// Fill the hole [100,400); everything drains in order.
	c.raw(true, 100, layers.TCPAck|layers.TCPPsh, fill(100, 300, 0))
	// Server answers enough to look like a real service.
	c.raw(false, 0, layers.TCPAck|layers.TCPPsh, fill(0, 200, 0x55))
	c.fin(850, 200)
	return evasionTrace(e)
}

// buildBogusRST: an injected RST whose sequence number is far outside the
// stream, followed by more data (the endpoints ignored it; a naive
// monitor would have torn its state down).
func buildBogusRST() Trace {
	e := NewEmitter(43)
	c := newEvasionConn(e, 3, 2002, 80, 0x2000, evasionBase)
	c.handshake()
	c.raw(true, 0, layers.TCPAck|layers.TCPPsh, fill(0, 500, 0))
	// Blind reset: attacker guesses a sequence number 5000 bytes ahead.
	c.rawSeq(true, c.cliISS+5000, layers.TCPRst, nil)
	// The endpoints keep talking.
	c.raw(true, 500, layers.TCPAck|layers.TCPPsh, fill(500, 500, 0))
	c.raw(false, 0, layers.TCPAck|layers.TCPPsh, fill(0, 300, 0x55))
	c.fin(1000, 300)
	return evasionTrace(e)
}

// buildSeqWrap: the client's ISN sits just below 2^32, so its data
// stream crosses the wrap in order; the server side wraps inside a
// buffered out-of-order cluster.
func buildSeqWrap() Trace {
	e := NewEmitter(44)
	c := newEvasionConn(e, 4, 2003, 80, 0xFFFFFE00, evasionBase)
	c.handshake()
	// 0x1FF bytes to the boundary; 1200 bytes crosses it in-order.
	c.raw(true, 0, layers.TCPAck|layers.TCPPsh, fill(0, 600, 0))
	c.raw(true, 600, layers.TCPAck|layers.TCPPsh, fill(600, 600, 0))
	c.raw(false, 0, layers.TCPAck|layers.TCPPsh, fill(0, 100, 0x55))
	c.fin(1200, 100)
	return evasionTrace(e)
}

// buildGapUnfilled: a hole the sender never fills — the bytes beyond it
// sit buffered until close, where the flush declares the gap.
func buildGapUnfilled() Trace {
	e := NewEmitter(45)
	c := newEvasionConn(e, 5, 2004, 80, 0x3000, evasionBase)
	c.handshake()
	c.raw(true, 0, layers.TCPAck|layers.TCPPsh, fill(0, 100, 0))
	// [500,800) arrives; [100,500) never does.
	c.raw(true, 500, layers.TCPAck|layers.TCPPsh, fill(500, 300, 0))
	c.raw(false, 0, layers.TCPAck|layers.TCPPsh, fill(0, 150, 0x55))
	c.fin(800, 150)
	return evasionTrace(e)
}

// buildGapMaxPending: the client holds back one early segment and keeps
// sending, pushing the out-of-order backlog past the reassembler's
// MaxPending budget (256 KB) so it must declare the gap mid-stream and
// skip forward — with pending memory staying bounded throughout.
func buildGapMaxPending() Trace {
	e := NewEmitter(46)
	c := newEvasionConn(e, 6, 2005, 80, 0x4000, evasionBase)
	c.owd = 20 * time.Microsecond
	c.handshake()
	c.raw(true, 0, layers.TCPAck|layers.TCPPsh, fill(0, 64, 0))
	// Cluster starting at 1024: (256 KB + slack) of contiguous data, the
	// [64,1024) hole never filled.
	const total = 260 << 10
	for off := uint32(1024); off < 1024+total; off += MSS {
		n := MSS
		if rem := 1024 + total - off; rem < uint32(n) {
			n = int(rem)
		}
		c.raw(true, off, layers.TCPAck|layers.TCPPsh, fill(off, n, 0))
	}
	c.raw(false, 0, layers.TCPAck|layers.TCPPsh, fill(0, 80, 0x55))
	c.fin(1024+total, 80)
	return evasionTrace(e)
}

// buildRetransStorm: every data segment is transmitted four times.
func buildRetransStorm() Trace {
	e := NewEmitter(47)
	c := newEvasionConn(e, 7, 2006, 80, 0x5000, evasionBase)
	c.handshake()
	for seg := uint32(0); seg < 8; seg++ {
		off := seg * 256
		for copies := 0; copies < 4; copies++ {
			c.raw(true, off, layers.TCPAck|layers.TCPPsh, fill(off, 256, 0))
		}
	}
	c.raw(false, 0, layers.TCPAck|layers.TCPPsh, fill(0, 120, 0x55))
	c.fin(8*256, 120)
	return evasionTrace(e)
}

// buildTruncHeaders: a benign connection with corrupt frames woven in —
// runt Ethernet frames, bad IP version/IHL, bad TCP data offset — which
// the decoder must reject (never crash on), plus option-bearing variants
// it must parse.
func buildTruncHeaders() Trace {
	e := NewEmitter(48)
	c := newEvasionConn(e, 8, 2007, 80, 0x6000, evasionBase)
	c.handshake()
	c.raw(true, 0, layers.TCPAck|layers.TCPPsh, fill(0, 400, 0))

	corruptAt := c.now
	inject := func(data []byte) {
		corruptAt = corruptAt.Add(50 * time.Microsecond)
		e.pkts = append(e.pkts, pcap.Packet{Timestamp: corruptAt, Data: data, OrigLen: len(data)})
	}
	valid := layers.BuildTCP(layers.TCPOpts{
		FrameOpts: frameOpts(c.cli, c.srv, e.nextID()),
		SrcPort:   c.cport, DstPort: 80,
		Seq: c.cliISS + 400, Flags: layers.TCPAck, Payload: fill(400, 32, 0),
	})
	// Runt Ethernet frame (shorter than the 14-byte header).
	inject(append([]byte(nil), valid[:10]...))
	// IPv4 version field corrupted to 5.
	bad := append([]byte(nil), valid...)
	bad[14] = 0x55
	inject(bad)
	// IPv4 IHL below the minimum header size.
	bad = append([]byte(nil), valid...)
	bad[14] = 0x44
	inject(bad)
	// TCP data offset below the minimum header size.
	bad = append([]byte(nil), valid...)
	bad[14+20+12] = 4 << 4
	inject(bad)
	c.now = corruptAt.Add(time.Millisecond)

	c.raw(true, 400, layers.TCPAck|layers.TCPPsh, fill(400, 200, 0))
	c.raw(false, 0, layers.TCPAck|layers.TCPPsh, fill(0, 160, 0x55))
	c.fin(600, 160)
	return evasionTrace(e)
}
