// Per-category workload builders: each method of traceGen emits the
// sessions of one Figure 1 application category for one monitored-subnet
// trace. Rates are expressed per trace-hour and multiplied by the trace
// duration and the dataset's Scale knob.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"enttrace/internal/appproto/backup"
	"enttrace/internal/appproto/cifs"
	"enttrace/internal/appproto/dcerpc"
	"enttrace/internal/appproto/dns"
	"enttrace/internal/appproto/ftp"
	"enttrace/internal/appproto/http"
	"enttrace/internal/appproto/imap"
	"enttrace/internal/appproto/ncp"
	"enttrace/internal/appproto/netbios"
	"enttrace/internal/appproto/smtp"
	"enttrace/internal/appproto/sunrpc"
	"enttrace/internal/enterprise"
	"enttrace/internal/pcap"
)

// traceGen holds the state for generating one trace.
type traceGen struct {
	em      *Emitter
	rng     *rand.Rand
	net     *enterprise.Network
	cfg     enterprise.Config
	subnet  int
	start   time.Time
	dur     time.Duration
	hours   float64 // dur in hours × Scale
	nextEph uint16
	remoteN int
	// pinned, when set, overrides the uniform session-start draw: every
	// at() returns exactly this instant. The scheduled workload uses it
	// to place sessions on a deterministic timeline (ramps, bursts,
	// quiet slots) while reusing the per-category session builders.
	pinned time.Time
}

// GenerateTrace produces the packets of one monitored-subnet trace.
// tap distinguishes repeat traces of the same subnet (D1's per-tap 2).
func GenerateTrace(net *enterprise.Network, subnet, tap int) []*pcap.Packet {
	cfg := net.Config()
	seed := cfg.Seed*1_000_003 + int64(subnet)*1009 + int64(tap)
	em := NewEmitter(seed)
	g := &traceGen{
		em:      em,
		rng:     em.RNG(),
		net:     net,
		cfg:     cfg,
		subnet:  subnet,
		start:   cfg.Date.Add(time.Duration(tap) * cfg.Duration),
		dur:     cfg.Duration,
		hours:   cfg.Duration.Hours() * cfg.Scale,
		nextEph: 32768,
	}
	g.webTraffic()
	g.emailTraffic()
	g.nameTraffic()
	g.windowsTraffic()
	g.netFileTraffic()
	g.backupTraffic()
	g.bulkTraffic()
	g.interactiveTraffic()
	g.streamingTraffic()
	g.netMgntTraffic()
	g.miscTraffic()
	g.otherTraffic()
	g.icmpTraffic()
	g.inboundWANTraffic()
	g.scannerTraffic()
	g.linkLayerBackground()
	return em.Packets()
}

// --- plumbing ---------------------------------------------------------

func (g *traceGen) eph() uint16 {
	g.nextEph++
	if g.nextEph < 32768 {
		g.nextEph = 32768
	}
	return g.nextEph
}

// at picks a uniform session start, leaving margin at the end (or the
// pinned instant when the scheduled workload drives the timeline).
func (g *traceGen) at(margin time.Duration) time.Time {
	if !g.pinned.IsZero() {
		return g.pinned
	}
	span := g.dur - margin
	if span <= 0 {
		span = g.dur / 2
	}
	return g.start.Add(time.Duration(g.rng.Int63n(int64(span))))
}

// scaleN scales a per-hour quantity (request counts, sustained-transfer
// sizes) to the trace duration, with a floor of one.
func (g *traceGen) scaleN(n int) int {
	v := int(float64(n) * g.hours)
	if v < 1 {
		v = 1
	}
	return v
}

// count converts a per-trace-hour rate into an integer count.
func (g *traceGen) count(perHour float64) int {
	v := perHour * g.hours
	n := int(v)
	if g.rng.Float64() < v-float64(n) {
		n++
	}
	return n
}

func (g *traceGen) clients() []enterprise.Host { return g.net.Clients(g.subnet) }

func (g *traceGen) client() enterprise.Host {
	cs := g.clients()
	return cs[g.rng.Intn(len(cs))]
}

// otherInternal picks an enterprise host outside the monitored subnet.
func (g *traceGen) otherInternal() enterprise.Host {
	s := g.rng.Intn(22)
	if s == g.subnet {
		s = (s + 1) % 22
	}
	return enterprise.InternalHost(s, 10+g.rng.Intn(180))
}

func (g *traceGen) remote() enterprise.Host {
	g.remoteN++
	return enterprise.RemoteHost(g.rng.Intn(4000))
}

func (g *traceGen) intRTT() time.Duration {
	return time.Duration(300+g.rng.Intn(900)) * time.Microsecond
}

func (g *traceGen) wanRTT() time.Duration {
	return time.Duration(10+g.rng.Intn(120)) * time.Millisecond
}

// logNormal draws a heavy-tailed size with the given median and sigma.
func (g *traceGen) logNormal(median float64, sigma float64) int {
	v := math.Exp(math.Log(median) + sigma*g.rng.NormFloat64())
	if v < 1 {
		v = 1
	}
	if v > 80e6 {
		v = 80e6
	}
	return int(v)
}

// subset picks each client independently with probability p.
func (g *traceGen) subset(p float64) []enterprise.Host {
	var out []enterprise.Host
	for _, c := range g.clients() {
		if g.rng.Float64() < p {
			out = append(out, c)
		}
	}
	return out
}

// monitors reports whether this trace's subnet is the given one.
func (g *traceGen) monitors(subnet int) bool { return g.subnet == subnet }

// loss draws a baseline per-segment loss probability: wide-area paths
// lose noticeably more than the switched internal network (§6).
func (g *traceGen) loss(client, server enterprise.Host) float64 {
	if client.Remote || server.Remote {
		return 0.002 + g.rng.Float64()*0.008
	}
	return 0.0002 + g.rng.Float64()*0.0010
}

// tcp is shorthand for a standard established session.
func (g *traceGen) tcp(client, server enterprise.Host, sport uint16, rtt time.Duration, turns []Turn) {
	g.em.TCPSession(TCPOpts{
		Client: client, Server: server,
		ClientPort: g.eph(), ServerPort: sport,
		Start: g.at(30 * time.Second), RTT: rtt, Turns: turns,
		LossProb: g.loss(client, server),
	})
}

// --- web (§5.1.1, Tables 6–7, Figures 3–4) ----------------------------

func (g *traceGen) webTraffic() {
	// WAN browsing: a minority of clients, each visiting ~an order of
	// magnitude more distinct servers than internal browsing reaches.
	for _, c := range g.subset(0.26 * g.hours) {
		nServers := 4 + g.rng.Intn(8)
		for s := 0; s < nServers; s++ {
			g.httpConn(c, g.remote(), g.wanRTT(), 1+g.rng.Intn(3), browserProfileWAN)
		}
	}
	// Internal browsing: fewer clients, fan-out 1–2 servers, more
	// conditional GETs, and a visibly higher connection failure rate.
	webSrv := g.net.Server(enterprise.RoleWeb)
	for _, c := range g.subset(0.12 * g.hours) {
		if g.rng.Float64() < 0.18 {
			outcome := Rejected
			if g.rng.Float64() < 0.35 {
				outcome = Unanswered
			}
			g.em.TCPSession(TCPOpts{
				Client: c, Server: webSrv, ClientPort: g.eph(), ServerPort: 80,
				Start: g.at(30 * time.Second), RTT: g.intRTT(), Outcome: outcome,
			})
			continue
		}
		g.httpConn(c, webSrv, g.intRTT(), 1+g.rng.Intn(3), browserProfileEnt)
		if g.rng.Float64() < 0.3 {
			g.httpConn(c, enterprise.InternalHost(13, 3), g.intRTT(), 1, browserProfileEnt)
		}
	}
	// Automated internal clients (Table 6).
	g.automatedWeb()
	// HTTPS: opaque short connections; one host pair in D4 exhibits
	// hundreds of immediately-torn-down sessions in an hour.
	for i, n := 0, g.count(14); i < n; i++ {
		g.httpsConn(g.client(), g.remote(), g.wanRTT())
	}
	if g.cfg.Name == "D4" && g.subnet == 11 {
		odd := g.clients()[0]
		srv := enterprise.InternalHost(13, 9)
		for i, n := 0, g.count(700); i < n; i++ {
			g.httpsConn(odd, srv, g.intRTT())
		}
	}
}

type browserProfile int

const (
	browserProfileWAN browserProfile = iota
	browserProfileEnt
)

// httpConn emits one HTTP connection with n transactions.
func (g *traceGen) httpConn(client, server enterprise.Host, rtt time.Duration, n int, prof browserProfile) {
	var turns []Turn
	for i := 0; i < n; i++ {
		condP := 0.16
		if prof == browserProfileEnt {
			condP = 0.40
		}
		conditional := g.rng.Float64() < condP
		req := &http.Request{
			Method:      "GET",
			URI:         fmt.Sprintf("/d%d/page%d.html", g.rng.Intn(20), g.rng.Intn(400)),
			Host:        "server",
			UserAgent:   "Mozilla/4.0 (compatible; MSIE 6.0; Windows NT 5.1)",
			Conditional: conditional,
		}
		if g.rng.Float64() < 0.03 {
			req.Method = "POST"
			req.BodyLen = g.logNormal(900, 1)
		}
		turns = append(turns, Turn{FromClient: true, Delay: time.Duration(g.rng.Intn(400)) * time.Millisecond, Data: http.EncodeRequest(req)})
		resp := &http.Response{Status: 200}
		if conditional && g.rng.Float64() < 0.85 {
			resp.Status = 304
		} else {
			resp.ContentType, resp.BodyLen = g.contentTypeAndSize()
		}
		if g.rng.Float64() < 0.02 {
			resp.Status = 404
			resp.ContentType, resp.BodyLen = "text/html", 300
		}
		turns = append(turns, Turn{Data: http.EncodeResponse(resp)})
	}
	g.tcp(client, server, 80, rtt, turns)
}

// contentTypeAndSize draws a Table 7-shaped reply: images most frequent,
// application types carrying most of the bytes.
func (g *traceGen) contentTypeAndSize() (string, int) {
	r := g.rng.Float64()
	switch {
	case r < 0.22:
		return "text/html", g.logNormal(2500, 1.2)
	case r < 0.88:
		return "image/gif", g.logNormal(3000, 1.0)
	case r < 0.97:
		types := []string{"application/octet-stream", "application/zip", "application/pdf", "application/x-javascript"}
		return types[g.rng.Intn(len(types))], g.logNormal(45000, 1.5)
	default:
		return "video/mpeg", g.logNormal(30000, 1.3)
	}
}

// automatedWeb emits the scanner, Google-bot, and iFolder activity that
// dominates internal HTTP (Table 6).
func (g *traceGen) automatedWeb() {
	webSrv := g.net.Server(enterprise.RoleWeb)
	// The site scanner sweeps web servers, provoking many 404s. It runs
	// from subnet 12 and is visible when tracing its subnet or a target's.
	scanner := enterprise.InternalHost(12, 6)
	if g.monitors(12) || g.monitors(g.net.ServerSubnet(enterprise.RoleWeb)) {
		var turns []Turn
		for i, n := 0, 18+g.rng.Intn(25); i < n; i++ {
			turns = append(turns, Turn{FromClient: true, Data: http.EncodeRequest(&http.Request{
				Method: "GET", URI: fmt.Sprintf("/cgi-bin/probe%d", i), Host: "scan-target",
				UserAgent: "LBNL-Site-Scanner/1.2",
			})})
			status, ct, n2 := 404, "text/html", 250
			if i%7 == 0 {
				status, ct, n2 = 200, "text/html", 900
			}
			turns = append(turns, Turn{Data: http.EncodeResponse(&http.Response{Status: status, ContentType: ct, BodyLen: n2})})
		}
		g.tcp(scanner, webSrv, 80, g.intRTT(), turns)
	}
	// Google search appliance crawls internal servers pulling big objects.
	bot := enterprise.InternalHost(13, 2)
	if g.monitors(13) || g.monitors(g.net.ServerSubnet(enterprise.RoleWeb)) {
		for _, gen := range []struct {
			ua    string
			n     int
			bytes float64
		}{
			{"Googlebot-1.0 appliance", 4, 150_000},
			{"Googlebot-2.1 appliance", 7, 300_000},
		} {
			var turns []Turn
			for i := 0; i < gen.n; i++ {
				turns = append(turns, Turn{FromClient: true, Data: http.EncodeRequest(&http.Request{
					Method: "GET", URI: fmt.Sprintf("/archive/doc%d.pdf", g.rng.Intn(1000)),
					Host: "intranet", UserAgent: gen.ua,
				})})
				turns = append(turns, Turn{Data: http.EncodeResponse(&http.Response{
					Status: 200, ContentType: "application/pdf", BodyLen: g.logNormal(gen.bytes, 0.7),
				})})
			}
			g.tcp(bot, webSrv, 80, g.intRTT(), turns)
		}
	}
	// iFolder clients POST sync data and receive uniform 32,780-byte
	// replies.
	ifolderSrv := enterprise.InternalHost(14, 2)
	if g.monitors(14) || g.rng.Float64() < 0.5 {
		for _, c := range g.subset(0.02 * g.hours) {
			var turns []Turn
			for i, n := 0, 1+g.rng.Intn(4); i < n; i++ {
				turns = append(turns, Turn{FromClient: true, Data: http.EncodeRequest(&http.Request{
					Method: "POST", URI: "/ifolder/sync", Host: "ifolder",
					UserAgent: "Novell iFolder client", BodyLen: g.logNormal(1500, 0.8),
				})})
				turns = append(turns, Turn{Data: http.EncodeResponse(&http.Response{
					Status: 200, ContentType: "application/octet-stream", BodyLen: 32780,
				})})
			}
			g.tcp(c, ifolderSrv, 80, g.intRTT(), turns)
		}
	}
}

// httpsConn emits an opaque TLS session that is set up and torn down
// almost immediately.
func (g *traceGen) httpsConn(client, server enterprise.Host, rtt time.Duration) {
	s := &imap.Session{Polls: 1, BytesPerPoll: 1200 + g.rng.Intn(3000), TLS: true}
	g.tcp(client, server, 443, rtt, convertIMAPTurns(s.Turns()))
}

// --- email (§5.1.2, Table 8, Figures 5–6) -----------------------------

func (g *traceGen) emailTraffic() {
	smtpSrv := g.net.Server(enterprise.RoleSMTP)
	imapSrv := g.net.Server(enterprise.RoleIMAP)
	// Client-subnet activity: submissions and mailbox polling.
	for _, c := range g.subset(0.06 * g.hours) {
		g.smtpConn(c, smtpSrv, g.intRTT(), false)
	}
	for _, c := range g.subset(0.22 * g.hours) {
		g.imapConn(c, imapSrv, g.intRTT())
	}
	// LDAP directory lookups ride in the email category.
	for i, n := 0, g.count(12); i < n; i++ {
		g.tcp(g.client(), smtpSrv, 389, g.intRTT(), []Turn{
			{FromClient: true, Data: fillBytes(180)},
			{Data: fillBytes(900)},
		})
	}
	// Mail-subnet vantage: the whole site's (and the WAN's) email.
	if g.monitors(enterprise.SubnetMail) {
		for i, n := 0, g.count(160); i < n; i++ {
			rej := g.rng.Float64() < 0.14 // WAN SMTP success 71–93% here
			g.smtpConn(g.remote(), smtpSrv, g.wanRTT(), rej)
		}
		for i, n := 0, g.count(70); i < n; i++ {
			g.smtpConn(smtpSrv, g.remote(), g.wanRTT(), g.rng.Float64() < 0.05)
		}
		for i, n := 0, g.count(140); i < n; i++ {
			g.imapConn(g.otherInternal(), imapSrv, g.intRTT())
		}
		for i, n := 0, g.count(25); i < n; i++ {
			g.imapConn(g.remote(), imapSrv, g.wanRTT())
		}
		for i, n := 0, g.count(10); i < n; i++ {
			pop := uint16(110)
			if g.cfg.IMAPSecure {
				pop = 995
			}
			g.tcp(g.remote(), imapSrv, pop, g.wanRTT(), []Turn{
				{FromClient: true, Data: fillBytes(60)},
				{Data: fillBytes(g.logNormal(15000, 1.5))},
			})
		}
	}
	// Internal SMTP between the main server and secondary relays.
	if g.rng.Float64() < 0.4*g.hours {
		g.smtpConn(enterprise.InternalHost(17, 2), smtpSrv, g.intRTT(), false)
	}
	// A few departmental hosts run their own MTAs and push mail straight
	// to the wide area, so every vantage sees some WAN SMTP.
	for i, n := 0, g.count(4); i < n; i++ {
		g.smtpConn(g.client(), g.remote(), g.wanRTT(), g.rng.Float64() < 0.1)
	}
}

func (g *traceGen) smtpConn(client, server enterprise.Host, rtt time.Duration, rejected bool) {
	d := &smtp.Dialogue{
		ClientHost: "host.example", From: "a@example.com", To: "b@lbl.gov",
		MessageSize: g.logNormal(7000, 1.6),
		Rejected:    rejected,
	}
	g.tcp(client, server, 25, rtt, convertSMTPTurns(d.Turns()))
}

func (g *traceGen) imapConn(client, server enterprise.Host, rtt time.Duration) {
	// Internal clients poll every ~10 minutes, holding connections open
	// for most of an hour trace; WAN clients check once and disconnect,
	// giving the 1-2 order-of-magnitude duration gap of Figure 5(b).
	maxPolls := int(g.dur/(10*time.Minute)) + 1
	if client.Remote || server.Remote {
		maxPolls = 1
	}
	polls := 1 + g.rng.Intn(maxPolls)
	s := &imap.Session{
		User:         "user",
		Polls:        polls,
		BytesPerPoll: g.logNormal(9000, 1.4),
		PollInterval: 10 * time.Minute,
		TLS:          g.cfg.IMAPSecure,
	}
	port := uint16(143)
	if g.cfg.IMAPSecure {
		port = 993
	}
	turns := convertIMAPTurns(s.Turns())
	g.em.TCPSession(TCPOpts{
		Client: client, Server: server,
		ClientPort: g.eph(), ServerPort: port,
		Start: g.start.Add(time.Duration(g.rng.Int63n(int64(g.dur / 6)))),
		RTT:   rtt, Turns: turns,
		LossProb: g.loss(client, server),
	})
}

func convertFTPTurns(in []ftp.Turn) []Turn {
	out := make([]Turn, len(in))
	for i, t := range in {
		out[i] = Turn{FromClient: t.FromClient, Data: t.Data}
	}
	return out
}

func convertSMTPTurns(in []smtp.Turn) []Turn {
	out := make([]Turn, len(in))
	for i, t := range in {
		out[i] = Turn{FromClient: t.FromClient, Data: t.Data}
		if !t.FromClient {
			// Server-side processing (lookups, queueing) dominates the
			// duration floor on low-RTT internal paths.
			out[i].Delay = 25 * time.Millisecond
		}
	}
	return out
}

func convertIMAPTurns(in []imap.Turn) []Turn {
	out := make([]Turn, len(in))
	for i, t := range in {
		out[i] = Turn{FromClient: t.FromClient, Delay: t.Delay, Data: t.Data}
	}
	return out
}

// --- name services (§5.1.3) -------------------------------------------

func (g *traceGen) nameTraffic() {
	dnsSrv := g.net.Server(enterprise.RoleDNS1)
	dns2 := g.net.Server(enterprise.RoleDNS2)
	// Every client resolves names against the main servers.
	for _, c := range g.clients() {
		n := g.count(float64(7 + g.rng.Intn(11)))
		for i := 0; i < n; i++ {
			srv := dnsSrv
			if g.rng.Float64() < 0.25 {
				srv = dns2
			}
			g.dnsLookup(c, srv, g.intRTT()/2, false)
		}
	}
	if g.monitors(enterprise.SubnetDNS) {
		// The server subnet sees the site's resolvers talking to the
		// wide area and inbound WAN queries.
		for i, n := 0, g.count(500); i < n; i++ {
			g.dnsLookup(dnsSrv, g.remote(), g.wanRTT(), true)
		}
		for i, n := 0, g.count(120); i < n; i++ {
			g.dnsLookup(g.remote(), dnsSrv, g.wanRTT(), false)
		}
	}
	if g.monitors(enterprise.SubnetMail) {
		// SMTP servers are the busiest DNS clients (PTR/MX for incoming
		// mail).
		smtpSrv := g.net.Server(enterprise.RoleSMTP)
		for i, n := 0, g.count(400); i < n; i++ {
			g.dnsLookupTyped(smtpSrv, dnsSrv, g.intRTT()/2, pickPTRMX(g.rng))
		}
	}
	// Netbios name service: Windows clients query and refresh against the
	// two NBNS servers; queries fail 36–50% of the time (stale names).
	nbns := []enterprise.Host{g.net.Server(enterprise.RoleNBNS1), g.net.Server(enterprise.RoleNBNS2)}
	for _, c := range g.subset(0.45 * g.hours) {
		n := 2 + g.rng.Intn(6)
		for i := 0; i < n; i++ {
			srv := nbns[g.rng.Intn(2)]
			g.nbnsExchange(c, srv)
		}
	}
	if g.monitors(enterprise.SubnetDNS) {
		for i, n := 0, g.count(900); i < n; i++ {
			g.nbnsExchange(g.otherInternal(), nbns[g.rng.Intn(2)])
		}
	}
	// SrvLoc: multicast announcements...
	slpGroup := MulticastHost([4]byte{239, 255, 255, 253})
	for i, n := 0, g.count(42); i < n; i++ {
		src := g.client()
		g.em.UDPSend(src, slpGroup, 427, 427, g.at(time.Second), fillBytes(90+g.rng.Intn(200)))
	}
	// ...and the peer-to-peer unicast pattern producing the fan-out tail.
	if g.subnet%5 == 2 {
		src := g.clients()[1%len(g.clients())]
		peers := 60 + g.rng.Intn(80)
		for i := 0; i < peers; i++ {
			dst := g.otherInternal()
			g.em.UDPExchange(src, dst, 427, 427, g.at(time.Second), g.intRTT(), fillBytes(120), fillBytes(140))
		}
	}
}

func pickPTRMX(rng *rand.Rand) uint16 {
	if rng.Float64() < 0.6 {
		return dns.TypePTR
	}
	return dns.TypeMX
}

func (g *traceGen) dnsLookup(client, server enterprise.Host, latency time.Duration, serverIsClient bool) {
	// Request-type mix: A majority, AAAA surprisingly high (hosts
	// configured to ask A and AAAA in parallel), then PTR and MX.
	r := g.rng.Float64()
	var qt uint16
	switch {
	case r < 0.42:
		qt = dns.TypeA
	case r < 0.62:
		// Parallel A + AAAA pair.
		g.dnsLookupTyped(client, server, latency, dns.TypeA)
		qt = dns.TypeAAAA
	case r < 0.78:
		qt = dns.TypePTR
	case r < 0.86:
		qt = dns.TypeMX
	default:
		qt = dns.TypeA
	}
	g.dnsLookupTyped(client, server, latency, qt)
}

func (g *traceGen) dnsLookupTyped(client, server enterprise.Host, latency time.Duration, qt uint16) {
	id := uint16(g.rng.Intn(65536))
	name := fmt.Sprintf("host%d.subnet%d.lbl.gov", g.rng.Intn(4000), g.rng.Intn(40))
	rcode := dns.RcodeNoError
	answers := uint16(1 + g.rng.Intn(2))
	switch r := g.rng.Float64(); {
	case r < 0.16:
		rcode = dns.RcodeNXDomain
		answers = 0
		name = fmt.Sprintf("gone%d.lbl.gov", g.rng.Intn(2000))
	case r < 0.19:
		rcode = dns.RcodeServFail
		answers = 0
	}
	q := dns.Encode(&dns.Message{ID: id, QName: name, QType: qt})
	resp := dns.Encode(&dns.Message{ID: id, Response: true, Rcode: rcode, QName: name, QType: qt, AnswerCount: answers})
	g.em.UDPExchange(client, server, g.eph(), 53, g.at(time.Second), latency, q, resp)
}

func (g *traceGen) nbnsExchange(client, server enterprise.Host) {
	id := uint16(g.rng.Intn(65536))
	op := netbios.OpQuery
	switch r := g.rng.Float64(); {
	case r < 0.13:
		op = netbios.OpRefresh
	case r < 0.16:
		op = netbios.OpRegister
	case r < 0.17:
		op = netbios.OpRelease
	}
	suffix := netbios.SuffixServer
	switch r := g.rng.Float64(); {
	case r < 0.35:
		suffix = netbios.SuffixWorkstation
	case r < 0.67:
		// server, already set
	case r < 0.8:
		suffix = netbios.SuffixDomain
	case r < 0.93:
		suffix = netbios.SuffixBrowser
	default:
		suffix = 0x03 // messenger: the "other" sliver
	}
	name := fmt.Sprintf("WS%04d", g.rng.Intn(3000))
	rcode := netbios.RcodeNoError
	if op == netbios.OpQuery && g.rng.Float64() < 0.43 {
		rcode = netbios.RcodeNXDomain
		name = fmt.Sprintf("STALE%03d", g.rng.Intn(400))
	}
	q := netbios.EncodeNS(&netbios.NSMessage{ID: id, Op: op, Name: name, Suffix: suffix})
	resp := netbios.EncodeNS(&netbios.NSMessage{ID: id, Response: true, Op: op, Rcode: rcode, Name: name, Suffix: suffix})
	g.em.UDPExchange(client, server, 137, 137, g.at(time.Second), g.intRTT(), q, resp)
}

// --- windows services (§5.2.1, Tables 9–11) ---------------------------

func (g *traceGen) windowsTraffic() {
	authSrv := g.net.Server(enterprise.RoleAuth)
	printSrv := g.net.Server(enterprise.RolePrint)
	for _, c := range g.subset(0.30 * g.hours) {
		// Parallel dial on 139 and 445: some servers listen only on 139,
		// so the 445 leg is rejected — the paper's CIFS failure story.
		server := authSrv
		printing := g.rng.Float64() < 0.35
		if printing {
			server = printSrv
		}
		// A slice of Netbios/SSN dials get no answer or an RST, giving
		// Table 9's 8-19% unanswered band.
		if r := g.rng.Float64(); r < 0.12 {
			outcome := Unanswered
			if r < 0.008 {
				outcome = Rejected
			}
			g.em.TCPSession(TCPOpts{
				Client: c, Server: server, ClientPort: g.eph(), ServerPort: 139,
				Start: g.at(time.Minute), RTT: g.intRTT(), Outcome: outcome,
			})
			continue
		}
		only139 := g.rng.Float64() < 0.35
		if only139 {
			g.em.TCPSession(TCPOpts{
				Client: c, Server: server, ClientPort: g.eph(), ServerPort: 445,
				Start: g.at(time.Minute), RTT: g.intRTT(), Outcome: Rejected,
			})
			g.cifsSession(c, server, 139, printing)
		} else {
			if g.rng.Float64() < 0.10 {
				g.em.TCPSession(TCPOpts{
					Client: c, Server: server, ClientPort: g.eph(), ServerPort: 445,
					Start: g.at(time.Minute), RTT: g.intRTT(), Outcome: Unanswered,
				})
				continue
			}
			g.cifsSession(c, server, 445, printing)
		}
	}
	// Server-subnet vantage: monitoring the domain controller's subnet
	// exposes the whole site's authentication chatter (the paper's D0);
	// monitoring the print server's subnet exposes everyone's print jobs
	// (D3-D4). This is what makes Table 11 flip between vantages.
	if g.monitors(enterprise.SubnetAuth) {
		for i, n := 0, g.count(800); i < n; i++ {
			g.cifsSession(g.otherInternal(), authSrv, []uint16{139, 445}[g.rng.Intn(2)], false)
		}
	}
	if g.monitors(enterprise.SubnetPrint) {
		for i, n := 0, g.count(60); i < n; i++ {
			g.cifsSession(g.otherInternal(), printSrv, []uint16{139, 445}[g.rng.Intn(2)], true)
		}
	}
	// Endpoint mapper lookups followed by stand-alone DCE/RPC. The
	// mapped connection starts after the EPM exchange finishes — a
	// client connects to a mapped endpoint only once the mapper has
	// answered, and the analyzer's replay (which classifies connections
	// in first-packet order) depends on that causality to register the
	// mapped port before the service connection is classified.
	for i, n := 0, g.count(18); i < n; i++ {
		c := g.client()
		dc := g.net.Server(enterprise.RoleEPM)
		mappedPort := uint16(2101)
		rtt := g.intRTT()
		epmTurns := []Turn{
			{FromClient: true, Data: dcerpc.Encode(&dcerpc.PDU{Type: dcerpc.PTBind, CallID: 1, Iface: dcerpc.IfEPM})},
			{Data: dcerpc.Encode(&dcerpc.PDU{Type: dcerpc.PTBindAck, CallID: 1, Iface: dcerpc.IfEPM})},
			{FromClient: true, Data: dcerpc.Encode(&dcerpc.PDU{Type: dcerpc.PTRequest, CallID: 2, Opnum: dcerpc.OpEpmMap, Stub: fillBytes(24)})},
			{Data: dcerpc.EncodeEpmMapResponse(2, dcerpc.IfSpoolss, printSrv.Addr, mappedPort)},
		}
		epmStart := g.at(time.Minute)
		g.em.TCPSession(TCPOpts{
			Client: c, Server: dc, ClientPort: g.eph(), ServerPort: 135,
			Start: epmStart, RTT: rtt, Turns: epmTurns,
			LossProb: g.loss(c, dc),
		})
		// Stand-alone Spoolss over the mapped port.
		var rpcTurns []Turn
		rpcTurns = append(rpcTurns,
			Turn{FromClient: true, Data: dcerpc.Encode(&dcerpc.PDU{Type: dcerpc.PTBind, CallID: 1, Iface: dcerpc.IfSpoolss})},
			Turn{Data: dcerpc.Encode(&dcerpc.PDU{Type: dcerpc.PTBindAck, CallID: 1, Iface: dcerpc.IfSpoolss})},
		)
		for j, m := 0, 2+g.rng.Intn(5); j < m; j++ {
			rpcTurns = append(rpcTurns,
				Turn{FromClient: true, Data: dcerpc.Encode(&dcerpc.PDU{Type: dcerpc.PTRequest, CallID: uint32(2 + j), Opnum: dcerpc.OpSpoolssWritePrinter, Stub: fillBytes(2048)})},
				Turn{Data: dcerpc.Encode(&dcerpc.PDU{Type: dcerpc.PTResponse, CallID: uint32(2 + j), Stub: fillBytes(16)})},
			)
		}
		g.em.TCPSession(TCPOpts{
			Client: c, Server: printSrv, ClientPort: g.eph(), ServerPort: mappedPort,
			Start: epmStart.Add(time.Duration(len(epmTurns))*rtt + 50*time.Millisecond), RTT: rtt,
			Turns:    rpcTurns,
			LossProb: g.loss(c, printSrv),
		})
	}
	// Netbios datagram service broadcasts (minor).
	for i, n := 0, g.count(8); i < n; i++ {
		bcast := MulticastHost([4]byte{128, 3, byte(g.subnet), 255})
		g.em.UDPSend(g.client(), bcast, 138, 138, g.at(time.Second), fillBytes(200))
	}
}

// cifsSession emits a full CIFS conversation over the given port. The
// vantage drives Table 11: sessions to the domain controller are
// authentication traffic; sessions to the print server are dominated by
// Spoolss WritePrinter.
func (g *traceGen) cifsSession(c, server enterprise.Host, port uint16, printing bool) {
	framed := port == 139
	var turns []Turn
	mid := uint16(1)
	wrap := func(fromClient bool, payload []byte) {
		if framed {
			payload = netbios.EncodeSSN(netbios.SSNMessage, payload)
		}
		turns = append(turns, Turn{FromClient: fromClient, Data: payload})
	}
	if framed {
		// Netbios session handshake; a small fraction get a negative
		// response and abandon the session.
		turns = append(turns, Turn{FromClient: true, Data: netbios.EncodeSSN(netbios.SSNRequest, fillBytes(68))})
		if g.rng.Float64() < 0.05 {
			turns = append(turns, Turn{Data: netbios.EncodeSSN(netbios.SSNNegativeResponse, []byte{0x8f})})
			g.tcp(c, server, port, g.intRTT(), turns)
			return
		}
		turns = append(turns, Turn{Data: netbios.EncodeSSN(netbios.SSNPositiveResponse, nil)})
	}
	req := func(cmd uint8, pipe string, payload []byte) {
		wrap(true, cifs.Encode(&cifs.Message{Command: cmd, MID: mid, PipeName: pipe, Payload: payload}))
		wrap(false, cifs.Encode(&cifs.Message{Command: cmd, MID: mid, Response: true, PipeName: pipe, Payload: fillBytes(40)}))
		mid++
	}
	req(cifs.CmdNegotiate, "", fillBytes(34))
	req(cifs.CmdSessionSetupAndX, "", fillBytes(120))
	req(cifs.CmdTreeConnectAndX, "", fillBytes(60))
	req(cifs.CmdNTCreateAndX, "", fillBytes(70))

	pipe := `\PIPE\netlogon`
	iface := dcerpc.IfNetLogon
	if printing {
		pipe, iface = `\PIPE\spoolss`, dcerpc.IfSpoolss
	}
	// DCE/RPC over the pipe.
	wrap(true, cifs.Encode(&cifs.Message{Command: cifs.CmdTrans, MID: mid, PipeName: pipe,
		Payload: dcerpc.Encode(&dcerpc.PDU{Type: dcerpc.PTBind, CallID: 1, Iface: iface})}))
	wrap(false, cifs.Encode(&cifs.Message{Command: cifs.CmdTrans, MID: mid, Response: true, PipeName: pipe,
		Payload: dcerpc.Encode(&dcerpc.PDU{Type: dcerpc.PTBindAck, CallID: 1, Iface: iface})}))
	mid++
	if printing {
		nWrites := 3 + g.rng.Intn(12)
		for j := 0; j < nWrites; j++ {
			wrap(true, cifs.Encode(&cifs.Message{Command: cifs.CmdTrans, MID: mid, PipeName: pipe,
				Payload: dcerpc.Encode(&dcerpc.PDU{Type: dcerpc.PTRequest, CallID: uint32(2 + j), Opnum: dcerpc.OpSpoolssWritePrinter, Stub: fillBytes(4000)})}))
			wrap(false, cifs.Encode(&cifs.Message{Command: cifs.CmdTrans, MID: mid, Response: true, PipeName: pipe,
				Payload: dcerpc.Encode(&dcerpc.PDU{Type: dcerpc.PTResponse, CallID: uint32(2 + j), Stub: fillBytes(16)})}))
			mid++
		}
		// A couple of non-write Spoolss calls around the job.
		for _, op := range []uint16{dcerpc.OpSpoolssOpenPrinter, dcerpc.OpSpoolssClosePrinter} {
			wrap(true, cifs.Encode(&cifs.Message{Command: cifs.CmdTrans, MID: mid, PipeName: pipe,
				Payload: dcerpc.Encode(&dcerpc.PDU{Type: dcerpc.PTRequest, CallID: 50, Opnum: op, Stub: fillBytes(180)})}))
			wrap(false, cifs.Encode(&cifs.Message{Command: cifs.CmdTrans, MID: mid, Response: true, PipeName: pipe,
				Payload: dcerpc.Encode(&dcerpc.PDU{Type: dcerpc.PTResponse, CallID: 50, Stub: fillBytes(60)})}))
			mid++
		}
	} else {
		for j, m := 0, 2+g.rng.Intn(4); j < m; j++ {
			op, stub := dcerpc.OpNetrLogonSamLogon, 420
			if g.rng.Float64() < 0.4 {
				op, stub = dcerpc.OpLsarLookupNames, 180
			}
			ifsel := iface
			if op == dcerpc.OpLsarLookupNames {
				ifsel = dcerpc.IfLsaRPC
				// Rebind the pipe to lsarpc for these calls.
				wrap(true, cifs.Encode(&cifs.Message{Command: cifs.CmdTrans, MID: mid, PipeName: `\PIPE\lsarpc`,
					Payload: dcerpc.Encode(&dcerpc.PDU{Type: dcerpc.PTBind, CallID: 10, Iface: ifsel})}))
				wrap(true, cifs.Encode(&cifs.Message{Command: cifs.CmdTrans, MID: mid, PipeName: `\PIPE\lsarpc`,
					Payload: dcerpc.Encode(&dcerpc.PDU{Type: dcerpc.PTRequest, CallID: 11, Opnum: op, Stub: fillBytes(stub)})}))
			} else {
				wrap(true, cifs.Encode(&cifs.Message{Command: cifs.CmdTrans, MID: mid, PipeName: pipe,
					Payload: dcerpc.Encode(&dcerpc.PDU{Type: dcerpc.PTRequest, CallID: uint32(20 + j), Opnum: op, Stub: fillBytes(stub)})}))
			}
			wrap(false, cifs.Encode(&cifs.Message{Command: cifs.CmdTrans, MID: mid, Response: true, PipeName: pipe,
				Payload: dcerpc.Encode(&dcerpc.PDU{Type: dcerpc.PTResponse, CallID: 12, Stub: fillBytes(200)})}))
			mid++
		}
	}
	// Some file sharing on the same session.
	if g.rng.Float64() < 0.5 {
		for j, m := 0, 1+g.rng.Intn(4); j < m; j++ {
			if g.rng.Float64() < 0.5 {
				req(cifs.CmdReadAndX, "", fillBytes(g.logNormal(6000, 1)))
			} else {
				req(cifs.CmdWriteAndX, "", fillBytes(g.logNormal(5000, 1)))
			}
		}
		req(cifs.CmdTrans2, "", fillBytes(220))
	}
	// LANMAN management transaction.
	if g.rng.Float64() < 0.35 {
		req(cifs.CmdTrans, cifs.LanmanPipe, fillBytes(g.logNormal(1400, 0.8)))
	}
	req(cifs.CmdClose, "", fillBytes(8))
	g.tcp(c, server, port, g.intRTT(), turns)
}

// --- network file systems (§5.2.2, Tables 12–14, Figures 7–8) ---------

func (g *traceGen) netFileTraffic() {
	nfsSrv := g.net.Server(enterprise.RoleNFS)
	ncpSrv := g.net.Server(enterprise.RoleNCP)
	nfsHere := g.monitors(g.net.ServerSubnet(enterprise.RoleNFS))
	// Heavy-hitter pairs: the top three account for the bulk of the data.
	if nfsHere {
		// The server-subnet vantage sees the heavy hitters: three pairs
		// carrying the overwhelming majority of NFS traffic.
		for i := 0; i < 3; i++ {
			g.nfsSession(g.otherInternal(), nfsSrv, g.scaleN(1500+g.rng.Intn(2500)), g.rng.Float64() < 0.75)
		}
	} else if g.rng.Float64() < 0.35 {
		g.nfsSession(g.client(), nfsSrv, g.scaleN(60+g.rng.Intn(250)), g.rng.Float64() < 0.75)
	}
	// Light pairs.
	for i, n := 0, g.count(3); i < n; i++ {
		g.nfsSession(g.client(), nfsSrv, g.scaleN(3+g.rng.Intn(40)), g.rng.Float64() < 0.9)
	}
	// NCP: a quarter of clients hold connections; many are keep-alive-only.
	for _, c := range g.subset(0.18 * g.hours) {
		if g.rng.Float64() < 0.7 {
			// Idle connection: nothing but TCP keep-alives.
			g.em.TCPSession(TCPOpts{
				Client: c, Server: ncpSrv, ClientPort: g.eph(), ServerPort: 524,
				Start:      g.start.Add(time.Duration(g.rng.Int63n(int64(g.dur / 4)))),
				RTT:        g.intRTT(),
				Turns:      []Turn{{FromClient: true, Data: fillBytes(2)}},
				KeepAlives: 2 + g.rng.Intn(int(g.dur/(2*time.Minute))+1), KeepAliveGap: 2 * time.Minute,
				NoFin: true,
			})
			continue
		}
		g.ncpSession(c, ncpSrv, g.scaleN(10+g.rng.Intn(120)))
	}
	if g.monitors(g.net.ServerSubnet(enterprise.RoleNCP)) {
		for i := 0; i < 3; i++ {
			g.ncpSession(g.otherInternal(), ncpSrv, g.scaleN(2500+g.rng.Intn(2500)))
		}
	}
}

// nfsSession emits an NFS conversation of nReq requests over UDP or TCP.
func (g *traceGen) nfsSession(client, server enterprise.Host, nReq int, overUDP bool) {
	// Per-trace operation mix, jittered to produce the cross-dataset
	// variation of Table 13.
	readW := 0.25 + g.rng.Float64()*0.4
	writeW := 0.05 + g.rng.Float64()*0.15
	getattrW := 0.15 + g.rng.Float64()*0.35
	lookupW := 0.08 + g.rng.Float64()*0.12
	accessW := 0.04
	total := readW + writeW + getattrW + lookupW + accessW + 0.02
	pick := func() uint32 {
		r := g.rng.Float64() * total
		switch {
		case r < readW:
			return sunrpc.ProcRead
		case r < readW+writeW:
			return sunrpc.ProcWrite
		case r < readW+writeW+getattrW:
			return sunrpc.ProcGetAttr
		case r < readW+writeW+getattrW+lookupW:
			return sunrpc.ProcLookup
		case r < readW+writeW+getattrW+lookupW+accessW:
			return sunrpc.ProcAccess
		default:
			return sunrpc.ProcReadDir
		}
	}
	start := g.at(time.Minute)
	now := start
	cport, sport := g.eph(), uint16(2049)
	var tcpTurns []Turn
	for i := 0; i < nReq; i++ {
		proc := pick()
		dataLen := 0
		if proc == sunrpc.ProcRead || proc == sunrpc.ProcWrite {
			dataLen = 8192
			if g.rng.Float64() < 0.25 {
				dataLen = 1024 + g.rng.Intn(7000)
			}
		}
		xid := g.rng.Uint32()
		call := sunrpc.Encode(&sunrpc.Msg{XID: xid, Type: sunrpc.MsgCall, Prog: sunrpc.ProgNFS, Vers: 3, Proc: proc, DataLen: dataLen})
		status := sunrpc.NFSOK
		if proc == sunrpc.ProcLookup && g.rng.Float64() < 0.35 {
			status = sunrpc.NFSErrNoEnt
		} else if g.rng.Float64() < 0.02 {
			status = sunrpc.NFSErrIO
		}
		reply := sunrpc.Encode(&sunrpc.Msg{XID: xid, Type: sunrpc.MsgReply, Proc: proc, Status: status, DataLen: dataLen})
		if overUDP {
			g.em.UDPExchange(client, server, cport, sport, now, g.intRTT(), call, reply)
			now = now.Add(time.Duration(2+g.rng.Intn(9)) * time.Millisecond)
		} else {
			tcpTurns = append(tcpTurns,
				Turn{FromClient: true, Delay: time.Duration(2+g.rng.Intn(9)) * time.Millisecond, Data: sunrpc.MarkRecord(call)},
				Turn{Data: sunrpc.MarkRecord(reply)},
			)
		}
	}
	if !overUDP {
		g.em.TCPSession(TCPOpts{
			Client: client, Server: server, ClientPort: cport, ServerPort: sport,
			Start: start, RTT: g.intRTT(), Turns: tcpTurns,
			LossProb: g.loss(client, server),
		})
	}
}

// ncpSession emits an NCP conversation of nReq requests.
func (g *traceGen) ncpSession(client, server enterprise.Host, nReq int) {
	var turns []Turn
	seq := uint8(1)
	for i := 0; i < nReq; i++ {
		r := g.rng.Float64()
		var fn uint8
		switch {
		case r < 0.42:
			fn = ncp.FnReadFile
		case r < 0.50:
			fn = ncp.FnWriteFile
		case r < 0.73:
			fn = ncp.FnFileDirInfo
		case r < 0.80:
			fn = ncp.FnOpenFile
		case r < 0.87:
			fn = ncp.FnGetFileSize
		case r < 0.96:
			fn = ncp.FnSearchFile
		case r < 0.98:
			fn = ncp.FnDirService
		default:
			fn = 99
		}
		dataLen := 0
		if fn == ncp.FnWriteFile {
			dataLen = 512 + g.rng.Intn(3000)
		}
		req := ncp.RequestFor(seq, fn, dataLen)
		replyLen := 0
		if fn == ncp.FnReadFile {
			replyLen = 260
			if g.rng.Float64() < 0.75 {
				replyLen = 1024 + g.rng.Intn(7168)
			}
		}
		reply := ncp.ReplyFor(req, replyLen)
		if fn == ncp.FnFileDirInfo && g.rng.Float64() < 0.05 {
			reply.Completion = 0x89
			reply.Payload = nil
		}
		turns = append(turns,
			Turn{FromClient: true, Delay: time.Duration(1+g.rng.Intn(9)) * time.Millisecond, Data: ncp.Encode(req)},
			Turn{Data: ncp.Encode(reply)},
		)
		seq++
	}
	g.tcp(client, server, 524, g.intRTT(), turns)
}

// --- backup (§5.2.3, Table 15) ----------------------------------------

func (g *traceGen) backupTraffic() {
	vSrv := g.net.Server(enterprise.RoleBackupV)
	dSrv := g.net.Server(enterprise.RoleBackupD)
	vHere := g.monitors(g.net.ServerSubnet(enterprise.RoleBackupV))
	dHere := g.monitors(g.net.ServerSubnet(enterprise.RoleBackupD))
	nV, nD := g.count(0.8), g.count(0.7)
	if vHere {
		nV = g.count(5)
	}
	lossyTrace := g.cfg.Name == "D4" && g.subnet == 16
	if lossyTrace && nV == 0 {
		nV = 1
	}
	if dHere {
		nD = g.count(4)
	}
	for i := 0; i < nV; i++ {
		client := g.client()
		if vHere {
			client = g.otherInternal()
		}
		// Control connection + one-way data connection.
		ctrl := backup.VeritasControlPlan()
		g.tcp(client, vSrv, 13720, g.intRTT(), planTurns(ctrl))
		loss := g.loss(client, vSrv)
		size := int64(g.logNormal(1.8e6, 0.7))
		if lossyTrace && i == 0 {
			// The lossy Veritas connection behind Figure 10's ~5% spike:
			// steady retransmissions throughout a large one-way dump.
			loss, size = 0.08, 8e6
		}
		g.em.TCPSession(TCPOpts{
			Client: client, Server: vSrv, ClientPort: g.eph(), ServerPort: 13724,
			Start: g.at(5 * time.Minute), RTT: g.intRTT(),
			Turns:    planTurns(backup.VeritasDataPlan(size)),
			LossProb: loss,
		})
	}
	for i := 0; i < nD; i++ {
		client := g.client()
		if dHere {
			client = g.otherInternal()
		}
		plan := backup.DantzPlan(int64(g.logNormal(9e5, 0.8)), int64(g.logNormal(4e5, 0.9)))
		g.tcp(client, dSrv, 497, g.intRTT(), planTurns(plan))
	}
	// Connected: small uploads to an external service.
	for i, n := 0, g.count(0.6); i < n; i++ {
		g.tcp(g.client(), g.remote(), 16384, g.wanRTT(), planTurns(backup.ConnectedPlan(int64(g.logNormal(2e5, 0.8)))))
	}
}

func planTurns(p *backup.Plan) []Turn {
	var out []Turn
	for _, tr := range p.Transfers {
		if tr.Bytes <= 0 {
			continue
		}
		out = append(out, Turn{FromClient: tr.FromClient, Data: fillBytes(int(tr.Bytes))})
	}
	return out
}

// --- bulk, interactive, streaming, net-mgnt, misc, other --------------

func (g *traceGen) bulkTraffic() {
	ftpSrv := g.net.Server(enterprise.RoleFTP)
	for i, n := 0, g.count(1.2); i < n; i++ {
		size := g.logNormal(7e5, 1.1)
		server, rtt := ftpSrv, g.intRTT()
		if g.rng.Float64() < 0.4 {
			server, rtt = g.remote(), g.wanRTT()
		}
		// PASV control dialogue, then the data connection to the
		// advertised port carrying the file server→client.
		cl := g.client()
		dataPort := uint16(49000 + g.rng.Intn(1000))
		ctlStart := g.at(5 * time.Minute)
		turns := convertFTPTurns(ftp.RetrievalDialogue("anonymous", "pub/data.tar", server.Addr.As4(), dataPort))
		g.em.TCPSession(TCPOpts{
			Client: cl, Server: server, ClientPort: g.eph(), ServerPort: 21,
			Start: ctlStart, RTT: rtt, Turns: turns,
			LossProb: g.loss(cl, server),
		})
		g.em.TCPSession(TCPOpts{
			Client: cl, Server: server, ClientPort: g.eph(), ServerPort: dataPort,
			Start: ctlStart.Add(time.Duration(6)*rtt + 50*time.Millisecond), RTT: rtt,
			Turns:    []Turn{{Data: fillBytes(size)}},
			LossProb: g.loss(cl, server),
		})
	}
	// HPSS internal archive transfers.
	for i, n := 0, g.count(0.8); i < n; i++ {
		g.tcp(g.client(), enterprise.InternalHost(18, 2), 1217, g.intRTT(), []Turn{
			{FromClient: true, Data: fillBytes(300)},
			{Data: fillBytes(g.logNormal(1.2e6, 0.9))},
		})
	}
}

func (g *traceGen) interactiveTraffic() {
	for _, c := range g.subset(0.10 * g.hours) {
		server, rtt := g.otherInternal(), g.intRTT()
		if g.rng.Float64() < 0.3 {
			server, rtt = g.remote(), g.wanRTT()
		}
		var turns []Turn
		// SSH banner + key exchange.
		turns = append(turns,
			Turn{Data: []byte("SSH-2.0-OpenSSH_3.9p1\r\n")},
			Turn{FromClient: true, Data: []byte("SSH-2.0-OpenSSH_3.8.1p1\r\n")},
			Turn{FromClient: true, Data: fillBytes(700)},
			Turn{Data: fillBytes(900)},
		)
		nKeys := g.scaleN(20 + g.rng.Intn(60))
		for i := 0; i < nKeys; i++ {
			turns = append(turns,
				Turn{FromClient: true, Delay: time.Duration(300+g.rng.Intn(2500)) * time.Millisecond, Data: fillBytes(36 + g.rng.Intn(20))},
				Turn{Data: fillBytes(36 + g.rng.Intn(80))},
			)
		}
		if g.rng.Float64() < 0.2 {
			// SSH also moves files (scp/tunnels): a bulk phase.
			turns = append(turns, Turn{FromClient: true, Data: fillBytes(g.logNormal(4e5, 1.0))})
		}
		g.tcp(c, server, 22, rtt, turns)
	}
	// A little telnet and X11.
	for i, n := 0, g.count(2); i < n; i++ {
		var turns []Turn
		for j := 0; j < 30; j++ {
			turns = append(turns,
				Turn{FromClient: true, Delay: time.Duration(200+g.rng.Intn(1500)) * time.Millisecond, Data: fillBytes(2 + g.rng.Intn(6))},
				Turn{Data: fillBytes(10 + g.rng.Intn(60))},
			)
		}
		g.tcp(g.client(), g.otherInternal(), 23, g.intRTT(), turns)
	}
	for i, n := 0, g.count(1.5); i < n; i++ {
		g.tcp(g.client(), g.otherInternal(), 6000, g.intRTT(), []Turn{
			{FromClient: true, Data: fillBytes(4000)},
			{Data: fillBytes(g.logNormal(60000, 1.0))},
		})
	}
}

func (g *traceGen) streamingTraffic() {
	// Multicast streaming exceeds unicast streaming (5–10% of all bytes).
	group := MulticastHost([4]byte{224, 2, byte(10 + g.subnet%8), 71})
	src := g.net.Server(enterprise.RoleWeb) // a media source elsewhere
	if g.rng.Float64() < 0.85 {
		start := g.at(g.dur / 3)
		total := g.scaleN(500_000 + g.rng.Intn(700_000))
		pktSize := 1316 // typical MPEG-TS over UDP
		interval := g.dur / 2 / time.Duration(total/pktSize+1)
		now := start
		for sent := 0; sent < total; sent += pktSize {
			g.em.UDPSend(src, group, 3000, 5004, now, fillBytes(pktSize))
			now = now.Add(interval)
		}
	}
	// Unicast RTSP/RealStream sessions.
	for i, n := 0, g.count(2); i < n; i++ {
		server, rtt := g.remote(), g.wanRTT()
		if g.rng.Float64() < 0.5 {
			server, rtt = enterprise.InternalHost(19, 2), g.intRTT()
		}
		g.tcp(g.client(), server, 554, rtt, []Turn{
			{FromClient: true, Data: []byte("DESCRIBE rtsp://media/stream1 RTSP/1.0\r\nCSeq: 1\r\n\r\n")},
			{Data: fillBytes(400)},
			{FromClient: true, Data: []byte("PLAY rtsp://media/stream1 RTSP/1.0\r\nCSeq: 2\r\n\r\n")},
			{Data: fillBytes(g.logNormal(150_000, 0.8))},
		})
	}
}

func (g *traceGen) netMgntTraffic() {
	ntpSrv := g.net.Server(enterprise.RoleDNS1) // NTP rides on the infra server
	for _, c := range g.subset(0.8 * g.hours) {
		n := 1 + g.rng.Intn(2)
		for i := 0; i < n; i++ {
			g.em.UDPExchange(c, ntpSrv, 123, 123, g.at(time.Second), g.intRTT(), fillBytes(48), fillBytes(48))
		}
	}
	// DHCP renewals.
	for i, n := 0, g.count(9); i < n; i++ {
		g.em.UDPExchange(g.client(), enterprise.InternalHost(enterprise.SubnetDNS, 6), 68, 67, g.at(time.Second), g.intRTT(), fillBytes(300), fillBytes(300))
	}
	// SNMP polling from a management station.
	mgmt := enterprise.InternalHost(15, 2)
	for i, n := 0, g.count(25); i < n; i++ {
		g.em.UDPExchange(mgmt, g.client(), g.eph(), 161, g.at(time.Second), g.intRTT(), fillBytes(80), fillBytes(220))
	}
	// NAV-ping: antivirus server liveness probes.
	nav := enterprise.InternalHost(15, 3)
	for _, c := range g.subset(0.25 * g.hours) {
		g.em.UDPExchange(c, nav, 38293, 38293, g.at(time.Second), g.intRTT(), fillBytes(30), fillBytes(30))
	}
	// SAP multicast announcements: periodic, spaced beyond the UDP flow
	// timeout so each shows up as its own flow (5–10% of connections).
	sapGroup := MulticastHost([4]byte{224, 2, 127, 254})
	for s := 0; s < 2; s++ {
		src := enterprise.InternalHost(19, 3+s)
		period := 62*time.Second + time.Duration(s)*9*time.Second
		for ts := g.start.Add(time.Duration(s) * 5 * time.Second); ts.Before(g.start.Add(g.dur)); ts = ts.Add(period) {
			g.em.UDPSend(src, sapGroup, 9875, 9875, ts, fillBytes(240))
		}
	}
	// ident callbacks.
	for i, n := 0, g.count(4); i < n; i++ {
		g.tcp(g.otherInternal(), g.client(), 113, g.intRTT(), []Turn{
			{FromClient: true, Data: []byte("1045, 25\r\n")},
			{Data: []byte("1045, 25 : USERID : UNIX : user\r\n")},
		})
	}
}

func (g *traceGen) miscTraffic() {
	printSrv := g.net.Server(enterprise.RolePrint)
	// LPD and IPP print jobs.
	for _, c := range g.subset(0.06 * g.hours) {
		port := uint16(515)
		if g.rng.Float64() < 0.4 {
			port = 631
		}
		g.tcp(c, printSrv, port, g.intRTT(), []Turn{
			{FromClient: true, Data: fillBytes(120)},
			{Data: fillBytes(20)},
			{FromClient: true, Data: fillBytes(g.logNormal(90_000, 1.2))},
			{Data: fillBytes(10)},
		})
	}
	// Database sessions.
	for i, n := 0, g.count(3); i < n; i++ {
		port := uint16(1521)
		if g.rng.Float64() < 0.5 {
			port = 1433
		}
		var turns []Turn
		for j, m := 0, 4+g.rng.Intn(12); j < m; j++ {
			turns = append(turns,
				Turn{FromClient: true, Delay: time.Duration(g.rng.Intn(800)) * time.Millisecond, Data: fillBytes(200 + g.rng.Intn(600))},
				Turn{Data: fillBytes(g.logNormal(3000, 1.0))},
			)
		}
		g.tcp(g.client(), enterprise.InternalHost(17, 3), port, g.intRTT(), turns)
	}
	// Steltor calendar polls and MetaSys building-management beacons:
	// periodic probes giving the misc category its stable connection
	// share.
	steltor := enterprise.InternalHost(17, 4)
	for _, c := range g.subset(0.03 * g.hours) {
		g.tcp(c, steltor, 5729, g.intRTT(), []Turn{
			{FromClient: true, Data: fillBytes(90)},
			{Data: fillBytes(400)},
		})
	}
	metasys := enterprise.InternalHost(19, 9)
	for ts := g.start.Add(11 * time.Second); ts.Before(g.start.Add(g.dur)); ts = ts.Add(110 * time.Second) {
		g.em.UDPSend(metasys, enterprise.InternalHost(g.subnet, 255), 11001, 11001, ts, fillBytes(120))
	}
}

func (g *traceGen) otherTraffic() {
	// Unknown TCP services.
	for i, n := 0, g.count(16); i < n; i++ {
		port := uint16(20000 + g.rng.Intn(20000))
		g.tcp(g.client(), g.otherInternal(), port, g.intRTT(), []Turn{
			{FromClient: true, Data: fillBytes(100 + g.rng.Intn(2000))},
			{Data: fillBytes(100 + g.rng.Intn(4000))},
		})
	}
	// Unknown UDP chatter.
	for i, n := 0, g.count(50); i < n; i++ {
		port := uint16(20000 + g.rng.Intn(20000))
		g.em.UDPExchange(g.client(), g.otherInternal(), g.eph(), port, g.at(time.Second), g.intRTT(), fillBytes(60+g.rng.Intn(400)), fillBytes(60+g.rng.Intn(400)))
	}
}

func (g *traceGen) icmpTraffic() {
	for i, n := 0, g.count(45); i < n; i++ {
		dst := g.otherInternal()
		rtt := g.intRTT()
		if g.rng.Float64() < 0.2 {
			dst, rtt = g.remote(), g.wanRTT()
		}
		id := uint16(g.rng.Intn(65536))
		nEcho := 1 + g.rng.Intn(4)
		base := g.at(10 * time.Second)
		for s := 0; s < nEcho; s++ {
			g.em.ICMPEcho(g.client(), dst, id, uint16(s), base.Add(time.Duration(s)*time.Second), rtt, g.rng.Float64() < 0.9)
		}
	}
}

// inboundWANTraffic models the wide area reaching into the enterprise:
// WAN browsers hitting public web servers, inbound SSH, sparse probe
// background that survives the border filter (each source touches too few
// hosts, in no particular order, to trip the scan heuristic), and
// externally-sourced multicast.
func (g *traceGen) inboundWANTraffic() {
	webSrv := g.net.Server(enterprise.RoleWeb)
	if g.monitors(g.net.ServerSubnet(enterprise.RoleWeb)) {
		for i, n := 0, g.count(55); i < n; i++ {
			g.httpConn(g.remote(), webSrv, g.wanRTT(), 1+g.rng.Intn(3), browserProfileWAN)
		}
	}
	// Light per-client inbound background: echoes, UDP probes, the odd
	// TCP connection attempt.
	for _, c := range g.subset(0.5 * g.hours) {
		nFlows := 1 + g.rng.Intn(3)
		for f := 0; f < nFlows; f++ {
			src := g.remote()
			switch g.rng.Intn(3) {
			case 0:
				g.em.ICMPEcho(src, c, uint16(g.rng.Intn(65536)), 0, g.at(10*time.Second), g.wanRTT(), g.rng.Float64() < 0.7)
			case 1:
				g.em.UDPExchange(src, c, g.eph(), uint16(1024+g.rng.Intn(3000)), g.at(10*time.Second), g.wanRTT(), fillBytes(40), nil)
			default:
				outcome := Rejected
				if g.rng.Float64() < 0.5 {
					outcome = Unanswered
				}
				g.em.TCPSession(TCPOpts{
					Client: src, Server: c, ClientPort: g.eph(), ServerPort: []uint16{80, 22, 443}[g.rng.Intn(3)],
					Start: g.at(time.Minute), RTT: g.wanRTT(), Outcome: outcome,
				})
			}
		}
	}
	// Inbound SSH to a few hosts.
	for i, n := 0, g.count(3); i < n; i++ {
		g.tcp2(g.remote(), g.client(), 22, g.wanRTT(), []Turn{
			{Data: []byte("SSH-2.0-OpenSSH_3.9p1\r\n")},
			{FromClient: true, Data: fillBytes(800)},
			{Data: fillBytes(900)},
			{FromClient: true, Data: fillBytes(g.logNormal(20000, 1.0))},
		})
	}
	// Externally-sourced multicast: MBone-era session announcements and
	// an occasional external video stream.
	sapGroup := MulticastHost([4]byte{224, 2, 127, 254})
	extSrc := enterprise.RemoteHost(70001)
	for ts := g.start.Add(17 * time.Second); ts.Before(g.start.Add(g.dur)); ts = ts.Add(95 * time.Second) {
		g.em.UDPSend(extSrc, sapGroup, 9875, 9875, ts, fillBytes(220))
	}
	if g.rng.Float64() < 0.35 {
		group := MulticastHost([4]byte{224, 2, 200, byte(g.subnet)})
		src := enterprise.RemoteHost(70002)
		now := g.at(g.dur / 2)
		for sent := 0; sent < g.scaleN(150_000); sent += 1316 {
			g.em.UDPSend(src, group, 3000, 5004, now, fillBytes(1316))
			now = now.Add(40 * time.Millisecond)
		}
	}
}

// tcp2 is tcp with an arbitrary originator (used for inbound sessions).
func (g *traceGen) tcp2(client, server enterprise.Host, sport uint16, rtt time.Duration, turns []Turn) {
	g.em.TCPSession(TCPOpts{
		Client: client, Server: server,
		ClientPort: g.eph(), ServerPort: sport,
		Start: g.at(30 * time.Second), RTT: rtt, Turns: turns,
		LossProb: g.loss(client, server),
	})
}

// scannerTraffic emits the traffic §3's heuristic removes: external ICMP
// sweeps and the two known internal scanners' TCP sweeps.
func (g *traceGen) scannerTraffic() {
	// External ICMP scanner sweeping this subnet in address order.
	ext := enterprise.RemoteHost(90000 + g.subnet)
	base := g.at(g.dur / 2)
	nSweep := 52 + g.rng.Intn(40)
	if g.rng.Float64() > 0.5 {
		nSweep = 0 // the sweep passes this subnet by this hour
	}
	for i := 0; i < nSweep; i++ {
		target := enterprise.InternalHost(g.subnet, 2+i)
		g.em.ICMPEcho(ext, target, 7, uint16(i), base.Add(time.Duration(i)*150*time.Millisecond), g.wanRTT(), g.rng.Float64() < 0.25)
	}
	// Internal vulnerability scanners: TCP SYN sweeps on service ports.
	for si, scanner := range enterprise.KnownScanners() {
		src := enterprise.Host{Addr: scanner, MAC: enterprise.InternalHost(20+si, 4).MAC, Subnet: 20 + si}
		if g.rng.Float64() > 0.7 {
			continue // scanners don't hit every subnet every hour
		}
		sweepBase := g.at(g.dur / 3)
		for i := 0; i < 55; i++ {
			target := enterprise.InternalHost(g.subnet, 2+i)
			outcome := Unanswered
			if g.rng.Float64() < 0.2 {
				outcome = Rejected
			}
			g.em.TCPSession(TCPOpts{
				Client: src, Server: target,
				ClientPort: g.eph(), ServerPort: []uint16{80, 445, 22}[i%3],
				Start: sweepBase.Add(time.Duration(i) * 120 * time.Millisecond),
				RTT:   g.intRTT(), Outcome: outcome,
			})
		}
	}
}

// linkLayerBackground emits the non-IP traffic of Table 2: ARP exchanges,
// IPX broadcasts, and a sprinkle of other ethertypes.
func (g *traceGen) linkLayerBackground() {
	router := enterprise.InternalHost(g.subnet, 1)
	for i, n := 0, g.count(160); i < n; i++ {
		g.em.ARPExchange(router, g.client(), g.at(time.Second))
	}
	for i, n := 0, g.count(250); i < n; i++ {
		src := g.client()
		g.em.IPXBroadcast(src, g.at(time.Second), fillBytes(96), g.rng.Float64() < 0.5)
	}
	// Other ethertypes (AppleTalk-era leftovers, LLDP, ...).
	for i, n := 0, g.count(120); i < n; i++ {
		frame := make([]byte, 80)
		src := g.client()
		copy(frame[0:6], src.MAC[:])
		copy(frame[6:12], src.MAC[:])
		frame[0] = 0xff // broadcast-ish
		frame[12], frame[13] = 0x80, 0x9b
		g.em.frame(g.at(time.Second), frame)
	}
}

// fillBytes produces n deterministic filler bytes.
func fillBytes(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + i%23)
	}
	return b
}
