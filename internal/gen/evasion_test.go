package gen

import (
	"bytes"
	"testing"
)

// TestEvasionScenariosDeterministic builds every scenario twice and
// requires byte-identical frames and timestamps: the differential
// harness's grid comparisons are meaningless if the input itself drifts.
func TestEvasionScenariosDeterministic(t *testing.T) {
	for _, sc := range EvasionScenarios() {
		a, b := sc.Build(), sc.Build()
		if len(a.Packets) == 0 {
			t.Errorf("%s: empty scenario", sc.Name)
			continue
		}
		if len(a.Packets) != len(b.Packets) {
			t.Errorf("%s: %d vs %d packets across builds", sc.Name, len(a.Packets), len(b.Packets))
			continue
		}
		for i := range a.Packets {
			if !a.Packets[i].Timestamp.Equal(b.Packets[i].Timestamp) || !bytes.Equal(a.Packets[i].Data, b.Packets[i].Data) {
				t.Errorf("%s: packet %d differs across builds", sc.Name, i)
				break
			}
		}
		if a.Prefix != b.Prefix || a.Subnet != b.Subnet {
			t.Errorf("%s: trace metadata differs across builds", sc.Name)
		}
	}
}

// TestEvasionScenarioByName pins lookup behaviour for entgen.
func TestEvasionScenarioByName(t *testing.T) {
	if _, ok := EvasionScenarioByName("overlap-conflict"); !ok {
		t.Error("overlap-conflict not found")
	}
	if _, ok := EvasionScenarioByName("nope"); ok {
		t.Error("unknown scenario reported found")
	}
}
